(* matprod — command-line driver for the distributed matrix-product
   estimation protocols.

   Each subcommand generates a synthetic workload (or a lower-bound hard
   instance), runs one of the paper's protocols inside the bit-accurate
   two-party simulator, and prints the estimate, the exact answer, and the
   transcript cost. *)

open Cmdliner

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Fault = Matprod_comm.Fault
module Chaos = Matprod_comm.Chaos
module Journal = Matprod_comm.Journal
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Engine = Matprod_engine.Engine
module Fleet = Matprod_topology.Fleet
module Shard = Matprod_topology.Shard
module Workload = Matprod_workload.Workload
module Obs = Matprod_obs

(* ------------------------------------------------------------------ *)
(* Shared plumbing: every subcommand takes the same workload and
   observability options through one [common] term instead of each
   command re-declaring (and re-threading) seven arguments. *)

type trace_format = Jsonl | Chrome

type common = {
  n : int;
  density : float;
  seed : int;
  verbose : bool;
  domains : int option;
  json : bool;
  trace : string option;
  trace_format : trace_format;
  transport : string;
}

let common_term =
  let n_arg =
    Arg.(
      value & opt int 256 & info [ "n"; "size" ] ~docv:"N" ~doc:"Matrix dimension.")
  in
  let density_arg =
    Arg.(
      value
      & opt float 0.05
      & info [ "density" ] ~docv:"D" ~doc:"Fill probability of each entry.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print the per-message transcript breakdown.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Fan per-row sketch loops out over $(docv) domains (default \
             $(b,MATPROD_DOMAINS), else 1 = sequential). Estimates and \
             transcripts are byte-identical at any value \
             (docs/PERFORMANCE.md).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print a single-line JSON run summary (schema matprod.run.v1, see \
             docs/OBSERVABILITY.md) instead of the human-readable report.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write spans and per-message events as JSON lines to $(docv).")
  in
  let trace_format_arg =
    Arg.(
      value
      & opt (enum [ ("jsonl", Jsonl); ("chrome", Chrome) ]) Jsonl
      & info [ "trace-format" ] ~docv:"FMT"
          ~doc:
            "Trace file format: $(b,jsonl) (one span object per line) or \
             $(b,chrome) (Chrome trace-event JSON, loadable in Perfetto or \
             chrome://tracing).")
  in
  let transport_arg =
    Arg.(
      value
      & opt string "sim"
      & info [ "transport" ] ~docv:"WIRE"
          ~doc:
            "Carry the protocol's logical messages over $(b,sim) (the \
             in-process simulator, default) or $(b,tcp) (framed messages \
             over a real loopback socket). Transcripts, estimates and \
             coin flips are byte-identical across transports \
             (docs/SERVING.md).")
  in
  let make n density seed verbose domains json trace trace_format transport =
    { n; density; seed; verbose; domains; json; trace; trace_format; transport }
  in
  Term.(
    const make $ n_arg $ density_arg $ seed_arg $ verbose_arg $ domains_arg
    $ json_arg $ trace_arg $ trace_format_arg $ transport_arg)

let eps_arg =
  Arg.(
    value & opt float 0.25 & info [ "eps" ] ~docv:"EPS" ~doc:"Accuracy target.")

let zipf_arg =
  Arg.(
    value & flag
    & info [ "zipf" ] ~doc:"Use a Zipf-skewed workload instead of uniform.")

(* The wire behind every two-party run in this invocation. [None] keeps
   the default simulator; "tcp" dials a fresh loopback connection per
   protocol run (the factory form is what multi-attempt drivers need). *)
let transport_factory c : Matprod_comm.Transport.factory option =
  match c.transport with
  | "sim" -> None
  | spec -> (
      match Matprod_comm.Transport.of_string spec with
      | Ok f -> Some f
      | Error e -> failwith e)

let transport_conn c =
  Option.map (fun f -> f ()) (transport_factory c)

(* One grammar for every fault knob (lib/comm/chaos.mli). The legacy
   per-fault flags survive as hidden aliases, lowered through the same
   parser so both spellings hit identical fault models. *)
let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection spec: clauses separated by ';', each a \
           comma-separated list of key=value pairs naming its $(b,kind) \
           first — e.g. \
           $(b,kind=crash,party=b,after=3;kind=drop,rate=0.1). Kinds: \
           drop, corrupt, truncate, duplicate, delay, crash, straggle, \
           byzantine; crash/straggle/byzantine take $(b,worker=RANK) in \
           fleet runs and crash takes $(b,permanent) \
           (docs/ROBUSTNESS.md).")

let parse_chaos = function
  | None -> []
  | Some spec -> (
      match Chaos.parse spec with
      | Ok t -> t
      | Error e -> failwith (Printf.sprintf "bad --chaos spec: %s" e))

(* Legacy flags re-expressed in the grammar, so merging them with a
   --chaos spec is plain list append. *)
let legacy_chaos clauses =
  let spec = String.concat ";" (List.filter (fun s -> s <> "") clauses) in
  match Chaos.parse spec with
  | Ok t -> t
  | Error e -> failwith e

(* Per-link fault installation for fleet runs, mirroring the legacy
   one-flag-per-fault wiring: crashes rearm on every attempt only when
   marked permanent; straggles and byzantine rules fire on the first
   attempt (byzantine on replica 0, where the replica vote can catch
   it); byte-level noise applies to every attempt. *)
let chaos_wire spec ~seed ~rank ~replica ~attempt ctx =
  (match Chaos.crashes ~scope_worker:rank spec with
  | [] -> ()
  | crashes when Chaos.permanent_crash ~scope_worker:rank spec || attempt = 1
    ->
      Ctx.install_wire ctx ~fault:(Fault.create ~crashes ~seed:1 []) ()
  | _ -> ());
  (match Chaos.straggles ~scope_worker:rank spec with
  | [] -> ()
  | straggles when attempt = 1 ->
      Ctx.install_wire ctx ~fault:(Fault.create ~straggles ~seed:1 []) ()
  | _ -> ());
  (match Chaos.byzantines ~scope_worker:rank spec with
  | [] -> ()
  | byzantines when replica = 0 && attempt = 1 ->
      Ctx.install_wire ctx
        ~fault:
          (Fault.create ~byzantines ~seed:(seed + (7919 * (rank + 1))) [])
        ()
  | _ -> ());
  match Chaos.byte_rules spec with
  | [] -> ()
  | rules ->
      Ctx.install_wire ctx ~fault:(Fault.create ~seed:(seed + 77 + rank) rules) ()

(* Apply the domains/metrics/trace switches before any protocol work. *)
let start c =
  if c.transport <> "sim" then
    (* Handler threads/pumps may write into sockets the peer already
       closed; surface that as EPIPE, not process death. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match c.domains with
  | Some d -> Matprod_util.Pool.set_size d
  | None -> ());
  if c.json || c.trace <> None then Obs.Metrics.set_enabled true;
  if c.trace <> None then Obs.Trace.enable ()

(* Emit the trace file and, in JSON mode, the run summary. [fields] come
   first so the subcommand's own parameters lead the object. *)
let finish c fields =
  (match c.trace with
  | Some path -> (
      let write =
        match c.trace_format with
        | Jsonl -> Obs.Export.write_trace
        | Chrome -> Obs.Export.write_chrome
      in
      try write path
      with Sys_error msg ->
        Printf.eprintf "matprod: cannot write trace file: %s\n" msg;
        exit 1)
  | None -> ());
  if c.json then Obs.Export.print_run_summary ~extra:fields ()

let base_fields ~subcommand c =
  [
    ("subcommand", Obs.Json.String subcommand);
    ("n", Obs.Json.Int c.n);
    ("density", Obs.Json.Float c.density);
    ("seed", Obs.Json.Int c.seed);
  ]

let transcript_fields (tr : Transcript.t) =
  [
    ("bits", Obs.Json.Int (Transcript.total_bits tr));
    ("bytes", Obs.Json.Int (Transcript.total_bytes tr));
    ("rounds", Obs.Json.Int (Transcript.rounds tr));
    ("messages", Obs.Json.Int (Transcript.message_count tr));
    ( "bytes_by_label",
      Obs.Json.Obj
        (List.map
           (fun (label, bytes) -> (label, Obs.Json.Int bytes))
           (Transcript.by_label tr)) );
  ]

let estimate_fields ~actual ~estimate =
  [
    ("exact", Obs.Json.Float actual);
    ("estimate", Obs.Json.Float estimate);
    ( "estimate_ratio",
      if actual = 0.0 then Obs.Json.Null
      else Obs.Json.Float (estimate /. actual) );
    ( "relative_error",
      if actual > 0.0 then
        Obs.Json.Float (Stats.relative_error ~actual ~estimate)
      else Obs.Json.Null );
  ]

let gen_pair ~zipf ~seed ~n ~density =
  (* Split the seed into two independent streams (as Ctx.create does for
     the parties): drawing both matrices from one sequential stream would
     correlate Alice's and Bob's inputs across seeds in zipf mode. *)
  let root = Prng.create seed in
  let rng_a = Prng.split root in
  let rng_b = Prng.split root in
  if zipf then
    let deg = max 1 (int_of_float (density *. float_of_int n)) in
    ( Workload.zipf_bool rng_a ~rows:n ~cols:n ~row_degree:deg ~skew:1.1,
      Bmat.transpose (Workload.zipf_bool rng_b ~rows:n ~cols:n ~row_degree:deg ~skew:1.1) )
  else
    ( Workload.uniform_bool rng_a ~rows:n ~cols:n ~density,
      Workload.uniform_bool rng_b ~rows:n ~cols:n ~density )

let report ~verbose ~actual ~estimate (run : _ Ctx.run) =
  Printf.printf "exact answer      : %.6g\n" actual;
  Printf.printf "protocol estimate : %.6g\n" estimate;
  if actual > 0.0 then
    Printf.printf "relative error    : %.4f\n"
      (Stats.relative_error ~actual ~estimate);
  Printf.printf "communication     : %d bits (%d bytes)\n" run.Ctx.bits
    (run.Ctx.bits / 8);
  Printf.printf "rounds            : %d\n" run.Ctx.rounds;
  if verbose then
    Format.printf "transcript:@.%a@." Transcript.pp_summary run.Ctx.transcript

(* ------------------------------------------------------------------ *)
(* join-size: lp norms, p in [0,2] *)

let join_size c eps zipf p algo load_a load_b journal resume max_attempts
    fallback crash_party crash_after drop chaos =
  start c;
  let { n; density; verbose; _ } = c in
  if max_attempts < 1 then failwith "--max-attempts must be >= 1";
  let resumed =
    match resume with
    | None -> None
    | Some path -> (
        match Journal.load path with
        | Ok j -> Some (path, j)
        | Error e ->
            failwith (Printf.sprintf "cannot resume from %s: %s" path e))
  in
  (* Replay is sound only at the journal's own seed (it determines both the
     workload and every protocol coin), so a stored seed wins. *)
  let seed =
    match resumed with
    | Some (_, j) when j.Journal.seed <> c.seed ->
        Printf.eprintf
          "matprod: resuming at journal seed %d (overriding --seed %d)\n%!"
          j.Journal.seed c.seed;
        j.Journal.seed
    | _ -> c.seed
  in
  let a, b =
    match (load_a, load_b) with
    | Some pa, Some pb ->
        (Matprod_matrix.Matio.read_bmat pa, Matprod_matrix.Matio.read_bmat pb)
    | None, None -> gen_pair ~zipf ~seed ~n ~density
    | _ -> failwith "--load-a and --load-b must be given together"
  in
  let c_mat = Product.bool_product a b in
  let actual = Product.lp_pow c_mat ~p in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let driver ctx =
    match algo with
    | "alg1" ->
        Matprod_core.Lp_protocol.run ctx
          (Matprod_core.Lp_protocol.default_params ~p ~eps ())
          ~a:ai ~b:bi
    | "oneround" ->
        Matprod_core.Lp_oneround.run ctx
          (Matprod_core.Lp_oneround.default_params ~p ~eps ())
          ~a:ai ~b:bi
    | "cohen" ->
        if p <> 0.0 then failwith "cohen estimates p = 0 only";
        Matprod_core.Cohen_baseline.run ctx
          (Matprod_core.Cohen_baseline.params_for_eps ~eps)
          ~a ~b
    | "exact" ->
        if p <> 1.0 then failwith "exact protocol covers p = 1 only (Remark 2)";
        float_of_int (Matprod_core.L1_exact.run_bool ctx ~a ~b)
    | other -> failwith (Printf.sprintf "unknown algorithm %S" other)
  in
  let chaos_spec =
    legacy_chaos
      [
        (match crash_party with
        | None -> ""
        | Some who -> Printf.sprintf "kind=crash,party=%s,after=%d" who crash_after);
        (if drop > 0.0 then Printf.sprintf "kind=drop,rate=%g" drop else "");
      ]
    @ parse_chaos chaos
  in
  let install_faults ctx =
    match Chaos.to_fault ~seed:(seed + 77) chaos_spec with
    | None -> ()
    | Some fault -> Ctx.install_wire ctx ~fault ()
  in
  let fallbacks =
    match fallback with
    | "none" -> []
    | "trivial" ->
        [
          ( "trivial",
            fun ctx ->
              Matprod_core.Trivial.run_bool ctx ~a ~b (fun c ->
                  Product.lp_pow c ~p) );
        ]
    | "l1-exact" ->
        if p <> 1.0 then failwith "--fallback l1-exact covers p = 1 only";
        [
          ( "l1-exact",
            fun ctx -> float_of_int (Matprod_core.L1_exact.run_bool ctx ~a ~b)
          );
        ]
    | other ->
        failwith
          (Printf.sprintf "unknown --fallback %S (trivial|l1-exact|none)" other)
  in
  let supervised = max_attempts > 1 || fallback <> "none" in
  let workload =
    match load_a with
    | Some f -> "file " ^ f
    | None -> if zipf then "zipf" else "uniform"
  in
  let banner () =
    Printf.printf "workload: %s %dx%d binary, p = %g, ||C||_p^p exact below\n"
      workload (Bmat.rows a) (Bmat.cols b) p
  in
  let common_fields =
    base_fields ~subcommand:"join-size" { c with n = Bmat.rows a; seed }
    @ [
        ("eps", Obs.Json.Float eps);
        ("p", Obs.Json.Float p);
        ("algo", Obs.Json.String algo);
        ("workload", Obs.Json.String workload);
      ]
  in
  let fail_run e =
    Printf.eprintf "matprod: run failed: %s\n" (Outcome.error_to_string e);
    (match journal with
    | Some path ->
        Printf.eprintf
          "matprod: journal saved to %s — rerun with --resume %s to replay the \
           paid-for prefix\n"
          path path
    | None -> ());
    exit 1
  in
  match resumed with
  | Some (path, j) -> (
      (* Continue a crashed run: replay the journal, then touch the wire.
         Passing [path] keeps appending, so another crash resumes further. *)
      match
        Outcome.guard (fun () ->
            Ctx.resume ?transport:(transport_conn c) ~seed ~path ~journal:j (fun ctx ->
                install_faults ctx;
                driver ctx))
      with
      | Error e -> fail_run e
      | Ok run ->
          if not c.json then begin
            Printf.printf
              "resumed from %s: %d messages (%d bits) replayed for free\n" path
              run.Ctx.replayed_messages run.Ctx.replayed_bits;
            banner ();
            report ~verbose ~actual ~estimate:run.Ctx.output run
          end;
          finish c
            (common_fields
            @ [
                ("resumed_from", Obs.Json.String path);
                ("replayed_messages", Obs.Json.Int run.Ctx.replayed_messages);
                ("replayed_bits", Obs.Json.Int run.Ctx.replayed_bits);
              ]
            @ estimate_fields ~actual ~estimate:run.Ctx.output
            @ transcript_fields run.Ctx.transcript))
  | None when supervised -> (
      let policy =
        Supervisor.policy ~max_resumes:(max_attempts - 1) ~max_reseeds:1 ()
      in
      match
        Supervisor.run ~policy ?journal ?transport:(transport_factory c)
          ~wire:(fun ~attempt:_ ctx -> install_faults ctx)
          ~fallbacks ~seed ~protocol:algo driver
      with
      | Error e -> fail_run e
      | Ok r ->
          if not c.json then begin
            banner ();
            Printf.printf "exact answer      : %.6g\n" actual;
            Printf.printf "protocol estimate : %.6g%s\n" r.Supervisor.output
              (if r.Supervisor.degraded then "  (degraded)" else "");
            if actual > 0.0 then
              Printf.printf "relative error    : %.4f\n"
                (Stats.relative_error ~actual ~estimate:r.Supervisor.output);
            Printf.printf
              "communication     : %d fresh bits over %d attempts (%d bits \
               replayed)\n"
              r.Supervisor.fresh_bits
              (List.length r.Supervisor.attempts)
              r.Supervisor.resume_bits_saved;
            Format.printf "%a@."
              (fun ppf -> Supervisor.pp_report ppf (Printf.sprintf "%.6g"))
              r
          end;
          finish c
            (common_fields
            @ [
                ("rung", Obs.Json.String (Supervisor.rung_to_string r.Supervisor.rung));
                ("degraded", Obs.Json.Bool r.Supervisor.degraded);
                ("attempts", Obs.Json.Int (List.length r.Supervisor.attempts));
                ("fresh_bits", Obs.Json.Int r.Supervisor.fresh_bits);
                ("fresh_rounds", Obs.Json.Int r.Supervisor.fresh_rounds);
                ("resume_bits_saved", Obs.Json.Int r.Supervisor.resume_bits_saved);
              ]
            @ estimate_fields ~actual ~estimate:r.Supervisor.output))
  | None -> (
      let body ctx =
        install_faults ctx;
        driver ctx
      in
      match
        Outcome.guard (fun () ->
            match journal with
            | Some path -> Ctx.run_journaled ?transport:(transport_conn c) ~seed ~journal:path ~protocol:algo body
            | None -> Ctx.run ?transport:(transport_conn c) ~seed body)
      with
      | Error e -> fail_run e
      | Ok run ->
          if not c.json then begin
            banner ();
            report ~verbose ~actual ~estimate:run.Ctx.output run
          end;
          finish c
            (common_fields
            @ (match journal with
              | Some path -> [ ("journal", Obs.Json.String path) ]
              | None -> [])
            @ estimate_fields ~actual ~estimate:run.Ctx.output
            @ transcript_fields run.Ctx.transcript))

let load_a_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-a" ] ~docv:"FILE"
        ~doc:"Read Alice's matrix from FILE (matprod or MatrixMarket format) \
              instead of generating a workload.")

let load_b_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load-b" ] ~docv:"FILE" ~doc:"Read Bob's matrix from FILE.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead log of the transcript to $(docv); after a crash, \
           --resume $(docv) replays the delivered prefix for zero fresh \
           bits (docs/ROBUSTNESS.md).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume a crashed run from its journal: replay $(docv) \
           byte-for-byte, then continue on the wire. The journal's seed \
           overrides --seed.")

let max_attempts_arg =
  Arg.(
    value & opt int 1
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Supervise the run: on failure, resume from the journal up to \
           N-1 times (then reseed once) before giving up.")

let fallback_arg =
  Arg.(
    value & opt string "none"
    & info [ "fallback" ] ~docv:"PROTO"
        ~doc:
          "Degrade to $(docv) (trivial | l1-exact) when every retry \
           fails; the report marks the answer as degraded.")

(* Legacy spellings of --chaos clauses: still accepted, no longer in the
   manpage ([~docs:Manpage.s_none]); --chaos is the documented surface. *)
let crash_party_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash-party" ] ~docv:"WHO" ~docs:Manpage.s_none
        ~doc:"Alias for --chaos kind=crash,party=$(docv).")

let crash_after_arg =
  Arg.(
    value & opt int 1
    & info [ "crash-after" ] ~docv:"K" ~docs:Manpage.s_none
        ~doc:"Alias for the after=$(docv) key of --chaos kind=crash.")

let drop_arg =
  Arg.(
    value & opt float 0.0
    & info [ "drop" ] ~docv:"RATE" ~docs:Manpage.s_none
        ~doc:"Alias for --chaos kind=drop,rate=$(docv).")

let join_size_cmd =
  let p_arg =
    Arg.(
      value & opt float 0.0
      & info [ "p" ] ~docv:"P" ~doc:"Norm order in [0,2]; 0 = join size.")
  in
  let algo_arg =
    Arg.(
      value
      & opt string "alg1"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"One of alg1 (Algorithm 1), oneround ([16]), cohen ([12]), exact (Remark 2, p=1).")
  in
  Cmd.v
    (Cmd.info "join-size"
       ~doc:"Estimate ||AB||_p^p (set-intersection / natural join size).")
    Term.(
      const join_size $ common_term $ eps_arg $ zipf_arg $ p_arg $ algo_arg
      $ load_a_arg $ load_b_arg $ journal_arg $ resume_arg $ max_attempts_arg
      $ fallback_arg $ crash_party_arg $ crash_after_arg $ drop_arg $ chaos_arg)

(* ------------------------------------------------------------------ *)
(* linf *)

let linf c overlap eps kappa general =
  start c;
  let { n; density; seed; verbose; _ } = c in
  let rng = Prng.create seed in
  let banner, algo, actual, estimate, run_bits, run_rounds, tr =
    if general then begin
      let a = Workload.uniform_int rng ~rows:n ~cols:n ~density ~max_value:8 in
      let b = Workload.uniform_int rng ~rows:n ~cols:n ~density ~max_value:8 in
      let actual = float_of_int (Product.linf (Product.int_product a b)) in
      let kappa = Option.value ~default:4.0 kappa in
      let run =
        Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
            Matprod_core.Linf_general.run ctx
              { Matprod_core.Linf_general.kappa }
              ~a ~b)
      in
      ( Printf.sprintf "integer matrices, kappa = %.1f (Theorem 4.8)" kappa,
        "general",
        actual,
        run.Ctx.output,
        run.Ctx.bits,
        run.Ctx.rounds,
        run.Ctx.transcript )
    end
    else begin
      let a, b, (i, j) = Workload.planted_pair rng ~n ~density ~overlap in
      let actual = float_of_int (Product.linf (Product.bool_product a b)) in
      match kappa with
      | Some kappa ->
          let run =
            Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
                Matprod_core.Linf_kappa.run ctx
                  (Matprod_core.Linf_kappa.default_params ~kappa)
                  ~a ~b)
          in
          ( Printf.sprintf
              "binary planted pair at (%d,%d), kappa = %.1f (Algorithm 3)" i j
              kappa,
            "kappa",
            actual,
            run.Ctx.output.Matprod_core.Linf_kappa.estimate,
            run.Ctx.bits,
            run.Ctx.rounds,
            run.Ctx.transcript )
      | None ->
          let run =
            Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
                Matprod_core.Linf_binary.run ctx
                  (Matprod_core.Linf_binary.default_params ~eps)
                  ~a ~b)
          in
          ( Printf.sprintf
              "binary planted pair at (%d,%d), (2+%.2f)-approx (Algorithm 2)" i
              j eps,
            "binary",
            actual,
            run.Ctx.output.Matprod_core.Linf_binary.estimate,
            run.Ctx.bits,
            run.Ctx.rounds,
            run.Ctx.transcript )
    end
  in
  if not c.json then begin
    Printf.printf "%s\n" banner;
    Printf.printf "exact answer      : %.6g\n" actual;
    Printf.printf "protocol estimate : %.6g\n" estimate;
    if actual > 0.0 then
      Printf.printf "relative error    : %.4f\n"
        (Stats.relative_error ~actual ~estimate);
    Printf.printf "communication     : %d bits (%d bytes)\n" run_bits
      (run_bits / 8);
    Printf.printf "rounds            : %d\n" run_rounds;
    if verbose then Format.printf "transcript:@.%a@." Transcript.pp_summary tr
  end;
  finish c
    (base_fields ~subcommand:"linf" c
    @ [
        ("eps", Obs.Json.Float eps);
        ("algo", Obs.Json.String algo);
        ( "kappa",
          match kappa with
          | Some k -> Obs.Json.Float k
          | None -> Obs.Json.Null );
      ]
    @ estimate_fields ~actual ~estimate
    @ transcript_fields tr)

let linf_cmd =
  let overlap_arg =
    Arg.(
      value & opt int 80
      & info [ "overlap" ] ~docv:"K" ~doc:"Planted max-pair intersection size.")
  in
  let kappa_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "kappa" ] ~docv:"KAPPA"
          ~doc:"Use the kappa-approximation protocol instead of (2+eps).")
  in
  let general_arg =
    Arg.(
      value & flag
      & info [ "general" ] ~doc:"Integer matrices (Theorem 4.8 sketching).")
  in
  Cmd.v
    (Cmd.info "linf" ~doc:"Approximate ||AB||_inf (maximum intersection size).")
    Term.(
      const linf $ common_term $ overlap_arg $ eps_arg $ kappa_arg
      $ general_arg)

(* ------------------------------------------------------------------ *)
(* heavy-hitters *)

let heavy_hitters c phi eps binary =
  start c;
  let { n; density; seed; verbose; _ } = c in
  let rng = Prng.create seed in
  if phi <= 0.0 || eps <= 0.0 || eps > phi then
    failwith "need 0 < eps <= phi";
  let banner, c_mat, run =
    if binary then begin
      let overlap = max 40 (n / 3) in
      let a, b =
        Workload.planted_heavy_hitters rng ~n ~density ~heavy:[ (2, overlap) ]
      in
      ( Printf.sprintf "binary matrices, planted overlaps %d (Theorem 5.3)"
          overlap,
        Product.bool_product a b,
        Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
            Matprod_core.Hh_binary.run ctx
              (Matprod_core.Hh_binary.default_params ~phi ~eps ())
              ~a ~b) )
    end
    else begin
      let a, b, _ =
        Workload.planted_heavy_int rng ~n ~density ~max_value:8
          ~heavy:[ (2, 50, 25) ]
      in
      ( "integer matrices, planted heavy entries (Algorithm 4)",
        Product.int_product a b,
        Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
            Matprod_core.Hh_general.run ctx
              (Matprod_core.Hh_general.default_params ~phi ~eps ())
              ~a ~b) )
    end
  in
  let set = run.Ctx.output in
  let must = Product.heavy_hitters c_mat ~p:1.0 ~phi in
  let may = Product.heavy_hitters c_mat ~p:1.0 ~phi:(phi -. eps) in
  let recall = List.for_all (fun e -> List.mem e set) must in
  let precision = List.for_all (fun e -> List.mem e may) set in
  if not c.json then begin
    Printf.printf "%s\n" banner;
    Printf.printf "exact HH_phi      : %d entries\n" (List.length must);
    Printf.printf "allowed superset  : %d entries (HH_{phi-eps})\n"
      (List.length may);
    Printf.printf "protocol output S : %d entries\n" (List.length set);
    List.iter
      (fun (i, j) ->
        Printf.printf "  (%d, %d) C=%d%s\n" i j (Product.get c_mat i j)
          (if List.mem (i, j) must then "  [required]"
           else if List.mem (i, j) may then "  [allowed]"
           else "  [VIOLATION]"))
      set;
    Printf.printf "band check        : recall %s, precision %s\n"
      (if recall then "ok" else "VIOLATED")
      (if precision then "ok" else "VIOLATED");
    Printf.printf "communication     : %d bits\n" run.Ctx.bits;
    Printf.printf "rounds            : %d\n" run.Ctx.rounds;
    if verbose then
      Format.printf "transcript:@.%a@." Transcript.pp_summary run.Ctx.transcript
  end;
  finish c
    (base_fields ~subcommand:"heavy-hitters" c
    @ [
        ("phi", Obs.Json.Float phi);
        ("eps", Obs.Json.Float eps);
        ("algo", Obs.Json.String (if binary then "binary" else "general"));
        ("exact_hh", Obs.Json.Int (List.length must));
        ("allowed_superset", Obs.Json.Int (List.length may));
        ("output_size", Obs.Json.Int (List.length set));
        ( "output",
          Obs.Json.List
            (List.map
               (fun (i, j) -> Obs.Json.List [ Obs.Json.Int i; Obs.Json.Int j ])
               set) );
        ("recall_ok", Obs.Json.Bool recall);
        ("precision_ok", Obs.Json.Bool precision);
      ]
    @ transcript_fields run.Ctx.transcript)

let heavy_hitters_cmd =
  let phi_arg =
    Arg.(value & opt float 0.05 & info [ "phi" ] ~docv:"PHI" ~doc:"Heaviness threshold.")
  in
  let hh_eps_arg =
    Arg.(value & opt float 0.02 & info [ "eps" ] ~docv:"EPS" ~doc:"Band width.")
  in
  let binary_arg =
    Arg.(value & flag & info [ "binary" ] ~doc:"Binary matrices (Theorem 5.3 protocol).")
  in
  Cmd.v
    (Cmd.info "heavy-hitters"
       ~doc:"Find the lp-(phi,eps)-heavy-hitters of AB.")
    Term.(
      const heavy_hitters $ common_term $ phi_arg $ hh_eps_arg $ binary_arg)

(* ------------------------------------------------------------------ *)
(* sample *)

let sample c kind count =
  start c;
  let { n; density; seed; _ } = c in
  let rng = Prng.create seed in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let c_mat = Product.bool_product a b in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  if not c.json then
    Printf.printf
      "sampling %d %s-samples from a product with ||C||_0 = %d, ||C||_1 = %d\n"
      count kind (Product.nnz c_mat) (Product.l1 c_mat);
  let total_bits = ref 0 in
  let drawn = ref [] in
  for t = 1 to count do
    match kind with
    | "l1" ->
        let run =
          Ctx.run ?transport:(transport_conn c) ~seed:(seed + t) (fun ctx ->
              Matprod_core.L1_sampling.run ctx ~a:ai ~b:bi)
        in
        total_bits := !total_bits + run.Ctx.bits;
        (match run.Ctx.output with
        | Some s ->
            drawn :=
              Obs.Json.List
                [
                  Obs.Json.Int s.Matprod_core.L1_sampling.row;
                  Obs.Json.Int s.Matprod_core.L1_sampling.col;
                ]
              :: !drawn;
            if not c.json then
              Printf.printf "  (%d, %d) via witness %d   [C entry = %d]\n"
                s.Matprod_core.L1_sampling.row s.Matprod_core.L1_sampling.col
                s.Matprod_core.L1_sampling.witness
                (Product.get c_mat s.Matprod_core.L1_sampling.row
                   s.Matprod_core.L1_sampling.col)
        | None -> if not c.json then Printf.printf "  (product empty)\n")
    | "l0" ->
        let run =
          Ctx.run ?transport:(transport_conn c) ~seed:(seed + t) (fun ctx ->
              Matprod_core.L0_sampling.run ctx
                (Matprod_core.L0_sampling.default_params ~eps:0.25)
                ~a:ai ~b:bi)
        in
        total_bits := !total_bits + run.Ctx.bits;
        (match run.Ctx.output with
        | Some s ->
            drawn :=
              Obs.Json.List
                [
                  Obs.Json.Int s.Matprod_core.L0_sampling.row;
                  Obs.Json.Int s.Matprod_core.L0_sampling.col;
                ]
              :: !drawn;
            if not c.json then
              Printf.printf "  (%d, %d) with value %d\n"
                s.Matprod_core.L0_sampling.row s.Matprod_core.L0_sampling.col
                s.Matprod_core.L0_sampling.value
        | None ->
            if not c.json then Printf.printf "  (sampler failed this run)\n")
    | other -> failwith (Printf.sprintf "unknown sample kind %S (l0|l1)" other)
  done;
  if not c.json then
    Printf.printf "total communication: %d bits (%d per sample)\n" !total_bits
      (!total_bits / max 1 count);
  finish c
    (base_fields ~subcommand:"sample" c
    @ [
        ("kind", Obs.Json.String kind);
        ("count", Obs.Json.Int count);
        ("samples", Obs.Json.List (List.rev !drawn));
        ("bits", Obs.Json.Int !total_bits);
        ("bits_per_sample", Obs.Json.Int (!total_bits / max 1 count));
      ])

let sample_cmd =
  let kind_arg =
    Arg.(value & opt string "l0" & info [ "kind" ] ~docv:"KIND" ~doc:"l0 or l1.")
  in
  let count_arg =
    Arg.(value & opt int 5 & info [ "count" ] ~docv:"COUNT" ~doc:"Number of samples.")
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Draw l0- or l1-samples from the product AB.")
    Term.(const sample $ common_term $ kind_arg $ count_arg)

(* ------------------------------------------------------------------ *)
(* lowerbound *)

let lowerbound c kind =
  start c;
  let { n; seed; _ } = c in
  let rng = Prng.create seed in
  match kind with
  | "disj" ->
      let half = n / 2 in
      let a0, b0 =
        Matprod_lowerbounds.Disj_reduction.instance rng ~half ~intersecting:false
          ~density:0.3
      in
      let a1, b1 =
        Matprod_lowerbounds.Disj_reduction.instance rng ~half ~intersecting:true
          ~density:0.3
      in
      Printf.printf "Theorem 4.4 DISJ embedding (n = %d):\n" (2 * half);
      Printf.printf "  disjoint strings     -> ||AB||_inf = %d\n"
        (Product.linf (Product.bool_product a0 b0));
      Printf.printf "  intersecting strings -> ||AB||_inf = %d\n"
        (Product.linf (Product.bool_product a1 b1))
  | "gap" ->
      let half = n / 2 and kappa = 16 in
      let a0, b0 =
        Matprod_lowerbounds.Gap_linf_reduction.instance rng ~half ~kappa ~gap:false
      in
      let a1, b1 =
        Matprod_lowerbounds.Gap_linf_reduction.instance rng ~half ~kappa ~gap:true
      in
      Printf.printf "Theorem 4.8 Gap-linf embedding (n = %d, kappa = %d):\n"
        (2 * half) kappa;
      Printf.printf "  no gap -> ||AB||_inf = %d\n"
        (Product.linf (Product.int_product a0 b0));
      Printf.printf "  gap    -> ||AB||_inf = %d\n"
        (Product.linf (Product.int_product a1 b1))
  | "sum" ->
      let inst =
        Matprod_lowerbounds.Sum_hard.sample ~beta_const:2.0 rng ~n ~kappa:2.0
      in
      let c_mat =
        Product.bool_product inst.Matprod_lowerbounds.Sum_hard.a
          inst.Matprod_lowerbounds.Sum_hard.b
      in
      let diag = ref 0 in
      for i = 0 to n - 1 do
        diag := max !diag (Product.get c_mat i i)
      done;
      Printf.printf
        "Theorem 4.5 SUM instance (n = %d, k = %d, replicas = %d): SUM = %d\n" n
        inst.Matprod_lowerbounds.Sum_hard.k
        inst.Matprod_lowerbounds.Sum_hard.replicas
        inst.Matprod_lowerbounds.Sum_hard.sum_value;
      Printf.printf "  ||AB||_inf = %d, diagonal max = %d\n"
        (Product.linf c_mat) !diag
  | other -> failwith (Printf.sprintf "unknown kind %S (disj|gap|sum)" other)

let lowerbound_cmd =
  let kind_arg =
    Arg.(value & opt string "disj" & info [ "kind" ] ~docv:"KIND" ~doc:"disj, gap or sum.")
  in
  Cmd.v
    (Cmd.info "lowerbound"
       ~doc:"Generate and inspect the paper's lower-bound hard instances.")
    Term.(const lowerbound $ common_term $ kind_arg)

(* ------------------------------------------------------------------ *)
(* joins ([16] family) *)

let joins c kind t =
  start c;
  let { n; density; seed; _ } = c in
  let rng = Prng.create seed in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let c_mat = Product.bool_product a b in
  let actual, estimate, tr =
    match kind with
    | "equality" ->
        let bt = Bmat.transpose b in
        let exact = ref 0 in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if Bmat.row a i = Bmat.row bt j then incr exact
          done
        done;
        let r =
          Ctx.run ?transport:(transport_conn c) ~seed (fun ctx -> Matprod_core.Joins.equality_join ctx ~a ~b)
        in
        if not c.json then
          Printf.printf
            "set-equality join: %d pairs (exact %d), %d bits, %d round\n"
            r.Ctx.output !exact r.Ctx.bits r.Ctx.rounds;
        (float_of_int !exact, float_of_int r.Ctx.output, r.Ctx.transcript)
    | "disjointness" ->
        let actual = (n * n) - Product.nnz c_mat in
        let r =
          Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
              Matprod_core.Joins.disjointness_join ctx ~eps:0.25 ~a ~b)
        in
        if not c.json then
          Printf.printf
            "set-disjointness join: ~%.0f pairs (exact %d), %d bits, %d rounds\n"
            r.Ctx.output actual r.Ctx.bits r.Ctx.rounds;
        (float_of_int actual, r.Ctx.output, r.Ctx.transcript)
    | "atleast" ->
        let actual =
          Array.fold_left
            (fun acc (_, _, v) -> if v >= t then acc + 1 else acc)
            0 (Product.entries c_mat)
        in
        let r =
          Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
              Matprod_core.Joins.at_least_t_join ctx
                (Matprod_core.Joins.default_threshold_params ~eps:0.25)
                ~t ~a ~b)
        in
        if not c.json then
          Printf.printf
            "at-least-%d join: ~%.0f pairs (exact %d), %d bits, %d rounds\n" t
            r.Ctx.output actual r.Ctx.bits r.Ctx.rounds;
        (float_of_int actual, r.Ctx.output, r.Ctx.transcript)
    | other -> failwith (Printf.sprintf "unknown join kind %S" other)
  in
  finish c
    (base_fields ~subcommand:"joins" c
    @ [
        ("kind", Obs.Json.String kind);
        ("threshold", Obs.Json.Int t);
      ]
    @ estimate_fields ~actual ~estimate
    @ transcript_fields tr)

let joins_cmd =
  let kind_arg =
    Arg.(
      value & opt string "equality"
      & info [ "kind" ] ~docv:"KIND" ~doc:"equality, disjointness or atleast.")
  in
  let t_arg =
    Arg.(
      value & opt int 2
      & info [ "t" ] ~docv:"T" ~doc:"Threshold for the at-least-T join.")
  in
  Cmd.v
    (Cmd.info "joins"
       ~doc:"The predecessor join family of [16]: set-equality, \
             set-disjointness and at-least-T joins.")
    Term.(const joins $ common_term $ kind_arg $ t_arg)

(* ------------------------------------------------------------------ *)
(* session *)

let session c beta =
  start c;
  let { n; density; seed; _ } = c in
  let rng = Prng.create seed in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let c_mat = Product.bool_product a b in
  let ctx = Ctx.create ?transport:(transport_conn c) ~seed () in
  let s =
    Matprod_core.Session.establish ctx ~beta ~a:(Imat.of_bmat a)
      ~b:(Imat.of_bmat b)
  in
  let establish_bits = Transcript.total_bits (Ctx.transcript ctx) in
  let coarse = Matprod_core.Session.norm_pow s in
  let top = Matprod_core.Session.top_rows s ~k:5 in
  if not c.json then begin
    Printf.printf "session established: beta = %.2f, %d bits\n" beta
      establish_bits;
    Printf.printf "||C||_0 (coarse)   : %.0f (exact %d) — free\n" coarse
      (Product.nnz c_mat);
    Printf.printf "top rows by support — free:\n";
    List.iter
      (fun (i, est) ->
        let exact = (Product.row_lp_pow c_mat ~p:0.0).(i) in
        Printf.printf "  row %3d: ~%.0f (exact %.0f)\n" i est exact)
      top
  end;
  let refined = Matprod_core.Session.refine ctx s in
  let total_bits = Transcript.total_bits (Ctx.transcript ctx) in
  if not c.json then
    Printf.printf "||C||_0 (refined)  : %.0f — %d extra bits\n" refined
      (total_bits - establish_bits);
  finish c
    (base_fields ~subcommand:"session" c
    @ [
        ("beta", Obs.Json.Float beta);
        ("establish_bits", Obs.Json.Int establish_bits);
        ("coarse_estimate", Obs.Json.Float coarse);
        ("refined_estimate", Obs.Json.Float refined);
        ("exact_l0", Obs.Json.Int (Product.nnz c_mat));
        ( "top_rows",
          Obs.Json.List
            (List.map
               (fun (i, est) ->
                 Obs.Json.List [ Obs.Json.Int i; Obs.Json.Float est ])
               top) );
      ]
    @ transcript_fields (Ctx.transcript ctx));
  Ctx.close ctx

let session_cmd =
  let beta_arg =
    Arg.(
      value & opt float 0.3
      & info [ "beta" ] ~docv:"BETA" ~doc:"Accuracy of the cached sketches.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Establish an amortised query session and answer several \
             questions from one sketch exchange.")
    Term.(const session $ common_term $ beta_arg)

(* ------------------------------------------------------------------ *)
(* estimate: any registered estimator by name *)

(* The legacy estimate/batch fleet flags as --chaos clauses. A worker
   crash kills both endpoints of the victim link (two clauses) so the
   link dies no matter which side speaks first; [--permanent] reinstalls
   it on every supervisor attempt (the ladder cannot save the link, only
   the quorum can save the query). *)
let legacy_fleet_chaos ~worker_crash ~crash_after ~permanent ~straggle_rank
    ~straggle_delay ~byzantine_rank ~byzantine_mode =
  let perm = if permanent then ",permanent" else "" in
  legacy_chaos
    [
      (if worker_crash >= 0 then
         Printf.sprintf
           "kind=crash,worker=%d,after=%d%s;kind=crash,worker=%d,party=b,after=%d%s"
           worker_crash crash_after perm worker_crash crash_after perm
       else "");
      (if straggle_rank >= 0 then
         Printf.sprintf "kind=straggle,worker=%d,delay=%g,after=1,burst=2"
           straggle_rank straggle_delay
       else "");
      (if byzantine_rank >= 0 then
         Printf.sprintf "kind=byzantine,worker=%d,mode=%s" byzantine_rank
           byzantine_mode
       else "");
    ]

let link_label (l : Fleet.link_report) =
  if l.Fleet.replica = 0 then Printf.sprintf "worker %d" l.Fleet.rank
  else Printf.sprintf "worker %d.r%d" l.Fleet.rank l.Fleet.replica

let suspect_fields (s : Fleet.suspect) =
  Obs.Json.Obj
    [
      ("rank", Obs.Json.Int s.Fleet.s_rank);
      ("replica", Obs.Json.Int s.Fleet.s_replica);
      ("check", Obs.Json.String s.Fleet.s_check);
      ("detail", Obs.Json.String s.Fleet.s_detail);
    ]

let print_suspects suspects =
  if suspects <> [] then begin
    Printf.printf "suspects quarantined:\n";
    List.iter
      (fun (s : Fleet.suspect) ->
        Printf.printf "  worker %d replica %d: %s — %s\n" s.Fleet.s_rank
          s.Fleet.s_replica s.Fleet.s_check s.Fleet.s_detail)
      suspects
  end

let estimate_fleet c packed ~a ~b ~workers ~quorum ~replicas ~verify
    ~chaos_spec ~deadline ~fleet_journal =
  let { seed; _ } = c in
  let link_policy =
    { Fleet.default_link_policy with Fleet.deadline_s = deadline }
  in
  let cfg =
    Fleet.config ?quorum ~replicas ~verify ~link_policy ?journal:fleet_journal
      ?transport:(transport_factory c) ~workers ~seed ()
  in
  let wire =
    if chaos_spec <> [] then
      Some
        (fun ~rank ~replica ~attempt ctx ->
          chaos_wire chaos_spec ~seed ~rank ~replica ~attempt ctx)
    else None
  in
  match Fleet.run ?wire cfg packed ~a ~b with
  | Error e ->
      Printf.eprintf "matprod: fleet failed (quorum %d/%d unmet): %s\n"
        cfg.Fleet.quorum workers (Outcome.error_to_string e);
      exit 1
  | Ok rep ->
      if not c.json then begin
        Printf.printf "%s over %d workers (quorum %d) — %s\n"
          (Estimator.name packed) workers cfg.Fleet.quorum
          (Estimator.describe packed);
        List.iter
          (fun (l : Fleet.link_report) ->
            let rungs =
              String.concat "→"
                (List.map
                   (fun (at : Supervisor.attempt) ->
                     Supervisor.rung_to_string at.Supervisor.rung)
                   l.Fleet.attempts)
            in
            match l.Fleet.answer with
            | Ok v ->
                Format.printf "  %s %a: %a  (%d bits%s%s)@." (link_label l)
                  Shard.pp_range l.Fleet.range
                  Estimator.pp_comparable v l.Fleet.fresh_bits
                  (if rungs = "" then "" else ", " ^ rungs)
                  (if l.Fleet.straggled then ", straggled" else "")
            | Error (Outcome.Byzantine_detected { check; _ }) ->
                Format.printf "  %s %a: QUARANTINED — violated %s@."
                  (link_label l) Shard.pp_range l.Fleet.range check
            | Error e ->
                Format.printf "  %s %a: LOST — %s@." (link_label l)
                  Shard.pp_range l.Fleet.range (Outcome.error_to_string e))
          rep.Fleet.links;
        print_suspects rep.Fleet.suspects;
        Format.printf "merged answer     : %a@."
          (Outcome.pp_graded Estimator.pp_comparable)
          rep.Fleet.answer;
        Printf.printf "communication     : %d fresh bits across links\n"
          rep.Fleet.fresh_bits;
        if rep.Fleet.resume_bits_saved > 0 then
          Printf.printf "resume savings    : %d bits replayed from journals\n"
            rep.Fleet.resume_bits_saved
      end;
      finish c
        (base_fields ~subcommand:"estimate" c
        @ [
            ("estimator", Obs.Json.String (Estimator.name packed));
            ( "answer",
              Obs.Json.String
                (Format.asprintf "%a" Estimator.pp_comparable
                   (Outcome.graded_value rep.Fleet.answer)) );
            ("workers", Obs.Json.Int workers);
            ("quorum", Obs.Json.Int cfg.Fleet.quorum);
            ("replicas", Obs.Json.Int cfg.Fleet.replicas);
            ("verify", Obs.Json.Bool cfg.Fleet.verify);
            ("survivors", Obs.Json.Int rep.Fleet.survivors);
            ("coverage", Obs.Json.Float rep.Fleet.coverage);
            ("degraded", Obs.Json.Bool (Outcome.is_degraded rep.Fleet.answer));
            ("fleet_bits", Obs.Json.Int rep.Fleet.fresh_bits);
            ("fleet_rounds", Obs.Json.Int rep.Fleet.fresh_rounds);
            ("resume_bits_saved", Obs.Json.Int rep.Fleet.resume_bits_saved);
            ( "suspects",
              Obs.Json.List (List.map suspect_fields rep.Fleet.suspects) );
            ( "links",
              Obs.Json.List
                (List.map
                   (fun (l : Fleet.link_report) ->
                     Obs.Json.Obj
                       [
                         ("rank", Obs.Json.Int l.Fleet.rank);
                         ("replica", Obs.Json.Int l.Fleet.replica);
                         ("rows", Obs.Json.Int l.Fleet.range.Shard.length);
                         ("bits", Obs.Json.Int l.Fleet.fresh_bits);
                         ( "attempts",
                           Obs.Json.Int (List.length l.Fleet.attempts) );
                         ("straggled", Obs.Json.Bool l.Fleet.straggled);
                         ( "answered",
                           Obs.Json.Bool (Result.is_ok l.Fleet.answer) );
                         ( "verdict",
                           Obs.Json.String
                             (match l.Fleet.answer with
                             | Ok _ -> "ok"
                             | Error (Outcome.Byzantine_detected { check; _ })
                               ->
                                 check
                             | Error _ -> "lost") );
                       ])
                   rep.Fleet.links) );
          ])

let estimate c name list_all workers quorum replicas verify worker_crash
    crash_after permanent straggle_rank straggle_delay byzantine_rank
    byzantine_mode deadline fleet_journal chaos =
  start c;
  let chaos_spec =
    legacy_fleet_chaos ~worker_crash ~crash_after ~permanent ~straggle_rank
      ~straggle_delay ~byzantine_rank ~byzantine_mode
    @ parse_chaos chaos
  in
  let { n; density; seed; verbose; _ } = c in
  if list_all then
    List.iter
      (fun packed ->
        let cost = Estimator.default_cost packed ~n in
        Printf.printf "%-22s ~%-10.0f bits  %d rounds   %s\n"
          (Estimator.name packed) cost.Estimator.bits cost.Estimator.rounds
          (Estimator.describe packed))
      (Registry.all ())
  else
    match Registry.find name with
    | None ->
        failwith
          (Printf.sprintf "unknown estimator %S — try --list for the registry"
             name)
    | Some packed when workers > 1 ->
        let a, b = gen_pair ~zipf:false ~seed ~n ~density in
        estimate_fleet c packed ~a ~b ~workers ~quorum ~replicas ~verify
          ~chaos_spec ~deadline ~fleet_journal
    | Some packed -> (
        let a, b = gen_pair ~zipf:false ~seed ~n ~density in
        let predicted = Estimator.default_cost packed ~n in
        let run =
          Ctx.run ?transport:(transport_conn c) ~seed (fun ctx ->
              (match Chaos.to_fault ~seed:(seed + 77) chaos_spec with
              | Some fault -> Ctx.install_wire ctx ~fault ()
              | None -> ());
              Estimator.run_default_safe packed ctx ~a ~b)
        in
        match run.Ctx.output with
        | Error e ->
            Printf.eprintf "matprod: estimator failed: %s\n"
              (Outcome.error_to_string e);
            exit 1
        | Ok (answer, _diag) ->
            if not c.json then begin
              Printf.printf "%s — %s\n" (Estimator.name packed)
                (Estimator.describe packed);
              Format.printf "answer            : %a@." Estimator.pp_comparable
                answer;
              Printf.printf "communication     : %d bits (predicted ~%.0f)\n"
                run.Ctx.bits predicted.Estimator.bits;
              Printf.printf "rounds            : %d (predicted %d)\n"
                run.Ctx.rounds predicted.Estimator.rounds;
              if verbose then
                Format.printf "transcript:@.%a@." Transcript.pp_summary
                  run.Ctx.transcript
            end;
            finish c
              (base_fields ~subcommand:"estimate" c
              @ [
                  ("estimator", Obs.Json.String (Estimator.name packed));
                  ( "answer",
                    Obs.Json.String
                      (Format.asprintf "%a" Estimator.pp_comparable answer) );
                  ("predicted_bits", Obs.Json.Float predicted.Estimator.bits);
                  ("predicted_rounds", Obs.Json.Int predicted.Estimator.rounds);
                ]
              @ transcript_fields run.Ctx.transcript))

let estimate_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "lp p=0"
      & info [] ~docv:"ESTIMATOR"
          ~doc:"Registry name of the estimator to run (see --list).")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List every registered estimator with its predicted cost at \
                the given -n, then exit.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K"
          ~doc:"Shard the rows of A across $(docv) workers, each running \
                the protocol with a coordinator over its own link, and \
                merge the shard answers. 1 (the default) keeps the plain \
                two-party run.")
  in
  let quorum_arg =
    Arg.(
      value & opt (some int) None
      & info [ "quorum" ] ~docv:"Q"
          ~doc:"Minimum surviving links for an answer; fewer survivors \
                fail the query, between $(docv) and the fleet size the \
                answer is flagged degraded. Defaults to all workers.")
  in
  let worker_crash_arg =
    Arg.(
      value & opt int (-1)
      & info [ "worker-crash" ] ~docv:"RANK" ~docs:Manpage.s_none
          ~doc:"Alias for --chaos kind=crash,worker=$(docv).")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:"Run every shard on $(docv) independent links at derived \
                seeds and reconcile by family-aware replica voting: a \
                replica that disagrees with the majority is quarantined \
                and the shard answer is re-merged from the survivors.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Run the coordinator-side answer validators on every \
                decoded shard answer (exact mass identity, range checks, \
                per-coordinate adjudication, Freivalds) and quarantine \
                violators.")
  in
  let byzantine_arg =
    Arg.(
      value & opt int (-1)
      & info [ "byzantine" ] ~docv:"RANK" ~docs:Manpage.s_none
          ~doc:"Alias for --chaos kind=byzantine,worker=$(docv).")
  in
  let byzantine_mode_arg =
    Arg.(
      value & opt string "scale"
      & info [ "byzantine-mode" ] ~docv:"MODE" ~docs:Manpage.s_none
          ~doc:"Alias for the mode=$(docv) key of --chaos kind=byzantine.")
  in
  let crash_after_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-after" ] ~docv:"MSGS" ~docs:Manpage.s_none
          ~doc:"Alias for the after=$(docv) key of --chaos kind=crash.")
  in
  let permanent_arg =
    Arg.(
      value & flag
      & info [ "permanent" ] ~docs:Manpage.s_none
          ~doc:"Alias for the permanent flag of --chaos kind=crash.")
  in
  let straggle_arg =
    Arg.(
      value & opt int (-1)
      & info [ "straggle" ] ~docv:"RANK" ~docs:Manpage.s_none
          ~doc:"Alias for --chaos kind=straggle,worker=$(docv).")
  in
  let straggle_delay_arg =
    Arg.(
      value & opt float 5.0
      & info [ "straggle-delay" ] ~docv:"SECONDS" ~docs:Manpage.s_none
          ~doc:"Alias for the delay=$(docv) key of --chaos kind=straggle.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-worker straggler deadline on simulated waiting; a link \
                that answers late is failed and sent up the supervisor \
                ladder.")
  in
  let fleet_journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "fleet-journal" ] ~docv:"PATH"
          ~doc:"Base path for per-link write-ahead journals \
                ($(docv).worker<i>), enabling the Resume rung per link.")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Run any estimator from the registry by name with its default \
             query (the uniform interface behind every subcommand) — \
             two-party by default, or sharded across a coordinator + \
             $(b,--workers) fleet with per-link chaos, straggler \
             deadlines, and quorum-degraded answers.")
    Term.(
      const estimate $ common_term $ name_arg $ list_arg $ workers_arg
      $ quorum_arg $ replicas_arg $ verify_arg $ worker_crash_arg
      $ crash_after_arg $ permanent_arg $ straggle_arg $ straggle_delay_arg
      $ byzantine_arg $ byzantine_mode_arg $ deadline_arg $ fleet_journal_arg
      $ chaos_arg)

(* ------------------------------------------------------------------ *)
(* batch: the plan-cached query engine *)

let plan_status_string = function
  | Engine.Plan_hit -> "plan hit"
  | Engine.Plan_miss -> "plan miss"
  | Engine.Not_planned -> "unplanned"

let answer_summary = function
  | Engine.Scalar v -> Printf.sprintf "%.6g" v
  | Engine.Vector v ->
      Printf.sprintf "%d row estimates (max %.6g)" (Array.length v)
        (Array.fold_left Float.max 0.0 v)
  | Engine.Ranked rows ->
      String.concat ", "
        (List.map (fun (i, est) -> Printf.sprintf "row %d ~%.0f" i est) rows)
  | Engine.Entry_set coords -> Printf.sprintf "%d entries" (List.length coords)
  | Engine.L0_samples samples ->
      Printf.sprintf "%d l0-samples (%d drawn)" (Array.length samples)
        (Array.fold_left
           (fun acc s -> if s = None then acc else acc + 1)
           0 samples)
  | Engine.L1_samples samples ->
      Printf.sprintf "%d l1-samples (%d drawn)" (Array.length samples)
        (Array.fold_left
           (fun acc s -> if s = None then acc else acc + 1)
           0 samples)
  | Engine.Shares (alice, bob) ->
      Printf.sprintf "additive shares (%d + %d entries)" (List.length alice)
        (List.length bob)

let batch_fleet c queries ~a ~b ~workers ~quorum ~replicas ~verify ~chaos_spec
    =
  let { seed; _ } = c in
  let cfg =
    Fleet.config ?quorum ~replicas ~verify ?transport:(transport_factory c)
      ~workers ~seed ()
  in
  let wire =
    if chaos_spec <> [] then
      Some
        (fun ~rank ~replica ~attempt ctx ->
          chaos_wire chaos_spec ~seed ~rank ~replica ~attempt ctx)
    else None
  in
  let engine = Engine.create () in
  match Fleet.run_batch ?wire cfg engine queries ~a ~b with
  | Error e ->
      Printf.eprintf "matprod: batch fleet failed (quorum %d/%d unmet): %s\n"
        cfg.Fleet.quorum workers (Outcome.error_to_string e);
      exit 1
  | Ok rep ->
      let answers = Outcome.graded_value rep.Fleet.batch_answers in
      let batch_label (l : Fleet.batch_link) =
        if l.Fleet.b_replica = 0 then Printf.sprintf "worker %d" l.Fleet.b_rank
        else Printf.sprintf "worker %d.r%d" l.Fleet.b_rank l.Fleet.b_replica
      in
      if not c.json then begin
        Printf.printf "batch of %d queries over %d workers (quorum %d)\n"
          (List.length queries) workers cfg.Fleet.quorum;
        List.iter
          (fun (l : Fleet.batch_link) ->
            match l.Fleet.b_answers with
            | Ok _ ->
                Format.printf "  %s %a: ok (%d attempts)@." (batch_label l)
                  Shard.pp_range l.Fleet.b_range
                  (List.length l.Fleet.b_attempts)
            | Error (Outcome.Byzantine_detected { check; _ }) ->
                Format.printf "  %s %a: QUARANTINED — violated %s@."
                  (batch_label l) Shard.pp_range l.Fleet.b_range check
            | Error e ->
                Format.printf "  %s %a: LOST — %s@." (batch_label l)
                  Shard.pp_range l.Fleet.b_range (Outcome.error_to_string e))
          rep.Fleet.batch_links;
        print_suspects rep.Fleet.batch_suspects;
        Printf.printf "answers%s:\n"
          (if Outcome.is_degraded rep.Fleet.batch_answers then " (degraded)"
           else "");
        List.iteri
          (fun i q ->
            Printf.printf "  [%d] %-24s -> %s\n" i (Engine.query_to_string q)
              (answer_summary answers.(i)))
          queries;
        Printf.printf "communication     : %d fresh bits across links\n"
          rep.Fleet.batch_fresh_bits
      end;
      finish c
        (base_fields ~subcommand:"batch" c
        @ [
            ( "queries",
              Obs.Json.List
                (List.map
                   (fun q -> Obs.Json.String (Engine.query_to_string q))
                   queries) );
            ( "answers",
              Obs.Json.List
                (Array.to_list
                   (Array.map
                      (fun ans -> Obs.Json.String (answer_summary ans))
                      answers)) );
            ("workers", Obs.Json.Int workers);
            ("quorum", Obs.Json.Int cfg.Fleet.quorum);
            ("replicas", Obs.Json.Int cfg.Fleet.replicas);
            ("verify", Obs.Json.Bool cfg.Fleet.verify);
            ("survivors", Obs.Json.Int rep.Fleet.batch_survivors);
            ("coverage", Obs.Json.Float rep.Fleet.batch_coverage);
            ( "degraded",
              Obs.Json.Bool (Outcome.is_degraded rep.Fleet.batch_answers) );
            ("fleet_bits", Obs.Json.Int rep.Fleet.batch_fresh_bits);
            ( "suspects",
              Obs.Json.List (List.map suspect_fields rep.Fleet.batch_suspects)
            );
            ( "links",
              Obs.Json.List
                (List.map
                   (fun (l : Fleet.batch_link) ->
                     Obs.Json.Obj
                       [
                         ("rank", Obs.Json.Int l.Fleet.b_rank);
                         ("replica", Obs.Json.Int l.Fleet.b_replica);
                         ("rows", Obs.Json.Int l.Fleet.b_range.Shard.length);
                         ( "attempts",
                           Obs.Json.Int (List.length l.Fleet.b_attempts) );
                         ( "verdict",
                           Obs.Json.String
                             (match l.Fleet.b_answers with
                             | Ok _ -> "ok"
                             | Error (Outcome.Byzantine_detected { check; _ })
                               ->
                                 check
                             | Error _ -> "lost") );
                       ])
                   rep.Fleet.batch_links) );
          ])

let batch c specs journal compare workers quorum replicas verify byzantine_rank
    byzantine_mode chaos =
  start c;
  let chaos_spec =
    legacy_fleet_chaos ~worker_crash:(-1) ~crash_after:0 ~permanent:false
      ~straggle_rank:(-1) ~straggle_delay:5.0 ~byzantine_rank ~byzantine_mode
    @ parse_chaos chaos
  in
  let { n; density; seed; verbose; _ } = c in
  let specs =
    if specs = [] then [ "norm:eps=0.25"; "rows:beta=0.5"; "top:k=5" ]
    else specs
  in
  let queries =
    List.map
      (fun s ->
        match Engine.query_of_string s with
        | Ok q -> q
        | Error e -> failwith e)
      specs
  in
  let a, b = gen_pair ~zipf:false ~seed ~n ~density in
  if workers > 1 then
    batch_fleet c queries ~a ~b ~workers ~quorum ~replicas ~verify ~chaos_spec
  else begin
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let engine = Engine.create () in
  let body ctx =
    (match Chaos.to_fault ~seed:(seed + 77) chaos_spec with
    | Some fault -> Ctx.install_wire ctx ~fault ()
    | None -> ());
    Engine.run engine ctx ~a:ai ~b:bi queries
  in
  let run =
    match
      Outcome.guard (fun () ->
          match journal with
          | Some path ->
              Ctx.run_journaled ?transport:(transport_conn c) ~seed ~journal:path ~protocol:"batch" body
          | None -> Ctx.run ?transport:(transport_conn c) ~seed body)
    with
    | Ok run -> run
    | Error e ->
        Printf.eprintf "matprod: batch failed: %s\n"
          (Outcome.error_to_string e);
        exit 1
  in
  let rep = run.Ctx.output in
  (* The honest baseline: each query as its own uncached singleton batch. *)
  let standalone_bits =
    if not compare then None
    else
      Some
        (List.fold_left
           (fun acc q ->
             let solo = Engine.create ~plan_cache_capacity:0 () in
             acc
             + (Ctx.run ?transport:(transport_conn c) ~seed (fun ctx -> Engine.run solo ctx ~a:ai ~b:bi [ q ]))
                 .Ctx.bits)
           0 queries)
  in
  if not c.json then begin
    Printf.printf "batch of %d queries -> %d exchange groups\n"
      (List.length queries)
      (List.length rep.Engine.groups);
    List.iter
      (fun (g : Engine.group_report) ->
        Printf.printf "  %-24s queries [%s]: %d bits, %d rounds, %s\n"
          g.Engine.family
          (String.concat "; " (List.map string_of_int g.Engine.members))
          g.Engine.bits g.Engine.rounds
          (plan_status_string g.Engine.plan))
      rep.Engine.groups;
    Printf.printf "answers:\n";
    List.iteri
      (fun i q ->
        Printf.printf "  [%d] %-24s -> %s\n" i (Engine.query_to_string q)
          (answer_summary rep.Engine.answers.(i)))
      queries;
    Printf.printf "total             : %d bits, %d rounds\n"
      rep.Engine.total_bits rep.Engine.total_rounds;
    Printf.printf "plan cache        : %d hits, %d misses\n"
      rep.Engine.plan_hits rep.Engine.plan_misses;
    (match standalone_bits with
    | Some solo ->
        Printf.printf
          "standalone        : %d bits -> batching saves %d bits (%.1f%%)\n"
          solo
          (solo - rep.Engine.total_bits)
          (if solo = 0 then 0.0
           else
             100.0
             *. float_of_int (solo - rep.Engine.total_bits)
             /. float_of_int solo)
    | None -> ());
    if verbose then
      Format.printf "transcript:@.%a@." Transcript.pp_summary run.Ctx.transcript
  end;
  finish c
    (base_fields ~subcommand:"batch" c
    @ [
        ( "queries",
          Obs.Json.List
            (List.map
               (fun q -> Obs.Json.String (Engine.query_to_string q))
               queries) );
        ( "groups",
          Obs.Json.List
            (List.map
               (fun (g : Engine.group_report) ->
                 Obs.Json.Obj
                   [
                     ("family", Obs.Json.String g.Engine.family);
                     ( "members",
                       Obs.Json.List
                         (List.map (fun i -> Obs.Json.Int i) g.Engine.members)
                     );
                     ("bits", Obs.Json.Int g.Engine.bits);
                     ("rounds", Obs.Json.Int g.Engine.rounds);
                     ("elapsed_ns", Obs.Json.Int g.Engine.elapsed_ns);
                     ( "plan",
                       Obs.Json.String (plan_status_string g.Engine.plan) );
                   ])
               rep.Engine.groups) );
        ( "answers",
          Obs.Json.List
            (Array.to_list
               (Array.map
                  (fun a -> Obs.Json.String (answer_summary a))
                  rep.Engine.answers)) );
        ("plan_hits", Obs.Json.Int rep.Engine.plan_hits);
        ("plan_misses", Obs.Json.Int rep.Engine.plan_misses);
      ]
    @ (match standalone_bits with
      | Some solo ->
          [
            ("standalone_bits", Obs.Json.Int solo);
            ("saved_bits", Obs.Json.Int (solo - rep.Engine.total_bits));
          ]
      | None -> [])
    @ (match journal with
      | Some path -> [ ("journal", Obs.Json.String path) ]
      | None -> [])
    @ transcript_fields run.Ctx.transcript)
  end

let batch_cmd =
  let query_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "q"; "query" ] ~docv:"SPEC"
          ~doc:
            "A query spec, repeatable: name:key=val,... with names \
             norm|frob|rows|top|l0|l1|hh|linf|exact (docs/API.md). Default \
             batch: \
             norm, rows, top.")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also run every query standalone and report the transcript bits \
             the batch saved (two-party path only).")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K"
          ~doc:"Shard the rows of A across $(docv) workers, run the whole \
                batch on every link, and merge per-query answers. 1 (the \
                default) keeps the plain two-party engine.")
  in
  let quorum_arg =
    Arg.(
      value & opt (some int) None
      & info [ "quorum" ] ~docv:"Q"
          ~doc:"Minimum surviving links for an answer; between $(docv) and \
                the fleet size the answers are flagged degraded. Defaults \
                to all workers.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:"Run every shard's batch on $(docv) replica links at the \
                fleet seed and vote by exact agreement (TMR); a replica \
                whose answer array disagrees with the majority is \
                quarantined.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Run the per-answer validators on every link's decoded batch \
                and quarantine violators.")
  in
  let byzantine_arg =
    Arg.(
      value & opt int (-1)
      & info [ "byzantine" ] ~docv:"RANK" ~docs:Manpage.s_none
          ~doc:"Alias for --chaos kind=byzantine,worker=$(docv).")
  in
  let byzantine_mode_arg =
    Arg.(
      value & opt string "scale"
      & info [ "byzantine-mode" ] ~docv:"MODE" ~docs:Manpage.s_none
          ~doc:"Alias for the mode=$(docv) key of --chaos kind=byzantine.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Answer a batch of statistic queries about AB through the \
          plan-cached engine: queries sharing a sketch family share one \
          exchange — two-party by default, or sharded across a \
          $(b,--workers) fleet with replica voting and answer verification.")
    Term.(
      const batch $ common_term $ query_arg $ journal_arg $ compare_arg
      $ workers_arg $ quorum_arg $ replicas_arg $ verify_arg $ byzantine_arg
      $ byzantine_mode_arg $ chaos_arg)

(* ------------------------------------------------------------------ *)
(* report: offline aggregation of trace files and bench sidecars. *)

let report_cmd =
  let report files =
    let failed = ref false in
    List.iter
      (fun path ->
        match Obs.Telemetry.load_file path with
        | Ok source ->
            Format.printf "%a@." Obs.Telemetry.pp_report (path, source)
        | Error msg ->
            Printf.eprintf "matprod report: %s: %s\n" path msg;
            failed := true)
      files;
    if !failed then exit 1
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Trace files (JSONL or Chrome trace-event) and/or \
             $(b,BENCH_*.json) / $(b,--json) run summaries to summarize.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate trace files and bench/run JSON into per-phase summaries \
          with p50/p90/p99 latencies (docs/OBSERVABILITY.md).")
    Term.(const report $ files_arg)

(* ------------------------------------------------------------------ *)
(* serve: the long-lived estimator daemon, and its load generator. *)

module Server = Matprod_serve.Server
module Loadgen = Matprod_serve.Loadgen

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind/connect (dotted quad).")

let serve c host port journal_dir grace plan_cache =
  start c;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    {
      Server.host;
      port;
      journal_dir;
      plan_cache;
      grace_s = grace;
    }
  in
  let t = Server.create cfg in
  (* stop only flips an atomic, so it is safe inside a signal handler;
     the accept loop notices within its poll interval and drains. *)
  let on_signal = Sys.Signal_handle (fun _ -> Server.stop t) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  if not c.json then
    Printf.printf "matprod serve: listening on %s:%d (journals: %s)\n%!" host
      (Server.port t)
      (Option.value journal_dir ~default:"off");
  Server.serve t;
  let s = Server.stats t in
  if not c.json then
    Printf.printf
      "matprod serve: drained — %d sessions, %d batches, %d queries, %d \
       batch errors\n"
      s.Server.sessions s.Server.batches s.Server.queries s.Server.batch_errors;
  finish c
    [
      ("subcommand", Obs.Json.String "serve");
      ("host", Obs.Json.String host);
      ("port", Obs.Json.Int (Server.port t));
      ("sessions", Obs.Json.Int s.Server.sessions);
      ("batches", Obs.Json.Int s.Server.batches);
      ("queries", Obs.Json.Int s.Server.queries);
      ("batch_errors", Obs.Json.Int s.Server.batch_errors);
    ]

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 7453
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Write a per-batch journal under $(docv) (created if missing); \
             a client that reconnects after a daemon crash and re-requests \
             a batch resumes it from the journal with zero fresh bits.")
  in
  let grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Drain budget on shutdown: live sessions get $(docv) seconds to \
             finish before their sockets are cut.")
  in
  let plan_cache_arg =
    Arg.(
      value & opt int 16
      & info [ "plan-cache" ] ~docv:"SLOTS"
          ~doc:"Engine plan-cache capacity, shared across all sessions.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the estimator daemon: register or synthesise matrix pairs, \
          then answer concurrent batched estimator sessions over TCP until \
          SIGTERM/SIGINT, draining cleanly (docs/SERVING.md).")
    Term.(
      const serve $ common_term $ host_arg $ port_arg $ journal_dir_arg
      $ grace_arg $ plan_cache_arg)

let loadgen c host port connections batches queries specs =
  start c;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let { n; density; seed; _ } = c in
  let specs = if specs = [] then [ "norm:eps=0.25" ] else specs in
  let r =
    Loadgen.run ~host ~port ~connections ~batches ~queries ~n ~density ~seed
      ~specs ()
  in
  if not c.json then begin
    Printf.printf
      "loadgen: %d connections x %d batches x %d queries against %s:%d\n"
      r.Loadgen.connections r.Loadgen.batches_per_connection
      r.Loadgen.queries_per_batch host port;
    Printf.printf "answered          : %d/%d (%d errors)\n" r.Loadgen.answered
      r.Loadgen.queries r.Loadgen.errors;
    Printf.printf "peak in flight    : %d queries\n" r.Loadgen.in_flight;
    Printf.printf "throughput        : %.0f queries/s over %.3f s\n"
      r.Loadgen.qps
      (float_of_int r.Loadgen.elapsed_ns /. 1e9);
    Printf.printf "latency           : p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n"
      (float_of_int r.Loadgen.p50_ns /. 1e6)
      (float_of_int r.Loadgen.p90_ns /. 1e6)
      (float_of_int r.Loadgen.p99_ns /. 1e6);
    Printf.printf "transcript        : %d bits (%d replayed)\n" r.Loadgen.bits
      r.Loadgen.replayed_bits;
    Printf.printf "response digest   : %d\n" r.Loadgen.digest
  end;
  if r.Loadgen.errors > 0 then exit 1;
  finish c
    [
      ("subcommand", Obs.Json.String "loadgen");
      ("host", Obs.Json.String host);
      ("port", Obs.Json.Int port);
      ("connections", Obs.Json.Int r.Loadgen.connections);
      ("batches_per_connection", Obs.Json.Int r.Loadgen.batches_per_connection);
      ("queries_per_batch", Obs.Json.Int r.Loadgen.queries_per_batch);
      ("queries", Obs.Json.Int r.Loadgen.queries);
      ("answered", Obs.Json.Int r.Loadgen.answered);
      ("errors", Obs.Json.Int r.Loadgen.errors);
      ("in_flight", Obs.Json.Int r.Loadgen.in_flight);
      ("elapsed_ns", Obs.Json.Int r.Loadgen.elapsed_ns);
      ("queries_per_sec", Obs.Json.Float r.Loadgen.qps);
      ("p50_ns", Obs.Json.Int r.Loadgen.p50_ns);
      ("p90_ns", Obs.Json.Int r.Loadgen.p90_ns);
      ("p99_ns", Obs.Json.Int r.Loadgen.p99_ns);
      ("bits", Obs.Json.Int r.Loadgen.bits);
      ("replayed_bits", Obs.Json.Int r.Loadgen.replayed_bits);
      ("digest", Obs.Json.Int r.Loadgen.digest);
    ]

let loadgen_cmd =
  let port_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Port of the serve daemon.")
  in
  let connections_arg =
    Arg.(
      value & opt int 8
      & info [ "connections" ] ~docv:"C" ~doc:"Concurrent client sessions.")
  in
  let batches_arg =
    Arg.(
      value & opt int 8
      & info [ "batches" ] ~docv:"B"
          ~doc:"Pipelined batch requests per connection.")
  in
  let queries_arg =
    Arg.(
      value & opt int 16
      & info [ "queries" ] ~docv:"Q" ~doc:"Queries per batch.")
  in
  let specs_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "q"; "query" ] ~docv:"SPEC"
          ~doc:
            "Query specs cycled to fill each batch (default norm:eps=0.25).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a serve daemon with C connections x B pipelined batches x Q \
          queries, report queries/sec with p50/p90/p99 latency, and exit \
          non-zero on any error (docs/SERVING.md).")
    Term.(
      const loadgen $ common_term $ host_arg $ port_arg $ connections_arg
      $ batches_arg $ queries_arg $ specs_arg)

let main_cmd =
  let doc =
    "distributed statistical estimation of matrix products (Woodruff–Zhang, \
     PODS 2018)"
  in
  Cmd.group
    (Cmd.info "matprod" ~version:"1.0.0" ~doc)
    [ join_size_cmd; linf_cmd; heavy_hitters_cmd; sample_cmd; lowerbound_cmd;
      session_cmd; joins_cmd; estimate_cmd; batch_cmd; report_cmd; serve_cmd;
      loadgen_cmd ]

let () = exit (Cmd.eval main_cmd)
