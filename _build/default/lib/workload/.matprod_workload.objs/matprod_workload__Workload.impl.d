lib/workload/workload.ml: Array Hashtbl List Matprod_matrix Matprod_util
