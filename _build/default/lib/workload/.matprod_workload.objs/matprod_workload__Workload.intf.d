lib/workload/workload.mli: Matprod_matrix Matprod_util
