(** Synthetic workload generators for the experiments.

    The paper evaluates nothing empirically, so these generators are chosen
    to exhibit the regimes its theorems speak about: uniform and skewed
    join inputs, planted maximum-overlap pairs, planted heavy hitters, and
    the job/applicant skill-matching scenario from §1.1. All generators
    are deterministic given the PRNG. *)

val uniform_bool :
  Matprod_util.Prng.t -> rows:int -> cols:int -> density:float ->
  Matprod_matrix.Bmat.t
(** Each entry 1 independently with probability [density]. *)

val zipf_bool :
  Matprod_util.Prng.t ->
  rows:int -> cols:int -> row_degree:int -> skew:float ->
  Matprod_matrix.Bmat.t
(** Every row gets ≈[row_degree] items drawn from a Zipf([skew])
    popularity distribution over the columns — skewed join keys, the
    classic hard case for join-size estimators. *)

val uniform_int :
  Matprod_util.Prng.t ->
  rows:int -> cols:int -> density:float -> max_value:int ->
  Matprod_matrix.Imat.t
(** Nonzero entries uniform in [1, max_value]. *)

val planted_pair :
  Matprod_util.Prng.t ->
  n:int -> density:float -> overlap:int ->
  Matprod_matrix.Bmat.t * Matprod_matrix.Bmat.t * (int * int)
(** Background-noise matrices with one (row of A, column of B) pair given
    [overlap] common items: the ℓ∞ needle. Returns (A, B, (i, j)). *)

val planted_heavy_hitters :
  Matprod_util.Prng.t ->
  n:int -> density:float -> heavy:(int * int) list ->
  Matprod_matrix.Bmat.t * Matprod_matrix.Bmat.t
(** [heavy] lists (count, overlap): for each entry, [count] (row, column)
    pairs are planted with the given intersection size on top of uniform
    noise. *)

val planted_heavy_int :
  Matprod_util.Prng.t ->
  n:int ->
  density:float ->
  max_value:int ->
  heavy:(int * int * int) list ->
  Matprod_matrix.Imat.t * Matprod_matrix.Imat.t * (int * int) list
(** Integer workload for Algorithm 4: uniform background values in
    [1, max_value], plus for each [(count, overlap, value)] in [heavy],
    [count] (row, column) pairs sharing [overlap] coordinates on which both
    sides carry [value] — each contributes ≈ overlap·value² to C. Returns
    (A, B, planted positions). Unlike binary inputs, entries here can
    dominate ϕ‖C‖₁ even when ‖C‖₁ is large, which is what pushes
    Algorithm 4 into its β < 1 subsampled regime. *)

type job_market = {
  applicants : Matprod_matrix.Bmat.t;  (** applicant × skill *)
  jobs : Matprod_matrix.Bmat.t;  (** skill × job *)
  star_applicant : int;
  star_job : int;
}

val job_matching :
  Matprod_util.Prng.t ->
  applicants:int -> jobs:int -> skills:int ->
  avg_skills:int -> avg_requirements:int ->
  job_market
(** The §1.1 scenario: applicants hold skill sets, jobs require skill
    sets; skills are Zipf-popular. One "star" applicant/job pair shares an
    unusually large skill overlap. (A·B)_{i,j} = number of job j's
    requirements applicant i meets. *)
