module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat

let uniform_bool rng ~rows ~cols ~density =
  if not (density >= 0.0 && density <= 1.0) then
    invalid_arg "Workload.uniform_bool: density";
  let sets =
    Array.init rows (fun _ ->
        let out = ref [] in
        for k = cols - 1 downto 0 do
          if Prng.bernoulli rng density then out := k :: !out
        done;
        Array.of_list !out)
  in
  Bmat.create ~rows ~cols sets

(* Zipf sampler over [0, cols): weight of rank r is 1/(r+1)^skew.
   Inverse-CDF over the precomputed cumulative table. *)
let zipf_sampler rng ~cols ~skew =
  let weights =
    Array.init cols (fun r -> 1.0 /. (float_of_int (r + 1) ** skew))
  in
  let cum = Array.make cols 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cum.(i) <- !acc)
    weights;
  let total = !acc in
  fun () ->
    let target = Prng.float rng *. total in
    (* binary search for the first cum.(i) >= target *)
    let lo = ref 0 and hi = ref (cols - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) >= target then hi := mid else lo := mid + 1
    done;
    !lo

let zipf_bool rng ~rows ~cols ~row_degree ~skew =
  if row_degree < 0 then invalid_arg "Workload.zipf_bool: row_degree";
  let sample = zipf_sampler rng ~cols ~skew in
  let sets =
    Array.init rows (fun _ ->
        Array.init row_degree (fun _ -> sample ()))
  in
  Bmat.create ~rows ~cols sets

let uniform_int rng ~rows ~cols ~density ~max_value =
  if max_value < 1 then invalid_arg "Workload.uniform_int: max_value";
  let data =
    Array.init rows (fun _ ->
        let out = ref [] in
        for k = cols - 1 downto 0 do
          if Prng.bernoulli rng density then
            out := (k, 1 + Prng.int rng max_value) :: !out
        done;
        Array.of_list !out)
  in
  Imat.create ~rows ~cols data

let distinct_sample rng ~universe ~count =
  let count = min count universe in
  let seen = Hashtbl.create (2 * count) in
  let out = ref [] in
  while Hashtbl.length seen < count do
    let k = Prng.int rng universe in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      out := k :: !out
    end
  done;
  Array.of_list !out

let plant_overlap rng ~n a_sets bt_sets ~row ~col ~overlap =
  let shared = distinct_sample rng ~universe:n ~count:overlap in
  a_sets.(row) <- Array.append a_sets.(row) shared;
  bt_sets.(col) <- Array.append bt_sets.(col) shared

let planted_pair rng ~n ~density ~overlap =
  if overlap > n then invalid_arg "Workload.planted_pair: overlap > n";
  let rand_sets () =
    Array.init n (fun _ ->
        let out = ref [] in
        for k = n - 1 downto 0 do
          if Prng.bernoulli rng density then out := k :: !out
        done;
        Array.of_list !out)
  in
  let a_sets = rand_sets () and bt_sets = rand_sets () in
  let i = Prng.int rng n and j = Prng.int rng n in
  plant_overlap rng ~n a_sets bt_sets ~row:i ~col:j ~overlap;
  let a = Bmat.create ~rows:n ~cols:n a_sets in
  let bt = Bmat.create ~rows:n ~cols:n bt_sets in
  (a, Bmat.transpose bt, (i, j))

let planted_heavy_hitters rng ~n ~density ~heavy =
  let rand_sets () =
    Array.init n (fun _ ->
        let out = ref [] in
        for k = n - 1 downto 0 do
          if Prng.bernoulli rng density then out := k :: !out
        done;
        Array.of_list !out)
  in
  let a_sets = rand_sets () and bt_sets = rand_sets () in
  List.iter
    (fun (count, overlap) ->
      for _ = 1 to count do
        let i = Prng.int rng n and j = Prng.int rng n in
        plant_overlap rng ~n a_sets bt_sets ~row:i ~col:j ~overlap
      done)
    heavy;
  let a = Bmat.create ~rows:n ~cols:n a_sets in
  let bt = Bmat.create ~rows:n ~cols:n bt_sets in
  (a, Bmat.transpose bt)

let planted_heavy_int rng ~n ~density ~max_value ~heavy =
  let rand_rows () =
    Array.init n (fun _ ->
        let out = ref [] in
        for k = n - 1 downto 0 do
          if Prng.bernoulli rng density then
            out := (k, 1 + Prng.int rng max_value) :: !out
        done;
        !out)
  in
  let a_rows = rand_rows () and bt_rows = rand_rows () in
  let planted = ref [] in
  List.iter
    (fun (count, overlap, value) ->
      for _ = 1 to count do
        let i = Prng.int rng n and j = Prng.int rng n in
        let shared = distinct_sample rng ~universe:n ~count:overlap in
        a_rows.(i) <-
          Array.to_list (Array.map (fun k -> (k, value)) shared) @ a_rows.(i);
        bt_rows.(j) <-
          Array.to_list (Array.map (fun k -> (k, value)) shared) @ bt_rows.(j);
        planted := (i, j) :: !planted
      done)
    heavy;
  let a =
    Imat.create ~rows:n ~cols:n (Array.map Array.of_list a_rows)
  in
  let bt =
    Imat.create ~rows:n ~cols:n (Array.map Array.of_list bt_rows)
  in
  (a, Imat.transpose bt, List.rev !planted)

type job_market = {
  applicants : Bmat.t;
  jobs : Bmat.t;
  star_applicant : int;
  star_job : int;
}

let job_matching rng ~applicants ~jobs ~skills ~avg_skills ~avg_requirements =
  let sample = zipf_sampler rng ~cols:skills ~skew:1.1 in
  let app_sets =
    Array.init applicants (fun _ ->
        Array.init (max 1 (avg_skills / 2 + Prng.int rng (max 1 avg_skills)))
          (fun _ -> sample ()))
  in
  let job_sets =
    Array.init jobs (fun _ ->
        Array.init
          (max 1 (avg_requirements / 2 + Prng.int rng (max 1 avg_requirements)))
          (fun _ -> sample ()))
  in
  (* One star pair sharing an unusually large block of rare skills. *)
  let star_applicant = Prng.int rng applicants
  and star_job = Prng.int rng jobs in
  let rare =
    distinct_sample rng ~universe:skills ~count:(min skills (4 * avg_skills))
  in
  app_sets.(star_applicant) <- Array.append app_sets.(star_applicant) rare;
  job_sets.(star_job) <- Array.append job_sets.(star_job) rare;
  let a = Bmat.create ~rows:applicants ~cols:skills app_sets in
  let j = Bmat.create ~rows:jobs ~cols:skills job_sets in
  { applicants = a; jobs = Bmat.transpose j; star_applicant; star_job }
