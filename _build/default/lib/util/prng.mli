(** Deterministic, splittable pseudo-random number generator.

    The generator is a {e splitmix64} stream. Every randomized component of
    the library threads one of these explicitly, so whole protocol runs are
    reproducible from a single integer seed. [split] derives an independent
    child stream, which is how "public coins" shared by Alice and Bob are
    modelled: both parties split the same public seed in the same order. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Equal seeds
    give equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    independent of the remainder of [t]'s stream. *)

val fresh_seed : t -> int
(** Draw a seed suitable for [create] or [derive]. *)

val derive : int -> int -> int -> t
(** [derive seed a b] is a generator determined purely by the triple — the
    same triple always yields the same stream. Used to materialise entries
    of implicit sketching matrices (entry (r, i) of S) without storing S. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62-bit non-negative integer (fits OCaml's native [int]). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float
(** Uniform on [0, 1) with 53 bits of precision. *)

val float_pos : t -> float
(** Uniform on (0, 1]: never returns 0, safe as a log argument. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val exponential : t -> float
(** Exponential with rate 1. *)

val binomial : t -> int -> float -> int
(** [binomial t n p] samples Binomial(n, p). Exact: uses the inversion walk
    for small means and Bernoulli summation otherwise; intended for the
    modest per-entry counts in this library. *)

val geometric_level : t -> float -> int
(** [geometric_level t r] with [0 < r < 1] returns the largest level [l >= 0]
    such that a uniform draw [u] satisfies [u <= r^l]; i.e. the number of
    consecutive sampling stages at rate [r] an item survives. Used to build
    nested subsamples (Algorithm 2). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
