(** Arithmetic in GF(p) for the Mersenne prime p = 2^31 − 1.

    All values are native OCaml [int]s in [0, p). Products of two field
    elements fit in 62 bits, so everything stays within OCaml's 63-bit
    native integers with no boxing. This field backs the library's k-wise
    independent hash functions and the fingerprints of the sparse-recovery
    sketches. *)

val p : int
(** The modulus, 2^31 − 1 = 2147483647. *)

val of_int : int -> int
(** Canonical representative of an arbitrary integer (handles negatives). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int

val pow : int -> int -> int
(** [pow b e] for [e >= 0], by squaring. *)

val inv : int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val poly_eval : int array -> int -> int
(** [poly_eval coeffs x] evaluates [Σ coeffs.(i) · x^i] by Horner's rule. *)
