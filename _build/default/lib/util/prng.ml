type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = mix64 s }

let fresh_seed t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let derive seed a b =
  let open Int64 in
  let s = mix64 (of_int seed) in
  let s = mix64 (logxor s (mul (of_int a) 0x9E3779B97F4A7C15L)) in
  let s = mix64 (logxor s (mul (of_int b) 0xC2B2AE3D27D4EB4FL)) in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then go () else v
  in
  go ()

let float t =
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int r *. 0x1.0p-53

let float_pos t =
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  (float_of_int r +. 1.0) *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t < p

let gaussian t =
  let u1 = float_pos t and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t = -.log (float_pos t)

let binomial t n p =
  if n < 0 then invalid_arg "Prng.binomial: negative n";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n <= 64 then (
    let c = ref 0 in
    for _ = 1 to n do
      if bernoulli t p then incr c
    done;
    !c)
  else if float_of_int n *. p <= 30.0 then (
    (* Inversion: count geometric skips between successes. *)
    let log_q = log (1.0 -. p) in
    let rec go acc count =
      let acc = acc +. (log (float_pos t) /. log_q) in
      if acc > float_of_int n then count else go (acc +. 1.0) (count + 1)
    in
    go 0.0 0)
  else (
    (* Split recursively around the median to keep the walk short. *)
    let half = n / 2 in
    let left = ref 0 in
    for _ = 1 to half do
      if bernoulli t p then incr left
    done;
    let rest = n - half in
    let right = ref 0 in
    for _ = 1 to rest do
      if bernoulli t p then incr right
    done;
    !left + !right)

let geometric_level t r =
  if not (r > 0.0 && r < 1.0) then invalid_arg "Prng.geometric_level: rate";
  let u = float_pos t in
  (* largest l with u <= r^l, i.e. l = floor(log u / log r) *)
  let l = int_of_float (Float.floor (log u /. log r)) in
  if l < 0 then 0 else l

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
