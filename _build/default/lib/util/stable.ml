let check_p p =
  if not (p > 0.0 && p <= 2.0) then invalid_arg "Stable: p must be in (0, 2]"

let sample rng ~p =
  check_p p;
  if p = 2.0 then sqrt 2.0 *. Prng.gaussian rng
  else
    let theta = (Prng.float rng -. 0.5) *. Float.pi in
    if p = 1.0 then tan theta
    else
      (* Chambers–Mallows–Stuck for the symmetric case. *)
      let w = Prng.exponential rng in
      let a = sin (p *. theta) /. (cos theta ** (1.0 /. p)) in
      let b = (cos ((1.0 -. p) *. theta) /. w) ** ((1.0 -. p) /. p) in
      a *. b

(* Median of |N(0,1)| is the 0.75 normal quantile. *)
let normal_q75 = 0.674489750196082

let calibration_samples = 200_001

let cache : (float, float) Hashtbl.t = Hashtbl.create 8

let median_abs ~p =
  check_p p;
  if p = 2.0 then sqrt 2.0 *. normal_q75
  else if p = 1.0 then 1.0
  else
    match Hashtbl.find_opt cache p with
    | Some m -> m
    | None ->
        let rng = Prng.create 0x5eedab1e in
        let xs =
          Array.init calibration_samples (fun _ -> Float.abs (sample rng ~p))
        in
        Array.sort Float.compare xs;
        let m = xs.(calibration_samples / 2) in
        Hashtbl.replace cache p m;
        m
