(** Sampling from symmetric p-stable distributions, 0 < p <= 2.

    Indyk's ℓp sketch (Lemma 2.1 of the paper, citing [19]) fills the
    sketching matrix with i.i.d. p-stable variables and estimates ‖x‖p as
    the median of |(Sx)_i| divided by the median of the absolute p-stable
    distribution. This module provides the sampler (Chambers–Mallows–Stuck)
    and the normalising median constant. *)

val sample : Prng.t -> p:float -> float
(** One draw from the standard symmetric p-stable distribution.
    [p = 2] is Gaussian (scaled so that sums behave p-stably, i.e. N(0,2)),
    [p = 1] is standard Cauchy. Requires [0 < p <= 2]. *)

val median_abs : p:float -> float
(** Median of |X| for X standard symmetric p-stable. Closed form for
    p ∈ {1, 2}; otherwise computed once per [p] by deterministic Monte
    Carlo calibration (fixed internal seed) and cached. *)
