let p = (1 lsl 31) - 1

(* Mersenne reduction for values in [0, 2^62): fold the high bits down.
   Two folds suffice because x < 2^62 = (2^31)^2. *)
let reduce x =
  let x = (x land p) + (x lsr 31) in
  let x = (x land p) + (x lsr 31) in
  if x >= p then x - p else x

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b =
  let d = a - b in
  if d < 0 then d + p else d

let mul a b = reduce (a * b)

let pow b e =
  if e < 0 then invalid_arg "Field31.pow: negative exponent";
  let rec go b e acc =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul b b) (e lsr 1) (mul acc b)
    else go (mul b b) (e lsr 1) acc
  in
  go b e 1

let inv a = if a = 0 then raise Division_by_zero else pow a (p - 2)

let poly_eval coeffs x =
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := add (mul !acc x) coeffs.(i)
  done;
  !acc
