(** Radix-2 complex FFT and circular convolution.

    Substrate for Pagh's compressed matrix multiplication [32]: the
    CountSketch of an outer product u·vᵀ with decomposable hashes is the
    circular convolution of the two vector sketches, computed in
    O(b log b) with an FFT. Sizes must be powers of two. *)

val is_power_of_two : int -> bool

val fft : re:float array -> im:float array -> unit
(** In-place forward transform; [re] and [im] must have equal power-of-two
    length. *)

val ifft : re:float array -> im:float array -> unit
(** In-place inverse transform (includes the 1/n normalisation). *)

val convolve : float array -> float array -> float array
(** [convolve x y] is the circular convolution (Σ_j x_j·y_{(i−j) mod b}),
    length = the common power-of-two length of the inputs. *)
