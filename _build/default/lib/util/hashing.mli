(** k-wise independent hash families over GF(2^31 − 1).

    A hash function is a random degree-(k−1) polynomial over {!Field31};
    evaluating it at a key gives a k-wise independent value in [0, p).
    Derived helpers map that value to buckets, to ±1 signs, or to field
    fingerprint coefficients. All constructors consume randomness from an
    explicit {!Prng.t}. *)

type t
(** A sampled hash function. *)

val create : Prng.t -> k:int -> t
(** [create rng ~k] samples a k-wise independent function ([k >= 1]).
    [k = 2] is pairwise, [k = 4] suffices for AMS sign hashes. *)

val degree : t -> int
(** Independence parameter [k] the function was created with. *)

val value : t -> int -> int
(** [value h key] in [0, 2^31 − 1); keys may be any non-negative int below
    the field modulus. *)

val bucket : t -> buckets:int -> int -> int
(** [bucket h ~buckets key] maps to [0, buckets). Bias is at most
    [buckets / 2^31], negligible for the bucket counts used here. *)

val sign : t -> int -> int
(** [sign h key] is ±1, determined by one bit of [value]. *)

val field_coeff : t -> int -> int
(** [field_coeff h key] is a nonzero field element usable as a fingerprint
    coefficient (value 0 is remapped to 1). The polynomial value is passed
    through a bijective finalizer first: raw polynomial coefficients make
    Σ_{i∈S} c(i) a function of S's power sums, so structured supports
    (equal size and sum) would collide under {e every} draw of the hash —
    a soundness hole for sparse-recovery verification and set
    fingerprints. *)

val float01 : t -> int -> float
(** [float01 h key] deterministic pseudo-uniform in [0,1) derived from
    [value]; used for consistent subsampling of coordinates. *)
