let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check_len re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft: length must be a power of two";
  n

(* Iterative Cooley–Tukey with bit-reversal permutation. *)
let transform ~inverse re im =
  let n = check_len re im in
  if n > 1 then begin
    (* Bit reversal. *)
    let j = ref 0 in
    for i = 0 to n - 2 do
      if i < !j then begin
        let tr = re.(i) in
        re.(i) <- re.(!j);
        re.(!j) <- tr;
        let ti = im.(i) in
        im.(i) <- im.(!j);
        im.(!j) <- ti
      end;
      let m = ref (n lsr 1) in
      while !m >= 1 && !j land !m <> 0 do
        j := !j lxor !m;
        m := !m lsr 1
      done;
      j := !j lor !m
    done;
    (* Butterflies. *)
    let len = ref 2 in
    while !len <= n do
      let half = !len / 2 in
      let ang =
        (if inverse then 2.0 else -2.0) *. Float.pi /. float_of_int !len
      in
      let wr = cos ang and wi = sin ang in
      let i = ref 0 in
      while !i < n do
        let cr = ref 1.0 and ci = ref 0.0 in
        for k = !i to !i + half - 1 do
          let ur = re.(k) and ui = im.(k) in
          let vr = (re.(k + half) *. !cr) -. (im.(k + half) *. !ci) in
          let vi = (re.(k + half) *. !ci) +. (im.(k + half) *. !cr) in
          re.(k) <- ur +. vr;
          im.(k) <- ui +. vi;
          re.(k + half) <- ur -. vr;
          im.(k + half) <- ui -. vi;
          let nr = (!cr *. wr) -. (!ci *. wi) in
          ci := (!cr *. wi) +. (!ci *. wr);
          cr := nr
        done;
        i := !i + !len
      done;
      len := !len * 2
    done;
    if inverse then begin
      let scale = 1.0 /. float_of_int n in
      for k = 0 to n - 1 do
        re.(k) <- re.(k) *. scale;
        im.(k) <- im.(k) *. scale
      done
    end
  end

let fft ~re ~im = transform ~inverse:false re im
let ifft ~re ~im = transform ~inverse:true re im

let convolve x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Fft.convolve: length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft.convolve: power of two";
  let xr = Array.copy x and xi = Array.make n 0.0 in
  let yr = Array.copy y and yi = Array.make n 0.0 in
  fft ~re:xr ~im:xi;
  fft ~re:yr ~im:yi;
  let zr = Array.make n 0.0 and zi = Array.make n 0.0 in
  for k = 0 to n - 1 do
    zr.(k) <- (xr.(k) *. yr.(k)) -. (xi.(k) *. yi.(k));
    zi.(k) <- (xr.(k) *. yi.(k)) +. (xi.(k) *. yr.(k))
  done;
  ifft ~re:zr ~im:zi;
  zr
