lib/util/stable.ml: Array Float Hashtbl Prng
