lib/util/fft.ml: Array Float
