lib/util/field31.ml: Array
