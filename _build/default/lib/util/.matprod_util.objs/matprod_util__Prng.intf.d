lib/util/prng.mli:
