lib/util/stats.mli:
