lib/util/field31.mli:
