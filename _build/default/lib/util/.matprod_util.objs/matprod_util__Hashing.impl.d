lib/util/hashing.ml: Array Field31 Int64 Prng
