lib/util/stable.mli: Prng
