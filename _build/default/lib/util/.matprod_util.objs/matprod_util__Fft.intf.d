lib/util/fft.mli:
