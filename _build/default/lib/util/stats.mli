(** Small numerical helpers shared by estimators, tests, and the benchmark
    harness: order statistics, summary statistics, and distribution
    distance measures used to validate the samplers. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty array. *)

val variance : float array -> float
(** Population variance (divides by n). *)

val median : float array -> float
(** Median without mutating the input (copies then sorts). Even lengths
    average the two central elements. *)

val quantile : float array -> float -> float
(** [quantile xs q] for q ∈ [0,1], nearest-rank on a sorted copy. *)

val median_of_means : float array -> groups:int -> float
(** Split [xs] into [groups] contiguous groups, take each group's mean,
    return the median of those means — the standard boosting used by AMS
    estimators. [groups] is clamped to [Array.length xs]. *)

val total_variation : float array -> float array -> float
(** Total-variation distance between two discrete distributions given as
    (not necessarily normalised) non-negative weight vectors of equal
    length. *)

val chi_square : observed:int array -> expected:float array -> float
(** Pearson χ² statistic; [expected] entries must be positive. *)

val relative_error : actual:float -> estimate:float -> float
(** |estimate − actual| / |actual|, with the convention 0/0 = 0 and
    x/0 = ∞ for x ≠ 0. *)

val approx_factor : actual:float -> estimate:float -> float
(** Symmetric approximation factor max(actual/estimate, estimate/actual)
    for positive inputs; ∞ if exactly one of them is 0; 1 if both are. *)

val log2 : float -> float
val ceil_div : int -> int -> int

val float_sum : float array -> float
(** Kahan-compensated sum. *)
