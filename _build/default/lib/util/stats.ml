let nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let float_sum xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !sum +. y in
      comp := t -. !sum -. y;
      sum := t)
    xs;
  !sum

let mean xs =
  nonempty "mean" xs;
  float_sum xs /. float_of_int (Array.length xs)

let variance xs =
  nonempty "variance" xs;
  let m = mean xs in
  let devs = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
  float_sum devs /. float_of_int (Array.length xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median xs =
  nonempty "median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n land 1 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let quantile xs q =
  nonempty "quantile" xs;
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Stats.quantile: q range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let idx = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  ys.(idx)

let median_of_means xs ~groups =
  nonempty "median_of_means" xs;
  let n = Array.length xs in
  let groups = max 1 (min groups n) in
  let size = n / groups in
  let means =
    Array.init groups (fun g ->
        let lo = g * size in
        let hi = if g = groups - 1 then n else lo + size in
        let acc = ref 0.0 in
        for i = lo to hi - 1 do
          acc := !acc +. xs.(i)
        done;
        !acc /. float_of_int (hi - lo))
  in
  median means

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Stats.total_variation: length mismatch";
  let norm xs =
    let s = float_sum xs in
    if s <= 0.0 then invalid_arg "Stats.total_variation: zero mass";
    Array.map (fun x -> x /. s) xs
  in
  let p = norm p and q = norm q in
  let diffs = Array.init (Array.length p) (fun i -> Float.abs (p.(i) -. q.(i))) in
  0.5 *. float_sum diffs

let chi_square ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Stats.chi_square: length mismatch";
  let terms =
    Array.init (Array.length observed) (fun i ->
        let e = expected.(i) in
        if e <= 0.0 then invalid_arg "Stats.chi_square: nonpositive expected";
        let d = float_of_int observed.(i) -. e in
        d *. d /. e)
  in
  float_sum terms

let relative_error ~actual ~estimate =
  if actual = 0.0 then if estimate = 0.0 then 0.0 else Float.infinity
  else Float.abs (estimate -. actual) /. Float.abs actual

let approx_factor ~actual ~estimate =
  if actual < 0.0 || estimate < 0.0 then
    invalid_arg "Stats.approx_factor: negative input";
  if actual = 0.0 && estimate = 0.0 then 1.0
  else if actual = 0.0 || estimate = 0.0 then Float.infinity
  else Float.max (actual /. estimate) (estimate /. actual)

let log2 x = log x /. log 2.0

let ceil_div a b =
  if b <= 0 then invalid_arg "Stats.ceil_div: nonpositive divisor";
  (a + b - 1) / b
