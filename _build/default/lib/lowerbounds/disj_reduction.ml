module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat

let embed ~a' ~b' =
  let h = Bmat.rows a' in
  if Bmat.cols a' <> h || Bmat.rows b' <> h || Bmat.cols b' <> h then
    invalid_arg "Disj_reduction.embed: blocks must be square and equal";
  let n = 2 * h in
  (* A = [A' I; 0 0] *)
  let a_sets =
    Array.init n (fun i ->
        if i < h then Array.append (Bmat.row a' i) [| h + i |] else [||])
  in
  (* B = [I 0; B' 0] *)
  let b_sets =
    Array.init n (fun i ->
        if i < h then [| i |] else Bmat.row b' (i - h))
  in
  (Bmat.create ~rows:n ~cols:n a_sets, Bmat.create ~rows:n ~cols:n b_sets)

let instance rng ~half ~intersecting ~density =
  if half <= 0 then invalid_arg "Disj_reduction.instance: half";
  let t = half * half in
  (* Split the coordinate universe in two so the random supports are
     disjoint; optionally plant one shared coordinate. *)
  let x = Array.make t false and y = Array.make t false in
  for c = 0 to t - 1 do
    if Prng.float rng < density then
      if c land 1 = 0 then x.(c) <- true else y.(c) <- true
  done;
  if intersecting then begin
    let c = Prng.int rng t in
    x.(c) <- true;
    y.(c) <- true
  end;
  let to_block bits =
    Bmat.of_dense
      (Array.init half (fun i ->
           Array.init half (fun j -> if bits.((i * half) + j) then 1 else 0)))
  in
  (* A·B's top-left block is A'·I + I·B' = A' + B', so coordinate c of
     both strings lands at the same (i, j) = (c / half, c mod half). *)
  embed ~a':(to_block x) ~b':(to_block y)
