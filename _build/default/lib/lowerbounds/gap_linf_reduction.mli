(** Theorem 4.8(2) — the Gap-ℓ∞ reduction showing κ-approximation of
    ‖A·B‖∞ for integer matrices needs Ω̃(n²/κ²) bits.

    Gap-ℓ∞ promises either |x_c − y_c| ≤ 1 for every coordinate or
    |x_c − y_c| ≥ κ for some coordinate. Reshaped into (n/2)×(n/2) blocks
    and embedded with the same [[·, I], [0, 0]] / [[I, 0], [·, 0]] trick
    (with B' holding −y), ‖A·B‖∞ = ‖A' − B'‖∞ is ≤ 1 or ≥ κ. *)

val embed :
  a':Matprod_matrix.Imat.t ->
  b':Matprod_matrix.Imat.t ->
  Matprod_matrix.Imat.t * Matprod_matrix.Imat.t
(** A·B's top-left block = A' + B'. Blocks must be square and equal. *)

val instance :
  Matprod_util.Prng.t ->
  half:int ->
  kappa:int ->
  gap:bool ->
  Matprod_matrix.Imat.t * Matprod_matrix.Imat.t
(** Embedded Gap-ℓ∞ instance: x uniform in [0, κ]^t, y = x ± at most 1
    coordinate-wise; when [gap] is set, one coordinate is pushed to
    distance κ. The returned matrices satisfy ‖A·B‖∞ ≤ 1 (no gap) or
    ‖A·B‖∞ ≥ κ (gap). *)
