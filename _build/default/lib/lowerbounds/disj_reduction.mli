(** Theorem 4.4 — the set-disjointness reduction showing any factor-2
    approximation of ‖A·B‖∞ needs Ω(n²) bits.

    DISJ inputs x, y of length (n/2)² are reshaped into (n/2)×(n/2)
    matrices A', B' and embedded as

    {v A = [ A'  I ]     B = [ I   0 ]
           [ 0   0 ]         [ B'  0 ] v}

    so that A·B = [[A' + B', 0], [0, 0]] and ‖A·B‖∞ = ‖A' + B'‖∞ ∈ {1, 2}
    according to whether the sets intersect. *)

val embed :
  a':Matprod_matrix.Bmat.t ->
  b':Matprod_matrix.Bmat.t ->
  Matprod_matrix.Bmat.t * Matprod_matrix.Bmat.t
(** The block construction above. [a'] and [b'] must be square with equal
    size h; the result is 2h × 2h. *)

val instance :
  Matprod_util.Prng.t ->
  half:int ->
  intersecting:bool ->
  density:float ->
  Matprod_matrix.Bmat.t * Matprod_matrix.Bmat.t
(** A random DISJ instance already embedded: [half] = n/2. When
    [intersecting] is false, the supports of x and y are disjoint
    (‖AB‖∞ = 1 whenever both are nonempty); when true, exactly one common
    coordinate is planted (‖AB‖∞ = 2). [density] is the fill rate of each
    side's private support. *)
