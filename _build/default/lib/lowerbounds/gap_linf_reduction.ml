module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat

let embed ~a' ~b' =
  let h = Imat.rows a' in
  if Imat.cols a' <> h || Imat.rows b' <> h || Imat.cols b' <> h then
    invalid_arg "Gap_linf_reduction.embed: blocks must be square and equal";
  let n = 2 * h in
  let a_rows =
    Array.init n (fun i ->
        if i < h then Array.append (Imat.row a' i) [| (h + i, 1) |] else [||])
  in
  let b_rows =
    Array.init n (fun i ->
        if i < h then [| (i, 1) |] else Imat.row b' (i - h))
  in
  (Imat.create ~rows:n ~cols:n a_rows, Imat.create ~rows:n ~cols:n b_rows)

let instance rng ~half ~kappa ~gap =
  if half <= 0 || kappa < 2 then invalid_arg "Gap_linf_reduction.instance";
  let t = half * half in
  let x = Array.init t (fun _ -> Prng.int rng (kappa + 1)) in
  let y =
    Array.map
      (fun v ->
        let d = Prng.int rng 3 - 1 in
        max 0 (min kappa (v + d)))
      x
  in
  if gap then begin
    let c = Prng.int rng t in
    x.(c) <- kappa;
    y.(c) <- 0
  end;
  let to_block vals sign =
    Imat.of_dense
      (Array.init half (fun i ->
           Array.init half (fun j -> sign * vals.((i * half) + j))))
  in
  (* A' holds x, B' holds −y, so A' + B' = x − y entry-wise. *)
  embed ~a':(to_block x 1) ~b':(to_block y (-1))
