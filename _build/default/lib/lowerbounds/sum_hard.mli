(** Theorem 4.5 — the SUM-of-DISJ hard distribution showing κ-approximation
    of ‖A·B‖∞ for binary matrices needs Ω̃(n^1.5/κ) bits.

    Parameters (following §4.2.2): β = √(50·ln n / n), k = 1/(4κβ²).
    Alice's input U = (U₁,…,U_n) and Bob's V with (U_i, V_i) ∈
    ({0,1}^k)² drawn from ν_k (no intersecting coordinate) except one
    planted index D redrawn from μ_k (intersecting with probability ½).
    The inputs are tiled into n×n block matrices A = [A¹ … A^{n/k}]
    (each Aᶻ has row i = U_i) and B = [B¹ … B^{n/k}]ᵀ (column i = V_i),
    so that SUM = 1 forces ‖A·B‖∞ ≥ n/k while SUM = 0 keeps every entry
    near its mean ≈ β²n — a gap of 2κ. *)

type instance = {
  a : Matprod_matrix.Bmat.t;
  b : Matprod_matrix.Bmat.t;
  sum_value : int;  (** SUM(U, V) ∈ {0, 1} *)
  beta : float;
  k : int;
  replicas : int;  (** number of horizontal/vertical tiles n/k *)
}

val parameters :
  ?beta_const:float -> n:int -> kappa:float -> unit -> float * int
(** (β, k) for the given n and κ; raises if the regime is degenerate
    (k < 2 or k > n). [beta_const] defaults to the paper's 50; smaller
    values keep the regime non-degenerate at laptop scales. *)

val sample :
  ?beta_const:float -> Matprod_util.Prng.t -> n:int -> kappa:float -> instance
(** Draw (U, V) ~ φ and build the embedded matrices. *)

val sample_conditioned :
  ?beta_const:float ->
  Matprod_util.Prng.t ->
  n:int ->
  kappa:float ->
  sum:int ->
  instance
(** Same, conditioned on SUM(U,V) = [sum] (∈ {0,1}). *)
