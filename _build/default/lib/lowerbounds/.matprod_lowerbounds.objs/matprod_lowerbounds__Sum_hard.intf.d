lib/lowerbounds/sum_hard.mli: Matprod_matrix Matprod_util
