lib/lowerbounds/disj_reduction.ml: Array Matprod_matrix Matprod_util
