lib/lowerbounds/sum_hard.ml: Array Float Matprod_matrix Matprod_util Printf
