lib/lowerbounds/gap_linf_reduction.ml: Array Matprod_matrix Matprod_util
