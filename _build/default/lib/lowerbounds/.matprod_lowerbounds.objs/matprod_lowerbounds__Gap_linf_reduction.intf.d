lib/lowerbounds/gap_linf_reduction.mli: Matprod_matrix Matprod_util
