lib/lowerbounds/disj_reduction.mli: Matprod_matrix Matprod_util
