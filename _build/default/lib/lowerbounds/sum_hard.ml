module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat

type instance = {
  a : Bmat.t;
  b : Bmat.t;
  sum_value : int;
  beta : float;
  k : int;
  replicas : int;
}

let parameters ?(beta_const = 50.0) ~n ~kappa () =
  if n < 4 then invalid_arg "Sum_hard: n too small";
  if kappa < 1.0 then invalid_arg "Sum_hard: kappa >= 1";
  let beta = sqrt (beta_const *. log (float_of_int n) /. float_of_int n) in
  let k =
    int_of_float (Float.round (1.0 /. (4.0 *. kappa *. beta *. beta)))
  in
  if k < 2 || k > n then
    invalid_arg
      (Printf.sprintf
         "Sum_hard: degenerate regime (k = %d for n = %d, kappa = %.1f); \
          increase n or decrease beta_const"
         k n kappa);
  (beta, k)

(* nu1: (0,1) w.p. beta/2, (1,0) w.p. beta/2, else (0,0) — never (1,1). *)
let nu1 rng beta =
  if Prng.bernoulli rng beta then
    if Prng.bool rng then (0, 1) else (1, 0)
  else (0, 0)

let mu1 rng = if Prng.bool rng then (1, 1) else (0, 0)

let nuk rng beta k =
  let x = Array.make k 0 and y = Array.make k 0 in
  for c = 0 to k - 1 do
    let xv, yv = nu1 rng beta in
    x.(c) <- xv;
    y.(c) <- yv
  done;
  (x, y)

let build rng ~n ~kappa ~beta_const ~forced_sum =
  let beta, k = parameters ?beta_const ~n ~kappa () in
  let us = Array.make n [||] and vs = Array.make n [||] in
  for i = 0 to n - 1 do
    let x, y = nuk rng beta k in
    us.(i) <- x;
    vs.(i) <- y
  done;
  (* Plant the mu_k coordinate: row D, coordinate M. *)
  let d = Prng.int rng n in
  let m = Prng.int rng k in
  let mx, my = match forced_sum with
    | None -> mu1 rng
    | Some 1 -> (1, 1)
    | Some 0 -> (0, 0)
    | Some _ -> invalid_arg "Sum_hard: sum must be 0 or 1"
  in
  us.(d).(m) <- mx;
  vs.(d).(m) <- my;
  let sum_value = if mx = 1 && my = 1 then 1 else 0 in
  let replicas = n / k in
  (* A: row i repeats U_i across the replicas; B: row (z*k + c) has a 1 in
     column j iff V_j(c) = 1. *)
  let a_sets =
    Array.init n (fun i ->
        let cols = ref [] in
        for z = replicas - 1 downto 0 do
          for c = k - 1 downto 0 do
            if us.(i).(c) = 1 then cols := ((z * k) + c) :: !cols
          done
        done;
        Array.of_list !cols)
  in
  let b_sets =
    Array.init n (fun r ->
        if r >= replicas * k then [||]
        else begin
          let c = r mod k in
          let cols = ref [] in
          for j = n - 1 downto 0 do
            if vs.(j).(c) = 1 then cols := j :: !cols
          done;
          Array.of_list !cols
        end)
  in
  {
    a = Bmat.create ~rows:n ~cols:n a_sets;
    b = Bmat.create ~rows:n ~cols:n b_sets;
    sum_value;
    beta;
    k;
    replicas;
  }

let sample ?beta_const rng ~n ~kappa =
  build rng ~n ~kappa ~beta_const ~forced_sum:None

let sample_conditioned ?beta_const rng ~n ~kappa ~sum =
  build rng ~n ~kappa ~beta_const ~forced_sum:(Some sum)
