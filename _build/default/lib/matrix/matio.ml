let fail_at ~line msg = failwith (Printf.sprintf "Matio: line %d: %s" line msg)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_bmat path m =
  with_out path (fun oc ->
      Printf.fprintf oc "matprod bmat %d %d\n" (Bmat.rows m) (Bmat.cols m);
      for i = 0 to Bmat.rows m - 1 do
        Array.iter (fun k -> Printf.fprintf oc "%d %d\n" i k) (Bmat.row m i)
      done)

let write_imat path m =
  with_out path (fun oc ->
      Printf.fprintf oc "matprod imat %d %d\n" (Imat.rows m) (Imat.cols m);
      for i = 0 to Imat.rows m - 1 do
        Array.iter
          (fun (k, v) -> Printf.fprintf oc "%d %d %d\n" i k v)
          (Imat.row m i)
      done)

type parsed = {
  rows : int;
  cols : int;
  entries : (int * int * int) list; (* (row, col, value) 0-indexed *)
}

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           out := input_line ic :: !out
         done
       with End_of_file -> ());
      List.rev !out)

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.filter (fun s -> s <> "")

let parse_native ~kind ~header_line rest =
  let rows, cols =
    match tokens header_line with
    | [ "matprod"; _; r; c ] -> (
        try (int_of_string r, int_of_string c)
        with _ -> fail_at ~line:1 "bad dimensions")
    | _ -> fail_at ~line:1 "bad matprod header"
  in
  let entries = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 2 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match (kind, tokens line) with
        | `Bmat, [ i; k ] -> (
            try entries := (int_of_string i, int_of_string k, 1) :: !entries
            with _ -> fail_at ~line:lineno "bad entry")
        | `Imat, [ i; k; v ] -> (
            try
              entries :=
                (int_of_string i, int_of_string k, int_of_string v) :: !entries
            with _ -> fail_at ~line:lineno "bad entry")
        | _ -> fail_at ~line:lineno "wrong number of fields")
    rest;
  { rows; cols; entries = !entries }

let parse_matrixmarket ~header_line rest =
  let field =
    match tokens (String.lowercase_ascii header_line) with
    | "%%matrixmarket" :: "matrix" :: "coordinate" :: field :: _ -> field
    | _ -> fail_at ~line:1 "unsupported MatrixMarket header"
  in
  (* Skip % comment lines; first data line is "rows cols nnz". *)
  let rec split_comments idx = function
    | [] -> fail_at ~line:idx "missing size line"
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '%' then split_comments (idx + 1) rest
        else ((idx, line), rest)
  in
  let (size_lineno, size_line), data = split_comments 2 rest in
  let rows, cols =
    match tokens size_line with
    | [ r; c; _nnz ] -> (
        try (int_of_string r, int_of_string c)
        with _ -> fail_at ~line:size_lineno "bad size line")
    | _ -> fail_at ~line:size_lineno "bad size line"
  in
  let entries = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = size_lineno + 1 + idx in
      let line = String.trim line in
      if line <> "" && line.[0] <> '%' then begin
        let value_of v =
          match field with
          | "pattern" -> fail_at ~line:lineno "value in pattern file"
          | "integer" -> (
              try int_of_string v with _ -> fail_at ~line:lineno "bad value")
          | "real" -> (
              try int_of_float (Float.round (float_of_string v))
              with _ -> fail_at ~line:lineno "bad value")
          | other -> fail_at ~line:lineno ("unsupported field " ^ other)
        in
        match tokens line with
        | [ i; k ] when field = "pattern" -> (
            try
              entries :=
                (int_of_string i - 1, int_of_string k - 1, 1) :: !entries
            with _ -> fail_at ~line:lineno "bad entry")
        | [ i; k; v ] when field <> "pattern" -> (
            try
              entries :=
                (int_of_string i - 1, int_of_string k - 1, value_of v)
                :: !entries
            with _ -> fail_at ~line:lineno "bad entry")
        | _ -> fail_at ~line:lineno "wrong number of fields"
      end)
    data;
  { rows; cols; entries = !entries }

let parse path =
  match read_lines path with
  | [] -> failwith "Matio: empty file"
  | header :: rest ->
      let h = String.lowercase_ascii (String.trim header) in
      if String.length h >= 14 && String.sub h 0 14 = "%%matrixmarket" then
        parse_matrixmarket ~header_line:header rest
      else if String.length h >= 12 && String.sub h 0 12 = "matprod bmat" then
        parse_native ~kind:`Bmat ~header_line:header rest
      else if String.length h >= 12 && String.sub h 0 12 = "matprod imat" then
        parse_native ~kind:`Imat ~header_line:header rest
      else failwith "Matio: unrecognised header"

let read_imat path =
  let p = parse path in
  let rows = Array.make p.rows [] in
  List.iter
    (fun (i, k, v) ->
      if i < 0 || i >= p.rows || k < 0 || k >= p.cols then
        failwith "Matio: entry out of declared dimensions";
      rows.(i) <- (k, v) :: rows.(i))
    p.entries;
  Imat.create ~rows:p.rows ~cols:p.cols (Array.map Array.of_list rows)

let read_bmat path =
  let p = parse path in
  let rows = Array.make p.rows [] in
  List.iter
    (fun (i, k, v) ->
      if i < 0 || i >= p.rows || k < 0 || k >= p.cols then
        failwith "Matio: entry out of declared dimensions";
      if v <> 0 then rows.(i) <- k :: rows.(i))
    p.entries;
  Bmat.create ~rows:p.rows ~cols:p.cols (Array.map Array.of_list rows)
