(** Binary matrices in adjacency (rows-as-sets) form.

    A {0,1} matrix is stored as one sorted array of column indices per row —
    the "projection sets" A_i = {k | A_{i,k} = 1} of the paper. This is the
    natural representation for the set-intersection-join view and makes all
    protocol messages (index lists, column sums, sampled submatrices) cheap
    to form. Matrices may be rectangular. *)

type t

val create : rows:int -> cols:int -> int array array -> t
(** [create ~rows ~cols sets] where [sets.(i)] lists the columns of the 1s
    in row [i]. Rows are sorted and deduplicated defensively; indices must
    lie in [0, cols). *)

val of_dense : int array array -> t
(** From a dense 0/1 array-of-rows (any nonzero is a 1). *)

val zero : rows:int -> cols:int -> t
val identity : int -> t

val rows : t -> int
val cols : t -> int

val row : t -> int -> int array
(** Sorted column indices of row [i]. The returned array is owned by the
    matrix — do not mutate. *)

val row_weight : t -> int -> int
(** Number of 1s in row [i]. *)

val get : t -> int -> int -> bool
val nnz : t -> int

val transpose : t -> t

val col_weights : t -> int array
(** [col_weights a].(j) = number of 1s in column j (the ‖A_{*,j}‖₁ of
    Remark 2). *)

val map_rows : t -> (int -> int array -> int array) -> t
(** Rebuild the matrix row by row; the callback receives the row index and
    its sorted column indices, and returns the new indices (will be
    re-sorted / deduplicated). Used for subsampling rows or entries. *)

val filter_entries : t -> (int -> int -> bool) -> t
(** Keep entry (i, k) iff the predicate holds. *)

val to_dense : t -> int array array

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
