(** Bit-packed binary matrices.

    A dense {0,1} matrix stored 62 columns per native word, with
    AND+popcount row intersection — the fast path for exact ground truth
    on dense instances (C_{i,j} = |A_i ∩ B^j| is one word-wise sweep), and
    the representation whose size (n·m bits) the trivial protocol's cost
    equals by construction. Complements {!Bmat}'s adjacency form: convert
    with {!of_bmat} / {!to_bmat}. *)

type t

val create : rows:int -> cols:int -> t
(** All-zero matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
val set : t -> int -> int -> bool -> unit

val of_bmat : Bmat.t -> t
val to_bmat : t -> Bmat.t

val nnz : t -> int

val row_intersection : t -> int -> t -> int -> int
(** [row_intersection x i y j] = |{k : x_{i,k} = 1 ∧ y_{j,k} = 1}|.
    Requires cols x = cols y. *)

val product_entry : a:t -> bt:t -> int -> int -> int
(** (A·B)_{i,j} given A and Bᵀ both packed row-major:
    [product_entry ~a ~bt i j = row_intersection a i bt j]. *)

val product_linf : a:t -> bt:t -> int
(** max_{i,j} (A·B)_{i,j} by a full packed sweep — O(rows_a·rows_bt·cols/62)
    word operations, the fast exact ℓ∞ for dense instances. *)

val popcount : int -> int
(** Number of set bits in a native int (SWAR), exposed for tests. *)
