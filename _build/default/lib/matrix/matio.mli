(** Reading and writing matrices.

    Two formats:

    - the native text format ("matprod"): a header line
      [matprod bmat <rows> <cols>] or [matprod imat <rows> <cols>], then
      one entry per line ([i k] for binary, [i k v] for integer),
      0-indexed, ['#'] comments allowed;
    - MatrixMarket coordinate files ([%%MatrixMarket matrix coordinate
      (pattern|integer|real) general]), 1-indexed, as distributed by
      SuiteSparse/SNAP — real values are accepted and rounded.

    [read_*] dispatches on the first line. All functions raise [Failure]
    with a line number on malformed input. *)

val write_bmat : string -> Bmat.t -> unit
val write_imat : string -> Imat.t -> unit

val read_bmat : string -> Bmat.t
(** Reads native bmat or any MatrixMarket coordinate file (nonzero values
    become 1s). *)

val read_imat : string -> Imat.t
(** Reads native imat/bmat or MatrixMarket. *)
