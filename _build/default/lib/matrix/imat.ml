type t = { rows : int; cols : int; data : (int * int) array array }

let normalize_row ~cols i pairs =
  let pairs = Array.copy pairs in
  Array.sort (fun (k1, _) (k2, _) -> compare k1 k2) pairs;
  let m = Array.length pairs in
  let out = ref [] in
  let j = ref 0 in
  while !j < m do
    let k, _ = pairs.(!j) in
    if k < 0 || k >= cols then
      invalid_arg
        (Printf.sprintf "Imat: row %d has a column index outside [0,%d)" i cols);
    let v = ref 0 in
    while !j < m && fst pairs.(!j) = k do
      v := !v + snd pairs.(!j);
      incr j
    done;
    if !v <> 0 then out := (k, !v) :: !out
  done;
  Array.of_list (List.rev !out)

let create ~rows ~cols data =
  if rows < 0 || cols < 0 then invalid_arg "Imat.create: negative dimension";
  if Array.length data <> rows then invalid_arg "Imat.create: row count";
  { rows; cols; data = Array.mapi (normalize_row ~cols) data }

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let data =
    Array.map
      (fun r ->
        if Array.length r <> cols then invalid_arg "Imat.of_dense: ragged";
        let ks = ref [] in
        for k = cols - 1 downto 0 do
          if r.(k) <> 0 then ks := (k, r.(k)) :: !ks
        done;
        Array.of_list !ks)
      d
  in
  { rows; cols; data }

let of_bmat b =
  {
    rows = Bmat.rows b;
    cols = Bmat.cols b;
    data =
      Array.init (Bmat.rows b) (fun i ->
          Array.map (fun k -> (k, 1)) (Bmat.row b i));
  }

let zero ~rows ~cols = create ~rows ~cols (Array.make rows [||])
let rows t = t.rows
let cols t = t.cols
let row t i = t.data.(i)

let get t i k =
  if i < 0 || i >= t.rows || k < 0 || k >= t.cols then
    invalid_arg "Imat.get: out of range";
  let r = t.data.(i) in
  let rec go lo hi =
    if lo >= hi then 0
    else
      let mid = (lo + hi) / 2 in
      let km, vm = r.(mid) in
      if km = k then vm else if km < k then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length r)

let nnz t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.data

let transpose t =
  let counts = Array.make t.cols 0 in
  Array.iter (Array.iter (fun (k, _) -> counts.(k) <- counts.(k) + 1)) t.data;
  let out = Array.init t.cols (fun k -> Array.make counts.(k) (0, 0)) in
  let fill = Array.make t.cols 0 in
  for i = 0 to t.rows - 1 do
    Array.iter
      (fun (k, v) ->
        out.(k).(fill.(k)) <- (i, v);
        fill.(k) <- fill.(k) + 1)
      t.data.(i)
  done;
  { rows = t.cols; cols = t.rows; data = out }

let row_l1 t i = Array.fold_left (fun acc (_, v) -> acc + abs v) 0 t.data.(i)

let col_l1 t =
  let acc = Array.make t.cols 0 in
  Array.iter (Array.iter (fun (k, v) -> acc.(k) <- acc.(k) + abs v)) t.data;
  acc

let row_lp_pow t ~p i =
  let acc = ref 0.0 in
  Array.iter
    (fun (_, v) ->
      if v <> 0 then
        acc := !acc +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p)
    t.data.(i);
  !acc

let map_values t f =
  {
    t with
    data =
      Array.mapi
        (fun i r ->
          let kept =
            Array.to_list r
            |> List.filter_map (fun (k, v) ->
                   let v' = f i k v in
                   if v' = 0 then None else Some (k, v'))
          in
          Array.of_list kept)
        t.data;
  }

let max_abs t =
  Array.fold_left
    (fun acc r -> Array.fold_left (fun acc (_, v) -> max acc (abs v)) acc r)
    0 t.data

let nonneg t = Array.for_all (Array.for_all (fun (_, v) -> v >= 0)) t.data

let to_dense t =
  let d = Array.init t.rows (fun _ -> Array.make t.cols 0) in
  Array.iteri (fun i r -> Array.iter (fun (k, v) -> d.(i).(k) <- v) r) t.data;
  d

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun r1 r2 -> r1 = r2) a.data b.data

let pp ppf t =
  Format.fprintf ppf "@[<v>Imat %dx%d nnz=%d" t.rows t.cols (nnz t);
  for i = 0 to min (t.rows - 1) 15 do
    Format.pp_print_cut ppf ();
    Format.fprintf ppf "row %d:" i;
    Array.iter (fun (k, v) -> Format.fprintf ppf " (%d,%d)" k v) t.data.(i)
  done;
  Format.fprintf ppf "@]"
