lib/matrix/bmat.mli: Format
