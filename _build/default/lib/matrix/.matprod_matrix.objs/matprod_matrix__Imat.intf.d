lib/matrix/imat.mli: Bmat Format
