lib/matrix/bitmat.mli: Bmat
