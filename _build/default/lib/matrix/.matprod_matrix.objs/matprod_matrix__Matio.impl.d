lib/matrix/matio.ml: Array Bmat Float Fun Imat List Printf String
