lib/matrix/imat.ml: Array Bmat Float Format List Printf
