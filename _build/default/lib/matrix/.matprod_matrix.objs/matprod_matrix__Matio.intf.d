lib/matrix/matio.mli: Bmat Imat
