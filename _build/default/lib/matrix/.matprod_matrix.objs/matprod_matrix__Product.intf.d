lib/matrix/product.mli: Bmat Imat
