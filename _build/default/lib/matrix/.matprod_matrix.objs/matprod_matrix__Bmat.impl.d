lib/matrix/bmat.ml: Array Format List Printf
