lib/matrix/bitmat.ml: Array Bmat
