lib/matrix/product.ml: Array Bmat Float Hashtbl Imat List Option
