(* 62 columns per word keeps every word non-negative (bits 0..61), so no
   sign-bit special cases anywhere. *)
let bits_per_word = 62

type t = { rows : int; cols : int; words_per_row : int; data : int array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Bitmat.create";
  let words_per_row = (cols + bits_per_word - 1) / bits_per_word in
  { rows; cols; words_per_row; data = Array.make (max 1 (rows * words_per_row)) 0 }

let rows t = t.rows
let cols t = t.cols

let index t i k =
  if i < 0 || i >= t.rows || k < 0 || k >= t.cols then
    invalid_arg "Bitmat: out of range";
  ((i * t.words_per_row) + (k / bits_per_word), k mod bits_per_word)

let get t i k =
  let w, b = index t i k in
  t.data.(w) land (1 lsl b) <> 0

let set t i k v =
  let w, b = index t i k in
  if v then t.data.(w) <- t.data.(w) lor (1 lsl b)
  else t.data.(w) <- t.data.(w) land lnot (1 lsl b)

let of_bmat m =
  let t = create ~rows:(Bmat.rows m) ~cols:(Bmat.cols m) in
  for i = 0 to Bmat.rows m - 1 do
    Array.iter (fun k -> set t i k true) (Bmat.row m i)
  done;
  t

let to_bmat t =
  let sets =
    Array.init t.rows (fun i ->
        let out = ref [] in
        for k = t.cols - 1 downto 0 do
          if get t i k then out := k :: !out
        done;
        Array.of_list !out)
  in
  Bmat.create ~rows:t.rows ~cols:t.cols sets

(* SWAR popcount; inputs are 62-bit non-negative words (also correct for
   any non-negative 63-bit int). *)
let popcount x =
  if x < 0 then invalid_arg "Bitmat.popcount: negative";
  let m1 = 0x5555555555555555 and m2 = 0x3333333333333333 in
  let m4 = 0x0F0F0F0F0F0F0F0F in
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * 0x0101010101010101) lsr 56

let nnz t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.data

let row_intersection x i y j =
  if x.cols <> y.cols then invalid_arg "Bitmat.row_intersection: cols differ";
  if i < 0 || i >= x.rows || j < 0 || j >= y.rows then
    invalid_arg "Bitmat.row_intersection: row range";
  let acc = ref 0 in
  let xi = i * x.words_per_row and yj = j * y.words_per_row in
  for w = 0 to x.words_per_row - 1 do
    acc := !acc + popcount (x.data.(xi + w) land y.data.(yj + w))
  done;
  !acc

let product_entry ~a ~bt i j = row_intersection a i bt j

let product_linf ~a ~bt =
  if a.cols <> bt.cols then invalid_arg "Bitmat.product_linf: inner dims";
  let best = ref 0 in
  for i = 0 to a.rows - 1 do
    for j = 0 to bt.rows - 1 do
      let v = row_intersection a i bt j in
      if v > !best then best := v
    done
  done;
  !best
