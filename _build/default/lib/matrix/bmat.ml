type t = { rows : int; cols : int; sets : int array array }

let normalize_row ~cols i ks =
  let ks = Array.copy ks in
  Array.sort compare ks;
  let m = Array.length ks in
  if m > 0 && (ks.(0) < 0 || ks.(m - 1) >= cols) then
    invalid_arg
      (Printf.sprintf "Bmat: row %d has a column index outside [0,%d)" i cols);
  (* Deduplicate in place. *)
  let w = ref 0 in
  for r = 0 to m - 1 do
    if r = 0 || ks.(r) <> ks.(r - 1) then (
      ks.(!w) <- ks.(r);
      incr w)
  done;
  Array.sub ks 0 !w

let create ~rows ~cols sets =
  if rows < 0 || cols < 0 then invalid_arg "Bmat.create: negative dimension";
  if Array.length sets <> rows then invalid_arg "Bmat.create: row count";
  { rows; cols; sets = Array.mapi (normalize_row ~cols) sets }

let of_dense d =
  let rows = Array.length d in
  let cols = if rows = 0 then 0 else Array.length d.(0) in
  let sets =
    Array.map
      (fun r ->
        if Array.length r <> cols then invalid_arg "Bmat.of_dense: ragged";
        let ks = ref [] in
        for k = cols - 1 downto 0 do
          if r.(k) <> 0 then ks := k :: !ks
        done;
        Array.of_list !ks)
      d
  in
  { rows; cols; sets }

let zero ~rows ~cols = create ~rows ~cols (Array.make rows [||])
let identity n = { rows = n; cols = n; sets = Array.init n (fun i -> [| i |]) }
let rows t = t.rows
let cols t = t.cols
let row t i = t.sets.(i)
let row_weight t i = Array.length t.sets.(i)

let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let get t i k =
  if i < 0 || i >= t.rows || k < 0 || k >= t.cols then
    invalid_arg "Bmat.get: out of range";
  mem_sorted t.sets.(i) k

let nnz t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.sets

let transpose t =
  let counts = Array.make t.cols 0 in
  Array.iter (Array.iter (fun k -> counts.(k) <- counts.(k) + 1)) t.sets;
  let out = Array.init t.cols (fun k -> Array.make counts.(k) 0) in
  let fill = Array.make t.cols 0 in
  for i = 0 to t.rows - 1 do
    Array.iter
      (fun k ->
        out.(k).(fill.(k)) <- i;
        fill.(k) <- fill.(k) + 1)
      t.sets.(i)
  done;
  (* Rows were scanned in increasing i, so each out.(k) is already sorted. *)
  { rows = t.cols; cols = t.rows; sets = out }

let col_weights t =
  let counts = Array.make t.cols 0 in
  Array.iter (Array.iter (fun k -> counts.(k) <- counts.(k) + 1)) t.sets;
  counts

let map_rows t f =
  let sets = Array.mapi (fun i r -> normalize_row ~cols:t.cols i (f i r)) t.sets in
  { t with sets }

let filter_entries t pred =
  map_rows t (fun i r -> Array.of_list (List.filter (pred i) (Array.to_list r)))

let to_dense t =
  let d = Array.init t.rows (fun _ -> Array.make t.cols 0) in
  Array.iteri (fun i r -> Array.iter (fun k -> d.(i).(k) <- 1) r) t.sets;
  d

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun r1 r2 -> r1 = r2) a.sets b.sets

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to min (t.rows - 1) 31 do
    for k = 0 to min (t.cols - 1) 63 do
      Format.pp_print_char ppf (if mem_sorted t.sets.(i) k then '1' else '.')
    done;
    Format.pp_print_cut ppf ()
  done;
  if t.rows > 32 || t.cols > 64 then Format.fprintf ppf "(%dx%d, truncated)" t.rows t.cols;
  Format.fprintf ppf "@]"
