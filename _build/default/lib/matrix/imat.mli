(** Sparse integer matrices (compressed rows of (column, value) pairs).

    The general-matrix protocols of the paper (Algorithm 1 for A,B ∈ Zⁿˣⁿ,
    Theorem 4.8, Algorithm 4) operate on integer matrices with polynomially
    bounded entries. Zero entries are never stored; rows are sorted by
    column. Matrices may be rectangular. *)

type t

val create : rows:int -> cols:int -> (int * int) array array -> t
(** [create ~rows ~cols r] with [r.(i)] the (column, value) pairs of row i.
    Pairs are sorted; duplicate columns are summed; zero values dropped. *)

val of_dense : int array array -> t
val of_bmat : Bmat.t -> t
(** View a binary matrix as a 0/1 integer matrix. *)

val zero : rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int
val row : t -> int -> (int * int) array
(** Sorted (column, value) pairs of row [i]; owned by the matrix. *)

val get : t -> int -> int -> int
val nnz : t -> int

val transpose : t -> t

val row_l1 : t -> int -> int
(** Σ_k |row i (k)|. *)

val col_l1 : t -> int array
(** Per-column ℓ1 mass — the ‖A_{*,j}‖₁ values Alice sends in Remark 2. *)

val row_lp_pow : t -> p:float -> int -> float
(** Σ_k |v|^p over row i, with 0^0 = 0 (so p = 0 counts nonzeros). *)

val map_values : t -> (int -> int -> int -> int) -> t
(** [map_values t f] applies [f i k v]; zero results are dropped. *)

val max_abs : t -> int
(** Largest |value| in the matrix (0 if empty). *)

val nonneg : t -> bool

val to_dense : t -> int array array
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
