(** Exact matrix products, computed output-sensitively.

    Ground truth for every experiment: C = A·B is accumulated bucket-wise
    (for every inner index k, combine the k-th column of A with the k-th row
    of B), which costs Σ_k nnz(A_{*,k})·nnz(B_{k,*}) = ‖|A|·|B|‖₁ updates
    instead of n³. The result is a sparse map from (i, j) to C_{i,j}, with
    the norm/heavy-hitter queries the paper studies. *)

type t

val rows : t -> int
val cols : t -> int

val bool_product : Bmat.t -> Bmat.t -> t
(** C = A·B over the integers for binary A, B: C_{i,j} = |A_i ∩ B^j|. *)

val int_product : Imat.t -> Imat.t -> t
(** C = A·B over the integers. *)

val get : t -> int -> int -> int
val nnz : t -> int
(** ‖C‖₀ — the set-intersection join size. *)

val l1 : t -> int
(** Σ |C_{i,j}| — for non-negative inputs, the natural join size ‖C‖₁. *)

val lp_pow : t -> p:float -> float
(** ‖C‖_p^p with the 0^0 = 0 convention (p = 0 gives ‖C‖₀). *)

val linf : t -> int
(** max |C_{i,j}| — the maximum intersection size. *)

val argmax : t -> (int * int * int) option
(** An entry attaining the ℓ∞ norm, if the product is nonzero. *)

val entries : t -> (int * int * int) array
(** All nonzero (i, j, C_{i,j}), in unspecified order. *)

val row_lp_pow : t -> p:float -> float array
(** Per-row ‖C_{i,*}‖_p^p — the quantities Algorithm 1 estimates. *)

val col_lp_pow : t -> p:float -> float array

val heavy_hitters : t -> p:float -> phi:float -> (int * int) list
(** HH^p_ϕ(C) = {(i,j) : |C_{i,j}|^p ≥ ϕ·‖C‖_p^p}, sorted. *)

val iter : t -> (int -> int -> int -> unit) -> unit
