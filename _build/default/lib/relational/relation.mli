(** Binary relations over integer attribute domains — the §1.1 view.

    A relation R ⊆ [x_dom] × [y_dom] is what a database site actually
    holds; its incidence matrix (row i = the projection set
    R_i = {y | (i, y) ∈ R}) is what the protocols consume. Conversions are
    exact and the tuple set is kept, so tests can compute joins directly
    from tuples as an independent ground-truth path. *)

type t

val of_tuples : x_dom:int -> y_dom:int -> (int * int) list -> t
(** Duplicates collapse; raises [Invalid_argument] on out-of-domain
    attributes. *)

val x_dom : t -> int
val y_dom : t -> int

val cardinality : t -> int
(** Number of (distinct) tuples. *)

val tuples : t -> (int * int) list
(** Sorted. *)

val mem : t -> int -> int -> bool

val to_matrix : t -> Matprod_matrix.Bmat.t
(** The x_dom × y_dom incidence matrix. *)

val of_matrix : Matprod_matrix.Bmat.t -> t

val compose : t -> t -> t
(** R ∘ S = {(x, z) | ∃y : (x,y) ∈ R ∧ (y,z) ∈ S} — reference
    implementation straight from the definition, for ground truth.
    Requires y_dom r = x_dom s. *)

val natural_join_size : t -> t -> int
(** |R ⋈ S| = |{(x, y, z) | (x,y) ∈ R ∧ (y,z) ∈ S}|, from the tuples. *)

val random : Matprod_util.Prng.t -> x_dom:int -> y_dom:int -> tuples:int -> t
(** Uniform random distinct tuples. *)
