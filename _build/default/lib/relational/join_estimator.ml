module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx

type 'a answer = { value : 'a; bits : int; rounds : int }

let check_domains r s =
  if Relation.y_dom r <> Relation.x_dom s then
    invalid_arg "Join_estimator: shared attribute domains differ"

let wrap (run : 'a Ctx.run) =
  { value = run.Ctx.output; bits = run.Ctx.bits; rounds = run.Ctx.rounds }

let matrices r s = (Relation.to_matrix r, Relation.to_matrix s)

let composition_size ?(eps = 0.25) ~seed ~r ~s () =
  check_domains r s;
  let a, b = matrices r s in
  wrap
    (Ctx.run ~seed (fun ctx ->
         Matprod_core.Lp_protocol.run ctx
           (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps ())
           ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)))

let natural_join_size ~seed ~r ~s =
  check_domains r s;
  let a, b = matrices r s in
  wrap (Ctx.run ~seed (fun ctx -> Matprod_core.L1_exact.run_bool ctx ~a ~b))

let max_witness_count ?(eps = 0.25) ~seed ~r ~s () =
  check_domains r s;
  let a, b = matrices r s in
  let run =
    Ctx.run ~seed (fun ctx ->
        Matprod_core.Linf_binary.run ctx
          (Matprod_core.Linf_binary.default_params ~eps)
          ~a ~b)
  in
  {
    value = run.Ctx.output.Matprod_core.Linf_binary.estimate;
    bits = run.Ctx.bits;
    rounds = run.Ctx.rounds;
  }

let sample_join_tuple ~seed ~r ~s =
  check_domains r s;
  let a, b = matrices r s in
  let run =
    Ctx.run ~seed (fun ctx ->
        Matprod_core.L1_sampling.run ctx ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  {
    value =
      Option.map
        (fun t ->
          ( t.Matprod_core.L1_sampling.row,
            t.Matprod_core.L1_sampling.witness,
            t.Matprod_core.L1_sampling.col ))
        run.Ctx.output;
    bits = run.Ctx.bits;
    rounds = run.Ctx.rounds;
  }

let sample_output_pair ?(eps = 0.25) ~seed ~r ~s () =
  check_domains r s;
  let a, b = matrices r s in
  let run =
    Ctx.run ~seed (fun ctx ->
        Matprod_core.L0_sampling.run ctx
          (Matprod_core.L0_sampling.default_params ~eps)
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  {
    value =
      Option.map
        (fun t -> (t.Matprod_core.L0_sampling.row, t.Matprod_core.L0_sampling.col))
        run.Ctx.output;
    bits = run.Ctx.bits;
    rounds = run.Ctx.rounds;
  }

let heavy_pairs ~phi ~eps ~seed ~r ~s =
  check_domains r s;
  let a, b = matrices r s in
  wrap
    (Ctx.run ~seed (fun ctx ->
         Matprod_core.Hh_binary.run ctx
           (Matprod_core.Hh_binary.default_params ~phi ~eps ())
           ~a ~b))
