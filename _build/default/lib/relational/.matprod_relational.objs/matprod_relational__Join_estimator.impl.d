lib/relational/join_estimator.ml: Matprod_comm Matprod_core Matprod_matrix Option Relation
