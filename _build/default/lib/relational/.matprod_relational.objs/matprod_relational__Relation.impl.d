lib/relational/relation.ml: Array List Matprod_matrix Matprod_util Set
