lib/relational/relation.mli: Matprod_matrix Matprod_util
