lib/relational/join_estimator.mli: Relation
