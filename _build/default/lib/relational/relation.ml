module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = { x_dom : int; y_dom : int; set : Pair_set.t }

let of_tuples ~x_dom ~y_dom tuples =
  if x_dom < 0 || y_dom < 0 then invalid_arg "Relation.of_tuples: domains";
  let set =
    List.fold_left
      (fun acc (x, y) ->
        if x < 0 || x >= x_dom || y < 0 || y >= y_dom then
          invalid_arg "Relation.of_tuples: attribute out of domain";
        Pair_set.add (x, y) acc)
      Pair_set.empty tuples
  in
  { x_dom; y_dom; set }

let x_dom t = t.x_dom
let y_dom t = t.y_dom
let cardinality t = Pair_set.cardinal t.set
let tuples t = Pair_set.elements t.set
let mem t x y = Pair_set.mem (x, y) t.set

let to_matrix t =
  let rows = Array.make t.x_dom [] in
  Pair_set.iter (fun (x, y) -> rows.(x) <- y :: rows.(x)) t.set;
  Bmat.create ~rows:t.x_dom ~cols:t.y_dom (Array.map Array.of_list rows)

let of_matrix m =
  let out = ref [] in
  for i = Bmat.rows m - 1 downto 0 do
    Array.iter (fun k -> out := (i, k) :: !out) (Bmat.row m i)
  done;
  of_tuples ~x_dom:(Bmat.rows m) ~y_dom:(Bmat.cols m) !out

let compose r s =
  if r.y_dom <> s.x_dom then invalid_arg "Relation.compose: domain mismatch";
  (* Index S by its first attribute, then expand. *)
  let by_y = Array.make s.x_dom [] in
  Pair_set.iter (fun (y, z) -> by_y.(y) <- z :: by_y.(y)) s.set;
  let out = ref Pair_set.empty in
  Pair_set.iter
    (fun (x, y) -> List.iter (fun z -> out := Pair_set.add (x, z) !out) by_y.(y))
    r.set;
  { x_dom = r.x_dom; y_dom = s.y_dom; set = !out }

let natural_join_size r s =
  if r.y_dom <> s.x_dom then
    invalid_arg "Relation.natural_join_size: domain mismatch";
  let s_count = Array.make s.x_dom 0 in
  Pair_set.iter (fun (y, _) -> s_count.(y) <- s_count.(y) + 1) s.set;
  Pair_set.fold (fun (_, y) acc -> acc + s_count.(y)) r.set 0

let random rng ~x_dom ~y_dom ~tuples =
  if tuples > x_dom * y_dom then invalid_arg "Relation.random: too many tuples";
  let set = ref Pair_set.empty in
  while Pair_set.cardinal !set < tuples do
    set := Pair_set.add (Prng.int rng x_dom, Prng.int rng y_dom) !set
  done;
  { x_dom; y_dom; set = !set }
