(** The query-optimizer facade: one call per §1.1 question.

    Site A holds R(X, Y), site B holds S(Y, Z). Each function wires the
    relations into the right protocol, runs it in a fresh simulated
    two-party context, and returns the answer with its communication bill.
    This is the interface a distributed query planner would link against;
    everything underneath is the paper's machinery. *)

type 'a answer = {
  value : 'a;
  bits : int;  (** transcript length *)
  rounds : int;
}

val composition_size :
  ?eps:float ->
  seed:int ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  float answer
(** |R ∘ S| = ‖AB‖₀ within (1+ε), via Algorithm 1 (2 rounds, Õ(n/ε)).
    [eps] defaults to 0.25. *)

val natural_join_size : seed:int -> r:Relation.t -> s:Relation.t -> int answer
(** |R ⋈ S| exactly, via Remark 2 (1 round, O(n log n)). *)

val max_witness_count :
  ?eps:float -> seed:int -> r:Relation.t -> s:Relation.t -> unit -> float answer
(** The largest number of witnesses any output pair has —
    ‖AB‖∞ within (2+ε), via Algorithm 2. *)

val sample_join_tuple :
  seed:int -> r:Relation.t -> s:Relation.t -> (int * int * int) option answer
(** A uniform tuple (x, y, z) of R ⋈ S, via Remark 3 (1 round). *)

val sample_output_pair :
  ?eps:float ->
  seed:int ->
  r:Relation.t ->
  s:Relation.t ->
  unit ->
  (int * int) option answer
(** A (near-)uniform pair of R ∘ S, via Theorem 3.2's ℓ0-sampling. *)

val heavy_pairs :
  phi:float ->
  eps:float ->
  seed:int ->
  r:Relation.t ->
  s:Relation.t ->
  (int * int) list answer
(** The output pairs holding ≥ ϕ of all witnesses
    (ℓ1-(ϕ,ε)-heavy-hitters of AB), via the §5.2 binary protocol. *)
