module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats

type t = {
  rows_per_group : int;
  groups : int;
  signs : Hashing.t array; (* one 4-wise sign hash per sketch row *)
}

let create_rows rng ~rows_per_group ~groups =
  if rows_per_group <= 0 || groups <= 0 then
    invalid_arg "Ams.create_rows: dimensions must be positive";
  let total = rows_per_group * groups in
  { rows_per_group; groups; signs = Array.init total (fun _ -> Hashing.create rng ~k:4) }

let create rng ~eps ~groups =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Ams.create: eps range";
  let rows_per_group = max 4 (int_of_float (Float.ceil (6.0 /. (eps *. eps)))) in
  create_rows rng ~rows_per_group ~groups

let size t = t.rows_per_group * t.groups
let empty t = Array.make (size t) 0.0

let sketch t vec =
  let y = empty t in
  Array.iter
    (fun (i, v) ->
      if v <> 0 then
        let fv = float_of_int v in
        for r = 0 to size t - 1 do
          y.(r) <- y.(r) +. (fv *. float_of_int (Hashing.sign t.signs.(r) i))
        done)
    vec;
  y

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Ams.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for r = 0 to size t - 1 do
      dst.(r) <- dst.(r) +. (c *. src.(r))
    done

let estimate_sq t y =
  if Array.length y <> size t then invalid_arg "Ams.estimate_sq: size";
  let sq = Array.map (fun v -> v *. v) y in
  Float.max 0.0 (Stats.median_of_means sq ~groups:t.groups)

let entry t ~row i = float_of_int (Hashing.sign t.signs.(row) i)
