(** Blocked-AMS ℓ∞ sketch — the Theorem 4.8 upper bound ([33]).

    To κ-approximate ‖x‖∞ of a length-[dim] vector: partition the
    coordinates into ⌈dim/κ²⌉ blocks of κ² consecutive coordinates, keep a
    constant-accuracy {!Ams} ℓ2 sketch per block, and output the largest
    per-block ℓ2 estimate. For y ∈ Z^(κ²), ‖y‖∞ ∈ [‖y‖₂/κ, ‖y‖₂], so the
    answer is within a factor ≈ κ of ‖x‖∞. Sketch size Õ(dim/κ²).

    Linear, so Alice sketches her rows of A and Bob combines them into
    sketches of the columns of C = A·B. *)

type t

val create : Matprod_util.Prng.t -> dim:int -> kappa:float -> t
(** Requires κ ≥ 1. Block size = ⌈κ²⌉ (clamped to [1, dim]). *)

val dim : t -> int
val blocks : t -> int
val size : t -> int
(** Total float counters ≈ blocks × O(1). *)

val empty : t -> float array
val sketch : t -> (int * int) array -> float array
val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit

val estimate_linf : t -> float array -> float
(** max over blocks of the block ℓ2 estimate: lies in
    [‖x‖∞/(1+ε̄), κ·(1+ε̄)·‖x‖∞] for the internal constant ε̄. *)
