module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats
module Codec = Matprod_comm.Codec

type t = {
  dim : int;
  levels : int;
  s : int;
  level_hash : Hashing.t;
  recover : S_sparse.t array; (* one per level *)
  l0 : L0_sketch.t;
}

type state = { rec_states : S_sparse.state array; l0_state : int array }

let levels_for dim =
  let rec go l acc = if acc >= dim then l else go (l + 1) (acc * 2) in
  max 1 (go 1 2)

let create rng ~dim ?(s = 12) ?(reps = 3) () =
  if dim <= 0 then invalid_arg "L0_sampler.create: dim";
  let levels = levels_for dim in
  {
    dim;
    levels;
    s;
    level_hash = Hashing.create rng ~k:2;
    recover = Array.init levels (fun _ -> S_sparse.create rng ~s ~reps);
    l0 = L0_sketch.create rng ~eps:0.25 ~groups:3 ~dim;
  }

let dim t = t.dim

let scalars t =
  (4 * Array.fold_left (fun acc r -> acc + S_sparse.cells r) 0 t.recover)
  + L0_sketch.size t.l0

let fresh t =
  {
    rec_states = Array.map S_sparse.fresh t.recover;
    l0_state = L0_sketch.empty t.l0;
  }

(* Coordinate i survives at levels 0 .. min(levels-1, floor(-log2 u_i)). *)
let coord_depth t i =
  let u = Hashing.float01 t.level_hash i in
  let u = if u <= 0.0 then 1e-12 else u in
  min (t.levels - 1) (int_of_float (Float.floor (-.Stats.log2 u)))

let update t st i v =
  if i < 0 || i >= t.dim then invalid_arg "L0_sampler.update: index range";
  if v <> 0 then begin
    let depth = coord_depth t i in
    for l = 0 to depth do
      S_sparse.update t.recover.(l) st.rec_states.(l) i v
    done;
    L0_sketch.update t.l0 st.l0_state i v
  end

let sketch t vec =
  let st = fresh t in
  Array.iter (fun (i, v) -> update t st i v) vec;
  st

let add_scaled t ~dst ~coeff src =
  if coeff <> 0 then begin
    for l = 0 to t.levels - 1 do
      S_sparse.add_scaled t.recover.(l) ~dst:dst.rec_states.(l) ~coeff
        src.rec_states.(l)
    done;
    L0_sketch.add_scaled t.l0 ~dst:dst.l0_state ~coeff src.l0_state
  end

let estimate_l0 t st = L0_sketch.estimate t.l0 st.l0_state

let sample t st =
  let r = estimate_l0 t st in
  if r <= 0.0 then None
  else
    let target =
      (* level where about s/2 coordinates survive *)
      let l = int_of_float (Float.ceil (Stats.log2 (2.0 *. r /. float_of_int t.s))) in
      max 0 (min (t.levels - 1) l)
    in
    (* Try the target level first, then neighbours. *)
    let candidates =
      List.filter
        (fun l -> l >= 0 && l < t.levels)
        [ target; target + 1; target - 1; target + 2 ]
    in
    let decode_at l =
      match S_sparse.decode t.recover.(l) st.rec_states.(l) with
      | S_sparse.Ok ((_ :: _ as pairs)) -> Some pairs
      | S_sparse.Ok [] | S_sparse.Fail -> None
    in
    let rec first = function
      | [] -> None
      | l :: rest -> (
          match decode_at l with Some pairs -> Some pairs | None -> first rest)
    in
    match first candidates with
    | None -> None
    | Some pairs ->
        (* Survivor with the minimum subsampling hash = global minimum over
           the support (it survives deepest), hence uniform over supp(x). *)
        let best =
          List.fold_left
            (fun acc (i, v) ->
              let u = Hashing.float01 t.level_hash i in
              match acc with
              | Some (_, _, ubest) when ubest <= u -> acc
              | _ -> Some (i, v, u))
            None pairs
        in
        Option.map (fun (i, v, _) -> (i, v)) best

let wire _t =
  let rec_codec = Codec.array One_sparse.cells_wire in
  Codec.map
    (fun st -> (st.rec_states, st.l0_state))
    (fun (rec_states, l0_state) -> { rec_states; l0_state })
    (Codec.pair rec_codec Codec.counter_array)
