module Prng = Matprod_util.Prng

type t = { dim : int; block : int; blocks : int; ams : Ams.t array }

let create rng ~dim ~kappa =
  if dim <= 0 then invalid_arg "Blocked_ams.create: dim";
  if kappa < 1.0 then invalid_arg "Blocked_ams.create: kappa >= 1";
  let block = max 1 (min dim (int_of_float (Float.ceil (kappa *. kappa)))) in
  let blocks = (dim + block - 1) / block in
  (* Constant accuracy per block: eps = 1/2, a few groups for the union
     bound over blocks. *)
  let ams =
    Array.init blocks (fun _ -> Ams.create_rows rng ~rows_per_group:24 ~groups:5)
  in
  { dim; block; blocks; ams }

let dim t = t.dim
let blocks t = t.blocks

let block_size t = Ams.size t.ams.(0)
let size t = t.blocks * block_size t
let empty t = Array.make (size t) 0.0

let sketch t vec =
  let out = empty t in
  let bs = block_size t in
  Array.iter
    (fun (i, v) ->
      if i < 0 || i >= t.dim then invalid_arg "Blocked_ams.sketch: index";
      if v <> 0 then begin
        let b = i / t.block in
        let local = i mod t.block in
        let y = Ams.sketch t.ams.(b) [| (local, v) |] in
        for r = 0 to bs - 1 do
          out.((b * bs) + r) <- out.((b * bs) + r) +. y.(r)
        done
      end)
    vec;
  out

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Blocked_ams.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for i = 0 to size t - 1 do
      dst.(i) <- dst.(i) +. (c *. src.(i))
    done

let estimate_linf t arr =
  if Array.length arr <> size t then invalid_arg "Blocked_ams.estimate_linf";
  let bs = block_size t in
  let best = ref 0.0 in
  for b = 0 to t.blocks - 1 do
    let y = Array.sub arr (b * bs) bs in
    let est = sqrt (Ams.estimate_sq t.ams.(b) y) in
    if est > !best then best := est
  done;
  !best
