(** s-sparse recovery sketch.

    Recovers a vector exactly when it has at most [s] nonzero coordinates.
    Structure: [reps] independent repetitions, each hashing coordinates
    into [2s] buckets of {!One_sparse} cells. Decoding peels: any bucket
    that decodes to a singleton reveals a coordinate, which is subtracted
    from every repetition, exposing further singletons; a vector that is
    ≤ s-sparse peels completely with high probability. Decoding either
    returns the exact support or reports failure — it never silently
    returns a wrong vector (up to fingerprint collisions).

    Linear: sketches add and scale, so they compose through the matrix
    product like every other sketch here. Used at every subsampling level
    of the ℓ0-sampler and as our concrete stand-in for the sparse-recovery
    step of Lemma 2.5 / Algorithm 4. *)

type t
(** Immutable specification (hash functions, dimensions). *)

type state = One_sparse.cell array
(** Mutable sketch contents (one cell per (repetition, bucket)). *)

val create : Matprod_util.Prng.t -> s:int -> reps:int -> t
(** [s ≥ 1] sparsity budget; [reps] repetitions (3–4 typical). *)

val sparsity : t -> int
val cells : t -> int
(** Total number of 1-sparse cells. *)

val fresh : t -> state
val update : t -> state -> int -> int -> unit
(** Add v·e_i. *)

val sketch : t -> (int * int) array -> state
val add_scaled : t -> dst:state -> coeff:int -> state -> unit

type result = Ok of (int * int) list | Fail
(** [Ok pairs]: the exact nonzero (index, value) pairs, sorted by index.
    [Fail]: more than [s] nonzeros (or an unlucky hash draw). *)

val decode : t -> state -> result

val wire : t -> state Matprod_comm.Codec.t
