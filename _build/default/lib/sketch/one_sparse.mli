(** 1-sparse recovery cell.

    A linear summary of a vector that can tell, with high probability,
    whether the vector is zero, exactly 1-sparse (and then recover the
    single (index, value)), or has ≥ 2 nonzeros. It stores the count
    Σ x_i, the index-weighted sum Σ i·x_i, and two independent random
    fingerprints Σ x_i·c(i) over GF(2^31−1); a spurious [One] answer
    requires both fingerprints to collide (probability ≈ 2^{-62}·poly).
    Building block of {!S_sparse} and hence of the ℓ0-sampler
    (Lemma 2.6). *)

type spec
(** The random fingerprint coefficients, shared by compatible cells. *)

type cell = { mutable sum : int; mutable isum : int; mutable fp1 : int; mutable fp2 : int }

val spec : Matprod_util.Prng.t -> spec

val fresh : unit -> cell
(** A zero cell (allocate one per use; cells are mutable). *)

val is_zero : cell -> bool

val update : spec -> cell -> int -> int -> unit
(** [update spec cell i v] adds v·e_i. *)

val add_scaled : cell -> coeff:int -> cell -> unit
(** dst ← dst + coeff·src (fingerprints combine over the field). *)

type verdict = Zero | One of int * int | Many

val decode : spec -> cell -> verdict
(** [One (i, v)] means the summarised vector is x = v·e_i (whp). *)

val cells_wire : cell array Matprod_comm.Codec.t
(** Codec for shipping an array of cells. *)
