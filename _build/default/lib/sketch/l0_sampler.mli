(** ℓ0-sampler for vectors (Lemma 2.6, after Jowhari–Saglam–Tardos [20]).

    Returns a uniformly random nonzero coordinate of a vector it has only
    seen through a linear sketch. Structure: geometric subsampling levels,
    each summarised by an {!S_sparse} recovery sketch, plus an embedded
    {!L0_sketch} used to choose the decoding level. Sampling decodes the
    level where ≈ s/2 coordinates are expected to survive and outputs the
    survivor with the minimum subsampling hash — which is the global
    minimum over the support, hence (near-)uniform.

    Linear, so Alice can ship sketches of the columns of A and Bob can
    combine them into sketches of the columns of C = A·B (Theorem 3.2). *)

type t
type state

val create : Matprod_util.Prng.t -> dim:int -> ?s:int -> ?reps:int -> unit -> t
(** [s] is the per-level recovery budget (default 12), [reps] the
    repetitions inside each recovery sketch (default 3). *)

val dim : t -> int
val scalars : t -> int
(** Rough size: total number of machine words in a state. *)

val fresh : t -> state
val update : t -> state -> int -> int -> unit
val sketch : t -> (int * int) array -> state
val add_scaled : t -> dst:state -> coeff:int -> state -> unit

val sample : t -> state -> (int * int) option
(** [Some (i, x_i)] for a (near-)uniform nonzero coordinate; [None] if the
    vector is zero or recovery failed at every candidate level. *)

val estimate_l0 : t -> state -> float
(** The embedded ℓ0 estimate (coarse, factor ~1.25). *)

val wire : t -> state Matprod_comm.Codec.t
