(** Count-Min sketch (Cormode–Muthukrishnan) for non-negative vectors.

    Companion baseline to {!Countsketch} for point queries on C = A·B when
    all entries are non-negative (the database-join setting): estimates
    overshoot by at most ε‖x‖₁ with [buckets = ⌈e/ε⌉] per rep. Linear
    under non-negative combinations. *)

type t

val create : Matprod_util.Prng.t -> buckets:int -> reps:int -> t

val size : t -> int
val empty : t -> float array
val update : t -> float array -> int -> int -> unit
val sketch : t -> (int * int) array -> float array
val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit

val query : t -> float array -> int -> float
(** Upper-biased estimate of x_i (minimum over reps). *)
