lib/sketch/countmin.mli: Matprod_util
