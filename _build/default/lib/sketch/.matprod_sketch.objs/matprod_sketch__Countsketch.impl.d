lib/sketch/countsketch.ml: Array Matprod_util
