lib/sketch/cohen.ml: Array Float Matprod_util
