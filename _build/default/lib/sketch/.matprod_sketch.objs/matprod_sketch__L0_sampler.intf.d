lib/sketch/l0_sampler.mli: Matprod_comm Matprod_util
