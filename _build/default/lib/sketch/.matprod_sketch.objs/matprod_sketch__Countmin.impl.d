lib/sketch/countmin.ml: Array Float Matprod_util
