lib/sketch/compressed_matmul.mli: Matprod_util
