lib/sketch/s_sparse.mli: Matprod_comm Matprod_util One_sparse
