lib/sketch/l0_sketch.mli: Matprod_util
