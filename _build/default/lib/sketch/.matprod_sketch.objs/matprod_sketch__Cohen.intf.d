lib/sketch/cohen.mli: Matprod_util
