lib/sketch/lp.ml: Ams L0_sketch Matprod_comm Stable_sketch
