lib/sketch/ams.mli: Matprod_util
