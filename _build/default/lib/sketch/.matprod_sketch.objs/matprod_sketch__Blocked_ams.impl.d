lib/sketch/blocked_ams.ml: Ams Array Float Matprod_util
