lib/sketch/compressed_matmul.ml: Array Matprod_util
