lib/sketch/countsketch.mli: Matprod_util
