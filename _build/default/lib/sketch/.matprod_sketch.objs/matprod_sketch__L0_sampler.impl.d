lib/sketch/l0_sampler.ml: Array Float L0_sketch List Matprod_comm Matprod_util One_sparse Option S_sparse
