lib/sketch/stable_sketch.ml: Array Float Hashtbl Matprod_util
