lib/sketch/one_sparse.mli: Matprod_comm Matprod_util
