lib/sketch/blocked_ams.mli: Matprod_util
