lib/sketch/s_sparse.ml: Array Hashtbl List Matprod_comm Matprod_util One_sparse Option
