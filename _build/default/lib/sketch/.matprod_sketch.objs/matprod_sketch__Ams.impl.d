lib/sketch/ams.ml: Array Float Matprod_util
