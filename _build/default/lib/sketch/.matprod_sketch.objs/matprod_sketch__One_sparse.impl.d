lib/sketch/one_sparse.ml: Array List Matprod_comm Matprod_util
