lib/sketch/l0_sketch.ml: Array Float Matprod_util
