lib/sketch/lp.mli: Matprod_comm Matprod_util
