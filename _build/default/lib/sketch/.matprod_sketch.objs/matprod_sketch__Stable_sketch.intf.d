lib/sketch/stable_sketch.mli: Matprod_util
