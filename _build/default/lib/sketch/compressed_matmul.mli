(** Pagh's compressed matrix multiplication [32] — CountSketch of the
    entries of C = A·B, computed without forming C.

    The n² entries of C are CountSketched with the decomposable hash
    h(i,j) = (h₁(i) + h₂(j)) mod b and sign s(i,j) = s₁(i)·s₂(j). For each
    inner index k, the contribution of the outer product A_{*,k}·B_{k,*} to
    the sketch is the circular convolution of two b-bucket half-sketches,
    so the whole sketch is Σ_k fft(p_k) ⊙ fft(q_k), inverted once.

    §1.3 of the paper discusses why this gives no two-party advantage:
    Alice's half-sketches alone are Θ̃(n·b) bits — the baseline
    [Matprod_core.Hh_countsketch] measures exactly that. *)

type t

val create : Matprod_util.Prng.t -> buckets:int -> reps:int -> t
(** [buckets] is rounded up to a power of two. *)

val buckets : t -> int
val reps : t -> int

val half_sketch_left : t -> rep:int -> (int * int) array -> float array
(** [half_sketch_left t ~rep col] = p-vector of one column of A:
    p[t] = Σ_i s₁(i)·A_{i,k} over i with h₁(i) = t. *)

val half_sketch_right : t -> rep:int -> (int * int) array -> float array
(** q-vector of one row of B (hashes h₂/s₂). *)

val combine :
  t -> rep:int -> left:float array array -> right:float array array ->
  float array
(** [combine t ~rep ~left ~right] = the CountSketch of C for one
    repetition, from the per-inner-index half-sketches:
    ifft(Σ_k fft(left.(k)) ⊙ fft(right.(k))). *)

val query : t -> sketches:float array array -> int -> int -> float
(** Median-over-repetitions point query of C_{i,j}; [sketches.(rep)] is
    the output of [combine] for that repetition. *)
