module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats
module Fft = Matprod_util.Fft

type rep = {
  h1 : Hashing.t;
  h2 : Hashing.t;
  s1 : Hashing.t;
  s2 : Hashing.t;
}

type t = { buckets : int; reps : rep array }

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let create rng ~buckets ~reps =
  if buckets <= 0 || reps <= 0 then invalid_arg "Compressed_matmul.create";
  {
    buckets = next_pow2 buckets;
    reps =
      Array.init reps (fun _ ->
          {
            h1 = Hashing.create rng ~k:2;
            h2 = Hashing.create rng ~k:2;
            s1 = Hashing.create rng ~k:4;
            s2 = Hashing.create rng ~k:4;
          });
  }

let buckets t = t.buckets
let reps t = Array.length t.reps

let half_sketch t ~hash ~sign vec =
  let out = Array.make t.buckets 0.0 in
  Array.iter
    (fun (i, v) ->
      if v <> 0 then
        let b = Hashing.bucket hash ~buckets:t.buckets i in
        out.(b) <-
          out.(b) +. float_of_int (v * Hashing.sign sign i))
    vec;
  out

let half_sketch_left t ~rep vec =
  let r = t.reps.(rep) in
  half_sketch t ~hash:r.h1 ~sign:r.s1 vec

let half_sketch_right t ~rep vec =
  let r = t.reps.(rep) in
  half_sketch t ~hash:r.h2 ~sign:r.s2 vec

let combine t ~rep:_ ~left ~right =
  if Array.length left <> Array.length right then
    invalid_arg "Compressed_matmul.combine: inner dimensions differ";
  let b = t.buckets in
  let acc_re = Array.make b 0.0 and acc_im = Array.make b 0.0 in
  Array.iteri
    (fun k p ->
      let q = right.(k) in
      let pr = Array.copy p and pi = Array.make b 0.0 in
      let qr = Array.copy q and qi = Array.make b 0.0 in
      Fft.fft ~re:pr ~im:pi;
      Fft.fft ~re:qr ~im:qi;
      for f = 0 to b - 1 do
        acc_re.(f) <- acc_re.(f) +. ((pr.(f) *. qr.(f)) -. (pi.(f) *. qi.(f)));
        acc_im.(f) <- acc_im.(f) +. ((pr.(f) *. qi.(f)) +. (pi.(f) *. qr.(f)))
      done)
    left;
  Fft.ifft ~re:acc_re ~im:acc_im;
  acc_re

let query t ~sketches i j =
  if Array.length sketches <> reps t then
    invalid_arg "Compressed_matmul.query: sketch count";
  let ests =
    Array.mapi
      (fun ridx sk ->
        let r = t.reps.(ridx) in
        let bucket =
          (Hashing.bucket r.h1 ~buckets:t.buckets i
          + Hashing.bucket r.h2 ~buckets:t.buckets j)
          mod t.buckets
        in
        let sign = Hashing.sign r.s1 i * Hashing.sign r.s2 j in
        float_of_int sign *. sk.(bucket))
      sketches
  in
  Stats.median ests
