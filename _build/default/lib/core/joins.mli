(** The predecessor join family of [16] (§1.3), answered with this paper's
    machinery. The paper presents itself as a significant extension of
    these set-join problems; the three classics reduce cleanly to the
    statistics implemented here:

    - {e set-equality join}: |{(i,j) : A_i = B^j}| — exact whp by
      exchanging O(log n)-bit set fingerprints, 1 round, O(n log n) bits;
    - {e set-disjointness join}: |{(i,j) : A_i ∩ B^j = ∅}| — the
      complement of the composition, n·m − ‖AB‖₀, via Algorithm 1;
    - {e at-least-T join}: |{(i,j) : |A_i ∩ B^j| ≥ T}| — ‖AB‖₀ times the
      fraction of ℓ0-samples with value ≥ T (each sample carries its exact
      entry value), giving an additive ±ε‖AB‖₀ guarantee. *)

val equality_join :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  int
(** Number of (row of A, column of B) pairs that are equal as sets.
    1 round, O(n log n) bits; wrong only on a 2^{-62}-probability
    fingerprint collision. *)

type threshold_params = {
  eps : float;  (** additive error scale (fraction of ‖AB‖₀) *)
  samples : int;  (** ℓ0-samples drawn; std ≈ ‖AB‖₀/√samples *)
}

val default_threshold_params : eps:float -> threshold_params

val disjointness_join :
  Matprod_comm.Ctx.t ->
  eps:float ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  float
(** Estimate of |{(i,j) : A_i ∩ B^j = ∅}| = n·m − ‖AB‖₀, with the
    (1+ε)-error of Algorithm 1 on the ‖AB‖₀ term. *)

val at_least_t_join :
  Matprod_comm.Ctx.t ->
  threshold_params ->
  t:int ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  float
(** Estimate of |{(i,j) : (AB)_{i,j} ≥ t}|, within
    ±(ε + O(1/√samples))·‖AB‖₀ additive error. *)
