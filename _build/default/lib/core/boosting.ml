module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Ctx = Matprod_comm.Ctx

type result = {
  estimate : float;
  runs : float array;
  total_bits : int;
  rounds : int;
}

let run_median ~seed ~repetitions f =
  if repetitions <= 0 then invalid_arg "Boosting.run_median: repetitions";
  let root = Prng.create seed in
  let outputs = Array.make repetitions 0.0 in
  let bits = ref 0 and rounds = ref 0 in
  for r = 0 to repetitions - 1 do
    let run = Ctx.run ~seed:(Prng.fresh_seed root) f in
    outputs.(r) <- run.Ctx.output;
    bits := !bits + run.Ctx.bits;
    rounds := run.Ctx.rounds
  done;
  {
    estimate = Stats.median outputs;
    runs = outputs;
    total_bits = !bits;
    rounds = !rounds;
  }

let repetitions_for ~delta =
  if not (delta > 0.0 && delta < 1.0) then invalid_arg "Boosting: delta";
  let r = int_of_float (Float.ceil (12.0 *. log (1.0 /. delta))) in
  if r land 1 = 1 then r else r + 1
