(** The standard median trick (end of §3): run a constant-success-probability
    estimation protocol O(log 1/δ) times with independent coins and take the
    median, boosting the success probability to 1 − δ at an O(log 1/δ)
    communication factor — the factor the paper's Õ(·) absorbs. *)

type result = {
  estimate : float;  (** median of the per-run outputs *)
  runs : float array;  (** the individual outputs *)
  total_bits : int;  (** communication summed over all runs *)
  rounds : int;  (** rounds of a single run (runs are independent) *)
}

val run_median :
  seed:int -> repetitions:int -> (Matprod_comm.Ctx.t -> float) -> result
(** [run_median ~seed ~repetitions f] executes [f] in [repetitions] fresh
    contexts with seeds derived from [seed]. *)

val repetitions_for : delta:float -> int
(** ⌈12·ln(1/δ)⌉, odd — enough repetitions to push a 0.9-success protocol
    to 1 − δ by Chernoff. *)
