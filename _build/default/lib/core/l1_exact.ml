module Imat = Matprod_matrix.Imat
module Bmat = Matprod_matrix.Bmat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

let run_sums ctx ~col_sums ~row_sum_of =
  let sums = Ctx.a2b ctx ~label:"column sums of A" Codec.uint_array col_sums in
  let acc = ref 0 in
  Array.iteri (fun k s -> acc := !acc + (s * row_sum_of k)) sums;
  !acc

let run ctx ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "L1_exact: dims";
  if not (Imat.nonneg a && Imat.nonneg b) then
    invalid_arg "L1_exact: requires non-negative matrices";
  run_sums ctx ~col_sums:(Imat.col_l1 a) ~row_sum_of:(Imat.row_l1 b)

let run_bool ctx ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "L1_exact: dims";
  run_sums ctx ~col_sums:(Bmat.col_weights a) ~row_sum_of:(Bmat.row_weight b)
