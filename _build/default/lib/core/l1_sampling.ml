module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type sample = { row : int; col : int; witness : int }

(* Draw an index from a non-negative integer weight vector, ∝ weight. *)
let weighted_pick rng pairs total =
  let target = Prng.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "L1_sampling: weights exhausted"
    | (idx, w) :: rest ->
        let acc = acc + w in
        if target < acc then idx else go acc rest
  in
  go 0 pairs

let run ctx ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "L1_sampling: dims";
  if not (Imat.nonneg a && Imat.nonneg b) then
    invalid_arg "L1_sampling: requires non-negative matrices";
  let at = Imat.transpose a in
  let inner = Imat.cols a in
  (* Alice: per inner index k, the column mass and one row sampled ∝ value. *)
  let alice_msg =
    Array.init inner (fun k ->
        let col = Imat.row at k in
        let total = Array.fold_left (fun acc (_, v) -> acc + v) 0 col in
        if total = 0 then (0, -1)
        else
          let i =
            weighted_pick ctx.Ctx.alice (Array.to_list col) total
          in
          (total, i))
  in
  let msg =
    Ctx.a2b ctx ~label:"col sums + row samples"
      (Codec.array (Codec.pair Codec.uint Codec.int))
      alice_msg
  in
  (* Bob: witness k ∝ colsum_k · rowsum_k, then column j ∝ B_{k,j}. *)
  let weights =
    List.init inner (fun k -> (k, fst msg.(k) * Imat.row_l1 b k))
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total = 0 then None
  else begin
    let k = weighted_pick ctx.Ctx.bob weights total in
    let row_k = Imat.row b k in
    let row_total = Array.fold_left (fun acc (_, v) -> acc + v) 0 row_k in
    let j = weighted_pick ctx.Ctx.bob (Array.to_list row_k) row_total in
    let i = snd msg.(k) in
    Some { row = i; col = j; witness = k }
  end
