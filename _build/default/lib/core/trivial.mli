(** The trivial protocol: Alice ships her entire matrix and Bob computes
    exactly. The n²-bit baseline every theorem in the paper is measured
    against. Binary matrices go as a dense bitmap (exactly n·m bits, the
    information-theoretic content of an arbitrary binary matrix); integer
    matrices as sparse rows. *)

type 'r query = Matprod_matrix.Product.t -> 'r
(** What Bob computes once he has reconstructed C = A·B exactly. *)

val run_bool :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  'r query ->
  'r

val run_int :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  'r query ->
  'r
