lib/core/common.mli: Matprod_comm Matprod_matrix Matprod_sketch
