lib/core/hh_countsketch.ml: Array L1_exact Matprod_comm Matprod_matrix Matprod_sketch
