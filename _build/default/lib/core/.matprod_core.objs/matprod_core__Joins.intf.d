lib/core/joins.mli: Matprod_comm Matprod_matrix
