lib/core/hh_countsketch.mli: Matprod_comm Matprod_matrix
