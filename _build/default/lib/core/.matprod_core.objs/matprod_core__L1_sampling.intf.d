lib/core/l1_sampling.mli: Matprod_comm Matprod_matrix
