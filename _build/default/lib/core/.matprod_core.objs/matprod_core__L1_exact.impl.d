lib/core/l1_exact.ml: Array Matprod_comm Matprod_matrix
