lib/core/matprod_protocol.mli: Common Matprod_comm Matprod_matrix
