lib/core/session.mli: Matprod_comm Matprod_matrix
