lib/core/lp_sampling.mli: Matprod_comm Matprod_matrix
