lib/core/cohen_baseline.ml: Float Matprod_comm Matprod_matrix Matprod_sketch
