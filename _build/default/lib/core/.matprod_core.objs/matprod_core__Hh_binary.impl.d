lib/core/hh_binary.ml: Array Common Float L1_exact List Lp_protocol Matprod_comm Matprod_matrix Matprod_protocol Matprod_util
