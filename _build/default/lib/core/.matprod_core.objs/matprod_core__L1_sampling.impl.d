lib/core/l1_sampling.ml: Array List Matprod_comm Matprod_matrix Matprod_util
