lib/core/lp_oneround.mli: Matprod_comm Matprod_matrix
