lib/core/linf_kappa.ml: Array Common Float L1_exact Linf_binary Matprod_comm Matprod_matrix Matprod_util
