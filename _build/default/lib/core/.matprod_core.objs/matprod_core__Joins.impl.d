lib/core/joins.ml: Array Float Hashtbl L0_sampling Lp_protocol Matprod_comm Matprod_matrix Matprod_util Option
