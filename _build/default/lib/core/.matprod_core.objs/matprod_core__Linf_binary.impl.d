lib/core/linf_binary.ml: Array Common Float List Matprod_comm Matprod_matrix Matprod_util
