lib/core/linf_general.ml: Array Matprod_comm Matprod_matrix Matprod_sketch
