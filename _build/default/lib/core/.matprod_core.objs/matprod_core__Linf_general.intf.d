lib/core/linf_general.mli: Matprod_comm Matprod_matrix
