lib/core/lp_sampling.ml: Array Common Float Matprod_comm Matprod_matrix Matprod_sketch Matprod_util
