lib/core/hh_general.ml: Common Float L1_exact List Lp_protocol Matprod_comm Matprod_matrix Matprod_protocol Matprod_util
