lib/core/lp_oneround.ml: Array Common Matprod_comm Matprod_matrix Matprod_sketch
