lib/core/boosting.ml: Array Float Matprod_comm Matprod_util
