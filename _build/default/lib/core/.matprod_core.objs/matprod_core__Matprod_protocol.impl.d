lib/core/matprod_protocol.ml: Array Common List Matprod_comm Matprod_matrix
