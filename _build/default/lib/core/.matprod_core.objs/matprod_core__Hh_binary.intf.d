lib/core/hh_binary.mli: Matprod_comm Matprod_matrix
