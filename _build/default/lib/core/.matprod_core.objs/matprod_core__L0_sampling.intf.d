lib/core/l0_sampling.mli: Matprod_comm Matprod_matrix
