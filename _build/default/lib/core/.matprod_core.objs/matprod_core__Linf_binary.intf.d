lib/core/linf_binary.mli: Matprod_comm Matprod_matrix
