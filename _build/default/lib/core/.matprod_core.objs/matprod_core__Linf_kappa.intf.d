lib/core/linf_kappa.mli: Matprod_comm Matprod_matrix
