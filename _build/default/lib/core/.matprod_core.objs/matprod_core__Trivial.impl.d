lib/core/trivial.ml: Array Bytes Char Hashtbl List Matprod_comm Matprod_matrix Option String
