lib/core/common.ml: Array Float Hashtbl List Matprod_comm Matprod_matrix Matprod_sketch Option
