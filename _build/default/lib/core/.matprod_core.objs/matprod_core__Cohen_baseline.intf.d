lib/core/cohen_baseline.mli: Matprod_comm Matprod_matrix
