lib/core/session.ml: Array Common Float Lp_protocol Matprod_comm Matprod_matrix Matprod_sketch Matprod_util
