lib/core/lp_protocol.ml: Array Common Float List Matprod_comm Matprod_matrix Matprod_sketch Matprod_util
