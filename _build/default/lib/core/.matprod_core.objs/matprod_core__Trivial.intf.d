lib/core/trivial.mli: Matprod_comm Matprod_matrix
