lib/core/l0_sampling.ml: Array Float Matprod_comm Matprod_matrix Matprod_sketch Matprod_util Printf
