lib/core/hh_general.mli: Matprod_comm Matprod_matrix
