lib/core/boosting.mli: Matprod_comm
