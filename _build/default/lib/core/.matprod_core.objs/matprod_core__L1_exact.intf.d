lib/core/l1_exact.mli: Matprod_comm Matprod_matrix
