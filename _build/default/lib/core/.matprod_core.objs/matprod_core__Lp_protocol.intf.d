lib/core/lp_protocol.mli: Matprod_comm Matprod_matrix
