(** Remark 2 — ‖A·B‖₁ computed exactly in one round and O(n log n) bits.

    For non-negative matrices, ‖AB‖₁ = Σ_j ‖A_{*,j}‖₁·‖B_{j,*}‖₁: Alice
    ships her n column sums, Bob combines with his row sums. This is the
    natural-join size of the corresponding relations. *)

val run :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  int
(** Exact ‖A·B‖₁. Requires cols a = rows b and non-negative entries
    (raises [Invalid_argument] otherwise — with signed entries the
    identity breaks). *)

val run_bool :
  Matprod_comm.Ctx.t -> a:Matprod_matrix.Bmat.t -> b:Matprod_matrix.Bmat.t -> int
(** Same for binary matrices (the set-intersection-join-with-witnesses
    count |A ⋈ B|). *)
