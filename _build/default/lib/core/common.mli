(** Helpers shared by the protocol implementations. *)

module Entry_map : sig
  (** A sparse accumulator for (row, col) → value, used for the additively
      shared matrices C_A, C_B that Algorithms 2–4 build. *)

  type t

  val create : unit -> t
  val add : t -> int -> int -> int -> unit
  (** [add m i j v] accumulates v into entry (i, j); exact zeros vanish. *)

  val get : t -> int -> int -> int
  val nnz : t -> int
  val linf : t -> int
  (** max |value| (0 if empty). *)

  val entries : t -> (int * int * int) list
  (** Sorted by (row, col). *)

  val iter : t -> (int -> int -> int -> unit) -> unit

  val add_outer : t -> (int * int) array -> (int * int) array -> unit
  (** [add_outer m col row] accumulates the outer product col·rowᵀ:
      for every ((i, a), (j, b)) pair, entry (i, j) += a·b. *)

  val merge_into : dst:t -> t -> unit

  val wire_entries : (int * int * int) list Matprod_comm.Codec.t
  (** Codec for shipping entry lists. *)
end

val combine_sketches :
  Matprod_sketch.Lp.t ->
  Matprod_sketch.Lp.value array ->
  (int * int) array ->
  Matprod_sketch.Lp.value
(** [combine_sketches lp sks coeffs] = Σ_(k,c)∈coeffs c·sks.(k) — the sketch
    of a row of A·B from the sketches of the rows of B and a row of A. *)

val row_times_matrix : (int * int) array -> Matprod_matrix.Imat.t -> int array
(** [row_times_matrix a_row b] = (dense) a_row · B, the exact row of the
    product, computed from B's rows. *)

val lp_pow_dense : p:float -> int array -> float
(** Σ |v|^p with 0^0 = 0. *)

val lp_pow_entries : p:float -> (int * int * int) list -> float

val group_of : beta:float -> float -> int
(** Index ℓ of the (1+β)-geometric group that a positive estimate falls in
    (Algorithm 1's partition); estimates below 1 map to group 0. *)

val log_factor : int -> float
(** ln(max(n, 2)) — the log n factor in the paper's parameter settings. *)
