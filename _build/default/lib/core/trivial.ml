module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type 'r query = Product.t -> 'r

(* Dense bitmap codec for a binary matrix: header + ⌈rows·cols/8⌉ bytes. *)
let bitmap_codec =
  let pack (rows, cols, bits) =
    let nbytes = (rows * cols + 7) / 8 in
    let buf = Bytes.make nbytes '\000' in
    List.iter
      (fun (i, k) ->
        let pos = (i * cols) + k in
        let b = Char.code (Bytes.get buf (pos / 8)) in
        Bytes.set buf (pos / 8) (Char.chr (b lor (1 lsl (pos mod 8)))))
      bits;
    (rows, cols, Bytes.to_string buf)
  in
  let unpack (rows, cols, s) =
    let bits = ref [] in
    for i = rows - 1 downto 0 do
      for k = cols - 1 downto 0 do
        let pos = (i * cols) + k in
        if Char.code s.[pos / 8] land (1 lsl (pos mod 8)) <> 0 then
          bits := (i, k) :: !bits
      done
    done;
    (rows, cols, !bits)
  in
  Codec.map pack unpack (Codec.triple Codec.uint Codec.uint Codec.bytes)

let run_bool ctx ~a ~b query =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Trivial.run_bool: dims";
  let bits =
    List.concat
      (List.init (Bmat.rows a) (fun i ->
           Array.to_list (Array.map (fun k -> (i, k)) (Bmat.row a i))))
  in
  let rows, cols, bits' =
    Ctx.a2b ctx ~label:"entire A (bitmap)" bitmap_codec
      (Bmat.rows a, Bmat.cols a, bits)
  in
  let sets = Array.make rows [||] in
  let by_row = Hashtbl.create 64 in
  List.iter
    (fun (i, k) ->
      Hashtbl.replace by_row i (k :: Option.value ~default:[] (Hashtbl.find_opt by_row i)))
    bits';
  for i = 0 to rows - 1 do
    sets.(i) <-
      Array.of_list (Option.value ~default:[] (Hashtbl.find_opt by_row i))
  done;
  let a' = Bmat.create ~rows ~cols sets in
  query (Product.bool_product a' b)

let run_int ctx ~a ~b query =
  if Imat.cols a <> Imat.rows b then invalid_arg "Trivial.run_int: dims";
  let rows_msg = Array.init (Imat.rows a) (fun i -> Imat.row a i) in
  let rows' =
    Ctx.a2b ctx ~label:"entire A (sparse rows)"
      (Codec.array Codec.sparse_int_vec) rows_msg
  in
  let a' = Imat.create ~rows:(Imat.rows a) ~cols:(Imat.cols a) rows' in
  query (Product.int_product a' b)
