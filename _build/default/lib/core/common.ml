module Lp = Matprod_sketch.Lp
module Imat = Matprod_matrix.Imat
module Codec = Matprod_comm.Codec

module Entry_map = struct
  type t = ((int * int), int) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let add m i j v =
    if v <> 0 then
      match Hashtbl.find_opt m (i, j) with
      | None -> Hashtbl.replace m (i, j) v
      | Some old ->
          let s = old + v in
          if s = 0 then Hashtbl.remove m (i, j) else Hashtbl.replace m (i, j) s

  let get m i j = Option.value ~default:0 (Hashtbl.find_opt m (i, j))
  let nnz m = Hashtbl.length m
  let linf m = Hashtbl.fold (fun _ v acc -> max acc (abs v)) m 0

  let entries m =
    Hashtbl.fold (fun (i, j) v acc -> (i, j, v) :: acc) m []
    |> List.sort compare

  let iter m f = Hashtbl.iter (fun (i, j) v -> f i j v) m

  let add_outer m col row =
    Array.iter
      (fun (i, a) -> Array.iter (fun (j, b) -> add m i j (a * b)) row)
      col

  let merge_into ~dst src = iter src (fun i j v -> add dst i j v)

  let wire_entries =
    Codec.list (Codec.triple Codec.uint Codec.uint Codec.int)
end

let combine_sketches lp sks coeffs =
  let acc = Lp.empty lp in
  Array.iter
    (fun (k, c) -> Lp.add_scaled lp ~dst:acc ~coeff:c sks.(k))
    coeffs;
  acc

let row_times_matrix a_row b =
  let out = Array.make (Imat.cols b) 0 in
  Array.iter
    (fun (k, c) ->
      Array.iter (fun (j, v) -> out.(j) <- out.(j) + (c * v)) (Imat.row b k))
    a_row;
  out

let lp_pow_dense ~p row =
  let acc = ref 0.0 in
  Array.iter
    (fun v ->
      if v <> 0 then
        acc := !acc +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p)
    row;
  !acc

let lp_pow_entries ~p entries =
  List.fold_left
    (fun acc (_, _, v) ->
      if v = 0 then acc
      else acc +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p)
    0.0 entries

let group_of ~beta est =
  if est <= 1.0 then 0
  else int_of_float (Float.floor (log est /. log (1.0 +. beta)))

let log_factor n = log (float_of_int (max n 2))
