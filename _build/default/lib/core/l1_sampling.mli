(** Remark 3 — ℓ1-sampling of C = A·B in one round and O(n log n) bits.

    Returns an entry (i, j) with probability C_{i,j}/‖C‖₁ — a uniformly
    random tuple of the natural join. Alice sends, for every inner index k,
    her column sum ‖A_{*,k}‖₁ and one row index drawn ∝ A_{i,k}; Bob picks
    the witness k ∝ ‖A_{*,k}‖₁·‖B_{k,*}‖₁, then a column j ∝ B_{k,j}, and
    outputs (Alice's sample for k, j). *)

type sample = { row : int; col : int; witness : int }

val run :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option
(** [None] iff ‖A·B‖₁ = 0. Requires non-negative matrices. *)
