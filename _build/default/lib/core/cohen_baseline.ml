module Bmat = Matprod_matrix.Bmat
module Cohen = Matprod_sketch.Cohen
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { reps : int }

let params_for_eps ~eps =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Cohen_baseline: eps";
  { reps = max 4 (int_of_float (Float.ceil (4.0 /. (eps *. eps)))) }

let run ctx prm ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Cohen_baseline: dims";
  let est = Cohen.create ctx.Ctx.alice ~reps:prm.reps ~rows:(max 1 (Bmat.rows a)) in
  let at = Bmat.transpose a in
  let mins =
    Cohen.column_mins est ~supp_of_col:(fun k -> Bmat.row at k)
      ~cols:(Bmat.cols a)
  in
  let mins' =
    Ctx.a2b ctx ~label:"exponential minima m_k"
      (Codec.array Codec.float32_array) mins
  in
  (* Bob: per output column j, combine minima over supp(B_{*,j}) and sum
     the support-size estimates. *)
  let bt = Bmat.transpose b in
  let acc = ref 0.0 in
  for j = 0 to Bmat.cols b - 1 do
    acc := !acc +. Cohen.estimate_union est mins' (Bmat.row bt j)
  done;
  !acc
