module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Hashing = Matprod_util.Hashing
module Field31 = Matprod_util.Field31
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

let set_fingerprint h set =
  Array.fold_left
    (fun acc k -> Field31.add acc (Hashing.field_coeff h k))
    0 set

let equality_join ctx ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Joins.equality_join: dims";
  (* Two independent set fingerprints from the shared coins. *)
  let h1 = Hashing.create ctx.Ctx.public ~k:2 in
  let h2 = Hashing.create ctx.Ctx.public ~k:2 in
  let fp set = (set_fingerprint h1 set, set_fingerprint h2 set) in
  let alice = Array.init (Bmat.rows a) (fun i -> fp (Bmat.row a i)) in
  let alice' =
    Ctx.a2b ctx ~label:"row fingerprints of A"
      (Codec.array (Codec.pair Codec.uint Codec.uint))
      alice
  in
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun key ->
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    alice';
  let bt = Bmat.transpose b in
  let total = ref 0 in
  for j = 0 to Bmat.rows bt - 1 do
    let key = fp (Bmat.row bt j) in
    total := !total + Option.value ~default:0 (Hashtbl.find_opt counts key)
  done;
  !total

type threshold_params = { eps : float; samples : int }

let default_threshold_params ~eps =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Joins: eps range";
  { eps; samples = max 32 (int_of_float (Float.ceil (2.0 /. (eps *. eps)))) }

let disjointness_join ctx ~eps ~a ~b =
  if Bmat.cols a <> Bmat.rows b then
    invalid_arg "Joins.disjointness_join: dims";
  let l0 =
    Lp_protocol.run ctx
      (Lp_protocol.default_params ~p:0.0 ~eps ())
      ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)
  in
  Float.max 0.0 ((float_of_int (Bmat.rows a) *. float_of_int (Bmat.cols b)) -. l0)

let at_least_t_join ctx prm ~t ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Joins.at_least_t_join: dims";
  if t < 1 then invalid_arg "Joins.at_least_t_join: t >= 1";
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let l0 = Lp_protocol.run ctx (Lp_protocol.default_params ~eps:prm.eps ()) ~a:ai ~b:bi in
  if l0 <= 0.0 then 0.0
  else begin
    (* Each l0-sample carries its exact entry value; the hit fraction
       scales ||C||_0 into the at-least-t count. One batched message
       amortises the column sketches over all samples. *)
    let samples =
      L0_sampling.run_many ctx
        (L0_sampling.default_params ~eps:0.5)
        ~count:prm.samples ~a:ai ~b:bi
    in
    let hits = ref 0 and got = ref 0 in
    Array.iter
      (function
        | Some s ->
            incr got;
            if s.L0_sampling.value >= t then incr hits
        | None -> ())
      samples;
    if !got = 0 then 0.0
    else l0 *. float_of_int !hits /. float_of_int !got
  end
