(** The "direct adaptation" of Cohen's estimator [12] to the two-party
    model, as discussed in §1.3: Alice ships the per-inner-index
    exponential minima m_k^(t) for Θ(1/ε²) repetitions (one round,
    Θ̃(n/ε²) bits); Bob combines minima over each of his columns' supports
    and sums the per-column support-size estimates into ‖A·B‖₀.

    Second baseline for experiment E1, alongside {!Lp_oneround}. *)

type params = { reps : int }

val params_for_eps : eps:float -> params
(** reps = ⌈4/ε²⌉ (estimator std ≈ 1/√reps per column). *)

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  float
(** Estimate of ‖A·B‖₀ (the set-intersection join size). *)
