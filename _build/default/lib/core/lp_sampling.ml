module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Lp = Matprod_sketch.Lp
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { p : float; eps : float; sketch_groups : int }

let default_params ?(p = 2.0) ~eps () = { p; eps; sketch_groups = 5 }

type sample = { row : int; col : int; value : int }

let pick_weighted rng weights total =
  let target = Prng.float rng *. total in
  let acc = ref 0.0 and chosen = ref (Array.length weights - 1) in
  (try
     Array.iteri
       (fun i w ->
         acc := !acc +. w;
         if !acc >= target then begin
           chosen := i;
           raise Exit
         end)
       weights
   with Exit -> ());
  !chosen

let run ctx prm ~a ~b =
  if not (prm.p >= 0.0 && prm.p <= 2.0) then invalid_arg "Lp_sampling: p range";
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then invalid_arg "Lp_sampling: eps";
  if Imat.cols a <> Imat.rows b then invalid_arg "Lp_sampling: dims";
  let out_cols = Imat.cols b in
  (* Round 1 (Bob -> Alice): lp sketches of B's rows at full accuracy. *)
  let lp =
    Lp.create ctx.Ctx.public ~p:prm.p ~eps:prm.eps ~groups:prm.sketch_groups
      ~dim:(max 1 out_cols)
  in
  let bob_sketches =
    Array.init (Imat.rows b) (fun k -> Lp.sketch lp (Imat.row b k))
  in
  let sketches =
    Ctx.b2a ctx ~label:"lp-sketches for row sampling"
      (Codec.array (Lp.wire lp)) bob_sketches
  in
  let est =
    Array.init (Imat.rows a) (fun i ->
        Float.max 0.0
          (Lp.estimate_pow lp
             (Common.combine_sketches lp sketches (Imat.row a i))))
  in
  let total = Array.fold_left ( +. ) 0.0 est in
  if total <= 0.0 then None
  else begin
    (* Alice samples a row ∝ its estimated mass and ships it. *)
    let i = pick_weighted ctx.Ctx.alice est total in
    let i', a_row =
      Ctx.a2b ctx ~label:"sampled row of A"
        (Codec.pair Codec.uint Codec.sparse_int_vec)
        (i, Imat.row a i)
    in
    (* Bob: exact row of C, entry sampled ∝ |C_ij|^p. *)
    let c_row = Common.row_times_matrix a_row b in
    let weights =
      Array.map
        (fun v ->
          if v = 0 then 0.0
          else if prm.p = 0.0 then 1.0
          else Float.abs (float_of_int v) ** prm.p)
        c_row
    in
    let row_total = Array.fold_left ( +. ) 0.0 weights in
    if row_total <= 0.0 then None
    else begin
      let j = pick_weighted ctx.Ctx.bob weights row_total in
      Some { row = i'; col = j; value = c_row.(j) }
    end
  end
