(** ℓp-sampling of C = A·B for p ∈ [0, 2] — an extension beyond the paper.

    The paper gives ℓ1-sampling (Remark 3, exact distribution) and
    ℓ0-sampling (Theorem 3.2). This module generalises to any p ∈ [0, 2]
    with the two-round pattern of Algorithm 1: Bob's round-1 ℓp sketches
    give Alice (1±ε) estimates of every row's ‖C_{i,*}‖_p^p; Alice samples
    a row proportionally and ships it; Bob computes that row of C exactly
    and samples an entry ∝ |C_{i,j}|^p. The output distribution is within
    a (1±2ε) factor of |C_{i,j}|^p/‖C‖_p^p, at Õ(n/ε²) bits and 2 rounds.

    For p = 1 on non-negative inputs prefer {!L1_sampling} (exact, one
    round, O(n log n) bits); for p = 0 this trades {!L0_sampling}'s strict
    one-roundness for simplicity. *)

type params = { p : float; eps : float; sketch_groups : int }

val default_params : ?p:float -> eps:float -> unit -> params
(** p defaults to 2 (sampling ∝ squared entries — "importance" sampling of
    the Frobenius mass). *)

type sample = { row : int; col : int; value : int }

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option
(** [None] iff the product is zero (or every row estimate degenerates).
    [value] is the exact C_{row,col}. *)
