(** The one-round baseline from [16] that Algorithm 1 improves on.

    Bob sends ℓp sketches of his rows at full accuracy ε (size Õ(1/ε²)
    each); Alice combines them into sketches of every row of C = A·B, sums
    the per-row estimates, and outputs. One round, Õ(n/ε²) bits — exactly
    the protocol whose ε-dependence Theorem 3.1 beats, and the subject of
    the Ω(n/ε²) one-round lower bound the paper cites. *)

type params = { p : float; eps : float; sketch_groups : int }

val default_params : ?p:float -> eps:float -> unit -> params

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float
(** Estimate of ‖A·B‖_p^p in a single message. *)
