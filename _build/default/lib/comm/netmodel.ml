type t = { name : string; latency : float; bandwidth : float }

let make ~name ~latency ~bandwidth =
  if latency < 0.0 || bandwidth <= 0.0 then invalid_arg "Netmodel.make";
  { name; latency; bandwidth }

let lan = make ~name:"LAN" ~latency:1e-4 ~bandwidth:1e10
let wan = make ~name:"WAN" ~latency:0.05 ~bandwidth:1e8
let mobile = make ~name:"mobile" ~latency:0.12 ~bandwidth:1e7

let transfer_time t tr =
  (float_of_int (Transcript.rounds tr) *. t.latency)
  +. (float_of_int (Transcript.total_bits tr) /. t.bandwidth)

let pp_time ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.0f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1f ms" (s *. 1e3)
  else Format.fprintf ppf "%.2f s" s
