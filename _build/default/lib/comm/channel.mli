(** The simulated wire between Alice and Bob.

    [send] serialises the value with the supplied codec, charges the
    transcript for the real encoded length, then {e decodes the bytes back}
    and returns the decoded value. Protocol code must use the returned
    value on the receiving side — information that was not actually encoded
    cannot leak across, and lossy codecs (e.g. {!Codec.float32}) lose
    precision exactly as they would on a network. *)

type t

val create : unit -> t
val transcript : t -> Transcript.t

val send :
  t -> from:Transcript.party -> label:string -> 'a Codec.t -> 'a -> 'a
