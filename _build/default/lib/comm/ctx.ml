module Prng = Matprod_util.Prng

type t = {
  chan : Channel.t;
  public : Prng.t;
  alice : Prng.t;
  bob : Prng.t;
}

let create ~seed =
  let root = Prng.create seed in
  let public = Prng.split root in
  let alice = Prng.split root in
  let bob = Prng.split root in
  { chan = Channel.create (); public; alice; bob }

let send t ~from ~label codec v = Channel.send t.chan ~from ~label codec v
let a2b t ~label codec v = send t ~from:Transcript.Alice ~label codec v
let b2a t ~label codec v = send t ~from:Transcript.Bob ~label codec v
let transcript t = Channel.transcript t.chan

type 'r run = {
  output : 'r;
  bits : int;
  rounds : int;
  transcript : Transcript.t;
}

let run ~seed f =
  let t = create ~seed in
  let output = f t in
  let tr = transcript t in
  {
    output;
    bits = Transcript.total_bits tr;
    rounds = Transcript.rounds tr;
    transcript = tr;
  }
