type t = { transcript : Transcript.t }

let create () = { transcript = Transcript.create () }
let transcript t = t.transcript

let send t ~from ~label codec v =
  let wire = Codec.encode codec v in
  Transcript.record t.transcript ~sender:from ~label
    ~bytes:(String.length wire);
  Codec.decode codec wire
