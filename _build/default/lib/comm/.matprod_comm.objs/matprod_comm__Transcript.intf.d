lib/comm/transcript.mli: Format
