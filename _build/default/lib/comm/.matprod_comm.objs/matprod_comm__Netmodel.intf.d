lib/comm/netmodel.mli: Format Transcript
