lib/comm/ctx.ml: Channel Matprod_util Transcript
