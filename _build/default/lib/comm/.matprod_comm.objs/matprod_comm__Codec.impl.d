lib/comm/codec.ml: Array Buffer Char Int32 Int64 List String
