lib/comm/ctx.mli: Channel Codec Matprod_util Transcript
