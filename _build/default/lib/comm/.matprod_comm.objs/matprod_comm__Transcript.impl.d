lib/comm/transcript.ml: Format Hashtbl List Option
