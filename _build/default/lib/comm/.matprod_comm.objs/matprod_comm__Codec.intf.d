lib/comm/codec.mli:
