lib/comm/channel.ml: Codec String Transcript
