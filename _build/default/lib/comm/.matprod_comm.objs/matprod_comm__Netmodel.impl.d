lib/comm/netmodel.ml: Format Transcript
