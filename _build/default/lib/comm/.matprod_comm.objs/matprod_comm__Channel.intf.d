lib/comm/channel.mli: Codec Transcript
