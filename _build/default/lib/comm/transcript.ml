type party = Alice | Bob

let party_name = function Alice -> "Alice" | Bob -> "Bob"
let other = function Alice -> Bob | Bob -> Alice

type message = { sender : party; round : int; label : string; bytes : int }

type t = {
  mutable rev_messages : message list;
  mutable last_sender : party option;
  mutable round : int;
  mutable count : int;
  mutable bytes_alice : int;
  mutable bytes_bob : int;
}

let create () =
  {
    rev_messages = [];
    last_sender = None;
    round = 0;
    count = 0;
    bytes_alice = 0;
    bytes_bob = 0;
  }

let record t ~sender ~label ~bytes =
  if bytes < 0 then invalid_arg "Transcript.record: negative bytes";
  (match t.last_sender with
  | Some s when s = sender -> ()
  | _ ->
      t.round <- t.round + 1;
      t.last_sender <- Some sender);
  t.rev_messages <- { sender; round = t.round; label; bytes } :: t.rev_messages;
  t.count <- t.count + 1;
  match sender with
  | Alice -> t.bytes_alice <- t.bytes_alice + bytes
  | Bob -> t.bytes_bob <- t.bytes_bob + bytes

let messages t = List.rev t.rev_messages
let total_bytes t = t.bytes_alice + t.bytes_bob
let total_bits t = 8 * total_bytes t
let rounds t = t.round
let message_count t = t.count
let bytes_from t = function Alice -> t.bytes_alice | Bob -> t.bytes_bob

let by_label t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl m.label) in
      Hashtbl.replace tbl m.label (prev + m.bytes))
    t.rev_messages;
  Hashtbl.fold (fun label bytes acc -> (label, bytes) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>%d bytes (%d bits), %d messages, %d rounds (Alice %d B, Bob %d B)"
    (total_bytes t) (total_bits t) (message_count t) (rounds t) t.bytes_alice
    t.bytes_bob;
  List.iter
    (fun (label, bytes) ->
      Format.fprintf ppf "@,  %-32s %8d B" label bytes)
    (by_label t);
  Format.fprintf ppf "@]"
