(** Transcript of a two-party protocol run: who sent what, how many bytes,
    and how the messages group into rounds.

    Rounds follow the standard communication-complexity convention: a round
    is a maximal block of consecutive messages in one direction, so the
    round count is the number of direction alternations plus one. A
    protocol in which Alice sends one message and Bob answers is 2 rounds
    of interaction but the paper counts "Alice speaks, Bob outputs" as
    1 round; {!rounds} reports the paper's convention (number of speaking
    phases), which coincides with blocks of same-direction messages. *)

type party = Alice | Bob

val party_name : party -> string
val other : party -> party

type message = private {
  sender : party;
  round : int;  (** 1-based speaking-phase index. *)
  label : string;  (** Human-readable tag, e.g. "lp-sketch(B^T)". *)
  bytes : int;
}

type t

val create : unit -> t

val record : t -> sender:party -> label:string -> bytes:int -> unit
(** Append a message; opens a new round iff the direction changed. *)

val messages : t -> message list
(** In send order. *)

val total_bytes : t -> int
val total_bits : t -> int
val rounds : t -> int
val message_count : t -> int
val bytes_from : t -> party -> int

val by_label : t -> (string * int) list
(** Total bytes per label, descending by size. *)

val pp_summary : Format.formatter -> t -> unit
