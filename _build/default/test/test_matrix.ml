(* Tests for the matrix substrate: binary matrices, integer matrices, and
   exact output-sensitive products. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product

let check = Alcotest.check

(* Reference dense multiply. *)
let dense_mul a b =
  let n = Array.length a
  and m = Array.length b.(0)
  and inner = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0 in
          for k = 0 to inner - 1 do
            acc := !acc + (a.(i).(k) * b.(k).(j))
          done;
          !acc))

let random_dense rng ~rows ~cols ~density ~maxval =
  Array.init rows (fun _ ->
      Array.init cols (fun _ ->
          if Prng.float rng < density then 1 + Prng.int rng maxval else 0))

let random_bool_dense rng ~rows ~cols ~density =
  random_dense rng ~rows ~cols ~density ~maxval:1

(* ------------------------------------------------------------------ *)
(* Bmat *)

let test_bmat_roundtrip () =
  let rng = Prng.create 1 in
  let d = random_bool_dense rng ~rows:13 ~cols:17 ~density:0.3 in
  let m = Bmat.of_dense d in
  check Alcotest.int "rows" 13 (Bmat.rows m);
  check Alcotest.int "cols" 17 (Bmat.cols m);
  let d' = Bmat.to_dense m in
  check Alcotest.bool "dense roundtrip" true (d = d')

let test_bmat_get () =
  let m = Bmat.create ~rows:3 ~cols:4 [| [| 0; 2 |]; [||]; [| 3 |] |] in
  check Alcotest.bool "0,0" true (Bmat.get m 0 0);
  check Alcotest.bool "0,1" false (Bmat.get m 0 1);
  check Alcotest.bool "0,2" true (Bmat.get m 0 2);
  check Alcotest.bool "2,3" true (Bmat.get m 2 3);
  check Alcotest.int "nnz" 3 (Bmat.nnz m)

let test_bmat_create_dedups () =
  let m = Bmat.create ~rows:1 ~cols:5 [| [| 3; 1; 3; 1 |] |] in
  check Alcotest.bool "row sorted dedup" true (Bmat.row m 0 = [| 1; 3 |])

let test_bmat_create_rejects_bad_index () =
  Alcotest.check_raises "col out of range"
    (Invalid_argument "Bmat: row 0 has a column index outside [0,3)") (fun () ->
      ignore (Bmat.create ~rows:1 ~cols:3 [| [| 5 |] |]))

let test_bmat_transpose () =
  let rng = Prng.create 2 in
  let d = random_bool_dense rng ~rows:11 ~cols:7 ~density:0.4 in
  let m = Bmat.of_dense d in
  let mt = Bmat.transpose m in
  check Alcotest.int "t rows" 7 (Bmat.rows mt);
  check Alcotest.int "t cols" 11 (Bmat.cols mt);
  for i = 0 to 10 do
    for j = 0 to 6 do
      check Alcotest.bool "entry" (Bmat.get m i j) (Bmat.get mt j i)
    done
  done;
  check Alcotest.bool "double transpose" true (Bmat.equal m (Bmat.transpose mt))

let test_bmat_col_weights () =
  let rng = Prng.create 3 in
  let d = random_bool_dense rng ~rows:20 ~cols:9 ~density:0.5 in
  let m = Bmat.of_dense d in
  let w = Bmat.col_weights m in
  for j = 0 to 8 do
    let expect = Array.fold_left (fun acc r -> acc + r.(j)) 0 d in
    check Alcotest.int "col weight" expect w.(j)
  done

let test_bmat_identity () =
  let i5 = Bmat.identity 5 in
  check Alcotest.int "nnz" 5 (Bmat.nnz i5);
  for i = 0 to 4 do
    check Alcotest.bool "diag" true (Bmat.get i5 i i)
  done

let test_bmat_filter_entries () =
  let m = Bmat.identity 6 in
  let even = Bmat.filter_entries m (fun i _ -> i mod 2 = 0) in
  check Alcotest.int "kept half" 3 (Bmat.nnz even)

(* ------------------------------------------------------------------ *)
(* Imat *)

let test_imat_roundtrip () =
  let rng = Prng.create 4 in
  let d = random_dense rng ~rows:9 ~cols:12 ~density:0.35 ~maxval:50 in
  let m = Imat.of_dense d in
  check Alcotest.bool "roundtrip" true (Imat.to_dense m = d)

let test_imat_create_sums_duplicates () =
  let m = Imat.create ~rows:1 ~cols:5 [| [| (2, 3); (2, 4); (1, -1) |] |] in
  check Alcotest.int "summed" 7 (Imat.get m 0 2);
  check Alcotest.int "other" (-1) (Imat.get m 0 1);
  (* Cancelling duplicates vanish. *)
  let z = Imat.create ~rows:1 ~cols:5 [| [| (2, 3); (2, -3) |] |] in
  check Alcotest.int "cancelled" 0 (Imat.nnz z)

let test_imat_transpose () =
  let rng = Prng.create 5 in
  let d = random_dense rng ~rows:8 ~cols:6 ~density:0.4 ~maxval:9 in
  let m = Imat.of_dense d in
  let mt = Imat.transpose m in
  for i = 0 to 7 do
    for j = 0 to 5 do
      check Alcotest.int "entry" (Imat.get m i j) (Imat.get mt j i)
    done
  done

let test_imat_norms () =
  let m = Imat.of_dense [| [| 1; -2; 0 |]; [| 0; 0; 3 |] |] in
  check Alcotest.int "row_l1 0" 3 (Imat.row_l1 m 0);
  check Alcotest.int "row_l1 1" 3 (Imat.row_l1 m 1);
  check Alcotest.bool "col_l1" true (Imat.col_l1 m = [| 1; 2; 3 |]);
  check (Alcotest.float 1e-9) "row_lp p=2" 5.0 (Imat.row_lp_pow m ~p:2.0 0);
  check (Alcotest.float 1e-9) "row_lp p=0" 2.0 (Imat.row_lp_pow m ~p:0.0 0);
  check Alcotest.int "max_abs" 3 (Imat.max_abs m);
  check Alcotest.bool "nonneg false" false (Imat.nonneg m)

let test_imat_of_bmat () =
  let b = Bmat.identity 4 in
  let m = Imat.of_bmat b in
  check Alcotest.int "diag value" 1 (Imat.get m 2 2);
  check Alcotest.int "nnz" 4 (Imat.nnz m)

(* ------------------------------------------------------------------ *)
(* Product *)

let test_bool_product_matches_dense () =
  let rng = Prng.create 6 in
  for _ = 1 to 5 do
    let da = random_bool_dense rng ~rows:15 ~cols:10 ~density:0.3 in
    let db = random_bool_dense rng ~rows:10 ~cols:12 ~density:0.3 in
    let c = Product.bool_product (Bmat.of_dense da) (Bmat.of_dense db) in
    let want = dense_mul da db in
    for i = 0 to 14 do
      for j = 0 to 11 do
        check Alcotest.int "entry" want.(i).(j) (Product.get c i j)
      done
    done
  done

let test_int_product_matches_dense () =
  let rng = Prng.create 7 in
  for _ = 1 to 5 do
    let da = random_dense rng ~rows:9 ~cols:11 ~density:0.4 ~maxval:5 in
    let db = random_dense rng ~rows:11 ~cols:8 ~density:0.4 ~maxval:5 in
    let c = Product.int_product (Imat.of_dense da) (Imat.of_dense db) in
    let want = dense_mul da db in
    for i = 0 to 8 do
      for j = 0 to 7 do
        check Alcotest.int "entry" want.(i).(j) (Product.get c i j)
      done
    done
  done

let test_product_norms () =
  (* A = [[1,1],[0,1]], B = [[1,0],[1,1]] -> C = [[2,1],[1,1]] *)
  let a = Bmat.of_dense [| [| 1; 1 |]; [| 0; 1 |] |] in
  let b = Bmat.of_dense [| [| 1; 0 |]; [| 1; 1 |] |] in
  let c = Product.bool_product a b in
  check Alcotest.int "l0" 4 (Product.nnz c);
  check Alcotest.int "l1" 5 (Product.l1 c);
  check Alcotest.int "linf" 2 (Product.linf c);
  check (Alcotest.float 1e-9) "l2^2" 7.0 (Product.lp_pow c ~p:2.0);
  match Product.argmax c with
  | Some (0, 0, 2) -> ()
  | _ -> Alcotest.fail "argmax should be (0,0,2)"

let test_product_row_col_norms () =
  let a = Bmat.of_dense [| [| 1; 1 |]; [| 0; 1 |] |] in
  let b = Bmat.of_dense [| [| 1; 0 |]; [| 1; 1 |] |] in
  let c = Product.bool_product a b in
  let rl1 = Product.row_lp_pow c ~p:1.0 in
  check (Alcotest.float 1e-9) "row0 l1" 3.0 rl1.(0);
  check (Alcotest.float 1e-9) "row1 l1" 2.0 rl1.(1);
  let cl0 = Product.col_lp_pow c ~p:0.0 in
  check (Alcotest.float 1e-9) "col0 l0" 2.0 cl0.(0)

let test_product_heavy_hitters () =
  (* C = [[2,1],[1,1]]; l1 = 5. phi=0.4: only entry 2 qualifies (2 >= 2). *)
  let a = Bmat.of_dense [| [| 1; 1 |]; [| 0; 1 |] |] in
  let b = Bmat.of_dense [| [| 1; 0 |]; [| 1; 1 |] |] in
  let c = Product.bool_product a b in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "hh p=1 phi=0.4" [ (0, 0) ]
    (Product.heavy_hitters c ~p:1.0 ~phi:0.4);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "hh p=1 phi=0.2"
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    (Product.heavy_hitters c ~p:1.0 ~phi:0.2)

let test_product_zero () =
  let z = Bmat.zero ~rows:5 ~cols:5 in
  let c = Product.bool_product z z in
  check Alcotest.int "nnz" 0 (Product.nnz c);
  check Alcotest.int "linf" 0 (Product.linf c);
  check Alcotest.bool "argmax none" true (Product.argmax c = None)

let test_product_cancellation () =
  (* Integer entries can cancel: C must drop exact zeros. *)
  let a = Imat.of_dense [| [| 1; 1 |] |] in
  let b = Imat.of_dense [| [| 1 |]; [| -1 |] |] in
  let c = Product.int_product a b in
  check Alcotest.int "cancelled nnz" 0 (Product.nnz c);
  check Alcotest.int "entry" 0 (Product.get c 0 0)

let test_product_rectangular () =
  let rng = Prng.create 8 in
  let da = random_bool_dense rng ~rows:4 ~cols:20 ~density:0.3 in
  let db = random_bool_dense rng ~rows:20 ~cols:3 ~density:0.3 in
  let c = Product.bool_product (Bmat.of_dense da) (Bmat.of_dense db) in
  check Alcotest.int "rows" 4 (Product.rows c);
  check Alcotest.int "cols" 3 (Product.cols c);
  let want = dense_mul da db in
  for i = 0 to 3 do
    for j = 0 to 2 do
      check Alcotest.int "entry" want.(i).(j) (Product.get c i j)
    done
  done

let test_product_dim_mismatch () =
  let a = Bmat.zero ~rows:3 ~cols:4 in
  let b = Bmat.zero ~rows:5 ~cols:3 in
  Alcotest.check_raises "dims" (Invalid_argument "Product.bool_product: dims")
    (fun () -> ignore (Product.bool_product a b))

(* ------------------------------------------------------------------ *)
(* Matio *)

module Matio = Matprod_matrix.Matio

let tmpfile name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_matio_bmat_roundtrip () =
  let rng = Prng.create 33 in
  let m = Bmat.of_dense (random_bool_dense rng ~rows:13 ~cols:21 ~density:0.3) in
  let path = tmpfile "matio_test_b.txt" in
  Matio.write_bmat path m;
  let m' = Matio.read_bmat path in
  check Alcotest.bool "roundtrip" true (Bmat.equal m m');
  (* A binary file also reads as a 0/1 integer matrix. *)
  let mi = Matio.read_imat path in
  check Alcotest.bool "as imat" true (Imat.equal mi (Imat.of_bmat m));
  Sys.remove path

let test_matio_imat_roundtrip () =
  let rng = Prng.create 34 in
  let m = Imat.of_dense (random_dense rng ~rows:9 ~cols:14 ~density:0.4 ~maxval:50) in
  let path = tmpfile "matio_test_i.txt" in
  Matio.write_imat path m;
  check Alcotest.bool "roundtrip" true (Imat.equal m (Matio.read_imat path));
  Sys.remove path

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_matio_mm_pattern () =
  let path = tmpfile "matio_test_mm.mtx" in
  write_file path
    "%%MatrixMarket matrix coordinate pattern general\n\
     % a comment\n\
     3 4 2\n\
     1 1\n\
     3 4\n";
  let m = Matio.read_bmat path in
  check Alcotest.int "rows" 3 (Bmat.rows m);
  check Alcotest.int "cols" 4 (Bmat.cols m);
  check Alcotest.bool "0-indexed (0,0)" true (Bmat.get m 0 0);
  check Alcotest.bool "0-indexed (2,3)" true (Bmat.get m 2 3);
  check Alcotest.int "nnz" 2 (Bmat.nnz m);
  Sys.remove path

let test_matio_mm_integer_real () =
  let path = tmpfile "matio_test_mm2.mtx" in
  write_file path
    "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 7\n2 1 -3\n";
  let m = Matio.read_imat path in
  check Alcotest.int "entry" 7 (Imat.get m 0 1);
  check Alcotest.int "negative" (-3) (Imat.get m 1 0);
  write_file path
    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.6\n";
  let m2 = Matio.read_imat path in
  check Alcotest.int "real rounded" 3 (Imat.get m2 0 0);
  Sys.remove path

let test_matio_rejects () =
  let path = tmpfile "matio_test_bad.txt" in
  write_file path "not a matrix\n";
  (match Matio.read_bmat path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected header rejection");
  write_file path "matprod bmat 2 2\n5 0\n";
  (match Matio.read_bmat path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds rejection");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Bitmat *)

module Bitmat = Matprod_matrix.Bitmat

let test_bitmat_popcount () =
  check Alcotest.int "0" 0 (Bitmat.popcount 0);
  check Alcotest.int "1" 1 (Bitmat.popcount 1);
  check Alcotest.int "0xFF" 8 (Bitmat.popcount 0xFF);
  check Alcotest.int "max_int" 62 (Bitmat.popcount max_int);
  let rng = Prng.create 30 in
  for _ = 1 to 500 do
    let x = Prng.bits rng in
    let slow = ref 0 in
    for b = 0 to 62 do
      if x land (1 lsl b) <> 0 then incr slow
    done;
    check Alcotest.int "matches bit loop" !slow (Bitmat.popcount x)
  done

let test_bitmat_roundtrip () =
  let rng = Prng.create 31 in
  let d = random_bool_dense rng ~rows:17 ~cols:130 ~density:0.3 in
  let m = Bmat.of_dense d in
  let packed = Bitmat.of_bmat m in
  check Alcotest.int "rows" 17 (Bitmat.rows packed);
  check Alcotest.int "cols" 130 (Bitmat.cols packed);
  check Alcotest.int "nnz preserved" (Bmat.nnz m) (Bitmat.nnz packed);
  check Alcotest.bool "roundtrip" true (Bmat.equal m (Bitmat.to_bmat packed));
  for i = 0 to 16 do
    for k = 0 to 129 do
      check Alcotest.bool "entry" (Bmat.get m i k) (Bitmat.get packed i k)
    done
  done

let test_bitmat_set_clear () =
  let t = Bitmat.create ~rows:3 ~cols:70 in
  Bitmat.set t 1 65 true;
  check Alcotest.bool "set" true (Bitmat.get t 1 65);
  check Alcotest.int "nnz" 1 (Bitmat.nnz t);
  Bitmat.set t 1 65 false;
  check Alcotest.bool "cleared" false (Bitmat.get t 1 65);
  check Alcotest.int "nnz back to 0" 0 (Bitmat.nnz t)

let test_bitmat_product_matches () =
  let rng = Prng.create 32 in
  let da = random_bool_dense rng ~rows:20 ~cols:90 ~density:0.25 in
  let db = random_bool_dense rng ~rows:90 ~cols:15 ~density:0.25 in
  let a = Bmat.of_dense da and b = Bmat.of_dense db in
  let c = Product.bool_product a b in
  let pa = Bitmat.of_bmat a and pbt = Bitmat.of_bmat (Bmat.transpose b) in
  for i = 0 to 19 do
    for j = 0 to 14 do
      check Alcotest.int "entry" (Product.get c i j)
        (Bitmat.product_entry ~a:pa ~bt:pbt i j)
    done
  done;
  check Alcotest.int "linf" (Product.linf c) (Bitmat.product_linf ~a:pa ~bt:pbt)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let gen_dense rows cols density maxval =
  let open QCheck.Gen in
  let cell = map (fun x -> if x < density then 1 + (abs x * 7919 mod maxval) else 0)
      (int_bound 99) in
  array_size (return rows) (array_size (return cols) cell)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"product: l1 = sum over inner of colA*rowB (binary)"
      ~count:50
      (make (gen_dense 8 8 30 1))
      (fun d ->
        (* For binary A, B: ||AB||_1 = sum_k colweightA(k) * rowweightB(k),
           the Remark 2 identity, here with B = A^T. *)
        let a = Bmat.of_dense d in
        let b = Bmat.transpose a in
        let c = Product.bool_product a b in
        let wa = Bmat.col_weights a in
        let wb = Array.init (Bmat.rows b) (fun k -> Bmat.row_weight b k) in
        let expect = Array.to_list (Array.mapi (fun k w -> w * wb.(k)) wa)
                     |> List.fold_left ( + ) 0 in
        Product.l1 c = expect);
    Test.make ~name:"product: nnz <= rows*cols and linf <= inner dim" ~count:50
      (make (gen_dense 6 10 40 1))
      (fun d ->
        let a = Bmat.of_dense d in
        let b = Bmat.transpose a in
        let c = Product.bool_product a b in
        Product.nnz c <= Product.rows c * Product.cols c
        && Product.linf c <= Bmat.cols a);
    Test.make ~name:"bmat: transpose involutive" ~count:50
      (make (gen_dense 7 9 35 1))
      (fun d ->
        let m = Bmat.of_dense d in
        Bmat.equal m (Bmat.transpose (Bmat.transpose m)));
    Test.make ~name:"imat: transpose involutive" ~count:50
      (make (gen_dense 7 9 35 20))
      (fun d ->
        let m = Imat.of_dense d in
        Imat.equal m (Imat.transpose (Imat.transpose m)));
    Test.make ~name:"product: heavy hitters contain argmax (p=1)" ~count:50
      (make (gen_dense 6 6 50 1))
      (fun d ->
        let a = Bmat.of_dense d in
        let b = Bmat.transpose a in
        let c = Product.bool_product a b in
        match Product.argmax c with
        | None -> true
        | Some (i, j, v) ->
            let phi = float_of_int v /. float_of_int (Product.l1 c) in
            List.mem (i, j) (Product.heavy_hitters c ~p:1.0 ~phi));
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "matrix"
    [
      ( "bmat",
        [
          Alcotest.test_case "roundtrip" `Quick test_bmat_roundtrip;
          Alcotest.test_case "get" `Quick test_bmat_get;
          Alcotest.test_case "create dedups" `Quick test_bmat_create_dedups;
          Alcotest.test_case "rejects bad index" `Quick test_bmat_create_rejects_bad_index;
          Alcotest.test_case "transpose" `Quick test_bmat_transpose;
          Alcotest.test_case "col weights" `Quick test_bmat_col_weights;
          Alcotest.test_case "identity" `Quick test_bmat_identity;
          Alcotest.test_case "filter entries" `Quick test_bmat_filter_entries;
        ] );
      ( "imat",
        [
          Alcotest.test_case "roundtrip" `Quick test_imat_roundtrip;
          Alcotest.test_case "duplicate columns" `Quick test_imat_create_sums_duplicates;
          Alcotest.test_case "transpose" `Quick test_imat_transpose;
          Alcotest.test_case "norms" `Quick test_imat_norms;
          Alcotest.test_case "of_bmat" `Quick test_imat_of_bmat;
        ] );
      ( "product",
        [
          Alcotest.test_case "bool matches dense" `Quick test_bool_product_matches_dense;
          Alcotest.test_case "int matches dense" `Quick test_int_product_matches_dense;
          Alcotest.test_case "norms" `Quick test_product_norms;
          Alcotest.test_case "row/col norms" `Quick test_product_row_col_norms;
          Alcotest.test_case "heavy hitters" `Quick test_product_heavy_hitters;
          Alcotest.test_case "zero" `Quick test_product_zero;
          Alcotest.test_case "cancellation" `Quick test_product_cancellation;
          Alcotest.test_case "rectangular" `Quick test_product_rectangular;
          Alcotest.test_case "dim mismatch" `Quick test_product_dim_mismatch;
        ] );
      ( "matio",
        [
          Alcotest.test_case "bmat roundtrip" `Quick test_matio_bmat_roundtrip;
          Alcotest.test_case "imat roundtrip" `Quick test_matio_imat_roundtrip;
          Alcotest.test_case "matrixmarket pattern" `Quick test_matio_mm_pattern;
          Alcotest.test_case "matrixmarket integer & real" `Quick test_matio_mm_integer_real;
          Alcotest.test_case "rejects malformed" `Quick test_matio_rejects;
        ] );
      ( "bitmat",
        [
          Alcotest.test_case "popcount" `Quick test_bitmat_popcount;
          Alcotest.test_case "roundtrip" `Quick test_bitmat_roundtrip;
          Alcotest.test_case "set/clear" `Quick test_bitmat_set_clear;
          Alcotest.test_case "product matches" `Quick test_bitmat_product_matches;
        ] );
      ("properties", qsuite);
    ]
