(* Tests of the lower-bound hard-instance generators: the reductions must
   produce exactly the ||AB||_inf gaps the paper's proofs rely on. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Disj = Matprod_lowerbounds.Disj_reduction
module Gap = Matprod_lowerbounds.Gap_linf_reduction
module Sum_hard = Matprod_lowerbounds.Sum_hard

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Theorem 4.4 (DISJ reduction) *)

let test_disj_embed_block_structure () =
  (* AB = [[A'+B', 0],[0,0]] for explicit small blocks. *)
  let a' = Bmat.of_dense [| [| 1; 0 |]; [| 0; 0 |] |] in
  let b' = Bmat.of_dense [| [| 0; 0 |]; [| 1; 0 |] |] in
  let a, b = Disj.embed ~a' ~b' in
  let c = Product.bool_product a b in
  check Alcotest.int "sum entry (0,0)" 1 (Product.get c 0 0);
  check Alcotest.int "sum entry (1,0)" 1 (Product.get c 1 0);
  (* Right and bottom blocks are identically zero. *)
  for i = 0 to 3 do
    for j = 2 to 3 do
      check Alcotest.int "right block" 0 (Product.get c i j)
    done
  done;
  for i = 2 to 3 do
    for j = 0 to 3 do
      check Alcotest.int "bottom block" 0 (Product.get c i j)
    done
  done

let test_disj_embed_overlap_gives_two () =
  let a' = Bmat.of_dense [| [| 1 |] |] in
  let b' = Bmat.of_dense [| [| 1 |] |] in
  let a, b = Disj.embed ~a' ~b' in
  check Alcotest.int "intersecting -> 2" 2
    (Product.linf (Product.bool_product a b))

let test_disj_instances_gap () =
  let rng = Prng.create 1 in
  for _ = 1 to 10 do
    let a, b = Disj.instance rng ~half:12 ~intersecting:false ~density:0.3 in
    let linf = Product.linf (Product.bool_product a b) in
    check Alcotest.bool "disjoint -> linf <= 1" true (linf <= 1);
    let a2, b2 = Disj.instance rng ~half:12 ~intersecting:true ~density:0.3 in
    let linf2 = Product.linf (Product.bool_product a2 b2) in
    check Alcotest.int "intersecting -> linf = 2" 2 linf2
  done

let test_disj_embed_rejects_nonsquare () =
  let a' = Bmat.zero ~rows:2 ~cols:3 in
  Alcotest.check_raises "nonsquare"
    (Invalid_argument "Disj_reduction.embed: blocks must be square and equal")
    (fun () -> ignore (Disj.embed ~a' ~b':a'))

(* ------------------------------------------------------------------ *)
(* Theorem 4.8 lower bound (Gap-l_inf reduction) *)

let test_gap_embed_difference () =
  let a' = Imat.of_dense [| [| 5 |] |] in
  let b' = Imat.of_dense [| [| -3 |] |] in
  let a, b = Gap.embed ~a' ~b' in
  check Alcotest.int "A'+B' = 2" 2 (Product.linf (Product.int_product a b))

let test_gap_instances () =
  let rng = Prng.create 2 in
  let kappa = 16 in
  for _ = 1 to 10 do
    let a, b = Gap.instance rng ~half:10 ~kappa ~gap:false in
    let linf = Product.linf (Product.int_product a b) in
    check Alcotest.bool "no gap -> <= 1" true (linf <= 1);
    let a2, b2 = Gap.instance rng ~half:10 ~kappa ~gap:true in
    let linf2 = Product.linf (Product.int_product a2 b2) in
    check Alcotest.bool "gap -> >= kappa" true (linf2 >= kappa)
  done

(* ------------------------------------------------------------------ *)
(* Theorem 4.5 (SUM hard distribution) *)

let test_sum_parameters () =
  let beta, k = Sum_hard.parameters ~beta_const:2.0 ~n:256 ~kappa:2.0 () in
  check Alcotest.bool "beta in (0,1)" true (beta > 0.0 && beta < 1.0);
  check Alcotest.bool "k in range" true (k >= 2 && k <= 256)

let test_sum_parameters_degenerate () =
  match Sum_hard.parameters ~n:16 ~kappa:64.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected degenerate-regime rejection"

let test_sum_instance_gap () =
  let rng = Prng.create 3 in
  let n = 256 and kappa = 2.0 in
  (* SUM = 1: planted intersecting pair forces a big entry. *)
  let inst1 = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n ~kappa ~sum:1 in
  check Alcotest.int "sum_value 1" 1 inst1.Sum_hard.sum_value;
  let c1 = Product.bool_product inst1.Sum_hard.a inst1.Sum_hard.b in
  check Alcotest.bool "linf >= replicas" true
    (Product.linf c1 >= inst1.Sum_hard.replicas);
  (* Entries are always multiples of the replica count (identical tiles). *)
  Product.iter c1 (fun _ _ v ->
      check Alcotest.int "quantised to replicas" 0 (v mod inst1.Sum_hard.replicas))

(* Reproduction note (see EXPERIMENTS.md §E11): with the identical tiled
   blocks of §4.2.2, off-diagonal pairs i ≠ j intersect with probability
   ≈ kβ²/4 each, so over n² pairs the SUM = 0 noise maximum also reaches
   multiples of n/k — the whole-matrix ℓ∞ gap claimed in (8) does not
   materialise. The *diagonal* does separate perfectly: under ν_k no U_i
   intersects its own V_i, so max_i C_{i,i} is 0 vs ≥ n/k. We assert the
   faithful property. *)
let test_sum_diagonal_separates () =
  let rng = Prng.create 4 in
  List.iter
    (fun (kappa, n) ->
      let i1 = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n ~kappa ~sum:1 in
      let i0 = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n ~kappa ~sum:0 in
      let diag_max inst =
        let c = Product.bool_product inst.Sum_hard.a inst.Sum_hard.b in
        let m = ref 0 in
        for i = 0 to n - 1 do
          m := max !m (Product.get c i i)
        done;
        !m
      in
      check Alcotest.bool
        (Printf.sprintf "diag separates at kappa=%.0f" kappa)
        true
        (diag_max i1 >= i1.Sum_hard.replicas && diag_max i0 = 0))
    [ (2.0, 256); (4.0, 512) ]

let test_sum_diag_zero_when_sum0 () =
  (* Under nu_k no U_i intersects its V_i, so with SUM = 0 every diagonal
     entry C_{i,i} = replicas * <U_i, V_i> is zero. *)
  let rng = Prng.create 5 in
  let inst = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n:128 ~kappa:2.0 ~sum:0 in
  let c = Product.bool_product inst.Sum_hard.a inst.Sum_hard.b in
  for i = 0 to 127 do
    check Alcotest.int "diagonal zero" 0 (Product.get c i i)
  done

let () =
  Alcotest.run "lowerbounds"
    [
      ( "disj (thm 4.4)",
        [
          Alcotest.test_case "block structure" `Quick test_disj_embed_block_structure;
          Alcotest.test_case "overlap gives 2" `Quick test_disj_embed_overlap_gives_two;
          Alcotest.test_case "instance gap" `Quick test_disj_instances_gap;
          Alcotest.test_case "rejects nonsquare" `Quick test_disj_embed_rejects_nonsquare;
        ] );
      ( "gap-linf (thm 4.8)",
        [
          Alcotest.test_case "embed difference" `Quick test_gap_embed_difference;
          Alcotest.test_case "instances" `Quick test_gap_instances;
        ] );
      ( "sum (thm 4.5)",
        [
          Alcotest.test_case "parameters" `Quick test_sum_parameters;
          Alcotest.test_case "degenerate regime" `Quick test_sum_parameters_degenerate;
          Alcotest.test_case "instance gap" `Slow test_sum_instance_gap;
          Alcotest.test_case "diagonal separates" `Slow test_sum_diagonal_separates;
          Alcotest.test_case "diag zero when sum=0" `Slow test_sum_diag_zero_when_sum0;
        ] );
    ]
