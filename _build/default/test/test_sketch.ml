(* Tests for the sketching substrate: linearity laws, estimator accuracy,
   sparse recovery exactness and failure detection, sampler uniformity. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Ams = Matprod_sketch.Ams
module Stable_sketch = Matprod_sketch.Stable_sketch
module L0_sketch = Matprod_sketch.L0_sketch
module Lp = Matprod_sketch.Lp
module One_sparse = Matprod_sketch.One_sparse
module S_sparse = Matprod_sketch.S_sparse
module L0_sampler = Matprod_sketch.L0_sampler
module Countsketch = Matprod_sketch.Countsketch
module Countmin = Matprod_sketch.Countmin
module Cohen = Matprod_sketch.Cohen
module Blocked_ams = Matprod_sketch.Blocked_ams

let check = Alcotest.check

let random_sparse_vec rng ~dim ~nnz ~maxval =
  let idx = Array.init dim (fun i -> i) in
  Prng.shuffle rng idx;
  let chosen = Array.sub idx 0 (min nnz dim) in
  Array.sort compare chosen;
  Array.map
    (fun i ->
      let v = 1 + Prng.int rng maxval in
      (i, if Prng.bool rng then v else -v))
    chosen

let lp_pow_of_vec ~p vec =
  Array.fold_left
    (fun acc (_, v) ->
      if v = 0 then acc
      else acc +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p)
    0.0 vec

(* ------------------------------------------------------------------ *)
(* AMS *)

let test_ams_exact_on_singleton () =
  let rng = Prng.create 1 in
  let t = Ams.create rng ~eps:0.5 ~groups:5 in
  let y = Ams.sketch t [| (7, 3) |] in
  check (Alcotest.float 1e-6) "singleton norm exact" 9.0 (Ams.estimate_sq t y)

let test_ams_accuracy () =
  let rng = Prng.create 2 in
  let failures = ref 0 in
  for trial = 1 to 20 do
    let t = Ams.create rng ~eps:0.2 ~groups:7 in
    let vec = random_sparse_vec rng ~dim:500 ~nnz:100 ~maxval:20 in
    let actual = lp_pow_of_vec ~p:2.0 vec in
    let est = Ams.estimate_sq t (Ams.sketch t vec) in
    if Stats.relative_error ~actual ~estimate:est > 0.25 then incr failures;
    ignore trial
  done;
  check Alcotest.bool "most estimates within eps" true (!failures <= 2)

let test_ams_linearity () =
  let rng = Prng.create 3 in
  let t = Ams.create rng ~eps:0.3 ~groups:3 in
  let v1 = random_sparse_vec rng ~dim:100 ~nnz:30 ~maxval:10 in
  let v2 = random_sparse_vec rng ~dim:100 ~nnz:30 ~maxval:10 in
  (* sketch(3*v1 + 2*v2) = 3*sketch(v1) + 2*sketch(v2) *)
  let dense = Array.make 100 0 in
  Array.iter (fun (i, v) -> dense.(i) <- dense.(i) + (3 * v)) v1;
  Array.iter (fun (i, v) -> dense.(i) <- dense.(i) + (2 * v)) v2;
  let combined =
    Array.of_list
      (List.filter_map
         (fun i -> if dense.(i) <> 0 then Some (i, dense.(i)) else None)
         (List.init 100 (fun i -> i)))
  in
  let direct = Ams.sketch t combined in
  let composed = Ams.empty t in
  Ams.add_scaled t ~dst:composed ~coeff:3 (Ams.sketch t v1);
  Ams.add_scaled t ~dst:composed ~coeff:2 (Ams.sketch t v2);
  Array.iteri
    (fun r x ->
      check (Alcotest.float 1e-6) "linear" x composed.(r))
    direct

let test_ams_zero () =
  let rng = Prng.create 4 in
  let t = Ams.create rng ~eps:0.5 ~groups:3 in
  check (Alcotest.float 0.0) "zero vector" 0.0 (Ams.estimate_sq t (Ams.empty t))

let test_ams_entries_pm1 () =
  let rng = Prng.create 5 in
  let t = Ams.create_rows rng ~rows_per_group:4 ~groups:2 in
  for r = 0 to 7 do
    for i = 0 to 20 do
      let e = Ams.entry t ~row:r i in
      check Alcotest.bool "pm1" true (e = 1.0 || e = -1.0)
    done
  done

(* ------------------------------------------------------------------ *)
(* Stable *)

let test_stable_accuracy_per_p () =
  List.iter
    (fun p ->
      let rng = Prng.create 6 in
      let failures = ref 0 in
      for _ = 1 to 10 do
        let t = Stable_sketch.create rng ~p ~eps:0.2 ~groups:5 in
        let vec = random_sparse_vec rng ~dim:300 ~nnz:80 ~maxval:10 in
        let actual = lp_pow_of_vec ~p vec ** (1.0 /. p) in
        let est = Stable_sketch.estimate t (Stable_sketch.sketch t vec) in
        if Stats.relative_error ~actual ~estimate:est > 0.3 then incr failures
      done;
      check Alcotest.bool
        (Printf.sprintf "p=%.1f mostly accurate" p)
        true (!failures <= 2))
    [ 0.5; 1.0; 1.5; 2.0 ]

let test_stable_linearity () =
  let rng = Prng.create 7 in
  let t = Stable_sketch.create_rows rng ~p:1.0 ~rows:50 in
  let v = [| (3, 2); (10, -1) |] in
  let direct = Stable_sketch.sketch t [| (3, 4); (10, -2) |] in
  let doubled = Stable_sketch.empty t in
  Stable_sketch.add_scaled t ~dst:doubled ~coeff:2 (Stable_sketch.sketch t v);
  Array.iteri
    (fun r x -> check (Alcotest.float 1e-6) "2x" x doubled.(r))
    direct

let test_stable_entry_deterministic () =
  let rng = Prng.create 8 in
  let t = Stable_sketch.create_rows rng ~p:1.3 ~rows:10 in
  check (Alcotest.float 0.0) "same entry"
    (Stable_sketch.entry t ~row:4 77)
    (Stable_sketch.entry t ~row:4 77)

let test_stable_estimate_pow () =
  let rng = Prng.create 9 in
  let t = Stable_sketch.create rng ~p:2.0 ~eps:0.3 ~groups:5 in
  let vec = [| (0, 3); (5, 4) |] in
  (* ||x||_2 = 5, ||x||_2^2 = 25 *)
  let y = Stable_sketch.sketch t vec in
  let pow = Stable_sketch.estimate_pow t y in
  check Alcotest.bool "pow consistent" true
    (Float.abs (pow -. (Stable_sketch.estimate t y ** 2.0)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* L0 sketch *)

let test_l0_exact_zero_and_small () =
  let rng = Prng.create 10 in
  let t = L0_sketch.create rng ~eps:0.3 ~groups:3 ~dim:1000 in
  check (Alcotest.float 0.0) "zero" 0.0 (L0_sketch.estimate t (L0_sketch.empty t));
  let one = L0_sketch.sketch t [| (123, 5) |] in
  let est = L0_sketch.estimate t one in
  check Alcotest.bool "singleton ~1" true (est >= 0.5 && est <= 2.0)

let test_l0_accuracy () =
  let rng = Prng.create 11 in
  List.iter
    (fun nnz ->
      let failures = ref 0 in
      for _ = 1 to 10 do
        let t = L0_sketch.create rng ~eps:0.2 ~groups:5 ~dim:4096 in
        let vec = random_sparse_vec rng ~dim:4096 ~nnz ~maxval:100 in
        let est = L0_sketch.estimate t (L0_sketch.sketch t vec) in
        if Stats.relative_error ~actual:(float_of_int nnz) ~estimate:est > 0.3
        then incr failures
      done;
      check Alcotest.bool
        (Printf.sprintf "nnz=%d mostly accurate" nnz)
        true (!failures <= 2))
    [ 10; 100; 1000; 4000 ]

let test_l0_ignores_values () =
  (* l0 depends only on the support: values 1 vs 1000 give same estimate. *)
  let rng = Prng.create 12 in
  let t = L0_sketch.create rng ~eps:0.25 ~groups:3 ~dim:500 in
  let supp = [| 5; 17; 100; 300; 499 |] in
  let v1 = Array.map (fun i -> (i, 1)) supp in
  let v2 = Array.map (fun i -> (i, 1000)) supp in
  check (Alcotest.float 1e-9) "same estimate"
    (L0_sketch.estimate t (L0_sketch.sketch t v1))
    (L0_sketch.estimate t (L0_sketch.sketch t v2))

let test_l0_linearity () =
  let rng = Prng.create 13 in
  let t = L0_sketch.create rng ~eps:0.3 ~groups:3 ~dim:200 in
  let v1 = [| (3, 1); (7, 2) |] and v2 = [| (7, 1); (50, 4) |] in
  let dense = Array.make 200 0 in
  Array.iter (fun (i, v) -> dense.(i) <- dense.(i) + v) v1;
  Array.iter (fun (i, v) -> dense.(i) <- dense.(i) + (3 * v)) v2;
  let combined =
    Array.of_list
      (List.filter_map
         (fun i -> if dense.(i) <> 0 then Some (i, dense.(i)) else None)
         (List.init 200 (fun i -> i)))
  in
  let direct = L0_sketch.sketch t combined in
  let composed = L0_sketch.empty t in
  L0_sketch.add_scaled t ~dst:composed ~coeff:1 (L0_sketch.sketch t v1);
  L0_sketch.add_scaled t ~dst:composed ~coeff:3 (L0_sketch.sketch t v2);
  check Alcotest.bool "field linear" true (direct = composed)

(* ------------------------------------------------------------------ *)
(* Lp dispatcher *)

let test_lp_dispatch_types () =
  let rng = Prng.create 14 in
  let l0 = Lp.create rng ~p:0.0 ~eps:0.3 ~groups:3 ~dim:100 in
  let l1 = Lp.create rng ~p:1.0 ~eps:0.3 ~groups:3 ~dim:100 in
  let l2 = Lp.create rng ~p:2.0 ~eps:0.3 ~groups:3 ~dim:100 in
  (match Lp.sketch l0 [| (1, 1) |] with
  | Lp.Z _ -> ()
  | Lp.F _ -> Alcotest.fail "l0 should be field-valued");
  (match Lp.sketch l1 [| (1, 1) |] with
  | Lp.F _ -> ()
  | Lp.Z _ -> Alcotest.fail "l1 should be float-valued");
  match Lp.sketch l2 [| (1, 1) |] with
  | Lp.F _ -> ()
  | Lp.Z _ -> Alcotest.fail "l2 should be float-valued"

let test_lp_estimates_each_p () =
  let rng = Prng.create 15 in
  List.iter
    (fun p ->
      let t = Lp.create rng ~p ~eps:0.25 ~groups:5 ~dim:512 in
      let vec = random_sparse_vec rng ~dim:512 ~nnz:64 ~maxval:8 in
      let actual = lp_pow_of_vec ~p vec in
      let est = Lp.estimate_pow t (Lp.sketch t vec) in
      check Alcotest.bool
        (Printf.sprintf "p=%.1f in ballpark" p)
        true
        (Stats.relative_error ~actual ~estimate:est < 0.5))
    [ 0.0; 0.5; 1.0; 2.0 ]

let test_lp_wire_roundtrip () =
  let rng = Prng.create 16 in
  List.iter
    (fun p ->
      let t = Lp.create rng ~p ~eps:0.5 ~groups:3 ~dim:64 in
      let v = Lp.sketch t [| (3, 2); (9, -1) |] in
      let codec = Lp.wire t in
      let v' =
        Matprod_comm.Codec.decode codec (Matprod_comm.Codec.encode codec v)
      in
      (* Field sketches survive exactly; float sketches go through float32. *)
      match (v, v') with
      | Lp.Z a, Lp.Z b -> check Alcotest.bool "field exact" true (a = b)
      | Lp.F a, Lp.F b ->
          Array.iteri
            (fun i x ->
              check Alcotest.bool "f32 close" true (Float.abs (x -. b.(i)) <= Float.abs x *. 1e-6 +. 1e-6))
            a
      | _ -> Alcotest.fail "wire changed variant")
    [ 0.0; 1.0; 2.0 ]

let test_lp_rejects_bad_p () =
  let rng = Prng.create 17 in
  Alcotest.check_raises "p=3" (Invalid_argument "Lp.create: p range") (fun () ->
      ignore (Lp.create rng ~p:3.0 ~eps:0.5 ~groups:3 ~dim:10))

(* ------------------------------------------------------------------ *)
(* One-sparse recovery *)

let test_one_sparse_zero () =
  let rng = Prng.create 18 in
  let spec = One_sparse.spec rng in
  let c = One_sparse.fresh () in
  (match One_sparse.decode spec c with
  | One_sparse.Zero -> ()
  | _ -> Alcotest.fail "fresh cell should decode Zero");
  check Alcotest.bool "is_zero" true (One_sparse.is_zero c)

let test_one_sparse_singleton () =
  let rng = Prng.create 19 in
  let spec = One_sparse.spec rng in
  let c = One_sparse.fresh () in
  One_sparse.update spec c 42 7;
  (match One_sparse.decode spec c with
  | One_sparse.One (42, 7) -> ()
  | _ -> Alcotest.fail "should recover (42,7)");
  (* negative values too *)
  let c2 = One_sparse.fresh () in
  One_sparse.update spec c2 13 (-5);
  match One_sparse.decode spec c2 with
  | One_sparse.One (13, -5) -> ()
  | _ -> Alcotest.fail "should recover (13,-5)"

let test_one_sparse_cancellation_back_to_zero () =
  let rng = Prng.create 20 in
  let spec = One_sparse.spec rng in
  let c = One_sparse.fresh () in
  One_sparse.update spec c 42 7;
  One_sparse.update spec c 42 (-7);
  match One_sparse.decode spec c with
  | One_sparse.Zero -> ()
  | _ -> Alcotest.fail "cancel to zero"

let test_one_sparse_many () =
  let rng = Prng.create 21 in
  let spec = One_sparse.spec rng in
  let misdecodes = ref 0 in
  for trial = 1 to 500 do
    let c = One_sparse.fresh () in
    One_sparse.update spec c (trial mod 97) 3;
    One_sparse.update spec c ((trial mod 89) + 100) 5;
    match One_sparse.decode spec c with
    | One_sparse.Many -> ()
    | _ -> incr misdecodes
  done;
  check Alcotest.int "never misdecodes a 2-sparse vector" 0 !misdecodes

(* Regression: with raw polynomial fingerprint coefficients, equal values
   at positions i and j with i + j even ALWAYS verified as a singleton at
   (i+j)/2 — the sum Σ c(k) only depended on the positions' power sums.
   The mixed coefficients must reject every such symmetric pattern. *)
let test_one_sparse_symmetric_patterns () =
  let rng = Prng.create 51 in
  let misdecodes = ref 0 in
  for trial = 1 to 300 do
    let spec = One_sparse.spec rng in
    let gap = 2 * (1 + (trial mod 50)) in
    let i = trial mod 1000 in
    let c = One_sparse.fresh () in
    One_sparse.update spec c i 1;
    One_sparse.update spec c (i + gap) 1;
    (match One_sparse.decode spec c with
    | One_sparse.Many -> ()
    | _ -> incr misdecodes);
    (* Equal-size, equal-sum supports must not share a fingerprint-sum:
       a {i, i+3} vs {i+1, i+2} pair through a fresh cell pair. *)
    let c1 = One_sparse.fresh () and c2 = One_sparse.fresh () in
    One_sparse.update spec c1 i 1;
    One_sparse.update spec c1 (i + 3) 1;
    One_sparse.update spec c2 (i + 1) 1;
    One_sparse.update spec c2 (i + 2) 1;
    One_sparse.add_scaled c1 ~coeff:(-1) c2;
    (* c1 - c2 is 4-sparse and nonzero; it must not decode Zero or One. *)
    match One_sparse.decode spec c1 with
    | One_sparse.Many -> ()
    | _ -> incr misdecodes
  done;
  check Alcotest.int "symmetric patterns rejected" 0 !misdecodes

let test_one_sparse_add_scaled () =
  let rng = Prng.create 22 in
  let spec = One_sparse.spec rng in
  let a = One_sparse.fresh () and b = One_sparse.fresh () in
  One_sparse.update spec a 10 2;
  One_sparse.update spec b 10 3;
  (* a - ... combine: a + (-2)*b + 4e10... check linear combo decodes *)
  One_sparse.add_scaled a ~coeff:2 b;
  match One_sparse.decode spec a with
  | One_sparse.One (10, 8) -> ()
  | _ -> Alcotest.fail "2+2*3=8 at index 10"

(* ------------------------------------------------------------------ *)
(* S-sparse recovery *)

let test_s_sparse_recovers_exactly () =
  let rng = Prng.create 23 in
  let ok = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    let t = S_sparse.create rng ~s:16 ~reps:3 in
    let vec = random_sparse_vec rng ~dim:10_000 ~nnz:12 ~maxval:50 in
    match S_sparse.decode t (S_sparse.sketch t vec) with
    | S_sparse.Ok pairs when pairs = Array.to_list vec -> incr ok
    | _ -> ()
  done;
  check Alcotest.bool "recovery succeeds almost always" true (!ok >= trials - 2)

let test_s_sparse_detects_overflow () =
  let rng = Prng.create 24 in
  let lies = ref 0 in
  for _ = 1 to 30 do
    let t = S_sparse.create rng ~s:4 ~reps:3 in
    let vec = random_sparse_vec rng ~dim:10_000 ~nnz:200 ~maxval:10 in
    match S_sparse.decode t (S_sparse.sketch t vec) with
    | S_sparse.Fail -> ()
    | S_sparse.Ok pairs ->
        (* If it does claim success, the answer must actually be right. *)
        if pairs <> Array.to_list vec then incr lies
  done;
  check Alcotest.int "never lies" 0 !lies

let test_s_sparse_zero () =
  let rng = Prng.create 25 in
  let t = S_sparse.create rng ~s:4 ~reps:2 in
  match S_sparse.decode t (S_sparse.fresh t) with
  | S_sparse.Ok [] -> ()
  | _ -> Alcotest.fail "zero vector decodes to empty"

let test_s_sparse_linear_composition () =
  let rng = Prng.create 26 in
  let t = S_sparse.create rng ~s:8 ~reps:3 in
  let v1 = [| (5, 2); (100, 1) |] and v2 = [| (5, 1); (200, -3) |] in
  let st = S_sparse.sketch t v1 in
  S_sparse.add_scaled t ~dst:st ~coeff:3 (S_sparse.sketch t v2);
  (* v1 + 3*v2 = { 5 -> 5, 100 -> 1, 200 -> -9 } *)
  match S_sparse.decode t st with
  | S_sparse.Ok [ (5, 5); (100, 1); (200, -9) ] -> ()
  | S_sparse.Ok other ->
      Alcotest.failf "wrong recovery: %s"
        (String.concat ";"
           (List.map (fun (i, v) -> Printf.sprintf "(%d,%d)" i v) other))
  | S_sparse.Fail -> Alcotest.fail "recovery failed"

(* ------------------------------------------------------------------ *)
(* L0 sampler *)

let test_l0_sampler_returns_support () =
  let rng = Prng.create 27 in
  let misses = ref 0 and wrong = ref 0 in
  for _ = 1 to 50 do
    let t = L0_sampler.create rng ~dim:2000 () in
    let vec = random_sparse_vec rng ~dim:2000 ~nnz:50 ~maxval:9 in
    match L0_sampler.sample t (L0_sampler.sketch t vec) with
    | None -> incr misses
    | Some (i, v) ->
        if not (Array.exists (fun (j, w) -> j = i && w = v) vec) then incr wrong
  done;
  check Alcotest.int "sampled values always correct" 0 !wrong;
  check Alcotest.bool "few failures" true (!misses <= 3)

let test_l0_sampler_zero_vector () =
  let rng = Prng.create 28 in
  let t = L0_sampler.create rng ~dim:100 () in
  check Alcotest.bool "none on zero" true
    (L0_sampler.sample t (L0_sampler.fresh t) = None)

let test_l0_sampler_uniformity () =
  (* Fix a support of size 8 and draw with many independent samplers:
     each support element should come up roughly uniformly. *)
  let rng = Prng.create 29 in
  let supp = [| 3; 50; 120; 400; 777; 1500; 1800; 1999 |] in
  let vec = Array.map (fun i -> (i, 1)) supp in
  let counts = Array.make (Array.length supp) 0 in
  let trials = 800 in
  let got = ref 0 in
  for _ = 1 to trials do
    let t = L0_sampler.create rng ~dim:2000 () in
    match L0_sampler.sample t (L0_sampler.sketch t vec) with
    | Some (i, _) ->
        incr got;
        Array.iteri (fun k j -> if j = i then counts.(k) <- counts.(k) + 1) supp
    | None -> ()
  done;
  check Alcotest.bool "mostly succeeds" true (!got > trials * 9 / 10);
  let expected = Array.make 8 (float_of_int !got /. 8.0) in
  let chi2 = Stats.chi_square ~observed:counts ~expected in
  (* 7 dof, 99.9th percentile ~ 24.3; allow margin for near-uniformity. *)
  check Alcotest.bool "uniform over support" true (chi2 < 35.0)

let test_l0_sampler_linear_composition () =
  let rng = Prng.create 30 in
  let t = L0_sampler.create rng ~dim:500 () in
  let st = L0_sampler.sketch t [| (5, 2) |] in
  L0_sampler.add_scaled t ~dst:st ~coeff:1 (L0_sampler.sketch t [| (5, -2); (9, 4) |]);
  (* combined vector is {9 -> 4} *)
  match L0_sampler.sample t st with
  | Some (9, 4) -> ()
  | Some (i, v) -> Alcotest.failf "expected (9,4), got (%d,%d)" i v
  | None -> Alcotest.fail "sampler failed on 1-sparse vector"

let test_l0_sampler_wire () =
  let rng = Prng.create 31 in
  let t = L0_sampler.create rng ~dim:300 () in
  let st = L0_sampler.sketch t [| (17, 3); (200, -1) |] in
  let codec = L0_sampler.wire t in
  let st' = Matprod_comm.Codec.decode codec (Matprod_comm.Codec.encode codec st) in
  check Alcotest.bool "sample survives transport" true
    (L0_sampler.sample t st = L0_sampler.sample t st')

(* ------------------------------------------------------------------ *)
(* CountSketch / CountMin *)

let test_countsketch_point_queries () =
  let rng = Prng.create 32 in
  let t = Countsketch.create rng ~buckets:256 ~reps:5 in
  let vec = [| (3, 100); (70, -50); (500, 5) |] in
  let arr = Countsketch.sketch t vec in
  check Alcotest.bool "big entry" true (Float.abs (Countsketch.query t arr 3 -. 100.0) < 15.0);
  check Alcotest.bool "negative entry" true (Float.abs (Countsketch.query t arr 70 +. 50.0) < 15.0);
  check Alcotest.bool "absent entry small" true (Float.abs (Countsketch.query t arr 999) < 15.0)

let test_countsketch_heavy_candidates () =
  let rng = Prng.create 33 in
  let t = Countsketch.create rng ~buckets:512 ~reps:5 in
  let vec = Array.append [| (42, 1000) |] (Array.init 100 (fun i -> (i + 100, 3))) in
  let arr = Countsketch.sketch t vec in
  let heavy = Countsketch.heavy_candidates t arr ~dim:1000 ~threshold:500.0 in
  check Alcotest.bool "finds planted heavy" true (List.mem_assoc 42 heavy);
  check Alcotest.bool "few false positives" true (List.length heavy <= 3)

let test_countmin_overestimates () =
  let rng = Prng.create 34 in
  let t = Countmin.create rng ~buckets:128 ~reps:4 in
  let vec = Array.init 200 (fun i -> (i, 1 + (i mod 5))) in
  let arr = Countmin.sketch t vec in
  Array.iter
    (fun (i, v) ->
      let q = Countmin.query t arr i in
      check Alcotest.bool "never underestimates" true (q >= float_of_int v -. 1e-9))
    vec

(* ------------------------------------------------------------------ *)
(* Cohen *)

let test_cohen_estimates_union_sizes () =
  let rng = Prng.create 35 in
  let t = Cohen.create rng ~reps:400 ~rows:1000 in
  (* Columns of A: k=0 has rows {0..99}, k=1 has {50..149}, union = 150. *)
  let supp_of_col = function
    | 0 -> Array.init 100 (fun i -> i)
    | 1 -> Array.init 100 (fun i -> i + 50)
    | _ -> [||]
  in
  let mins = Cohen.column_mins t ~supp_of_col ~cols:3 in
  let est_union = Cohen.estimate_union t mins [| 0; 1 |] in
  check Alcotest.bool "union ~150" true
    (Stats.relative_error ~actual:150.0 ~estimate:est_union < 0.2);
  let est_single = Cohen.estimate_union t mins [| 0 |] in
  check Alcotest.bool "single ~100" true
    (Stats.relative_error ~actual:100.0 ~estimate:est_single < 0.2);
  check (Alcotest.float 0.0) "empty" 0.0 (Cohen.estimate_union t mins [||]);
  check (Alcotest.float 0.0) "empty col" 0.0 (Cohen.estimate_union t mins [| 2 |])

let test_cohen_labels_deterministic () =
  let rng = Prng.create 36 in
  let t = Cohen.create rng ~reps:3 ~rows:10 in
  check (Alcotest.float 0.0) "deterministic" (Cohen.label t ~rep:1 5)
    (Cohen.label t ~rep:1 5)

(* ------------------------------------------------------------------ *)
(* Blocked AMS *)

let test_blocked_ams_linf_bounds () =
  let rng = Prng.create 37 in
  let kappa = 4.0 in
  let successes = ref 0 in
  for _ = 1 to 20 do
    let t = Blocked_ams.create rng ~dim:1024 ~kappa in
    let vec = random_sparse_vec rng ~dim:1024 ~nnz:60 ~maxval:30 in
    let actual =
      Array.fold_left (fun acc (_, v) -> max acc (abs v)) 0 vec |> float_of_int
    in
    let est = Blocked_ams.estimate_linf t (Blocked_ams.sketch t vec) in
    (* est should be within [actual/2, 2*kappa*actual] roughly *)
    if est >= actual /. 2.0 && est <= 2.0 *. kappa *. actual then incr successes
  done;
  check Alcotest.bool "kappa-approx mostly holds" true (!successes >= 18)

let test_blocked_ams_zero () =
  let rng = Prng.create 38 in
  let t = Blocked_ams.create rng ~dim:100 ~kappa:3.0 in
  check (Alcotest.float 0.0) "zero" 0.0 (Blocked_ams.estimate_linf t (Blocked_ams.empty t))

let test_blocked_ams_size_shrinks_with_kappa () =
  let rng = Prng.create 39 in
  let t2 = Blocked_ams.create rng ~dim:4096 ~kappa:2.0 in
  let t8 = Blocked_ams.create rng ~dim:4096 ~kappa:8.0 in
  check Alcotest.bool "larger kappa -> smaller sketch" true
    (Blocked_ams.size t8 < Blocked_ams.size t2);
  check Alcotest.int "blocks kappa=8" 64 (Blocked_ams.blocks t8)

(* ------------------------------------------------------------------ *)
(* Compressed matrix multiplication (Pagh [32]) *)

module Cm = Matprod_sketch.Compressed_matmul
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product

let test_cm_buckets_power_of_two () =
  let rng = Prng.create 40 in
  let t = Cm.create rng ~buckets:100 ~reps:2 in
  check Alcotest.int "rounded up" 128 (Cm.buckets t);
  check Alcotest.int "reps" 2 (Cm.reps t)

let cm_sketch_of rng ~buckets ~reps a b =
  let t = Cm.create rng ~buckets ~reps in
  let at = Imat.transpose a in
  let inner = Imat.cols a in
  let sketches =
    Array.init reps (fun rep ->
        let left = Array.init inner (fun k -> Cm.half_sketch_left t ~rep (Imat.row at k)) in
        let right = Array.init inner (fun k -> Cm.half_sketch_right t ~rep (Imat.row b k)) in
        Cm.combine t ~rep ~left ~right)
  in
  (t, sketches)

let test_cm_exact_when_buckets_large () =
  (* With b >= n^2-ish and a single repetition the sketch is essentially a
     perfect hash: point queries recover C exactly (up to fp rounding). *)
  let rng = Prng.create 41 in
  let d = [| [| 1; 2; 0 |]; [| 0; 1; 1 |]; [| 3; 0; 1 |] |] in
  let a = Imat.of_dense d and b = Imat.of_dense d in
  let c = Product.int_product a b in
  let t, sketches = cm_sketch_of rng ~buckets:4096 ~reps:5 a b in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let q = Cm.query t ~sketches i j in
      check Alcotest.bool
        (Printf.sprintf "entry (%d,%d)" i j)
        true
        (Float.abs (q -. float_of_int (Product.get c i j)) < 1e-6)
    done
  done

let test_cm_heavy_entry_visible () =
  let rng = Prng.create 42 in
  let a, b, planted =
    Matprod_workload.Workload.planted_heavy_int rng ~n:64 ~density:0.05
      ~max_value:3 ~heavy:[ (1, 20, 10) ]
  in
  let c = Product.int_product a b in
  let t, sketches = cm_sketch_of rng ~buckets:512 ~reps:5 a b in
  let i, j = List.hd planted in
  let actual = float_of_int (Product.get c i j) in
  let q = Cm.query t ~sketches i j in
  check Alcotest.bool "planted entry estimated within 30%" true
    (Float.abs (q -. actual) < 0.3 *. actual)

let test_cm_linearity_of_halves () =
  (* The half-sketch is linear in the vector. *)
  let rng = Prng.create 43 in
  let t = Cm.create rng ~buckets:64 ~reps:1 in
  let v1 = [| (3, 2); (10, 1) |] and v2 = [| (3, 1); (20, 4) |] in
  let sum = [| (3, 3); (10, 1); (20, 4) |] in
  let h1 = Cm.half_sketch_left t ~rep:0 v1 in
  let h2 = Cm.half_sketch_left t ~rep:0 v2 in
  let hsum = Cm.half_sketch_left t ~rep:0 sum in
  Array.iteri
    (fun idx x ->
      check Alcotest.bool "linear" true
        (Float.abs (x -. (h1.(idx) +. h2.(idx))) < 1e-9))
    hsum

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  let sparse_vec_gen =
    Gen.(
      list_size (0 -- 20) (pair (int_bound 499) (int_range (-50) 50))
      |> map (fun l ->
             let module IM = Map.Make (Int) in
             let m =
               List.fold_left
                 (fun m (k, v) -> IM.update k (fun o -> Some (Option.value ~default:0 o + v)) m)
                 IM.empty l
             in
             IM.bindings m |> List.filter (fun (_, v) -> v <> 0) |> Array.of_list))
  in
  [
    Test.make ~name:"one-sparse: decode of singleton is exact" ~count:300
      (pair (int_bound 100_000) (int_range (-1000) 1000))
      (fun (i, v) ->
        QCheck.assume (v <> 0);
        let rng = Prng.create (i + v) in
        let spec = One_sparse.spec rng in
        let c = One_sparse.fresh () in
        One_sparse.update spec c i v;
        One_sparse.decode spec c = One_sparse.One (i, v));
    Test.make ~name:"s-sparse: decode inverts sketch (within budget)" ~count:100
      (make sparse_vec_gen) (fun vec ->
        let rng = Prng.create (Array.length vec + 17) in
        let t = S_sparse.create rng ~s:24 ~reps:4 in
        match S_sparse.decode t (S_sparse.sketch t vec) with
        | S_sparse.Ok pairs -> pairs = Array.to_list vec
        | S_sparse.Fail -> Array.length vec > 24);
    Test.make ~name:"ams: sketch of empty is zeros" ~count:20 (int_bound 1000)
      (fun seed ->
        let rng = Prng.create seed in
        let t = Ams.create rng ~eps:0.5 ~groups:3 in
        Array.for_all (fun x -> x = 0.0) (Ams.sketch t [||]));
    Test.make ~name:"l0 sketch: add_scaled with coeff 0 is identity" ~count:50
      (make sparse_vec_gen) (fun vec ->
        let rng = Prng.create 123 in
        let t = L0_sketch.create rng ~eps:0.5 ~groups:2 ~dim:500 in
        let st = L0_sketch.sketch t vec in
        let before = Array.copy st in
        L0_sketch.add_scaled t ~dst:st ~coeff:0 (L0_sketch.sketch t [| (1, 1) |]);
        st = before);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "sketch"
    [
      ( "ams",
        [
          Alcotest.test_case "singleton exact" `Quick test_ams_exact_on_singleton;
          Alcotest.test_case "accuracy" `Slow test_ams_accuracy;
          Alcotest.test_case "linearity" `Quick test_ams_linearity;
          Alcotest.test_case "zero" `Quick test_ams_zero;
          Alcotest.test_case "entries pm1" `Quick test_ams_entries_pm1;
        ] );
      ( "stable",
        [
          Alcotest.test_case "accuracy per p" `Slow test_stable_accuracy_per_p;
          Alcotest.test_case "linearity" `Quick test_stable_linearity;
          Alcotest.test_case "entry deterministic" `Quick test_stable_entry_deterministic;
          Alcotest.test_case "estimate_pow" `Quick test_stable_estimate_pow;
        ] );
      ( "l0-sketch",
        [
          Alcotest.test_case "zero & singleton" `Quick test_l0_exact_zero_and_small;
          Alcotest.test_case "accuracy" `Slow test_l0_accuracy;
          Alcotest.test_case "value independence" `Quick test_l0_ignores_values;
          Alcotest.test_case "linearity" `Quick test_l0_linearity;
        ] );
      ( "lp",
        [
          Alcotest.test_case "dispatch types" `Quick test_lp_dispatch_types;
          Alcotest.test_case "estimates each p" `Slow test_lp_estimates_each_p;
          Alcotest.test_case "wire roundtrip" `Quick test_lp_wire_roundtrip;
          Alcotest.test_case "rejects bad p" `Quick test_lp_rejects_bad_p;
        ] );
      ( "one-sparse",
        [
          Alcotest.test_case "zero" `Quick test_one_sparse_zero;
          Alcotest.test_case "singleton" `Quick test_one_sparse_singleton;
          Alcotest.test_case "cancellation" `Quick test_one_sparse_cancellation_back_to_zero;
          Alcotest.test_case "many" `Quick test_one_sparse_many;
          Alcotest.test_case "symmetric patterns" `Quick test_one_sparse_symmetric_patterns;
          Alcotest.test_case "add_scaled" `Quick test_one_sparse_add_scaled;
        ] );
      ( "s-sparse",
        [
          Alcotest.test_case "recovers exactly" `Quick test_s_sparse_recovers_exactly;
          Alcotest.test_case "detects overflow" `Quick test_s_sparse_detects_overflow;
          Alcotest.test_case "zero" `Quick test_s_sparse_zero;
          Alcotest.test_case "linear composition" `Quick test_s_sparse_linear_composition;
        ] );
      ( "l0-sampler",
        [
          Alcotest.test_case "returns support" `Slow test_l0_sampler_returns_support;
          Alcotest.test_case "zero vector" `Quick test_l0_sampler_zero_vector;
          Alcotest.test_case "uniformity" `Slow test_l0_sampler_uniformity;
          Alcotest.test_case "linear composition" `Quick test_l0_sampler_linear_composition;
          Alcotest.test_case "wire" `Quick test_l0_sampler_wire;
        ] );
      ( "countsketch",
        [
          Alcotest.test_case "point queries" `Quick test_countsketch_point_queries;
          Alcotest.test_case "heavy candidates" `Quick test_countsketch_heavy_candidates;
          Alcotest.test_case "countmin overestimates" `Quick test_countmin_overestimates;
        ] );
      ( "cohen",
        [
          Alcotest.test_case "union sizes" `Slow test_cohen_estimates_union_sizes;
          Alcotest.test_case "deterministic labels" `Quick test_cohen_labels_deterministic;
        ] );
      ( "compressed-matmul",
        [
          Alcotest.test_case "buckets power of two" `Quick test_cm_buckets_power_of_two;
          Alcotest.test_case "exact with large b" `Quick test_cm_exact_when_buckets_large;
          Alcotest.test_case "heavy entry visible" `Quick test_cm_heavy_entry_visible;
          Alcotest.test_case "halves linear" `Quick test_cm_linearity_of_halves;
        ] );
      ( "blocked-ams",
        [
          Alcotest.test_case "linf bounds" `Slow test_blocked_ams_linf_bounds;
          Alcotest.test_case "zero" `Quick test_blocked_ams_zero;
          Alcotest.test_case "size vs kappa" `Quick test_blocked_ams_size_shrinks_with_kappa;
        ] );
      ("properties", qsuite);
    ]
