(* Tests of the synthetic workload generators. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Workload = Matprod_workload.Workload

let check = Alcotest.check

let test_uniform_bool_density () =
  let rng = Prng.create 1 in
  let m = Workload.uniform_bool rng ~rows:200 ~cols:200 ~density:0.1 in
  let frac = float_of_int (Bmat.nnz m) /. 40_000.0 in
  check Alcotest.bool "density ~ 0.1" true (Float.abs (frac -. 0.1) < 0.01);
  check Alcotest.int "rows" 200 (Bmat.rows m)

let test_uniform_bool_extremes () =
  let rng = Prng.create 2 in
  let empty = Workload.uniform_bool rng ~rows:10 ~cols:10 ~density:0.0 in
  check Alcotest.int "density 0" 0 (Bmat.nnz empty);
  let full = Workload.uniform_bool rng ~rows:10 ~cols:10 ~density:1.0 in
  check Alcotest.int "density 1" 100 (Bmat.nnz full)

let test_zipf_bool_skew () =
  let rng = Prng.create 3 in
  let m = Workload.zipf_bool rng ~rows:400 ~cols:200 ~row_degree:10 ~skew:1.2 in
  let w = Bmat.col_weights m in
  (* Column 0 must be far more popular than the median column. *)
  let sorted = Array.copy w in
  Array.sort compare sorted;
  check Alcotest.bool "head much heavier than median" true
    (w.(0) > 5 * max 1 sorted.(100));
  (* Every row has at most row_degree items (duplicates collapse). *)
  for i = 0 to 399 do
    check Alcotest.bool "degree bound" true (Bmat.row_weight m i <= 10)
  done

let test_uniform_int_values () =
  let rng = Prng.create 4 in
  let m = Workload.uniform_int rng ~rows:50 ~cols:50 ~density:0.2 ~max_value:7 in
  check Alcotest.bool "nonneg" true (Imat.nonneg m);
  check Alcotest.bool "max value respected" true (Imat.max_abs m <= 7);
  check Alcotest.bool "values at least 1" true
    (Array.for_all
       (fun i -> Array.for_all (fun (_, v) -> v >= 1) (Imat.row m i))
       (Array.init 50 (fun i -> i)))

let test_planted_pair_is_max () =
  let rng = Prng.create 5 in
  let a, b, (i, j) = Workload.planted_pair rng ~n:120 ~density:0.04 ~overlap:50 in
  let c = Product.bool_product a b in
  let planted = Product.get c i j in
  check Alcotest.bool "planted at least overlap" true (planted >= 50);
  check Alcotest.int "planted is the max" (Product.linf c) planted

let test_planted_heavy_hitters_heavy () =
  let rng = Prng.create 6 in
  let a, b =
    Workload.planted_heavy_hitters rng ~n:120 ~density:0.02 ~heavy:[ (3, 40) ]
  in
  let c = Product.bool_product a b in
  (* At least 3 entries with value >= 40 (the planted ones). *)
  let big = List.length (List.filter (fun (_, _, v) -> v >= 40)
                           (Array.to_list (Product.entries c))) in
  check Alcotest.bool "planted heavy entries present" true (big >= 3)

let test_job_matching_star () =
  let rng = Prng.create 7 in
  let jm =
    Workload.job_matching rng ~applicants:150 ~jobs:100 ~skills:300
      ~avg_skills:8 ~avg_requirements:6
  in
  check Alcotest.int "dims applicants" 150 (Bmat.rows jm.Workload.applicants);
  check Alcotest.int "dims jobs" 100 (Bmat.cols jm.Workload.jobs);
  check Alcotest.int "inner dims match" (Bmat.cols jm.Workload.applicants)
    (Bmat.rows jm.Workload.jobs);
  let c = Product.bool_product jm.Workload.applicants jm.Workload.jobs in
  let star = Product.get c jm.Workload.star_applicant jm.Workload.star_job in
  check Alcotest.bool "star pair is heavy" true
    (star >= Product.linf c / 2 && star > 5)

let test_generators_deterministic () =
  let gen seed =
    let rng = Prng.create seed in
    Workload.uniform_bool rng ~rows:30 ~cols:30 ~density:0.2
  in
  check Alcotest.bool "same seed same matrix" true (Bmat.equal (gen 8) (gen 8));
  check Alcotest.bool "different seed differs" true
    (not (Bmat.equal (gen 8) (gen 9)))

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "uniform density" `Quick test_uniform_bool_density;
          Alcotest.test_case "uniform extremes" `Quick test_uniform_bool_extremes;
          Alcotest.test_case "zipf skew" `Quick test_zipf_bool_skew;
          Alcotest.test_case "uniform int" `Quick test_uniform_int_values;
          Alcotest.test_case "planted pair" `Quick test_planted_pair_is_max;
          Alcotest.test_case "planted heavy hitters" `Quick test_planted_heavy_hitters_heavy;
          Alcotest.test_case "job matching" `Quick test_job_matching_star;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
        ] );
    ]
