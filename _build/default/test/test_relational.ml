(* Tests of the relational facade: the definition-level join computations
   (tuple sets) serve as an independent ground-truth path, cross-checked
   against both the matrix products and the protocols. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Product = Matprod_matrix.Product
module Relation = Matprod_relational.Relation
module Join_estimator = Matprod_relational.Join_estimator

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Relation *)

let test_relation_tuples_roundtrip () =
  let r = Relation.of_tuples ~x_dom:4 ~y_dom:5 [ (0, 1); (3, 4); (0, 1) ] in
  check Alcotest.int "dedup" 2 (Relation.cardinality r);
  check Alcotest.bool "mem" true (Relation.mem r 0 1);
  check Alcotest.bool "not mem" false (Relation.mem r 1 1);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted tuples" [ (0, 1); (3, 4) ] (Relation.tuples r)

let test_relation_rejects_out_of_domain () =
  Alcotest.check_raises "domain"
    (Invalid_argument "Relation.of_tuples: attribute out of domain") (fun () ->
      ignore (Relation.of_tuples ~x_dom:2 ~y_dom:2 [ (2, 0) ]))

let test_relation_matrix_roundtrip () =
  let rng = Prng.create 1 in
  let r = Relation.random rng ~x_dom:20 ~y_dom:30 ~tuples:80 in
  let m = Relation.to_matrix r in
  check Alcotest.int "nnz = cardinality" (Relation.cardinality r) (Bmat.nnz m);
  let r' = Relation.of_matrix m in
  check Alcotest.bool "roundtrip" true (Relation.tuples r = Relation.tuples r')

let test_relation_compose_matches_matrix () =
  let rng = Prng.create 2 in
  let r = Relation.random rng ~x_dom:25 ~y_dom:20 ~tuples:60 in
  let s = Relation.random rng ~x_dom:20 ~y_dom:25 ~tuples:60 in
  let composed = Relation.compose r s in
  let c = Product.bool_product (Relation.to_matrix r) (Relation.to_matrix s) in
  check Alcotest.int "composition = support of AB" (Product.nnz c)
    (Relation.cardinality composed);
  List.iter
    (fun (x, z) ->
      check Alcotest.bool "entry nonzero" true (Product.get c x z > 0))
    (Relation.tuples composed)

let test_relation_join_size_matches_matrix () =
  let rng = Prng.create 3 in
  let r = Relation.random rng ~x_dom:25 ~y_dom:20 ~tuples:70 in
  let s = Relation.random rng ~x_dom:20 ~y_dom:25 ~tuples:70 in
  let c = Product.bool_product (Relation.to_matrix r) (Relation.to_matrix s) in
  check Alcotest.int "natural join = l1 of AB" (Product.l1 c)
    (Relation.natural_join_size r s)

let test_relation_compose_rejects_mismatch () =
  let r = Relation.of_tuples ~x_dom:2 ~y_dom:3 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Relation.compose: domain mismatch") (fun () ->
      ignore (Relation.compose r r))

(* ------------------------------------------------------------------ *)
(* Join_estimator *)

let mk_pair seed =
  let rng = Prng.create seed in
  let r = Relation.random rng ~x_dom:80 ~y_dom:60 ~tuples:400 in
  let s = Relation.random rng ~x_dom:60 ~y_dom:80 ~tuples:400 in
  (r, s)

let test_estimator_composition_size () =
  let r, s = mk_pair 4 in
  let actual = float_of_int (Relation.cardinality (Relation.compose r s)) in
  let ans = Join_estimator.composition_size ~seed:1 ~r ~s () in
  check Alcotest.bool "within eps-ish" true
    (Stats.relative_error ~actual ~estimate:ans.Join_estimator.value < 0.4);
  check Alcotest.int "2 rounds" 2 ans.Join_estimator.rounds

let test_estimator_natural_join_exact () =
  let r, s = mk_pair 5 in
  let ans = Join_estimator.natural_join_size ~seed:1 ~r ~s in
  check Alcotest.int "exact" (Relation.natural_join_size r s)
    ans.Join_estimator.value;
  check Alcotest.int "1 round" 1 ans.Join_estimator.rounds

let test_estimator_join_tuple_valid () =
  let r, s = mk_pair 6 in
  for seed = 1 to 10 do
    let ans = Join_estimator.sample_join_tuple ~seed ~r ~s in
    match ans.Join_estimator.value with
    | Some (x, y, z) ->
        check Alcotest.bool "tuple in join" true
          (Relation.mem r x y && Relation.mem s y z)
    | None -> Alcotest.fail "expected a sample on a nonempty join"
  done

let test_estimator_output_pair_valid () =
  let r, s = mk_pair 7 in
  let composed = Relation.compose r s in
  let got = ref 0 in
  for seed = 1 to 10 do
    let ans = Join_estimator.sample_output_pair ~seed ~r ~s () in
    match ans.Join_estimator.value with
    | Some (x, z) ->
        incr got;
        check Alcotest.bool "pair in composition" true (Relation.mem composed x z)
    | None -> ()
  done;
  check Alcotest.bool "mostly succeeds" true (!got >= 8)

let test_estimator_max_witness () =
  let r, s = mk_pair 8 in
  let actual =
    float_of_int
      (Product.linf (Product.bool_product (Relation.to_matrix r) (Relation.to_matrix s)))
  in
  let ans = Join_estimator.max_witness_count ~seed:1 ~r ~s () in
  check Alcotest.bool "within (2+eps) band" true
    (ans.Join_estimator.value >= actual /. 2.6
    && ans.Join_estimator.value <= actual *. 1.6)

let test_estimator_rejects_domain_mismatch () =
  let r = Relation.of_tuples ~x_dom:5 ~y_dom:6 [] in
  let s = Relation.of_tuples ~x_dom:7 ~y_dom:5 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Join_estimator: shared attribute domains differ")
    (fun () -> ignore (Join_estimator.natural_join_size ~seed:1 ~r ~s))

(* ------------------------------------------------------------------ *)
(* qcheck *)

let qcheck_tests =
  let open QCheck in
  let rel_pair_gen =
    Gen.(
      let* seed = int_bound 1_000_000 in
      let* xd = 2 -- 20 in
      let* yd = 2 -- 20 in
      let* zd = 2 -- 20 in
      let rng = Prng.create seed in
      let cap a b = max 1 (a * b / 3) in
      return
        ( Relation.random rng ~x_dom:xd ~y_dom:yd ~tuples:(cap xd yd),
          Relation.random rng ~x_dom:yd ~y_dom:zd ~tuples:(cap yd zd) ))
  in
  [
    Test.make ~name:"natural join size: protocol = tuple-level definition"
      ~count:50 (make rel_pair_gen) (fun (r, s) ->
        (Join_estimator.natural_join_size ~seed:1 ~r ~s).Join_estimator.value
        = Relation.natural_join_size r s);
    Test.make ~name:"composition via matrices = tuple-level definition"
      ~count:50 (make rel_pair_gen) (fun (r, s) ->
        let c =
          Product.bool_product (Relation.to_matrix r) (Relation.to_matrix s)
        in
        Product.nnz c = Relation.cardinality (Relation.compose r s));
  ]

let () =
  Alcotest.run "relational"
    [
      ( "relation",
        [
          Alcotest.test_case "tuples roundtrip" `Quick test_relation_tuples_roundtrip;
          Alcotest.test_case "rejects out of domain" `Quick test_relation_rejects_out_of_domain;
          Alcotest.test_case "matrix roundtrip" `Quick test_relation_matrix_roundtrip;
          Alcotest.test_case "compose matches matrix" `Quick test_relation_compose_matches_matrix;
          Alcotest.test_case "join size matches matrix" `Quick test_relation_join_size_matches_matrix;
          Alcotest.test_case "compose rejects mismatch" `Quick test_relation_compose_rejects_mismatch;
        ] );
      ( "join-estimator",
        [
          Alcotest.test_case "composition size" `Slow test_estimator_composition_size;
          Alcotest.test_case "natural join exact" `Quick test_estimator_natural_join_exact;
          Alcotest.test_case "join tuples valid" `Slow test_estimator_join_tuple_valid;
          Alcotest.test_case "output pairs valid" `Slow test_estimator_output_pair_valid;
          Alcotest.test_case "max witness" `Slow test_estimator_max_witness;
          Alcotest.test_case "rejects mismatch" `Quick test_estimator_rejects_domain_mismatch;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
