(* Adversarial robustness: run the protocols on pathological input shapes
   — concentrated mass, permutations, dense blocks, near-complete
   matrices, symmetric products — and check the guarantees still hold.
   These shapes stress the estimators in ways uniform workloads do not
   (extreme skew across rows/groups, saturated sketches, empty levels). *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Lp_protocol = Matprod_core.Lp_protocol
module L1_exact = Matprod_core.L1_exact
module L1_sampling = Matprod_core.L1_sampling
module Linf_binary = Matprod_core.Linf_binary
module Matprod_protocol = Matprod_core.Matprod_protocol
module Common = Matprod_core.Common

let check = Alcotest.check
let n = 64

(* The adversarial gallery. *)
let gallery =
  let rng = Prng.create 99 in
  let full_row =
    Bmat.create ~rows:n ~cols:n
      (Array.init n (fun i -> if i = 7 then Array.init n (fun k -> k) else [||]))
  in
  let full_col =
    Bmat.create ~rows:n ~cols:n (Array.init n (fun _ -> [| 13 |]))
  in
  let permutation =
    Bmat.create ~rows:n ~cols:n (Array.init n (fun i -> [| (i * 17 + 3) mod n |]))
  in
  let two_blocks =
    Bmat.create ~rows:n ~cols:n
      (Array.init n (fun i ->
           if i < n / 2 then Array.init (n / 2) (fun k -> k)
           else Array.init (n / 2) (fun k -> (n / 2) + k)))
  in
  let near_complete =
    Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.95
  in
  let sparse = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05 in
  [
    ("mass in one row", full_row, sparse);
    ("mass in one column", full_col, sparse);
    ("permutation * permutation", permutation, permutation);
    ("two dense blocks", two_blocks, two_blocks);
    ("near-complete * sparse", near_complete, sparse);
    ("symmetric A * A^T", sparse, Bmat.transpose sparse);
  ]

let test_l1_exact_on_gallery () =
  List.iter
    (fun (name, a, b) ->
      let actual = Product.l1 (Product.bool_product a b) in
      let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a ~b) in
      check Alcotest.int (name ^ ": l1 exact") actual r.Ctx.output)
    gallery

let test_matprod_shares_on_gallery () =
  List.iter
    (fun (name, a, b) ->
      let c = Product.bool_product a b in
      let r =
        Ctx.run ~seed:2 (fun ctx ->
            Matprod_protocol.run ctx ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
      in
      let m = Common.Entry_map.create () in
      Common.Entry_map.merge_into ~dst:m r.Ctx.output.Matprod_protocol.alice;
      Common.Entry_map.merge_into ~dst:m r.Ctx.output.Matprod_protocol.bob;
      check Alcotest.int (name ^ ": share support") (Product.nnz c)
        (Common.Entry_map.nnz m);
      Product.iter c (fun i j v ->
          check Alcotest.int (name ^ ": share entry") v (Common.Entry_map.get m i j)))
    gallery

let test_lp0_on_gallery () =
  List.iter
    (fun (name, a, b) ->
      let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
      (* Median of 3 seeds to keep flakiness out of the gallery. *)
      let ests =
        Array.init 3 (fun s ->
            (Ctx.run ~seed:(s + 1) (fun ctx ->
                 Lp_protocol.run ctx
                   (Lp_protocol.default_params ~eps:0.25 ())
                   ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)))
              .Ctx.output)
      in
      let est = Stats.median ests in
      let ok =
        if actual = 0.0 then est < 1.0
        else Stats.relative_error ~actual ~estimate:est < 0.35
      in
      check Alcotest.bool (Printf.sprintf "%s: l0 est %.0f vs %.0f" name est actual)
        true ok)
    gallery

let test_linf_on_gallery () =
  List.iter
    (fun (name, a, b) ->
      let actual = float_of_int (Product.linf (Product.bool_product a b)) in
      let est =
        (Ctx.run ~seed:3 (fun ctx ->
             Linf_binary.run ctx (Linf_binary.default_params ~eps:0.25) ~a ~b))
          .Ctx.output
          .Linf_binary.estimate
      in
      let ok =
        if actual = 0.0 then est = 0.0
        else est >= actual /. 2.6 && est <= actual *. 1.6
      in
      check Alcotest.bool
        (Printf.sprintf "%s: linf est %.0f vs %.0f" name est actual)
        true ok)
    gallery

let test_l1_sampling_on_gallery () =
  List.iter
    (fun (name, a, b) ->
      let c = Product.bool_product a b in
      let r =
        Ctx.run ~seed:4 (fun ctx ->
            L1_sampling.run ctx ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
      in
      match r.Ctx.output with
      | Some s ->
          check Alcotest.bool (name ^ ": sample in support") true
            (Product.get c s.L1_sampling.row s.L1_sampling.col > 0)
      | None ->
          check Alcotest.int (name ^ ": empty product") 0 (Product.l1 c))
    gallery

let test_concentrated_row_dominates_sampling () =
  (* With all of C's mass in row 7, Algorithm 1's row sampling must pick
     row 7 (any correct importance sampler does) — the estimate should be
     essentially exact. *)
  let a =
    Bmat.create ~rows:n ~cols:n
      (Array.init n (fun i -> if i = 7 then Array.init n (fun k -> k) else [||]))
  in
  let rng = Prng.create 98 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.3 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:1.0 in
  let r =
    Ctx.run ~seed:5 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~p:1.0 ~eps:0.3 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "concentrated mass estimated well" true
    (Stats.relative_error ~actual ~estimate:r.Ctx.output < 0.2)

let () =
  Alcotest.run "adversarial"
    [
      ( "gallery",
        [
          Alcotest.test_case "l1 exact everywhere" `Quick test_l1_exact_on_gallery;
          Alcotest.test_case "product shares everywhere" `Quick test_matprod_shares_on_gallery;
          Alcotest.test_case "l0 estimates everywhere" `Slow test_lp0_on_gallery;
          Alcotest.test_case "linf everywhere" `Slow test_linf_on_gallery;
          Alcotest.test_case "l1 sampling everywhere" `Quick test_l1_sampling_on_gallery;
          Alcotest.test_case "concentrated row" `Quick test_concentrated_row_dominates_sampling;
        ] );
    ]
