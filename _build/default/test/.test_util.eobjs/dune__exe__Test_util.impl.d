test/test_util.ml: Alcotest Array Float Gen List Matprod_util Printf QCheck QCheck_alcotest Test
