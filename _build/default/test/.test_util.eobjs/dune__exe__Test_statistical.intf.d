test/test_statistical.mli:
