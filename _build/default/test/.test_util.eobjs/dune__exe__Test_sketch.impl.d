test/test_sketch.ml: Alcotest Array Float Gen Int List Map Matprod_comm Matprod_matrix Matprod_sketch Matprod_util Matprod_workload Option Printf QCheck QCheck_alcotest String Test
