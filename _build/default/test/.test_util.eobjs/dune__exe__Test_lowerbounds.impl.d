test/test_lowerbounds.ml: Alcotest List Matprod_lowerbounds Matprod_matrix Matprod_util Printf
