test/test_comm.ml: Alcotest Array Float Gen Int List Map Matprod_comm Matprod_util QCheck QCheck_alcotest String Test
