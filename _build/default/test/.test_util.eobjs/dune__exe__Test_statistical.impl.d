test/test_statistical.ml: Alcotest Array Float List Matprod_comm Matprod_core Matprod_matrix Matprod_sketch Matprod_util Matprod_workload Printf
