test/test_matrix.ml: Alcotest Array Filename List Matprod_matrix Matprod_util QCheck QCheck_alcotest Sys Test
