test/test_adversarial.mli:
