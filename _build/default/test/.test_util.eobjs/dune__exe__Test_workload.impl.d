test/test_workload.ml: Alcotest Array Float List Matprod_matrix Matprod_util Matprod_workload
