test/test_relational.ml: Alcotest Gen List Matprod_matrix Matprod_relational Matprod_util QCheck QCheck_alcotest Test
