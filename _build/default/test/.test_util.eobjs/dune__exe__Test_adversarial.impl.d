test/test_adversarial.ml: Alcotest Array List Matprod_comm Matprod_core Matprod_matrix Matprod_util Matprod_workload Printf
