test/test_lowerbounds.mli:
