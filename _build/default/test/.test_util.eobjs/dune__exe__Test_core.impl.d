test/test_core.ml: Alcotest Array Float Hashtbl List Matprod_comm Matprod_core Matprod_matrix Matprod_util Matprod_workload Option Printf QCheck QCheck_alcotest String Test
