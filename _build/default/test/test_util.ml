(* Tests for the util substrate: PRNG, field arithmetic, hashing, stable
   sampling, statistics. *)

module Prng = Matprod_util.Prng
module Field31 = Matprod_util.Field31
module Hashing = Matprod_util.Hashing
module Stable = Matprod_util.Stable
module Stats = Matprod_util.Stats

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 8 (fun _ -> Prng.bits a) in
  let ys = List.init 8 (fun _ -> Prng.bits b) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  let xs = List.init 8 (fun _ -> Prng.bits a) in
  let ys = List.init 8 (fun _ -> Prng.bits child) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_prng_float_range () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let f = Prng.float t in
    check Alcotest.bool "in [0,1)" true (f >= 0.0 && f < 1.0);
    let g = Prng.float_pos t in
    check Alcotest.bool "in (0,1]" true (g > 0.0 && g <= 1.0)
  done

let test_prng_int_bounds () =
  let t = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_uniform () =
  let t = Prng.create 5 in
  let counts = Array.make 10 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let v = Prng.int t 10 in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = Array.make 10 (float_of_int trials /. 10.0) in
  let chi2 = Stats.chi_square ~observed:counts ~expected in
  (* 9 dof; 99.9th percentile ~ 27.9 *)
  check Alcotest.bool "chi-square plausible" true (chi2 < 30.0)

let test_prng_gaussian_moments () =
  let t = Prng.create 6 in
  let xs = Array.init 50_000 (fun _ -> Prng.gaussian t) in
  let m = Stats.mean xs and v = Stats.variance xs in
  check Alcotest.bool "mean near 0" true (Float.abs m < 0.02);
  check Alcotest.bool "variance near 1" true (Float.abs (v -. 1.0) < 0.05)

let test_prng_exponential_moments () =
  let t = Prng.create 7 in
  let xs = Array.init 50_000 (fun _ -> Prng.exponential t) in
  check Alcotest.bool "mean near 1" true (Float.abs (Stats.mean xs -. 1.0) < 0.03);
  Array.iter (fun x -> check Alcotest.bool "positive" true (x > 0.0)) xs

let test_prng_binomial_exact_edges () =
  let t = Prng.create 8 in
  check Alcotest.int "p=0" 0 (Prng.binomial t 100 0.0);
  check Alcotest.int "p=1" 100 (Prng.binomial t 100 1.0);
  check Alcotest.int "n=0" 0 (Prng.binomial t 0 0.5)

let test_prng_binomial_moments () =
  let t = Prng.create 9 in
  List.iter
    (fun (n, p) ->
      let xs = Array.init 20_000 (fun _ -> float_of_int (Prng.binomial t n p)) in
      let want_mean = float_of_int n *. p in
      let want_var = float_of_int n *. p *. (1.0 -. p) in
      let m = Stats.mean xs and v = Stats.variance xs in
      check Alcotest.bool
        (Printf.sprintf "mean n=%d p=%.2f" n p)
        true
        (Float.abs (m -. want_mean) < 0.05 *. Float.max 1.0 want_mean);
      check Alcotest.bool
        (Printf.sprintf "var n=%d p=%.2f" n p)
        true
        (Float.abs (v -. want_var) < 0.1 *. Float.max 1.0 want_var))
    [ (10, 0.3); (100, 0.05); (500, 0.5); (1000, 0.01) ]

let test_geometric_level_distribution () =
  let t = Prng.create 10 in
  let r = 0.5 in
  let trials = 100_000 in
  let counts = Array.make 20 0 in
  for _ = 1 to trials do
    let l = min 19 (Prng.geometric_level t r) in
    counts.(l) <- counts.(l) + 1
  done;
  (* P(level >= l) = r^l, so P(level = l) = r^l (1-r) = 2^-(l+1). *)
  let p0 = float_of_int counts.(0) /. float_of_int trials in
  let p1 = float_of_int counts.(1) /. float_of_int trials in
  check Alcotest.bool "level0 ~ 1/2" true (Float.abs (p0 -. 0.5) < 0.01);
  check Alcotest.bool "level1 ~ 1/4" true (Float.abs (p1 -. 0.25) < 0.01)

let test_derive_deterministic () =
  let a = Prng.derive 11 3 5 and b = Prng.derive 11 3 5 in
  for _ = 1 to 20 do
    check Alcotest.int "same derived stream" (Prng.bits a) (Prng.bits b)
  done;
  let c = Prng.derive 11 3 6 in
  check Alcotest.bool "different cell differs" true (Prng.bits c <> Prng.bits (Prng.derive 11 3 5))

let test_shuffle_permutation () =
  let t = Prng.create 12 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.bool "is a permutation" true (sorted = Array.init 100 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Field31 *)

let test_field_basics () =
  check Alcotest.int "p" 2147483647 Field31.p;
  check Alcotest.int "add wrap" 0 (Field31.add (Field31.p - 1) 1);
  check Alcotest.int "sub wrap" (Field31.p - 1) (Field31.sub 0 1);
  check Alcotest.int "of_int negative" (Field31.p - 5) (Field31.of_int (-5));
  check Alcotest.int "mul small" 35 (Field31.mul 5 7)

let test_field_mul_matches_slow () =
  let t = Prng.create 13 in
  for _ = 1 to 1000 do
    let a = Prng.int t Field31.p and b = Prng.int t Field31.p in
    (* Reference via arbitrary-precision-ish: split b = bh*2^16 + bl. *)
    let bh = b lsr 16 and bl = b land 0xffff in
    let slow =
      let partial = a * bh mod Field31.p in
      let shifted = partial * 65536 mod Field31.p in
      (shifted + (a * bl mod Field31.p)) mod Field31.p
    in
    check Alcotest.int "mul agrees with split reference" slow (Field31.mul a b)
  done

let test_field_inverse () =
  let t = Prng.create 14 in
  for _ = 1 to 200 do
    let a = 1 + Prng.int t (Field31.p - 1) in
    check Alcotest.int "a * a^-1 = 1" 1 (Field31.mul a (Field31.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Field31.inv 0))

let test_field_pow () =
  check Alcotest.int "b^0" 1 (Field31.pow 12345 0);
  check Alcotest.int "b^1" 12345 (Field31.pow 12345 1);
  check Alcotest.int "2^31 mod p = 1" 1 (Field31.pow 2 31);
  (* Fermat: a^(p-1) = 1 *)
  check Alcotest.int "fermat" 1 (Field31.pow 98765 (Field31.p - 1))

let test_poly_eval () =
  (* 3 + 2x + x^2 at x=5 -> 38 *)
  check Alcotest.int "horner" 38 (Field31.poly_eval [| 3; 2; 1 |] 5)

(* ------------------------------------------------------------------ *)
(* Hashing *)

let test_hash_deterministic () =
  let rng = Prng.create 15 in
  let h = Hashing.create rng ~k:4 in
  check Alcotest.int "same key same value" (Hashing.value h 123) (Hashing.value h 123);
  check Alcotest.int "degree" 4 (Hashing.degree h)

let test_hash_bucket_range () =
  let rng = Prng.create 16 in
  let h = Hashing.create rng ~k:2 in
  for key = 0 to 999 do
    let b = Hashing.bucket h ~buckets:7 key in
    check Alcotest.bool "bucket range" true (b >= 0 && b < 7)
  done

let test_hash_bucket_balance () =
  let rng = Prng.create 17 in
  let h = Hashing.create rng ~k:2 in
  let buckets = 16 in
  let counts = Array.make buckets 0 in
  let keys = 64_000 in
  for key = 0 to keys - 1 do
    let b = Hashing.bucket h ~buckets key in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = Array.make buckets (float_of_int keys /. float_of_int buckets) in
  let chi2 = Stats.chi_square ~observed:counts ~expected in
  check Alcotest.bool "balanced" true (chi2 < 80.0)

let test_hash_sign_balance () =
  let rng = Prng.create 18 in
  let h = Hashing.create rng ~k:4 in
  let pos = ref 0 in
  let keys = 40_000 in
  for key = 0 to keys - 1 do
    let s = Hashing.sign h key in
    check Alcotest.bool "sign is +-1" true (s = 1 || s = -1);
    if s = 1 then incr pos
  done;
  let frac = float_of_int !pos /. float_of_int keys in
  check Alcotest.bool "balanced signs" true (Float.abs (frac -. 0.5) < 0.02)

let test_hash_pairwise_collisions () =
  (* Pairwise independence => collision probability ~ 1/buckets. *)
  let rng = Prng.create 19 in
  let trials = 2000 in
  let buckets = 64 in
  let colls = ref 0 in
  for _ = 1 to trials do
    let h = Hashing.create rng ~k:2 in
    if Hashing.bucket h ~buckets 17 = Hashing.bucket h ~buckets 42 then incr colls
  done;
  let frac = float_of_int !colls /. float_of_int trials in
  check Alcotest.bool "collision rate ~ 1/64" true (frac < 3.0 /. 64.0)

let test_field_coeff_nonzero () =
  let rng = Prng.create 20 in
  let h = Hashing.create rng ~k:2 in
  for key = 0 to 999 do
    check Alcotest.bool "nonzero" true (Hashing.field_coeff h key <> 0)
  done

(* ------------------------------------------------------------------ *)
(* Stable *)

let test_stable_p2_is_gaussian () =
  let rng = Prng.create 21 in
  let xs = Array.init 50_000 (fun _ -> Stable.sample rng ~p:2.0) in
  (* Variance should be 2 (the stable scaling). *)
  check Alcotest.bool "variance ~ 2" true (Float.abs (Stats.variance xs -. 2.0) < 0.1)

let test_stable_p1_is_cauchy () =
  let rng = Prng.create 22 in
  let xs = Array.init 50_000 (fun _ -> Float.abs (Stable.sample rng ~p:1.0)) in
  let med = Stats.median xs in
  (* Median of |Cauchy| = 1. *)
  check Alcotest.bool "median ~ 1" true (Float.abs (med -. 1.0) < 0.03)

let test_stable_median_abs_constants () =
  checkf "p=1" 1.0 (Stable.median_abs ~p:1.0);
  check Alcotest.bool "p=2" true
    (Float.abs (Stable.median_abs ~p:2.0 -. (sqrt 2.0 *. 0.674489750196082)) < 1e-9)

let test_stable_median_abs_calibration () =
  (* Empirical median of fresh samples should match the cached constant. *)
  List.iter
    (fun p ->
      let c = Stable.median_abs ~p in
      let rng = Prng.create 23 in
      let xs = Array.init 100_000 (fun _ -> Float.abs (Stable.sample rng ~p)) in
      let med = Stats.median xs in
      check Alcotest.bool
        (Printf.sprintf "calibration p=%.2f" p)
        true
        (Float.abs (med -. c) /. c < 0.03))
    [ 0.5; 1.5 ]

let test_stable_sums () =
  (* 1-stability of Cauchy: x+y for independent Cauchy ~ 2*Cauchy. *)
  let rng = Prng.create 24 in
  let xs =
    Array.init 50_000 (fun _ ->
        Float.abs (Stable.sample rng ~p:1.0 +. Stable.sample rng ~p:1.0))
  in
  let med = Stats.median xs in
  check Alcotest.bool "median ~ 2" true (Float.abs (med -. 2.0) < 0.06)

let test_stable_rejects_bad_p () =
  let rng = Prng.create 25 in
  Alcotest.check_raises "p=0" (Invalid_argument "Stable: p must be in (0, 2]")
    (fun () -> ignore (Stable.sample rng ~p:0.0));
  Alcotest.check_raises "p=2.5" (Invalid_argument "Stable: p must be in (0, 2]")
    (fun () -> ignore (Stable.sample rng ~p:2.5))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_median () =
  checkf "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  checkf "median odd" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  checkf "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_variance () =
  (* Population variance of {1,3,5} is 8/3. *)
  check (Alcotest.float 1e-9) "variance" (8.0 /. 3.0) (Stats.variance [| 1.0; 3.0; 5.0 |]);
  checkf "constant" 0.0 (Stats.variance [| 2.0; 2.0; 2.0 |])

let test_stats_quantile () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  checkf "q0" 0.0 (Stats.quantile xs 0.0);
  checkf "q50" 50.0 (Stats.quantile xs 0.5);
  checkf "q100" 100.0 (Stats.quantile xs 1.0)

let test_stats_median_of_means () =
  let xs = Array.make 90 1.0 in
  xs.(89) <- 1000.0;
  (* One outlier lands in one group; the median of 9 group means is 1. *)
  checkf "robust to outlier" 1.0 (Stats.median_of_means xs ~groups:9)

let test_stats_tv () =
  checkf "identical" 0.0 (Stats.total_variation [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  checkf "disjoint" 1.0 (Stats.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_stats_relative_error () =
  checkf "exact" 0.0 (Stats.relative_error ~actual:10.0 ~estimate:10.0);
  checkf "ten percent" 0.1 (Stats.relative_error ~actual:10.0 ~estimate:11.0);
  check Alcotest.bool "zero actual" true
    (Stats.relative_error ~actual:0.0 ~estimate:1.0 = Float.infinity)

let test_stats_approx_factor () =
  checkf "equal" 1.0 (Stats.approx_factor ~actual:5.0 ~estimate:5.0);
  checkf "double" 2.0 (Stats.approx_factor ~actual:5.0 ~estimate:10.0);
  checkf "half" 2.0 (Stats.approx_factor ~actual:10.0 ~estimate:5.0);
  checkf "both zero" 1.0 (Stats.approx_factor ~actual:0.0 ~estimate:0.0)

let test_stats_float_sum_kahan () =
  let xs = Array.make 10_000_000 0.1 in
  let s = Stats.float_sum xs in
  check Alcotest.bool "compensated" true (Float.abs (s -. 1e6) < 1e-4)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

(* ------------------------------------------------------------------ *)
(* Fft *)

module Fft = Matprod_util.Fft

let test_fft_roundtrip () =
  let t = Prng.create 60 in
  let n = 64 in
  let re = Array.init n (fun _ -> Prng.gaussian t) in
  let im = Array.init n (fun _ -> Prng.gaussian t) in
  let re' = Array.copy re and im' = Array.copy im in
  Fft.fft ~re:re' ~im:im';
  Fft.ifft ~re:re' ~im:im';
  Array.iteri
    (fun i x -> check Alcotest.bool "re restored" true (Float.abs (x -. re'.(i)) < 1e-9))
    re;
  Array.iteri
    (fun i x -> check Alcotest.bool "im restored" true (Float.abs (x -. im'.(i)) < 1e-9))
    im

let test_fft_impulse () =
  (* FFT of a unit impulse is all-ones. *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.fft ~re ~im;
  Array.iter (fun x -> checkf "flat spectrum" 1.0 x) re;
  Array.iter (fun x -> checkf "no imaginary" 0.0 x) im

let test_fft_parseval () =
  let t = Prng.create 61 in
  let n = 128 in
  let re = Array.init n (fun _ -> Prng.gaussian t) in
  let im = Array.make n 0.0 in
  let energy_time =
    Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 re
  in
  Fft.fft ~re ~im;
  let energy_freq = ref 0.0 in
  for k = 0 to n - 1 do
    energy_freq := !energy_freq +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
  done;
  check Alcotest.bool "parseval" true
    (Float.abs ((!energy_freq /. float_of_int n) -. energy_time) < 1e-6 *. energy_time)

let test_fft_convolve_matches_naive () =
  let t = Prng.create 62 in
  let n = 32 in
  let x = Array.init n (fun _ -> float_of_int (Prng.int t 10)) in
  let y = Array.init n (fun _ -> float_of_int (Prng.int t 10)) in
  let naive =
    Array.init n (fun i ->
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (x.(j) *. y.((i - j + n) mod n))
        done;
        !acc)
  in
  let fast = Fft.convolve x y in
  Array.iteri
    (fun i v ->
      check Alcotest.bool "conv entry" true (Float.abs (v -. fast.(i)) < 1e-6))
    naive

let test_fft_rejects_bad_sizes () =
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Fft: length must be a power of two") (fun () ->
      Fft.fft ~re:(Array.make 6 0.0) ~im:(Array.make 6 0.0));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Fft: re/im length mismatch") (fun () ->
      Fft.fft ~re:(Array.make 8 0.0) ~im:(Array.make 4 0.0))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"field: mul commutative" ~count:500
      (pair (int_bound (Field31.p - 1)) (int_bound (Field31.p - 1)))
      (fun (a, b) -> Field31.mul a b = Field31.mul b a);
    Test.make ~name:"field: mul distributes over add" ~count:500
      (triple (int_bound (Field31.p - 1)) (int_bound (Field31.p - 1))
         (int_bound (Field31.p - 1)))
      (fun (a, b, c) ->
        Field31.mul a (Field31.add b c)
        = Field31.add (Field31.mul a b) (Field31.mul a c));
    Test.make ~name:"field: add associative" ~count:500
      (triple (int_bound (Field31.p - 1)) (int_bound (Field31.p - 1))
         (int_bound (Field31.p - 1)))
      (fun (a, b, c) ->
        Field31.add a (Field31.add b c) = Field31.add (Field31.add a b) c);
    Test.make ~name:"field: sub inverts add" ~count:500
      (pair (int_bound (Field31.p - 1)) (int_bound (Field31.p - 1)))
      (fun (a, b) -> Field31.sub (Field31.add a b) b = a);
    Test.make ~name:"stats: median between min and max" ~count:200
      (array_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
      (fun xs ->
        let m = Stats.median xs in
        let mn = Array.fold_left Float.min Float.infinity xs in
        let mx = Array.fold_left Float.max Float.neg_infinity xs in
        m >= mn && m <= mx);
    Test.make ~name:"stats: tv symmetric" ~count:200
      (pair
         (array_of_size (Gen.return 8) (float_range 0.1 10.0))
         (array_of_size (Gen.return 8) (float_range 0.1 10.0)))
      (fun (p, q) ->
        Float.abs (Stats.total_variation p q -. Stats.total_variation q p) < 1e-12);
    Test.make ~name:"prng: int within bound" ~count:200
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let t = Prng.create seed in
        let v = Prng.int t bound in
        v >= 0 && v < bound);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "float ranges" `Quick test_prng_float_range;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_prng_int_uniform;
          Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
          Alcotest.test_case "exponential moments" `Slow test_prng_exponential_moments;
          Alcotest.test_case "binomial edges" `Quick test_prng_binomial_exact_edges;
          Alcotest.test_case "binomial moments" `Slow test_prng_binomial_moments;
          Alcotest.test_case "geometric levels" `Slow test_geometric_level_distribution;
          Alcotest.test_case "derive deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "field31",
        [
          Alcotest.test_case "basics" `Quick test_field_basics;
          Alcotest.test_case "mul reference" `Quick test_field_mul_matches_slow;
          Alcotest.test_case "inverse" `Quick test_field_inverse;
          Alcotest.test_case "pow" `Quick test_field_pow;
          Alcotest.test_case "poly eval" `Quick test_poly_eval;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "bucket range" `Quick test_hash_bucket_range;
          Alcotest.test_case "bucket balance" `Slow test_hash_bucket_balance;
          Alcotest.test_case "sign balance" `Slow test_hash_sign_balance;
          Alcotest.test_case "pairwise collisions" `Slow test_hash_pairwise_collisions;
          Alcotest.test_case "field coeff nonzero" `Quick test_field_coeff_nonzero;
        ] );
      ( "stable",
        [
          Alcotest.test_case "p=2 gaussian" `Slow test_stable_p2_is_gaussian;
          Alcotest.test_case "p=1 cauchy" `Slow test_stable_p1_is_cauchy;
          Alcotest.test_case "median constants" `Quick test_stable_median_abs_constants;
          Alcotest.test_case "median calibration" `Slow test_stable_median_abs_calibration;
          Alcotest.test_case "stability of sums" `Slow test_stable_sums;
          Alcotest.test_case "rejects bad p" `Quick test_stable_rejects_bad_p;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean median" `Quick test_stats_mean_median;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "median of means" `Quick test_stats_median_of_means;
          Alcotest.test_case "total variation" `Quick test_stats_tv;
          Alcotest.test_case "relative error" `Quick test_stats_relative_error;
          Alcotest.test_case "approx factor" `Quick test_stats_approx_factor;
          Alcotest.test_case "kahan sum" `Slow test_stats_float_sum_kahan;
        ] );
      ( "fft",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "convolution" `Quick test_fft_convolve_matches_naive;
          Alcotest.test_case "rejects bad sizes" `Quick test_fft_rejects_bad_sizes;
        ] );
      ("properties", qsuite);
    ]
