(* Statistical validation: error *distributions* of the estimators and
   protocols over many seeds, not just single-run spot checks. These
   assert the quantiles the paper's (1+eps)/(2+eps)/kappa guarantees
   imply, with slack for the implementation's tuned constants. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Lp_protocol = Matprod_core.Lp_protocol
module Lp_oneround = Matprod_core.Lp_oneround
module Linf_binary = Matprod_core.Linf_binary
module Hh_general = Matprod_core.Hh_general
module Stable_sketch = Matprod_sketch.Stable_sketch
module Cohen = Matprod_sketch.Cohen
module L0_sampling = Matprod_core.L0_sampling

let check = Alcotest.check

let errs_over_seeds ~seeds ~actual f =
  Array.init seeds (fun s ->
      let r = Ctx.run ~seed:(s + 1) f in
      Stats.relative_error ~actual ~estimate:r.Ctx.output)

(* ------------------------------------------------------------------ *)

let test_alg1_error_quantiles () =
  let rng = Prng.create 1 in
  let a = Workload.uniform_bool rng ~rows:96 ~cols:96 ~density:0.07 in
  let b = Workload.uniform_bool rng ~rows:96 ~cols:96 ~density:0.07 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  List.iter
    (fun eps ->
      let errs =
        errs_over_seeds ~seeds:20 ~actual (fun ctx ->
            Lp_protocol.run ctx (Lp_protocol.default_params ~eps ()) ~a:ai ~b:bi)
      in
      check Alcotest.bool
        (Printf.sprintf "median err <= eps at eps=%.2f" eps)
        true
        (Stats.median errs <= eps);
      check Alcotest.bool
        (Printf.sprintf "q90 err <= 2 eps at eps=%.2f" eps)
        true
        (Stats.quantile errs 0.9 <= 2.0 *. eps))
    [ 0.5; 0.25 ]

let test_alg1_error_shrinks_with_eps () =
  let rng = Prng.create 2 in
  let a = Workload.uniform_bool rng ~rows:96 ~cols:96 ~density:0.07 in
  let b = Workload.uniform_bool rng ~rows:96 ~cols:96 ~density:0.07 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:1.0 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let med eps =
    Stats.median
      (errs_over_seeds ~seeds:15 ~actual (fun ctx ->
           Lp_protocol.run ctx
             (Lp_protocol.default_params ~p:1.0 ~eps ())
             ~a:ai ~b:bi))
  in
  check Alcotest.bool "finer eps gives smaller (or equal) median error" true
    (med 0.1 <= med 0.6 +. 0.01)

let test_oneround_error_quantiles () =
  let rng = Prng.create 3 in
  let a = Workload.uniform_bool rng ~rows:80 ~cols:80 ~density:0.08 in
  let b = Workload.uniform_bool rng ~rows:80 ~cols:80 ~density:0.08 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let errs =
    errs_over_seeds ~seeds:20 ~actual (fun ctx ->
        Lp_oneround.run ctx
          (Lp_oneround.default_params ~eps:0.25 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "median within eps" true (Stats.median errs <= 0.25);
  check Alcotest.bool "q90 within 2eps" true (Stats.quantile errs 0.9 <= 0.5)

let test_linf_factor_distribution () =
  let eps = 0.25 in
  let factors =
    Array.init 12 (fun s ->
        let rng = Prng.create (100 + s) in
        let a, b, _ = Workload.planted_pair rng ~n:96 ~density:0.05 ~overlap:40 in
        let actual = float_of_int (Product.linf (Product.bool_product a b)) in
        let r =
          Ctx.run ~seed:(s + 1) (fun ctx ->
              Linf_binary.run ctx (Linf_binary.default_params ~eps) ~a ~b)
        in
        actual /. r.Ctx.output.Linf_binary.estimate)
  in
  (* All runs within the (2+eps) band, with sketch slack. *)
  Array.iter
    (fun f ->
      check Alcotest.bool "within band" true (f >= 0.6 && f <= 2.0 +. (2.0 *. eps)))
    factors;
  (* The estimate is a max of two shares: typically half to all of the
     truth. The median over runs should sit inside [1, 2.2]. *)
  let m = Stats.median factors in
  check Alcotest.bool "median factor plausible" true (m >= 0.9 && m <= 2.3)

let test_hh_band_failure_rate () =
  let ok = ref 0 in
  let runs = 15 in
  for s = 1 to runs do
    let rng = Prng.create (200 + s) in
    let a, b, _ =
      Workload.planted_heavy_int rng ~n:96 ~density:0.03 ~max_value:6
        ~heavy:[ (2, 30, 15) ]
    in
    let c = Product.int_product a b in
    let l1 = float_of_int (Product.l1 c) in
    let phi = 0.8 *. float_of_int (Product.linf c) /. l1 in
    let eps = phi /. 2.0 in
    let r =
      Ctx.run ~seed:s (fun ctx ->
          Hh_general.run ctx (Hh_general.default_params ~phi ~eps ()) ~a ~b)
    in
    let must = Product.heavy_hitters c ~p:1.0 ~phi in
    let may = Product.heavy_hitters c ~p:1.0 ~phi:(phi -. eps) in
    if
      List.for_all (fun e -> List.mem e r.Ctx.output) must
      && List.for_all (fun e -> List.mem e may) r.Ctx.output
    then incr ok
  done;
  check Alcotest.bool
    (Printf.sprintf "band holds on %d/%d runs" !ok runs)
    true
    (!ok >= runs - 1)

let test_l0_sampling_chi_square () =
  (* Medium product, many samples, chi-square against uniform over the
     support aggregated by column (keeps the cell counts healthy). *)
  let rng = Prng.create 4 in
  let a = Workload.uniform_bool rng ~rows:40 ~cols:40 ~density:0.1 in
  let b = Workload.uniform_bool rng ~rows:40 ~cols:40 ~density:0.1 in
  let c = Product.bool_product a b in
  let col_support = Array.map int_of_float (Product.col_lp_pow c ~p:0.0) in
  let support = Array.fold_left ( + ) 0 col_support in
  let trials = 600 in
  let counts = Array.make 40 0 in
  let got = ref 0 in
  for seed = 1 to trials do
    match
      (Ctx.run ~seed (fun ctx ->
           L0_sampling.run ctx
             (L0_sampling.default_params ~eps:0.3)
             ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)))
        .Ctx.output
    with
    | Some s ->
        incr got;
        counts.(s.L0_sampling.col) <- counts.(s.L0_sampling.col) + 1
    | None -> ()
  done;
  check Alcotest.bool "success rate" true (!got > trials * 8 / 10);
  (* Expected per column ∝ its support size. *)
  let nonzero_cols = ref [] in
  Array.iteri
    (fun j s -> if s > 0 then nonzero_cols := (j, s) :: !nonzero_cols)
    col_support;
  let observed =
    Array.of_list (List.map (fun (j, _) -> counts.(j)) !nonzero_cols)
  in
  let expected =
    Array.of_list
      (List.map
         (fun (_, s) -> float_of_int !got *. float_of_int s /. float_of_int support)
         !nonzero_cols)
  in
  let chi2 = Stats.chi_square ~observed ~expected in
  let dof = float_of_int (Array.length observed - 1) in
  (* Mean of chi2 is dof; allow 2x + slack for the (1±eps) skew. *)
  check Alcotest.bool
    (Printf.sprintf "chi2 %.0f vs dof %.0f" chi2 dof)
    true
    (chi2 < (2.5 *. dof) +. 20.0)

let test_stable_error_vs_p () =
  let rng = Prng.create 5 in
  List.iter
    (fun p ->
      let errs =
        Array.init 12 (fun s ->
            let rng2 = Prng.create (300 + s) in
            let t = Stable_sketch.create rng ~p ~eps:0.25 ~groups:5 in
            let idx = Array.init 400 (fun i -> i) in
            Prng.shuffle rng2 idx;
            let vec =
              Array.map (fun i -> (i, 1 + Prng.int rng2 9)) (Array.sub idx 0 64)
            in
            let actual =
              Array.fold_left
                (fun acc (_, v) -> acc +. (Float.abs (float_of_int v) ** p))
                0.0 vec
              ** (1.0 /. p)
            in
            Stats.relative_error ~actual
              ~estimate:(Stable_sketch.estimate t (Stable_sketch.sketch t vec)))
      in
      check Alcotest.bool
        (Printf.sprintf "median err small at p=%.2f" p)
        true
        (Stats.median errs <= 0.3))
    [ 0.25; 0.75; 1.25; 1.75 ]

let test_cohen_error_scales_with_reps () =
  let supp = Array.init 400 (fun i -> i * 2) in
  let err_with reps seed =
    let rng = Prng.create seed in
    let t = Cohen.create rng ~reps ~rows:1000 in
    let mins = Cohen.column_mins t ~supp_of_col:(fun _ -> supp) ~cols:1 in
    Stats.relative_error ~actual:400.0
      ~estimate:(Cohen.estimate_union t mins [| 0 |])
  in
  let med reps =
    Stats.median (Array.init 15 (fun s -> err_with reps (400 + s)))
  in
  let coarse = med 16 and fine = med 256 in
  check Alcotest.bool
    (Printf.sprintf "err %.3f@16 reps vs %.3f@256 reps" coarse fine)
    true (fine < coarse)

let () =
  Alcotest.run "statistical"
    [
      ( "estimation-error",
        [
          Alcotest.test_case "alg1 quantiles" `Slow test_alg1_error_quantiles;
          Alcotest.test_case "alg1 error vs eps" `Slow test_alg1_error_shrinks_with_eps;
          Alcotest.test_case "one-round quantiles" `Slow test_oneround_error_quantiles;
          Alcotest.test_case "linf factor distribution" `Slow test_linf_factor_distribution;
          Alcotest.test_case "hh band failure rate" `Slow test_hh_band_failure_rate;
          Alcotest.test_case "stable error vs p" `Slow test_stable_error_vs_p;
          Alcotest.test_case "cohen error vs reps" `Slow test_cohen_error_scales_with_reps;
        ] );
      ( "sampling-distributions",
        [
          Alcotest.test_case "l0 sampling chi-square" `Slow test_l0_sampling_chi_square;
        ] );
    ]
