(* Join cardinality estimation for a distributed query optimizer.

   Scenario: relation R(X, Y) lives on site A, relation S(Y, Z) on site B.
   Before choosing a join strategy, the optimizer wants estimates of
     - |R ∘ S|  (composition / set-intersection join size  = ||AB||_0)
     - |R ⋈ S|  (natural join size                          = ||AB||_1)
   cheaply, under skewed (Zipf) key distributions where sampling-based
   estimators are notoriously fragile.

   Run with:  dune exec examples/join_size_estimation.exe *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload

let () =
  let n = 400 in
  let rng = Prng.create 11 in
  (* Skewed join keys: a few keys are very popular. *)
  let r = Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:10 ~skew:1.2 in
  let s =
    Bmat.transpose (Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:10 ~skew:1.2)
  in
  let c = Product.bool_product r s in
  let exact_composition = Product.nnz c in
  let exact_natural = Product.l1 c in

  Printf.printf "R: %d tuples over %d keys (Zipf 1.2); S: %d tuples\n"
    (Bmat.nnz r) n (Bmat.nnz s);
  Printf.printf "exact |R o S| = %d,  exact |R join S| = %d\n\n"
    exact_composition exact_natural;

  (* 1. Natural join size: free lunch — exact in one round (Remark 2). *)
  let nat = Ctx.run ~seed:3 (fun ctx -> Matprod_core.L1_exact.run_bool ctx ~a:r ~b:s) in
  Printf.printf "natural join size  : %d (exact, %d bytes, %d round)\n"
    nat.Ctx.output (nat.Ctx.bits / 8) nat.Ctx.rounds;

  (* 2. Composition size at decreasing eps: the optimizer can dial accuracy
     against communication. *)
  Printf.printf "\ncomposition size under Algorithm 1 (2 rounds):\n";
  List.iter
    (fun eps ->
      let run =
        Ctx.run ~seed:5 (fun ctx ->
            Matprod_core.Lp_protocol.run ctx
              (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps ())
              ~a:(Imat.of_bmat r) ~b:(Imat.of_bmat s))
      in
      Printf.printf "  eps = %.2f: estimate %7.0f (err %.3f) at %7d bytes\n" eps
        run.Ctx.output
        (Stats.relative_error
           ~actual:(float_of_int exact_composition)
           ~estimate:run.Ctx.output)
        (run.Ctx.bits / 8))
    [ 0.5; 0.25; 0.1 ];

  (* 3. A peek at the join output without computing it: l1-samples are
     uniform join tuples — useful for selectivity probing downstream. *)
  Printf.printf "\nthree uniform natural-join tuples (i, key, j):\n";
  for seed = 1 to 3 do
    match
      (Ctx.run ~seed (fun ctx ->
           Matprod_core.L1_sampling.run ctx ~a:(Imat.of_bmat r) ~b:(Imat.of_bmat s)))
        .Ctx.output
    with
    | Some t ->
        Printf.printf "  (%d, %d, %d)\n" t.Matprod_core.L1_sampling.row
          t.Matprod_core.L1_sampling.witness t.Matprod_core.L1_sampling.col
    | None -> Printf.printf "  (join empty)\n"
  done
