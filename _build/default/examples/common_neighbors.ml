(* Graph analytics across two data owners: Alice knows the follower edges
   of network A (who follows whom), Bob knows network B. The product
   C = A·B counts, for every (u, w), the number of 2-hop paths u -> v -> w
   that cross from A into B — "common neighbors", the classic link
   prediction score.

     - ||C||_1  = total number of cross-network 2-paths (Remark 2, exact);
     - ||C||_inf = the strongest pair (Algorithm 2);
     - lp-sampling (p = 2) = a pair drawn proportionally to score^2, a
       useful importance sample for training link predictors (extension
       module, beyond the paper).

   Run with:  dune exec examples/common_neighbors.exe *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload

let () =
  let n = 300 in
  let rng = Prng.create 31 in
  (* Two overlapping social graphs with a hub community. *)
  let graph_a = Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:12 ~skew:1.0 in
  let graph_b = Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:12 ~skew:1.0 in
  let c = Product.bool_product graph_a graph_b in
  Printf.printf "network A: %d edges, network B: %d edges, %d vertices\n\n"
    (Bmat.nnz graph_a) (Bmat.nnz graph_b) n;

  (* Total cross-network 2-paths, exactly, for 2 kB. *)
  let paths = Ctx.run ~seed:1 (fun ctx -> Matprod_core.L1_exact.run_bool ctx ~a:graph_a ~b:graph_b) in
  Printf.printf "cross 2-paths      : %d (exact, %d bytes)\n" paths.Ctx.output
    (paths.Ctx.bits / 8);

  (* How many vertex pairs are linked by at least one 2-path? *)
  let reach =
    Ctx.run ~seed:2 (fun ctx ->
        Matprod_core.Lp_protocol.run ctx
          (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps:0.25 ())
          ~a:(Imat.of_bmat graph_a) ~b:(Imat.of_bmat graph_b))
  in
  Printf.printf "2-hop reachable    : ~%.0f pairs (exact %d), %d bytes\n"
    reach.Ctx.output (Product.nnz c) (reach.Ctx.bits / 8);

  (* Strongest candidate link. *)
  let top =
    Ctx.run ~seed:3 (fun ctx ->
        Matprod_core.Linf_binary.run ctx
          (Matprod_core.Linf_binary.default_params ~eps:0.25)
          ~a:graph_a ~b:graph_b)
  in
  Printf.printf "max common-neighb. : >= %.0f (exact %d), %d bytes\n"
    top.Ctx.output.Matprod_core.Linf_binary.estimate (Product.linf c)
    (top.Ctx.bits / 8);

  (* Importance samples for a link-prediction training set. *)
  Printf.printf "\nl2^2-importance samples (pair, score):\n";
  for seed = 1 to 5 do
    match
      (Ctx.run ~seed:(100 + seed) (fun ctx ->
           Matprod_core.Lp_sampling.run ctx
             (Matprod_core.Lp_sampling.default_params ~eps:0.3 ())
             ~a:(Imat.of_bmat graph_a) ~b:(Imat.of_bmat graph_b)))
        .Ctx.output
    with
    | Some s ->
        Printf.printf "  (%3d, %3d)  %d common neighbors\n"
          s.Matprod_core.Lp_sampling.row s.Matprod_core.Lp_sampling.col
          s.Matprod_core.Lp_sampling.value
    | None -> Printf.printf "  (no sample)\n"
  done
