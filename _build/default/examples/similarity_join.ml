(* Inner-product similarity join on integer feature vectors (the paper's
   pointer to [3]): Alice holds m user vectors, Bob holds m item vectors,
   and they want the user/item pairs with the largest inner products —
   without shipping the vectors.

   (AB)_ij = <user_i, item_j> since A's rows are user vectors and B's
   columns are item vectors. The maximum inner product is ||AB||_inf
   (Theorem 4.8 for integer data), and the "above threshold" pairs are
   heavy hitters (Algorithm 4).

   Run with:  dune exec examples/similarity_join.exe *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload

let () =
  let n = 256 in
  let rng = Prng.create 99 in
  (* Sparse integer feature vectors with two planted near-duplicate pairs:
     a user whose vector strongly aligns with an item's. *)
  let a, b, planted =
    Workload.planted_heavy_int rng ~n ~density:0.03 ~max_value:6
      ~heavy:[ (2, 40, 20) ]
  in
  let c = Product.int_product a b in
  Printf.printf "%d users x %d items, feature dim %d, planted pairs:" n n n;
  List.iter (fun (i, j) -> Printf.printf " (%d,%d)" i j) planted;
  Printf.printf "\nexact max inner product: %d\n\n" (Product.linf c);

  (* Largest inner product within a factor kappa, one round. *)
  List.iter
    (fun kappa ->
      let run =
        Ctx.run ~seed:1 (fun ctx ->
            Matprod_core.Linf_general.run ctx { Matprod_core.Linf_general.kappa }
              ~a ~b)
      in
      Printf.printf
        "max inner product ~ %7.0f within factor %.0f   (%7d bytes, 1 round)\n"
        run.Ctx.output kappa (run.Ctx.bits / 8))
    [ 2.0; 4.0; 8.0 ];

  (* The pairs above a mass threshold: Algorithm 4. *)
  let l1 = float_of_int (Product.l1 c) in
  let top = float_of_int (Product.linf c) /. l1 in
  let phi = 0.7 *. top and eps = 0.35 *. top in
  let run =
    Ctx.run ~seed:2 (fun ctx ->
        Matprod_core.Hh_general.run ctx
          (Matprod_core.Hh_general.default_params ~phi ~eps ())
          ~a ~b)
  in
  Printf.printf "\nsimilar pairs above phi = %.4f of total mass (%d bytes):\n"
    phi (run.Ctx.bits / 8);
  List.iter
    (fun (i, j) ->
      Printf.printf "  user %3d / item %3d — inner product %d%s\n" i j
        (Product.get c i j)
        (if List.mem (i, j) planted then "  <- planted" else ""))
    run.Ctx.output
