(* Quickstart: two parties estimate statistics of the product of their
   matrices — equivalently, the sizes of the joins between their relations
   — without shipping the data.

   Run with:  dune exec examples/quickstart.exe *)

module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx

let () =
  (* Alice's relation: each row i is the set A_i of join keys of entity i.
     Bob's relation: each column j is the set B^j. The matrix product
     C = A·B counts key overlaps: C_ij = |A_i ∩ B^j|. *)
  let n = 200 in
  let rng = Matprod_util.Prng.create 2024 in
  let alice_matrix =
    Matprod_workload.Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06
  in
  let bob_matrix =
    Matprod_workload.Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06
  in

  (* Ground truth, for reference only — no real deployment computes this. *)
  let c = Product.bool_product alice_matrix bob_matrix in

  (* 1. The natural join size ||AB||_1 is exact and nearly free: one round,
     O(n log n) bits (Remark 2 of the paper). *)
  let nat =
    Ctx.run ~seed:7 (fun ctx ->
        Matprod_core.L1_exact.run_bool ctx ~a:alice_matrix ~b:bob_matrix)
  in
  Printf.printf "natural join size |R join S|   : %d (exact)\n" nat.Ctx.output;
  Printf.printf "  cost: %d bytes, %d round — vs %d bytes to ship A\n\n"
    (nat.Ctx.bits / 8) nat.Ctx.rounds (n * n / 8);

  (* 2. The set-intersection join size ||AB||_0 needs sketching: Algorithm 1
     gives a (1+eps)-approximation in two rounds and O~(n/eps) bits. *)
  let eps = 0.25 in
  let run =
    Ctx.run ~seed:7 (fun ctx ->
        Matprod_core.Lp_protocol.run ctx
          (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps ())
          ~a:(Imat.of_bmat alice_matrix)
          ~b:(Imat.of_bmat bob_matrix))
  in
  Printf.printf "set-intersection join |R o S|  : ~%.0f (exact %d, err %.3f)\n"
    run.Ctx.output (Product.nnz c)
    (Matprod_util.Stats.relative_error
       ~actual:(float_of_int (Product.nnz c))
       ~estimate:run.Ctx.output);
  Printf.printf "  cost: %d bytes, %d rounds\n" (run.Ctx.bits / 8) run.Ctx.rounds;
  Printf.printf
    "  (the sketch constants dominate at n = %d; the O~(n/eps) scaling —\n\
    \   linear in n, 1/eps rather than the 1/eps^2 of one-round sketching —\n\
    \   is what the bench harness E1 measures)\n\n"
    n;

  (* 3. The pair with the largest overlap, within a factor 2+eps
     (Algorithm 2), for a ~n^1.5 budget. *)
  let inf =
    Ctx.run ~seed:7 (fun ctx ->
        Matprod_core.Linf_binary.run ctx
          (Matprod_core.Linf_binary.default_params ~eps:0.25)
          ~a:alice_matrix ~b:bob_matrix)
  in
  Printf.printf "largest overlap ||AB||_inf     : >= %.0f (exact %d)\n"
    inf.Ctx.output.Matprod_core.Linf_binary.estimate (Product.linf c);
  Printf.printf "  cost: %d bytes, %d rounds\n" (inf.Ctx.bits / 8) inf.Ctx.rounds
