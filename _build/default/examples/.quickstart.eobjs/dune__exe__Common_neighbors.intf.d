examples/common_neighbors.mli:
