examples/quickstart.mli:
