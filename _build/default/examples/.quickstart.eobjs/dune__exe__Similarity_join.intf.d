examples/similarity_join.mli:
