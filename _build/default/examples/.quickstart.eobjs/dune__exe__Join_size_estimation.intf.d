examples/join_size_estimation.mli:
