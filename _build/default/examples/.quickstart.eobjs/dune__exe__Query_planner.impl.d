examples/query_planner.ml: Matprod_relational Matprod_util Printf
