examples/job_matching.mli:
