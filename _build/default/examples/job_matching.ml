(* The paper's §1.1 motivating scenario: a recruiting platform holds
   applicants' skill sets, a partner job board holds jobs' skill
   requirements, and neither wants to ship its whole database. (AB)_ij is
   the number of job j's requirements that applicant i meets.

   Three questions, three protocols:
     - how many applicant/job pairs match at all?        (||AB||_0)
     - which single pair matches best?                   (||AB||_inf)
     - which pairs are strong matches?                   (heavy hitters)

   Run with:  dune exec examples/job_matching.exe *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload

let () =
  let rng = Prng.create 77 in
  let market =
    Workload.job_matching rng ~applicants:300 ~jobs:250 ~skills:400
      ~avg_skills:8 ~avg_requirements:6
  in
  let a = market.Workload.applicants and b = market.Workload.jobs in
  let c = Product.bool_product a b in
  Printf.printf "%d applicants x %d jobs over %d skills\n" (Bmat.rows a)
    (Bmat.cols b) (Bmat.cols a);
  Printf.printf "(planted star pair: applicant %d / job %d)\n\n"
    market.Workload.star_applicant market.Workload.star_job;

  (* How many pairs share at least one skill? *)
  let run0 =
    Ctx.run ~seed:1 (fun ctx ->
        Matprod_core.Lp_protocol.run ctx
          (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps:0.25 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  Printf.printf "possible matches   : ~%.0f pairs (exact %d), %d bytes\n"
    run0.Ctx.output (Product.nnz c) (run0.Ctx.bits / 8);

  (* The best applicant/job pair: Algorithm 2 within a factor 2+eps. *)
  let runinf =
    Ctx.run ~seed:2 (fun ctx ->
        Matprod_core.Linf_binary.run ctx
          (Matprod_core.Linf_binary.default_params ~eps:0.25)
          ~a ~b)
  in
  Printf.printf "best overlap       : >= %.0f skills (exact max %d), %d bytes\n"
    runinf.Ctx.output.Matprod_core.Linf_binary.estimate (Product.linf c)
    (runinf.Ctx.bits / 8);

  (* All strong matches: pairs holding at least phi of the total match
     mass. The star pair must be caught. A deployment would choose phi
     from business requirements; here we place it just under the star
     pair's share so the example is self-checking. *)
  let phi =
    0.8 *. float_of_int (Product.linf c) /. float_of_int (Product.l1 c)
  in
  let eps = phi /. 2.0 in
  let runhh =
    Ctx.run ~seed:3 (fun ctx ->
        Matprod_core.Hh_binary.run ctx
          (Matprod_core.Hh_binary.default_params ~phi ~eps ())
          ~a ~b)
  in
  Printf.printf "strong matches     : %d pairs at phi = %.5f, %d bytes\n"
    (List.length runhh.Ctx.output) phi (runhh.Ctx.bits / 8);
  List.iter
    (fun (i, j) ->
      Printf.printf "    applicant %3d / job %3d — %d shared skills%s\n" i j
        (Product.get c i j)
        (if i = market.Workload.star_applicant && j = market.Workload.star_job
         then "  <- star pair"
         else ""))
    runhh.Ctx.output;

  (* And a uniformly random match, e.g. for manual quality review. *)
  match
    (Ctx.run ~seed:4 (fun ctx ->
         Matprod_core.L0_sampling.run ctx
           (Matprod_core.L0_sampling.default_params ~eps:0.25)
           ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)))
      .Ctx.output
  with
  | Some s ->
      Printf.printf "random match       : applicant %d / job %d (%d skills)\n"
        s.Matprod_core.L0_sampling.row s.Matprod_core.L0_sampling.col
        s.Matprod_core.L0_sampling.value
  | None -> Printf.printf "random match       : (sampler failed)\n"
