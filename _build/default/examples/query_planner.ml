(* A distributed query planner's view: relations live at two sites, and
   the planner calls the high-level facade (lib/relational) instead of
   touching matrices or protocols.

   Plan choice: for R(X,Y) ⋈ S(Y,Z), a hash join materialises |R ⋈ S|
   tuples while a composition-then-lookup plan materialises |R ∘ S|; the
   planner wants both cardinalities, a feel for skew (the max witness
   count), and a couple of sample tuples — all for a few kB.

   Run with:  dune exec examples/query_planner.exe *)

module Prng = Matprod_util.Prng
module Relation = Matprod_relational.Relation
module Join_estimator = Matprod_relational.Join_estimator

let () =
  let rng = Prng.create 6 in
  (* R: 5000 tuples over X(1500) x Y(800); S: 5000 over Y(800) x Z(1200). *)
  let r = Relation.random rng ~x_dom:1500 ~y_dom:800 ~tuples:5000 in
  let s = Relation.random rng ~x_dom:800 ~y_dom:1200 ~tuples:5000 in
  Printf.printf "R: %d tuples (X:1500, Y:800) at site A\n" (Relation.cardinality r);
  Printf.printf "S: %d tuples (Y:800, Z:1200) at site B\n\n" (Relation.cardinality s);

  let nat = Join_estimator.natural_join_size ~seed:1 ~r ~s in
  Printf.printf "|R join S|  = %d          (exact, %d B, %d round)\n"
    nat.Join_estimator.value
    (nat.Join_estimator.bits / 8)
    nat.Join_estimator.rounds;

  let comp = Join_estimator.composition_size ~eps:0.25 ~seed:2 ~r ~s () in
  Printf.printf "|R o S|     ~ %.0f       (1+eps, %d B, %d rounds)\n"
    comp.Join_estimator.value
    (comp.Join_estimator.bits / 8)
    comp.Join_estimator.rounds;
  Printf.printf "  exact for reference: %d\n"
    (Relation.cardinality (Relation.compose r s));

  let skew = Join_estimator.max_witness_count ~eps:0.25 ~seed:3 ~r ~s () in
  Printf.printf "max witnesses >= %.0f per output pair (%d B)\n"
    skew.Join_estimator.value
    (skew.Join_estimator.bits / 8);

  Printf.printf "\nsampled join tuples (x, y, z):\n";
  for seed = 1 to 3 do
    match
      (Join_estimator.sample_join_tuple ~seed ~r ~s).Join_estimator.value
    with
    | Some (x, y, z) -> Printf.printf "  (%d, %d, %d)\n" x y z
    | None -> Printf.printf "  (empty join)\n"
  done
