bench/microbench.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Matprod_matrix Matprod_sketch Matprod_util Matprod_workload Measure Printf Report Staged Test Time Toolkit
