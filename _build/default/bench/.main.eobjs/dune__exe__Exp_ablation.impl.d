bench/exp_ablation.ml: Array Float List Matprod_comm Matprod_core Matprod_matrix Matprod_sketch Matprod_util Matprod_workload Printf Report
