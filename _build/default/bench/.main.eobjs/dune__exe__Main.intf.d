bench/main.mli:
