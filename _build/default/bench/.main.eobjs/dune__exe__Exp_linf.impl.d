bench/exp_linf.ml: List Matprod_comm Matprod_core Matprod_matrix Matprod_util Matprod_workload Printf Report
