bench/main.ml: Array Exp_ablation Exp_hh Exp_lb Exp_linf Exp_lp Exp_scaling List Microbench Printf Report String Sys
