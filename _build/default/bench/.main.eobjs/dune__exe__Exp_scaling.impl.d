bench/exp_scaling.ml: Float Hashtbl List Matprod_comm Matprod_core Matprod_matrix Matprod_util Matprod_workload Printf Report
