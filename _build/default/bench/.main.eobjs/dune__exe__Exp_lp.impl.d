bench/exp_lp.ml: Array Float Format Hashtbl List Matprod_comm Matprod_core Matprod_matrix Matprod_util Matprod_workload Option Printf Report
