bench/report.ml: Array List Matprod_util Printf String
