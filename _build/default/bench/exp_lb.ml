(* Experiments E11–E12: lower-bound instances and rectangular matrices. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Disj = Matprod_lowerbounds.Disj_reduction
module Gap = Matprod_lowerbounds.Gap_linf_reduction
module Sum_hard = Matprod_lowerbounds.Sum_hard
module Lp_protocol = Matprod_core.Lp_protocol
module L1_exact = Matprod_core.L1_exact
module Linf_binary = Matprod_core.Linf_binary
module Linf_general = Matprod_core.Linf_general

let e11 ~quick =
  Report.section ~id:"E11  lower-bound hard instances (Thms 4.4, 4.5, 4.8)"
    ~claim:
      "the reductions produce the ||AB||_inf gaps the Omega(n^2), \
       Omega~(n^1.5/kappa) and Omega~(n^2/kappa^2) arguments rely on";
  let trials = if quick then 5 else 20 in
  (* Theorem 4.4: DISJ embedding separates 1 vs 2. *)
  let rng = Prng.create 53 in
  let ok44 = ref true in
  for _ = 1 to trials do
    let a0, b0 = Disj.instance rng ~half:24 ~intersecting:false ~density:0.3 in
    let a1, b1 = Disj.instance rng ~half:24 ~intersecting:true ~density:0.3 in
    if Product.linf (Product.bool_product a0 b0) > 1 then ok44 := false;
    if Product.linf (Product.bool_product a1 b1) <> 2 then ok44 := false
  done;
  Report.record_verdict !ok44
    "Thm 4.4: DISJ instances give ||AB||_inf = 1 vs 2 on all %d trials" trials;
  (* Theorem 4.8 LB: Gap-linf embedding separates <=1 vs >=kappa. *)
  let ok48 = ref true in
  let kappa = 16 in
  for _ = 1 to trials do
    let a0, b0 = Gap.instance rng ~half:16 ~kappa ~gap:false in
    let a1, b1 = Gap.instance rng ~half:16 ~kappa ~gap:true in
    if Product.linf (Product.int_product a0 b0) > 1 then ok48 := false;
    if Product.linf (Product.int_product a1 b1) < kappa then ok48 := false
  done;
  Report.record_verdict !ok48
    "Thm 4.8: Gap-linf instances give ||AB||_inf <= 1 vs >= %d" kappa;
  (* A protocol-level completeness check: the Thm 4.8 upper-bound protocol
     at approximation kappa/2 distinguishes the two cases. *)
  let a0, b0 = Gap.instance rng ~half:16 ~kappa ~gap:false in
  let a1, b1 = Gap.instance rng ~half:16 ~kappa ~gap:true in
  let run_on a b =
    (Ctx.run ~seed:1 (fun ctx ->
         Linf_general.run ctx { Linf_general.kappa = float_of_int kappa /. 4.0 } ~a ~b))
      .Ctx.output
  in
  let est0 = run_on a0 b0 and est1 = run_on a1 b1 in
  Report.note "Linf_general on no-gap: %.1f; on gap: %.1f" est0 est1;
  Report.record_verdict (est1 > 2.0 *. est0)
    "the Thm 4.8 protocol separates the Gap-linf cases";
  (* Theorem 4.5: the SUM distribution. Faithful reproduction note. *)
  let n = 256 in
  let i1 = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n ~kappa:2.0 ~sum:1 in
  let i0 = Sum_hard.sample_conditioned ~beta_const:2.0 rng ~n ~kappa:2.0 ~sum:0 in
  let stats inst =
    let c = Product.bool_product inst.Sum_hard.a inst.Sum_hard.b in
    let diag = ref 0 in
    for i = 0 to n - 1 do
      diag := max !diag (Product.get c i i)
    done;
    (Product.linf c, !diag)
  in
  let linf1, diag1 = stats i1 and linf0, diag0 = stats i0 in
  Printf.printf
    "SUM instance (n=%d, k=%d, replicas=%d):\n\
    \  SUM=1: ||C||_inf = %d, diag max = %d\n\
    \  SUM=0: ||C||_inf = %d, diag max = %d\n"
    n i1.Sum_hard.k i1.Sum_hard.replicas linf1 diag1 linf0 diag0;
  Report.note
    "reproduction finding: with the identical tiled blocks of Sec 4.2.2, \
     off-diagonal noise also reaches multiples of n/k, so the whole-matrix \
     linf gap of Eq. (8) does not materialise empirically; the diagonal \
     separates perfectly (see EXPERIMENTS.md)";
  Report.record_verdict
    (diag1 >= i1.Sum_hard.replicas && diag0 = 0)
    "Thm 4.5 instances: diagonal separates SUM=1 from SUM=0"

(* ------------------------------------------------------------------ *)

let e12 ~quick =
  Report.section ~id:"E12  rectangular matrices (Section 6)"
    ~claim:
      "bounds carry over to A in {0,1}^(m x n), B in {0,1}^(n x m): lp stays \
       O~(n/eps), linf becomes O~(m^1.5/eps)";
  let n = 128 in
  let m = 2 * n in
  let rng = Prng.create 54 in
  let a = Workload.uniform_bool rng ~rows:m ~cols:n ~density:0.06 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:m ~density:0.06 in
  let c = Product.bool_product a b in
  (* p = 0 on the rectangular product. *)
  let actual0 = Product.lp_pow c ~p:0.0 in
  let r0 =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~eps:0.25 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  let err0 = Matprod_util.Stats.relative_error ~actual:actual0 ~estimate:r0.Ctx.output in
  Printf.printf "A is %dx%d, B is %dx%d; ||C||_0 = %.0f\n" m n n m actual0;
  Printf.printf "Algorithm 1 (p=0, eps=0.25): est %.0f (err %.3f), %s, %d rounds\n"
    r0.Ctx.output err0 (Report.fbits r0.Ctx.bits) r0.Ctx.rounds;
  Report.record_verdict (err0 < 0.3) "Algorithm 1 accurate on rectangular input";
  (* Exact l1. *)
  let r1 = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a ~b) in
  Report.record_verdict
    (r1.Ctx.output = Product.l1 c)
    "Remark 2 exact on rectangular input";
  (* linf via Algorithm 2. *)
  if not quick then begin
    let a', b', _ = Workload.planted_pair rng ~n:m ~density:0.03 ~overlap:60 in
    (* crop B' to n rows to make it m x n * n x m?  Keep square planted for
       the approximation check but report the rectangular run above. *)
    let actual = float_of_int (Product.linf (Product.bool_product a' b')) in
    let r =
      Ctx.run ~seed:1 (fun ctx ->
          Linf_binary.run ctx (Linf_binary.default_params ~eps:0.25) ~a:a' ~b:b')
    in
    let est = r.Ctx.output.Linf_binary.estimate in
    Report.record_verdict
      (est >= actual /. 2.6 && est <= actual *. 1.6)
      "Algorithm 2 at m = %d within (2+eps)" m
  end;
  (* Rectangular linf: planted pair inside the m x n / n x m shapes. *)
  let a2 = Workload.uniform_bool rng ~rows:m ~cols:n ~density:0.04 in
  let b2 = Workload.uniform_bool rng ~rows:n ~cols:m ~density:0.04 in
  let actual2 = float_of_int (Product.linf (Product.bool_product a2 b2)) in
  let r2 =
    Ctx.run ~seed:1 (fun ctx ->
        Linf_binary.run ctx (Linf_binary.default_params ~eps:0.25) ~a:a2 ~b:b2)
  in
  let est2 = r2.Ctx.output.Linf_binary.estimate in
  Printf.printf "Algorithm 2 on %dx%d * %dx%d: actual %.0f, est %.0f, %s\n" m n n
    m actual2 est2 (Report.fbits r2.Ctx.bits);
  Report.record_verdict
    (actual2 = 0.0 || (est2 >= actual2 /. 2.6 && est2 <= actual2 *. 1.6))
    "Algorithm 2 within (2+eps) on rectangular input"

let all ~quick =
  e11 ~quick;
  e12 ~quick
