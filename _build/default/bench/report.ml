(* Table and verdict printing for the experiment harness. *)

let hrule = String.make 78 '-'

let section ~id ~claim =
  Printf.printf "\n%s\n" hrule;
  Printf.printf "%s\n" id;
  Printf.printf "paper claim: %s\n" claim;
  Printf.printf "%s\n" hrule

let table_header cols =
  let line =
    String.concat " | " (List.map (fun (name, w) -> Printf.sprintf "%-*s" w name) cols)
  in
  Printf.printf "%s\n" line;
  Printf.printf "%s\n" (String.make (String.length line) '-')

let row cols cells =
  let line =
    String.concat " | "
      (List.map2 (fun (_, w) cell -> Printf.sprintf "%-*s" w cell) cols cells)
  in
  Printf.printf "%s\n" line

let verdict ok fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "VERDICT %s %s\n" (if ok then "[pass]" else "[FAIL]") s)
    fmt

let note fmt = Printf.ksprintf (fun s -> Printf.printf "note: %s\n" s) fmt

let fbits bits =
  if bits >= 8_000_000 then Printf.sprintf "%.1f MB" (float_of_int bits /. 8e6)
  else if bits >= 8_000 then Printf.sprintf "%.1f kB" (float_of_int bits /. 8e3)
  else Printf.sprintf "%d b" bits

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

(* Aggregate a per-seed measurement: median of runs. *)
let median_of xs = Matprod_util.Stats.median (Array.of_list xs)

(* Least-squares slope of log(y) against log(x): the measured scaling
   exponent of a cost curve. *)
let fit_loglog_slope pts =
  let pts =
    List.filter_map
      (fun (x, y) ->
        if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      pts
  in
  let n = float_of_int (List.length pts) in
  if n < 2.0 then invalid_arg "Report.fit_loglog_slope: need >= 2 points";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

type outcome = { mutable passed : int; mutable failed : int }

let outcome = { passed = 0; failed = 0 }

let record_verdict ok fmt =
  if ok then outcome.passed <- outcome.passed + 1
  else outcome.failed <- outcome.failed + 1;
  verdict ok fmt

let summary () =
  Printf.printf "\n%s\n" hrule;
  Printf.printf "SUMMARY: %d verdicts passed, %d failed\n" outcome.passed
    outcome.failed;
  Printf.printf "%s\n" hrule
