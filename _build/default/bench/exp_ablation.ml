(* Ablations A1–A4: sensitivity of the implementation's tunable constants,
   for the design choices DESIGN.md calls out. These do not correspond to
   paper claims; they justify the chosen defaults. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module L0_sketch = Matprod_sketch.L0_sketch
module S_sparse = Matprod_sketch.S_sparse
module Lp_protocol = Matprod_core.Lp_protocol
module Linf_binary = Matprod_core.Linf_binary

(* A1: Algorithm 2's threshold constant gamma. Too small: the level search
   oversamples and the estimate degrades. Too large: subsampling never
   engages and the exchange cost grows. *)
let a1 ~quick =
  Report.section ~id:"A1  ablation: Algorithm 2 threshold constant gamma"
    ~claim:"(implementation default gamma_const = 8)";
  let n = 256 in
  let rng = Prng.create 70 in
  let a, b = (
    Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.3,
    Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.3)
  in
  let actual = float_of_int (Product.linf (Product.bool_product a b)) in
  let cols = [ ("gamma_c", 8); ("level", 6); ("estimate", 9); ("factor", 7); ("bits", 10) ] in
  Report.table_header cols;
  let gammas = if quick then [ 0.05; 8.0 ] else [ 0.02; 0.1; 1.0; 8.0; 64.0 ] in
  List.iter
    (fun gamma_const ->
      let r =
        Ctx.run ~seed:1 (fun ctx ->
            Linf_binary.run ctx { Linf_binary.eps = 0.25; gamma_const } ~a ~b)
      in
      let out = r.Ctx.output in
      Report.row cols
        [
          Printf.sprintf "%.2f" gamma_const;
          string_of_int out.Linf_binary.level;
          Printf.sprintf "%.0f" out.Linf_binary.estimate;
          Report.f2 (Stats.approx_factor ~actual ~estimate:out.Linf_binary.estimate);
          Report.fbits r.Ctx.bits;
        ])
    gammas;
  Report.note "deeper levels trade bits for variance; the default keeps the factor within 2+eps"

(* A2: the l0 sketch's buckets-per-level count. Error should shrink like
   1/sqrt(buckets). *)
let a2 ~quick =
  Report.section ~id:"A2  ablation: l0-sketch buckets per level"
    ~claim:"(linear-counting error ~ 1/sqrt(buckets); default 12/eps^2)";
  let dim = 4096 in
  let trials = if quick then 10 else 40 in
  let cols = [ ("buckets", 8); ("median err", 11); ("q90 err", 8) ] in
  Report.table_header cols;
  let errs_of buckets =
    let rng = Prng.create 71 in
    Array.init trials (fun _ ->
        let t = L0_sketch.create_explicit rng ~buckets ~groups:3 ~dim in
        let nnz = 500 in
        let idx = Array.init dim (fun i -> i) in
        Prng.shuffle rng idx;
        let vec = Array.map (fun i -> (i, 1)) (Array.sub idx 0 nnz) in
        Stats.relative_error ~actual:(float_of_int nnz)
          ~estimate:(L0_sketch.estimate t (L0_sketch.sketch t vec)))
  in
  let med_errs = ref [] in
  List.iter
    (fun buckets ->
      let errs = errs_of buckets in
      let med = Stats.median errs in
      med_errs := (buckets, med) :: !med_errs;
      Report.row cols
        [
          string_of_int buckets;
          Report.f3 med;
          Report.f3 (Stats.quantile errs 0.9);
        ])
    [ 16; 64; 256; 1024 ];
  match List.sort compare !med_errs with
  | (b_lo, e_lo) :: rest ->
      let b_hi, e_hi = List.nth rest (List.length rest - 1) in
      Report.note "error ratio %.1f for bucket ratio %.0f (sqrt law predicts %.1f)"
        (e_lo /. Float.max 1e-9 e_hi)
        (float_of_int b_hi /. float_of_int b_lo)
        (sqrt (float_of_int b_hi /. float_of_int b_lo));
      Report.record_verdict (e_lo > e_hi)
        "more buckets give strictly better estimates"
  | [] -> ()

(* A3: s-sparse recovery repetitions: success probability at the capacity
   boundary. *)
let a3 ~quick =
  Report.section ~id:"A3  ablation: s-sparse recovery repetitions"
    ~claim:"(peeling success rate at full load vs repetitions; default 3)";
  let trials = if quick then 40 else 200 in
  let cols = [ ("reps", 5); ("success@s", 10); ("success@s/2", 11) ] in
  Report.table_header cols;
  let rate ~reps ~load =
    let rng = Prng.create 72 in
    let ok = ref 0 in
    for _ = 1 to trials do
      let t = S_sparse.create rng ~s:16 ~reps in
      let nnz = load in
      let idx = Array.init 100_000 (fun i -> i * 7) in
      Prng.shuffle rng idx;
      let vec = Array.map (fun i -> (i, 1 + (i mod 5))) (Array.sub idx 0 nnz) in
      Array.sort compare vec;
      match S_sparse.decode t (S_sparse.sketch t vec) with
      | S_sparse.Ok pairs when pairs = Array.to_list vec -> incr ok
      | _ -> ()
    done;
    float_of_int !ok /. float_of_int trials
  in
  let final = ref 0.0 in
  List.iter
    (fun reps ->
      let full = rate ~reps ~load:16 in
      let half = rate ~reps ~load:8 in
      if reps = 3 then final := full;
      Report.row cols
        [ string_of_int reps; Report.f3 full; Report.f3 half ])
    [ 1; 2; 3; 4 ];
  Report.record_verdict (!final > 0.9)
    "the default (3 reps) recovers a full-load vector >90%% of the time"

(* A4: Algorithm 1's sampling mass rho. *)
let a4 ~quick =
  Report.section ~id:"A4  ablation: Algorithm 1 sampling mass rho"
    ~claim:"(estimator std ~ sqrt(18 eps / rho_const); default 200)";
  let n = 256 in
  let rng = Prng.create 73 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let trials = if quick then 5 else 15 in
  let cols = [ ("rho_c", 6); ("median err", 11); ("q90 err", 8); ("bits", 10) ] in
  Report.table_header cols;
  List.iter
    (fun rho_const ->
      let bits = ref 0 in
      let errs =
        Array.init trials (fun seed ->
            let r =
              Ctx.run ~seed:(seed + 1) (fun ctx ->
                  Lp_protocol.run ctx
                    { Lp_protocol.p = 0.0; eps = 0.25; sketch_groups = 5; rho_const }
                    ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
            in
            bits := r.Ctx.bits;
            Stats.relative_error ~actual ~estimate:r.Ctx.output)
      in
      Report.row cols
        [
          Printf.sprintf "%.0f" rho_const;
          Report.f3 (Stats.median errs);
          Report.f3 (Stats.quantile errs 0.9);
          Report.fbits !bits;
        ])
    (if quick then [ 8.0; 200.0 ] else [ 8.0; 32.0; 200.0; 800.0 ]);
  Report.note "larger rho ships more rows of A in round 2; the round-1 sketch dominates until rho ~ 1000"

let all ~quick =
  a1 ~quick;
  a2 ~quick;
  a3 ~quick;
  a4 ~quick
