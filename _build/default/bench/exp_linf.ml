(* Experiments E6–E8: the ℓ∞ protocols of Section 4. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Linf_binary = Matprod_core.Linf_binary
module Linf_kappa = Matprod_core.Linf_kappa
module Linf_general = Matprod_core.Linf_general

let seeds ~quick = if quick then [ 1 ] else [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)

let e6 ~quick =
  Report.section ~id:"E6  (2+eps)-approx of ||AB||_inf, binary (Algorithm 2 / Thm 4.1)"
    ~claim:
      "3 rounds, O~(n^1.5/eps) bits, factor 2+eps; the trivial protocol \
       pays n^2 bits; Thm 4.4 says factor 2 needs Omega(n^2)";
  let eps = 0.25 in
  let cols =
    [
      ("n", 6); ("actual", 7); ("estimate", 9); ("factor", 7); ("bits", 10);
      ("n^2 bits", 10); ("rounds", 6);
    ]
  in
  Report.table_header cols;
  let ns = if quick then [ 128; 256 ] else [ 128; 256; 512 ] in
  let ratios = ref [] in
  let ok = ref true in
  List.iter
    (fun n ->
      let rng = Prng.create (48 + n) in
      let a, b, _ =
        Workload.planted_pair rng ~n ~density:0.04 ~overlap:(n / 3)
      in
      let actual = float_of_int (Product.linf (Product.bool_product a b)) in
      let ests, bits, rounds =
        List.fold_left
          (fun (es, bs, _) seed ->
            let r =
              Ctx.run ~seed (fun ctx ->
                  Linf_binary.run ctx (Linf_binary.default_params ~eps) ~a ~b)
            in
            ( r.Ctx.output.Linf_binary.estimate :: es,
              float_of_int r.Ctx.bits :: bs,
              r.Ctx.rounds ))
          ([], [], 0) (seeds ~quick)
      in
      let est = Report.median_of ests in
      let bits = int_of_float (Report.median_of bits) in
      let factor = Stats.approx_factor ~actual ~estimate:est in
      if not (est >= actual /. (2.0 +. (2.0 *. eps)) && est <= actual *. (1.0 +. (2.0 *. eps)))
      then ok := false;
      ratios := (n, float_of_int bits /. float_of_int (n * n)) :: !ratios;
      Report.row cols
        [
          string_of_int n;
          Printf.sprintf "%.0f" actual;
          Printf.sprintf "%.0f" est;
          Report.f2 factor;
          Report.fbits bits;
          Report.fbits (n * n);
          string_of_int rounds;
        ])
    ns;
  Report.record_verdict !ok "estimates within the (2+eps) band";
  (match (!ratios, List.rev !ratios) with
  | (n_big, r_big) :: _, (n_small, r_small) :: _ when n_big <> n_small ->
      Report.note "bits/n^2 at n=%d: %.3f; at n=%d: %.3f" n_small r_small n_big
        r_big;
      Report.record_verdict (r_big < r_small)
        "communication grows sub-quadratically (toward n^1.5)"
  | _ -> ())

(* ------------------------------------------------------------------ *)

let e7 ~quick =
  Report.section ~id:"E7  kappa-approx of ||AB||_inf, binary (Algorithm 3 / Thm 4.3)"
    ~claim:"O(1) rounds, O~(n^1.5/kappa) bits, factor kappa (kappa in [4, n])";
  (* kappa large enough that the universe-sampling rate q = alpha/kappa
     actually drops below 1 at this n (alpha ~ 8 ln n ~ 50). *)
  let n = 512 in
  let rng = Prng.create 49 in
  let a, b, _ = Workload.planted_pair rng ~n ~density:0.03 ~overlap:300 in
  let actual = float_of_int (Product.linf (Product.bool_product a b)) in
  Printf.printf "workload: planted pair, n = %d, ||C||_inf = %.0f\n\n" n actual;
  let cols =
    [ ("kappa", 6); ("estimate", 9); ("factor", 7); ("bits", 10); ("rounds", 6) ]
  in
  Report.table_header cols;
  let kappas = if quick then [ 64.0; 256.0 ] else [ 64.0; 128.0; 256.0 ] in
  let ok = ref true in
  let bits_by_kappa = ref [] in
  List.iter
    (fun kappa ->
      let ests, bits, rounds =
        List.fold_left
          (fun (es, bs, _) seed ->
            let r =
              Ctx.run ~seed (fun ctx ->
                  Linf_kappa.run ctx (Linf_kappa.default_params ~kappa) ~a ~b)
            in
            ( r.Ctx.output.Linf_kappa.estimate :: es,
              float_of_int r.Ctx.bits :: bs,
              r.Ctx.rounds ))
          ([], [], 0) (seeds ~quick)
      in
      let est = Report.median_of ests in
      let bits = int_of_float (Report.median_of bits) in
      let factor = Stats.approx_factor ~actual ~estimate:est in
      if factor > 2.0 *. kappa then ok := false;
      bits_by_kappa := (kappa, bits) :: !bits_by_kappa;
      Report.row cols
        [
          Printf.sprintf "%.0f" kappa;
          Printf.sprintf "%.0f" est;
          Report.f2 factor;
          Report.fbits bits;
          string_of_int rounds;
        ])
    kappas;
  Report.record_verdict !ok "every estimate within ~kappa of the truth";
  (match (!bits_by_kappa, List.rev !bits_by_kappa) with
  | (k_hi, b_hi) :: _, (k_lo, b_lo) :: _ when k_hi <> k_lo ->
      Report.note "bits shrink x%.1f as kappa grows x%.0f"
        (float_of_int b_lo /. float_of_int b_hi)
        (k_hi /. k_lo);
      Report.record_verdict (b_hi < b_lo)
        "larger kappa buys strictly less communication"
  | _ -> ())

(* ------------------------------------------------------------------ *)

let e8 ~quick =
  Report.section
    ~id:"E8  kappa-approx of ||AB||_inf, integer matrices (Thm 4.8)"
    ~claim:
      "1 round and O~(n^2/kappa^2) bits; binary vs integer separation: \
       integer needs Omega~(n^2/kappa^2) while binary needs only O~(n^1.5/kappa)";
  let n = 256 in
  let rng = Prng.create 50 in
  let a = Workload.uniform_int rng ~rows:n ~cols:n ~density:0.08 ~max_value:6 in
  let b = Workload.uniform_int rng ~rows:n ~cols:n ~density:0.08 ~max_value:6 in
  let actual = float_of_int (Product.linf (Product.int_product a b)) in
  Printf.printf "workload: uniform integer, n = %d, ||C||_inf = %.0f\n\n" n actual;
  let cols =
    [ ("kappa", 6); ("estimate", 9); ("factor", 7); ("bits", 10); ("rounds", 6) ]
  in
  Report.table_header cols;
  let kappas = if quick then [ 2.0; 8.0 ] else [ 2.0; 4.0; 8.0 ] in
  let ok = ref true in
  let bits_by_kappa = ref [] in
  List.iter
    (fun kappa ->
      let ests, bits, rounds =
        List.fold_left
          (fun (es, bs, _) seed ->
            let r =
              Ctx.run ~seed (fun ctx ->
                  Linf_general.run ctx { Linf_general.kappa } ~a ~b)
            in
            (r.Ctx.output :: es, float_of_int r.Ctx.bits :: bs, r.Ctx.rounds))
          ([], [], 0) (seeds ~quick)
      in
      let est = Report.median_of ests in
      let bits = int_of_float (Report.median_of bits) in
      let factor = Stats.approx_factor ~actual ~estimate:est in
      if not (est >= actual /. 2.0 && est <= 2.0 *. kappa *. actual) then
        ok := false;
      bits_by_kappa := (kappa, bits) :: !bits_by_kappa;
      Report.row cols
        [
          Printf.sprintf "%.0f" kappa;
          Printf.sprintf "%.0f" est;
          Report.f2 factor;
          Report.fbits bits;
          string_of_int rounds;
        ])
    kappas;
  Report.record_verdict !ok "estimates within [actual/2, kappa*actual*2]";
  match (!bits_by_kappa, List.rev !bits_by_kappa) with
  | (k_hi, b_hi) :: _, (k_lo, b_lo) :: _ when k_hi <> k_lo ->
      let shrink = float_of_int b_lo /. float_of_int b_hi in
      let expected = (k_hi /. k_lo) ** 2.0 in
      Report.note "bits shrink x%.1f for kappa x%.0f (1/kappa^2 predicts x%.0f)"
        shrink (k_hi /. k_lo) expected;
      Report.record_verdict (shrink > expected /. 4.0)
        "communication tracks the 1/kappa^2 law"
  | _ -> ()

let all ~quick =
  e6 ~quick;
  e7 ~quick;
  e8 ~quick
