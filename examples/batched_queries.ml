(* The batched query engine: a query optimizer asks several statistics
   about one product C = A·B in a single call, and the engine compiles
   them into a minimal communication schedule — queries sharing a sketch
   family share one exchange, and sketch plans are cached across batches.

   Run with:  dune exec examples/batched_queries.exe *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Engine = Matprod_engine.Engine
module Workload = Matprod_workload.Workload

let pp_group (g : Engine.group_report) =
  Printf.printf "  %-24s queries [%s]  %6d bits  %d rounds%s\n" g.Engine.family
    (String.concat "; " (List.map string_of_int g.Engine.members))
    g.Engine.bits g.Engine.rounds
    (match g.Engine.plan with
    | Engine.Plan_hit -> "  (plan cached)"
    | Engine.Plan_miss | Engine.Not_planned -> "")

let () =
  let rng = Prng.create 11 in
  let n = 300 in
  let a = Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05) in
  let b = Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05) in

  (* What a planner wants to know about C before picking a join order:
     the join size, the per-row cardinalities and the busiest rows (all
     one lp family), plus a couple of sample tuples. *)
  let queries =
    [
      Engine.Norm_pow { p = 0.0; eps = 0.25 };
      Engine.Row_norms { p = 0.0; beta = 0.5 };
      Engine.Top_rows { p = 0.0; beta = 0.5; k = 3 };
      Engine.L0_sample { eps = 0.5; count = 2 };
    ]
  in
  let engine = Engine.create () in
  let run = Ctx.run ~seed:1 (fun ctx -> Engine.run engine ctx ~a ~b queries) in
  let rep = run.Ctx.output in
  Printf.printf "batch of %d queries -> %d exchange groups:\n"
    (List.length queries)
    (List.length rep.Engine.groups);
  List.iter pp_group rep.Engine.groups;
  (match rep.Engine.answers with
  | [| Engine.Scalar norm; Engine.Vector rows; Engine.Ranked top;
       Engine.L0_samples samples |] ->
      Printf.printf "\n||C||_0 ~ %.0f (over %d rows)\n" norm (Array.length rows);
      Printf.printf "busiest rows:";
      List.iter (fun (i, est) -> Printf.printf "  %d (~%.0f)" i est) top;
      Printf.printf "\nsample tuples:";
      Array.iter
        (function
          | Some s ->
              Printf.printf "  (%d, %d)" s.Matprod_core.L0_sampling.row
                s.Matprod_core.L0_sampling.col
          | None -> Printf.printf "  (none)")
        samples;
      print_newline ()
  | _ -> assert false);
  Printf.printf "total: %d bits in %d rounds\n\n" rep.Engine.total_bits
    rep.Engine.total_rounds;

  (* A second batch over a same-shaped pair reuses the cached sketch plan:
     same transcript, no hash-family tabulation. *)
  let a2 = Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05) in
  let b2 = Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05) in
  let run2 =
    Ctx.run ~seed:1 (fun ctx -> Engine.run engine ctx ~a:a2 ~b:b2 queries)
  in
  Printf.printf "second batch (same shapes, warm plan cache):\n";
  List.iter pp_group run2.Ctx.output.Engine.groups;
  let hits, misses = Engine.plan_cache_stats engine in
  Printf.printf "plan cache: %d hits, %d misses across both batches\n" hits misses
