(* Join-size estimation that survives a crashy wire.

   Scenario: the same optimizer as join_size_estimation.ml, but the link
   between the sites is flaky — frames get dropped, and mid-protocol one
   site can die outright. Instead of wrapping the estimator in ad-hoc
   retries, the run goes through the degradation supervisor
   (docs/ROBUSTNESS.md):

     1. journal every delivered message to a write-ahead log;
     2. on a crash, resume from the journal — the paid-for prefix replays
        for zero fresh bits;
     3. if the same seed keeps dying, reseed once;
     4. if all else fails, degrade to the exact one-round protocol
        (more bits, but an answer beats no answer for a planner).

   Run with:  dune exec examples/resilient_join.exe *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Transcript = Matprod_comm.Transcript
module Workload = Matprod_workload.Workload
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor

let () =
  let n = 200 in
  let seed = 11 in
  let rng = Prng.create seed in
  let r = Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:8 ~skew:1.2 in
  let s =
    Bmat.transpose
      (Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:8 ~skew:1.2)
  in
  let exact = float_of_int (Product.nnz (Product.bool_product r s)) in
  let ri = Imat.of_bmat r and si = Imat.of_bmat s in

  (* The estimator: Algorithm 1 at p = 0 (composition-join size). *)
  let estimate ctx =
    Matprod_core.Lp_protocol.run ctx
      (Matprod_core.Lp_protocol.default_params ~p:0.0 ~eps:0.25 ())
      ~a:ri ~b:si
  in
  (* The fallback: ship the column/row sums and count exactly — here the
     trivial full-matrix protocol, n^2 bits but unconditionally correct. *)
  let exact_fallback ctx =
    Matprod_core.Trivial.run_bool ctx ~a:r ~b:s (fun c ->
        float_of_int (Product.nnz c))
  in

  (* A hostile wire: Alice's process dies right after the expensive
     round-1 sketch exchange — but only on the first attempt, the way a
     real transient crash behaves. *)
  let wire ~attempt ctx =
    if attempt = 1 then
      Ctx.install_wire ctx
        ~fault:
          (Fault.crash_only ~party:Transcript.Alice
             ~at:(Fault.After_messages 1))
        ()
  in

  let journal = Filename.temp_file "resilient_join_" ".journal" in
  Printf.printf "exact |R o S| = %.0f; journaling to %s\n\n" exact journal;
  (match
     Supervisor.run ~journal ~wire
       ~fallbacks:[ ("exact", exact_fallback) ]
       ~seed ~protocol:"join-size" estimate
   with
  | Ok report ->
      Printf.printf "estimate %.0f (err %.3f)%s\n" report.Supervisor.output
        (Stats.relative_error ~actual:exact ~estimate:report.Supervisor.output)
        (if report.Supervisor.degraded then "  — DEGRADED" else "");
      Printf.printf
        "answered from rung %s: %d fresh bits over %d attempts, %d bits \
         replayed from the journal instead of resent\n\n"
        (Supervisor.rung_to_string report.Supervisor.rung)
        report.Supervisor.fresh_bits
        (List.length report.Supervisor.attempts)
        report.Supervisor.resume_bits_saved;
      Format.printf "%a@."
        (fun ppf -> Supervisor.pp_report ppf (Printf.sprintf "%.0f"))
        report
  | Error e ->
      Printf.printf "estimation failed: %s\n" (Outcome.error_to_string e));
  try Sys.remove journal with Sys_error _ -> ()
