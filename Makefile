# Convenience targets; all real build logic lives in dune.

.PHONY: all check build test bench bench-json bench-e1 bench-c2 bench-c3 bench-c4 bench-p1 bench-serve bench-diff bench-baseline chaos serve-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 verification: everything must build and every test must pass.
check:
	dune build && dune runtest

bench:
	dune exec bench/main.exe

# Quick machine-readable benchmark sidecars (BENCH_e1.json, BENCH_e9.json,
# BENCH_e10.json) for the headline lp and heavy-hitters experiments.
# See docs/OBSERVABILITY.md for the schema.
bench-json:
	dune exec bench/main.exe -- --quick e1 e9 e10

# E1 pair in quick mode: Algorithm 1 vs the one-round baselines, then the
# batched engine's shared-exchange savings and plan-cache demonstration
# (writes BENCH_e1.json; see docs/API.md).
bench-e1:
	dune exec bench/main.exe -- --quick --no-micro e1

# Crash-recovery experiment: bits saved by journal resume vs rerun as the
# crash position sweeps the transcript (writes BENCH_c2.json).
bench-c2:
	dune exec bench/main.exe -- --no-micro c2

# Fleet chaos experiment: bits/rounds vs fleet size, resume-vs-rerun
# recovery cost for crashed and straggling workers, and the quorum
# degradation ladder (writes BENCH_c3.json; see docs/ROBUSTNESS.md).
bench-c3:
	dune exec bench/main.exe -- --quick --no-micro c3

bench-c4:
	dune exec bench/main.exe -- --quick --no-micro c4

# Plan/apply kernel throughput: seed vs planned sketch builds for every
# family, plus the domain-pool fan-out rate (writes BENCH_p1.json; see
# docs/PERFORMANCE.md).
bench-p1:
	dune exec bench/main.exe -- --no-micro p1

# Serve daemon under load: an in-process daemon faces the closed-loop
# load generator — 16 connections x 8 batches x 16 queries, all pipelined
# before any reads, so >= 1000 queries are measured simultaneously
# in flight. Writes BENCH_s1.json (deterministic digest/bits gated by
# bench-diff; qps and latency percentiles ride along as timing fields).
# See docs/SERVING.md.
bench-serve:
	dune exec bench/main.exe -- --no-micro s1

# Regression gate: rerun the quick bench tier and diff the sidecars
# against the committed baselines (bench/baselines/). Deterministic
# metrics (bits, rounds, counts, errors) must match exactly; timing
# fields are ignored. Exits non-zero on drift — this is what CI runs.
# See docs/OBSERVABILITY.md.
bench-diff:
	dune exec bench/main.exe -- --quick --no-micro e1 c1 c2 c3 c4 p1 s1
	dune exec bench/diff.exe -- --baselines bench/baselines

# Refresh the committed baselines after an INTENDED cost change. Review
# the diff of bench/baselines/ in the same PR as the change it blesses.
bench-baseline:
	dune exec bench/main.exe -- --quick --no-micro e1 c1 c2 c3 c4 p1 s1
	cp BENCH_e1.json BENCH_c1.json BENCH_c2.json BENCH_c3.json BENCH_c4.json BENCH_p1.json BENCH_s1.json bench/baselines/

# Chaos sweep: fault injection (link faults and crashes) over every
# protocol (see docs/ROBUSTNESS.md) plus the C1 retransmission-cost and
# C2 crash-recovery experiments, on a fixed seed matrix.
chaos:
	MATPROD_CHAOS_SEEDS=1,2,3,4,5 dune exec test/test_faults.exe
	dune exec bench/main.exe -- --quick --no-micro c1 c2

# End-to-end daemon smoke: a real `matprod serve` process on a fixed
# port, a loadgen burst against it, then a clean SIGTERM drain (the
# loadgen client retries ECONNREFUSED while the daemon boots, so no
# sleep is needed). This is what CI's serve-smoke job runs.
serve-smoke:
	dune build bin/matprod.exe
	./_build/default/bin/matprod.exe serve --port 7453 & \
	pid=$$!; \
	./_build/default/bin/matprod.exe loadgen --port 7453 \
	  --connections 8 --batches 4 --queries 8; \
	status=$$?; \
	kill -TERM $$pid; \
	wait $$pid && exit $$status

clean:
	dune clean
	rm -f BENCH_*.json
