(* Fleet topology tests: shard partitioning, bit-identical shard sketch
   merges, quorum-degraded answers, and per-link chaos recovery.

   The load-bearing properties (ISSUE 7 / docs/ROBUSTNESS.md):

   - merging k shard sketches reproduces the unsharded sketch bit for bit
     at the same seed, for every plan/apply family — the determinism the
     fleet's shared public coins rest on;
   - a (k-1)-quorum answer equals the full-fleet merge restricted to the
     surviving links, for every registered estimator;
   - any single worker crashed or straggling at k >= 4 ends in [Ok] (after
     journal resume) or a bound-consistent [Degraded] — never an unflagged
     wrong answer.

   MATPROD_FLEET_RANKS=all sweeps the chaos victim over every rank (CI);
   the default hits one representative rank to stay quick. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Transcript = Matprod_comm.Transcript
module Lp = Matprod_sketch.Lp
module Countsketch = Matprod_sketch.Countsketch
module Srht = Matprod_sketch.Srht
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor
module Engine = Matprod_engine.Engine
module Workload = Matprod_workload.Workload
module Shard = Matprod_topology.Shard
module Merge = Matprod_topology.Merge
module Fleet = Matprod_topology.Fleet
module Verify = Matprod_verify.Verify

let check = Alcotest.check

let all_ranks =
  match Sys.getenv_opt "MATPROD_FLEET_RANKS" with
  | Some "all" -> true
  | _ -> false

let chaos_ranks ~workers = if all_ranks then List.init workers Fun.id else [ 1 ]

(* MATPROD_BYZANTINE_MODES=scale,garbage narrows the byzantine sweep. *)
let byzantine_modes =
  match Sys.getenv_opt "MATPROD_BYZANTINE_MODES" with
  | None -> Fault.all_byzantine_modes
  | Some s -> (
      match
        List.filter_map Fault.byzantine_mode_of_string
          (String.split_on_char ',' s)
      with
      | [] -> Fault.all_byzantine_modes
      | modes -> modes)

let bool_pair seed ~n ~density =
  let rng = Prng.create seed in
  ( Workload.uniform_bool rng ~rows:n ~cols:n ~density,
    Workload.uniform_bool rng ~rows:n ~cols:n ~density )

let str c = Format.asprintf "%a" Estimator.pp_comparable c

let with_tmp_journal name k =
  let path = Filename.temp_file ("matprod_fleet_" ^ name ^ "_") ".journal" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f ->
          if
            String.length f >= String.length (Filename.basename path)
            && String.sub f 0 (String.length (Filename.basename path))
               = Filename.basename path
          then Sys.remove (Filename.concat (Filename.dirname path) f))
        (Sys.readdir (Filename.dirname path)))
    (fun () -> k path)

(* ------------------------------------------------------------------ *)
(* Shard *)

let test_shard_ranges () =
  for rows = 1 to 40 do
    for workers = 1 to min rows 7 do
      let rs = Shard.ranges ~rows ~workers in
      check Alcotest.int "count" workers (Array.length rs);
      let covered = Array.fold_left (fun a r -> a + r.Shard.length) 0 rs in
      check Alcotest.int "partition" rows covered;
      Array.iteri
        (fun i r ->
          if i > 0 then
            check Alcotest.int "contiguous" r.Shard.offset
              (rs.(i - 1).Shard.offset + rs.(i - 1).Shard.length))
        rs;
      let lens = Array.map (fun r -> r.Shard.length) rs in
      let mn = Array.fold_left min max_int lens
      and mx = Array.fold_left max 0 lens in
      check Alcotest.bool "balanced" true (mx - mn <= 1);
      check (Alcotest.float 1e-9) "coverage" 1.0
        (Shard.coverage ~rows (Array.to_list rs))
    done
  done;
  Alcotest.check_raises "too many workers"
    (Invalid_argument "Shard.ranges: 5 workers for 3 rows") (fun () ->
      ignore (Shard.ranges ~rows:3 ~workers:5))

let test_shard_slice () =
  let a, _ = bool_pair 3 ~n:13 ~density:0.4 in
  let rs = Shard.ranges ~rows:13 ~workers:4 in
  Array.iter
    (fun r ->
      let s = Shard.slice a r in
      check Alcotest.int "rows" r.Shard.length (Bmat.rows s);
      for j = 0 to r.Shard.length - 1 do
        check Alcotest.bool "row content" true
          (Bmat.row s j = Bmat.row a (r.Shard.offset + j))
      done)
    rs

(* ------------------------------------------------------------------ *)
(* Bit-identical shard sketch merges (satellite 3).

   Worker i builds the SAME sketch family as the unsharded run (same
   seed), plans it, and sketches the rows of its compact shard; placing
   each shard's per-row sketches at their global offsets must reproduce
   the unsharded per-row sketches bit for bit — equivalently, the merge
   adds exact-zero sketches of the rows the shard does not own. *)

let float_bits_equal x y =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let lp_value_equal a b =
  match (a, b) with
  | Lp.F x, Lp.F y ->
      Array.length x = Array.length y
      && Array.for_all2 float_bits_equal x y
  | Lp.Z x, Lp.Z y -> x = y
  | _ -> false

let sparse_rows rng ~rows ~cols ~density =
  Array.init rows (fun _ ->
      let entries = ref [] in
      for c = cols - 1 downto 0 do
        if Prng.float rng < density then
          entries := (c, 1 + Prng.int rng 9) :: !entries
      done;
      Array.of_list !entries)

let qcheck_sketch_merge =
  let open QCheck in
  let families =
    [ ("lp p=0", 0.0); ("lp p=1", 1.0); ("lp p=2", 2.0) ]
  in
  List.map
    (fun (fname, p) ->
      Test.make
        ~name:(Printf.sprintf "shard sketches merge bit-identically (%s)" fname)
        ~count:25
        (pair (int_bound 10_000) (int_range 2 5))
        (fun (seed, workers) ->
          let rows = 11 and cols = 23 in
          let m =
            sparse_rows (Prng.create (seed + 1)) ~rows ~cols ~density:0.3
          in
          let mk () =
            let t =
              Lp.create (Prng.create seed) ~p ~eps:0.5 ~groups:3 ~dim:cols
            in
            (t, Lp.plan t ~dim:cols)
          in
          let t0, plan0 = mk () in
          let unsharded =
            Array.map (fun row -> Lp.sketch_with_plan t0 plan0 row) m
          in
          let merged = Array.make rows None in
          Array.iter
            (fun r ->
              (* each worker instantiates the family fresh at the fleet
                 seed — the shared public coins *)
              let t, plan = mk () in
              for j = 0 to r.Shard.length - 1 do
                merged.(r.Shard.offset + j) <-
                  Some (Lp.sketch_with_plan t plan m.(r.Shard.offset + j))
              done)
            (Shard.ranges ~rows ~workers);
          Array.for_all2
            (fun u m ->
              match m with
              | Some v -> lp_value_equal u v
              | None -> false)
            unsharded merged))
    families
  @ [
      Test.make ~name:"shard sketches merge bit-identically (countsketch)"
        ~count:25
        (pair (int_bound 10_000) (int_range 2 5))
        (fun (seed, workers) ->
          let rows = 11 and cols = 23 in
          let m =
            sparse_rows (Prng.create (seed + 1)) ~rows ~cols ~density:0.3
          in
          let mk () =
            let t = Countsketch.create (Prng.create seed) ~buckets:16 ~reps:3 in
            (t, Countsketch.plan t ~dim:cols)
          in
          let t0, plan0 = mk () in
          let unsharded =
            Array.map (fun row -> Countsketch.sketch_with_plan t0 plan0 row) m
          in
          let ok = ref true in
          Array.iter
            (fun r ->
              let t, plan = mk () in
              for j = 0 to r.Shard.length - 1 do
                let v =
                  Countsketch.sketch_with_plan t plan m.(r.Shard.offset + j)
                in
                if
                  not
                    (Array.for_all2 float_bits_equal v
                       unsharded.(r.Shard.offset + j))
                then ok := false
              done)
            (Shard.ranges ~rows ~workers);
          !ok);
      (* srht: at cols = 23 the default route threshold sits at a few
         nonzeros, so density 0.3 rows exercise the densify+FWHT route
         inside the sharded sketches too. *)
      Test.make ~name:"shard sketches merge bit-identically (srht)" ~count:25
        (pair (int_bound 10_000) (int_range 2 5))
        (fun (seed, workers) ->
          let rows = 11 and cols = 23 in
          let m =
            sparse_rows (Prng.create (seed + 1)) ~rows ~cols ~density:0.3
          in
          let mk () =
            let t =
              Srht.create (Prng.create seed) ~eps:0.5 ~groups:3 ~dim:cols
            in
            (t, Srht.plan t ~dim:cols)
          in
          let t0, plan0 = mk () in
          let unsharded =
            Array.map (fun row -> Srht.sketch_with_plan t0 plan0 row) m
          in
          let ok = ref true in
          Array.iter
            (fun r ->
              let t, plan = mk () in
              for j = 0 to r.Shard.length - 1 do
                let v = Srht.sketch_with_plan t plan m.(r.Shard.offset + j) in
                if
                  not
                    (Array.for_all2 float_bits_equal v
                       unsharded.(r.Shard.offset + j))
                then ok := false
              done)
            (Shard.ranges ~rows ~workers);
          !ok);
    ]

(* ------------------------------------------------------------------ *)
(* Outcome.graded (satellite 2) *)

let test_degradation () =
  let d = Outcome.degradation ~survivors:3 ~parties:4 ~coverage:0.75 in
  check (Alcotest.float 1e-9) "bound factor" (4.0 /. 3.0) d.Outcome.bound_factor;
  check Alcotest.bool "is_degraded" true (Outcome.is_degraded (Outcome.Degraded ((), d)));
  check Alcotest.bool "full" false (Outcome.is_degraded (Outcome.Full ()));
  check Alcotest.int "value" 7 (Outcome.graded_value (Outcome.Degraded (7, d)));
  check Alcotest.int "value full" 7 (Outcome.graded_value (Outcome.Full 7));
  List.iter
    (fun (s, p, c) ->
      match Outcome.degradation ~survivors:s ~parties:p ~coverage:c with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "degradation %d/%d cov %g should be rejected" s p c)
    [ (5, 4, 0.75); (-1, 4, 0.75); (3, 4, 0.0); (3, 4, 1.5) ]

(* ------------------------------------------------------------------ *)
(* Straggle faults (satellite 1) *)

let test_straggle_validation () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad straggle spec should be rejected")
    [
      (fun () -> ignore (Fault.straggle ~delay_s:0.0 ()));
      (fun () -> ignore (Fault.straggle ~delay_s:(-1.0) ()));
      (fun () -> ignore (Fault.straggle ~after:(-1) ~delay_s:1.0 ()));
      (fun () -> ignore (Fault.straggle ~burst:0 ~delay_s:1.0 ()));
    ]

(* A straggle spike larger than the retransmission timeout makes the link
   late but not lossy: the run completes with the fault-free answer while
   accumulating honest simulated waiting — and identically so across
   reruns at the same seed. *)
let test_straggle_reproducible () =
  let a, b = bool_pair 11 ~n:24 ~density:0.2 in
  let packed = Option.get (Registry.find "lp p=1") in
  let clean =
    (Ctx.run ~seed:5 (fun ctx -> Estimator.run_default packed ctx ~a ~b))
      .Ctx.output
  in
  let run () =
    Ctx.run ~seed:5 (fun ctx ->
        Ctx.install_wire ctx
          ~fault:(Fault.straggle_only ~after:1 ~burst:2 ~delay_s:5.0 ())
          ();
        let out = Estimator.run_default packed ctx ~a ~b in
        (out, Ctx.wire_stats ctx, Outcome.diagnostics_of_ctx ctx))
  in
  let (out1, stats1, diag1) = (run ()).Ctx.output in
  let (out2, stats2, diag2) = (run ()).Ctx.output in
  check Alcotest.bool "fault-free answer" true (out1 = clean);
  check Alcotest.int "frames straggled" 2 stats1.Matprod_comm.Channel.faults.Fault.straggled;
  check (Alcotest.float 1e-9) "injected delay" 10.0
    stats1.Matprod_comm.Channel.faults.Fault.injected_delay;
  check Alcotest.bool "waiting accumulated" true (diag1.Outcome.waited >= 10.0);
  check Alcotest.bool "reproducible" true
    (out1 = out2 && stats1 = stats2 && diag1 = diag2)

(* ------------------------------------------------------------------ *)
(* Fleet: chaos wires *)

let kill_both ~after ctx =
  Ctx.install_wire ctx
    ~fault:
      (Fault.create
         ~crashes:
           [
             { Fault.victim = Transcript.Alice; site = Fault.After_messages after };
             { Fault.victim = Transcript.Bob; site = Fault.After_messages after };
           ]
         ~seed:1 [])
    ()

let permanent_crash ~victim ~rank ~attempt:_ ctx =
  if rank = victim then kill_both ~after:0 ctx

let transient_crash ~victim ~rank ~attempt ctx =
  if rank = victim && attempt = 1 then kill_both ~after:1 ctx

(* [after:0] spikes the very first message's frames, so even one-message
   protocols (lp oneround) go late. *)
let transient_straggle ~victim ~rank ~attempt ctx =
  if rank = victim && attempt = 1 then
    Ctx.install_wire ctx
      ~fault:(Fault.straggle_only ~after:0 ~burst:2 ~delay_s:5.0 ())
      ()

(* ------------------------------------------------------------------ *)
(* Fleet: exactness against ground truth *)

let test_fleet_exact () =
  let a, b = bool_pair 21 ~n:19 ~density:0.3 in
  let c = Product.bool_product a b in
  let l1 = Product.l1 (Product.int_product (Imat.of_bmat a) (Imat.of_bmat b)) in
  let cfg = Fleet.config ~workers:4 ~seed:9 () in
  (match Fleet.run cfg (Option.get (Registry.find "l1_exact")) ~a ~b with
  | Ok rep -> (
      match rep.Fleet.answer with
      | Outcome.Full (Estimator.Number x) ->
          check (Alcotest.float 1e-9) "l1 exact over fleet" (float_of_int l1) x
      | _ -> Alcotest.fail "expected Full Number")
  | Error e -> Alcotest.failf "l1_exact fleet: %s" (Outcome.error_to_string e));
  match Fleet.run cfg (Option.get (Registry.find "trivial")) ~a ~b with
  | Ok rep -> (
      match rep.Fleet.answer with
      | Outcome.Full (Estimator.Number x) ->
          check (Alcotest.float 1e-9) "l0 exact over fleet"
            (float_of_int (Product.nnz c))
            x
      | _ -> Alcotest.fail "expected Full Number")
  | Error e -> Alcotest.failf "trivial fleet: %s" (Outcome.error_to_string e)

(* The full gallery: every registered estimator answers over a clean
   k = 4 fleet with a Full, deterministic answer. *)
let test_fleet_gallery () =
  let a, b = bool_pair 31 ~n:17 ~density:0.35 in
  let cfg = Fleet.config ~workers:4 ~seed:7 () in
  List.iter
    (fun packed ->
      let name = Estimator.name packed in
      match (Fleet.run cfg packed ~a ~b, Fleet.run cfg packed ~a ~b) with
      | Ok r1, Ok r2 ->
          check Alcotest.bool (name ^ ": full") false
            (Outcome.is_degraded r1.Fleet.answer);
          check Alcotest.int (name ^ ": survivors") 4 r1.Fleet.survivors;
          check Alcotest.bool (name ^ ": deterministic") true
            (r1.Fleet.answer = r2.Fleet.answer)
      | Error e, _ | _, Error e ->
          Alcotest.failf "%s: %s" name (Outcome.error_to_string e))
    (Registry.all ())

(* (k-1)-quorum: for EVERY estimator, permanently crash one worker at
   quorum k-1 and require a Degraded answer equal to the full-fleet merge
   restricted to the surviving links. *)
let test_quorum_equivalence () =
  let a, b = bool_pair 41 ~n:17 ~density:0.35 in
  let workers = 4 in
  let cfg = Fleet.config ~workers ~quorum:(workers - 1) ~seed:7 () in
  List.iter
    (fun packed ->
      let name = Estimator.name packed in
      let full =
        match Fleet.run cfg packed ~a ~b with
        | Ok r -> r
        | Error e -> Alcotest.failf "%s full: %s" name (Outcome.error_to_string e)
      in
      List.iter
        (fun victim ->
          let expected =
            Merge.merge ~name ~seed:7
              (List.filter_map
                 (fun (l : Fleet.link_report) ->
                   if l.Fleet.rank = victim then None
                   else
                     match l.Fleet.answer with
                     | Ok value ->
                         Some
                           { Merge.rank = l.Fleet.rank; range = l.Fleet.range; value }
                     | Error _ -> None)
                 full.Fleet.links)
          in
          let wire ~rank ~replica:_ ~attempt ctx =
            permanent_crash ~victim ~rank ~attempt ctx
          in
          match Fleet.run ~wire cfg packed ~a ~b with
          | Error e ->
              Alcotest.failf "%s victim %d: %s" name victim
                (Outcome.error_to_string e)
          | Ok rep -> (
              check Alcotest.int
                (Printf.sprintf "%s victim %d survivors" name victim)
                (workers - 1) rep.Fleet.survivors;
              match rep.Fleet.answer with
              | Outcome.Full _ ->
                  Alcotest.failf "%s victim %d: lost link must degrade" name
                    victim
              | Outcome.Degraded (v, d) ->
                  check Alcotest.int "degradation survivors" (workers - 1)
                    d.Outcome.survivors;
                  check Alcotest.int "degradation parties" workers
                    d.Outcome.parties;
                  check (Alcotest.float 1e-9) "bound factor"
                    (1.0 /. d.Outcome.coverage)
                    d.Outcome.bound_factor;
                  if v <> expected then
                    Alcotest.failf "%s victim %d: got %s want %s" name victim
                      (str v) (str expected)))
        (chaos_ranks ~workers))
    (Registry.all ())

(* Chaos gallery: every estimator, one worker hit by a transient crash or
   a straggle spike, with per-link journals armed. The ladder must bring
   the fleet back to the clean Full answer — resume replays the journaled
   prefix at the same seed, so even sampling estimators reproduce. *)
let test_chaos_gallery () =
  let a, b = bool_pair 51 ~n:17 ~density:0.35 in
  let workers = 4 in
  with_tmp_journal "gallery" @@ fun base ->
  let lp = { Fleet.default_link_policy with Fleet.deadline_s = Some 0.5 } in
  let cfg =
    Fleet.config ~workers ~quorum:(workers - 1) ~link_policy:lp ~journal:base
      ~seed:7 ()
  in
  let chaos =
    [ ("transient-crash", transient_crash); ("straggle", transient_straggle) ]
  in
  List.iter
    (fun packed ->
      let name = Estimator.name packed in
      let clean =
        match Fleet.run cfg packed ~a ~b with
        | Ok r -> Outcome.graded_value r.Fleet.answer
        | Error e -> Alcotest.failf "%s clean: %s" name (Outcome.error_to_string e)
      in
      List.iter
        (fun victim ->
          List.iter
            (fun (kind, inject) ->
              let wire ~rank ~replica:_ ~attempt ctx =
                inject ~victim ~rank ~attempt ctx
              in
              match Fleet.run ~wire cfg packed ~a ~b with
              | Error e ->
                  Alcotest.failf "%s %s victim %d: %s" name kind victim
                    (Outcome.error_to_string e)
              | Ok rep ->
                  (* never an unflagged wrong answer: a Full answer must
                     equal the clean fleet's, a Degraded one must say so *)
                  (match rep.Fleet.answer with
                  | Outcome.Full v ->
                      if v <> clean then
                        Alcotest.failf "%s %s victim %d: got %s want %s" name
                          kind victim (str v) (str clean)
                  | Outcome.Degraded _ ->
                      Alcotest.failf
                        "%s %s victim %d: transient chaos must recover" name
                        kind victim);
                  if kind = "straggle" then begin
                    let l = List.nth rep.Fleet.links victim in
                    check Alcotest.bool
                      (Printf.sprintf "%s victim %d straggled flag" name victim)
                      true l.Fleet.straggled;
                    check Alcotest.bool
                      (Printf.sprintf "%s victim %d retried" name victim)
                      true
                      (List.length l.Fleet.attempts >= 2)
                  end)
            chaos)
        (chaos_ranks ~workers))
    (Registry.all ())

(* Straggler economics: the resumed attempt replays the journaled prefix
   for free, so recovery costs strictly less than a fresh rerun. *)
(* Byzantine gallery: every estimator × every corruption mode, one lying
   worker — replica 0 of the victim rank delivers a perfectly framed
   wrong answer (CRC/ARQ pass by construction). With the validators on
   and a second replica per shard the fleet must never answer silently
   out of bound: either the lie is quarantined (suspects name the victim
   and the merged answer is re-built from the honest survivor), or the
   whole replica group is indicted and the answer degrades/fails typed,
   or the perturbation was within the family's own consistency bound.
   Clean control first: replicas + verify on an honest fleet must
   produce a Full answer with zero suspects (no false quarantines). *)
let test_byzantine_gallery () =
  let a, b = bool_pair 61 ~n:17 ~density:0.35 in
  let workers = 3 in
  let cfg =
    Fleet.config ~workers ~quorum:(workers - 1) ~replicas:2 ~verify:true
      ~seed:7 ()
  in
  let consistent summary x y =
    match Verify.vote summary [ (0, x); (1, y) ] with
    | Some v -> v.Verify.outvoted = []
    | None -> false
  in
  List.iter
    (fun packed ->
      let name = Estimator.name packed in
      let summary = Verify.summarize ~name ~a ~b in
      let clean =
        match Fleet.run cfg packed ~a ~b with
        | Error e ->
            Alcotest.failf "%s clean: %s" name (Outcome.error_to_string e)
        | Ok rep ->
            check Alcotest.bool (name ^ ": clean full") false
              (Outcome.is_degraded rep.Fleet.answer);
            check Alcotest.int (name ^ ": clean suspects") 0
              (List.length rep.Fleet.suspects);
            Outcome.graded_value rep.Fleet.answer
      in
      (match Verify.family_of name with
      | Verify.Exact -> (
          (* replica 0 runs at the fleet seed, so replication must not
             move a deterministic answer *)
          match Fleet.run (Fleet.config ~workers ~seed:7 ()) packed ~a ~b with
          | Ok rep ->
              if Outcome.graded_value rep.Fleet.answer <> clean then
                Alcotest.failf "%s: replicas changed a deterministic answer"
                  name
          | Error e ->
              Alcotest.failf "%s r=1: %s" name (Outcome.error_to_string e))
      | _ -> ());
      List.iter
        (fun victim ->
          List.iter
            (fun mode ->
              let label =
                Printf.sprintf "%s/%s victim %d" name
                  (Fault.byzantine_mode_to_string mode)
                  victim
              in
              let wire ~rank ~replica ~attempt ctx =
                if rank = victim && replica = 0 && attempt = 1 then
                  Ctx.install_wire ctx
                    ~fault:
                      (Fault.byzantine_only ~seed:(91 * (victim + 1)) ~mode ())
                    ()
              in
              match Fleet.run ~wire cfg packed ~a ~b with
              | Error (Outcome.Byzantine_detected _) ->
                  (* whole replica group indicted: typed, never silent *)
                  ()
              | Error e ->
                  Alcotest.failf "%s: %s" label (Outcome.error_to_string e)
              | Ok rep -> (
                  List.iter
                    (fun (s : Fleet.suspect) ->
                      check Alcotest.int (label ^ ": suspect rank") victim
                        s.Fleet.s_rank)
                    rep.Fleet.suspects;
                  match rep.Fleet.answer with
                  | Outcome.Degraded _ -> () (* flagged, quorum ladder took over *)
                  | Outcome.Full v ->
                      (* flagged or not, a Full answer must stay within the
                         family's own bound of the clean fleet's answer *)
                      if not (v = clean || consistent summary clean v) then
                        Alcotest.failf
                          "%s: unflagged answer %s outside bound (clean %s)"
                          label (str v) (str clean)))
            byzantine_modes)
        (chaos_ranks ~workers))
    (Registry.all ())

let test_straggler_resume_saves_bits () =
  let a, b = bool_pair 61 ~n:24 ~density:0.3 in
  let packed = Option.get (Registry.find "lp p=1") in
  with_tmp_journal "straggler" @@ fun base ->
  let lp = { Fleet.default_link_policy with Fleet.deadline_s = Some 0.5 } in
  let cfg = Fleet.config ~workers:4 ~link_policy:lp ~journal:base ~seed:7 () in
  let wire ~rank ~replica:_ ~attempt ctx =
    transient_straggle ~victim:1 ~rank ~attempt ctx
  in
  match Fleet.run ~wire cfg packed ~a ~b with
  | Error e -> Alcotest.failf "straggler fleet: %s" (Outcome.error_to_string e)
  | Ok rep ->
      let l = List.nth rep.Fleet.links 1 in
      check Alcotest.bool "straggled" true l.Fleet.straggled;
      let resumed =
        List.exists
          (fun (at : Supervisor.attempt) -> at.Supervisor.rung = Supervisor.Resume)
          l.Fleet.attempts
      in
      check Alcotest.bool "recovered via resume" true resumed;
      check Alcotest.bool "resume replayed bits" true
        (rep.Fleet.resume_bits_saved > 0)

let test_quorum_sweep () =
  let a, b = bool_pair 71 ~n:16 ~density:0.3 in
  let packed = Option.get (Registry.find "lp p=0") in
  let workers = 4 in
  let wire ~rank ~replica:_ ~attempt ctx =
    permanent_crash ~victim:1 ~rank ~attempt ctx;
    permanent_crash ~victim:3 ~rank ~attempt ctx
  in
  List.iter
    (fun (quorum, expect_ok) ->
      let cfg = Fleet.config ~workers ~quorum ~seed:7 () in
      match Fleet.run ~wire cfg packed ~a ~b with
      | Ok rep ->
          if not expect_ok then
            Alcotest.failf "quorum %d should fail with 2 dead links" quorum;
          check Alcotest.int "survivors" 2 rep.Fleet.survivors;
          check Alcotest.bool "degraded" true
            (Outcome.is_degraded rep.Fleet.answer);
          check (Alcotest.float 1e-9) "coverage" 0.5 rep.Fleet.coverage
      | Error e ->
          if expect_ok then
            Alcotest.failf "quorum %d should answer: %s" quorum
              (Outcome.error_to_string e);
          (match e with
          | Outcome.Crashed _ -> ()
          | other ->
              Alcotest.failf "expected Crashed, got %s"
                (Outcome.error_to_string other)))
    [ (2, true); (3, false); (4, false) ]

(* ------------------------------------------------------------------ *)
(* Fleet: batched engine queries *)

let batch_queries =
  [
    Engine.Norm_pow { p = 1.0; eps = 0.25 };
    Engine.Row_norms { p = 0.0; beta = 0.5 };
    Engine.Top_rows { p = 1.0; beta = 0.5; k = 3 };
    Engine.L0_sample { eps = 0.25; count = 2 };
    Engine.Heavy_hitters { phi = 0.05; eps = 0.02 };
    Engine.Exact_product;
  ]

let dense_product a b =
  let ai = Imat.to_dense (Imat.of_bmat a) and bi = Imat.to_dense (Imat.of_bmat b) in
  let n = Array.length ai
  and m = Array.length bi.(0)
  and k = Array.length bi in
  let out = ref [] in
  for r = n - 1 downto 0 do
    for c = m - 1 downto 0 do
      let v = ref 0 in
      for t = 0 to k - 1 do
        v := !v + (ai.(r).(t) * bi.(t).(c))
      done;
      if !v <> 0 then out := (r, c, !v) :: !out
    done
  done;
  !out

let test_batch_fleet () =
  let a, b = bool_pair 81 ~n:17 ~density:0.35 in
  let engine = Engine.create () in
  let cfg = Fleet.config ~workers:4 ~seed:7 () in
  match Fleet.run_batch cfg engine batch_queries ~a ~b with
  | Error e -> Alcotest.failf "batch fleet: %s" (Outcome.error_to_string e)
  | Ok rep ->
      check Alcotest.int "survivors" 4 rep.Fleet.batch_survivors;
      let answers = Outcome.graded_value rep.Fleet.batch_answers in
      check Alcotest.int "answer count" (List.length batch_queries)
        (Array.length answers);
      (match answers.(1) with
      | Engine.Vector v ->
          check Alcotest.int "row norms length" 17 (Array.length v);
          check Alcotest.bool "no gaps at full fleet" false
            (Array.exists Float.is_nan v)
      | _ -> Alcotest.fail "row norms shape");
      (match answers.(5) with
      | Engine.Shares (entries, []) ->
          check Alcotest.bool "exact product reconstructed" true
            (entries = dense_product a b)
      | _ -> Alcotest.fail "exact product shape");
      check Alcotest.bool "batch bits counted" true (rep.Fleet.batch_fresh_bits > 0)

let test_batch_fleet_degraded () =
  let a, b = bool_pair 91 ~n:16 ~density:0.35 in
  let engine = Engine.create () in
  let cfg = Fleet.config ~workers:4 ~quorum:3 ~seed:7 () in
  let wire ~rank ~replica:_ ~attempt ctx = permanent_crash ~victim:2 ~rank ~attempt ctx in
  match Fleet.run_batch ~wire cfg engine batch_queries ~a ~b with
  | Error e -> Alcotest.failf "degraded batch: %s" (Outcome.error_to_string e)
  | Ok rep -> (
      check Alcotest.int "survivors" 3 rep.Fleet.batch_survivors;
      check Alcotest.bool "degraded" true
        (Outcome.is_degraded rep.Fleet.batch_answers);
      let answers = Outcome.graded_value rep.Fleet.batch_answers in
      match answers.(1) with
      | Engine.Vector v ->
          let dead = List.nth rep.Fleet.batch_links 2 in
          let r = dead.Fleet.b_range in
          check Alcotest.bool "dead shard rows are nan" true
            (Array.for_all Float.is_nan
               (Array.sub v r.Shard.offset r.Shard.length));
          check Alcotest.bool "surviving rows answered" false
            (Array.exists Float.is_nan (Array.sub v 0 r.Shard.offset))
      | _ -> Alcotest.fail "row norms shape")

(* ------------------------------------------------------------------ *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_sketch_merge in
  Alcotest.run "topology"
    [
      ( "shard",
        [
          Alcotest.test_case "ranges partition" `Quick test_shard_ranges;
          Alcotest.test_case "slice" `Quick test_shard_slice;
        ] );
      ("sketch merge", qsuite);
      ( "graded",
        [ Alcotest.test_case "degradation" `Quick test_degradation ] );
      ( "straggle",
        [
          Alcotest.test_case "validation" `Quick test_straggle_validation;
          Alcotest.test_case "reproducible lateness" `Quick
            test_straggle_reproducible;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "exact answers" `Quick test_fleet_exact;
          Alcotest.test_case "gallery k=4" `Slow test_fleet_gallery;
          Alcotest.test_case "quorum equivalence" `Slow test_quorum_equivalence;
          Alcotest.test_case "chaos gallery" `Slow test_chaos_gallery;
          Alcotest.test_case "byzantine gallery" `Slow test_byzantine_gallery;
          Alcotest.test_case "straggler resume" `Quick
            test_straggler_resume_saves_bits;
          Alcotest.test_case "quorum sweep" `Quick test_quorum_sweep;
        ] );
      ( "batch",
        [
          Alcotest.test_case "full fleet" `Quick test_batch_fleet;
          Alcotest.test_case "degraded fleet" `Quick test_batch_fleet_degraded;
        ] );
    ]
