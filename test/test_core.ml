(* End-to-end tests of the paper's protocols against exact ground truth:
   approximation guarantees, round counts, reproducibility, and input
   validation. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Workload = Matprod_workload.Workload

module Common = Matprod_core.Common
module Lp_protocol = Matprod_core.Lp_protocol
module Lp_oneround = Matprod_core.Lp_oneround
module L1_exact = Matprod_core.L1_exact
module L1_sampling = Matprod_core.L1_sampling
module L0_sampling = Matprod_core.L0_sampling
module Linf_binary = Matprod_core.Linf_binary
module Linf_kappa = Matprod_core.Linf_kappa
module Linf_general = Matprod_core.Linf_general
module Matprod_protocol = Matprod_core.Matprod_protocol
module Hh_general = Matprod_core.Hh_general
module Hh_binary = Matprod_core.Hh_binary
module Cohen_baseline = Matprod_core.Cohen_baseline
module Trivial = Matprod_core.Trivial

let check = Alcotest.check

let bool_pair rng ~n ~density =
  ( Workload.uniform_bool rng ~rows:n ~cols:n ~density,
    Workload.uniform_bool rng ~rows:n ~cols:n ~density )

(* ------------------------------------------------------------------ *)
(* Common helpers *)

let test_entry_map () =
  let m = Common.Entry_map.create () in
  Common.Entry_map.add m 1 2 5;
  Common.Entry_map.add m 1 2 (-5);
  check Alcotest.int "cancel" 0 (Common.Entry_map.nnz m);
  Common.Entry_map.add m 0 0 3;
  Common.Entry_map.add m 4 4 (-7);
  check Alcotest.int "linf" 7 (Common.Entry_map.linf m);
  check Alcotest.int "get" 3 (Common.Entry_map.get m 0 0);
  Common.Entry_map.add_outer m [| (1, 2) |] [| (3, 4) |];
  check Alcotest.int "outer" 8 (Common.Entry_map.get m 1 3)

let test_row_times_matrix () =
  let b = Imat.of_dense [| [| 1; 0 |]; [| 2; 3 |] |] in
  let row = [| (0, 2); (1, 1) |] in
  (* [2,1] * [[1,0],[2,3]] = [4,3] *)
  check Alcotest.bool "product row" true
    (Common.row_times_matrix row b = [| 4; 3 |])

let test_group_of () =
  check Alcotest.int "small" 0 (Common.group_of ~beta:0.5 0.5);
  check Alcotest.int "one" 0 (Common.group_of ~beta:0.5 1.0);
  (* (1.5)^2 = 2.25 -> group 2 *)
  check Alcotest.int "geometric" 2 (Common.group_of ~beta:0.5 2.25)

(* ------------------------------------------------------------------ *)
(* Algorithm 1 (Lp_protocol) *)

let lp_accuracy_run ~p ~eps ~n ~density ~seed =
  let rng = Prng.create seed in
  let a, b = bool_pair rng ~n ~density in
  let actual = Product.lp_pow (Product.bool_product a b) ~p in
  let r =
    Ctx.run ~seed:(seed + 1000) (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~p ~eps ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  (actual, r)

let test_lp_accuracy_all_p () =
  List.iter
    (fun p ->
      let failures = ref 0 in
      for seed = 1 to 8 do
        let actual, r = lp_accuracy_run ~p ~eps:0.25 ~n:80 ~density:0.08 ~seed in
        let err = Stats.relative_error ~actual ~estimate:r.Ctx.output in
        if err > 0.3 then incr failures
      done;
      check Alcotest.bool
        (Printf.sprintf "p=%.1f accurate on most seeds" p)
        true (!failures <= 1))
    [ 0.0; 0.5; 1.0; 2.0 ]

let test_lp_two_rounds () =
  let _, r = lp_accuracy_run ~p:0.0 ~eps:0.5 ~n:40 ~density:0.1 ~seed:3 in
  check Alcotest.int "2 rounds" 2 r.Ctx.rounds

let test_lp_reproducible () =
  let _, r1 = lp_accuracy_run ~p:1.0 ~eps:0.5 ~n:40 ~density:0.1 ~seed:4 in
  let _, r2 = lp_accuracy_run ~p:1.0 ~eps:0.5 ~n:40 ~density:0.1 ~seed:4 in
  check (Alcotest.float 0.0) "same output" r1.Ctx.output r2.Ctx.output;
  check Alcotest.int "same bits" r1.Ctx.bits r2.Ctx.bits

let test_lp_zero_product () =
  (* A has only left-half columns, B only right-half rows: C = 0. *)
  let n = 30 in
  let rng = Prng.create 5 in
  let a =
    Bmat.filter_entries
      (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.3)
      (fun _ k -> k < n / 2)
  in
  let b =
    Bmat.filter_entries
      (Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.3)
      (fun k _ -> k >= n / 2)
  in
  let r =
    Ctx.run ~seed:6 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~p:0.0 ~eps:0.5 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "near zero" true (r.Ctx.output < 1.0)

let test_lp_rejects_bad_params () =
  let a = Imat.of_dense [| [| 1 |] |] in
  Alcotest.check_raises "bad p" (Invalid_argument "Lp_protocol: p must be in [0,2]")
    (fun () ->
      ignore
        (Ctx.run ~seed:1 (fun ctx ->
             Lp_protocol.run ctx
               { p = 3.0; eps = 0.5; sketch_groups = 3; rho_const = 10.0 }
               ~a ~b:a)));
  let b2 = Imat.of_dense [| [| 1; 2 |] |] in
  Alcotest.check_raises "dims" (Invalid_argument "Lp_protocol: dims") (fun () ->
      ignore
        (Ctx.run ~seed:1 (fun ctx ->
             Lp_protocol.run ctx (Lp_protocol.default_params ~eps:0.5 ()) ~a:b2 ~b:b2)))

let test_lp_integer_matrices () =
  let rng = Prng.create 7 in
  let a = Workload.uniform_int rng ~rows:60 ~cols:60 ~density:0.1 ~max_value:4 in
  let b = Workload.uniform_int rng ~rows:60 ~cols:60 ~density:0.1 ~max_value:4 in
  let actual = Product.lp_pow (Product.int_product a b) ~p:2.0 in
  let failures = ref 0 in
  for seed = 1 to 5 do
    let r =
      Ctx.run ~seed (fun ctx ->
          Lp_protocol.run ctx (Lp_protocol.default_params ~p:2.0 ~eps:0.25 ()) ~a ~b)
    in
    if Stats.relative_error ~actual ~estimate:r.Ctx.output > 0.35 then
      incr failures
  done;
  check Alcotest.bool "integer p=2 accurate" true (!failures <= 1)

let test_lp_row_norm_subprotocol () =
  let rng = Prng.create 8 in
  let a, b = bool_pair rng ~n:50 ~density:0.12 in
  let c = Product.bool_product a b in
  let actual = Product.row_lp_pow c ~p:1.0 in
  let r =
    Ctx.run ~seed:9 (fun ctx ->
        Lp_protocol.estimate_row_norms ctx
          (Lp_protocol.default_params ~p:1.0 ~eps:0.3 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  let bad = ref 0 in
  Array.iteri
    (fun i est ->
      if actual.(i) > 5.0 then
        if Stats.relative_error ~actual:actual.(i) ~estimate:est > 0.5 then
          incr bad)
    r.Ctx.output;
  check Alcotest.bool "most row norms in range" true (!bad <= 3)

(* ------------------------------------------------------------------ *)
(* One-round baseline *)

let test_oneround_accuracy_and_rounds () =
  let rng = Prng.create 10 in
  let a, b = bool_pair rng ~n:60 ~density:0.1 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let failures = ref 0 in
  let rounds = ref 0 in
  for seed = 1 to 5 do
    let r =
      Ctx.run ~seed (fun ctx ->
          Lp_oneround.run ctx
            (Lp_oneround.default_params ~p:0.0 ~eps:0.25 ())
            ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    rounds := r.Ctx.rounds;
    if Stats.relative_error ~actual ~estimate:r.Ctx.output > 0.3 then
      incr failures
  done;
  check Alcotest.int "1 round" 1 !rounds;
  check Alcotest.bool "accurate" true (!failures <= 1)

let test_oneround_costs_more_than_tworound () =
  (* The headline separation: at equal eps, 1-round pays 1/eps^2 while
     Algorithm 1 pays 1/eps. Check measured bytes reflect it. *)
  let rng = Prng.create 11 in
  let a, b = bool_pair rng ~n:64 ~density:0.1 in
  let eps = 0.1 in
  let one =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_oneround.run ctx
          (Lp_oneround.default_params ~p:0.0 ~eps ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  let two =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~p:0.0 ~eps ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "one-round strictly more expensive" true
    (one.Ctx.bits > two.Ctx.bits)

(* ------------------------------------------------------------------ *)
(* Remark 2 / Remark 3 *)

let test_l1_exact () =
  let rng = Prng.create 12 in
  let a, b = bool_pair rng ~n:70 ~density:0.15 in
  let actual = Product.l1 (Product.bool_product a b) in
  let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a ~b) in
  check Alcotest.int "exact" actual r.Ctx.output;
  check Alcotest.int "1 round" 1 r.Ctx.rounds;
  (* Integer version *)
  let ai = Workload.uniform_int rng ~rows:30 ~cols:30 ~density:0.2 ~max_value:5 in
  let bi = Workload.uniform_int rng ~rows:30 ~cols:30 ~density:0.2 ~max_value:5 in
  let actual_i = Product.l1 (Product.int_product ai bi) in
  let ri = Ctx.run ~seed:2 (fun ctx -> L1_exact.run ctx ~a:ai ~b:bi) in
  check Alcotest.int "integer exact" actual_i ri.Ctx.output

let test_l1_exact_rejects_negative () =
  let m = Imat.of_dense [| [| -1 |] |] in
  Alcotest.check_raises "negative"
    (Invalid_argument "L1_exact: requires non-negative matrices") (fun () ->
      ignore (Ctx.run ~seed:1 (fun ctx -> L1_exact.run ctx ~a:m ~b:m)))

let test_l1_sampling_distribution () =
  (* Small product; empirical sample distribution vs C/||C||_1. *)
  let a = Bmat.of_dense [| [| 1; 1; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 0 |] |] in
  let b = Bmat.of_dense [| [| 1; 0; 0 |]; [| 1; 1; 0 |]; [| 0; 0; 0 |] |] in
  let c = Product.bool_product a b in
  let l1 = Product.l1 c in
  let counts = Hashtbl.create 8 in
  let trials = 3000 in
  for seed = 1 to trials do
    let r =
      Ctx.run ~seed (fun ctx ->
          L1_sampling.run ctx ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    match r.Ctx.output with
    | Some s ->
        let key = (s.L1_sampling.row, s.L1_sampling.col) in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    | None -> Alcotest.fail "sampler returned None on nonzero product"
  done;
  (* Compare to the exact distribution. *)
  Product.iter c (fun i j v ->
      let want = float_of_int v /. float_of_int l1 in
      let got =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts (i, j)))
        /. float_of_int trials
      in
      check Alcotest.bool
        (Printf.sprintf "entry (%d,%d) frequency" i j)
        true
        (Float.abs (got -. want) < 0.05));
  (* Nothing outside the support is ever sampled. *)
  Hashtbl.iter
    (fun (i, j) _ ->
      check Alcotest.bool "in support" true (Product.get c i j > 0))
    counts

let test_l1_sampling_zero () =
  let z = Imat.zero ~rows:5 ~cols:5 in
  let r = Ctx.run ~seed:1 (fun ctx -> L1_sampling.run ctx ~a:z ~b:z) in
  check Alcotest.bool "none" true (r.Ctx.output = None)

(* ------------------------------------------------------------------ *)
(* Theorem 3.2 (l0 sampling) *)

let test_l0_sampling_support_and_rounds () =
  let rng = Prng.create 13 in
  let a, b = bool_pair rng ~n:48 ~density:0.08 in
  let c = Product.bool_product a b in
  if Product.nnz c = 0 then Alcotest.fail "test workload degenerate";
  let ok = ref 0 and fails = ref 0 in
  let rounds = ref 0 in
  for seed = 1 to 30 do
    let r =
      Ctx.run ~seed (fun ctx ->
          L0_sampling.run ctx
            (L0_sampling.default_params ~eps:0.3)
            ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    rounds := r.Ctx.rounds;
    match r.Ctx.output with
    | Some s ->
        let v = Product.get c s.L0_sampling.row s.L0_sampling.col in
        check Alcotest.int "recovered value exact" v s.L0_sampling.value;
        if v > 0 then incr ok
    | None -> incr fails
  done;
  check Alcotest.int "1 round" 1 !rounds;
  check Alcotest.bool "mostly succeeds" true (!ok >= 26)

let test_l0_sampling_zero_product () =
  let z = Imat.zero ~rows:10 ~cols:10 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        L0_sampling.run ctx (L0_sampling.default_params ~eps:0.5) ~a:z ~b:z)
  in
  check Alcotest.bool "none" true (r.Ctx.output = None)

let test_l0_sampling_run_many () =
  let rng = Prng.create 32 in
  let a, b = bool_pair rng ~n:40 ~density:0.1 in
  let c = Product.bool_product a b in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        L0_sampling.run_many ctx
          (L0_sampling.default_params ~eps:0.3)
          ~count:8 ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.int "one speaking phase" 1 r.Ctx.rounds;
  let got = ref 0 in
  Array.iter
    (function
      | Some s ->
          incr got;
          check Alcotest.int "value exact"
            (Product.get c s.L0_sampling.row s.L0_sampling.col)
            s.L0_sampling.value
      | None -> ())
    r.Ctx.output;
  check Alcotest.bool "most samples land" true (!got >= 6);
  (* Batched cost must be well below 8 independent runs. *)
  let single =
    Ctx.run ~seed:1 (fun ctx ->
        L0_sampling.run ctx
          (L0_sampling.default_params ~eps:0.3)
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "amortised" true (r.Ctx.bits < 8 * single.Ctx.bits)

let test_l0_sampling_near_uniform () =
  let a = Bmat.of_dense [| [| 1; 0 |]; [| 1; 1 |] |] in
  let b = Bmat.of_dense [| [| 1; 1 |]; [| 0; 1 |] |] in
  (* C = [[1,1],[1,2]]: support = 4 entries. *)
  let counts = Hashtbl.create 4 in
  let trials = 1200 in
  let got = ref 0 in
  for seed = 1 to trials do
    let r =
      Ctx.run ~seed (fun ctx ->
          L0_sampling.run ctx
            (L0_sampling.default_params ~eps:0.4)
            ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    match r.Ctx.output with
    | Some s ->
        incr got;
        let key = (s.L0_sampling.row, s.L0_sampling.col) in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    | None -> ()
  done;
  check Alcotest.bool "mostly succeeds" true (!got > trials * 8 / 10);
  Hashtbl.iter
    (fun _ c ->
      let frac = float_of_int c /. float_of_int !got in
      check Alcotest.bool "roughly uniform (1/4 each)" true
        (frac > 0.15 && frac < 0.35))
    counts;
  check Alcotest.int "all four entries seen" 4 (Hashtbl.length counts)

(* ------------------------------------------------------------------ *)
(* Algorithm 2 (Linf binary) *)

let test_linf_binary_planted () =
  let failures = ref 0 in
  let rounds = ref 0 in
  for seed = 1 to 6 do
    let rng = Prng.create (100 + seed) in
    let a, b, _ = Workload.planted_pair rng ~n:96 ~density:0.05 ~overlap:40 in
    let actual = float_of_int (Product.linf (Product.bool_product a b)) in
    let r =
      Ctx.run ~seed (fun ctx ->
          Linf_binary.run ctx (Linf_binary.default_params ~eps:0.25) ~a ~b)
    in
    rounds := r.Ctx.rounds;
    let est = r.Ctx.output.Linf_binary.estimate in
    (* (2+eps) approximation with slack for the level estimate. *)
    if not (est >= actual /. 2.6 && est <= actual *. 1.6) then incr failures
  done;
  check Alcotest.bool "3 speaking phases" true (!rounds <= 3);
  check Alcotest.bool "(2+eps) approx holds" true (!failures <= 1)

let test_linf_binary_zero () =
  let z = Bmat.zero ~rows:8 ~cols:8 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Linf_binary.run ctx (Linf_binary.default_params ~eps:0.5) ~a:z ~b:z)
  in
  check (Alcotest.float 0.0) "zero" 0.0 r.Ctx.output.Linf_binary.estimate

let test_linf_binary_sampling_engages () =
  (* Dense instance with small threshold: level > 0 must be chosen and the
     estimate still within (2+eps)-ish. *)
  let rng = Prng.create 14 in
  let a, b = bool_pair rng ~n:72 ~density:0.4 in
  let actual = float_of_int (Product.linf (Product.bool_product a b)) in
  let ok = ref 0 and engaged = ref false in
  for seed = 1 to 6 do
    let r =
      Ctx.run ~seed (fun ctx ->
          Linf_binary.run_with ctx ~base:1.25
            ~threshold:(0.05 *. float_of_int (72 * 72 * 72))
            ~a ~b)
    in
    if r.Ctx.output.Linf_binary.level > 0 then engaged := true;
    let est = r.Ctx.output.Linf_binary.estimate in
    if est >= actual /. 3.0 && est <= actual *. 2.0 then incr ok
  done;
  check Alcotest.bool "subsampling engaged" true !engaged;
  check Alcotest.bool "estimates still good" true (!ok >= 5)

(* ------------------------------------------------------------------ *)
(* Algorithm 3 (Linf kappa) *)

let test_linf_kappa_planted () =
  let failures = ref 0 in
  for seed = 1 to 6 do
    let rng = Prng.create (200 + seed) in
    let a, b, _ = Workload.planted_pair rng ~n:128 ~density:0.04 ~overlap:60 in
    let actual = float_of_int (Product.linf (Product.bool_product a b)) in
    let kappa = 6.0 in
    let r =
      Ctx.run ~seed (fun ctx ->
          Linf_kappa.run ctx (Linf_kappa.default_params ~kappa) ~a ~b)
    in
    let est = r.Ctx.output.Linf_kappa.estimate in
    if not (est >= actual /. (2.0 *. kappa) && est <= actual *. 2.0 *. kappa)
    then incr failures
  done;
  check Alcotest.bool "kappa approx holds" true (!failures <= 1)

let test_linf_kappa_zero_and_tiny () =
  let z = Bmat.zero ~rows:16 ~cols:16 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Linf_kappa.run ctx (Linf_kappa.default_params ~kappa:4.0) ~a:z ~b:z)
  in
  check (Alcotest.float 0.0) "zero" 0.0 r.Ctx.output.Linf_kappa.estimate

(* ------------------------------------------------------------------ *)
(* Theorem 4.8 (Linf general) *)

let test_linf_general_accuracy () =
  let failures = ref 0 in
  let rounds = ref 0 in
  for seed = 1 to 6 do
    let rng = Prng.create (300 + seed) in
    let a = Workload.uniform_int rng ~rows:64 ~cols:64 ~density:0.1 ~max_value:8 in
    let b = Workload.uniform_int rng ~rows:64 ~cols:64 ~density:0.1 ~max_value:8 in
    let actual = float_of_int (Product.linf (Product.int_product a b)) in
    let kappa = 4.0 in
    let r =
      Ctx.run ~seed (fun ctx -> Linf_general.run ctx { kappa } ~a ~b)
    in
    rounds := r.Ctx.rounds;
    if not (r.Ctx.output >= actual /. 2.0 && r.Ctx.output <= actual *. 2.0 *. kappa)
    then incr failures
  done;
  check Alcotest.int "1 round" 1 !rounds;
  check Alcotest.bool "within kappa" true (!failures <= 1)

let test_linf_general_size_scales () =
  let rng = Prng.create 15 in
  let a = Workload.uniform_int rng ~rows:96 ~cols:96 ~density:0.1 ~max_value:5 in
  let b = Workload.uniform_int rng ~rows:96 ~cols:96 ~density:0.1 ~max_value:5 in
  let bits k =
    (Ctx.run ~seed:1 (fun ctx -> Linf_general.run ctx { kappa = k } ~a ~b)).Ctx.bits
  in
  check Alcotest.bool "kappa=8 much cheaper than kappa=2" true
    (bits 8.0 * 4 < bits 2.0)

(* ------------------------------------------------------------------ *)
(* Distributed matrix product (Lemma 2.5 stand-in) *)

let test_matprod_shares_exact () =
  for seed = 1 to 5 do
    let rng = Prng.create (400 + seed) in
    let a = Workload.uniform_int rng ~rows:40 ~cols:40 ~density:0.1 ~max_value:3 in
    let b = Workload.uniform_int rng ~rows:40 ~cols:40 ~density:0.1 ~max_value:3 in
    let c = Product.int_product a b in
    let r = Ctx.run ~seed (fun ctx -> Matprod_protocol.run ctx ~a ~b) in
    let shares = r.Ctx.output in
    (* C_A + C_B = A·B entry-wise. *)
    let combined = Common.Entry_map.create () in
    Common.Entry_map.merge_into ~dst:combined shares.Matprod_protocol.alice;
    Common.Entry_map.merge_into ~dst:combined shares.Matprod_protocol.bob;
    check Alcotest.int "same support size" (Product.nnz c)
      (Common.Entry_map.nnz combined);
    Product.iter c (fun i j v ->
        check Alcotest.int "entry" v (Common.Entry_map.get combined i j))
  done

let test_matprod_cheaper_than_trivial_on_sparse () =
  (* A dense, B sparse: shipping all of A is expensive, while the min-side
     exchange only pays for B's small supports. *)
  let rng = Prng.create 16 in
  let a = Workload.uniform_int rng ~rows:100 ~cols:100 ~density:0.3 ~max_value:2 in
  let b = Workload.uniform_int rng ~rows:100 ~cols:100 ~density:0.02 ~max_value:2 in
  let r = Ctx.run ~seed:1 (fun ctx -> Matprod_protocol.run ctx ~a ~b) in
  let t =
    Ctx.run ~seed:1 (fun ctx -> Trivial.run_int ctx ~a ~b (fun c -> Product.nnz c))
  in
  check Alcotest.bool "beats shipping A" true (r.Ctx.bits < t.Ctx.bits)

(* ------------------------------------------------------------------ *)
(* Heavy hitters *)

let hh_band_ok ~p ~phi ~eps c s =
  let must = Product.heavy_hitters c ~p ~phi in
  let may = Product.heavy_hitters c ~p ~phi:(phi -. eps) in
  List.for_all (fun e -> List.mem e s) must
  && List.for_all (fun e -> List.mem e may) s

let test_hh_general_band () =
  let ok = ref 0 in
  for seed = 1 to 6 do
    let rng = Prng.create (500 + seed) in
    let a, b =
      Workload.planted_heavy_hitters rng ~n:100 ~density:0.02
        ~heavy:[ (2, 50); (2, 30) ]
    in
    let c = Product.bool_product a b in
    let phi = 0.02 and eps = 0.01 in
    let r =
      Ctx.run ~seed (fun ctx ->
          Hh_general.run ctx
            (Hh_general.default_params ~phi ~eps ())
            ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    if hh_band_ok ~p:1.0 ~phi ~eps c r.Ctx.output then incr ok
  done;
  check Alcotest.bool "band holds on most seeds" true (!ok >= 5)

let test_hh_general_empty () =
  let z = Imat.zero ~rows:10 ~cols:10 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Hh_general.run ctx (Hh_general.default_params ~phi:0.1 ~eps:0.05 ()) ~a:z ~b:z)
  in
  check Alcotest.bool "empty" true (r.Ctx.output = [])

let test_hh_general_rejects_bad_band () =
  let m = Imat.of_dense [| [| 1 |] |] in
  Alcotest.check_raises "eps > phi"
    (Invalid_argument "Hh_general: need 0 < eps <= phi <= 1") (fun () ->
      ignore
        (Ctx.run ~seed:1 (fun ctx ->
             Hh_general.run ctx
               (Hh_general.default_params ~phi:0.1 ~eps:0.2 ())
               ~a:m ~b:m)))

let test_hh_binary_band () =
  let ok = ref 0 in
  for seed = 1 to 6 do
    let rng = Prng.create (600 + seed) in
    let a, b =
      Workload.planted_heavy_hitters rng ~n:100 ~density:0.02
        ~heavy:[ (2, 50); (2, 30) ]
    in
    let c = Product.bool_product a b in
    let phi = 0.02 and eps = 0.01 in
    let r =
      Ctx.run ~seed (fun ctx ->
          Hh_binary.run ctx (Hh_binary.default_params ~phi ~eps ()) ~a ~b)
    in
    if hh_band_ok ~p:1.0 ~phi ~eps c r.Ctx.output then incr ok
  done;
  check Alcotest.bool "band holds on most seeds" true (!ok >= 5)

let test_hh_binary_near_linear_bits () =
  (* Theorem 5.3's cost is Õ(n + ϕ/ε²): doubling n should well less than
     quadruple the measured bits (an n^2-type protocol would 4x). *)
  let phi = 0.02 and eps = 0.01 in
  let bits n =
    let rng = Prng.create (700 + n) in
    let a, b =
      Workload.planted_heavy_hitters rng ~n ~density:0.03 ~heavy:[ (2, 60) ]
    in
    (Ctx.run ~seed:1 (fun ctx ->
         Hh_binary.run ctx (Hh_binary.default_params ~phi ~eps ()) ~a ~b))
      .Ctx.bits
  in
  let b128 = bits 128 and b256 = bits 256 in
  check Alcotest.bool "sub-quadratic growth" true (b256 < 3 * b128)

(* ------------------------------------------------------------------ *)
(* Lp sampling (extension) *)

module Lp_sampling = Matprod_core.Lp_sampling

let test_lp_sampling_support_and_values () =
  let rng = Prng.create 22 in
  let a, b = bool_pair rng ~n:50 ~density:0.1 in
  let c = Product.bool_product a b in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  for seed = 1 to 20 do
    let r =
      Ctx.run ~seed (fun ctx ->
          Lp_sampling.run ctx (Lp_sampling.default_params ~eps:0.3 ()) ~a:ai ~b:bi)
    in
    match r.Ctx.output with
    | Some s ->
        check Alcotest.int "value exact"
          (Product.get c s.Lp_sampling.row s.Lp_sampling.col)
          s.Lp_sampling.value;
        check Alcotest.bool "nonzero" true (s.Lp_sampling.value <> 0);
        check Alcotest.int "2 rounds" 2 r.Ctx.rounds
    | None -> Alcotest.fail "sample expected on nonzero product"
  done

let test_lp_sampling_distribution_p2 () =
  (* Tiny product where the p = 2 distribution is strongly skewed: the big
     entry should dominate the samples. C = [[4,1],[1,1]]-ish. *)
  let a = Imat.of_dense [| [| 2; 0 |]; [| 0; 1 |] |] in
  let b = Imat.of_dense [| [| 2; 1 |]; [| 1; 1 |] |] in
  let c = Product.int_product a b in
  (* C = [[4,2],[1,1]]; p=2 weights 16,4,1,1 -> (0,0) has mass 16/22. *)
  let trials = 600 in
  let hits = ref 0 and total = ref 0 in
  for seed = 1 to trials do
    let r =
      Ctx.run ~seed (fun ctx ->
          Lp_sampling.run ctx (Lp_sampling.default_params ~eps:0.25 ()) ~a ~b)
    in
    match r.Ctx.output with
    | Some s ->
        incr total;
        check Alcotest.bool "in support" true
          (Product.get c s.Lp_sampling.row s.Lp_sampling.col <> 0);
        if s.Lp_sampling.row = 0 && s.Lp_sampling.col = 0 then incr hits
    | None -> ()
  done;
  let frac = float_of_int !hits /. float_of_int !total in
  check Alcotest.bool
    (Printf.sprintf "big entry frequency %.2f near 16/22" frac)
    true
    (Float.abs (frac -. (16.0 /. 22.0)) < 0.1)

let test_lp_sampling_zero () =
  let z = Imat.zero ~rows:6 ~cols:6 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_sampling.run ctx (Lp_sampling.default_params ~eps:0.5 ()) ~a:z ~b:z)
  in
  check Alcotest.bool "none" true (r.Ctx.output = None)

(* ------------------------------------------------------------------ *)
(* CountSketch baseline ([32] adaptation) *)

module Hh_countsketch = Matprod_core.Hh_countsketch

let test_hh_countsketch_band () =
  let ok = ref 0 in
  for seed = 1 to 4 do
    let rng = Prng.create (800 + seed) in
    let a, b, _ =
      Workload.planted_heavy_int rng ~n:64 ~density:0.03 ~max_value:4
        ~heavy:[ (2, 25, 12) ]
    in
    let c = Product.int_product a b in
    let l1 = float_of_int (Product.l1 c) in
    let phi = 0.8 *. float_of_int (Product.linf c) /. l1 in
    let eps = phi /. 2.0 in
    let r =
      Ctx.run ~seed (fun ctx ->
          Hh_countsketch.run ctx
            (Hh_countsketch.default_params ~phi ~eps ~buckets:1024)
            ~a ~b)
    in
    if hh_band_ok ~p:1.0 ~phi ~eps c r.Ctx.output then incr ok
  done;
  check Alcotest.bool "band holds on most seeds" true (!ok >= 3)

let test_hh_countsketch_one_round () =
  let rng = Prng.create 20 in
  let a = Workload.uniform_int rng ~rows:32 ~cols:32 ~density:0.1 ~max_value:3 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Hh_countsketch.run ctx
          (Hh_countsketch.default_params ~phi:0.5 ~eps:0.25 ~buckets:128)
          ~a ~b:a)
  in
  check Alcotest.int "one speaking phase" 1 r.Ctx.rounds

let test_hh_countsketch_empty () =
  let z = Imat.zero ~rows:8 ~cols:8 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Hh_countsketch.run ctx
          (Hh_countsketch.default_params ~phi:0.2 ~eps:0.1 ~buckets:64)
          ~a:z ~b:z)
  in
  check Alcotest.bool "empty" true (r.Ctx.output = [])

(* ------------------------------------------------------------------ *)
(* Boosting (median trick) *)

module Boosting = Matprod_core.Boosting

let test_boosting_improves_reliability () =
  (* A deliberately under-sized Algorithm 1 has noticeable failure odds;
     the 9-fold median's error must not exceed the typical single-run's. *)
  let rng = Prng.create 21 in
  let a, b = bool_pair rng ~n:60 ~density:0.1 in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let prm =
    {
      Lp_protocol.p = 0.0;
      eps = 0.5;
      sketch_groups = 1;
      rho_const = 16.0;
    }
  in
  let f ctx = Lp_protocol.run ctx prm ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b) in
  let boosted = Boosting.run_median ~seed:9 ~repetitions:9 f in
  let single_errs =
    Array.map
      (fun est -> Stats.relative_error ~actual ~estimate:est)
      boosted.Boosting.runs
  in
  let med_err =
    Stats.relative_error ~actual ~estimate:boosted.Boosting.estimate
  in
  let worst = Array.fold_left Float.max 0.0 single_errs in
  check Alcotest.bool "median no worse than the worst run" true (med_err <= worst);
  check Alcotest.bool "median estimate reasonable" true (med_err < 0.6);
  check Alcotest.int "bits accumulate over runs" 9
    (Array.length boosted.Boosting.runs)

let test_boosting_repetitions_for () =
  let r = Boosting.repetitions_for ~delta:0.01 in
  check Alcotest.bool "odd" true (r land 1 = 1);
  check Alcotest.bool "grows with confidence" true
    (Boosting.repetitions_for ~delta:1e-6 > r)

(* ------------------------------------------------------------------ *)
(* Cohen baseline *)

let test_cohen_baseline_accuracy () =
  let rng = Prng.create 18 in
  let a, b = bool_pair rng ~n:64 ~density:0.1 in
  let actual = float_of_int (Product.nnz (Product.bool_product a b)) in
  let failures = ref 0 in
  for seed = 1 to 5 do
    let r =
      Ctx.run ~seed (fun ctx ->
          Cohen_baseline.run ctx (Cohen_baseline.params_for_eps ~eps:0.2) ~a ~b)
    in
    if Stats.relative_error ~actual ~estimate:r.Ctx.output > 0.25 then
      incr failures
  done;
  check Alcotest.bool "accurate" true (!failures <= 1)

(* ------------------------------------------------------------------ *)
(* Trivial baseline *)

let test_trivial_exact_and_bits () =
  let rng = Prng.create 19 in
  let a, b = bool_pair rng ~n:40 ~density:0.2 in
  let c = Product.bool_product a b in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Trivial.run_bool ctx ~a ~b (fun c -> (Product.nnz c, Product.linf c)))
  in
  check Alcotest.int "nnz exact" (Product.nnz c) (fst r.Ctx.output);
  check Alcotest.int "linf exact" (Product.linf c) (snd r.Ctx.output);
  (* Bitmap: n*m bits + small header. *)
  check Alcotest.bool "about n^2 bits" true
    (r.Ctx.bits >= 40 * 40 && r.Ctx.bits <= (40 * 40) + 128)

(* ------------------------------------------------------------------ *)
(* Session (amortised queries) *)

module Session = Matprod_core.Session

let test_session_queries_free () =
  let rng = Prng.create 24 in
  let a, b = bool_pair rng ~n:60 ~density:0.1 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let c = Product.bool_product a b in
  let ctx = Ctx.create ~seed:1 () in
  let s = Session.establish ctx ~beta:0.3 ~a:ai ~b:bi in
  let bits_after_establish = Transcript.total_bits (Ctx.transcript ctx) in
  (* Many queries, no new communication. *)
  let norm = Session.norm_pow s in
  for i = 0 to 59 do
    ignore (Session.row_norm_pow s i)
  done;
  ignore (Session.top_rows s ~k:5);
  check Alcotest.int "queries are free" bits_after_establish
    (Transcript.total_bits (Ctx.transcript ctx));
  let actual = Product.lp_pow c ~p:0.0 in
  check Alcotest.bool "norm estimate in range" true
    (Stats.relative_error ~actual ~estimate:norm < 0.5)

let test_session_top_rows () =
  (* Plant one dominant row: it must top the ranking. *)
  let rng = Prng.create 25 in
  let n = 60 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.03 in
  let a =
    Bmat.map_rows a (fun i r ->
        if i = 17 then Array.init n (fun k -> k) else r)
  in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.15 in
  let ctx = Ctx.create ~seed:2 () in
  let s =
    Session.establish ~p:1.0 ctx ~beta:0.3 ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)
  in
  match Session.top_rows s ~k:3 with
  | (top, _) :: _ -> check Alcotest.int "dominant row found" 17 top
  | [] -> Alcotest.fail "no rows returned"

let test_session_refine_improves () =
  let rng = Prng.create 26 in
  let a, b = bool_pair rng ~n:100 ~density:0.08 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  let coarse_errs = ref [] and fine_errs = ref [] in
  for seed = 1 to 5 do
    let ctx = Ctx.create ~seed () in
    let s = Session.establish ctx ~beta:0.5 ~a:ai ~b:bi in
    coarse_errs :=
      Stats.relative_error ~actual ~estimate:(Session.norm_pow s) :: !coarse_errs;
    fine_errs :=
      Stats.relative_error ~actual ~estimate:(Session.refine ctx s) :: !fine_errs
  done;
  let med l = Stats.median (Array.of_list l) in
  check Alcotest.bool "refined estimate no worse" true
    (med !fine_errs <= med !coarse_errs +. 0.02)

(* ------------------------------------------------------------------ *)
(* Edge cases *)

let test_edge_one_by_one () =
  let one = Imat.of_dense [| [| 3 |] |] in
  let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run ctx ~a:one ~b:one) in
  check Alcotest.int "1x1 l1" 9 r.Ctx.output;
  let shares = Ctx.run ~seed:1 (fun ctx -> Matprod_protocol.run ctx ~a:one ~b:one) in
  let m = Common.Entry_map.create () in
  Common.Entry_map.merge_into ~dst:m shares.Ctx.output.Matprod_protocol.alice;
  Common.Entry_map.merge_into ~dst:m shares.Ctx.output.Matprod_protocol.bob;
  check Alcotest.int "1x1 product" 9 (Common.Entry_map.get m 0 0)

let test_edge_identity_product () =
  let n = 20 in
  let i = Bmat.identity n in
  let c = Product.bool_product i i in
  check Alcotest.int "I*I nnz" n (Product.nnz c);
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Linf_binary.run ctx (Linf_binary.default_params ~eps:0.5) ~a:i ~b:i)
  in
  check Alcotest.bool "linf of identity ~1" true
    (r.Ctx.output.Linf_binary.estimate >= 0.5
    && r.Ctx.output.Linf_binary.estimate <= 2.0)

let test_edge_skinny_rectangular () =
  (* 1 x n times n x 1: C is a single entry (an inner product). *)
  let rng = Prng.create 23 in
  let row = Workload.uniform_bool rng ~rows:1 ~cols:200 ~density:0.3 in
  let col = Workload.uniform_bool rng ~rows:200 ~cols:1 ~density:0.3 in
  let c = Product.bool_product row col in
  let exact = Product.get c 0 0 in
  let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a:row ~b:col) in
  check Alcotest.int "inner product exact" exact r.Ctx.output

let test_edge_all_ones () =
  let n = 24 in
  let ones = Bmat.of_dense (Array.make_matrix n n 1) in
  let c = Product.bool_product ones ones in
  check Alcotest.int "all entries = n" n (Product.linf c);
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~p:0.0 ~eps:0.5 ())
          ~a:(Imat.of_bmat ones) ~b:(Imat.of_bmat ones))
  in
  check Alcotest.bool "dense l0 close" true
    (Stats.relative_error ~actual:(float_of_int (n * n)) ~estimate:r.Ctx.output
    < 0.5)

(* ------------------------------------------------------------------ *)
(* [16]-style joins *)

module Joins = Matprod_core.Joins

let exact_equality_join a b =
  let bt = Bmat.transpose b in
  let count = ref 0 in
  for i = 0 to Bmat.rows a - 1 do
    for j = 0 to Bmat.rows bt - 1 do
      if Bmat.row a i = Bmat.row bt j then incr count
    done
  done;
  !count

let test_equality_join_exact () =
  let rng = Prng.create 40 in
  (* Low-cardinality rows so collisions actually occur. *)
  let pick () =
    match Prng.int rng 4 with
    | 0 -> [||]
    | 1 -> [| 1 |]
    | 2 -> [| 1; 5 |]
    | _ -> [| Prng.int rng 8 |]
  in
  let a = Bmat.create ~rows:30 ~cols:10 (Array.init 30 (fun _ -> pick ())) in
  let bt = Bmat.create ~rows:25 ~cols:10 (Array.init 25 (fun _ -> pick ())) in
  let b = Bmat.transpose bt in
  let r = Ctx.run ~seed:1 (fun ctx -> Joins.equality_join ctx ~a ~b) in
  check Alcotest.int "matches brute force" (exact_equality_join a b) r.Ctx.output;
  check Alcotest.int "1 round" 1 r.Ctx.rounds

let test_disjointness_join () =
  let rng = Prng.create 41 in
  let a, b = bool_pair rng ~n:60 ~density:0.08 in
  let c = Product.bool_product a b in
  let actual = float_of_int ((60 * 60) - Product.nnz c) in
  let r =
    Ctx.run ~seed:1 (fun ctx -> Joins.disjointness_join ctx ~eps:0.25 ~a ~b)
  in
  check Alcotest.bool "close" true
    (Float.abs (r.Ctx.output -. actual) < 0.1 *. (60.0 *. 60.0))

let test_at_least_t_join () =
  let rng = Prng.create 42 in
  let a, b = bool_pair rng ~n:50 ~density:0.15 in
  let c = Product.bool_product a b in
  let t = 2 in
  let actual =
    float_of_int
      (List.length
         (List.filter (fun (_, _, v) -> v >= t) (Array.to_list (Product.entries c))))
  in
  let l0 = float_of_int (Product.nnz c) in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Joins.at_least_t_join ctx
          { Joins.eps = 0.25; samples = 40 }
          ~t ~a ~b)
  in
  (* Additive guarantee relative to ||C||_0. *)
  check Alcotest.bool "within additive band" true
    (Float.abs (r.Ctx.output -. actual) < 0.35 *. l0)

(* ------------------------------------------------------------------ *)
(* Message-flow contracts (docs/PROTOCOLS.md) *)

let flow_of transcript =
  List.map
    (fun m -> (m.Transcript.sender, m.Transcript.label))
    (Transcript.messages transcript)

let test_flow_lp_protocol () =
  let rng = Prng.create 27 in
  let a, b = bool_pair rng ~n:30 ~density:0.1 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Lp_protocol.run ctx
          (Lp_protocol.default_params ~eps:0.5 ())
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "B speaks then A" true
    (flow_of r.Ctx.transcript
    = [
        (Transcript.Bob, "lp-sketches(B rows)");
        (Transcript.Alice, "sampled rows of A");
      ])

let test_flow_l1_exact () =
  let rng = Prng.create 28 in
  let a, b = bool_pair rng ~n:30 ~density:0.1 in
  let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a ~b) in
  check Alcotest.bool "single A message" true
    (flow_of r.Ctx.transcript = [ (Transcript.Alice, "column sums of A") ])

let test_flow_linf_binary () =
  let rng = Prng.create 29 in
  let a, b = bool_pair rng ~n:30 ~density:0.2 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        Linf_binary.run ctx (Linf_binary.default_params ~eps:0.5) ~a ~b)
  in
  match flow_of r.Ctx.transcript with
  | [ (Transcript.Alice, "level column sums of A");
      (Transcript.Bob, "l*, B weights, B index sets");
      (Transcript.Alice, "A index sets, |C_A|inf");
    ] -> ()
  | other ->
      Alcotest.failf "unexpected flow: %s"
        (String.concat "; " (List.map snd other))

let test_flow_matprod () =
  let rng = Prng.create 30 in
  let a = Workload.uniform_int rng ~rows:20 ~cols:20 ~density:0.2 ~max_value:3 in
  let r = Ctx.run ~seed:1 (fun ctx -> Matprod_protocol.run ctx ~a ~b:a) in
  match flow_of r.Ctx.transcript with
  | [ (Transcript.Alice, "support sizes of A cols");
      (Transcript.Bob, "B rows (smaller side)");
      (Transcript.Alice, "A cols (smaller side)");
    ] -> ()
  | other ->
      Alcotest.failf "unexpected flow: %s"
        (String.concat "; " (List.map snd other))

let test_flow_l0_sampling_single_direction () =
  let rng = Prng.create 31 in
  let a, b = bool_pair rng ~n:24 ~density:0.15 in
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        L0_sampling.run ctx (L0_sampling.default_params ~eps:0.5)
          ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
  in
  check Alcotest.bool "all messages from Alice" true
    (List.for_all
       (fun (s, _) -> s = Transcript.Alice)
       (flow_of r.Ctx.transcript))

(* ------------------------------------------------------------------ *)
(* qcheck protocol properties *)

let small_nonneg_imat_gen =
  let open QCheck.Gen in
  let* rows = 1 -- 12 in
  let* cols = 1 -- 12 in
  let* seed = int_bound 100_000 in
  let* density10 = 1 -- 6 in
  let rng = Prng.create seed in
  return
    (Workload.uniform_int rng ~rows ~cols
       ~density:(float_of_int density10 /. 10.0)
       ~max_value:5)

let compatible_pair_gen =
  let open QCheck.Gen in
  let* rows = 1 -- 10 in
  let* inner = 1 -- 10 in
  let* cols = 1 -- 10 in
  let* s1 = int_bound 100_000 in
  let* s2 = int_bound 100_000 in
  let r1 = Prng.create s1 and r2 = Prng.create s2 in
  return
    ( Workload.uniform_int r1 ~rows ~cols:inner ~density:0.4 ~max_value:4,
      Workload.uniform_int r2 ~rows:inner ~cols ~density:0.4 ~max_value:4 )

let qcheck_protocol_tests =
  let open QCheck in
  [
    Test.make ~name:"L1_exact equals ground truth on random shapes" ~count:60
      (make compatible_pair_gen) (fun (a, b) ->
        let actual = Product.l1 (Product.int_product a b) in
        (Ctx.run ~seed:1 (fun ctx -> L1_exact.run ctx ~a ~b)).Ctx.output = actual);
    Test.make ~name:"Matprod shares always sum to the exact product" ~count:60
      (make compatible_pair_gen) (fun (a, b) ->
        let c = Product.int_product a b in
        let shares =
          (Ctx.run ~seed:2 (fun ctx -> Matprod_protocol.run ctx ~a ~b)).Ctx.output
        in
        let m = Common.Entry_map.create () in
        Common.Entry_map.merge_into ~dst:m shares.Matprod_protocol.alice;
        Common.Entry_map.merge_into ~dst:m shares.Matprod_protocol.bob;
        let ok = ref (Common.Entry_map.nnz m = Product.nnz c) in
        Product.iter c (fun i j v ->
            if Common.Entry_map.get m i j <> v then ok := false);
        !ok);
    Test.make ~name:"Trivial protocol is exact on random integer matrices"
      ~count:40 (make compatible_pair_gen) (fun (a, b) ->
        let c = Product.int_product a b in
        let got =
          (Ctx.run ~seed:3 (fun ctx ->
               Trivial.run_int ctx ~a ~b (fun c' ->
                   (Product.nnz c', Product.l1 c', Product.linf c'))))
            .Ctx.output
        in
        got = (Product.nnz c, Product.l1 c, Product.linf c));
    Test.make ~name:"L1_sampling returns entries of the support" ~count:40
      (make small_nonneg_imat_gen) (fun a ->
        let b = Imat.transpose a in
        let c = Product.int_product a b in
        match (Ctx.run ~seed:4 (fun ctx -> L1_sampling.run ctx ~a ~b)).Ctx.output with
        | None -> Product.l1 c = 0
        | Some s -> Product.get c s.L1_sampling.row s.L1_sampling.col > 0);
    Test.make ~name:"rounds never exceed the paper's O(1) bounds" ~count:20
      (make compatible_pair_gen) (fun (a, b) ->
        let r1 = Ctx.run ~seed:5 (fun ctx -> L1_exact.run ctx ~a ~b) in
        let r2 = Ctx.run ~seed:5 (fun ctx -> Matprod_protocol.run ctx ~a ~b) in
        r1.Ctx.rounds <= 1 && r2.Ctx.rounds <= 3);
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "core"
    [
      ( "common",
        [
          Alcotest.test_case "entry map" `Quick test_entry_map;
          Alcotest.test_case "row times matrix" `Quick test_row_times_matrix;
          Alcotest.test_case "group_of" `Quick test_group_of;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "accuracy all p" `Slow test_lp_accuracy_all_p;
          Alcotest.test_case "2 rounds" `Quick test_lp_two_rounds;
          Alcotest.test_case "reproducible" `Quick test_lp_reproducible;
          Alcotest.test_case "zero product" `Quick test_lp_zero_product;
          Alcotest.test_case "rejects bad params" `Quick test_lp_rejects_bad_params;
          Alcotest.test_case "integer matrices" `Slow test_lp_integer_matrices;
          Alcotest.test_case "row norms" `Slow test_lp_row_norm_subprotocol;
        ] );
      ( "one-round baseline",
        [
          Alcotest.test_case "accuracy & rounds" `Slow test_oneround_accuracy_and_rounds;
          Alcotest.test_case "costs more than 2-round" `Slow
            test_oneround_costs_more_than_tworound;
        ] );
      ( "remark2-3",
        [
          Alcotest.test_case "l1 exact" `Quick test_l1_exact;
          Alcotest.test_case "l1 rejects negative" `Quick test_l1_exact_rejects_negative;
          Alcotest.test_case "l1 sampling distribution" `Slow test_l1_sampling_distribution;
          Alcotest.test_case "l1 sampling zero" `Quick test_l1_sampling_zero;
        ] );
      ( "l0-sampling",
        [
          Alcotest.test_case "support & rounds" `Slow test_l0_sampling_support_and_rounds;
          Alcotest.test_case "zero product" `Quick test_l0_sampling_zero_product;
          Alcotest.test_case "near uniform" `Slow test_l0_sampling_near_uniform;
          Alcotest.test_case "run_many batched" `Quick test_l0_sampling_run_many;
        ] );
      ( "algorithm2",
        [
          Alcotest.test_case "planted pair" `Slow test_linf_binary_planted;
          Alcotest.test_case "zero" `Quick test_linf_binary_zero;
          Alcotest.test_case "sampling engages" `Slow test_linf_binary_sampling_engages;
        ] );
      ( "algorithm3",
        [
          Alcotest.test_case "planted pair" `Slow test_linf_kappa_planted;
          Alcotest.test_case "zero" `Quick test_linf_kappa_zero_and_tiny;
        ] );
      ( "linf-general",
        [
          Alcotest.test_case "accuracy" `Slow test_linf_general_accuracy;
          Alcotest.test_case "size scales with kappa" `Slow test_linf_general_size_scales;
        ] );
      ( "matrix-product",
        [
          Alcotest.test_case "shares exact" `Quick test_matprod_shares_exact;
          Alcotest.test_case "cheaper than trivial" `Quick
            test_matprod_cheaper_than_trivial_on_sparse;
        ] );
      ( "heavy-hitters",
        [
          Alcotest.test_case "general band" `Slow test_hh_general_band;
          Alcotest.test_case "general empty" `Quick test_hh_general_empty;
          Alcotest.test_case "rejects bad band" `Quick test_hh_general_rejects_bad_band;
          Alcotest.test_case "binary band" `Slow test_hh_binary_band;
          Alcotest.test_case "binary near-linear bits" `Slow
            test_hh_binary_near_linear_bits;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "cohen accuracy" `Slow test_cohen_baseline_accuracy;
          Alcotest.test_case "trivial exact & bits" `Quick test_trivial_exact_and_bits;
          Alcotest.test_case "countsketch band" `Slow test_hh_countsketch_band;
          Alcotest.test_case "countsketch one round" `Quick test_hh_countsketch_one_round;
          Alcotest.test_case "countsketch empty" `Quick test_hh_countsketch_empty;
        ] );
      ( "session",
        [
          Alcotest.test_case "queries free after establish" `Quick test_session_queries_free;
          Alcotest.test_case "top rows" `Quick test_session_top_rows;
          Alcotest.test_case "refine improves" `Slow test_session_refine_improves;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "1x1" `Quick test_edge_one_by_one;
          Alcotest.test_case "identity" `Quick test_edge_identity_product;
          Alcotest.test_case "skinny rectangular" `Quick test_edge_skinny_rectangular;
          Alcotest.test_case "all ones" `Quick test_edge_all_ones;
        ] );
      ( "joins-16",
        [
          Alcotest.test_case "equality join exact" `Quick test_equality_join_exact;
          Alcotest.test_case "disjointness join" `Slow test_disjointness_join;
          Alcotest.test_case "at-least-t join" `Slow test_at_least_t_join;
        ] );
      ( "message-flows",
        [
          Alcotest.test_case "algorithm 1" `Quick test_flow_lp_protocol;
          Alcotest.test_case "remark 2" `Quick test_flow_l1_exact;
          Alcotest.test_case "algorithm 2" `Quick test_flow_linf_binary;
          Alcotest.test_case "matrix product" `Quick test_flow_matprod;
          Alcotest.test_case "l0 sampling one-way" `Quick test_flow_l0_sampling_single_direction;
        ] );
      ("protocol-properties", List.map QCheck_alcotest.to_alcotest qcheck_protocol_tests);
      ( "lp-sampling",
        [
          Alcotest.test_case "support & values" `Slow test_lp_sampling_support_and_values;
          Alcotest.test_case "distribution p=2" `Slow test_lp_sampling_distribution_p2;
          Alcotest.test_case "zero" `Quick test_lp_sampling_zero;
        ] );
      ( "boosting",
        [
          Alcotest.test_case "improves reliability" `Slow test_boosting_improves_reliability;
          Alcotest.test_case "repetitions_for" `Quick test_boosting_repetitions_for;
        ] );
    ]
