(* Tests for the communication framework: codecs, transcripts, channels. *)

module Codec = Matprod_comm.Codec
module Transcript = Matprod_comm.Transcript
module Channel = Matprod_comm.Channel
module Ctx = Matprod_comm.Ctx

let check = Alcotest.check

let roundtrip codec v = Codec.decode codec (Codec.encode codec v)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_uint () =
  List.iter
    (fun n -> check Alcotest.int "uint roundtrip" n (roundtrip Codec.uint n))
    [ 0; 1; 127; 128; 300; 1 lsl 20; 1 lsl 40; max_int ];
  Alcotest.check_raises "negative rejected" (Invalid_argument "Codec.uint: negative")
    (fun () -> ignore (Codec.encode Codec.uint (-1)))

let test_codec_uint_sizes () =
  check Alcotest.int "small = 1 byte" 1 (Codec.encoded_bytes Codec.uint 0);
  check Alcotest.int "127 = 1 byte" 1 (Codec.encoded_bytes Codec.uint 127);
  check Alcotest.int "128 = 2 bytes" 2 (Codec.encoded_bytes Codec.uint 128);
  check Alcotest.int "2^14 = 3 bytes" 3 (Codec.encoded_bytes Codec.uint (1 lsl 14))

let test_codec_int () =
  List.iter
    (fun n -> check Alcotest.int "int roundtrip" n (roundtrip Codec.int n))
    [ 0; 1; -1; 63; -64; 1000; -1000; max_int; min_int + 1 ]

let test_codec_bool_unit () =
  check Alcotest.bool "true" true (roundtrip Codec.bool true);
  check Alcotest.bool "false" false (roundtrip Codec.bool false);
  check Alcotest.unit "unit" () (roundtrip Codec.unit ())

let test_codec_float () =
  List.iter
    (fun f ->
      check (Alcotest.float 0.0) "float64 exact" f (roundtrip Codec.float64 f))
    [ 0.0; 1.5; -3.25; Float.pi; 1e300; -1e-300 ];
  (* float32 is lossy but within 1e-7 relative. *)
  let f = 1.2345678 in
  let g = roundtrip Codec.float32 f in
  check Alcotest.bool "float32 close" true (Float.abs (f -. g) /. f < 1e-6)

let test_codec_containers () =
  let c = Codec.pair Codec.int (Codec.list Codec.uint) in
  let v = (-5, [ 1; 2; 3 ]) in
  check Alcotest.bool "pair+list" true (roundtrip c v = v);
  let c3 = Codec.triple Codec.bool Codec.int Codec.float64 in
  let v3 = (true, -7, 2.5) in
  check Alcotest.bool "triple" true (roundtrip c3 v3 = v3);
  check Alcotest.bool "option none" true (roundtrip (Codec.option Codec.int) None = None);
  check Alcotest.bool "option some" true
    (roundtrip (Codec.option Codec.int) (Some 9) = Some 9);
  let arr = [| 4; 5; 6 |] in
  check Alcotest.bool "array" true (roundtrip Codec.int_array arr = arr)

let test_codec_sorted_array () =
  let v = [| 0; 1; 5; 100; 101 |] in
  check Alcotest.bool "roundtrip" true (roundtrip Codec.sorted_int_array v = v);
  check Alcotest.bool "empty" true (roundtrip Codec.sorted_int_array [||] = [||]);
  Alcotest.check_raises "non increasing"
    (Invalid_argument "Codec.sorted_int_array: not strictly increasing")
    (fun () -> ignore (Codec.encode Codec.sorted_int_array [| 3; 3 |]))

let test_codec_sorted_array_compression () =
  (* Dense increasing indices should take ~1 byte each. *)
  let v = Array.init 1000 (fun i -> i * 2) in
  let bytes = Codec.encoded_bytes Codec.sorted_int_array v in
  check Alcotest.bool "delta coding compresses" true (bytes < 1100)

let test_codec_counter_array () =
  let v = [| 0; 5; 0; 0; 7; 0 |] in
  check Alcotest.bool "roundtrip" true (roundtrip Codec.counter_array v = v);
  check Alcotest.bool "empty" true (roundtrip Codec.counter_array [||] = [||]);
  check Alcotest.bool "all zero" true
    (roundtrip Codec.counter_array (Array.make 1000 0) = Array.make 1000 0);
  (* Sparse states are cheap; the all-zero array costs a few bytes. *)
  check Alcotest.bool "zeros compress" true
    (Codec.encoded_bytes Codec.counter_array (Array.make 10_000 0) < 8)

let test_codec_sparse_vec () =
  let v = [| (0, -5); (3, 7); (900, 1) |] in
  check Alcotest.bool "roundtrip" true (roundtrip Codec.sparse_int_vec v = v)

let test_codec_truncated_input () =
  let s = Codec.encode Codec.uint 300 in
  let cut = String.sub s 0 (String.length s - 1) in
  Alcotest.check_raises "truncated" (Codec.Decode_error "Codec: truncated input")
    (fun () -> ignore (Codec.decode Codec.uint cut))

let test_codec_trailing_garbage () =
  let s = Codec.encode Codec.uint 5 ^ "x" in
  Alcotest.check_raises "trailing" (Codec.Decode_error "Codec.decode: trailing bytes")
    (fun () -> ignore (Codec.decode Codec.uint s))

let test_codec_adversarial_lengths () =
  (* A length prefix claiming far more elements than the input holds must
     be rejected before allocation, with the one typed exception. *)
  let huge_count = Codec.encode Codec.uint 1_000_000_000 in
  List.iter
    (fun (name, f) ->
      match f () with
      | exception Codec.Decode_error _ -> ()
      | _ -> Alcotest.failf "%s accepted adversarial length" name)
    [
      ("array", fun () -> ignore (Codec.decode Codec.int_array huge_count));
      ("list", fun () -> ignore (Codec.decode (Codec.list Codec.uint) huge_count));
      ("bytes", fun () -> ignore (Codec.decode Codec.bytes huge_count));
      ( "sorted",
        fun () -> ignore (Codec.decode Codec.sorted_int_array huge_count) );
      ( "counter dense cap",
        fun () ->
          let b = Buffer.create 16 in
          Buffer.add_string b (Codec.encode Codec.uint (1 lsl 40));
          Buffer.add_string b (Codec.encode Codec.uint 0);
          ignore (Codec.decode Codec.counter_array (Buffer.contents b)) );
    ]

let test_codec_map () =
  let c = Codec.map (fun s -> String.length s) (fun n -> String.make n 'a') Codec.uint in
  check Alcotest.string "map" "aaa" (roundtrip c "bbb" |> fun s -> String.map (fun _ -> 'a') s)

(* ------------------------------------------------------------------ *)
(* Transcript *)

let test_transcript_rounds () =
  let t = Transcript.create () in
  check Alcotest.int "0 rounds" 0 (Transcript.rounds t);
  Transcript.record t ~sender:Transcript.Alice ~label:"m1" ~bytes:10;
  check Alcotest.int "1 round" 1 (Transcript.rounds t);
  Transcript.record t ~sender:Transcript.Alice ~label:"m2" ~bytes:5;
  check Alcotest.int "same round" 1 (Transcript.rounds t);
  Transcript.record t ~sender:Transcript.Bob ~label:"m3" ~bytes:2;
  check Alcotest.int "2 rounds" 2 (Transcript.rounds t);
  Transcript.record t ~sender:Transcript.Alice ~label:"m4" ~bytes:1;
  check Alcotest.int "3 rounds" 3 (Transcript.rounds t)

let test_transcript_totals () =
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"a" ~bytes:10;
  Transcript.record t ~sender:Transcript.Bob ~label:"b" ~bytes:7;
  Transcript.record t ~sender:Transcript.Alice ~label:"a" ~bytes:3;
  check Alcotest.int "total bytes" 20 (Transcript.total_bytes t);
  check Alcotest.int "total bits" 160 (Transcript.total_bits t);
  check Alcotest.int "messages" 3 (Transcript.message_count t);
  check Alcotest.int "alice" 13 (Transcript.bytes_from t Transcript.Alice);
  check Alcotest.int "bob" 7 (Transcript.bytes_from t Transcript.Bob);
  match Transcript.by_label t with
  | [ ("a", 13); ("b", 7) ] -> ()
  | _ -> Alcotest.fail "by_label aggregation"

let test_transcript_by_label_order () =
  (* by_label sorts by descending byte total regardless of arrival order. *)
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"small" ~bytes:1;
  Transcript.record t ~sender:Transcript.Bob ~label:"big" ~bytes:100;
  Transcript.record t ~sender:Transcript.Alice ~label:"medium" ~bytes:10;
  match Transcript.by_label t with
  | [ ("big", 100); ("medium", 10); ("small", 1) ] -> ()
  | l ->
      Alcotest.failf "descending order violated: %s"
        (String.concat ", " (List.map (fun (l, b) -> Printf.sprintf "%s=%d" l b) l))

let test_transcript_by_label_aggregates () =
  (* Same label from both directions and multiple messages adds up. *)
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"x" ~bytes:4;
  Transcript.record t ~sender:Transcript.Bob ~label:"x" ~bytes:6;
  Transcript.record t ~sender:Transcript.Alice ~label:"y" ~bytes:3;
  Transcript.record t ~sender:Transcript.Alice ~label:"x" ~bytes:5;
  check Alcotest.int "labels" 2 (List.length (Transcript.by_label t));
  check Alcotest.int "x aggregated" 15 (List.assoc "x" (Transcript.by_label t));
  check Alcotest.int "y aggregated" 3 (List.assoc "y" (Transcript.by_label t))

let test_transcript_by_label_empty () =
  check Alcotest.int "empty transcript" 0
    (List.length (Transcript.by_label (Transcript.create ())))

let test_transcript_message_order () =
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"first" ~bytes:1;
  Transcript.record t ~sender:Transcript.Bob ~label:"second" ~bytes:1;
  match Transcript.messages t with
  | [ m1; m2 ] ->
      check Alcotest.string "order" "first" m1.Transcript.label;
      check Alcotest.string "order" "second" m2.Transcript.label;
      check Alcotest.int "rounds assigned" 1 m1.Transcript.round;
      check Alcotest.int "rounds assigned" 2 m2.Transcript.round
  | _ -> Alcotest.fail "expected two messages"

(* ------------------------------------------------------------------ *)
(* Channel / Ctx *)

let test_channel_charges_real_bytes () =
  let ch = Channel.create () in
  let v = Array.init 100 (fun i -> i) in
  let got =
    Channel.send ch ~from:Transcript.Alice ~label:"xs" Codec.sorted_int_array v
  in
  check Alcotest.bool "value intact" true (got = v);
  let want = Codec.encoded_bytes Codec.sorted_int_array v in
  check Alcotest.int "bytes charged" want
    (Transcript.total_bytes (Channel.transcript ch))

let test_channel_lossy_codec_loses () =
  let ch = Channel.create () in
  let f = 1.23456789012345 in
  let got = Channel.send ch ~from:Transcript.Bob ~label:"f" Codec.float32 f in
  check Alcotest.bool "precision lost in transit" true (got <> f)

let test_ctx_reproducible () =
  let run () =
    Ctx.run ~seed:99 (fun ctx ->
        let x = Matprod_util.Prng.int ctx.Ctx.public 1000 in
        let y = Matprod_util.Prng.int ctx.Ctx.alice 1000 in
        let z = Matprod_util.Prng.int ctx.Ctx.bob 1000 in
        ignore (Ctx.a2b ctx ~label:"x" Codec.uint x);
        (x, y, z))
  in
  let r1 = run () and r2 = run () in
  check Alcotest.bool "same outputs" true (r1.Ctx.output = r2.Ctx.output);
  check Alcotest.int "same bits" r1.Ctx.bits r2.Ctx.bits

let test_ctx_streams_independent () =
  let ctx = Ctx.create ~seed:5 () in
  let a = List.init 8 (fun _ -> Matprod_util.Prng.bits ctx.Ctx.alice) in
  let b = List.init 8 (fun _ -> Matprod_util.Prng.bits ctx.Ctx.bob) in
  let p = List.init 8 (fun _ -> Matprod_util.Prng.bits ctx.Ctx.public) in
  check Alcotest.bool "alice<>bob" true (a <> b);
  check Alcotest.bool "alice<>public" true (a <> p)

let test_ctx_run_counts () =
  let r =
    Ctx.run ~seed:1 (fun ctx ->
        ignore (Ctx.a2b ctx ~label:"m1" Codec.uint 1);
        ignore (Ctx.b2a ctx ~label:"m2" Codec.uint 2);
        ignore (Ctx.a2b ctx ~label:"m3" Codec.uint 3);
        42)
  in
  check Alcotest.int "output" 42 r.Ctx.output;
  check Alcotest.int "rounds" 3 r.Ctx.rounds;
  check Alcotest.int "bits" 24 r.Ctx.bits

(* ------------------------------------------------------------------ *)
(* Journal *)

module Journal = Matprod_comm.Journal

let with_tmp_journal k =
  let path = Filename.temp_file "matprod_journal_" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

let test_journal_bad_headers () =
  List.iter
    (fun (name, s) ->
      match Journal.of_bytes s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" name)
    [
      ("empty", "");
      ("short magic", "MP");
      ("wrong magic", "NOPE\001\000\000");
      ("magic only", "MPJ1");
      ("truncated protocol", "MPJ1\001\005ab");
    ];
  (* An unknown version must be refused, not misparsed. *)
  let good = Journal.to_bytes ~protocol:"p" ~seed:1 [] in
  let b = Bytes.of_string good in
  Bytes.set b 4 '\002';
  match Journal.of_bytes (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted"

let test_journal_entry_bytes () =
  check Alcotest.int "payload bytes only" 3
    (Journal.entry_bytes
       { Journal.sender = Transcript.Alice; label = "long label"; payload = "abc" })

(* A crash mid-append leaves debris after the last flushed record; load
   must hand back the clean prefix, and reopen must drop the tail so the
   resumed run can keep appending. *)
let test_journal_torn_tail_reopen () =
  with_tmp_journal @@ fun path ->
  let w = Journal.create ~path ~protocol:"p" ~seed:9 in
  Journal.append w ~sender:Transcript.Alice ~label:"x" ~payload:"abc";
  Journal.append w ~sender:Transcript.Bob ~label:"y" ~payload:"de";
  Journal.close w;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "Mtorn-record-debris";
  close_out oc;
  let j =
    match Journal.load path with
    | Ok j -> j
    | Error e -> Alcotest.failf "torn journal unreadable: %s" e
  in
  check Alcotest.bool "torn tail detected" false j.Journal.clean;
  check Alcotest.int "clean prefix kept" 2 (List.length j.Journal.entries);
  let w2 = Journal.reopen ~path j in
  Journal.append w2 ~sender:Transcript.Alice ~label:"z" ~payload:"f";
  Journal.close w2;
  match Journal.load path with
  | Ok j2 ->
      check Alcotest.bool "rewritten clean" true j2.Journal.clean;
      check Alcotest.int "tail dropped, append kept" 3
        (List.length j2.Journal.entries);
      check Alcotest.bool "order preserved" true
        (List.map (fun e -> e.Journal.label) j2.Journal.entries
        = [ "x"; "y"; "z" ])
  | Error e -> Alcotest.failf "rewritten journal unreadable: %s" e

(* Divergence between a journal and the resumed run is an error, not a
   silent wrong transcript. *)
let test_journal_replay_mismatch () =
  with_tmp_journal @@ fun path ->
  let proto v ctx = Ctx.a2b ctx ~label:"x" Codec.uint v in
  ignore (Ctx.run_journaled ~seed:3 ~journal:path ~protocol:"t" (proto 5));
  let j =
    match Journal.load path with Ok j -> j | Error e -> Alcotest.fail e
  in
  (* Same label, different payload. *)
  (match Ctx.resume ~seed:3 ~journal:j (proto 6) with
  | exception Journal.Replay_mismatch _ -> ()
  | _ -> Alcotest.fail "payload divergence accepted");
  (* Different label. *)
  (match
     Ctx.resume ~seed:3 ~journal:j (fun ctx ->
         Ctx.a2b ctx ~label:"other" Codec.uint 5)
   with
  | exception Journal.Replay_mismatch _ -> ()
  | _ -> Alcotest.fail "label divergence accepted");
  (* Different sender. *)
  (match
     Ctx.resume ~seed:3 ~journal:j (fun ctx ->
         Ctx.b2a ctx ~label:"x" Codec.uint 5)
   with
  | exception Journal.Replay_mismatch _ -> ()
  | _ -> Alcotest.fail "sender divergence accepted");
  (* A seed mismatch is rejected before any replay. *)
  match Ctx.resume ~seed:4 ~journal:j (proto 5) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seed mismatch accepted"

(* ------------------------------------------------------------------ *)
(* Netmodel *)

module Netmodel = Matprod_comm.Netmodel

let test_netmodel_formula () =
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"a" ~bytes:1250;
  (* 1250 bytes = 10_000 bits; 1 round *)
  let net = Netmodel.make ~name:"x" ~latency:0.01 ~bandwidth:1e6 () in
  check (Alcotest.float 1e-12) "time" (0.01 +. 0.01)
    (Netmodel.transfer_time net t)

let test_netmodel_rounds_dominate_on_wan () =
  (* Same bits, more rounds: strictly slower on a latency-bound network. *)
  let one = Transcript.create () in
  Transcript.record one ~sender:Transcript.Alice ~label:"m" ~bytes:1000;
  let three = Transcript.create () in
  Transcript.record three ~sender:Transcript.Alice ~label:"m" ~bytes:400;
  Transcript.record three ~sender:Transcript.Bob ~label:"m" ~bytes:300;
  Transcript.record three ~sender:Transcript.Alice ~label:"m" ~bytes:300;
  check Alcotest.bool "wan prefers fewer rounds" true
    (Netmodel.transfer_time Netmodel.wan one
    < Netmodel.transfer_time Netmodel.wan three)

let test_netmodel_bits_dominate_on_lan () =
  let small = Transcript.create () in
  Transcript.record small ~sender:Transcript.Alice ~label:"m" ~bytes:100;
  Transcript.record small ~sender:Transcript.Bob ~label:"m" ~bytes:100;
  let big = Transcript.create () in
  Transcript.record big ~sender:Transcript.Alice ~label:"m" ~bytes:100_000_000;
  check Alcotest.bool "lan prefers fewer bits" true
    (Netmodel.transfer_time Netmodel.lan small
    < Netmodel.transfer_time Netmodel.lan big)

let test_netmodel_rejects_bad () =
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Netmodel.make")
    (fun () -> ignore (Netmodel.make ~name:"x" ~latency:0.0 ~bandwidth:0.0 ()))

let test_netmodel_loss_pricing () =
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"a" ~bytes:1250;
  Transcript.record t ~sender:Transcript.Bob ~label:"b" ~bytes:1250;
  (* 2 rounds, 2 messages, 20_000 bits *)
  let base = Netmodel.make ~name:"x" ~latency:0.01 ~bandwidth:1e6 () in
  check (Alcotest.float 1e-12) "lossless" (0.02 +. 0.02)
    (Netmodel.transfer_time base t);
  (* loss 1/2: bandwidth term doubles, and each message waits an expected
     p/(1-p) = 1 timeout. *)
  let lossy = Netmodel.with_loss base ~loss:0.5 ~timeout:0.1 in
  check (Alcotest.float 1e-12) "lossy"
    (0.02 +. (0.02 /. 0.5) +. (2.0 *. (0.5 /. 0.5) *. 0.1))
    (Netmodel.transfer_time lossy t);
  check Alcotest.bool "monotone in loss" true
    (Netmodel.transfer_time (Netmodel.with_loss base ~loss:0.25 ~timeout:0.1) t
    < Netmodel.transfer_time lossy t);
  check Alcotest.bool "default timeout used" true
    ((Netmodel.with_loss base ~loss:0.5).Netmodel.timeout
    = Netmodel.default_timeout)

let test_netmodel_zero_loss_unchanged () =
  (* The built-in models are lossless: transfer_time must be the literal
     pre-loss formula, so every LAN/WAN/mobile crossover table in the bench
     suite is unchanged. *)
  let t = Transcript.create () in
  Transcript.record t ~sender:Transcript.Alice ~label:"a" ~bytes:777;
  Transcript.record t ~sender:Transcript.Bob ~label:"b" ~bytes:31_415;
  Transcript.record t ~sender:Transcript.Alice ~label:"c" ~bytes:9;
  List.iter
    (fun net ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "%s literal formula" net.Netmodel.name)
        ((3.0 *. net.Netmodel.latency)
        +. (float_of_int (Transcript.total_bits t) /. net.Netmodel.bandwidth))
        (Netmodel.transfer_time net t))
    [ Netmodel.lan; Netmodel.wan; Netmodel.mobile ]

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

(* Every exported codec, packed with a generator of valid values so the
   fuzzers below can also mutate real encodings. *)
type packed = P : string * 'a QCheck.arbitrary * 'a Codec.t -> packed

let packed_codecs =
  let open QCheck in
  let nonneg = map (fun n -> n land max_int) int in
  let small = int_bound 10_000 in
  let sorted =
    map
      (fun a -> List.sort_uniq compare (Array.to_list a) |> Array.of_list)
      (array_of_size Gen.(0 -- 60) small)
  in
  let sparse =
    map
      (fun l ->
        let module IM = Map.Make (Int) in
        let m = List.fold_left (fun m (k, v) -> IM.add k v m) IM.empty l in
        IM.bindings m |> List.filter (fun (_, v) -> v <> 0) |> Array.of_list)
      (list_of_size Gen.(0 -- 40) (pair small (int_range (-1000) 1000)))
  in
  [
    P ("unit", unit, Codec.unit);
    P ("bool", bool, Codec.bool);
    P ("uint", nonneg, Codec.uint);
    P ("int", int, Codec.int);
    P ("float64", float, Codec.float64);
    P ("float32", float, Codec.float32);
    P ("pair", pair int nonneg, Codec.pair Codec.int Codec.uint);
    P
      ( "triple",
        triple bool int float,
        Codec.triple Codec.bool Codec.int Codec.float64 );
    P ("option", option int, Codec.option Codec.int);
    P ("list", list_of_size Gen.(0 -- 40) int, Codec.list Codec.int);
    P ("array", array_of_size Gen.(0 -- 40) nonneg, Codec.array Codec.uint);
    P ("int_array", array_of_size Gen.(0 -- 60) int, Codec.int_array);
    P ("uint_array", array_of_size Gen.(0 -- 60) nonneg, Codec.uint_array);
    P ("sorted_int_array", sorted, Codec.sorted_int_array);
    P ("sparse_int_vec", sparse, Codec.sparse_int_vec);
    P ("float_array", array_of_size Gen.(0 -- 40) float, Codec.float_array);
    P
      ( "float32_array",
        array_of_size Gen.(0 -- 40) float,
        Codec.float32_array );
    P ("bytes", string, Codec.bytes);
    P
      ( "counter_array",
        array_of_size Gen.(0 -- 60) (int_bound 1_000_000),
        Codec.counter_array );
  ]

(* decode must be total up to Decode_error: any other exception fails the
   property by escaping. *)
let decodes_safely codec s =
  match Codec.decode codec s with
  | _ -> true
  | exception Codec.Decode_error _ -> true

let fuzz_tests =
  let open QCheck in
  let random_bytes = string_gen_of_size Gen.(0 -- 80) Gen.char in
  let raw (P (name, _, c)) =
    Test.make
      ~name:("fuzz: " ^ name ^ " decode total on random bytes")
      ~count:500 random_bytes
      (fun s -> decodes_safely c s)
  in
  let mutated (P (name, arb, c)) =
    Test.make
      ~name:("fuzz: " ^ name ^ " decode total on mutated encodings")
      ~count:300
      (triple arb small_nat small_nat)
      (fun (v, cut, bit) ->
        let e = Codec.encode c v in
        let n = String.length e in
        let truncated = if n = 0 then "" else String.sub e 0 (cut mod n) in
        let flipped =
          if n = 0 then e
          else begin
            let b = Bytes.of_string e in
            let pos = bit mod (8 * n) in
            Bytes.set b (pos / 8)
              (Char.chr
                 (Char.code (Bytes.get b (pos / 8)) lxor (1 lsl (pos mod 8))));
            Bytes.to_string b
          end
        in
        decodes_safely c truncated && decodes_safely c flipped)
  in
  let roundtrips (P (name, arb, c)) =
    (* structural compare so NaN = NaN *)
    Test.make
      ~name:("fuzz: " ^ name ^ " roundtrip")
      ~count:300 arb
      (fun v -> compare (roundtrip c v) v = 0)
  in
  let lossless =
    List.filter
      (fun (P (n, _, _)) -> n <> "float32" && n <> "float32_array")
      packed_codecs
  in
  List.map raw packed_codecs
  @ List.map mutated packed_codecs
  @ List.map roundtrips lossless

(* Journal codec properties: lossless round-trip, and total torn-tail
   tolerant parsing under truncation and bit flips. *)
let journal_entry_arb =
  let open QCheck in
  map
    (fun (alice, label, payload) ->
      {
        Journal.sender = (if alice then Transcript.Alice else Transcript.Bob);
        label;
        payload;
      })
    (triple bool
       (string_gen_of_size Gen.(0 -- 20) Gen.printable)
       (string_gen_of_size Gen.(0 -- 60) Gen.char))

let rec list_is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && list_is_prefix xs' ys'
  | _ :: _, [] -> false

let journal_qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"journal: roundtrip" ~count:300
      (triple
         (string_gen_of_size Gen.(0 -- 20) Gen.printable)
         int
         (list_of_size Gen.(0 -- 20) journal_entry_arb))
      (fun (protocol, seed, entries) ->
        match Journal.of_bytes (Journal.to_bytes ~protocol ~seed entries) with
        | Ok j ->
            j.Journal.protocol = protocol
            && j.Journal.seed = seed
            && j.Journal.entries = entries
            && j.Journal.clean
        | Error _ -> false);
    Test.make ~name:"journal: truncation yields a clean prefix" ~count:300
      (pair (list_of_size Gen.(0 -- 10) journal_entry_arb) small_nat)
      (fun (entries, cut) ->
        let full = Journal.to_bytes ~protocol:"p" ~seed:42 entries in
        let n = String.length full in
        let cut = cut mod (n + 1) in
        match Journal.of_bytes (String.sub full 0 cut) with
        | Error _ -> cut < n (* only an incomplete header may be refused *)
        | Ok j ->
            j.Journal.protocol = "p"
            && j.Journal.seed = 42
            && list_is_prefix j.Journal.entries entries
            && (cut < n || (j.Journal.clean && j.Journal.entries = entries)));
    Test.make ~name:"journal: bit flips never escape or grow the log"
      ~count:300
      (pair (list_of_size Gen.(0 -- 8) journal_entry_arb) small_nat)
      (fun (entries, bit) ->
        let full = Journal.to_bytes ~protocol:"proto" ~seed:(-7) entries in
        let b = Bytes.of_string full in
        let pos = bit mod (8 * Bytes.length b) in
        Bytes.set b (pos / 8)
          (Char.chr
             (Char.code (Bytes.get b (pos / 8)) lxor (1 lsl (pos mod 8))));
        match Journal.of_bytes (Bytes.to_string b) with
        | Error _ -> true
        | Ok j -> List.length j.Journal.entries <= List.length entries);
    Test.make ~name:"journal: random bytes decode totally" ~count:500
      (string_gen_of_size Gen.(0 -- 120) Gen.char)
      (fun s ->
        match Journal.of_bytes s with Ok _ -> true | Error _ -> true);
    (* The tentpole property: resuming from a complete journal reproduces
       the run's output with zero fresh communication — every message is
       served (and byte-verified) from the log. *)
    Test.make ~name:"journal: full replay costs zero fresh bits" ~count:50
      (pair small_nat
         (list_of_size Gen.(1 -- 10) (pair bool (int_bound 1_000_000))))
      (fun (seed, msgs) ->
        let proto ctx =
          List.mapi
            (fun i (a2b, v) ->
              let label = Printf.sprintf "m%d" i in
              if a2b then Ctx.a2b ctx ~label Codec.uint v
              else Ctx.b2a ctx ~label Codec.uint v)
            msgs
        in
        with_tmp_journal @@ fun path ->
        let base = Ctx.run_journaled ~seed ~journal:path ~protocol:"t" proto in
        match Journal.load path with
        | Error _ -> false
        | Ok j ->
            let r = Ctx.resume ~seed ~journal:j proto in
            r.Ctx.output = base.Ctx.output
            && r.Ctx.bits = 0
            && r.Ctx.replayed_messages = List.length msgs
            && r.Ctx.replayed_bits = base.Ctx.bits);
  ]

let qcheck_tests =
  let open QCheck in
  fuzz_tests @ journal_qcheck_tests
  @ [
    Test.make ~name:"codec: int roundtrip" ~count:1000 int (fun n ->
        roundtrip Codec.int n = n);
    Test.make ~name:"codec: uint roundtrip" ~count:1000 (map abs int) (fun n ->
        roundtrip Codec.uint n = n);
    Test.make ~name:"codec: float64 roundtrip" ~count:500 float (fun f ->
        let g = roundtrip Codec.float64 f in
        g = f || (Float.is_nan f && Float.is_nan g));
    Test.make ~name:"codec: int array roundtrip" ~count:200
      (array_of_size Gen.(0 -- 100) int)
      (fun a -> roundtrip Codec.int_array a = a);
    Test.make ~name:"codec: sorted array roundtrip" ~count:200
      (array_of_size Gen.(0 -- 100) (int_bound 10_000))
      (fun a ->
        let sorted = List.sort_uniq compare (Array.to_list a) |> Array.of_list in
        roundtrip Codec.sorted_int_array sorted = sorted);
    Test.make ~name:"codec: counter array roundtrip" ~count:200
      (array_of_size Gen.(0 -- 200) (int_bound 1_000_000))
      (fun a -> roundtrip Codec.counter_array a = a);
    Test.make ~name:"codec: sparse vec roundtrip" ~count:200
      (list_of_size Gen.(0 -- 50) (pair (int_bound 10_000) (int_range (-1000) 1000)))
      (fun l ->
        let module IM = Map.Make (Int) in
        let m = List.fold_left (fun m (k, v) -> IM.add k v m) IM.empty l in
        let a = IM.bindings m |> List.filter (fun (_, v) -> v <> 0) |> Array.of_list in
        roundtrip Codec.sparse_int_vec a = a);
  ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "comm"
    [
      ( "codec",
        [
          Alcotest.test_case "uint" `Quick test_codec_uint;
          Alcotest.test_case "uint sizes" `Quick test_codec_uint_sizes;
          Alcotest.test_case "int" `Quick test_codec_int;
          Alcotest.test_case "bool/unit" `Quick test_codec_bool_unit;
          Alcotest.test_case "floats" `Quick test_codec_float;
          Alcotest.test_case "containers" `Quick test_codec_containers;
          Alcotest.test_case "sorted array" `Quick test_codec_sorted_array;
          Alcotest.test_case "delta compression" `Quick test_codec_sorted_array_compression;
          Alcotest.test_case "counter array" `Quick test_codec_counter_array;
          Alcotest.test_case "sparse vec" `Quick test_codec_sparse_vec;
          Alcotest.test_case "truncated input" `Quick test_codec_truncated_input;
          Alcotest.test_case "trailing garbage" `Quick test_codec_trailing_garbage;
          Alcotest.test_case "adversarial lengths" `Quick test_codec_adversarial_lengths;
          Alcotest.test_case "map" `Quick test_codec_map;
        ] );
      ( "transcript",
        [
          Alcotest.test_case "rounds" `Quick test_transcript_rounds;
          Alcotest.test_case "totals" `Quick test_transcript_totals;
          Alcotest.test_case "by_label order" `Quick test_transcript_by_label_order;
          Alcotest.test_case "by_label aggregates" `Quick test_transcript_by_label_aggregates;
          Alcotest.test_case "by_label empty" `Quick test_transcript_by_label_empty;
          Alcotest.test_case "message order" `Quick test_transcript_message_order;
        ] );
      ( "channel",
        [
          Alcotest.test_case "charges real bytes" `Quick test_channel_charges_real_bytes;
          Alcotest.test_case "lossy codec loses" `Quick test_channel_lossy_codec_loses;
          Alcotest.test_case "ctx reproducible" `Quick test_ctx_reproducible;
          Alcotest.test_case "ctx streams independent" `Quick test_ctx_streams_independent;
          Alcotest.test_case "ctx run counts" `Quick test_ctx_run_counts;
        ] );
      ( "journal",
        [
          Alcotest.test_case "bad headers" `Quick test_journal_bad_headers;
          Alcotest.test_case "entry bytes" `Quick test_journal_entry_bytes;
          Alcotest.test_case "torn tail + reopen" `Quick
            test_journal_torn_tail_reopen;
          Alcotest.test_case "replay mismatch" `Quick
            test_journal_replay_mismatch;
        ] );
      ( "netmodel",
        [
          Alcotest.test_case "formula" `Quick test_netmodel_formula;
          Alcotest.test_case "rounds dominate on wan" `Quick test_netmodel_rounds_dominate_on_wan;
          Alcotest.test_case "bits dominate on lan" `Quick test_netmodel_bits_dominate_on_lan;
          Alcotest.test_case "loss pricing" `Quick test_netmodel_loss_pricing;
          Alcotest.test_case "zero loss unchanged" `Quick test_netmodel_zero_loss_unchanged;
          Alcotest.test_case "rejects bad" `Quick test_netmodel_rejects_bad;
        ] );
      ("properties", qsuite);
    ]
