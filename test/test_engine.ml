(* The batched query engine's contract (docs/API.md):

   1. Batch composition is invisible to each query: the answer a query
      gets inside any batch EQUALS the answer it gets as a singleton
      batch at the same seed (per-group derived randomness).
   2. Batching is strictly cheaper: k same-family queries in one batch
      spend strictly fewer transcript bits than the k standalone runs,
      because the round-1 sketch exchange ships once.
   3. The plan cache changes wall-clock only: hits/misses are observable
      in the report and the Metrics counters, never in answers or bits.
   4. A mid-batch crash leaves a journal whose resume completes with the
      fault-free answers, and fresh + replayed bits account for exactly
      the fault-free transcript. *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Workload = Matprod_workload.Workload
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Fault = Matprod_comm.Fault
module Reliable = Matprod_comm.Reliable
module Journal = Matprod_comm.Journal
module Metrics = Matprod_obs.Metrics
module Outcome = Matprod_core.Outcome
module Engine = Matprod_engine.Engine

let check = Alcotest.check

let gen_pair ~seed ~n =
  let rng = Prng.create (7 * seed) in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  (Imat.of_bmat a, Imat.of_bmat b)

(* eps 0.25 gives Norm_pow the round-1 accuracy beta = sqrt(0.25) = 0.5,
   aligned with the row queries: all three share one lp exchange. *)
let lp_batch =
  [
    Engine.Norm_pow { p = 0.0; eps = 0.25 };
    Engine.Row_norms { p = 0.0; beta = 0.5 };
    Engine.Top_rows { p = 0.0; beta = 0.5; k = 3 };
  ]

let mixed_batch =
  lp_batch
  @ [
      Engine.L0_sample { eps = 0.5; count = 2 };
      Engine.L1_sample { count = 2 };
      Engine.Heavy_hitters { phi = 0.2; eps = 0.1 };
      Engine.Linf { kappa = 2.0 };
      Engine.Exact_product;
      Engine.L0_sample { eps = 0.5; count = 1 };
    ]

let run_batch ?engine ~seed ~a ~b queries =
  let engine =
    match engine with Some e -> e | None -> Engine.create ()
  in
  Ctx.run ~seed (fun ctx -> Engine.run engine ctx ~a ~b queries)

(* Property 1: each answer in the mixed batch equals the singleton-batch
   answer for the same query at the same seed. The second L0_sample is
   excluded here: sample queries merged into one exchange draw later
   slices of the group's shared stream (the concatenation property below
   is their contract). *)
let test_batched_equals_sequential () =
  let seed = 42 in
  let a, b = gen_pair ~seed ~n:20 in
  let batched = (run_batch ~seed ~a ~b mixed_batch).Ctx.output in
  List.iteri
    (fun i q ->
      if i <> 8 then begin
        let solo = (run_batch ~seed ~a ~b [ q ]).Ctx.output in
        if batched.Engine.answers.(i) <> solo.Engine.answers.(0) then
          Alcotest.failf
            "query %d (%s): batched answer differs from its singleton run" i
            (Engine.query_to_string q)
      end)
    mixed_batch

(* Merged sample queries: the slices concatenate to exactly the samples a
   single query with the merged total count draws. *)
let test_sample_concatenation () =
  let seed = 42 in
  let a, b = gen_pair ~seed ~n:20 in
  let split =
    (run_batch ~seed ~a ~b
       [
         Engine.L0_sample { eps = 0.5; count = 2 };
         Engine.L0_sample { eps = 0.5; count = 1 };
       ])
      .Ctx.output
  in
  let merged =
    (run_batch ~seed ~a ~b [ Engine.L0_sample { eps = 0.5; count = 3 } ])
      .Ctx.output
  in
  match (split.Engine.answers, merged.Engine.answers) with
  | [| Engine.L0_samples s1; Engine.L0_samples s2 |], [| Engine.L0_samples m |]
    ->
      if Array.append s1 s2 <> m then
        Alcotest.fail "slices do not concatenate to the merged run"
  | _ -> Alcotest.fail "unexpected answer shapes"

(* Merged multi-sample queries: the two L0_sample queries (counts 2 and 1)
   ride one 3-sample exchange; the slices must keep their sizes. *)
let test_sample_slicing () =
  let seed = 7 in
  let a, b = gen_pair ~seed ~n:20 in
  let rep = (run_batch ~seed ~a ~b mixed_batch).Ctx.output in
  (match rep.Engine.answers.(3) with
  | Engine.L0_samples s -> check Alcotest.int "first l0 slice" 2 (Array.length s)
  | _ -> Alcotest.fail "answer 3 should be L0_samples");
  (match rep.Engine.answers.(8) with
  | Engine.L0_samples s -> check Alcotest.int "second l0 slice" 1 (Array.length s)
  | _ -> Alcotest.fail "answer 8 should be L0_samples");
  let l0_groups =
    List.filter
      (fun g -> List.mem 3 g.Engine.members)
      rep.Engine.groups
  in
  match l0_groups with
  | [ g ] ->
      check (Alcotest.list Alcotest.int) "both l0 queries share one group"
        [ 3; 8 ] g.Engine.members
  | _ -> Alcotest.fail "expected exactly one l0 group"

(* Property 2: the three same-family queries in one batch cost strictly
   fewer bits than the three standalone runs, and the round-1 sketch
   message crosses the wire exactly once. *)
let test_bit_savings () =
  let seed = 5 in
  let a, b = gen_pair ~seed ~n:24 in
  let batched = run_batch ~seed ~a ~b lp_batch in
  let standalone =
    List.fold_left
      (fun acc q -> acc + (run_batch ~seed ~a ~b [ q ]).Ctx.bits)
      0 lp_batch
  in
  check Alcotest.bool
    (Printf.sprintf "batch (%d bits) strictly under standalone (%d bits)"
       batched.Ctx.bits standalone)
    true
    (batched.Ctx.bits < standalone);
  let prefix = "engine: lp sketches" in
  let sketch_messages =
    List.length
      (List.filter
         (fun m ->
           let l = m.Transcript.label in
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
         (Transcript.messages batched.Ctx.transcript))
  in
  check Alcotest.int "round-1 sketches shipped once" 1 sketch_messages;
  let rep = batched.Ctx.output in
  check Alcotest.int "one exchange group" 1 (List.length rep.Engine.groups);
  check Alcotest.int "group bits = total bits" batched.Ctx.bits
    rep.Engine.total_bits

(* Property 3a: hit/miss accounting, in the report and the counters. *)
let test_plan_cache_counters () =
  let seed = 9 in
  let a, b = gen_pair ~seed ~n:20 in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let engine = Engine.create () in
  let first = (run_batch ~engine ~seed ~a ~b lp_batch).Ctx.output in
  check Alcotest.int "cold run misses" 1 first.Engine.plan_misses;
  check Alcotest.int "cold run has no hits" 0 first.Engine.plan_hits;
  let second = (run_batch ~engine ~seed ~a ~b lp_batch).Ctx.output in
  check Alcotest.int "warm run hits" 1 second.Engine.plan_hits;
  check Alcotest.int "warm run misses nothing" 0 second.Engine.plan_misses;
  (match second.Engine.groups with
  | [ g ] ->
      check Alcotest.bool "group reports the hit" true
        (g.Engine.plan = Engine.Plan_hit)
  | _ -> Alcotest.fail "expected one group");
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "engine stats accumulate" (1, 1)
    (Engine.plan_cache_stats engine);
  (* Plan-cache counters record into per-group scopes: sum the tree. *)
  check Alcotest.int "metrics hit counter" 1
    (Metrics.total "engine_plan_hits");
  check Alcotest.int "metrics miss counter" 1
    (Metrics.total "engine_plan_misses")

(* Property 3b: a cache hit is invisible on the wire — same answers, same
   bits as a cold engine. Distinct seeds never share a slot. *)
let test_plan_cache_soundness () =
  let seed = 11 in
  let a, b = gen_pair ~seed ~n:20 in
  let warm_engine = Engine.create () in
  ignore (run_batch ~engine:warm_engine ~seed ~a ~b lp_batch);
  let warm = run_batch ~engine:warm_engine ~seed ~a ~b lp_batch in
  let cold = run_batch ~seed ~a ~b lp_batch in
  if warm.Ctx.output.Engine.answers <> cold.Ctx.output.Engine.answers then
    Alcotest.fail "plan-cache hit changed the answers";
  check Alcotest.int "plan-cache hit leaves bits unchanged" cold.Ctx.bits
    warm.Ctx.bits;
  (* Same engine, different seed: the cached family must not be reused. *)
  let other = (run_batch ~engine:warm_engine ~seed:(seed + 1) ~a ~b lp_batch).Ctx.output in
  check Alcotest.int "different seed misses" 1 other.Engine.plan_misses

(* Property 3c: LRU eviction at capacity 1, and capacity 0 disables. *)
let test_plan_cache_lru () =
  let seed = 13 in
  let a, b = gen_pair ~seed ~n:20 in
  let p1 = [ Engine.Row_norms { p = 0.0; beta = 0.5 } ] in
  let p2 = [ Engine.Row_norms { p = 1.0; beta = 0.5 } ] in
  let tiny = Engine.create ~plan_cache_capacity:1 () in
  ignore (run_batch ~engine:tiny ~seed ~a ~b p1);
  ignore (run_batch ~engine:tiny ~seed ~a ~b p2); (* evicts p1's plan *)
  let again = (run_batch ~engine:tiny ~seed ~a ~b p1).Ctx.output in
  check Alcotest.int "evicted plan misses again" 1 again.Engine.plan_misses;
  let off = Engine.create ~plan_cache_capacity:0 () in
  ignore (run_batch ~engine:off ~seed ~a ~b p1);
  let second = (run_batch ~engine:off ~seed ~a ~b p1).Ctx.output in
  check Alcotest.int "capacity 0 never hits" 1 second.Engine.plan_misses;
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "capacity 0 stats" (0, 2)
    (Engine.plan_cache_stats off)

(* Property 4: crash mid-batch, then resume from the journal. *)
let test_journal_resume_mid_batch () =
  let seed = 17 in
  let a, b = gen_pair ~seed ~n:20 in
  let queries = mixed_batch in
  let body ctx = Engine.run (Engine.create ()) ctx ~a ~b queries in
  let base = Ctx.run ~seed body in
  let messages = Transcript.message_count base.Ctx.transcript in
  check Alcotest.bool "batch spans several messages" true (messages >= 3);
  let path = Filename.temp_file "matprod_engine" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let victim =
        (List.nth (Transcript.messages base.Ctx.transcript) 2).Transcript.sender
      in
      (match
         Outcome.guard (fun () ->
             Ctx.run_journaled ~seed ~journal:path ~protocol:"engine batch"
               (fun ctx ->
                 Ctx.install_wire ctx
                   ~fault:
                     (Fault.crash_only ~party:victim
                        ~at:(Fault.After_messages 2))
                   ~reliable:(Reliable.config ~max_attempts:4 ())
                   ();
                 body ctx))
       with
      | Error (Outcome.Crashed { after_messages; _ }) ->
          check Alcotest.int "crash mid-batch" 2 after_messages
      | Ok _ -> Alcotest.fail "crash rule did not fire"
      | Error e ->
          Alcotest.failf "wrong error: %s" (Outcome.error_to_string e));
      let journal =
        match Journal.load path with
        | Ok j -> j
        | Error e -> Alcotest.failf "journal unreadable: %s" e
      in
      check Alcotest.int "journal holds the delivered prefix" 2
        (List.length journal.Journal.entries);
      let resumed = Ctx.resume ~seed ~journal body in
      if resumed.Ctx.output.Engine.answers <> base.Ctx.output.Engine.answers
      then Alcotest.fail "resumed answers differ from the fault-free run";
      check Alcotest.int "replayed the journaled prefix" 2
        resumed.Ctx.replayed_messages;
      check Alcotest.int "fresh + replayed = fault-free bits" base.Ctx.bits
        (resumed.Ctx.bits + resumed.Ctx.replayed_bits))

(* run_safe: typed errors on a dead wire, clean passthrough otherwise. *)
let test_run_safe () =
  let seed = 19 in
  let a, b = gen_pair ~seed ~n:16 in
  let crashed =
    Ctx.run ~seed (fun ctx ->
        Ctx.install_wire ctx
          ~fault:
            (Fault.crash_only ~party:Transcript.Bob ~at:(Fault.After_messages 0))
          ~reliable:(Reliable.config ~max_attempts:3 ())
          ();
        Engine.run_safe (Engine.create ()) ctx ~a ~b lp_batch)
  in
  (match crashed.Ctx.output with
  | Error (Outcome.Crashed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e)
  | Ok _ -> Alcotest.fail "batch over a dead wire cannot succeed");
  let clean =
    Ctx.run ~seed (fun ctx ->
        Engine.run_safe (Engine.create ()) ctx ~a ~b lp_batch)
  in
  match clean.Ctx.output with
  | Ok (rep, diag) ->
      check Alcotest.int "diagnostics bill the batch" rep.Engine.total_bits
        diag.Outcome.bits;
      let base = (run_batch ~seed ~a ~b lp_batch).Ctx.output in
      if rep.Engine.answers <> base.Engine.answers then
        Alcotest.fail "run_safe answers differ from run"
  | Error e -> Alcotest.failf "clean run_safe failed: %s" (Outcome.error_to_string e)

(* Degenerate batches. *)
let test_edge_cases () =
  let a, b = gen_pair ~seed:23 ~n:12 in
  (match run_batch ~seed:23 ~a ~b [] with
  | _ -> Alcotest.fail "empty batch must be rejected"
  | exception Invalid_argument _ -> ());
  let rep =
    (run_batch ~seed:23 ~a ~b [ Engine.L0_sample { eps = 0.5; count = 0 } ])
      .Ctx.output
  in
  (match rep.Engine.answers.(0) with
  | Engine.L0_samples [||] -> ()
  | _ -> Alcotest.fail "count 0 should answer an empty slice");
  check Alcotest.int "count 0 costs nothing" 0 rep.Engine.total_bits;
  (* Duplicate queries: answered once, identical answers. *)
  let q = Engine.Norm_pow { p = 0.0; eps = 0.25 } in
  let dup = (run_batch ~seed:23 ~a ~b [ q; q ]).Ctx.output in
  check Alcotest.int "duplicates share a group" 1 (List.length dup.Engine.groups);
  if dup.Engine.answers.(0) <> dup.Engine.answers.(1) then
    Alcotest.fail "duplicate queries must get the same answer"

(* Query-spec grammar: canonical strings round-trip, junk is typed. *)
let test_query_specs () =
  List.iter
    (fun q ->
      match Engine.query_of_string (Engine.query_to_string q) with
      | Ok q' when q' = q -> ()
      | Ok _ ->
          Alcotest.failf "%s did not round-trip" (Engine.query_to_string q)
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e)
    (mixed_batch @ [ Engine.Linf { kappa = 4.0 } ]);
  List.iter
    (fun spec ->
      match Engine.query_of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" spec)
    [ "norms"; "norm:q=1"; "top:k=three"; "l0:eps"; "exact:p=1" ];
  match Engine.query_of_string "top:k=7" with
  | Ok (Engine.Top_rows { k = 7; _ }) -> ()
  | _ -> Alcotest.fail "defaults should fill unset keys"

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "batched = sequential" `Quick
            test_batched_equals_sequential;
          Alcotest.test_case "merged samples concatenate" `Quick
            test_sample_concatenation;
          Alcotest.test_case "sample slicing" `Quick test_sample_slicing;
        ] );
      ( "savings",
        [ Alcotest.test_case "batch strictly cheaper" `Quick test_bit_savings ]
      );
      ( "plan cache",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_plan_cache_counters;
          Alcotest.test_case "hits are invisible" `Quick
            test_plan_cache_soundness;
          Alcotest.test_case "lru eviction" `Quick test_plan_cache_lru;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "journal resume mid-batch" `Quick
            test_journal_resume_mid_batch;
          Alcotest.test_case "run_safe trichotomy" `Quick test_run_safe;
        ] );
      ( "edges",
        [
          Alcotest.test_case "degenerate batches" `Quick test_edge_cases;
          Alcotest.test_case "query specs" `Quick test_query_specs;
        ] );
    ]
