(* Plan/apply equivalence and domain-pool determinism.

   Two hard promises from docs/PERFORMANCE.md are enforced here:

   1. Planned kernels are BIT-identical to the unplanned sketch paths —
      qcheck properties compare the arrays with structural equality, no
      tolerance, for every sketch family and every Lp branch.

   2. The domain pool never shows in observable behaviour: journaled
      transcripts of every chaos-gallery protocol are byte-for-byte equal
      at --domains 1 and --domains 4, and the outputs are equal too. *)

module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Countsketch = Matprod_sketch.Countsketch
module Countmin = Matprod_sketch.Countmin
module Ams = Matprod_sketch.Ams
module Stable_sketch = Matprod_sketch.Stable_sketch
module L0_sketch = Matprod_sketch.L0_sketch
module Cohen = Matprod_sketch.Cohen
module Srht = Matprod_sketch.Srht
module Lp = Matprod_sketch.Lp
module Fwht = Matprod_util.Fwht
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Workload = Matprod_workload.Workload
module Ctx = Matprod_comm.Ctx
module Metrics = Matprod_obs.Metrics

module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry

let check = Alcotest.check
let dim = 400

(* ------------------------------------------------------------------ *)
(* qcheck: planned = unplanned, structurally. *)

let sparse_vec_gen =
  QCheck.Gen.(
    list_size (0 -- 25) (pair (int_bound (dim - 1)) (int_range (-50) 50))
    |> map (fun l ->
           let module IM = Map.Make (Int) in
           let m =
             List.fold_left
               (fun m (k, v) ->
                 IM.update k (fun o -> Some (Option.value ~default:0 o + v)) m)
               IM.empty l
           in
           IM.bindings m |> List.filter (fun (_, v) -> v <> 0) |> Array.of_list))

let seeded_vec = QCheck.(pair (int_bound 10_000) (make sparse_vec_gen))

let float_bits_equal x y =
  Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let farray_bits_equal a b =
  Array.length a = Array.length b && Array.for_all2 float_bits_equal a b

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"countsketch: planned = unplanned" ~count:100 seeded_vec
      (fun (seed, vec) ->
        let t = Countsketch.create (Prng.create seed) ~buckets:32 ~reps:5 in
        let p = Countsketch.plan t ~dim in
        Countsketch.sketch_with_plan t p vec = Countsketch.sketch t vec);
    Test.make ~name:"countsketch: sketch_into scrubs a dirty scratch" ~count:50
      seeded_vec (fun (seed, vec) ->
        let t = Countsketch.create (Prng.create seed) ~buckets:32 ~reps:5 in
        let p = Countsketch.plan t ~dim in
        let dst = Array.make (Countsketch.size t) Float.nan in
        Countsketch.sketch_into t p ~dst vec;
        dst = Countsketch.sketch t vec);
    Test.make ~name:"ams: planned = unplanned" ~count:100 seeded_vec
      (fun (seed, vec) ->
        let t = Ams.create (Prng.create seed) ~eps:0.4 ~groups:3 in
        let p = Ams.plan t ~dim in
        Ams.sketch_with_plan t p vec = Ams.sketch t vec);
    Test.make ~name:"stable p=1: planned = unplanned" ~count:60 seeded_vec
      (fun (seed, vec) ->
        let t = Stable_sketch.create (Prng.create seed) ~p:1.0 ~eps:0.4 ~groups:2 in
        let p = Stable_sketch.plan t ~dim in
        Stable_sketch.sketch_with_plan t p vec = Stable_sketch.sketch t vec);
    Test.make ~name:"stable p=0.5: sketch_into = sketch" ~count:60 seeded_vec
      (fun (seed, vec) ->
        let t = Stable_sketch.create (Prng.create seed) ~p:0.5 ~eps:0.4 ~groups:2 in
        let p = Stable_sketch.plan t ~dim in
        let dst = Array.make (Stable_sketch.size t) Float.nan in
        Stable_sketch.sketch_into t p ~dst vec;
        dst = Stable_sketch.sketch t vec);
    Test.make ~name:"l0: planned = unplanned" ~count:100 seeded_vec
      (fun (seed, vec) ->
        let t = L0_sketch.create (Prng.create seed) ~eps:0.5 ~groups:3 ~dim in
        let p = L0_sketch.plan t ~dim in
        L0_sketch.sketch_with_plan t p vec = L0_sketch.sketch t vec);
    Test.make ~name:"l0: sketch_into scrubs a dirty scratch" ~count:50 seeded_vec
      (fun (seed, vec) ->
        let t = L0_sketch.create (Prng.create seed) ~eps:0.5 ~groups:3 ~dim in
        let p = L0_sketch.plan t ~dim in
        let dst = Array.make (L0_sketch.size t) max_int in
        L0_sketch.sketch_into t p ~dst vec;
        dst = L0_sketch.sketch t vec);
    Test.make ~name:"lp dispatcher: planned = unplanned on every branch"
      ~count:40
      (pair (int_bound 10_000) (make sparse_vec_gen))
      (fun (seed, vec) ->
        List.for_all
          (fun p ->
            let t = Lp.create (Prng.create seed) ~p ~eps:0.5 ~groups:2 ~dim in
            let plan = Lp.plan t ~dim in
            Lp.sketch_with_plan t plan vec = Lp.sketch t vec
            &&
            let dst = Lp.empty t in
            Lp.sketch_into t plan ~dst vec;
            dst = Lp.sketch t vec)
          [ 0.0; 0.7; 1.0; 2.0 ]);
    Test.make ~name:"cohen: planned column mins = unplanned" ~count:40
      (int_bound 10_000) (fun seed ->
        let rng = Prng.create seed in
        let t = Cohen.create rng ~reps:6 ~rows:60 in
        let a = Workload.uniform_bool rng ~rows:60 ~cols:30 ~density:0.2 in
        let at = Bmat.transpose a in
        let supp_of_col k = Bmat.row at k in
        let p = Cohen.plan t in
        Cohen.column_mins_with_plan t p ~supp_of_col ~cols:30
        = Cohen.column_mins t ~supp_of_col ~cols:30);
    (* FWHT laws (docs/SKETCHES.md). The blocked/fused production kernel
       must be bitwise the naive radix-2 ladder on arbitrary floats —
       identical operation tree — and on integer inputs the unnormalised
       algebra is exact: H(Hx) = n·x and Parseval with equality, no
       tolerance. n sweeps past [block_floats] to cross the cache-blocked
       split. *)
    Test.make ~name:"fwht: blocked transform = naive ladder, bitwise"
      ~count:60
      (pair (int_bound 10_000) (int_bound 13))
      (fun (seed, logn) ->
        let n = 1 lsl logn in
        let rng = Prng.create seed in
        let a = Fwht.scratch n and b = Fwht.scratch n in
        for i = 0 to n - 1 do
          let v = Prng.gaussian rng in
          Bigarray.Array1.set a i v;
          Bigarray.Array1.set b i v
        done;
        Fwht.transform a ~n;
        Fwht.naive b ~n;
        let ok = ref true in
        for i = 0 to n - 1 do
          if
            not
              (float_bits_equal
                 (Bigarray.Array1.get a i)
                 (Bigarray.Array1.get b i))
          then ok := false
        done;
        !ok);
    Test.make ~name:"fwht: involution and Parseval, exact on integers"
      ~count:60
      (pair (int_bound 10_000) (int_bound 10))
      (fun (seed, logn) ->
        let n = 1 lsl logn in
        let rng = Prng.create seed in
        let x = Array.init n (fun _ -> float_of_int (Prng.int rng 201 - 100)) in
        let a = Fwht.scratch n in
        Array.iteri (fun i v -> Bigarray.Array1.set a i v) x;
        Fwht.transform a ~n;
        let hx_sq = ref 0.0 and x_sq = ref 0.0 in
        for i = 0 to n - 1 do
          let h = Bigarray.Array1.get a i in
          hx_sq := !hx_sq +. (h *. h);
          x_sq := !x_sq +. (x.(i) *. x.(i))
        done;
        let parseval = !hx_sq = float_of_int n *. !x_sq in
        Fwht.transform a ~n;
        let involution = ref true in
        for i = 0 to n - 1 do
          if Bigarray.Array1.get a i <> float_of_int n *. x.(i) then
            involution := false
        done;
        parseval && !involution);
    Test.make ~name:"srht: planned = unplanned" ~count:100 seeded_vec
      (fun (seed, vec) ->
        let t = Srht.create (Prng.create seed) ~eps:0.4 ~groups:3 ~dim in
        let p = Srht.plan t ~dim in
        Srht.sketch_with_plan t p vec = Srht.sketch t vec);
    (* Integer inputs make every SRHT intermediate an exact integer, so
       the densify+FWHT route and the tabulated sparse route agree bit
       for bit — forced via the [dense_nnz] override (the default
       threshold sits above this generator's nnz). *)
    Test.make ~name:"srht: dense route = sparse route = unplanned, bitwise"
      ~count:100 seeded_vec (fun (seed, vec) ->
        let t = Srht.create (Prng.create seed) ~eps:0.4 ~groups:3 ~dim in
        let dense = Srht.plan ~dense_nnz:0 t ~dim in
        let sparse = Srht.plan ~dense_nnz:max_int t ~dim in
        let y = Srht.sketch t vec in
        farray_bits_equal (Srht.sketch_with_plan t dense vec) y
        && farray_bits_equal (Srht.sketch_with_plan t sparse vec) y);
    Test.make ~name:"srht: sketch_into scrubs a dirty scratch" ~count:50
      seeded_vec (fun (seed, vec) ->
        let t = Srht.create (Prng.create seed) ~eps:0.4 ~groups:3 ~dim in
        let p = Srht.plan t ~dim in
        let dst = Array.make (Srht.size t) Float.nan in
        Srht.sketch_into t p ~dst vec;
        dst = Srht.sketch t vec);
    Test.make ~name:"countmin: hoisted counters keep totals" ~count:40
      seeded_vec (fun (seed, vec) ->
        let t = Countmin.create (Prng.create seed) ~buckets:16 ~reps:4 in
        let was = Metrics.enabled () in
        Metrics.set_enabled true;
        let c_hash = Metrics.counter "hash_evals" in
        Fun.protect ~finally:(fun () -> Metrics.set_enabled was) @@ fun () ->
        (* Batched accounting in [sketch] must equal per-update accounting. *)
        let before = Metrics.value c_hash in
        let via_sketch = Countmin.sketch t vec in
        let after_sketch = Metrics.value c_hash in
        let via_updates = Countmin.empty t in
        Array.iter (fun (i, v) -> Countmin.update t via_updates i v) vec;
        let after_updates = Metrics.value c_hash in
        via_sketch = via_updates
        && after_sketch - before = after_updates - after_sketch);
  ]

(* ------------------------------------------------------------------ *)
(* Pool semantics. *)

let with_domains d f =
  Pool.set_size d;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

let test_pool_init_matches_sequential () =
  let f i = (i * 7919) land 1023 in
  let expect = Array.init 10_000 f in
  List.iter
    (fun d ->
      with_domains d (fun () ->
          check Alcotest.bool
            (Printf.sprintf "init identical at %d domains" d)
            true
            (Pool.init 10_000 f = expect)))
    [ 1; 2; 4 ]

let test_pool_map_sum_bit_identical () =
  (* Floating sums are order-sensitive; the pool promises index order. *)
  let f i = 1.0 /. float_of_int (i + 1) in
  let expect = ref 0.0 in
  for i = 0 to 9_999 do
    expect := !expect +. f i
  done;
  List.iter
    (fun d ->
      with_domains d (fun () ->
          check (Alcotest.float 0.0)
            (Printf.sprintf "map_sum bit-identical at %d domains" d)
            !expect (Pool.map_sum 10_000 f)))
    [ 1; 2; 4 ]

let test_pool_edges () =
  with_domains 4 (fun () ->
      check Alcotest.int "init 0 is empty" 0 (Array.length (Pool.init 0 (fun i -> i)));
      check Alcotest.bool "init 1" true (Pool.init 1 (fun i -> i * 3) = [| 0 |]);
      check (Alcotest.float 0.0) "map_sum 0" 0.0 (Pool.map_sum 0 (fun _ -> 1.0)))

exception Boom

let test_pool_exception_propagates () =
  with_domains 4 (fun () ->
      (match Pool.init 1000 (fun i -> if i = 500 then raise Boom else i) with
      | _ -> Alcotest.fail "expected Boom to escape"
      | exception Boom -> ());
      (* The pool must stay serviceable after a failed job. *)
      check Alcotest.bool "pool survives an exception" true
        (Pool.init 100 (fun i -> i) = Array.init 100 (fun i -> i)))

let test_pool_size_floor () =
  (match Pool.set_size 0 with
  | () -> Alcotest.fail "set_size 0 should be rejected"
  | exception Invalid_argument _ -> ());
  check Alcotest.bool "size >= 1" true (Pool.size () >= 1)

(* ------------------------------------------------------------------ *)
(* Chaos-gallery mirror: journaled transcripts must be byte-identical at
   --domains 1 and --domains 4. The gallery is the estimator registry
   (exactly the set test_faults sweeps), on smaller instances. *)

let protocols ~seed =
  let rng = Prng.create (7 * seed) in
  let n = 16 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  List.map
    (fun packed ->
      (Estimator.name packed, fun ctx -> Estimator.run_default packed ctx ~a ~b))
    (Registry.all ())

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_journaled_at ~domains ~seed ~name f =
  Pool.set_size domains;
  let path = Filename.temp_file "matprod_plan" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let run = Ctx.run_journaled ~seed ~journal:path ~protocol:name f in
      (run.Ctx.output, read_all path))

let test_domains_byte_identical () =
  Fun.protect ~finally:(fun () -> Pool.set_size 1) @@ fun () ->
  List.iteri
    (fun i (name, f) ->
      let seed = 9000 + i in
      let out1, j1 = run_journaled_at ~domains:1 ~seed ~name f in
      let out4, j4 = run_journaled_at ~domains:4 ~seed ~name f in
      check Alcotest.bool (name ^ ": outputs equal across domain counts") true
        (out1 = out4);
      check Alcotest.bool (name ^ ": journals byte-identical") true
        (String.equal j1 j4);
      check Alcotest.bool (name ^ ": journal non-empty") true
        (String.length j1 > 0))
    (protocols ~seed:3)

(* ------------------------------------------------------------------ *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest qcheck_tests in
  Alcotest.run "plan"
    [
      ("equivalence", qsuite);
      ( "pool",
        [
          Alcotest.test_case "init matches sequential" `Quick
            test_pool_init_matches_sequential;
          Alcotest.test_case "map_sum bit-identical" `Quick
            test_pool_map_sum_bit_identical;
          Alcotest.test_case "edge cases" `Quick test_pool_edges;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "size floor" `Quick test_pool_size_floor;
        ] );
      ( "domains",
        [
          Alcotest.test_case "gallery byte-identical at 1 vs 4 domains" `Quick
            test_domains_byte_identical;
        ] );
    ]
