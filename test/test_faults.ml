(* Chaos harness: sweep fault configurations over every core protocol and
   assert the trichotomy — each run ends in an in-guarantee success or a
   typed error, never an escaped exception and never a silently wrong
   answer. "In guarantee" is checked the strong way: the reliability layer
   delivers intact bytes or nothing, so whenever a chaotic run completes,
   its output must EQUAL the fault-free run at the same seed.

   The seed matrix is fixed (override with MATPROD_CHAOS_SEEDS=1,2,...). *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Workload = Matprod_workload.Workload
module Fault = Matprod_comm.Fault
module Reliable = Matprod_comm.Reliable
module Channel = Matprod_comm.Channel
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Metrics = Matprod_obs.Metrics

module Outcome = Matprod_core.Outcome
module Boosting = Matprod_core.Boosting
module Lp_protocol = Matprod_core.Lp_protocol
module L0_sampling = Matprod_core.L0_sampling
module L1_exact = Matprod_core.L1_exact
module Linf_binary = Matprod_core.Linf_binary
module Linf_general = Matprod_core.Linf_general
module Linf_kappa = Matprod_core.Linf_kappa
module Hh_binary = Matprod_core.Hh_binary
module Hh_countsketch = Matprod_core.Hh_countsketch
module Hh_general = Matprod_core.Hh_general
module Matprod_protocol = Matprod_core.Matprod_protocol
module Entry_map = Matprod_core.Common.Entry_map

let check = Alcotest.check

let seeds =
  match Sys.getenv_opt "MATPROD_CHAOS_SEEDS" with
  | None -> [ 1; 2; 3 ]
  | Some s ->
      let parsed = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
      if parsed = [] then [ 1; 2; 3 ] else parsed

(* ------------------------------------------------------------------ *)
(* Fault configurations: >= 4 kinds plus a mixed storm. *)

let z = Fault.zero_rates

let fault_kinds =
  [
    ("drop", { z with Fault.drop = 0.15 });
    ("corrupt", { z with Fault.corrupt = 0.25 });
    ("truncate", { z with Fault.truncate = 0.25 });
    ("duplicate", { z with Fault.duplicate = 0.3 });
    ("delay", { z with Fault.delay = 0.3; delay_s = 0.12 });
    ( "mixed",
      {
        Fault.drop = 0.08;
        corrupt = 0.1;
        truncate = 0.08;
        duplicate = 0.1;
        delay = 0.15;
        delay_s = 0.1;
      } );
  ]

(* ------------------------------------------------------------------ *)
(* The protocol gallery. Outputs are wrapped in one comparable type so a
   chaotic Ok can be checked equal to the fault-free baseline. *)

type output =
  | F of float
  | Coords of (int * int) list
  | Sample of (int * int * int) option
  | Shares of (int * int * int) list * (int * int * int) list
  | Level of float * int

let protocols ~seed =
  let rng = Prng.create (7 * seed) in
  let n = 20 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  [
    ( "lp p=0",
      fun ctx ->
        F (Lp_protocol.run ctx (Lp_protocol.default_params ~eps:0.5 ()) ~a:ai ~b:bi) );
    ( "lp p=1",
      fun ctx ->
        F
          (Lp_protocol.run ctx
             (Lp_protocol.default_params ~p:1.0 ~eps:0.5 ())
             ~a:ai ~b:bi) );
    ( "l1_exact",
      fun ctx -> F (float_of_int (L1_exact.run ctx ~a:ai ~b:bi)) );
    ( "l0_sampling",
      fun ctx ->
        Sample
          (Option.map
             (fun s -> L0_sampling.(s.row, s.col, s.value))
             (L0_sampling.run ctx (L0_sampling.default_params ~eps:0.5) ~a:ai ~b:bi))
    );
    ( "linf_binary",
      fun ctx ->
        let r = Linf_binary.run ctx (Linf_binary.default_params ~eps:0.5) ~a ~b in
        Level (r.Linf_binary.estimate, r.Linf_binary.level) );
    ( "linf_general",
      fun ctx -> F (Linf_general.run ctx { Linf_general.kappa = 2.0 } ~a:ai ~b:bi) );
    ( "linf_kappa",
      fun ctx ->
        let r = Linf_kappa.run ctx (Linf_kappa.default_params ~kappa:4.0) ~a ~b in
        Level (r.Linf_kappa.estimate, r.Linf_kappa.level) );
    ( "hh_binary",
      fun ctx ->
        Coords
          (Hh_binary.run ctx (Hh_binary.default_params ~phi:0.2 ~eps:0.1 ()) ~a ~b)
    );
    ( "hh_countsketch",
      fun ctx ->
        Coords
          (Hh_countsketch.run ctx
             (Hh_countsketch.default_params ~phi:0.2 ~eps:0.1 ~buckets:16)
             ~a:ai ~b:bi) );
    ( "hh_general",
      fun ctx ->
        Coords
          (Hh_general.run ctx (Hh_general.default_params ~phi:0.2 ~eps:0.1 ()) ~a:ai ~b:bi)
    );
    ( "matprod",
      fun ctx ->
        let s = Matprod_protocol.run ctx ~a:ai ~b:bi in
        Shares
          ( Entry_map.entries s.Matprod_protocol.alice,
            Entry_map.entries s.Matprod_protocol.bob ) );
  ]

let reliable = Reliable.config ~max_attempts:12 ~base_timeout:0.05 ()

let run_baseline ~seed f = (Ctx.run ~seed f).Ctx.output

let run_chaotic ~seed ~fault_seed ~rates f =
  Outcome.guard (fun () ->
      Ctx.run ~seed (fun ctx ->
          Ctx.install_wire ctx
            ~fault:(Fault.uniform ~seed:fault_seed rates)
            ~reliable ();
          f ctx))

(* The trichotomy, for one fault kind over every protocol and seed. Any
   exception other than the typed families turns into an alcotest error
   (it escapes), which is exactly what the sweep forbids. *)
let test_trichotomy (kind, rates) () =
  let failures = ref 0 and successes = ref 0 in
  List.iter
    (fun seed ->
      List.iteri
        (fun i (name, f) ->
          let run_seed = (1000 * seed) + i in
          let baseline = run_baseline ~seed:run_seed f in
          match
            run_chaotic ~seed:run_seed ~fault_seed:(run_seed + 500_000) ~rates f
          with
          | Ok run ->
              incr successes;
              if run.Ctx.output <> baseline then
                Alcotest.failf
                  "%s/%s seed %d: chaotic run completed with an output that \
                   differs from the fault-free run (silent corruption)"
                  kind name seed
          | Error (Outcome.Link_failure _)
          | Error (Outcome.Decode_failure _)
          | Error (Outcome.Protocol_failure _) ->
              incr failures
          | Error (Outcome.Precondition m) ->
              (* Valid inputs: a precondition error here is a harness bug. *)
              Alcotest.failf "%s/%s seed %d: unexpected precondition: %s" kind
                name seed m)
        (protocols ~seed))
    seeds;
  (* The sweep must actually exercise the success path (the reliability
     layer recovering), not just fail everything. *)
  check Alcotest.bool
    (Printf.sprintf "%s: some chaotic runs complete (%d ok, %d failed)" kind
       !successes !failures)
    true (!successes > 0)

(* With every rate at zero the wire must be invisible: same output, same
   bits, same rounds — byte for byte. *)
let test_zero_rates_transparent () =
  List.iter
    (fun seed ->
      List.iteri
        (fun i (name, f) ->
          let run_seed = (2000 * seed) + i in
          let base = Ctx.run ~seed:run_seed f in
          let wired =
            Ctx.run ~seed:run_seed (fun ctx ->
                Ctx.install_wire ctx
                  ~fault:(Fault.uniform ~seed:99 Fault.zero_rates)
                  ~reliable ();
                f ctx)
          in
          if wired.Ctx.output <> base.Ctx.output then
            Alcotest.failf "%s: zero-rate wire changed the output" name;
          check Alcotest.int
            (Printf.sprintf "%s: bits unchanged" name)
            base.Ctx.bits wired.Ctx.bits;
          check Alcotest.int
            (Printf.sprintf "%s: rounds unchanged" name)
            base.Ctx.rounds wired.Ctx.rounds)
        (protocols ~seed))
    [ List.hd seeds ]

(* A wire that drops everything must end in Link_failure, with every
   attempt charged to the transcript. *)
let test_total_loss_is_typed () =
  let rates = { z with Fault.drop = 1.0 } in
  let tr = ref None in
  (match
     Outcome.guard (fun () ->
         Ctx.run ~seed:4 (fun ctx ->
             Ctx.install_wire ctx ~fault:(Fault.uniform ~seed:5 rates)
               ~reliable:(Reliable.config ~max_attempts:7 ())
               ();
             tr := Some (Ctx.transcript ctx);
             Ctx.a2b ctx ~label:"doomed" Matprod_comm.Codec.uint 42))
   with
  | Error (Outcome.Link_failure { label = "doomed"; attempts = 7 }) -> ()
  | Ok _ -> Alcotest.fail "total loss cannot succeed"
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e));
  match !tr with
  | None -> Alcotest.fail "transcript not captured"
  | Some tr ->
      check Alcotest.int "all 7 attempts charged" 7 (Transcript.message_count tr)

(* Retransmissions show up in the transcript (ack labels, extra bytes) and
   in the Matprod_obs counters. *)
let test_accounting_and_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let rates = { z with Fault.drop = 0.3 } in
  let name, f = List.hd (protocols ~seed:1) in
  ignore name;
  let base = Ctx.run ~seed:11 f in
  let result =
    run_chaotic ~seed:11 ~fault_seed:42 ~rates f
  in
  let retries = Metrics.value (Metrics.counter "reliable_retries") in
  let dropped = Metrics.value (Metrics.counter "faults_dropped") in
  let frames = Metrics.value (Metrics.counter "reliable_frames") in
  Metrics.set_enabled false;
  check Alcotest.bool "faults injected" true (dropped > 0);
  check Alcotest.bool "retries counted" true (retries > 0);
  check Alcotest.bool "frames counted" true (frames > 0);
  match result with
  | Ok run ->
      check Alcotest.bool "retransmission bits priced into transcript" true
        (run.Ctx.bits > base.Ctx.bits);
      let labels = Transcript.by_label run.Ctx.transcript in
      check Alcotest.bool "ack labels present" true
        (List.exists
           (fun (l, _) ->
             String.length l > 4
             && String.sub l (String.length l - 4) 4 = "/ack")
           labels)
  | Error _ -> () (* drop storm killed the run: typed, also fine *)

(* Per-direction / per-label rules: a wire hostile only to Bob leaves
   Alice's messages untouched. *)
let test_rule_scoping () =
  let fault =
    Fault.create ~seed:3
      [ Fault.rule ~from:Matprod_comm.Transcript.Bob { z with Fault.drop = 1.0 } ]
  in
  match
    Outcome.guard (fun () ->
        Ctx.run ~seed:8 (fun ctx ->
            Ctx.install_wire ctx ~fault
              ~reliable:(Reliable.config ~max_attempts:3 ())
              ();
            let x = Ctx.a2b ctx ~label:"alice speaks" Matprod_comm.Codec.uint 9 in
            ignore (Ctx.b2a ctx ~label:"bob speaks" Matprod_comm.Codec.uint x);
            x))
  with
  | Error (Outcome.Link_failure { label; _ }) ->
      (* Alice's message survives (only her data frame crosses; its ack is
         sent by Bob and is dropped) — so the failing label is either her
         ack-starved message or Bob's own. Both name the hostile side. *)
      check Alcotest.bool "failure names a bob-sent frame" true
        (label = "alice speaks" || label = "bob speaks")
  | Ok _ -> Alcotest.fail "bob-side total loss must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Fail-safe boosting: quorum behaviour under a lossy wire and the edge
   cases of the result-typed refactor. *)

let flaky_estimator ~fault_seed ~rates ctx =
  Ctx.install_wire ctx ~fault:(Fault.uniform ~seed:fault_seed rates)
    ~reliable:(Reliable.config ~max_attempts:2 ())
    ();
  ignore (Ctx.a2b ctx ~label:"est" Matprod_comm.Codec.uint 21);
  21.0

let test_boosting_degrades () =
  let next_fault = ref 0 in
  let rates = { z with Fault.drop = 0.55 } in
  match
    Boosting.run_median_safe ~seed:5 ~repetitions:9 (fun ctx ->
        incr next_fault;
        flaky_estimator ~fault_seed:!next_fault ~rates ctx)
  with
  | Ok r ->
      check (Alcotest.float 0.0) "median over survivors" 21.0 r.Boosting.estimate;
      (match r.Boosting.verdict with
      | Boosting.Degraded { survived; total } ->
          check Alcotest.int "total" 9 total;
          check Alcotest.int "survivors + casualties" 9
            (survived + List.length r.Boosting.failures);
          check Alcotest.bool "some casualties" true
            (List.length r.Boosting.failures > 0)
      | Boosting.Full_quorum ->
          (* With a 0.55 drop rate and 2 attempts some repetition dies with
             overwhelming probability; but if not, full quorum is honest. *)
          check Alcotest.int "no casualties" 0 (List.length r.Boosting.failures));
      check Alcotest.bool "failed repetitions still billed" true
        (r.Boosting.total_bits > 0)
  | Error e ->
      (* All nine dying is possible in principle; it must come back typed. *)
      check Alcotest.bool "typed quorum loss" true
        (match e with Outcome.Protocol_failure _ -> true | _ -> false)

let test_boosting_all_failed () =
  match
    Boosting.run_median_safe ~seed:1 ~repetitions:5 (fun _ -> failwith "boom")
  with
  | Error (Outcome.Protocol_failure m) ->
      check Alcotest.bool "mentions quorum" true
        (String.length m > 0 && String.sub m 0 8 = "Boosting")
  | _ -> Alcotest.fail "all-runs-failed must be a typed error"

let test_boosting_edge_repetitions () =
  (match Boosting.run_median_safe ~seed:1 ~repetitions:0 (fun _ -> 1.0) with
  | Error (Outcome.Precondition _) -> ()
  | _ -> Alcotest.fail "repetitions < 1 must be a typed precondition error");
  (match Boosting.run_median_safe ~seed:1 ~repetitions:3 ~min_survivors:4 (fun _ -> 1.0) with
  | Error (Outcome.Precondition _) -> ()
  | _ -> Alcotest.fail "min_survivors > repetitions must be rejected");
  (* Even repetition count: median averages the two middle outputs. *)
  let calls = ref 0 in
  match
    Boosting.run_median_safe ~seed:1 ~repetitions:4 (fun _ ->
        incr calls;
        float_of_int !calls)
  with
  | Ok r ->
      check (Alcotest.float 1e-9) "even-count median" 2.5 r.Boosting.estimate;
      check Alcotest.bool "full quorum" true (r.Boosting.verdict = Boosting.Full_quorum)
  | Error e -> Alcotest.failf "unexpected: %s" (Outcome.error_to_string e)

let test_boosting_matches_unsafe_without_faults () =
  let f ctx =
    float_of_int (Ctx.a2b ctx ~label:"x" Matprod_comm.Codec.uint
                    (Prng.int ctx.Ctx.alice 1000))
  in
  let unsafe = Boosting.run_median ~seed:77 ~repetitions:5 f in
  match Boosting.run_median_safe ~seed:77 ~repetitions:5 f with
  | Ok safe ->
      check (Alcotest.float 0.0) "same estimate" unsafe.Boosting.estimate
        safe.Boosting.estimate;
      check Alcotest.int "same bits" unsafe.Boosting.total_bits
        safe.Boosting.total_bits
  | Error e -> Alcotest.failf "unexpected: %s" (Outcome.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Reliable-layer unit checks. *)

let test_crc32_vectors () =
  (* Standard check value for "123456789" under IEEE CRC32. *)
  check Alcotest.int "crc32 check vector" 0xCBF43926
    (Reliable.crc32 "123456789");
  check Alcotest.int "crc32 empty" 0 (Reliable.crc32 "")

let test_frame_roundtrip_and_rejection () =
  let payload = "hello, wire" in
  let f = Reliable.data_frame ~seq:42 payload in
  (match Reliable.parse f with
  | Ok (Reliable.Data, 42, p) -> check Alcotest.string "payload" payload p
  | _ -> Alcotest.fail "frame roundtrip");
  (match Reliable.parse (Reliable.ack_frame ~seq:7) with
  | Ok (Reliable.Ack, 7, "") -> ()
  | _ -> Alcotest.fail "ack roundtrip");
  (* Every 1-bit corruption and every truncation must be rejected. *)
  for bit = 0 to (8 * String.length f) - 1 do
    let b = Bytes.of_string f in
    let i = bit / 8 in
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    match Reliable.parse (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bit flip %d accepted" bit
  done;
  for len = 0 to String.length f - 1 do
    match Reliable.parse (String.sub f 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d accepted" len
  done

let () =
  Alcotest.run "faults"
    [
      ( "trichotomy",
        List.map
          (fun (kind, rates) ->
            Alcotest.test_case kind `Quick (test_trichotomy (kind, rates)))
          fault_kinds );
      ( "transparency",
        [
          Alcotest.test_case "zero rates byte-identical" `Quick
            test_zero_rates_transparent;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "total loss typed" `Quick test_total_loss_is_typed;
          Alcotest.test_case "accounting + counters" `Quick
            test_accounting_and_counters;
          Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "frame rejection" `Quick
            test_frame_roundtrip_and_rejection;
        ] );
      ( "boosting",
        [
          Alcotest.test_case "degrades to quorum" `Quick test_boosting_degrades;
          Alcotest.test_case "all runs failed" `Quick test_boosting_all_failed;
          Alcotest.test_case "edge repetitions" `Quick
            test_boosting_edge_repetitions;
          Alcotest.test_case "matches unsafe without faults" `Quick
            test_boosting_matches_unsafe_without_faults;
        ] );
    ]
