(* Chaos harness: sweep fault configurations over every core protocol and
   assert the trichotomy — each run ends in an in-guarantee success or a
   typed error, never an escaped exception and never a silently wrong
   answer. "In guarantee" is checked the strong way: the reliability layer
   delivers intact bytes or nothing, so whenever a chaotic run completes,
   its output must EQUAL the fault-free run at the same seed.

   The seed matrix is fixed (override with MATPROD_CHAOS_SEEDS=1,2,...). *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Workload = Matprod_workload.Workload
module Fault = Matprod_comm.Fault
module Reliable = Matprod_comm.Reliable
module Channel = Matprod_comm.Channel
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Metrics = Matprod_obs.Metrics
module Json = Matprod_obs.Json
module Trace = Matprod_obs.Trace

module Outcome = Matprod_core.Outcome
module Boosting = Matprod_core.Boosting
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Session = Matprod_core.Session
module Supervisor = Matprod_core.Supervisor
module Journal = Matprod_comm.Journal
module Verify = Matprod_verify.Verify

let check = Alcotest.check

let seeds =
  match Sys.getenv_opt "MATPROD_CHAOS_SEEDS" with
  | None -> [ 1; 2; 3 ]
  | Some s ->
      let parsed = List.filter_map int_of_string_opt (String.split_on_char ',' s) in
      if parsed = [] then [ 1; 2; 3 ] else parsed

(* ------------------------------------------------------------------ *)
(* Fault configurations: >= 4 kinds plus a mixed storm. *)

let z = Fault.zero_rates

let fault_kinds =
  [
    ("drop", { z with Fault.drop = 0.15 });
    ("corrupt", { z with Fault.corrupt = 0.25 });
    ("truncate", { z with Fault.truncate = 0.25 });
    ("duplicate", { z with Fault.duplicate = 0.3 });
    ("delay", { z with Fault.delay = 0.3; delay_s = 0.12 });
    ( "mixed",
      {
        Fault.drop = 0.08;
        corrupt = 0.1;
        truncate = 0.08;
        duplicate = 0.1;
        delay = 0.15;
        delay_s = 0.1;
      } );
  ]

(* ------------------------------------------------------------------ *)
(* The protocol gallery is the estimator registry: every driver the
   registry knows about runs its default query here, so adding a driver
   to Registry automatically enrolls it in the chaos sweep. Outputs are
   already projected into Estimator.comparable, so a chaotic Ok can be
   checked equal to the fault-free baseline structurally. *)

let protocols ~seed =
  let rng = Prng.create (7 * seed) in
  let n = 20 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  List.map
    (fun packed ->
      (Estimator.name packed, fun ctx -> Estimator.run_default packed ctx ~a ~b))
    (Registry.all ())

let protocol_exn name ~seed =
  match List.assoc_opt name (protocols ~seed) with
  | Some f -> f
  | None -> Alcotest.failf "estimator %S missing from the registry" name

let reliable = Reliable.config ~max_attempts:12 ~base_timeout:0.05 ()

let run_baseline ~seed f = (Ctx.run ~seed f).Ctx.output

let run_chaotic ~seed ~fault_seed ~rates f =
  Outcome.guard (fun () ->
      Ctx.run ~seed (fun ctx ->
          Ctx.install_wire ctx
            ~fault:(Fault.uniform ~seed:fault_seed rates)
            ~reliable ();
          f ctx))

(* The trichotomy, for one fault kind over every protocol and seed. Any
   exception other than the typed families turns into an alcotest error
   (it escapes), which is exactly what the sweep forbids. *)
let test_trichotomy (kind, rates) () =
  let failures = ref 0 and successes = ref 0 in
  List.iter
    (fun seed ->
      List.iteri
        (fun i (name, f) ->
          let run_seed = (1000 * seed) + i in
          let baseline = run_baseline ~seed:run_seed f in
          match
            run_chaotic ~seed:run_seed ~fault_seed:(run_seed + 500_000) ~rates f
          with
          | Ok run ->
              incr successes;
              if run.Ctx.output <> baseline then
                Alcotest.failf
                  "%s/%s seed %d: chaotic run completed with an output that \
                   differs from the fault-free run (silent corruption)"
                  kind name seed
          | Error (Outcome.Link_failure _)
          | Error (Outcome.Decode_failure _)
          | Error (Outcome.Protocol_failure _)
          | Error (Outcome.Crashed _)
          | Error (Outcome.Budget_exhausted _) ->
              incr failures
          | Error (Outcome.Precondition m) ->
              (* Valid inputs: a precondition error here is a harness bug. *)
              Alcotest.failf "%s/%s seed %d: unexpected precondition: %s" kind
                name seed m
          | Error (Outcome.Byzantine_detected _) ->
              (* No byzantine rule is armed in this sweep. *)
              Alcotest.failf "%s/%s seed %d: byzantine verdict without a rule"
                kind name seed)
        (protocols ~seed))
    seeds;
  (* The sweep must actually exercise the success path (the reliability
     layer recovering), not just fail everything. *)
  check Alcotest.bool
    (Printf.sprintf "%s: some chaotic runs complete (%d ok, %d failed)" kind
       !successes !failures)
    true (!successes > 0)

(* With every rate at zero the wire must be invisible: same output, same
   bits, same rounds — byte for byte. *)
let test_zero_rates_transparent () =
  List.iter
    (fun seed ->
      List.iteri
        (fun i (name, f) ->
          let run_seed = (2000 * seed) + i in
          let base = Ctx.run ~seed:run_seed f in
          let wired =
            Ctx.run ~seed:run_seed (fun ctx ->
                Ctx.install_wire ctx
                  ~fault:(Fault.uniform ~seed:99 Fault.zero_rates)
                  ~reliable ();
                f ctx)
          in
          if wired.Ctx.output <> base.Ctx.output then
            Alcotest.failf "%s: zero-rate wire changed the output" name;
          check Alcotest.int
            (Printf.sprintf "%s: bits unchanged" name)
            base.Ctx.bits wired.Ctx.bits;
          check Alcotest.int
            (Printf.sprintf "%s: rounds unchanged" name)
            base.Ctx.rounds wired.Ctx.rounds)
        (protocols ~seed))
    [ List.hd seeds ]

(* A wire that drops everything must end in Link_failure, with every
   attempt charged to the transcript. *)
let test_total_loss_is_typed () =
  let rates = { z with Fault.drop = 1.0 } in
  let tr = ref None in
  (match
     Outcome.guard (fun () ->
         Ctx.run ~seed:4 (fun ctx ->
             Ctx.install_wire ctx ~fault:(Fault.uniform ~seed:5 rates)
               ~reliable:(Reliable.config ~max_attempts:7 ())
               ();
             tr := Some (Ctx.transcript ctx);
             Ctx.a2b ctx ~label:"doomed" Matprod_comm.Codec.uint 42))
   with
  | Error (Outcome.Link_failure { label = "doomed"; attempts = 7 }) -> ()
  | Ok _ -> Alcotest.fail "total loss cannot succeed"
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e));
  match !tr with
  | None -> Alcotest.fail "transcript not captured"
  | Some tr ->
      check Alcotest.int "all 7 attempts charged" 7 (Transcript.message_count tr)

(* Retransmissions show up in the transcript (ack labels, extra bytes) and
   in the Matprod_obs counters. *)
let test_accounting_and_counters () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let rates = { z with Fault.drop = 0.3 } in
  let name, f = List.hd (protocols ~seed:1) in
  ignore name;
  let base = Ctx.run ~seed:11 f in
  let result =
    run_chaotic ~seed:11 ~fault_seed:42 ~rates f
  in
  let retries = Metrics.value (Metrics.counter "reliable_retries") in
  let dropped = Metrics.value (Metrics.counter "faults_dropped") in
  let frames = Metrics.value (Metrics.counter "reliable_frames") in
  Metrics.set_enabled false;
  check Alcotest.bool "faults injected" true (dropped > 0);
  check Alcotest.bool "retries counted" true (retries > 0);
  check Alcotest.bool "frames counted" true (frames > 0);
  match result with
  | Ok run ->
      check Alcotest.bool "retransmission bits priced into transcript" true
        (run.Ctx.bits > base.Ctx.bits);
      let labels = Transcript.by_label run.Ctx.transcript in
      check Alcotest.bool "ack labels present" true
        (List.exists
           (fun (l, _) ->
             String.length l > 4
             && String.sub l (String.length l - 4) 4 = "/ack")
           labels)
  | Error _ -> () (* drop storm killed the run: typed, also fine *)

(* Per-direction / per-label rules: a wire hostile only to Bob leaves
   Alice's messages untouched. *)
let test_rule_scoping () =
  let fault =
    Fault.create ~seed:3
      [ Fault.rule ~from:Matprod_comm.Transcript.Bob { z with Fault.drop = 1.0 } ]
  in
  match
    Outcome.guard (fun () ->
        Ctx.run ~seed:8 (fun ctx ->
            Ctx.install_wire ctx ~fault
              ~reliable:(Reliable.config ~max_attempts:3 ())
              ();
            let x = Ctx.a2b ctx ~label:"alice speaks" Matprod_comm.Codec.uint 9 in
            ignore (Ctx.b2a ctx ~label:"bob speaks" Matprod_comm.Codec.uint x);
            x))
  with
  | Error (Outcome.Link_failure { label; _ }) ->
      (* Alice's message survives (only her data frame crosses; its ack is
         sent by Bob and is dropped) — so the failing label is either her
         ack-starved message or Bob's own. Both name the hostile side. *)
      check Alcotest.bool "failure names a bob-sent frame" true
        (label = "alice speaks" || label = "bob speaks")
  | Ok _ -> Alcotest.fail "bob-side total loss must fail"
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Crash recovery: seeded crash faults, journal resume, and the
   degradation supervisor. The strong property mirrors the trichotomy
   one: a run resumed from a crash's journal must EQUAL the fault-free
   run at the same seed, and fresh + replayed bits must account for
   exactly the fault-free transcript. *)

let with_tmp_journal name k =
  let path = Filename.temp_file ("matprod_" ^ name ^ "_") ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> k path)

(* Crash the sender of the second message after one delivered message, then
   resume from the journal: the first message replays for free and the
   completed run matches the fault-free baseline byte-for-byte. *)
let test_crash_then_resume () =
  List.iteri
    (fun i (name, f) ->
      let seed = 3000 + i in
      let base = Ctx.run ~seed f in
      let msgs = Transcript.messages base.Ctx.transcript in
      if List.length msgs >= 2 then
        with_tmp_journal name @@ fun path ->
        let victim = (List.nth msgs 1).Transcript.sender in
        let crashed =
          Outcome.guard (fun () ->
              Ctx.run_journaled ~seed ~journal:path ~protocol:name (fun ctx ->
                  Ctx.install_wire ctx
                    ~fault:
                      (Fault.crash_only ~party:victim
                         ~at:(Fault.After_messages 1))
                    ~reliable ();
                  f ctx))
        in
        (match crashed with
        | Error (Outcome.Crashed { party; after_messages }) ->
            check Alcotest.bool
              (Printf.sprintf "%s: crash names the victim" name)
              true (party = victim);
            check Alcotest.int
              (Printf.sprintf "%s: crash position" name)
              1 after_messages
        | Ok _ -> Alcotest.failf "%s: crash rule did not fire" name
        | Error e ->
            Alcotest.failf "%s: wrong error: %s" name
              (Outcome.error_to_string e));
        let journal =
          match Journal.load path with
          | Ok j -> j
          | Error e -> Alcotest.failf "%s: journal unreadable: %s" name e
        in
        check Alcotest.bool
          (Printf.sprintf "%s: journal clean" name)
          true journal.Journal.clean;
        check Alcotest.int
          (Printf.sprintf "%s: journal holds the delivered prefix" name)
          1
          (List.length journal.Journal.entries);
        let resumed = Ctx.resume ~seed ~journal f in
        if resumed.Ctx.output <> base.Ctx.output then
          Alcotest.failf "%s: resumed output differs from fault-free run" name;
        check Alcotest.bool
          (Printf.sprintf "%s: replay served messages" name)
          true
          (resumed.Ctx.replayed_messages >= 1);
        check Alcotest.int
          (Printf.sprintf "%s: fresh + replayed = fault-free bits" name)
          base.Ctx.bits
          (resumed.Ctx.bits + resumed.Ctx.replayed_bits))
    (protocols ~seed:1)

(* Journaling a crash-free run is invisible: same output, same cost; and
   the resulting journal replays the whole run for zero fresh bits. *)
let test_journal_transparency () =
  List.iteri
    (fun i (name, f) ->
      let seed = 4000 + i in
      let base = Ctx.run ~seed f in
      with_tmp_journal name @@ fun path ->
      let journaled = Ctx.run_journaled ~seed ~journal:path ~protocol:name f in
      if journaled.Ctx.output <> base.Ctx.output then
        Alcotest.failf "%s: journaling changed the output" name;
      check Alcotest.int
        (Printf.sprintf "%s: bits unchanged" name)
        base.Ctx.bits journaled.Ctx.bits;
      check Alcotest.int
        (Printf.sprintf "%s: rounds unchanged" name)
        base.Ctx.rounds journaled.Ctx.rounds;
      let journal =
        match Journal.load path with
        | Ok j -> j
        | Error e -> Alcotest.failf "%s: journal unreadable: %s" name e
      in
      check Alcotest.int
        (Printf.sprintf "%s: one entry per message" name)
        (Transcript.message_count base.Ctx.transcript)
        (List.length journal.Journal.entries);
      let replayed = Ctx.resume ~seed ~journal f in
      if replayed.Ctx.output <> base.Ctx.output then
        Alcotest.failf "%s: full replay changed the output" name;
      check Alcotest.int
        (Printf.sprintf "%s: full replay costs 0 fresh bits" name)
        0 replayed.Ctx.bits;
      check Alcotest.int
        (Printf.sprintf "%s: full replay serves every message" name)
        (Transcript.message_count base.Ctx.transcript)
        replayed.Ctx.replayed_messages)
    (protocols ~seed:1)

(* Tentpole invariant: tracing is free on the wire. With tracing and
   metrics both enabled, every registry protocol produces the same
   output, bits, and rounds as its untraced run — the propagated span
   context is accounted only in telemetry_bytes. *)
let test_tracing_transparency () =
  List.iteri
    (fun i (name, f) ->
      let seed = 6000 + i in
      let base = Ctx.run ~seed f in
      Metrics.reset ();
      Metrics.set_enabled true;
      Trace.reset ();
      Trace.enable ();
      let traced, telemetry =
        Fun.protect
          ~finally:(fun () ->
            Trace.disable ();
            Trace.reset ();
            Metrics.set_enabled false;
            Metrics.reset ())
          (fun () ->
            let r = Ctx.run ~seed f in
            (r, Metrics.total "telemetry_bytes"))
      in
      if traced.Ctx.output <> base.Ctx.output then
        Alcotest.failf "%s: tracing changed the output" name;
      check Alcotest.int
        (Printf.sprintf "%s: bits identical under tracing" name)
        base.Ctx.bits traced.Ctx.bits;
      check Alcotest.int
        (Printf.sprintf "%s: rounds identical under tracing" name)
        base.Ctx.rounds traced.Ctx.rounds;
      check Alcotest.bool
        (Printf.sprintf "%s: context frames accounted out-of-band" name)
        true (telemetry > 0))
    (protocols ~seed:1)

(* A journal written under tracing carries the writer's trace id as a 'T'
   record, has byte-identical logical entries, and still replays for zero
   fresh bits — with tracing off. *)
let test_journal_origin_trace () =
  let name = "linf_binary" in
  let f = protocol_exn name ~seed:1 in
  let seed = 33 in
  with_tmp_journal "untraced" @@ fun plain_path ->
  with_tmp_journal "traced" @@ fun traced_path ->
  let base = Ctx.run_journaled ~seed ~journal:plain_path ~protocol:name f in
  Trace.enable ();
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Trace.disable ();
        Trace.reset ())
      (fun () -> Ctx.run_journaled ~seed ~journal:traced_path ~protocol:name f)
  in
  if traced.Ctx.output <> base.Ctx.output then
    Alcotest.fail "tracing changed the journaled run";
  let load path =
    match Journal.load path with
    | Ok j -> j
    | Error e -> Alcotest.failf "journal unreadable: %s" e
  in
  let plain = load plain_path and traced_j = load traced_path in
  check Alcotest.bool "untraced journal has no origin" true
    (plain.Journal.origin_trace = None);
  check Alcotest.bool "traced journal stamps the run's trace id" true
    (traced_j.Journal.origin_trace = Some (Trace.trace_id_of_seed seed));
  check Alcotest.bool "logical entries byte-identical" true
    (plain.Journal.entries = traced_j.Journal.entries);
  let resumed = Ctx.resume ~seed ~journal:traced_j f in
  if resumed.Ctx.output <> base.Ctx.output then
    Alcotest.fail "replay of traced journal changed the output";
  check Alcotest.int "replay of traced journal costs 0 fresh bits" 0
    resumed.Ctx.bits

(* A transient crash (first attempt only, the way a real process death
   behaves): the supervisor answers from the Resume rung, pays only the
   suffix fresh, and the observability counters record the decision. *)
let test_supervisor_resume_rung () =
  let name = "linf_binary" (* 3 messages: room to crash after the first *) in
  let f = protocol_exn name ~seed:1 in
  let seed = 51 in
  let base = run_baseline ~seed f in
  Metrics.set_enabled true;
  Metrics.reset ();
  let result =
    with_tmp_journal "supervisor" @@ fun path ->
    Supervisor.run ~journal:path
      ~wire:(fun ~attempt ctx ->
        if attempt = 1 then
          Ctx.install_wire ctx
            ~fault:
              (Fault.crash_only ~party:Transcript.Bob
                 ~at:(Fault.After_messages 1))
            ~reliable ())
      ~seed ~protocol:name f
  in
  (* Each attempt records into its own scope: sum across the tree. *)
  let attempts_c = Metrics.total "supervisor_attempts" in
  let resumes_c = Metrics.total "supervisor_resumes" in
  let saved_c = Metrics.total "supervisor_resume_bits_saved" in
  let scopes =
    match Json.member "scopes" (Metrics.snapshot ()) with
    | Some (Json.Obj kvs) -> List.map fst kvs
    | _ -> []
  in
  Metrics.set_enabled false;
  match result with
  | Ok r ->
      if r.Supervisor.output <> base then
        Alcotest.fail "supervisor output differs from fault-free run";
      check Alcotest.bool "answered from the resume rung" true
        (r.Supervisor.rung = Supervisor.Resume);
      check Alcotest.bool "not degraded" false r.Supervisor.degraded;
      check Alcotest.int "two attempts" 2 (List.length r.Supervisor.attempts);
      (match r.Supervisor.attempts with
      | [ a1; a2 ] ->
          check Alcotest.bool "first attempt crashed" true
            (match a1.Supervisor.failure with
            | Some (Outcome.Crashed _) -> true
            | _ -> false);
          check Alcotest.bool "second attempt clean" true
            (a2.Supervisor.failure = None);
          check Alcotest.bool "resume replayed bits" true
            (a2.Supervisor.replayed_bits > 0)
      | _ -> Alcotest.fail "unexpected attempt shape");
      check Alcotest.bool "bits saved recorded" true
        (r.Supervisor.resume_bits_saved > 0);
      check Alcotest.int "attempts counter" 2 attempts_c;
      check Alcotest.int "resumes counter" 1 resumes_c;
      check Alcotest.int "saved counter matches report"
        r.Supervisor.resume_bits_saved saved_c;
      (* Regression (metric conflation): the two attempts must have
         recorded into distinct scopes, one counter tick each, not into
         one root-level blob. *)
      check
        (Alcotest.list Alcotest.string)
        "one scope per attempt"
        [ "attempt1-initial"; "attempt2-resume" ]
        scopes;
      check Alcotest.int "root scope has no attempts counter" 0
        (Metrics.value (Metrics.counter "supervisor_attempts"))
  | Error e -> Alcotest.failf "supervisor gave up: %s" (Outcome.error_to_string e)

(* A persistent crash at message 0 leaves nothing to resume and kills the
   reseed too; the ladder must degrade to the registered fallback. *)
let test_supervisor_fallback () =
  let lp = protocol_exn "lp p=1" ~seed:1 in
  let l1 = protocol_exn "l1_exact" ~seed:1 in
  let kill_all =
    [
      { Fault.victim = Transcript.Alice; site = Fault.After_messages 0 };
      { Fault.victim = Transcript.Bob; site = Fault.After_messages 0 };
    ]
  in
  let result =
    with_tmp_journal "fallback" @@ fun path ->
    Supervisor.run ~journal:path
      ~wire:(fun ~attempt ctx ->
        if attempt <= 2 then
          Ctx.install_wire ctx
            ~fault:(Fault.create ~crashes:kill_all ~seed:0 [])
            ~reliable ())
      ~fallbacks:[ ("l1_exact", l1) ]
      ~seed:52 ~protocol:"lp p=1" lp
  in
  match result with
  | Ok r ->
      check Alcotest.bool "degraded" true r.Supervisor.degraded;
      check Alcotest.bool "fallback rung" true
        (r.Supervisor.rung = Supervisor.Fallback "l1_exact");
      (* initial crash, no journal entries -> reseed crash -> fallback *)
      check Alcotest.int "three attempts" 3 (List.length r.Supervisor.attempts);
      if r.Supervisor.output <> run_baseline ~seed:52 l1 then
        Alcotest.fail "fallback output differs from its fault-free run"
  | Error e -> Alcotest.failf "ladder gave up: %s" (Outcome.error_to_string e)

(* A one-bit budget is spent by the doomed first attempt; escalation must
   stop with the typed budget error, not loop. *)
let test_supervisor_budget () =
  let name, f = List.hd (protocols ~seed:1) in
  (* Either party dies after one delivered message, every attempt. *)
  let crashes =
    [
      { Fault.victim = Transcript.Alice; site = Fault.After_messages 1 };
      { Fault.victim = Transcript.Bob; site = Fault.After_messages 1 };
    ]
  in
  match
    Supervisor.run
      ~policy:(Supervisor.policy ~max_bits:1 ())
      ~wire:(fun ~attempt:_ ctx ->
        Ctx.install_wire ctx
          ~fault:(Fault.create ~crashes ~seed:0 [])
          ~reliable ())
      ~seed:53 ~protocol:name f
  with
  | Error (Outcome.Budget_exhausted { resource = "bits"; spent; limit = 1 }) ->
      check Alcotest.bool "spent counted" true (spent >= 1)
  | Ok _ -> Alcotest.fail "budget cannot allow a second attempt"
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e)

(* Session's safe entry points give the same trichotomy: a crash mid
   establish is typed, and the session then comes up clean on a quiet
   wire with the same answers. *)
let test_session_safe () =
  let rng = Prng.create 99 in
  let a = Imat.of_bmat (Workload.uniform_bool rng ~rows:12 ~cols:12 ~density:0.3) in
  let b = Imat.of_bmat (Workload.uniform_bool rng ~rows:12 ~cols:12 ~density:0.3) in
  let crashed =
    Ctx.run ~seed:61 (fun ctx ->
        Ctx.install_wire ctx
          ~fault:
            (Fault.crash_only ~party:Transcript.Bob
               ~at:(Fault.After_messages 0))
          ~reliable ();
        Session.establish_safe ctx ~beta:0.5 ~a ~b)
  in
  (match crashed.Ctx.output with
  | Error (Outcome.Crashed { party = Transcript.Bob; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Outcome.error_to_string e)
  | Ok _ -> Alcotest.fail "establish over a dead wire cannot succeed");
  let clean =
    Ctx.run ~seed:61 (fun ctx ->
        match Session.establish_safe ctx ~beta:0.5 ~a ~b with
        | Error e ->
            Alcotest.failf "clean establish failed: %s"
              (Outcome.error_to_string e)
        | Ok (s, d) -> (
            check Alcotest.bool "establish billed" true (d.Outcome.bits > 0);
            let direct = Session.norm_pow s in
            match Session.refine_safe ctx s with
            | Ok (refined, d2) ->
                check Alcotest.bool "refine billed on top" true
                  (d2.Outcome.bits > d.Outcome.bits);
                (direct, refined)
            | Error e ->
                Alcotest.failf "clean refine failed: %s"
                  (Outcome.error_to_string e)))
  in
  let direct, refined = clean.Ctx.output in
  let baseline =
    Ctx.run ~seed:61 (fun ctx ->
        let s = Session.establish ctx ~beta:0.5 ~a ~b in
        (Session.norm_pow s, Session.refine ctx s))
  in
  check (Alcotest.float 0.0) "norm matches unsafe" (fst baseline.Ctx.output) direct;
  check (Alcotest.float 0.0) "refine matches unsafe" (snd baseline.Ctx.output)
    refined

(* ------------------------------------------------------------------ *)
(* Fail-safe boosting: quorum behaviour under a lossy wire and the edge
   cases of the result-typed refactor. *)

let flaky_estimator ~fault_seed ~rates ctx =
  Ctx.install_wire ctx ~fault:(Fault.uniform ~seed:fault_seed rates)
    ~reliable:(Reliable.config ~max_attempts:2 ())
    ();
  ignore (Ctx.a2b ctx ~label:"est" Matprod_comm.Codec.uint 21);
  21.0

let test_boosting_degrades () =
  let next_fault = ref 0 in
  let rates = { z with Fault.drop = 0.55 } in
  match
    Boosting.run_median_safe ~seed:5 ~repetitions:9 (fun ctx ->
        incr next_fault;
        flaky_estimator ~fault_seed:!next_fault ~rates ctx)
  with
  | Ok r ->
      check (Alcotest.float 0.0) "median over survivors" 21.0 r.Boosting.estimate;
      (match r.Boosting.verdict with
      | Boosting.Degraded { survived; total } ->
          check Alcotest.int "total" 9 total;
          check Alcotest.int "survivors + casualties" 9
            (survived + List.length r.Boosting.failures);
          check Alcotest.bool "some casualties" true
            (List.length r.Boosting.failures > 0)
      | Boosting.Full_quorum ->
          (* With a 0.55 drop rate and 2 attempts some repetition dies with
             overwhelming probability; but if not, full quorum is honest. *)
          check Alcotest.int "no casualties" 0 (List.length r.Boosting.failures));
      check Alcotest.bool "failed repetitions still billed" true
        (r.Boosting.total_bits > 0)
  | Error e ->
      (* All nine dying is possible in principle; it must come back typed. *)
      check Alcotest.bool "typed quorum loss" true
        (match e with Outcome.Protocol_failure _ -> true | _ -> false)

let test_boosting_all_failed () =
  match
    Boosting.run_median_safe ~seed:1 ~repetitions:5 (fun _ -> failwith "boom")
  with
  | Error (Outcome.Protocol_failure m) ->
      check Alcotest.bool "mentions quorum" true
        (String.length m > 0 && String.sub m 0 8 = "Boosting")
  | _ -> Alcotest.fail "all-runs-failed must be a typed error"

let test_boosting_edge_repetitions () =
  (match Boosting.run_median_safe ~seed:1 ~repetitions:0 (fun _ -> 1.0) with
  | Error (Outcome.Precondition _) -> ()
  | _ -> Alcotest.fail "repetitions < 1 must be a typed precondition error");
  (match Boosting.run_median_safe ~seed:1 ~repetitions:3 ~min_survivors:4 (fun _ -> 1.0) with
  | Error (Outcome.Precondition _) -> ()
  | _ -> Alcotest.fail "min_survivors > repetitions must be rejected");
  (* Even repetition count: median averages the two middle outputs. *)
  let calls = ref 0 in
  match
    Boosting.run_median_safe ~seed:1 ~repetitions:4 (fun _ ->
        incr calls;
        float_of_int !calls)
  with
  | Ok r ->
      check (Alcotest.float 1e-9) "even-count median" 2.5 r.Boosting.estimate;
      check Alcotest.bool "full quorum" true (r.Boosting.verdict = Boosting.Full_quorum)
  | Error e -> Alcotest.failf "unexpected: %s" (Outcome.error_to_string e)

let test_boosting_matches_unsafe_without_faults () =
  let f ctx =
    float_of_int (Ctx.a2b ctx ~label:"x" Matprod_comm.Codec.uint
                    (Prng.int ctx.Ctx.alice 1000))
  in
  let unsafe = Boosting.run_median ~seed:77 ~repetitions:5 f in
  match Boosting.run_median_safe ~seed:77 ~repetitions:5 f with
  | Ok safe ->
      check (Alcotest.float 0.0) "same estimate" unsafe.Boosting.estimate
        safe.Boosting.estimate;
      check Alcotest.int "same bits" unsafe.Boosting.total_bits
        safe.Boosting.total_bits
  | Error e -> Alcotest.failf "unexpected: %s" (Outcome.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Reliable-layer unit checks. *)

(* ------------------------------------------------------------------ *)
(* One-shot rules must stay fired across supervisor escalation: when the
   SAME model instance is re-installed on a later attempt (the Reseed
   rung reuses whatever the wire hook hands it), a crash/straggle/
   byzantine rule that already fired must not kill/slow/corrupt the
   retry — otherwise the ladder dies identically forever. *)

let test_one_shot_crash_no_rearm () =
  let name = "linf_binary" in
  let f = protocol_exn name ~seed:1 in
  let shared =
    Fault.crash_only ~party:Transcript.Bob ~at:(Fault.After_messages 1)
  in
  let installs = ref 0 in
  let result =
    Supervisor.run
      ~wire:(fun ~attempt:_ ctx ->
        incr installs;
        Ctx.install_wire ctx ~fault:shared ~reliable ())
      ~seed:61 ~protocol:name f
  in
  (match result with
  | Ok r ->
      check Alcotest.int "two attempts" 2 (List.length r.Supervisor.attempts);
      check Alcotest.bool "recovered on the reseed rung" true
        (match r.Supervisor.rung with Supervisor.Reseed _ -> true | _ -> false)
  | Error e ->
      Alcotest.failf "fired crash rule re-armed: %s" (Outcome.error_to_string e));
  check Alcotest.int "model installed on both attempts" 2 !installs;
  check Alcotest.int "crash fired exactly once" 1 (Fault.stats shared).Fault.crashed

let test_one_shot_straggle_no_rearm () =
  let f = protocol_exn "l1_exact" ~seed:1 in
  let shared = Fault.straggle_only ~after:0 ~burst:2 ~delay_s:0.5 () in
  let run () =
    (Ctx.run ~seed:62 (fun ctx ->
         Ctx.install_wire ctx ~fault:shared ~reliable ();
         f ctx))
      .Ctx.output
  in
  let first = run () in
  let fired = (Fault.stats shared).Fault.straggled in
  check Alcotest.bool "burst fired" true (fired > 0);
  let again = run () in
  check Alcotest.int "spent burst stays spent" fired
    (Fault.stats shared).Fault.straggled;
  if first <> again then Alcotest.fail "straggle spike changed the output"

let test_one_shot_byzantine_no_rearm () =
  let shared = Fault.byzantine_only ~seed:7 ~mode:Fault.Scale () in
  (match Fault.check_byzantine shared with
  | Some (Fault.Scale, _) -> ()
  | Some _ -> Alcotest.fail "wrong byzantine mode"
  | None -> Alcotest.fail "armed byzantine rule did not fire");
  (match Fault.check_byzantine shared with
  | None -> ()
  | Some _ -> Alcotest.fail "fired byzantine rule re-armed");
  check Alcotest.int "byzantined counted once" 1
    (Fault.stats shared).Fault.byzantined;
  check Alcotest.bool "byzantine model stays wire-transparent" false
    (Fault.is_active shared);
  check Alcotest.int "counted in total_injected" 1
    (Fault.total_injected (Fault.stats shared))

(* ------------------------------------------------------------------ *)
(* Every [Outcome.error] constructor renders: non-empty, pairwise
   distinct, payload included, and [pp_error] agrees with
   [error_to_string]. The [constructor_name] match is deliberately
   exhaustive — adding a constructor breaks this test at compile time
   until the gallery below grows with it. *)

let all_errors =
  [
    Outcome.Link_failure { label = "sketch/row3"; attempts = 12 };
    Outcome.Decode_failure "bad varint";
    Outcome.Precondition "rows mismatch";
    Outcome.Protocol_failure "sketch width";
    Outcome.Crashed { party = Transcript.Bob; after_messages = 4 };
    Outcome.Budget_exhausted { resource = "bits"; spent = 9; limit = 8 };
    Outcome.Byzantine_detected { rank = 2; replica = 1; check = "freivalds" };
  ]

let constructor_name : Outcome.error -> string = function
  | Outcome.Link_failure _ -> "Link_failure"
  | Outcome.Decode_failure _ -> "Decode_failure"
  | Outcome.Precondition _ -> "Precondition"
  | Outcome.Protocol_failure _ -> "Protocol_failure"
  | Outcome.Crashed _ -> "Crashed"
  | Outcome.Budget_exhausted _ -> "Budget_exhausted"
  | Outcome.Byzantine_detected _ -> "Byzantine_detected"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_error_rendering_exhaustive () =
  let names = List.map constructor_name all_errors in
  check
    (Alcotest.list Alcotest.string)
    "one error of each constructor"
    (List.sort_uniq compare names)
    (List.sort compare names);
  let payloads =
    [
      [ "sketch/row3"; "12" ];
      [ "bad varint" ];
      [ "rows mismatch" ];
      [ "sketch width" ];
      [ "4" ];
      [ "bits"; "9"; "8" ];
      [ "2"; "1"; "freivalds" ];
    ]
  in
  List.iter2
    (fun e expected ->
      let s = Outcome.error_to_string e in
      if s = "" then Alcotest.failf "%s renders empty" (constructor_name e);
      check Alcotest.string
        (constructor_name e ^ ": pp agrees with to_string")
        s
        (Format.asprintf "%a" Outcome.pp_error e);
      List.iter
        (fun sub ->
          if not (contains s sub) then
            Alcotest.failf "%s: %S missing from %S" (constructor_name e) sub s)
        expected)
    all_errors payloads;
  let strings = List.sort_uniq compare (List.map Outcome.error_to_string all_errors) in
  check Alcotest.int "renderings pairwise distinct" (List.length all_errors)
    (List.length strings)

(* ------------------------------------------------------------------ *)
(* Byzantine corruption gallery, two-party half: for every estimator and
   every corruption mode, the composed defense must leave no silent
   escape — either the validators flag the corrupted answer, or a
   replica vote against the honest answer flags it, or the corruption
   stays within the family's own consistency bound (an acceptable
   answer, by the estimator's published guarantee). Honest answers must
   always pass (no false positives: a validator that cried wolf here
   would quarantine healthy workers in the fleet), and [Garbage] — the
   out-of-range junk mode — must be caught by the validators alone,
   without spending replicas. *)

let test_byzantine_corruption_gallery () =
  let check_detected = ref 0 and vote_detected = ref 0 and within = ref 0 in
  List.iter
    (fun seed ->
      let rng = Prng.create (7 * seed) in
      let n = 20 in
      let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
      let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
      List.iter
        (fun packed ->
          let name = Estimator.name packed in
          let summary = Verify.summarize ~name ~a ~b in
          let honest =
            (Ctx.run ~seed (fun ctx -> Estimator.run_default packed ctx ~a ~b))
              .Ctx.output
          in
          (match Verify.check summary ~seed honest with
          | Verify.Pass -> ()
          | Verify.Fail { invariant; detail } ->
              Alcotest.failf "%s seed %d: honest answer failed %s (%s)" name
                seed invariant detail);
          List.iteri
            (fun i mode ->
              let g = Prng.create (1000 + (17 * i) + seed) in
              let corrupted = Verify.corrupt mode g honest in
              if corrupted <> honest then
                match Verify.check summary ~seed corrupted with
                | Verify.Fail _ -> incr check_detected
                | Verify.Pass -> (
                    if mode = Fault.Garbage then
                      Alcotest.failf
                        "%s seed %d: garbage passed the validators" name seed;
                    match Verify.vote summary [ (0, honest); (1, corrupted) ] with
                    | Some v when v.Verify.outvoted = [] ->
                        (* within the family's own bound: not silent, just
                           an acceptable answer *)
                        incr within
                    | _ ->
                        (* a 2-replica vote against an honest twin flags it *)
                        incr vote_detected))
            Fault.all_byzantine_modes)
        (Registry.all ()))
    seeds;
  check Alcotest.bool "validators caught something" true (!check_detected > 0);
  if !check_detected + !vote_detected + !within = 0 then
    Alcotest.fail "corruption gallery exercised nothing"

let test_crc32_vectors () =
  (* Standard check value for "123456789" under IEEE CRC32. *)
  check Alcotest.int "crc32 check vector" 0xCBF43926
    (Reliable.crc32 "123456789");
  check Alcotest.int "crc32 empty" 0 (Reliable.crc32 "")

let test_frame_roundtrip_and_rejection () =
  let payload = "hello, wire" in
  let f = Reliable.data_frame ~seq:42 payload in
  (match Reliable.parse f with
  | Ok (Reliable.Data, 42, p) -> check Alcotest.string "payload" payload p
  | _ -> Alcotest.fail "frame roundtrip");
  (match Reliable.parse (Reliable.ack_frame ~seq:7) with
  | Ok (Reliable.Ack, 7, "") -> ()
  | _ -> Alcotest.fail "ack roundtrip");
  (* Every 1-bit corruption and every truncation must be rejected. *)
  for bit = 0 to (8 * String.length f) - 1 do
    let b = Bytes.of_string f in
    let i = bit / 8 in
    Bytes.set b i
      (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    match Reliable.parse (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bit flip %d accepted" bit
  done;
  for len = 0 to String.length f - 1 do
    match Reliable.parse (String.sub f 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d accepted" len
  done

let () =
  Alcotest.run "faults"
    [
      ( "trichotomy",
        List.map
          (fun (kind, rates) ->
            Alcotest.test_case kind `Quick (test_trichotomy (kind, rates)))
          fault_kinds );
      ( "transparency",
        [
          Alcotest.test_case "zero rates byte-identical" `Quick
            test_zero_rates_transparent;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "total loss typed" `Quick test_total_loss_is_typed;
          Alcotest.test_case "accounting + counters" `Quick
            test_accounting_and_counters;
          Alcotest.test_case "rule scoping" `Quick test_rule_scoping;
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "frame rejection" `Quick
            test_frame_roundtrip_and_rejection;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "crash then resume" `Quick test_crash_then_resume;
          Alcotest.test_case "tracing transparency" `Quick
            test_tracing_transparency;
          Alcotest.test_case "journal origin trace" `Quick
            test_journal_origin_trace;
          Alcotest.test_case "journal transparency" `Quick
            test_journal_transparency;
          Alcotest.test_case "supervisor resume rung" `Quick
            test_supervisor_resume_rung;
          Alcotest.test_case "supervisor fallback" `Quick
            test_supervisor_fallback;
          Alcotest.test_case "supervisor budget" `Quick test_supervisor_budget;
          Alcotest.test_case "session safe entry points" `Quick
            test_session_safe;
        ] );
      ( "boosting",
        [
          Alcotest.test_case "degrades to quorum" `Quick test_boosting_degrades;
          Alcotest.test_case "all runs failed" `Quick test_boosting_all_failed;
          Alcotest.test_case "edge repetitions" `Quick
            test_boosting_edge_repetitions;
          Alcotest.test_case "matches unsafe without faults" `Quick
            test_boosting_matches_unsafe_without_faults;
        ] );
      ( "one-shot rules",
        [
          Alcotest.test_case "crash does not re-arm" `Quick
            test_one_shot_crash_no_rearm;
          Alcotest.test_case "straggle burst stays spent" `Quick
            test_one_shot_straggle_no_rearm;
          Alcotest.test_case "byzantine fires once" `Quick
            test_one_shot_byzantine_no_rearm;
        ] );
      ( "errors",
        [
          Alcotest.test_case "every constructor renders" `Quick
            test_error_rendering_exhaustive;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "corruption gallery" `Slow
            test_byzantine_corruption_gallery;
        ] );
    ]
