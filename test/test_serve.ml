(* The transport seam and the serve daemon.

   The contract under test is byte-identity: the logical transcript a
   protocol produces must not depend on the wire carrying it. Every
   estimator in the registry runs twice at the same seed — once over the
   in-process simulator, once over a real TCP loopback connection — and
   the two runs must agree message-for-message. On top of that seam sit
   the daemon tests: concurrent sessions, pipelined batches, and the
   crash-recovery path where a re-requested batch replays its journal
   with zero fresh bits. *)

module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module Workload = Matprod_workload.Workload
module Transport = Matprod_comm.Transport
module Transcript = Matprod_comm.Transcript
module Channel = Matprod_comm.Channel
module Codec = Matprod_comm.Codec
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Journal = Matprod_comm.Journal
module Chaos = Matprod_comm.Chaos
module Trace = Matprod_obs.Trace
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Engine = Matprod_engine.Engine
module Proto = Matprod_serve.Proto
module Server = Matprod_serve.Server
module Client = Matprod_serve.Client
module Loadgen = Matprod_serve.Loadgen

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Frame grammar *)

let test_frame_roundtrip () =
  Trace.disable ();
  List.iter
    (fun payload ->
      let f = Transport.frame payload in
      let got, ctx = Transport.unframe f in
      check Alcotest.string "payload" payload got;
      check Alcotest.bool "no ctx without tracing" true (ctx = None))
    [ ""; "x"; String.make 100_000 '\xAB'; "\x00\x01\xFF" ]

let test_frame_carries_trace_context () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  Trace.with_trace ~seed:42 @@ fun () ->
  let f = Transport.frame "hello" in
  let got, ctx = Transport.unframe f in
  check Alcotest.string "payload" "hello" got;
  match ctx with
  | None -> Alcotest.fail "expected a context frame"
  | Some c ->
      check Alcotest.int "ctx length" Trace.context_frame_length
        (String.length c);
      check Alcotest.bool "ctx parses" true (Trace.parse_context_frame c <> None)

let test_frame_rejects_corruption () =
  Trace.disable ();
  let f = Transport.frame "some payload bytes" in
  (* Flip one payload byte: the CRC must catch it. *)
  let b = Bytes.of_string f in
  Bytes.set b 7 (Char.chr (Char.code (Bytes.get b 7) lxor 0x40));
  (match Transport.unframe (Bytes.to_string b) with
  | exception Transport.Frame_error _ -> ()
  | _ -> Alcotest.fail "corrupted frame accepted");
  (* Unknown flag bits are a protocol error, not silently ignored. *)
  let b = Bytes.of_string f in
  Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) lor 0x80));
  (match Transport.unframe (Bytes.to_string b) with
  | exception Transport.Frame_error _ -> ()
  | _ -> Alcotest.fail "unknown flag accepted");
  (* A truncated buffer must not decode. *)
  match Transport.unframe (String.sub f 0 (String.length f - 2)) with
  | exception Transport.Frame_error _ -> ()
  | _ -> Alcotest.fail "truncated frame accepted"

let test_frame_io_over_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  Transport.write_frame a "first";
  Transport.write_frame a "second";
  check Alcotest.string "first" "first" (Transport.read_frame b);
  check Alcotest.string "second" "second" (Transport.read_frame b);
  (* Clean close at a frame boundary reads as End_of_file... *)
  Unix.close a;
  (match Transport.read_frame b with
  | exception End_of_file -> ()
  | _ -> Alcotest.fail "expected End_of_file");
  (* ...but a close mid-frame is a Frame_error. *)
  let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let f = Transport.frame "interrupted" in
  let partial = String.sub f 0 (String.length f - 3) in
  ignore (Unix.write_substring c partial 0 (String.length partial) : int);
  Unix.close c;
  match Transport.read_frame d with
  | exception Transport.Frame_error _ -> Unix.close d
  | exception End_of_file -> Alcotest.fail "mid-frame close read as clean EOF"
  | _ -> Alcotest.fail "short frame decoded"

let test_tcp_loopback_deliver () =
  let t = Transport.tcp_loopback () in
  Fun.protect ~finally:(fun () -> Transport.close t) @@ fun () ->
  check Alcotest.string "small" "ping"
    (Transport.deliver t ~from:Transcript.Alice ~label:"l" "ping");
  (* Big enough to overflow any socket buffer: the deliver pump must
     interleave writes and reads since both ends live in this process. *)
  let big = String.init 3_000_000 (fun i -> Char.chr (i land 0xff)) in
  check Alcotest.bool "3MB payload" true
    (Transport.deliver t ~from:Transcript.Bob ~label:"big" big = big);
  check Alcotest.string "alternating" "after"
    (Transport.deliver t ~from:Transcript.Alice ~label:"l" "after")

(* ------------------------------------------------------------------ *)
(* Sim/Tcp byte-identity over the whole registry *)

let gallery ~seed =
  let rng = Prng.create (7 * seed) in
  let n = 20 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.25 in
  List.map
    (fun packed ->
      (Estimator.name packed, fun ctx -> Estimator.run_default packed ctx ~a ~b))
    (Registry.all ())

let msg_to_string (m : Transcript.message) =
  Printf.sprintf "%s r%d %s %dB"
    (Transcript.party_name m.Transcript.sender)
    m.Transcript.round m.Transcript.label m.Transcript.bytes

let test_registry_tcp_byte_identity () =
  let seed = 11 in
  List.iter
    (fun (name, driver) ->
      let sim = Ctx.run ~seed driver in
      let tcp =
        Ctx.run ~transport:(Transport.tcp_loopback ()) ~seed driver
      in
      check Alcotest.bool
        (name ^ ": answers equal over sim and tcp")
        true
        (sim.Ctx.output = tcp.Ctx.output);
      check Alcotest.int
        (name ^ ": bits equal")
        sim.Ctx.bits tcp.Ctx.bits;
      check
        Alcotest.(list string)
        (name ^ ": transcript messages identical")
        (List.map msg_to_string (Transcript.messages sim.Ctx.transcript))
        (List.map msg_to_string (Transcript.messages tcp.Ctx.transcript)))
    (gallery ~seed)

let test_tcp_journal_resume_no_wire () =
  (* A journaled run over TCP, then a full replay: the resume path must
     never touch the transport — all bits replayed, zero fresh. *)
  let path = Filename.temp_file "matprod_serve_" ".mpj" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let seed = 5 in
  let name, driver = List.hd (gallery ~seed) in
  let first =
    Ctx.run_journaled
      ~transport:(Transport.tcp_loopback ())
      ~seed ~journal:path ~protocol:"test" driver
  in
  let j =
    match Journal.load path with Ok j -> j | Error e -> Alcotest.fail e
  in
  let again = Ctx.resume ~seed ~path ~journal:j driver in
  check Alcotest.bool (name ^ ": replayed answer equal") true
    (first.Ctx.output = again.Ctx.output);
  check Alcotest.int "all bits replayed" first.Ctx.bits again.Ctx.replayed_bits;
  check Alcotest.int "no fresh bits" 0 again.Ctx.bits

(* ------------------------------------------------------------------ *)
(* Channel configuration surface *)

let test_channel_create_config () =
  (* All wire config through one constructor call. *)
  let path = Filename.temp_file "matprod_serve_" ".mpj" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let w = Journal.create ~path ~protocol:"t" ~seed:3 in
  let ch = Channel.create ~journal:w () in
  let v = [| 1; 4; 9 |] in
  let got =
    Channel.send ch ~from:Transcript.Alice ~label:"xs" Codec.sorted_int_array v
  in
  check Alcotest.bool "payload intact" true (v = got);
  Channel.close ch;
  let j =
    match Journal.load path with Ok j -> j | Error e -> Alcotest.fail e
  in
  check Alcotest.int "journaled" 1 (List.length j.Journal.entries);
  (* Replay through create: same message comes back off the log, and the
     replay path needs no live wire. *)
  let ch2 = Channel.create ~replay:j.Journal.entries () in
  let got2 =
    Channel.send ch2 ~from:Transcript.Alice ~label:"xs" Codec.sorted_int_array v
  in
  check Alcotest.bool "replayed payload intact" true (v = got2);
  check Alcotest.int "one replayed message" 1
    (Channel.replay_stats ch2).Channel.replayed_messages

module Deprecated_aliases = struct
  [@@@alert "-deprecated"]

  (* The pre-refactor entry points must still work for out-of-tree
     callers (they only warn). *)
  let test () =
    let ch = Channel.create () in
    Channel.install ch ~fault:(Fault.create ~seed:1 []) ();
    let got =
      Channel.send ch ~from:Transcript.Bob ~label:"f" Codec.float32 1.5
    in
    check Alcotest.bool "send through installed wire" true (got = 1.5);
    let path = Filename.temp_file "matprod_serve_" ".mpj" in
    Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    @@ fun () ->
    let ch2 = Channel.create () in
    Channel.arm_journal ch2 (Journal.create ~path ~protocol:"t" ~seed:1);
    ignore
      (Channel.send ch2 ~from:Transcript.Alice ~label:"g" Codec.float32 2.5
        : float);
    Channel.close ch2;
    match Journal.load path with
    | Ok j -> check Alcotest.int "alias journaled" 1 (List.length j.Journal.entries)
    | Error e -> Alcotest.fail e
end

(* ------------------------------------------------------------------ *)
(* Chaos grammar *)

let test_chaos_roundtrip () =
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Error e -> Alcotest.fail (spec ^ ": " ^ e)
      | Ok t -> (
          let printed = Chaos.to_string t in
          match Chaos.parse printed with
          | Error e -> Alcotest.fail (printed ^ ": " ^ e)
          | Ok t' ->
              check Alcotest.bool
                (spec ^ " -> " ^ printed ^ " round-trips")
                true (t = t')))
    [
      "kind=drop,rate=0.1";
      "kind=crash,party=b,after=3;kind=drop,rate=0.1";
      "kind=crash,worker=2,after=1,permanent;kind=crash,worker=2,party=b";
      "kind=corrupt,rate=0.25,from=a;kind=truncate,rate=0.5,label=lp";
      "kind=delay,rate=0.3,delay=0.12";
      "kind=straggle,worker=1,delay=5,after=1,burst=2";
      "kind=byzantine,worker=0,mode=sign-flip";
      "kind=duplicate,rate=1";
      "";
    ]

let test_chaos_canonical_idempotent () =
  let spec =
    match
      Chaos.parse "kind=crash,party=bob,after=2;kind=drop,rate=0.5,from=alice"
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let s1 = Chaos.to_string spec in
  let s2 =
    match Chaos.parse s1 with
    | Ok t -> Chaos.to_string t
    | Error e -> Alcotest.fail e
  in
  check Alcotest.string "canonical form is a fixpoint" s1 s2

let test_chaos_rejects () =
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ spec))
    [
      "kind=meteor,rate=0.1";
      "rate=0.1,kind=drop";
      "kind=drop";
      "kind=drop,rate=1.5";
      "kind=drop,rate=0.1,permanent";
      "kind=crash";
      "kind=crash,party=b,after=2,label=lp";
      "kind=straggle,worker=1";
      "kind=byzantine,mode=evil";
      "kind=drop,rate=0.1,worker=1";
    ]

let test_chaos_lowering_scope () =
  let spec =
    match
      Chaos.parse
        "kind=crash,worker=2,after=1;kind=straggle,delay=3;kind=byzantine,worker=0"
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  check Alcotest.int "crash only on its rank" 0
    (List.length (Chaos.crashes ~scope_worker:1 spec));
  check Alcotest.int "crash applies on rank 2" 1
    (List.length (Chaos.crashes ~scope_worker:2 spec));
  check Alcotest.int "unkeyed straggle applies everywhere" 1
    (List.length (Chaos.straggles ~scope_worker:5 spec));
  check Alcotest.int "worker-keyed clause invisible outside fleets" 0
    (List.length (Chaos.byzantines spec));
  check Alcotest.bool "two-party sees a fault model" true
    (Chaos.to_fault ~seed:1 spec <> None);
  check Alcotest.bool "rank 1 still straggles" true
    (Chaos.to_fault ~scope_worker:1 ~seed:1 spec <> None)

(* ------------------------------------------------------------------ *)
(* Pool shutdown *)

let test_pool_shutdown_respawn () =
  Pool.set_size 3;
  Fun.protect ~finally:(fun () ->
      Pool.shutdown ();
      Pool.set_size 1)
  @@ fun () ->
  let spin () =
    let out = Pool.init 64 (fun i -> (i * i) + 1) in
    check Alcotest.bool "parallel result" true
      (out = Array.init 64 (fun i -> (i * i) + 1))
  in
  spin ();
  Pool.shutdown ();
  (* Not terminal: the next parallel call respawns workers. *)
  spin ();
  Pool.shutdown ();
  Pool.shutdown ()

(* ------------------------------------------------------------------ *)
(* The serve daemon *)

let with_server ?journal_dir () f =
  let cfg =
    { Server.default_config with Server.journal_dir; grace_s = 1.0 }
  in
  let t = Server.create cfg in
  let th = Server.serve_background t in
  Fun.protect ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
  @@ fun () -> f t

(* [Proto.Answers] carries an inline record; project the fields we assert
   on into a plain one so helpers can return it. *)
type got = { g_answers : Engine.answer list; g_bits : int; g_replayed : int }

let batch_answers = function
  | Ok (Proto.Answers { answers; bits; replayed_bits; _ }) ->
      { g_answers = answers; g_bits = bits; g_replayed = replayed_bits }
  | Ok _ -> Alcotest.fail "expected Answers"
  | Error e -> Alcotest.fail e

let test_serve_batch_matches_direct_engine () =
  with_server () @@ fun srv ->
  let session_seed = 99 in
  let cl = Client.connect ~port:(Server.port srv) ~session_seed () in
  Fun.protect ~finally:(fun () -> Client.quit cl) @@ fun () ->
  (match Client.gen cl ~name:"g" ~n:24 ~density:0.2 ~seed:4 ~zipf:false with
  | Ok (rows, cols) ->
      check Alcotest.int "rows" 24 rows;
      check Alcotest.int "cols" 24 cols
  | Error e -> Alcotest.fail e);
  let specs = [ "norm:eps=0.25"; "top:k=3"; "rows:beta=0.5" ] in
  let got = batch_answers (Client.batch cl ~id:7 ~pair:"g" ~specs) in
  (* The daemon promises nothing beyond what a local engine run at the
     derived batch seed produces: reproduce it and compare exactly. *)
  let rng = Prng.create 4 in
  let a = Workload.uniform_bool (Prng.split rng) ~rows:24 ~cols:24 ~density:0.2 in
  let b = Workload.uniform_bool (Prng.split rng) ~rows:24 ~cols:24 ~density:0.2 in
  let queries =
    List.map
      (fun s ->
        match Engine.query_of_string s with
        | Ok q -> q
        | Error e -> Alcotest.fail e)
      specs
  in
  let direct =
    Ctx.run
      ~seed:(Proto.batch_seed ~session_seed ~batch_id:7)
      (fun ctx ->
        Engine.run (Engine.create ()) ctx ~a:(Imat.of_bmat a)
          ~b:(Imat.of_bmat b) queries)
  in
  check Alcotest.bool "answers byte-identical to direct engine run" true
    (Array.of_list got.g_answers = direct.Ctx.output.Engine.answers);
  check Alcotest.int "bits match" direct.Ctx.bits got.g_bits

let test_serve_concurrent_sessions () =
  with_server () @@ fun srv ->
  let port = Server.port srv in
  let results = Array.make 4 None in
  let worker i () =
    let cl = Client.connect ~port ~session_seed:(1000 + i) () in
    Fun.protect ~finally:(fun () -> Client.quit cl) @@ fun () ->
    (match Client.gen cl ~name:"w" ~n:20 ~density:0.25 ~seed:8 ~zipf:false with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    (* Pipeline three batches before reading any reply. *)
    for id = 0 to 2 do
      Client.send cl (Proto.Batch { id; pair = "w"; specs = [ "norm:eps=0.5" ] })
    done;
    let anss =
      List.init 3 (fun _ ->
          match Client.response cl with
          | Proto.Answers { answers; _ } -> List.length answers
          | _ -> Alcotest.fail "expected Answers")
    in
    results.(i) <- Some anss
  in
  let threads = Array.init 4 (fun i -> Thread.create (worker i) ()) in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | None -> Alcotest.fail (Printf.sprintf "session %d died" i)
      | Some anss ->
          check Alcotest.int
            (Printf.sprintf "session %d answered all batches" i)
            3 (List.length anss);
          List.iter
            (fun k -> check Alcotest.int "one answer per query" 1 k)
            anss)
    results;
  let s = Server.stats srv in
  check Alcotest.int "sessions" 4 s.Server.sessions;
  check Alcotest.int "batches" 12 s.Server.batches;
  check Alcotest.int "queries" 12 s.Server.queries;
  check Alcotest.int "no errors" 0 s.Server.batch_errors

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let test_serve_kill_and_resume_from_journal () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "matprod_serve_j_%d" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
  @@ fun () ->
  let session_seed = 321 in
  let specs = [ "norm:eps=0.25"; "l0:count=2" ] in
  let first =
    with_server ~journal_dir:dir () @@ fun srv ->
    let cl = Client.connect ~port:(Server.port srv) ~session_seed () in
    Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
    (match Client.gen cl ~name:"g" ~n:20 ~density:0.25 ~seed:6 ~zipf:false with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    batch_answers (Client.batch cl ~id:3 ~pair:"g" ~specs)
  in
  check Alcotest.int "first run paid fresh bits" 0 first.g_replayed;
  check Alcotest.bool "first run sent something" true (first.g_bits > 0);
  (* The daemon is now dead (killed mid-session as far as the client
     knows: no Quit was sent). A new daemon over the same journal
     directory must answer the re-requested batch entirely off the log. *)
  let second =
    with_server ~journal_dir:dir () @@ fun srv ->
    let cl = Client.connect ~port:(Server.port srv) ~session_seed () in
    Fun.protect ~finally:(fun () -> Client.quit cl) @@ fun () ->
    (match Client.gen cl ~name:"g" ~n:20 ~density:0.25 ~seed:6 ~zipf:false with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    batch_answers (Client.batch cl ~id:3 ~pair:"g" ~specs)
  in
  check Alcotest.bool "same answers after resume" true
    (first.g_answers = second.g_answers);
  check Alcotest.int "all bits replayed" first.g_bits second.g_replayed;
  check Alcotest.int "zero fresh bits on resume" 0 second.g_bits

let test_loadgen_deterministic_digest () =
  with_server () @@ fun srv ->
  let run () =
    Loadgen.run ~port:(Server.port srv) ~connections:3 ~batches:2 ~queries:4
      ~n:20 ~density:0.25 ~seed:17 ~specs:[ "norm:eps=0.5" ] ()
  in
  let r1 = run () in
  check Alcotest.int "all answered" 24 r1.Loadgen.answered;
  check Alcotest.int "no errors" 0 r1.Loadgen.errors;
  check Alcotest.int "peak in-flight = C*B*Q" 24 r1.Loadgen.in_flight;
  let r2 = run () in
  check Alcotest.int "digest reproducible" r1.Loadgen.digest r2.Loadgen.digest;
  check Alcotest.int "bits reproducible" r1.Loadgen.bits r2.Loadgen.bits

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "trace context" `Quick
            test_frame_carries_trace_context;
          Alcotest.test_case "rejects corruption" `Quick
            test_frame_rejects_corruption;
          Alcotest.test_case "socket io" `Quick test_frame_io_over_socketpair;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "loopback deliver" `Quick test_tcp_loopback_deliver;
          Alcotest.test_case "registry byte-identity" `Slow
            test_registry_tcp_byte_identity;
          Alcotest.test_case "journal resume off-wire" `Quick
            test_tcp_journal_resume_no_wire;
        ] );
      ( "channel",
        [
          Alcotest.test_case "create config" `Quick test_channel_create_config;
          Alcotest.test_case "deprecated aliases" `Quick
            Deprecated_aliases.test;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "round-trip" `Quick test_chaos_roundtrip;
          Alcotest.test_case "canonical fixpoint" `Quick
            test_chaos_canonical_idempotent;
          Alcotest.test_case "rejects" `Quick test_chaos_rejects;
          Alcotest.test_case "lowering scope" `Quick test_chaos_lowering_scope;
        ] );
      ( "pool",
        [
          Alcotest.test_case "shutdown respawn" `Quick
            test_pool_shutdown_respawn;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "batch matches direct engine" `Quick
            test_serve_batch_matches_direct_engine;
          Alcotest.test_case "concurrent sessions" `Quick
            test_serve_concurrent_sessions;
          Alcotest.test_case "kill and resume" `Quick
            test_serve_kill_and_resume_from_journal;
          Alcotest.test_case "loadgen digest" `Quick
            test_loadgen_deterministic_digest;
        ] );
    ]
