(* Tests for the observability layer: JSON codec, metrics registry,
   span tracer, exporters. The registry and tracer are process-global, so
   each test starts from a clean enabled/disabled state and resets. *)

module Json = Matprod_obs.Json
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Export = Matprod_obs.Export

let check = Alcotest.check

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let with_trace f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_to_string () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "bool" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int" "-42" (Json.to_string (Json.Int (-42)));
  check Alcotest.string "string escape" {|"a\"b\n"|}
    (Json.to_string (Json.String "a\"b\n"));
  check Alcotest.string "obj"
    {|{"a":1,"b":[1,2]}|}
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Int 1; Json.Int 2 ]) ]))

let test_json_nonfinite_floats () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null"
    (Json.to_string (Json.Float Float.infinity));
  check Alcotest.string "neg inf" "null"
    (Json.to_string (Json.Float Float.neg_infinity));
  (* Integral floats keep a trailing ".0" so they re-parse as floats. *)
  check Alcotest.string "integral float" "2.0"
    (Json.to_string (Json.Float 2.0))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "hi \"there\"\n\t");
        ("n", Json.Int 123456789);
        ("f", Json.Float 0.1253);
        ("neg", Json.Float (-1.5e-9));
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.List [] ]);
        ("o", Json.Obj []);
      ]
  in
  check Alcotest.bool "roundtrip" true (Json.of_string (Json.to_string v) = v)

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing bytes" true (fails "1 x");
  check Alcotest.bool "unterminated string" true (fails {|"abc|});
  check Alcotest.bool "bare word" true (fails "nope");
  check Alcotest.bool "unclosed obj" true (fails {|{"a":1|})

let test_json_member () =
  let o = Json.Obj [ ("a", Json.Int 1) ] in
  check Alcotest.bool "hit" true (Json.member "a" o = Some (Json.Int 1));
  check Alcotest.bool "miss" true (Json.member "b" o = None);
  check Alcotest.bool "non-obj" true (Json.member "a" (Json.Int 3) = None)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basic () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_events" in
  check Alcotest.int "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr_by c 41;
  check Alcotest.int "42" 42 (Metrics.value c);
  (* Find-or-create: same name, same cell. *)
  let c' = Metrics.counter "test_events" in
  Metrics.incr c';
  check Alcotest.int "interned" 43 (Metrics.value c)

let test_counter_labels () =
  with_metrics @@ fun () ->
  let a = Metrics.counter ~label:"alice" "test_msgs" in
  let b = Metrics.counter ~label:"bob" "test_msgs" in
  Metrics.incr_by a 3;
  Metrics.incr_by b 5;
  check Alcotest.int "alice" 3 (Metrics.value a);
  check Alcotest.int "bob" 5 (Metrics.value b)

let test_disabled_noop () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test_off" in
  Metrics.incr c;
  Metrics.incr_by c 100;
  check Alcotest.int "no-op when disabled" 0 (Metrics.value c);
  let h = Metrics.histogram "test_off_ns" in
  Metrics.observe h 5.0;
  check Alcotest.int "hist no-op" 0 (Metrics.hist_count h);
  let x = Metrics.timed h (fun () -> 7) in
  check Alcotest.int "timed passes value through" 7 x;
  check Alcotest.int "timed records nothing" 0 (Metrics.hist_count h)

let test_histogram () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 1024.0 ];
  check Alcotest.int "count" 4 (Metrics.hist_count h);
  check (Alcotest.float 1e-9) "sum" 1030.0 (Metrics.hist_sum h);
  let snap = Metrics.snapshot () in
  let hists = Json.member "histograms" snap in
  let entry = Option.bind hists (Json.member "test_hist") in
  (match Option.bind entry (Json.member "min") with
  | Some (Json.Float f) -> check (Alcotest.float 1e-9) "min" 1.0 f
  | _ -> Alcotest.fail "min missing");
  (match Option.bind entry (Json.member "max") with
  | Some (Json.Float f) -> check (Alcotest.float 1e-9) "max" 1024.0 f
  | _ -> Alcotest.fail "max missing");
  (* Log-2 buckets: 1 -> b0, 2..3 -> b1, 1024 -> b10. *)
  match Option.bind entry (Json.member "log2_buckets") with
  | Some (Json.List l) ->
      let buckets =
        List.map
          (function
            | Json.List [ Json.Int b; Json.Int n ] -> (b, n)
            | _ -> Alcotest.fail "bucket shape")
          l
      in
      check Alcotest.bool "buckets" true
        (buckets = [ (0, 1); (1, 2); (10, 1) ])
  | _ -> Alcotest.fail "log2_buckets missing"

let test_reset_keeps_handles () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_reset" in
  Metrics.incr_by c 9;
  Metrics.reset ();
  check Alcotest.int "zeroed" 0 (Metrics.value c);
  Metrics.incr c;
  check Alcotest.int "handle still live" 1 (Metrics.value c)

let test_snapshot_shape () =
  with_metrics @@ fun () ->
  Metrics.incr (Metrics.counter "test_zz");
  Metrics.incr (Metrics.counter "test_aa");
  Metrics.incr (Metrics.counter ~label:"x" "test_aa");
  ignore (Metrics.counter "test_never_touched");
  let snap = Metrics.snapshot () in
  match Json.member "counters" snap with
  | Some (Json.Obj kvs) ->
      let keys = List.map fst kvs in
      check (Alcotest.list Alcotest.string) "sorted, zeros omitted"
        [ "test_aa"; "test_aa{x}"; "test_zz" ]
        keys
  | _ -> Alcotest.fail "counters missing"

(* ------------------------------------------------------------------ *)
(* Scoped metrics *)

let test_scopes () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_sc" in
  Metrics.incr_by c 1;
  Metrics.in_scope "alice" (fun () ->
      Metrics.incr_by c 10;
      Metrics.in_scope "inner" (fun () -> Metrics.incr_by c 100));
  Metrics.in_scope "bob" (fun () -> Metrics.incr_by c 1000);
  check Alcotest.int "value reads the current scope" 1 (Metrics.value c);
  check Alcotest.int "total sums the tree" 1111 (Metrics.total "test_sc");
  Metrics.in_scope "alice" (fun () ->
      check Alcotest.int "re-entering a name reuses its scope" 10
        (Metrics.value c));
  let snap = Metrics.snapshot () in
  match Json.member "scopes" snap with
  | Some (Json.Obj kvs) ->
      check (Alcotest.list Alcotest.string) "children in creation order"
        [ "alice"; "bob" ] (List.map fst kvs);
      let alice = List.assoc "alice" kvs in
      check Alcotest.bool "nested scopes nest in snapshot" true
        (Option.bind (Json.member "scopes" alice) (Json.member "inner")
        <> None)
  | _ -> Alcotest.fail "scopes missing from snapshot"

let test_scope_reset () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_sr" in
  Metrics.in_scope "s" (fun () -> Metrics.incr c);
  Metrics.reset ();
  check Alcotest.int "total zero after reset" 0 (Metrics.total "test_sr");
  check Alcotest.bool "child scopes dropped" true
    (Json.member "scopes" (Metrics.snapshot ()) = None);
  (* Handles survive reset and re-resolve per scope. *)
  Metrics.incr c;
  Metrics.in_scope "s2" (fun () -> Metrics.incr_by c 5);
  check Alcotest.int "root after reset" 1 (Metrics.value c);
  check Alcotest.int "total after reset" 6 (Metrics.total "test_sr")

(* ------------------------------------------------------------------ *)
(* Percentiles *)

let test_percentile_edges () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_pe" in
  check (Alcotest.float 1e-9) "empty histogram" 0.0 (Metrics.percentile h 0.5);
  (match Metrics.percentile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q > 1 accepted");
  (match Metrics.percentile h (-0.1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q < 0 accepted");
  (* 2 -> bucket 1, 4 -> 2, 8 -> 3, 1000 -> bucket 9 = [512, 1024). *)
  List.iter (Metrics.observe h) [ 2.0; 4.0; 8.0; 1000.0 ];
  let p99 = Metrics.percentile h 0.99 in
  check Alcotest.bool "p99 lands in the top bucket" true
    (p99 >= 512.0 && p99 <= 1000.0);
  (* The rank-2 sample lives in bucket [4, 8): the estimate must stay
     inside that bucket's edges. *)
  let p50 = Metrics.percentile h 0.5 in
  check Alcotest.bool "p50 within its bucket" true (p50 >= 4.0 && p50 <= 8.0);
  (* percentile_of on the exported bucket list agrees with the live
     histogram — the [matprod report] path. *)
  check (Alcotest.float 1e-9) "percentile_of agrees" p99
    (Metrics.percentile_of ~count:4 ~min:2.0 ~max:1000.0
       ~buckets:[ (1, 1); (2, 1); (3, 1); (9, 1) ]
       0.99)

(* Samples with fractional parts spread over several log2 buckets, and
   quantiles on a 1% grid. *)
let samples_arb =
  QCheck.(
    list_of_size
      Gen.(1 -- 60)
      (map (fun n -> float_of_int (1 + (abs n mod 0xFFFF)) /. 7.0) int))

let q_arb = QCheck.(map (fun n -> float_of_int (abs n mod 101) /. 100.0) int)

let percentile_on samples q =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_pq" in
  List.iter (Metrics.observe h) samples;
  Metrics.percentile h q

let qcheck_percentile_tests =
  let open QCheck in
  [
    Test.make ~name:"percentile monotone in q" ~count:300
      (triple samples_arb q_arb q_arb)
      (fun (samples, q1, q2) ->
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        with_metrics @@ fun () ->
        let h = Metrics.histogram "test_pq" in
        List.iter (Metrics.observe h) samples;
        Metrics.percentile h lo <= Metrics.percentile h hi +. 1e-9);
    Test.make ~name:"percentile bounded by observed min/max" ~count:300
      (pair samples_arb q_arb)
      (fun (samples, q) ->
        let mn = List.fold_left Float.min Float.infinity samples in
        let mx = List.fold_left Float.max Float.neg_infinity samples in
        let p = percentile_on samples q in
        mn -. 1e-9 <= p && p <= mx +. 1e-9);
    Test.make ~name:"percentile exact on constant data" ~count:300
      (triple
         (map (fun n -> float_of_int (1 + (abs n mod 0xFFFF)) /. 3.0) int)
         (int_bound 40) q_arb)
      (fun (v, extra, q) ->
        let samples = List.init (1 + extra) (fun _ -> v) in
        Float.abs (percentile_on samples q -. v) <= 1e-9 *. v);
  ]

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled () =
  Trace.reset ();
  Trace.disable ();
  let r = Trace.with_span ~name:"t.x" (fun () -> 5) in
  check Alcotest.int "passthrough" 5 r;
  check Alcotest.int "no spans" 0 (Trace.span_count ())

let test_trace_nesting () =
  with_trace @@ fun () ->
  Trace.with_span ~name:"t.outer" (fun () ->
      Trace.with_span ~name:"t.inner" (fun () -> Trace.event ~name:"t.ev" ());
      Trace.with_span ~name:"t.inner2" (fun () -> ()));
  match Trace.spans () with
  | [ outer; inner; ev; inner2 ] ->
      check Alcotest.string "outer" "t.outer" outer.Trace.name;
      check Alcotest.bool "outer is root" true (outer.Trace.parent = None);
      check Alcotest.int "outer depth" 0 outer.Trace.depth;
      check Alcotest.bool "inner under outer" true
        (inner.Trace.parent = Some outer.Trace.id);
      check Alcotest.int "inner depth" 1 inner.Trace.depth;
      check Alcotest.bool "event under inner" true
        (ev.Trace.parent = Some inner.Trace.id);
      check Alcotest.int "event duration" 0 ev.Trace.dur_ns;
      check Alcotest.bool "inner2 also under outer" true
        (inner2.Trace.parent = Some outer.Trace.id)
  | spans ->
      Alcotest.failf "expected 4 spans in start order, got %d"
        (List.length spans)

let test_trace_exception_safe () =
  with_trace @@ fun () ->
  (try Trace.with_span ~name:"t.boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (Trace.span_count ());
  (* The stack unwound: a new span is a root, not a child of t.boom. *)
  Trace.with_span ~name:"t.after" (fun () -> ());
  match Trace.spans () with
  | [ _; after ] -> check Alcotest.bool "root" true (after.Trace.parent = None)
  | _ -> Alcotest.fail "expected 2 spans"

let test_trace_to_json () =
  with_trace @@ fun () ->
  Trace.with_span ~name:"t.j" ~attrs:[ ("k", Json.Int 7) ] (fun () -> ());
  match Trace.spans () with
  | [ s ] ->
      let j = Trace.to_json s in
      check Alcotest.bool "name" true
        (Json.member "name" j = Some (Json.String "t.j"));
      let attrs = Json.member "attrs" j in
      check Alcotest.bool "attr" true
        (Option.bind attrs (Json.member "k") = Some (Json.Int 7));
      (* Serialized form must be parseable — same contract as the JSONL file. *)
      check Alcotest.bool "line parses" true
        (Json.of_string (Json.to_string j) = j)
  | _ -> Alcotest.fail "expected 1 span"

let test_trace_context () =
  with_trace @@ fun () ->
  check Alcotest.bool "trace id deterministic in seed" true
    (Trace.trace_id_of_seed 42 = Trace.trace_id_of_seed 42);
  check Alcotest.bool "seeds get distinct ids" true
    (Trace.trace_id_of_seed 1 <> Trace.trace_id_of_seed 2);
  check Alcotest.bool "no trace outside with_trace" true
    (Trace.trace_id () = 0L);
  Trace.with_trace ~seed:7 (fun () ->
      check Alcotest.bool "active id" true
        (Trace.trace_id () = Trace.trace_id_of_seed 7);
      Trace.with_span ~name:"t.ctx" (fun () ->
          let frame = Trace.context_frame () in
          check Alcotest.int "frame length" Trace.context_frame_length
            (String.length frame);
          match Trace.parse_context_frame frame with
          | Some c ->
              check Alcotest.bool "trace id roundtrips" true
                (c.Trace.trace_id = Trace.trace_id_of_seed 7);
              check Alcotest.bool "span id is the innermost span" true
                (c.Trace.span_id <> 0L)
          | None -> Alcotest.fail "frame did not parse"));
  check Alcotest.bool "previous trace restored" true (Trace.trace_id () = 0L);
  check Alcotest.bool "bad magic rejected" true
    (Trace.parse_context_frame "XX0123456789abcdef" = None);
  check Alcotest.bool "short frame rejected" true
    (Trace.parse_context_frame "TC" = None)

let test_trace_stable_ids () =
  (* A fresh gallery (reset) at the same seed reproduces identical stable
     sids span for span; a different seed changes all of them. *)
  let sids seed =
    with_trace @@ fun () ->
    Trace.with_trace ~seed (fun () ->
        Trace.with_span ~name:"t.a" (fun () ->
            Trace.with_span ~name:"t.b" (fun () -> ())));
    List.map (fun s -> s.Trace.sid) (Trace.spans ())
  in
  check Alcotest.bool "same seed, same sids" true (sids 5 = sids 5);
  check Alcotest.bool "different seed, different sids" true (sids 5 <> sids 6);
  with_trace @@ fun () ->
  Trace.with_trace ~seed:9 (fun () ->
      Trace.with_span ~name:"t.s" (fun () -> ()));
  match Trace.spans () with
  | [ s ] ->
      check Alcotest.bool "sid = splitmix64 (trace lxor id)" true
        (s.Trace.sid
        = Trace.splitmix64
            (Int64.logxor (Trace.trace_id_of_seed 9) (Int64.of_int s.Trace.id)))
  | _ -> Alcotest.fail "expected 1 span"

let test_chrome_export () =
  with_trace @@ fun () ->
  Trace.with_trace ~seed:3 (fun () ->
      Trace.with_span ~name:"t.work" (fun () -> Trace.event ~name:"t.mark" ()));
  let doc = Trace.chrome_json () in
  check Alcotest.bool "document roundtrips" true
    (Json.of_string (Json.to_string doc) = doc);
  (match Option.bind (Json.member "otherData" doc) (Json.member "schema") with
  | Some (Json.String "matprod.trace.chrome.v1") -> ()
  | _ -> Alcotest.fail "schema tag missing");
  match Json.member "traceEvents" doc with
  | Some (Json.List [ work; mark ]) ->
      check Alcotest.bool "span is a complete event" true
        (Json.member "ph" work = Some (Json.String "X"));
      check Alcotest.bool "span has dur" true (Json.member "dur" work <> None);
      check Alcotest.bool "event is an instant" true
        (Json.member "ph" mark = Some (Json.String "i"));
      check Alcotest.bool "instant scope" true
        (Json.member "s" mark = Some (Json.String "t"));
      check Alcotest.bool "trace id in id field" true
        (Json.member "id" work
        = Some (Json.String (Trace.hex_id (Trace.trace_id_of_seed 3))));
      check Alcotest.bool "sid under args" true
        (Option.bind (Json.member "args" work) (Json.member "sid") <> None)
  | _ -> Alcotest.fail "expected 2 trace events"

(* ------------------------------------------------------------------ *)
(* Export *)

let test_run_summary () =
  with_metrics @@ fun () ->
  Metrics.incr_by (Metrics.counter "test_bits") 64;
  let j = Export.run_summary ~extra:[ ("n", Json.Int 96) ] () in
  check Alcotest.bool "schema" true
    (Json.member "schema" j = Some (Json.String "matprod.run.v1"));
  check Alcotest.bool "extra spliced" true (Json.member "n" j = Some (Json.Int 96));
  check Alcotest.bool "metrics present" true (Json.member "metrics" j <> None);
  check Alcotest.bool "roundtrips" true (Json.of_string (Json.to_string j) = j)

(* ------------------------------------------------------------------ *)
(* Regression gate *)

module Regression = Matprod_obs.Regression
module Telemetry = Matprod_obs.Telemetry

let bench_doc rows =
  Json.Obj
    [
      ("schema", Json.String "matprod.bench.v1");
      ("experiment", Json.String "t1");
      ("rows", Json.List (List.map (fun kvs -> Json.Obj kvs) rows));
    ]

let base_rows =
  [
    [
      ("algo", Json.String "exact");
      ("bits", Json.Int 2416);
      ("rounds", Json.Int 2);
      ("err", Json.Float 0.125);
      ("build_ns", Json.Int 91234);
      ("speedup", Json.Float 3.1);
    ];
  ]

let test_regression_pass_and_fail () =
  let base = bench_doc base_rows in
  let r = Regression.compare_docs ~baseline:base ~current:base () in
  check Alcotest.bool "identical docs pass" true (Regression.ok r);
  check Alcotest.int "deterministic fields compared" 4 r.Regression.compared;
  check Alcotest.int "timing fields ignored" 2 r.Regression.ignored;
  (* The acceptance check: perturb one deterministic metric beyond
     tolerance and the gate must fail on exactly that key. *)
  let perturbed =
    bench_doc
      [
        List.map
          (function
            | "bits", _ -> ("bits", Json.Int (2416 + 64)) | kv -> kv)
          (List.hd base_rows);
      ]
  in
  let r = Regression.compare_docs ~baseline:base ~current:perturbed () in
  check Alcotest.bool "perturbed metric fails the gate" false
    (Regression.ok r);
  (match r.Regression.failures with
  | [ m ] ->
      check Alcotest.string "failing key" "bits" m.Regression.mkey;
      check (Alcotest.float 1e-9) "baseline value" 2416.0
        m.Regression.baseline;
      check (Alcotest.float 1e-9) "current value" 2480.0 m.Regression.current
  | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs));
  (* Perturbing only a timing field stays green. *)
  let slower =
    bench_doc
      [
        List.map
          (function
            | "build_ns", _ -> ("build_ns", Json.Int 999999999) | kv -> kv)
          (List.hd base_rows);
      ]
  in
  check Alcotest.bool "timing drift ignored" true
    (Regression.ok (Regression.compare_docs ~baseline:base ~current:slower ()))

let test_regression_overrides () =
  let base = bench_doc base_rows in
  let cur =
    bench_doc
      [
        List.map
          (function
            | "speedup", _ -> ("speedup", Json.Float 1.0) | kv -> kv)
          (List.hd base_rows);
      ]
  in
  (* By default speedup is timing noise... *)
  check Alcotest.bool "no override: ignored" true
    (Regression.ok (Regression.compare_docs ~baseline:base ~current:cur ()));
  (* ...but a --tol override can gate it. *)
  let r =
    Regression.compare_docs
      ~overrides:[ ("speedup", Regression.Rel 0.25) ]
      ~baseline:base ~current:cur ()
  in
  check Alcotest.bool "override gates the speedup" false (Regression.ok r);
  let r =
    Regression.compare_docs
      ~overrides:[ ("bits", Regression.Ignore) ]
      ~baseline:base
      ~current:
        (bench_doc
           [
             List.map
               (function
                 | "bits", _ -> ("bits", Json.Int 1) | kv -> kv)
               (List.hd base_rows);
           ])
      ()
  in
  check Alcotest.bool "override can also relax" true (Regression.ok r)

let test_regression_structural () =
  let base = bench_doc base_rows in
  let r =
    Regression.compare_docs ~baseline:base
      ~current:(bench_doc (base_rows @ base_rows))
      ()
  in
  check Alcotest.bool "row count drift is an error" false (Regression.ok r);
  let missing =
    bench_doc [ List.filter (fun (k, _) -> k <> "bits") (List.hd base_rows) ]
  in
  let r = Regression.compare_docs ~baseline:base ~current:missing () in
  check Alcotest.bool "missing field is an error" false (Regression.ok r);
  let r =
    Regression.compare_docs ~baseline:(Json.Obj [])
      ~current:base ()
  in
  check Alcotest.bool "wrong schema is an error" false (Regression.ok r)

(* ------------------------------------------------------------------ *)
(* Telemetry (matprod report) *)

let test_telemetry_percentile_exact () =
  check (Alcotest.float 1e-9) "empty" 0.0
    (Telemetry.percentile_exact [||] 0.5);
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "p50 = 2nd" 2.0 (Telemetry.percentile_exact a 0.5);
  check (Alcotest.float 1e-9) "p99 = last" 4.0
    (Telemetry.percentile_exact a 0.99);
  check (Alcotest.float 1e-9) "p0 clamps to first" 1.0
    (Telemetry.percentile_exact a 0.0)

let test_telemetry_aggregate () =
  let stats =
    Telemetry.aggregate
      [ ("a", 10.0); ("b", 100.0); ("a", 30.0); ("b", 5.0); ("a", 20.0) ]
  in
  match stats with
  | [ b; a ] ->
      check Alcotest.string "sorted by total desc" "b" b.Telemetry.sname;
      check Alcotest.int "a count" 3 a.Telemetry.count;
      check (Alcotest.float 1e-9) "a total" 60.0 a.Telemetry.total_ns;
      check (Alcotest.float 1e-9) "a p50" 20.0 a.Telemetry.p50_ns;
      check (Alcotest.float 1e-9) "a p99" 30.0 a.Telemetry.p99_ns
  | l -> Alcotest.failf "expected 2 groups, got %d" (List.length l)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basic" `Quick test_counter_basic;
          Alcotest.test_case "counter labels" `Quick test_counter_labels;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
          Alcotest.test_case "scopes" `Quick test_scopes;
          Alcotest.test_case "scope reset" `Quick test_scope_reset;
        ] );
      ( "percentiles",
        Alcotest.test_case "edges" `Quick test_percentile_edges
        :: List.map QCheck_alcotest.to_alcotest qcheck_percentile_tests );
      ( "trace",
        [
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "exception safe" `Quick test_trace_exception_safe;
          Alcotest.test_case "to_json" `Quick test_trace_to_json;
          Alcotest.test_case "context frames" `Quick test_trace_context;
          Alcotest.test_case "stable ids" `Quick test_trace_stable_ids;
          Alcotest.test_case "chrome export" `Quick test_chrome_export;
        ] );
      ( "export",
        [ Alcotest.test_case "run summary" `Quick test_run_summary ] );
      ( "regression",
        [
          Alcotest.test_case "pass and fail" `Quick test_regression_pass_and_fail;
          Alcotest.test_case "overrides" `Quick test_regression_overrides;
          Alcotest.test_case "structural drift" `Quick test_regression_structural;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "percentile exact" `Quick
            test_telemetry_percentile_exact;
          Alcotest.test_case "aggregate" `Quick test_telemetry_aggregate;
        ] );
    ]
