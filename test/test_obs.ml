(* Tests for the observability layer: JSON codec, metrics registry,
   span tracer, exporters. The registry and tracer are process-global, so
   each test starts from a clean enabled/disabled state and resets. *)

module Json = Matprod_obs.Json
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Export = Matprod_obs.Export

let check = Alcotest.check

let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let with_trace f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_to_string () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "bool" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int" "-42" (Json.to_string (Json.Int (-42)));
  check Alcotest.string "string escape" {|"a\"b\n"|}
    (Json.to_string (Json.String "a\"b\n"));
  check Alcotest.string "obj"
    {|{"a":1,"b":[1,2]}|}
    (Json.to_string
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Int 1; Json.Int 2 ]) ]))

let test_json_nonfinite_floats () =
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float Float.nan));
  check Alcotest.string "inf" "null"
    (Json.to_string (Json.Float Float.infinity));
  check Alcotest.string "neg inf" "null"
    (Json.to_string (Json.Float Float.neg_infinity));
  (* Integral floats keep a trailing ".0" so they re-parse as floats. *)
  check Alcotest.string "integral float" "2.0"
    (Json.to_string (Json.Float 2.0))

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "hi \"there\"\n\t");
        ("n", Json.Int 123456789);
        ("f", Json.Float 0.1253);
        ("neg", Json.Float (-1.5e-9));
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.List [] ]);
        ("o", Json.Obj []);
      ]
  in
  check Alcotest.bool "roundtrip" true (Json.of_string (Json.to_string v) = v)

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  check Alcotest.bool "trailing bytes" true (fails "1 x");
  check Alcotest.bool "unterminated string" true (fails {|"abc|});
  check Alcotest.bool "bare word" true (fails "nope");
  check Alcotest.bool "unclosed obj" true (fails {|{"a":1|})

let test_json_member () =
  let o = Json.Obj [ ("a", Json.Int 1) ] in
  check Alcotest.bool "hit" true (Json.member "a" o = Some (Json.Int 1));
  check Alcotest.bool "miss" true (Json.member "b" o = None);
  check Alcotest.bool "non-obj" true (Json.member "a" (Json.Int 3) = None)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basic () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_events" in
  check Alcotest.int "starts at 0" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr_by c 41;
  check Alcotest.int "42" 42 (Metrics.value c);
  (* Find-or-create: same name, same cell. *)
  let c' = Metrics.counter "test_events" in
  Metrics.incr c';
  check Alcotest.int "interned" 43 (Metrics.value c)

let test_counter_labels () =
  with_metrics @@ fun () ->
  let a = Metrics.counter ~label:"alice" "test_msgs" in
  let b = Metrics.counter ~label:"bob" "test_msgs" in
  Metrics.incr_by a 3;
  Metrics.incr_by b 5;
  check Alcotest.int "alice" 3 (Metrics.value a);
  check Alcotest.int "bob" 5 (Metrics.value b)

let test_disabled_noop () =
  Metrics.reset ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test_off" in
  Metrics.incr c;
  Metrics.incr_by c 100;
  check Alcotest.int "no-op when disabled" 0 (Metrics.value c);
  let h = Metrics.histogram "test_off_ns" in
  Metrics.observe h 5.0;
  check Alcotest.int "hist no-op" 0 (Metrics.hist_count h);
  let x = Metrics.timed h (fun () -> 7) in
  check Alcotest.int "timed passes value through" 7 x;
  check Alcotest.int "timed records nothing" 0 (Metrics.hist_count h)

let test_histogram () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test_hist" in
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 1024.0 ];
  check Alcotest.int "count" 4 (Metrics.hist_count h);
  check (Alcotest.float 1e-9) "sum" 1030.0 (Metrics.hist_sum h);
  let snap = Metrics.snapshot () in
  let hists = Json.member "histograms" snap in
  let entry = Option.bind hists (Json.member "test_hist") in
  (match Option.bind entry (Json.member "min") with
  | Some (Json.Float f) -> check (Alcotest.float 1e-9) "min" 1.0 f
  | _ -> Alcotest.fail "min missing");
  (match Option.bind entry (Json.member "max") with
  | Some (Json.Float f) -> check (Alcotest.float 1e-9) "max" 1024.0 f
  | _ -> Alcotest.fail "max missing");
  (* Log-2 buckets: 1 -> b0, 2..3 -> b1, 1024 -> b10. *)
  match Option.bind entry (Json.member "log2_buckets") with
  | Some (Json.List l) ->
      let buckets =
        List.map
          (function
            | Json.List [ Json.Int b; Json.Int n ] -> (b, n)
            | _ -> Alcotest.fail "bucket shape")
          l
      in
      check Alcotest.bool "buckets" true
        (buckets = [ (0, 1); (1, 2); (10, 1) ])
  | _ -> Alcotest.fail "log2_buckets missing"

let test_reset_keeps_handles () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test_reset" in
  Metrics.incr_by c 9;
  Metrics.reset ();
  check Alcotest.int "zeroed" 0 (Metrics.value c);
  Metrics.incr c;
  check Alcotest.int "handle still live" 1 (Metrics.value c)

let test_snapshot_shape () =
  with_metrics @@ fun () ->
  Metrics.incr (Metrics.counter "test_zz");
  Metrics.incr (Metrics.counter "test_aa");
  Metrics.incr (Metrics.counter ~label:"x" "test_aa");
  ignore (Metrics.counter "test_never_touched");
  let snap = Metrics.snapshot () in
  match Json.member "counters" snap with
  | Some (Json.Obj kvs) ->
      let keys = List.map fst kvs in
      check (Alcotest.list Alcotest.string) "sorted, zeros omitted"
        [ "test_aa"; "test_aa{x}"; "test_zz" ]
        keys
  | _ -> Alcotest.fail "counters missing"

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled () =
  Trace.reset ();
  Trace.disable ();
  let r = Trace.with_span ~name:"t.x" (fun () -> 5) in
  check Alcotest.int "passthrough" 5 r;
  check Alcotest.int "no spans" 0 (Trace.span_count ())

let test_trace_nesting () =
  with_trace @@ fun () ->
  Trace.with_span ~name:"t.outer" (fun () ->
      Trace.with_span ~name:"t.inner" (fun () -> Trace.event ~name:"t.ev" ());
      Trace.with_span ~name:"t.inner2" (fun () -> ()));
  match Trace.spans () with
  | [ outer; inner; ev; inner2 ] ->
      check Alcotest.string "outer" "t.outer" outer.Trace.name;
      check Alcotest.bool "outer is root" true (outer.Trace.parent = None);
      check Alcotest.int "outer depth" 0 outer.Trace.depth;
      check Alcotest.bool "inner under outer" true
        (inner.Trace.parent = Some outer.Trace.id);
      check Alcotest.int "inner depth" 1 inner.Trace.depth;
      check Alcotest.bool "event under inner" true
        (ev.Trace.parent = Some inner.Trace.id);
      check Alcotest.int "event duration" 0 ev.Trace.dur_ns;
      check Alcotest.bool "inner2 also under outer" true
        (inner2.Trace.parent = Some outer.Trace.id)
  | spans ->
      Alcotest.failf "expected 4 spans in start order, got %d"
        (List.length spans)

let test_trace_exception_safe () =
  with_trace @@ fun () ->
  (try Trace.with_span ~name:"t.boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (Trace.span_count ());
  (* The stack unwound: a new span is a root, not a child of t.boom. *)
  Trace.with_span ~name:"t.after" (fun () -> ());
  match Trace.spans () with
  | [ _; after ] -> check Alcotest.bool "root" true (after.Trace.parent = None)
  | _ -> Alcotest.fail "expected 2 spans"

let test_trace_to_json () =
  with_trace @@ fun () ->
  Trace.with_span ~name:"t.j" ~attrs:[ ("k", Json.Int 7) ] (fun () -> ());
  match Trace.spans () with
  | [ s ] ->
      let j = Trace.to_json s in
      check Alcotest.bool "name" true
        (Json.member "name" j = Some (Json.String "t.j"));
      let attrs = Json.member "attrs" j in
      check Alcotest.bool "attr" true
        (Option.bind attrs (Json.member "k") = Some (Json.Int 7));
      (* Serialized form must be parseable — same contract as the JSONL file. *)
      check Alcotest.bool "line parses" true
        (Json.of_string (Json.to_string j) = j)
  | _ -> Alcotest.fail "expected 1 span"

(* ------------------------------------------------------------------ *)
(* Export *)

let test_run_summary () =
  with_metrics @@ fun () ->
  Metrics.incr_by (Metrics.counter "test_bits") 64;
  let j = Export.run_summary ~extra:[ ("n", Json.Int 96) ] () in
  check Alcotest.bool "schema" true
    (Json.member "schema" j = Some (Json.String "matprod.run.v1"));
  check Alcotest.bool "extra spliced" true (Json.member "n" j = Some (Json.Int 96));
  check Alcotest.bool "metrics present" true (Json.member "metrics" j <> None);
  check Alcotest.bool "roundtrips" true (Json.of_string (Json.to_string j) = j)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basic" `Quick test_counter_basic;
          Alcotest.test_case "counter labels" `Quick test_counter_labels;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "exception safe" `Quick test_trace_exception_safe;
          Alcotest.test_case "to_json" `Quick test_trace_to_json;
        ] );
      ( "export",
        [ Alcotest.test_case "run summary" `Quick test_run_summary ] );
    ]
