(** Wall-clock cost model for a transcript.

    The paper optimises two quantities at once — total bits and number of
    rounds — because their relative price depends on the network: on a WAN
    every round costs a full RTT, so a chattier protocol with fewer bits
    can lose to a one-shot protocol with more. This model turns a
    transcript into an estimated transfer time

    {v time = rounds·latency + total_bits/bandwidth v}

    (message payloads within a round are assumed pipelined). The benchmark
    harness uses it to show where the 2-round Algorithm 1 beats the 1-round
    baseline in wall-clock terms and where it does not. *)

type t = {
  name : string;
  latency : float;  (** one-way per-round latency, seconds *)
  bandwidth : float;  (** bits per second *)
  loss : float;  (** per-frame loss probability, in [0, 1) *)
  timeout : float;  (** retransmission timeout priced per expected loss *)
}

val lan : t
(** 0.1 ms, 10 Gb/s. *)

val wan : t
(** 50 ms, 100 Mb/s — cross-datacenter. *)

val mobile : t
(** 120 ms, 10 Mb/s. *)

val make :
  name:string -> latency:float -> bandwidth:float -> ?loss:float ->
  ?timeout:float -> unit -> t
(** [loss] defaults to 0 (the built-in models are lossless), [timeout] to
    {!default_timeout}. *)

val default_timeout : float
(** 200 ms — the retransmission timeout assumed when pricing loss. *)

val with_loss : ?timeout:float -> t -> loss:float -> t
(** The same link with a per-frame loss probability. *)

val transfer_time : t -> Transcript.t -> float
(** Seconds to play the transcript over this network. On a lossless link
    this is [rounds·latency + bits/bandwidth], exactly as before loss
    modelling existed. With loss [p], every message takes 1/(1−p)
    transmissions in expectation — the bandwidth term scales by 1/(1−p)
    and each of the p/(1−p) expected failures per message adds one
    [timeout] of idle waiting. *)

val pp_time : Format.formatter -> float -> unit
(** Human-readable duration (µs / ms / s). *)
