(** Composable binary codecs with exact byte accounting.

    Every protocol message is encoded through one of these codecs before it
    "crosses the wire" of the simulated two-party channel, and the
    transcript charges the real encoded length. Integers use LEB128
    varints (zigzag for signed values), index lists are delta-coded, floats
    are IEEE 754. Decoding re-parses the bytes, so a protocol can only use
    information that was actually paid for. *)

type 'a t

exception Decode_error of string
(** The single exception every decoder raises on malformed input:
    truncation, trailing garbage, bad tags, overlong or negative varints,
    length prefixes exceeding the remaining input, and index overflow in
    delta-coded sequences. Decoders never raise anything else on corrupt
    bytes, and allocation before the check is bounded by the input length
    (dense logical lengths are additionally capped at
    {!max_dense_length}), so feeding adversarial bytes to [decode] is
    safe. *)

val max_dense_length : int
(** Upper bound (2^24) on the dense logical length a sparse encoding
    ({!counter_array}) may declare — the one place a length prefix drives
    an allocation larger than the wire bytes. *)

val encode : 'a t -> 'a -> string
val decode : 'a t -> string -> 'a
(** Raises {!Decode_error} on trailing garbage or any malformed input. *)

val encoded_bytes : 'a t -> 'a -> int

(** {1 Primitive codecs} *)

val unit : unit t
val bool : bool t
val uint : int t
(** Non-negative varint; raises on negative values at encode time. *)

val int : int t
(** Any native int, zigzag varint. *)

val float64 : float t
val float32 : float t
(** Lossy 32-bit float — used where the paper would round to O(log n)-bit
    words. *)

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t

val int_array : int array t
(** Zigzag varints, length-prefixed. *)

val uint_array : int array t

val sorted_int_array : int array t
(** Strictly increasing non-negative ints, delta-coded — the natural
    encoding for the index sets I_j exchanged by Algorithms 2–4. *)

val sparse_int_vec : (int * int) array t
(** (index, value) pairs with strictly increasing indices: delta-coded
    indices, zigzag values. Encodes sampled matrix rows. *)

val float_array : float array t
(** 64-bit floats, length-prefixed. *)

val float32_array : float array t

val bytes : string t
(** Length-prefixed raw bytes — for bit-packed payloads. *)

val counter_array : int array t
(** Non-negative counter arrays that are often mostly zero (sketch states):
    encoded as (length, nonzero (index, value) pairs). ~2 bytes per
    nonzero entry plus a small header — a large win for sparse states, a
    modest constant overhead for dense ones. *)

val map : ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t
(** [map to_wire of_wire codec] transports a codec across an isomorphism. *)
