(** Checksummed framing and retransmission policy for the unreliable wire.

    When a {!Fault} model is active on a channel, every logical message is
    wrapped in a frame

    {v kind(1B) ++ seq(uvarint) ++ |payload|(uvarint) ++ payload ++ CRC32(4B) v}

    and delivered stop-and-wait: the receiver acks each data frame (acks
    are framed the same way and cross the same faulty wire), and the
    sender retransmits on a missing or corrupted ack with capped
    exponential backoff. A frame whose CRC32 does not match — corruption
    and truncation both land here — is discarded as if dropped, so the
    payload that finally decodes is byte-for-byte the payload that was
    sent: the wire can fail, but it cannot lie. Every transmitted frame,
    including retransmissions and acks, is charged to the transcript by
    {!Channel.send}. *)

exception Link_failure of { label : string; attempts : int }
(** Raised by {!Channel.send} when a message is still unacknowledged after
    [max_attempts] transmissions. The fail-safe protocol wrappers
    ([run_safe]) convert it into a typed error. *)

type config = {
  max_attempts : int;  (** transmissions per message before giving up *)
  base_timeout : float;  (** initial retransmission timeout, seconds *)
  max_timeout : float;  (** backoff cap, seconds *)
}

val default_config : config
(** 16 attempts, 50 ms initial timeout, 1.6 s cap. *)

val config :
  ?max_attempts:int -> ?base_timeout:float -> ?max_timeout:float -> unit -> config

val next_timeout : config -> float -> float
(** One backoff step: [min max_timeout (2 * t)]. *)

(** {1 Frames} *)

type kind = Data | Ack

val data_frame : seq:int -> string -> string
val ack_frame : seq:int -> string

val parse : string -> (kind * int * string, string) result
(** Validate and split a frame. Never raises: truncated, bit-flipped, or
    otherwise malformed frames return [Error reason] (a CRC32 collision —
    probability 2⁻³² per corrupt frame — is the only way mangled bytes
    get through). *)

val crc32 : string -> int
(** IEEE CRC32 (the zlib/PNG polynomial), exposed for tests. *)

val overhead : seq:int -> payload_bytes:int -> int
(** Framing bytes added to a payload of the given size at the given
    sequence number — what reliability costs per transmission. *)
