type kind =
  | Drop
  | Corrupt
  | Truncate
  | Duplicate
  | Delay
  | Crash
  | Straggle
  | Byzantine

type clause = {
  kind : kind;
  rate : float option;
  party : Transcript.party option;
  worker : int option;
  label : string option;
  after : int option;
  burst : int option;
  delay_s : float option;
  mode : Fault.byzantine_mode option;
  permanent : bool;
}

type t = clause list

let kind_to_string = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"
  | Delay -> "delay"
  | Crash -> "crash"
  | Straggle -> "straggle"
  | Byzantine -> "byzantine"

let kind_of_string = function
  | "drop" -> Some Drop
  | "corrupt" -> Some Corrupt
  | "truncate" -> Some Truncate
  | "duplicate" -> Some Duplicate
  | "delay" -> Some Delay
  | "crash" -> Some Crash
  | "straggle" -> Some Straggle
  | "byzantine" -> Some Byzantine
  | _ -> None

let party_of_string = function
  | "a" | "alice" | "0" -> Some Transcript.Alice
  | "b" | "bob" | "1" -> Some Transcript.Bob
  | _ -> None

let party_to_string = function Transcript.Alice -> "a" | Transcript.Bob -> "b"

let is_byte_kind = function
  | Drop | Corrupt | Truncate | Duplicate | Delay -> true
  | Crash | Straggle | Byzantine -> false

(* %g prints 0.1 as "0.1" and survives a float_of_string round-trip for
   every rate a human would write. *)
let float_to_string f = Printf.sprintf "%g" f

let empty kind =
  {
    kind;
    rate = None;
    party = None;
    worker = None;
    label = None;
    after = None;
    burst = None;
    delay_s = None;
    mode = None;
    permanent = false;
  }

let ( let* ) = Result.bind

let err clause_no fmt =
  Printf.ksprintf (fun s -> Error (Printf.sprintf "clause %d: %s" clause_no s))
    fmt

let parse_clause no s =
  let pairs =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  match pairs with
  | [] -> err no "empty clause"
  | first :: rest ->
      let* kind =
        match String.index_opt first '=' with
        | Some i when String.sub first 0 i = "kind" -> (
            let v = String.sub first (i + 1) (String.length first - i - 1) in
            match kind_of_string v with
            | Some k -> Ok k
            | None -> err no "unknown kind %S" v)
        | _ -> err no "first key must be kind=<...>, got %S" first
      in
      let* c =
        List.fold_left
          (fun acc pair ->
            let* c = acc in
            let key, value =
              match String.index_opt pair '=' with
              | None -> (pair, "")
              | Some i ->
                  ( String.sub pair 0 i,
                    String.sub pair (i + 1) (String.length pair - i - 1) )
            in
            let int_value () =
              match int_of_string_opt value with
              | Some v when v >= 0 -> Ok v
              | _ -> err no "key %s needs a non-negative integer, got %S" key value
            in
            let float_value () =
              match float_of_string_opt value with
              | Some v -> Ok v
              | None -> err no "key %s needs a number, got %S" key value
            in
            match key with
            | "rate" ->
                let* v = float_value () in
                if v < 0.0 || v > 1.0 then
                  err no "rate %g outside [0, 1]" v
                else Ok { c with rate = Some v }
            | "party" | "from" -> (
                match party_of_string (String.lowercase_ascii value) with
                | Some p -> Ok { c with party = Some p }
                | None -> err no "key %s needs a|alice|b|bob, got %S" key value)
            | "worker" ->
                let* v = int_value () in
                Ok { c with worker = Some v }
            | "label" ->
                if value = "" then err no "label needs a value"
                else Ok { c with label = Some value }
            | "after" ->
                let* v = int_value () in
                Ok { c with after = Some v }
            | "burst" ->
                let* v = int_value () in
                if v < 1 then err no "burst must be >= 1"
                else Ok { c with burst = Some v }
            | "delay" ->
                let* v = float_value () in
                if v <= 0.0 then err no "delay must be > 0"
                else Ok { c with delay_s = Some v }
            | "mode" -> (
                match Fault.byzantine_mode_of_string value with
                | Some m -> Ok { c with mode = Some m }
                | None -> err no "unknown byzantine mode %S" value)
            | "permanent" ->
                if value = "" || value = "true" then
                  Ok { c with permanent = true }
                else err no "permanent takes no value"
            | _ -> err no "unknown key %S" key)
          (Ok (empty kind)) rest
      in
      (* Per-kind validation: fail at parse time, not when the model is
         built deep inside a run. *)
      let reject field cond =
        if cond then err no "%s does not apply to kind=%s" field
            (kind_to_string kind)
        else Ok ()
      in
      if is_byte_kind kind then
        let* () = reject "worker" (c.worker <> None) in
        let* () = reject "after" (c.after <> None) in
        let* () = reject "burst" (c.burst <> None) in
        let* () = reject "mode" (c.mode <> None) in
        let* () = reject "permanent" c.permanent in
        let* () =
          reject "delay" (c.delay_s <> None && kind <> Delay)
        in
        match c.rate with
        | None -> err no "kind=%s needs rate=" (kind_to_string kind)
        | Some _ -> Ok c
      else
        match kind with
        | Crash ->
            let* () = reject "rate" (c.rate <> None) in
            let* () = reject "burst" (c.burst <> None) in
            let* () = reject "delay" (c.delay_s <> None) in
            let* () = reject "mode" (c.mode <> None) in
            if c.party = None && c.worker = None then
              err no "kind=crash needs party= (two-party) or worker= (fleet)"
            else if c.after <> None && c.label <> None then
              err no "kind=crash takes after= or label=, not both"
            else Ok c
        | Straggle ->
            let* () = reject "rate" (c.rate <> None) in
            let* () = reject "mode" (c.mode <> None) in
            let* () = reject "permanent" c.permanent in
            if c.delay_s = None then err no "kind=straggle needs delay="
            else Ok c
        | Byzantine ->
            let* () = reject "rate" (c.rate <> None) in
            let* () = reject "label" (c.label <> None) in
            let* () = reject "after" (c.after <> None) in
            let* () = reject "burst" (c.burst <> None) in
            let* () = reject "delay" (c.delay_s <> None) in
            let* () = reject "permanent" c.permanent in
            Ok c
        | _ -> Ok c

let parse s =
  let clauses =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let rec go no acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest ->
        let* parsed = parse_clause no c in
        go (no + 1) (parsed :: acc) rest
  in
  go 1 [] clauses

let clause_to_string c =
  let b = Buffer.create 48 in
  Buffer.add_string b "kind=";
  Buffer.add_string b (kind_to_string c.kind);
  let add key v =
    Buffer.add_char b ',';
    Buffer.add_string b key;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  let party_key = if is_byte_kind c.kind then "from" else "party" in
  Option.iter (fun p -> add party_key (party_to_string p)) c.party;
  Option.iter (fun w -> add "worker" (string_of_int w)) c.worker;
  Option.iter (fun l -> add "label" l) c.label;
  Option.iter (fun r -> add "rate" (float_to_string r)) c.rate;
  Option.iter (fun a -> add "after" (string_of_int a)) c.after;
  Option.iter (fun bu -> add "burst" (string_of_int bu)) c.burst;
  Option.iter (fun d -> add "delay" (float_to_string d)) c.delay_s;
  Option.iter (fun m -> add "mode" (Fault.byzantine_mode_to_string m)) c.mode;
  if c.permanent then Buffer.add_string b ",permanent";
  Buffer.contents b

let to_string spec = String.concat ";" (List.map clause_to_string spec)

(* Lowering *)

let rates_of c =
  let z = Fault.zero_rates in
  let r = Option.get c.rate in
  match c.kind with
  | Drop -> { z with Fault.drop = r }
  | Corrupt -> { z with Fault.corrupt = r }
  | Truncate -> { z with Fault.truncate = r }
  | Duplicate -> { z with Fault.duplicate = r }
  | Delay ->
      {
        z with
        Fault.delay = r;
        delay_s = Option.value c.delay_s ~default:0.05;
      }
  | _ -> assert false

let byte_rules spec =
  List.filter_map
    (fun c ->
      if is_byte_kind c.kind then
        Some (Fault.rule ?from:c.party ?label_prefix:c.label (rates_of c))
      else None)
    spec

(* A clause with no [worker] key applies to every rank; with one, only to
   that rank. Outside a fleet (no [?scope_worker]) worker-keyed clauses
   are someone else's business. *)
let in_scope scope_worker c =
  match (scope_worker, c.worker) with
  | None, None -> true
  | None, Some _ -> false
  | Some _, None -> true
  | Some r, Some w -> r = w

let crashes ?scope_worker spec =
  List.filter_map
    (fun c ->
      if c.kind = Crash && in_scope scope_worker c then
        let victim =
          (* Fleet workers speak as Alice on their link. *)
          match c.party with
          | Some p -> p
          | None -> Transcript.Alice
        in
        let site =
          match (c.label, c.after) with
          | Some l, _ -> Fault.At_label l
          | None, after -> Fault.After_messages (Option.value after ~default:0)
        in
        Some { Fault.victim; site }
      else None)
    spec

let straggles ?scope_worker spec =
  List.filter_map
    (fun c ->
      if c.kind = Straggle && in_scope scope_worker c then
        Some
          (Fault.straggle ?from:c.party ?label_prefix:c.label ?after:c.after
             ?burst:c.burst
             ~delay_s:(Option.get c.delay_s)
             ())
      else None)
    spec

let byzantines ?scope_worker spec =
  List.filter_map
    (fun c ->
      if c.kind = Byzantine && in_scope scope_worker c then
        Some
          (Fault.byzantine
             ~mode:(Option.value c.mode ~default:Fault.Scale)
             ())
      else None)
    spec

let permanent_crash ?scope_worker spec =
  List.exists
    (fun c -> c.kind = Crash && c.permanent && in_scope scope_worker c)
    spec

let to_fault ?scope_worker ~seed spec =
  let rules = byte_rules spec in
  let crashes = crashes ?scope_worker spec in
  let straggles = straggles ?scope_worker spec in
  let byzantines = byzantines ?scope_worker spec in
  if rules = [] && crashes = [] && straggles = [] && byzantines = [] then None
  else Some (Fault.create ~crashes ~straggles ~byzantines ~seed rules)
