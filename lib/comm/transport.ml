module Trace = Matprod_obs.Trace

exception Frame_error of string

let max_frame_bytes = 1 lsl 26 (* 64 MiB: far above any protocol message *)

let fail fmt = Printf.ksprintf (fun s -> raise (Frame_error s)) fmt

(* Frame layout on the wire:
     len   : 4 bytes, big-endian — length of everything after these 4 bytes
     flags : 1 byte — bit 0: an 18-byte telemetry context frame follows
     ctx   : Trace.context_frame_length bytes, iff flags bit 0
     payload
     crc   : 4 bytes, big-endian — CRC32 (IEEE) over flags..payload *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame payload =
  let ctx = if Trace.enabled () then Trace.context_frame () else "" in
  let flags = if ctx = "" then 0 else 1 in
  let body = Buffer.create (String.length payload + String.length ctx + 1) in
  Buffer.add_char body (Char.chr flags);
  Buffer.add_string body ctx;
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  let len = String.length body + 4 in
  if len > max_frame_bytes then
    fail "frame: payload of %d bytes exceeds max_frame_bytes"
      (String.length payload);
  let out = Buffer.create (len + 4) in
  put_u32 out len;
  Buffer.add_string out body;
  put_u32 out (Reliable.crc32 body);
  Buffer.contents out

(* [body] is everything after the length prefix: flags..payload ++ crc. *)
let decode_body body =
  let n = String.length body in
  if n < 5 then fail "frame: body of %d bytes is shorter than flags+crc" n;
  let checked = String.sub body 0 (n - 4) in
  let crc = get_u32 body (n - 4) in
  if Reliable.crc32 checked <> crc then fail "frame: CRC mismatch";
  let flags = Char.code checked.[0] in
  if flags land lnot 1 <> 0 then fail "frame: unknown flags 0x%02x" flags;
  let ctx_len = if flags land 1 = 1 then Trace.context_frame_length else 0 in
  if String.length checked < 1 + ctx_len then
    fail "frame: truncated telemetry context";
  let ctx =
    if ctx_len = 0 then None else Some (String.sub checked 1 ctx_len)
  in
  (String.sub checked (1 + ctx_len) (String.length checked - 1 - ctx_len), ctx)

let unframe s =
  if String.length s < 4 then fail "frame: missing length prefix";
  let len = get_u32 s 0 in
  if len > max_frame_bytes then fail "frame: declared length %d too large" len;
  if String.length s <> 4 + len then
    fail "frame: declared length %d, have %d bytes" len (String.length s - 4);
  decode_body (String.sub s 4 len)

(* Blocking, full-buffer socket I/O for the serve daemon. *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd payload =
  let f = frame payload in
  write_all fd (Bytes.unsafe_of_string f) 0 (String.length f)

let read_exact fd len ~what =
  let b = Bytes.create len in
  let rec go off =
    if off < len then begin
      let n = Unix.read fd b off (len - off) in
      if n = 0 then
        if off = 0 && what = `Header then raise End_of_file
        else fail "frame: peer closed mid-frame";
      go (off + n)
    end
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame_ctx fd =
  let hdr = read_exact fd 4 ~what:`Header in
  let len = get_u32 hdr 0 in
  if len > max_frame_bytes then fail "frame: declared length %d too large" len;
  decode_body (read_exact fd len ~what:`Body)

let read_frame fd = fst (read_frame_ctx fd)

(* Backends *)

module type S = sig
  type conn

  val name : string

  val deliver :
    conn -> from:Transcript.party -> label:string -> string -> string

  val close : conn -> unit
end

type t = Conn : (module S with type conn = 'a) * 'a -> t

let name (Conn ((module B), _)) = B.name
let deliver (Conn ((module B), c)) ~from ~label payload =
  B.deliver c ~from ~label payload
let close (Conn ((module B), c)) = B.close c

module Sim = struct
  type conn = unit

  let name = "sim"
  let deliver () ~from:_ ~label:_ payload = payload
  let close () = ()
end

let sim () = Conn ((module Sim), ())

module Tcp = struct
  (* Both ends live in this process: Alice holds [a], Bob holds [b].
     [deliver] writes on the sender's end and reads the frame back on the
     receiver's end, interleaved under [select] so a payload larger than
     the kernel socket buffers cannot deadlock the single thread driving
     both ends. *)
  type conn = {
    a : Unix.file_descr;
    b : Unix.file_descr;
    mutable closed : bool;
    mutable delivered : int;
  }

  let name = "tcp"

  let close c =
    if not c.closed then begin
      c.closed <- true;
      (try Unix.close c.a with Unix.Unix_error _ -> ());
      try Unix.close c.b with Unix.Unix_error _ -> ()
    end

  let chunk = 65536

  let deliver c ~from ~label payload =
    if c.closed then fail "tcp: deliver on closed transport (label %s)" label;
    let wfd, rfd =
      match from with
      | Transcript.Alice -> (c.a, c.b)
      | Transcript.Bob -> (c.b, c.a)
    in
    let out = frame payload in
    let out_b = Bytes.unsafe_of_string out in
    let total = Bytes.length out_b in
    let sent = ref 0 in
    let acc = Buffer.create (total + 16) in
    let inbuf = Bytes.create chunk in
    (* The frame is complete once we hold the 4-byte prefix plus the
       declared body length. *)
    let missing () =
      let have = Buffer.length acc in
      if have < 4 then 4 - have
      else begin
        let len = get_u32 (Buffer.sub acc 0 4) 0 in
        if len > max_frame_bytes then
          fail "frame: declared length %d too large" len;
        4 + len - have
      end
    in
    let rec pump () =
      let need = missing () in
      let writing = !sent < total in
      if need > 0 || writing then begin
        let rl = if need > 0 then [ rfd ] else [] in
        let wl = if writing then [ wfd ] else [] in
        let r, w, _ = Unix.select rl wl [] 10.0 in
        if r = [] && w = [] then
          fail "tcp: delivery stalled for 10s (label %s)" label;
        if w <> [] then begin
          let n = Unix.write wfd out_b !sent (min chunk (total - !sent)) in
          sent := !sent + n
        end;
        if r <> [] then begin
          let n = Unix.read rfd inbuf 0 chunk in
          if n = 0 then fail "tcp: peer closed mid-frame (label %s)" label;
          Buffer.add_subbytes acc inbuf 0 n
        end;
        pump ()
      end
    in
    pump ();
    c.delivered <- c.delivered + 1;
    fst (unframe (Buffer.contents acc))
end

let tcp_loopback () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let a =
    try
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen listener 1;
      let addr = Unix.getsockname listener in
      let a = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.set_nonblock a;
         (try Unix.connect a addr with
         | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
         a
       with e ->
         Unix.close a;
         raise e)
    with e ->
      Unix.close listener;
      raise e
  in
  let b, _ = Unix.accept listener in
  Unix.close listener;
  (* Loopback connects resolve immediately once accepted; wait for
     writability to be safe, then restore blocking mode. *)
  (match Unix.select [] [ a ] [] 5.0 with
  | _, [ _ ], _ -> ()
  | _ ->
      Unix.close a;
      Unix.close b;
      fail "tcp: loopback connect did not complete");
  Unix.clear_nonblock a;
  Unix.setsockopt a Unix.TCP_NODELAY true;
  Unix.setsockopt b Unix.TCP_NODELAY true;
  Conn ((module Tcp), { Tcp.a; b; closed = false; delivered = 0 })

type factory = unit -> t

let of_string = function
  | "sim" -> Ok (fun () -> sim ())
  | "tcp" -> Ok (fun () -> tcp_loopback ())
  | s -> Error (Printf.sprintf "unknown transport %S (expected sim|tcp)" s)
