(** Seeded, deterministic fault injection for the simulated wire.

    A fault model is applied to the {e encoded bytes} of each frame as it
    crosses the channel: messages can be dropped, bit-flipped, truncated,
    duplicated, or delayed, each with its own probability. Rules are
    matched per direction and per transcript-label prefix, so a test can
    make only Bob's acks lossy, or only the round-1 sketch exchange.

    All randomness comes from the model's own [seed] — protocol runs stay
    reproducible, and the parties' coin streams are untouched, so a run
    that survives the faults produces {e exactly} the output of the
    fault-free run (the reliability layer delivers intact bytes or
    nothing). See docs/ROBUSTNESS.md for the full semantics. *)

(** Per-message fault probabilities. [delay_s] is the nominal extra
    latency (jittered in [0.5, 1.5)×) charged when a delay fault fires. *)
type rates = {
  drop : float;
  corrupt : float;  (** flip one uniformly random bit *)
  truncate : float;  (** cut to a uniformly random proper prefix *)
  duplicate : float;  (** deliver the frame twice *)
  delay : float;  (** probability of delaying by ~[delay_s] *)
  delay_s : float;
}

val zero_rates : rates
(** All probabilities 0 — a rule with these rates is inert. *)

type rule
(** [rates] scoped to a direction and a label prefix. *)

val rule : ?from:Transcript.party -> ?label_prefix:string -> rates -> rule
(** [rule rates] applies to every message; restrict with [?from] (only
    messages sent by that party) and [?label_prefix] (only labels starting
    with the prefix — acks carry the label ["<label>/ack"]). Raises
    [Invalid_argument] if any probability is outside [0, 1]. *)

type t

val create : seed:int -> rule list -> t
(** First matching rule wins; a message matching no rule passes intact. *)

val uniform : seed:int -> rates -> t
(** One rule covering every message in both directions. *)

val none : seed:int -> t
(** No rules: a perfectly transparent wire. *)

val is_active : t -> bool
(** Whether any rule carries a nonzero probability. The channel engages
    the reliability layer (framing, acks, retries) only on an active
    model, so an inert one leaves transcripts byte-for-byte unchanged. *)

(** Cumulative injection counts since [create]. *)
type stats = {
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  delayed : int;
  injected_delay : float;  (** total injected delay, seconds *)
}

val zero_stats : stats
val stats : t -> stats
val total_injected : stats -> int

(** One physical arrival of a (possibly mangled) frame. *)
type delivery = { bytes : string; delay : float }

val apply : t -> from:Transcript.party -> label:string -> string -> delivery list
(** Run the fault model over one frame: [] means dropped, two elements
    mean duplicated; bytes may be corrupted or truncated and each copy
    carries its injected delay. Emits [faults_*] counters and
    [fault.<kind>] trace events per docs/OBSERVABILITY.md. *)
