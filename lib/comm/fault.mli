(** Seeded, deterministic fault injection for the simulated wire.

    A fault model is applied to the {e encoded bytes} of each frame as it
    crosses the channel: messages can be dropped, bit-flipped, truncated,
    duplicated, or delayed, each with its own probability. Rules are
    matched per direction and per transcript-label prefix, so a test can
    make only Bob's acks lossy, or only the round-1 sketch exchange.

    All randomness comes from the model's own [seed] — protocol runs stay
    reproducible, and the parties' coin streams are untouched, so a run
    that survives the faults produces {e exactly} the output of the
    fault-free run (the reliability layer delivers intact bytes or
    nothing). See docs/ROBUSTNESS.md for the full semantics. *)

(** Per-message fault probabilities. [delay_s] is the nominal extra
    latency (jittered in [0.5, 1.5)×) charged when a delay fault fires. *)
type rates = {
  drop : float;
  corrupt : float;  (** flip one uniformly random bit *)
  truncate : float;  (** cut to a uniformly random proper prefix *)
  duplicate : float;  (** deliver the frame twice *)
  delay : float;  (** probability of delaying by ~[delay_s] *)
  delay_s : float;
}

val zero_rates : rates
(** All probabilities 0 — a rule with these rates is inert. *)

type rule
(** [rates] scoped to a direction and a label prefix. *)

val rule : ?from:Transcript.party -> ?label_prefix:string -> rates -> rule
(** [rule rates] applies to every message; restrict with [?from] (only
    messages sent by that party) and [?label_prefix] (only labels starting
    with the prefix — acks carry the label ["<label>/ack"]). Raises
    [Invalid_argument] if any probability is outside [0, 1]. *)

(** {1 Crash events}

    Link faults mangle bytes; crash events kill a {e party}. A crash rule
    names its victim and the point at which the victim dies: either after a
    fixed number of logical messages have crossed the channel, or at the
    moment the victim is about to speak under a given label (a phase
    boundary). When the victim's next [send] trips the rule, the channel
    raises {!Party_crash} {e before} any bytes enter the wire — exactly a
    process dying between messages. A crash rule fires at most once per
    model (a restarted process does not re-crash); replayed journal
    messages (see {!Journal}) never trip crash rules. *)

(** Where a crash rule triggers. *)
type crash_site =
  | After_messages of int
      (** die on the victim's first send once ≥ k logical messages (from
          either party) have crossed the channel; [After_messages 0] kills
          the victim's very first send *)
  | At_label of string
      (** die when the victim is about to send a message whose label starts
          with this prefix *)

type crash = { victim : Transcript.party; site : crash_site }

exception
  Party_crash of { party : Transcript.party; after_messages : int }
(** [after_messages] is the number of logical messages that completed
    before the crash. Converted to the typed
    [Matprod_core.Outcome.Crashed] by [Outcome.guard]. *)

(** {1 Straggle events}

    Crash rules kill a party; a straggle rule makes a link {e late}. Once
    [after] logical messages have completed, the next [burst] physical
    frames (retransmissions included) matching the rule's scope each pay
    a fixed extra [delay_s] of simulated latency. A spike larger than the
    reliability layer's timeout forces retransmissions, so the link
    completes — intact, eventually — while accumulating honest simulated
    waiting; that is exactly the signature a fleet deadline uses to flag a
    straggling worker (docs/ROBUSTNESS.md). One-shot like crash rules:
    once the burst is spent the wire is fast again, so a journal resume
    (or a plain retry) does not pay the spike twice. *)

type straggle

val straggle :
  ?from:Transcript.party ->
  ?label_prefix:string ->
  ?after:int ->
  ?burst:int ->
  delay_s:float ->
  unit ->
  straggle
(** [after] (default 0) counts completed logical messages before the spike
    arms; [burst] (default 1) is how many physical frames the spike hits;
    [delay_s] must be > 0 — deterministic, no jitter, so tests can place it
    exactly relative to the retransmission timeout. *)

(** {1 Byzantine events}

    Byte faults mangle frames; crash rules kill parties; a {e byzantine}
    rule makes a worker {e lie}. It perturbs the worker's decoded shard
    answer after correct framing — the bytes on the wire are intact, so
    CRC/ARQ pass by construction and only semantic verification
    (replica voting, answer validators — see [Matprod_verify.Verify] and
    docs/ROBUSTNESS.md) can catch it. The rule is seeded and one-shot:
    the corruption drawn from the rule's own PRNG never perturbs the
    byte-rule stream, and a fired rule stays fired across journal resumes
    and supervisor reseeds while the same model instance is reused.

    A byzantine rule does {e not} make the model {!is_active}: the wire
    stays byte-for-byte transparent (that is the point of the attack). *)

(** How the decoded answer is perturbed (the transform itself lives in
    [Matprod_verify.Verify.corrupt], which knows the answer shapes). *)
type byzantine_mode =
  | Scale  (** multiply numeric content by 16 / shift reported coordinates *)
  | Sign_flip  (** negate values / negate row indices *)
  | Swap  (** swap row and column indices / invert scalar magnitudes *)
  | Garbage  (** replace with seeded out-of-range junk *)

val all_byzantine_modes : byzantine_mode list
val byzantine_mode_to_string : byzantine_mode -> string

val byzantine_mode_of_string : string -> byzantine_mode option
(** Accepts ["scale"], ["sign-flip"] (or ["sign_flip"]), ["swap"],
    ["garbage"]. *)

type byzantine

val byzantine : mode:byzantine_mode -> unit -> byzantine

type t

val create :
  ?crashes:crash list ->
  ?straggles:straggle list ->
  ?byzantines:byzantine list ->
  seed:int ->
  rule list ->
  t
(** First matching rule wins; a message matching no rule passes intact. *)

val uniform : seed:int -> rates -> t
(** One rule covering every message in both directions. *)

val none : seed:int -> t
(** No rules: a perfectly transparent wire. *)

val crash_only : party:Transcript.party -> at:crash_site -> t
(** A model with no byte faults and one crash rule — the wire stays
    byte-for-byte transparent until the victim dies. *)

val straggle_only :
  ?from:Transcript.party ->
  ?label_prefix:string ->
  ?after:int ->
  ?burst:int ->
  delay_s:float ->
  unit ->
  t
(** A model with no byte faults and one straggle rule: every frame passes
    intact, but the spiked ones arrive late. *)

val byzantine_only : ?seed:int -> mode:byzantine_mode -> unit -> t
(** A model with no byte faults and one byzantine rule: the wire is
    perfectly transparent, but the first decoded answer checked against
    this model is corrupted. [seed] (default 0) drives the corruption
    draw. *)

val check_byzantine : t -> (byzantine_mode * Matprod_util.Prng.t) option
(** Called by the topology layer once per decoded shard answer:
    [Some (mode, prng)] if an unfired byzantine rule is armed — the rule
    fires (one-shot) and the caller corrupts the answer with [mode] using
    [prng]. Emits the [faults_byzantine] counter and a [fault.byzantine]
    trace event when firing. *)

val check_crash : t -> from:Transcript.party -> label:string -> unit
(** Called by {!Channel.send} once per logical message before transmission:
    raises {!Party_crash} if an unfired crash rule triggers for this
    sender, otherwise counts the message and returns. Emits the
    [faults_crashed] counter and a [fault.crash] trace event when firing. *)

val is_active : t -> bool
(** Whether any rule carries a nonzero probability or a straggle rule is
    present. The channel engages the reliability layer (framing, acks,
    retries) only on an active model, so an inert one leaves transcripts
    byte-for-byte unchanged. *)

(** Cumulative injection counts since [create]. *)
type stats = {
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  delayed : int;
  crashed : int;  (** crash rules fired *)
  straggled : int;  (** frames hit by a straggle spike *)
  byzantined : int;  (** byzantine rules fired (answers corrupted) *)
  injected_delay : float;  (** total injected delay, seconds *)
}

val zero_stats : stats
val stats : t -> stats
val total_injected : stats -> int

(** One physical arrival of a (possibly mangled) frame. *)
type delivery = { bytes : string; delay : float }

val apply : t -> from:Transcript.party -> label:string -> string -> delivery list
(** Run the fault model over one frame: [] means dropped, two elements
    mean duplicated; bytes may be corrupted or truncated and each copy
    carries its injected delay. Emits [faults_*] counters and
    [fault.<kind>] trace events per docs/OBSERVABILITY.md. *)
