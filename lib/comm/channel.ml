module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace

type wire = {
  fault : Fault.t;
  cfg : Reliable.config;
  mutable seq : int;
  mutable data_frames : int;
  mutable acks : int;
  mutable retries : int;
  mutable crc_rejects : int;
  mutable giveups : int;
  mutable waited : float;
}

type t = {
  transcript : Transcript.t;
  names : Transcript.party -> string;
  transport : Transport.t;
  mutable wire : wire option;
  mutable journal : Journal.writer option;
  mutable replay : Journal.entry list;
  mutable replayed_messages : int;
  mutable replayed_bytes : int;
}

let transcript t = t.transcript

let arm_journal t w = t.journal <- Some w

let arm_replay t entries =
  if Transcript.message_count t.transcript > 0 then
    invalid_arg "Channel.arm_replay: messages already sent";
  t.replay <- entries

let close_journal t =
  match t.journal with
  | None -> ()
  | Some w ->
      t.journal <- None;
      Journal.close w

let close t =
  close_journal t;
  Transport.close t.transport

let transport t = t.transport

type replay_stats = { replayed_messages : int; replayed_bytes : int }

let replay_stats (t : t) =
  { replayed_messages = t.replayed_messages; replayed_bytes = t.replayed_bytes }

let replay_pending t = List.length t.replay

let install t ~fault ?(reliable = Reliable.default_config) () =
  t.wire <-
    Some
      {
        fault;
        cfg = reliable;
        seq = 0;
        data_frames = 0;
        acks = 0;
        retries = 0;
        crc_rejects = 0;
        giveups = 0;
        waited = 0.0;
      }

let configure t ?fault ?reliable ?journal ?replay () =
  (match (fault, reliable) with
  | Some fault, _ -> install t ~fault ?reliable ()
  | None, Some _ ->
      invalid_arg "Channel.configure: ?reliable requires ?fault"
  | None, None -> ());
  (match replay with Some entries -> arm_replay t entries | None -> ());
  match journal with Some w -> arm_journal t w | None -> ()

let create ?(names = Transcript.party_name) ?transport ?fault ?reliable
    ?journal ?replay () =
  let transport =
    match transport with Some tr -> tr | None -> Transport.sim ()
  in
  let t =
    {
      transcript = Transcript.create ();
      names;
      transport;
      wire = None;
      journal = None;
      replay = [];
      replayed_messages = 0;
      replayed_bytes = 0;
    }
  in
  configure t ?fault ?reliable ?journal ?replay ();
  t

let installed_fault t = Option.map (fun w -> w.fault) t.wire

type stats = {
  data_frames : int;
  acks : int;
  retries : int;
  crc_rejects : int;
  giveups : int;
  waited : float;
  faults : Fault.stats;
}

let zero_stats =
  {
    data_frames = 0;
    acks = 0;
    retries = 0;
    crc_rejects = 0;
    giveups = 0;
    waited = 0.0;
    faults = Fault.zero_stats;
  }

let stats t =
  match t.wire with
  | None -> zero_stats
  | Some w ->
      {
        data_frames = w.data_frames;
        acks = w.acks;
        retries = w.retries;
        crc_rejects = w.crc_rejects;
        giveups = w.giveups;
        waited = w.waited;
        faults = Fault.stats w.fault;
      }

let c_messages = Metrics.counter "messages_sent"
let c_telemetry = Metrics.counter "telemetry_bytes"
let h_encode = Metrics.histogram "codec_encode_ns"
let h_decode = Metrics.histogram "codec_decode_ns"
let c_rel_frames = Metrics.counter "reliable_frames"
let c_rel_acks = Metrics.counter "reliable_acks"
let c_rel_retries = Metrics.counter "reliable_retries"
let c_rel_crc = Metrics.counter "reliable_crc_rejects"
let c_rel_giveups = Metrics.counter "reliable_giveups"

(* Charge one physical transmission to the transcript, metrics, and trace —
   the accounting path every message (and every frame) goes through.

   When tracing is on, every transmission also carries the active span
   context as an out-of-band frame (trace id + span id). Those bytes are
   telemetry riding alongside the protocol: they count only toward the
   telemetry_bytes counter, never toward transcript bits/rounds, so byte-
   identity galleries hold with tracing on. *)
let record_msg t ~from ~label ~bytes =
  let round_before = Transcript.rounds t.transcript in
  Transcript.record t.transcript ~sender:from ~label ~bytes;
  let round = Transcript.rounds t.transcript in
  if Metrics.enabled () then begin
    Metrics.incr c_messages;
    Metrics.in_scope (t.names from) (fun () ->
        Metrics.incr_by (Metrics.counter ~label "bytes_sent") bytes)
  end;
  if Trace.enabled () then begin
    let frame = Trace.context_frame () in
    if Metrics.enabled () then
      Metrics.incr_by c_telemetry (String.length frame);
    let ctx_attrs =
      match Trace.parse_context_frame frame with
      | Some c ->
          [
            ("trace", Matprod_obs.Json.String (Trace.hex_id c.Trace.trace_id));
            ("span", Matprod_obs.Json.String (Trace.hex_id c.Trace.span_id));
          ]
      | None -> []
    in
    if round > round_before then
      Trace.event ~name:"channel.round"
        ~attrs:
          [
            ("round", Matprod_obs.Json.Int round);
            ("speaker", Matprod_obs.Json.String (t.names from));
          ]
        ();
    Trace.event ~name:"channel.msg"
      ~attrs:
        ([
           ("sender", Matprod_obs.Json.String (t.names from));
           ("label", Matprod_obs.Json.String label);
           ("bytes", Matprod_obs.Json.Int bytes);
           ("round", Matprod_obs.Json.Int round);
         ]
        @ ctx_attrs)
      ()
  end

(* Stop-and-wait over the faulty wire: frame, transmit, collect what the
   fault model lets through, ack, retransmit on silence with capped
   exponential backoff. Every frame and ack — including retransmissions —
   is charged through [record_msg], so the transcript prices reliability
   honestly. Returns the payload the receiver accepted; the CRC ensures it
   equals the payload sent. *)
let send_reliable t w ~from ~label payload =
  let seq = w.seq in
  w.seq <- seq + 1;
  let to_party = Transcript.other from in
  let ack_label = label ^ "/ack" in
  let received = ref None in
  let rec attempt n timeout =
    if n > w.cfg.max_attempts then begin
      w.giveups <- w.giveups + 1;
      if Metrics.enabled () then Metrics.incr c_rel_giveups;
      if Trace.enabled () then
        Trace.event ~name:"reliable.giveup"
          ~attrs:
            [
              ("label", Matprod_obs.Json.String label);
              ("attempts", Matprod_obs.Json.Int w.cfg.max_attempts);
            ]
          ();
      raise (Reliable.Link_failure { label; attempts = w.cfg.max_attempts })
    end;
    if n > 1 then begin
      w.retries <- w.retries + 1;
      if Metrics.enabled () then Metrics.incr c_rel_retries;
      if Trace.enabled () then
        Trace.event ~name:"reliable.retry"
          ~attrs:
            [
              ("label", Matprod_obs.Json.String label);
              ("attempt", Matprod_obs.Json.Int n);
            ]
          ()
    end;
    (* Data frame: sender -> receiver. *)
    let frame = Reliable.data_frame ~seq payload in
    w.data_frames <- w.data_frames + 1;
    if Metrics.enabled () then Metrics.incr c_rel_frames;
    record_msg t ~from ~label ~bytes:(String.length frame);
    let deliveries = Fault.apply w.fault ~from ~label frame in
    let arrived = ref false in
    List.iter
      (fun d ->
        if d.Fault.delay <= timeout then
          match Reliable.parse d.Fault.bytes with
          | Ok (Reliable.Data, s, p) when s = seq ->
              arrived := true;
              if !received = None then received := Some p
          | Ok _ -> () (* stale or duplicate sequence number *)
          | Error _ ->
              w.crc_rejects <- w.crc_rejects + 1;
              if Metrics.enabled () then Metrics.incr c_rel_crc)
      deliveries;
    if not !arrived then begin
      (* Silence: wait out the timeout, back off, retransmit. *)
      w.waited <- w.waited +. timeout;
      attempt (n + 1) (Reliable.next_timeout w.cfg timeout)
    end
    else begin
      (* Receiver acks (first arrival or duplicate alike); the ack crosses
         the same faulty wire. *)
      let ack = Reliable.ack_frame ~seq in
      w.acks <- w.acks + 1;
      if Metrics.enabled () then Metrics.incr c_rel_acks;
      record_msg t ~from:to_party ~label:ack_label ~bytes:(String.length ack);
      let ack_deliveries =
        Fault.apply w.fault ~from:to_party ~label:ack_label ack
      in
      let ack_ok =
        List.exists
          (fun d ->
            d.Fault.delay <= timeout
            &&
            match Reliable.parse d.Fault.bytes with
            | Ok (Reliable.Ack, s, _) -> s = seq
            | Ok _ -> false
            | Error _ ->
                w.crc_rejects <- w.crc_rejects + 1;
                if Metrics.enabled () then Metrics.incr c_rel_crc;
                false)
          ack_deliveries
      in
      if ack_ok then
        match !received with Some p -> p | None -> assert false
      else begin
        w.waited <- w.waited +. timeout;
        attempt (n + 1) (Reliable.next_timeout w.cfg timeout)
      end
    end
  in
  attempt 1 w.cfg.base_timeout

let c_replayed = Metrics.counter "journal_replayed_messages"
let c_replayed_bytes = Metrics.counter "journal_replayed_bytes"

(* Serve one send from the journal: verify the determinism invariant (the
   re-run must produce exactly the journaled message) and charge nothing. *)
let replay_one t ~from ~label ~wire (e : Journal.entry) rest =
  let mismatch reason = raise (Journal.Replay_mismatch { label; reason }) in
  if e.Journal.sender <> from then
    mismatch
      (Printf.sprintf "journal has %s speaking, run has %s"
         (Transcript.party_name e.Journal.sender)
         (Transcript.party_name from));
  if e.Journal.label <> label then
    mismatch (Printf.sprintf "journal records label %S" e.Journal.label);
  if e.Journal.payload <> wire then
    mismatch
      (Printf.sprintf "payload differs from journal (%d vs %d bytes)"
         (String.length wire)
         (String.length e.Journal.payload));
  t.replay <- rest;
  t.replayed_messages <- t.replayed_messages + 1;
  t.replayed_bytes <- t.replayed_bytes + String.length wire;
  if Metrics.enabled () then begin
    Metrics.incr c_replayed;
    Metrics.incr_by c_replayed_bytes (String.length wire)
  end;
  if Trace.enabled () then
    Trace.event ~name:"journal.replay"
      ~attrs:
        [
          ("label", Matprod_obs.Json.String label);
          ("bytes", Matprod_obs.Json.Int (String.length wire));
        ]
      ()

let send t ~from ~label codec v =
  let wire = Metrics.timed h_encode (fun () -> Codec.encode codec v) in
  match t.replay with
  | e :: rest ->
      replay_one t ~from ~label ~wire e rest;
      Metrics.timed h_decode (fun () -> Codec.decode codec e.Journal.payload)
  | [] ->
      (match t.wire with
      | Some w -> Fault.check_crash w.fault ~from ~label
      | None -> ());
      let payload =
        match t.wire with
        | Some w when Fault.is_active w.fault ->
            send_reliable t w ~from ~label wire
        | _ ->
            record_msg t ~from ~label ~bytes:(String.length wire);
            wire
      in
      (* The accepted payload crosses the physical backend last: the
         transcript is already charged, so Sim and a faithful Tcp produce
         byte-identical transcripts. Replayed messages never get here —
         resume must not touch the wire. *)
      let payload = Transport.deliver t.transport ~from ~label payload in
      (match t.journal with
      | Some jw -> Journal.append jw ~sender:from ~label ~payload
      | None -> ());
      Metrics.timed h_decode (fun () -> Codec.decode codec payload)
