module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace

type t = { transcript : Transcript.t }

let create () = { transcript = Transcript.create () }
let transcript t = t.transcript

let c_messages = Metrics.counter "messages_sent"
let h_encode = Metrics.histogram "codec_encode_ns"
let h_decode = Metrics.histogram "codec_decode_ns"

let send t ~from ~label codec v =
  let wire = Metrics.timed h_encode (fun () -> Codec.encode codec v) in
  let bytes = String.length wire in
  let round_before = Transcript.rounds t.transcript in
  Transcript.record t.transcript ~sender:from ~label ~bytes;
  let round = Transcript.rounds t.transcript in
  if Metrics.enabled () then begin
    Metrics.incr c_messages;
    Metrics.incr_by (Metrics.counter ~label "bytes_sent") bytes
  end;
  if Trace.enabled () then begin
    if round > round_before then
      Trace.event ~name:"channel.round"
        ~attrs:
          [
            ("round", Matprod_obs.Json.Int round);
            ( "speaker",
              Matprod_obs.Json.String (Transcript.party_name from) );
          ]
        ();
    Trace.event ~name:"channel.msg"
      ~attrs:
        [
          ("sender", Matprod_obs.Json.String (Transcript.party_name from));
          ("label", Matprod_obs.Json.String label);
          ("bytes", Matprod_obs.Json.Int bytes);
          ("round", Matprod_obs.Json.Int round);
        ]
      ()
  end;
  Metrics.timed h_decode (fun () -> Codec.decode codec wire)
