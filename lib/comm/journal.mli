(** Write-ahead log of a protocol transcript, for crash recovery.

    A journal records every {e logical} message of a run — sender, label,
    and the exact codec-encoded payload — together with the run's seed and
    a protocol id. Because every coin in a run derives from the seed
    (parties' streams are split off it, the fault model is separate), the
    logical transcript is a deterministic function of the seed: a restarted
    run re-derives the same values, so {!Ctx.resume} can replay journaled
    messages byte-for-byte, charging zero fresh communication up to the
    crash point, and assert along the way that each re-encoded message
    equals the journaled bytes.

    {2 File format}

    All integers are LEB128 varints (zigzag for the seed). Each record is
    independently CRC32-guarded, so a torn tail — the expected debris of a
    crash mid-append — is detected and dropped rather than trusted:

    {v
    header: "MPJ1" ++ version(1B = 0x01) ++ |protocol| ++ protocol ++ zigzag(seed)
    entry : 'M'(1B) ++ body ++ CRC32(body)(4B LE)
    body  : sender(1B: 0 = Alice, 1 = Bob) ++ |label| ++ label ++ |payload| ++ payload
    trace : 'T'(1B) ++ trace_id(8B LE) ++ CRC32(trace_id)(4B LE)
    v}

    ['T'] records are out-of-band telemetry written only when tracing is
    enabled: they store the writing run's stable trace id so a resumed run
    can cross-link its spans to the crashed run's trace. Replay ignores
    them — they never count as entries, transcript bits, or journal bytes
    (their size is charged to the [telemetry_bytes] counter), so a journal
    written with tracing on replays byte-identically to one written with
    tracing off.

    Parsing is total: malformed input yields [Error] (bad header) or a
    clean prefix of entries with [clean = false] (bad record), never an
    exception and never allocation beyond the input size. *)

type entry = {
  sender : Transcript.party;
  label : string;
  payload : string;  (** the codec-encoded bytes that crossed the wire *)
}

val entry_bytes : entry -> int
(** Payload bytes — what the transcript charged for the message. *)

type t = {
  protocol : string;
  seed : int;
  entries : entry list;  (** in send order; the clean prefix of the log *)
  clean : bool;
      (** [false] when trailing bytes (a torn or corrupted record) were
          discarded — normal after a crash mid-append *)
  origin_trace : int64 option;
      (** Stable trace id of the run that wrote the journal, when it ran
          with tracing enabled; first ['T'] record wins. *)
}

exception
  Replay_mismatch of { label : string; reason : string }
(** Raised by the channel when a resumed run diverges from its journal:
    different sender, label, or payload bytes than recorded. Indicates a
    journal from a different seed/protocol or genuine nondeterminism;
    converted to a typed [Outcome.Protocol_failure] by [Outcome.guard]. *)

(** {1 Serialisation} *)

val to_bytes : protocol:string -> seed:int -> entry list -> string

val of_bytes : string -> (t, string) result
(** [Error reason] if the header is unusable; otherwise [Ok t] with the
    longest prefix of records that frame and checksum correctly. *)

val crc32 : entry -> int
(** CRC32 of the entry's record body, as stored in the file. *)

(** {1 Files} *)

val load : string -> (t, string) result
(** Read and parse a journal file. [Error] covers unreadable files and bad
    headers; torn tails come back as [Ok {clean = false; _}]. *)

(** {1 Appending}

    A writer flushes after every record, so entries survive the writing
    process dying at any point (the in-flight record is the only loss, and
    parsing drops it). *)

type writer

val create : path:string -> protocol:string -> seed:int -> writer
(** Truncate [path] and start a fresh journal. Raises [Sys_error] when the
    file cannot be opened. *)

val reopen : path:string -> t -> writer
(** Rewrite [path] with [t]'s header and clean entries, positioned to
    append — how a resumed run continues its journal past a torn tail. *)

val append : writer -> sender:Transcript.party -> label:string -> payload:string -> unit
val close : writer -> unit
(** Idempotent. *)
