module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace

type entry = {
  sender : Transcript.party;
  label : string;
  payload : string;
}

let entry_bytes e = String.length e.payload

type t = {
  protocol : string;
  seed : int;
  entries : entry list;
  clean : bool;
  origin_trace : int64 option;
}

exception Replay_mismatch of { label : string; reason : string }

let magic = "MPJ1"
let version = '\x01'
let entry_tag = 'M'
let trace_tag = 'T'

(* --- varints (local: Codec frames whole values, we need raw fields) --- *)

let put_uvarint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_zigzag buf n = put_uvarint buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

(* Reader over a string; [None] on any malformed field. *)
let get_uvarint s pos =
  let len = String.length s in
  let rec go p shift acc =
    if p >= len || shift > 63 then None
    else
      let b = Char.code s.[p] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some (acc, p + 1) else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let get_zigzag s pos =
  match get_uvarint s pos with
  | None -> None
  | Some (u, p) -> Some ((u lsr 1) lxor (-(u land 1)), p)

let get_bytes s pos n =
  if n < 0 || pos + n > String.length s then None
  else Some (String.sub s pos n, pos + n)

(* --- record bodies --------------------------------------------------- *)

let sender_byte = function Transcript.Alice -> '\x00' | Transcript.Bob -> '\x01'

let entry_body e =
  let buf = Buffer.create (String.length e.payload + String.length e.label + 8) in
  Buffer.add_char buf (sender_byte e.sender);
  put_uvarint buf (String.length e.label);
  Buffer.add_string buf e.label;
  put_uvarint buf (String.length e.payload);
  Buffer.add_string buf e.payload;
  Buffer.contents buf

let crc32 e = Reliable.crc32 (entry_body e)

let crc32_of_le crc_bytes =
  Char.code crc_bytes.[0]
  lor (Char.code crc_bytes.[1] lsl 8)
  lor (Char.code crc_bytes.[2] lsl 16)
  lor (Char.code crc_bytes.[3] lsl 24)

let add_crc32_le buf c =
  Buffer.add_char buf (Char.chr (c land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 24) land 0xff))

let entry_record e =
  let body = entry_body e in
  let buf = Buffer.create (String.length body + 5) in
  Buffer.add_char buf entry_tag;
  Buffer.add_string buf body;
  add_crc32_le buf (Reliable.crc32 body);
  Buffer.contents buf

(* Trace records are telemetry, not transcript: they let a resumed run
   link its spans back to the crashed run's trace, and replay ignores
   them entirely. Same tag+body+crc framing as entries. *)
let trace_record tid =
  let body = Buffer.create 8 in
  Buffer.add_int64_le body tid;
  let body = Buffer.contents body in
  let buf = Buffer.create 13 in
  Buffer.add_char buf trace_tag;
  Buffer.add_string buf body;
  add_crc32_le buf (Reliable.crc32 body);
  Buffer.contents buf

let header ~protocol ~seed =
  let buf = Buffer.create (String.length protocol + 16) in
  Buffer.add_string buf magic;
  Buffer.add_char buf version;
  put_uvarint buf (String.length protocol);
  Buffer.add_string buf protocol;
  put_zigzag buf seed;
  Buffer.contents buf

let to_bytes ~protocol ~seed entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (header ~protocol ~seed);
  List.iter (fun e -> Buffer.add_string buf (entry_record e)) entries;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

let parse_entry s pos =
  (* [None] = this record (and hence the rest of the log) is unusable. *)
  if pos >= String.length s || s.[pos] <> entry_tag then None
  else
    let body_start = pos + 1 in
    match get_uvarint s (body_start + 1) with
    | None -> None
    | Some (label_len, p) -> (
        match get_bytes s p label_len with
        | None -> None
        | Some (label, p) -> (
            match get_uvarint s p with
            | None -> None
            | Some (payload_len, p) -> (
                match get_bytes s p payload_len with
                | None -> None
                | Some (payload, body_end) -> (
                    let sender =
                      match s.[body_start] with
                      | '\x00' -> Some Transcript.Alice
                      | '\x01' -> Some Transcript.Bob
                      | _ -> None
                    in
                    match (sender, get_bytes s body_end 4) with
                    | Some sender, Some (crc_bytes, next) ->
                        let stored = crc32_of_le crc_bytes in
                        let body =
                          String.sub s body_start (body_end - body_start)
                        in
                        if Reliable.crc32 body <> stored then None
                        else Some ({ sender; label; payload }, next)
                    | _ -> None))))

let parse_trace s pos =
  if pos >= String.length s || s.[pos] <> trace_tag then None
  else
    match get_bytes s (pos + 1) 8 with
    | None -> None
    | Some (body, p) -> (
        match get_bytes s p 4 with
        | None -> None
        | Some (crc_bytes, next) ->
            if Reliable.crc32 body <> crc32_of_le crc_bytes then None
            else Some (String.get_int64_le body 0, next))

let of_bytes s =
  let mlen = String.length magic in
  if String.length s < mlen + 1 || String.sub s 0 mlen <> magic then
    Error "Journal: bad magic"
  else if s.[mlen] <> version then Error "Journal: unsupported version"
  else
    match get_uvarint s (mlen + 1) with
    | None -> Error "Journal: truncated header"
    | Some (plen, p) -> (
        match get_bytes s p plen with
        | None -> Error "Journal: truncated protocol id"
        | Some (protocol, p) -> (
            match get_zigzag s p with
            | None -> Error "Journal: truncated seed"
            | Some (seed, p) ->
                let rec records acc origin pos =
                  if pos = String.length s then (List.rev acc, origin, true)
                  else if s.[pos] = trace_tag then
                    match parse_trace s pos with
                    | Some (tid, next) ->
                        let origin =
                          match origin with None -> Some tid | some -> some
                        in
                        records acc origin next
                    | None -> (List.rev acc, origin, false)
                  else
                    match parse_entry s pos with
                    | Some (e, next) -> records (e :: acc) origin next
                    | None -> (List.rev acc, origin, false)
                in
                let entries, origin_trace, clean = records [] None p in
                Ok { protocol; seed; entries; clean; origin_trace }))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_bytes s
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error "Journal: unreadable file"

(* --- appending ------------------------------------------------------- *)

type writer = { oc : out_channel; mutable closed : bool }

let c_appends = Metrics.counter "journal_appends"
let c_append_bytes = Metrics.counter "journal_append_bytes"
let c_telemetry = Metrics.counter "telemetry_bytes"

(* The trace record is out-of-band metadata: its bytes count only toward
   telemetry_bytes, never toward the transcript or journal entry stats. *)
let put_trace_record oc tid =
  let record = trace_record tid in
  output_string oc record;
  if Metrics.enabled () then Metrics.incr_by c_telemetry (String.length record)

let create ~path ~protocol ~seed =
  let oc = open_out_bin path in
  output_string oc (header ~protocol ~seed);
  if Trace.enabled () then put_trace_record oc (Trace.trace_id ());
  flush oc;
  { oc; closed = false }

let reopen ~path t =
  let oc = open_out_bin path in
  output_string oc (header ~protocol:t.protocol ~seed:t.seed);
  (match t.origin_trace with
  | Some tid -> put_trace_record oc tid
  | None -> ());
  List.iter (fun e -> output_string oc (entry_record e)) t.entries;
  flush oc;
  { oc; closed = false }

let append w ~sender ~label ~payload =
  if w.closed then invalid_arg "Journal.append: writer closed";
  let record = entry_record { sender; label; payload } in
  output_string w.oc record;
  (* Flush per record: an in-process "crash" (exception) or a real one may
     strike at any point, and recovery must see every completed message. *)
  flush w.oc;
  if Metrics.enabled () then begin
    Metrics.incr c_appends;
    Metrics.incr_by c_append_bytes (String.length record)
  end

let close w =
  if not w.closed then begin
    w.closed <- true;
    close_out_noerr w.oc
  end
