module Prng = Matprod_util.Prng
module Obs = Matprod_obs

type t = {
  chan : Channel.t;
  seed : int;
  public : Prng.t;
  alice : Prng.t;
  bob : Prng.t;
}

let make ?names ?transport ~seed () =
  let root = Prng.create seed in
  let public = Prng.split root in
  let alice = Prng.split root in
  let bob = Prng.split root in
  { chan = Channel.create ?names ?transport (); seed; public; alice; bob }

let create ?transport ~seed () = make ?transport ~seed ()
let create_named ?transport ~names ~seed () = make ~names ?transport ~seed ()

let install_wire t ~fault ?reliable () =
  Channel.configure t.chan ~fault ?reliable ()

let wire_stats t = Channel.stats t.chan
let send t ~from ~label codec v = Channel.send t.chan ~from ~label codec v
let a2b t ~label codec v = send t ~from:Transcript.Alice ~label codec v
let b2a t ~label codec v = send t ~from:Transcript.Bob ~label codec v
let transcript t = Channel.transcript t.chan
let installed_fault t = Channel.installed_fault t.chan

let record t ~journal ~protocol =
  if Transcript.message_count (transcript t) > 0 then
    invalid_arg "Ctx.record: messages already sent";
  Channel.configure t.chan
    ~journal:(Journal.create ~path:journal ~protocol ~seed:t.seed)
    ()

let resume_from t ?path journal =
  if journal.Journal.seed <> t.seed then
    invalid_arg
      (Printf.sprintf "Ctx.resume: journal seed %d <> run seed %d"
         journal.Journal.seed t.seed);
  (* Cross-run trace link: the journal remembers which trace wrote it. *)
  (match journal.Journal.origin_trace with
  | Some tid when Obs.Trace.enabled () ->
      Obs.Trace.event ~name:"journal.resume"
        ~attrs:
          [
            ("origin_trace", Obs.Json.String (Obs.Trace.hex_id tid));
            ("entries", Obs.Json.Int (List.length journal.Journal.entries));
          ]
        ()
  | _ -> ());
  Channel.configure t.chan ~replay:journal.Journal.entries ();
  match path with
  | None -> ()
  | Some path ->
      Channel.configure t.chan ~journal:(Journal.reopen ~path journal) ()

let close_journal t = Channel.close_journal t.chan
let close t = Channel.close t.chan
let transport t = Channel.transport t.chan
let replay_stats t = Channel.replay_stats t.chan

type 'r run = {
  output : 'r;
  bits : int;
  rounds : int;
  transcript : Transcript.t;
  replayed_messages : int;
  replayed_bits : int;
}

let c_runs = Obs.Metrics.counter "ctx_runs"
let c_bits = Obs.Metrics.counter "bits_sent_total"
let c_rounds = Obs.Metrics.counter "rounds_total"
let h_run = Obs.Metrics.histogram "ctx_run_ns"

let run_prepared ?transport ~seed ~prepare f =
  let t = create ?transport ~seed () in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      (* with_trace wraps prepare too: a journal created there must stamp
         this run's trace id as its origin. *)
      let output =
        Obs.Trace.with_trace ~seed (fun () ->
            prepare t;
            Obs.Trace.with_span ~name:"ctx.run"
              ~attrs:[ ("seed", Obs.Json.Int seed) ]
              (fun () -> Obs.Metrics.timed h_run (fun () -> f t)))
      in
      let tr = transcript t in
      let bits = Transcript.total_bits tr and rounds = Transcript.rounds tr in
      if Obs.Metrics.enabled () then begin
        Obs.Metrics.incr c_runs;
        Obs.Metrics.incr_by c_bits bits;
        Obs.Metrics.incr_by c_rounds rounds
      end;
      let rs = replay_stats t in
      {
        output;
        bits;
        rounds;
        transcript = tr;
        replayed_messages = rs.Channel.replayed_messages;
        replayed_bits = 8 * rs.Channel.replayed_bytes;
      })

let run ?transport ~seed f = run_prepared ?transport ~seed ~prepare:(fun _ -> ()) f

let run_journaled ?transport ~seed ~journal ~protocol f =
  run_prepared ?transport ~seed
    ~prepare:(fun t -> record t ~journal ~protocol)
    f

let resume ?transport ~seed ?path ~journal f =
  run_prepared ?transport ~seed
    ~prepare:(fun t -> resume_from t ?path journal)
    f
