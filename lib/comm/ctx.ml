module Prng = Matprod_util.Prng
module Obs = Matprod_obs

type t = {
  chan : Channel.t;
  public : Prng.t;
  alice : Prng.t;
  bob : Prng.t;
}

let create ~seed =
  let root = Prng.create seed in
  let public = Prng.split root in
  let alice = Prng.split root in
  let bob = Prng.split root in
  { chan = Channel.create (); public; alice; bob }

let install_wire t ~fault ?reliable () =
  Channel.install t.chan ~fault ?reliable ()

let wire_stats t = Channel.stats t.chan
let send t ~from ~label codec v = Channel.send t.chan ~from ~label codec v
let a2b t ~label codec v = send t ~from:Transcript.Alice ~label codec v
let b2a t ~label codec v = send t ~from:Transcript.Bob ~label codec v
let transcript t = Channel.transcript t.chan

type 'r run = {
  output : 'r;
  bits : int;
  rounds : int;
  transcript : Transcript.t;
}

let c_runs = Obs.Metrics.counter "ctx_runs"
let c_bits = Obs.Metrics.counter "bits_sent_total"
let c_rounds = Obs.Metrics.counter "rounds_total"
let h_run = Obs.Metrics.histogram "ctx_run_ns"

let run ~seed f =
  let t = create ~seed in
  let output =
    Obs.Trace.with_span ~name:"ctx.run"
      ~attrs:[ ("seed", Obs.Json.Int seed) ]
      (fun () -> Obs.Metrics.timed h_run (fun () -> f t))
  in
  let tr = transcript t in
  let bits = Transcript.total_bits tr and rounds = Transcript.rounds tr in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr c_runs;
    Obs.Metrics.incr_by c_bits bits;
    Obs.Metrics.incr_by c_rounds rounds
  end;
  { output; bits; rounds; transcript = tr }
