module Prng = Matprod_util.Prng
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace

type rates = {
  drop : float;
  corrupt : float;
  truncate : float;
  duplicate : float;
  delay : float;
  delay_s : float;
}

let zero_rates =
  { drop = 0.0; corrupt = 0.0; truncate = 0.0; duplicate = 0.0; delay = 0.0;
    delay_s = 0.0 }

let validate_rates r =
  let p name v =
    if not (v >= 0.0 && v <= 1.0) then
      invalid_arg (Printf.sprintf "Fault: %s must be a probability" name)
  in
  p "drop" r.drop;
  p "corrupt" r.corrupt;
  p "truncate" r.truncate;
  p "duplicate" r.duplicate;
  p "delay" r.delay;
  if r.delay_s < 0.0 then invalid_arg "Fault: delay_s must be >= 0"

type rule = {
  from : Transcript.party option;
  label_prefix : string;
  rates : rates;
}

let rule ?from ?(label_prefix = "") rates =
  validate_rates rates;
  { from; label_prefix; rates }

type crash_site = After_messages of int | At_label of string
type crash = { victim : Transcript.party; site : crash_site }

exception Party_crash of { party : Transcript.party; after_messages : int }

(* A crash rule plus its one-shot state. *)
type crash_state = { spec : crash; mutable fired : bool }

type straggle = {
  s_from : Transcript.party option;
  s_label_prefix : string;
  s_after : int;
  s_delay_s : float;
  s_burst : int;
}

let straggle ?from ?(label_prefix = "") ?(after = 0) ?(burst = 1) ~delay_s () =
  if delay_s <= 0.0 then invalid_arg "Fault: straggle delay_s must be > 0";
  if after < 0 then invalid_arg "Fault: straggle after must be >= 0";
  if burst < 1 then invalid_arg "Fault: straggle burst must be >= 1";
  { s_from = from; s_label_prefix = label_prefix; s_after = after;
    s_delay_s = delay_s; s_burst = burst }

(* A straggle rule plus its remaining burst charge. *)
type straggle_state = { sspec : straggle; mutable remaining : int }

type byzantine_mode = Scale | Sign_flip | Swap | Garbage

let all_byzantine_modes = [ Scale; Sign_flip; Swap; Garbage ]

let byzantine_mode_to_string = function
  | Scale -> "scale"
  | Sign_flip -> "sign-flip"
  | Swap -> "swap"
  | Garbage -> "garbage"

let byzantine_mode_of_string = function
  | "scale" -> Some Scale
  | "sign-flip" | "sign_flip" -> Some Sign_flip
  | "swap" -> Some Swap
  | "garbage" -> Some Garbage
  | _ -> None

type byzantine = { b_mode : byzantine_mode }

let byzantine ~mode () = { b_mode = mode }

(* A byzantine rule plus its one-shot state. The corrupting PRNG is the
   rule's own (derived at [create]) so firing never perturbs the byte-rule
   stream: adding a byzantine rule leaves every wire fault draw intact. *)
type byzantine_state = {
  bspec : byzantine;
  bprng : Prng.t;
  mutable bfired : bool;
}

type stats = {
  dropped : int;
  corrupted : int;
  truncated : int;
  duplicated : int;
  delayed : int;
  crashed : int;
  straggled : int;
  byzantined : int;
  injected_delay : float;
}

let zero_stats =
  { dropped = 0; corrupted = 0; truncated = 0; duplicated = 0; delayed = 0;
    crashed = 0; straggled = 0; byzantined = 0; injected_delay = 0.0 }

type t = {
  prng : Prng.t;
  rules : rule list;
  crashes : crash_state list;
  straggles : straggle_state list;
  byzantines : byzantine_state list;
  mutable messages_seen : int;  (* logical messages that entered the wire *)
  mutable stats : stats;
}

let validate_crash c =
  match c.site with
  | After_messages k when k < 0 ->
      invalid_arg "Fault: After_messages must be >= 0"
  | After_messages _ | At_label _ -> ()

let create ?(crashes = []) ?(straggles = []) ?(byzantines = []) ~seed rules =
  List.iter validate_crash crashes;
  let byz_stream = Prng.create (seed lxor 0x62797a (* "byz" *)) in
  {
    prng = Prng.create seed;
    rules;
    crashes = List.map (fun spec -> { spec; fired = false }) crashes;
    straggles =
      List.map (fun sspec -> { sspec; remaining = sspec.s_burst }) straggles;
    byzantines =
      List.map
        (fun bspec -> { bspec; bprng = Prng.split byz_stream; bfired = false })
        byzantines;
    messages_seen = 0;
    stats = zero_stats;
  }

let uniform ~seed rates = create ~seed [ rule rates ]
let none ~seed = create ~seed []

let crash_only ~party ~at =
  create ~crashes:[ { victim = party; site = at } ] ~seed:0 []

let straggle_only ?from ?label_prefix ?after ?burst ~delay_s () =
  create
    ~straggles:[ straggle ?from ?label_prefix ?after ?burst ~delay_s () ]
    ~seed:0 []

let byzantine_only ?(seed = 0) ~mode () =
  create ~byzantines:[ byzantine ~mode () ] ~seed []

let stats t = t.stats

let total_injected s =
  s.dropped + s.corrupted + s.truncated + s.duplicated + s.delayed + s.crashed
  + s.straggled + s.byzantined

let rates_active r =
  r.drop > 0.0 || r.corrupt > 0.0 || r.truncate > 0.0 || r.duplicate > 0.0
  || r.delay > 0.0

let is_active t =
  List.exists (fun r -> rates_active r.rates) t.rules || t.straggles <> []

let starts_with ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let matching_rule t ~from ~label =
  List.find_opt
    (fun r ->
      (match r.from with None -> true | Some p -> p = from)
      && starts_with ~prefix:r.label_prefix label)
    t.rules

type delivery = { bytes : string; delay : float }

let c_dropped = Metrics.counter "faults_dropped"
let c_corrupted = Metrics.counter "faults_corrupted"
let c_truncated = Metrics.counter "faults_truncated"
let c_duplicated = Metrics.counter "faults_duplicated"
let c_delayed = Metrics.counter "faults_delayed"
let c_crashed = Metrics.counter "faults_crashed"
let c_straggled = Metrics.counter "faults_straggled"
let c_byzantined = Metrics.counter "faults_byzantine"

let count c kind label =
  if Metrics.enabled () then Metrics.incr c;
  if Trace.enabled () then
    Trace.event ~name:("fault." ^ kind)
      ~attrs:[ ("label", Matprod_obs.Json.String label) ]
      ()

let check_crash t ~from ~label =
  List.iter
    (fun cs ->
      if (not cs.fired) && cs.spec.victim = from then
        let triggers =
          match cs.spec.site with
          | After_messages k -> t.messages_seen >= k
          | At_label prefix -> starts_with ~prefix label
        in
        if triggers then begin
          cs.fired <- true;
          t.stats <- { t.stats with crashed = t.stats.crashed + 1 };
          count c_crashed "crash" label;
          raise
            (Party_crash { party = from; after_messages = t.messages_seen })
        end)
    t.crashes;
  t.messages_seen <- t.messages_seen + 1

(* Byzantine rules fire at the answer boundary, not on a frame: the
   topology layer calls this once per decoded shard answer. One-shot like
   crash rules — a fired rule stays fired across journal resumes and
   supervisor reseeds as long as the same model instance is reused. *)
let check_byzantine t =
  List.fold_left
    (fun acc bs ->
      match acc with
      | Some _ -> acc
      | None ->
          if bs.bfired then None
          else begin
            bs.bfired <- true;
            t.stats <- { t.stats with byzantined = t.stats.byzantined + 1 };
            count c_byzantined "byzantine"
              (byzantine_mode_to_string bs.bspec.b_mode);
            Some (bs.bspec.b_mode, bs.bprng)
          end)
    None t.byzantines

(* Flip one uniformly random bit of [bytes]. *)
let flip_bit prng bytes =
  let n = String.length bytes in
  if n = 0 then bytes
  else begin
    let bit = Prng.int prng (n * 8) in
    let b = Bytes.of_string bytes in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    Bytes.to_string b
  end

let truncate_at prng bytes =
  let n = String.length bytes in
  if n = 0 then bytes else String.sub bytes 0 (Prng.int prng n)

(* One-shot delay spike: once [s_after] logical messages have completed,
   the next [s_burst] physical frames (retransmissions included) matching
   the rule's direction/label scope each pay a fixed extra [s_delay_s].
   The spike is deterministic — no jitter — so a spike chosen to exceed
   the reliability timeout reliably forces retransmissions, which is what
   makes an injected straggler detectable from [waited]. *)
let straggle_extra t ~from ~label =
  List.fold_left
    (fun acc ss ->
      if
        ss.remaining > 0
        && t.messages_seen - 1 >= ss.sspec.s_after
        && (match ss.sspec.s_from with None -> true | Some p -> p = from)
        && starts_with ~prefix:ss.sspec.s_label_prefix label
      then begin
        ss.remaining <- ss.remaining - 1;
        t.stats <-
          {
            t.stats with
            straggled = t.stats.straggled + 1;
            injected_delay = t.stats.injected_delay +. ss.sspec.s_delay_s;
          };
        count c_straggled "straggle" label;
        acc +. ss.sspec.s_delay_s
      end
      else acc)
    0.0 t.straggles

let apply_rules t ~from ~label bytes =
  match matching_rule t ~from ~label with
  | None -> [ { bytes; delay = 0.0 } ]
  | Some { rates = r; _ } when not (rates_active r) -> [ { bytes; delay = 0.0 } ]
  | Some { rates = r; _ } ->
      if Prng.bernoulli t.prng r.drop then begin
        t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
        count c_dropped "drop" label;
        []
      end
      else begin
        let copies =
          if Prng.bernoulli t.prng r.duplicate then begin
            t.stats <- { t.stats with duplicated = t.stats.duplicated + 1 };
            count c_duplicated "duplicate" label;
            2
          end
          else 1
        in
        List.init copies (fun _ ->
            let b = ref bytes in
            if Prng.bernoulli t.prng r.corrupt then begin
              t.stats <- { t.stats with corrupted = t.stats.corrupted + 1 };
              count c_corrupted "corrupt" label;
              b := flip_bit t.prng !b
            end;
            if Prng.bernoulli t.prng r.truncate then begin
              t.stats <- { t.stats with truncated = t.stats.truncated + 1 };
              count c_truncated "truncate" label;
              b := truncate_at t.prng !b
            end;
            let delay =
              if Prng.bernoulli t.prng r.delay then begin
                (* Jittered around delay_s so repeated retries do not all
                   miss (or all clear) a fixed timeout. *)
                let d = r.delay_s *. (0.5 +. Prng.float t.prng) in
                t.stats <-
                  {
                    t.stats with
                    delayed = t.stats.delayed + 1;
                    injected_delay = t.stats.injected_delay +. d;
                  };
                count c_delayed "delay" label;
                d
              end
              else 0.0
            in
            { bytes = !b; delay })
      end

let apply t ~from ~label bytes =
  let extra = straggle_extra t ~from ~label in
  let deliveries = apply_rules t ~from ~label bytes in
  if extra = 0.0 then deliveries
  else List.map (fun d -> { d with delay = d.delay +. extra }) deliveries
