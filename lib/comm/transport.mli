(** Pluggable physical transports under the logical {!Channel}.

    A transport carries one already-encoded logical message ("the payload
    the receiver accepted" — after the fault model and the {!Reliable}
    ARQ, if armed, have done their work) from one party to the other and
    hands back the bytes the receiver observed. The {!Channel} charges
    the transcript {e before} delivery, so two backends that deliver
    faithfully produce byte-identical transcripts at the same seed:

    - {b Sim} — the historical in-process wire: delivery is the identity
      on the payload. Zero overhead, and the default everywhere, so every
      pre-existing gallery keeps passing bit-for-bit.
    - {b Tcp} — a real loopback socket pair: the payload crosses a Unix
      TCP connection framed as [len(4B BE) ++ flags(1B) ++ [ctx(18B)] ++
      payload ++ CRC32(4B)], where [ctx] is the out-of-band 18-byte
      telemetry context frame ({!Matprod_obs.Trace.context_frame}),
      present when tracing is on (flags bit 0). Frame overhead is
      physical, not logical: the transcript still prices exactly the
      payload bytes, as with [Sim].

    Both ends of the [Tcp] pair live in this process, so [deliver]
    interleaves writing and reading via [select] — a message larger than
    the socket buffers cannot deadlock the caller.

    The same frame grammar is the unit of the [matprod serve] wire
    protocol; the blocking {!write_frame}/{!read_frame} helpers are the
    daemon's I/O layer. *)

(** Backend signature. [deliver] must return the exact bytes the receiving
    party observes; [close] releases OS resources and is idempotent. *)
module type S = sig
  type conn

  val name : string

  val deliver :
    conn -> from:Transcript.party -> label:string -> string -> string

  val close : conn -> unit
end

type t = Conn : (module S with type conn = 'a) * 'a -> t
(** A backend packed with its live connection state. *)

val name : t -> string
val deliver : t -> from:Transcript.party -> label:string -> string -> string
val close : t -> unit

val sim : unit -> t
(** The in-process simulator: delivery is the identity. *)

val tcp_loopback : unit -> t
(** Open a fresh 127.0.0.1 socket pair (ephemeral port, [TCP_NODELAY]);
    each [deliver] frames the payload, pushes it through the kernel, and
    reads it back on the peer end. Raises {!Frame_error} on a checksum
    mismatch or a torn read. *)

type factory = unit -> t
(** Transports hold OS state, so multi-attempt drivers ({!Supervisor},
    fleet links) take a factory and open a fresh connection per attempt. *)

val of_string : string -> (factory, string) result
(** ["sim"] or ["tcp"] — the CLI [--transport] grammar. *)

(** {1 Frame grammar}

    Shared by the [Tcp] backend and the serve daemon. *)

exception Frame_error of string

val max_frame_bytes : int
(** Upper bound on the framed body; oversized frames raise {!Frame_error}
    rather than allocate unbounded buffers from attacker-controlled
    lengths. *)

val frame : string -> string
(** Encode one payload as a self-delimiting frame. The telemetry context
    rides along (flags bit 0) when {!Matprod_obs.Trace.enabled}. *)

val unframe : string -> string * string option
(** Decode a complete frame back to [(payload, ctx)] where [ctx] is the
    raw 18-byte telemetry context frame when present. Raises
    {!Frame_error} on bad length, bad flags, or CRC mismatch. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking: frame the payload and write it fully. *)

val read_frame : Unix.file_descr -> string
(** Blocking: read one full frame, return its payload (context frame, if
    any, is dropped). Raises [End_of_file] on a cleanly closed peer and
    {!Frame_error} on a torn or corrupt frame. *)

val read_frame_ctx : Unix.file_descr -> string * string option
(** {!read_frame}, also surfacing the raw telemetry context frame. *)
