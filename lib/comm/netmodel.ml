type t = {
  name : string;
  latency : float;
  bandwidth : float;
  loss : float;
  timeout : float;
}

let default_timeout = 0.2

let make ~name ~latency ~bandwidth ?(loss = 0.0) ?(timeout = default_timeout)
    () =
  if latency < 0.0 || bandwidth <= 0.0 then invalid_arg "Netmodel.make";
  if not (loss >= 0.0 && loss < 1.0) then invalid_arg "Netmodel.make: loss";
  if timeout < 0.0 then invalid_arg "Netmodel.make: timeout";
  { name; latency; bandwidth; loss; timeout }

let lan = make ~name:"LAN" ~latency:1e-4 ~bandwidth:1e10 ()
let wan = make ~name:"WAN" ~latency:0.05 ~bandwidth:1e8 ()
let mobile = make ~name:"mobile" ~latency:0.12 ~bandwidth:1e7 ()

let with_loss ?(timeout = default_timeout) t ~loss =
  if not (loss >= 0.0 && loss < 1.0) then invalid_arg "Netmodel.with_loss";
  if timeout < 0.0 then invalid_arg "Netmodel.with_loss: timeout";
  { t with loss; timeout }

let transfer_time t tr =
  if t.loss = 0.0 then
    (float_of_int (Transcript.rounds tr) *. t.latency)
    +. (float_of_int (Transcript.total_bits tr) /. t.bandwidth)
  else begin
    (* Each frame is lost independently with probability [loss], so a
       message takes 1/(1-loss) transmissions in expectation, and each of
       the loss/(1-loss) expected failures costs one retransmission
       timeout on top of the wire time. *)
    let survive = 1.0 -. t.loss in
    let expected_timeouts =
      float_of_int (Transcript.message_count tr) *. t.loss /. survive
    in
    (float_of_int (Transcript.rounds tr) *. t.latency)
    +. (float_of_int (Transcript.total_bits tr) /. (t.bandwidth *. survive))
    +. (expected_timeouts *. t.timeout)
  end

let pp_time ppf s =
  if s < 1e-3 then Format.fprintf ppf "%.0f us" (s *. 1e6)
  else if s < 1.0 then Format.fprintf ppf "%.1f ms" (s *. 1e3)
  else Format.fprintf ppf "%.2f s" s
