(** One grammar for every chaos knob.

    The CLI grew one flag per fault kind ([--drop], [--crash-party],
    [--straggle], [--byzantine], ...); this module replaces the sprawl
    with a single spec string:

    {v kind=crash,party=b,after=3;kind=drop,rate=0.1,from=a v}

    Clauses are separated by [';']; each clause is [key=value] pairs
    separated by [','] and must name its [kind] first. Keys per kind:

    - [drop | corrupt | truncate | duplicate]: [rate] (required,
      in [0,1]); optional [from] (sender: [a]/[alice]/[b]/[bob]) and
      [label] (transcript-label prefix).
    - [delay]: as above plus [delay] (seconds, default 0.05).
    - [crash]: victim [party] (two-party runs) or [worker] (fleet rank);
      site [after=k] (logical messages, default 0) or [label=prefix];
      flag [permanent] (fleet: the worker re-crashes on every attempt).
    - [straggle]: [delay] (required, seconds); optional [worker] (fleet
      rank), [from], [label], [after], [burst].
    - [byzantine]: [mode] ([scale]/[sign-flip]/[swap]/[garbage], default
      [scale]); optional [worker] (fleet rank).

    [parse] and {!to_string} round-trip: parsing a canonical string and
    re-printing it is the identity, so specs survive journals, JSON
    reports, and shell pipelines unchanged. *)

type kind =
  | Drop
  | Corrupt
  | Truncate
  | Duplicate
  | Delay
  | Crash
  | Straggle
  | Byzantine

(** One parsed clause. Absent keys are [None]; validation is per-kind
    (see [parse]). *)
type clause = {
  kind : kind;
  rate : float option;
  party : Transcript.party option;  (** two-party victim / sender scope *)
  worker : int option;  (** fleet victim rank *)
  label : string option;
  after : int option;
  burst : int option;
  delay_s : float option;
  mode : Fault.byzantine_mode option;
  permanent : bool;
}

type t = clause list

val parse : string -> (t, string) result
(** The empty string (or only separators) parses to []. Errors name the
    offending clause and key. *)

val to_string : t -> string
(** Canonical form: keys in a fixed order, defaults omitted.
    [parse (to_string spec) = Ok spec]. *)

val kind_to_string : kind -> string

(** {1 Lowering to fault models} *)

val byte_rules : t -> Fault.rule list
(** The [drop]/[corrupt]/[truncate]/[duplicate]/[delay] clauses as
    channel fault rules, in spec order (first match wins). *)

val crashes : ?scope_worker:int -> t -> Fault.crash list
(** Two-party crash events. With [?scope_worker], only clauses whose
    [worker] matches (clauses with no [worker] key apply to every rank);
    fleet crash victims speak as Alice on their link, so a [worker]
    clause with no [party] defaults the victim to Alice. *)

val straggles : ?scope_worker:int -> t -> Fault.straggle list

val byzantines : ?scope_worker:int -> t -> Fault.byzantine list

val permanent_crash : ?scope_worker:int -> t -> bool
(** Whether a scoped crash clause carries the [permanent] flag. *)

val to_fault : ?scope_worker:int -> seed:int -> t -> Fault.t option
(** The whole spec as one fault model ([None] when nothing in the spec
    applies to the scope) — byte rules, crashes, straggles, and byzantine
    corruption together, seeded like {!Fault.create}. *)
