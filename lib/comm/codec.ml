type 'a t = {
  enc : Buffer.t -> 'a -> unit;
  dec : string -> int ref -> 'a;
}

exception Decode_error of string

let dec_fail msg = raise (Decode_error msg)

(* Dense-array decoders (counter_array) must allocate the logical length,
   which a sparse encoding legitimately makes much larger than the wire
   bytes. This cap bounds what a corrupted or adversarial length prefix can
   make us allocate: 2^24 words ≈ 128 MB, far above any sketch state the
   library ships. *)
let max_dense_length = 1 lsl 24

let encode c v =
  let b = Buffer.create 64 in
  c.enc b v;
  Buffer.contents b

let decode c s =
  let pos = ref 0 in
  let v = c.dec s pos in
  if !pos <> String.length s then dec_fail "Codec.decode: trailing bytes";
  v

let encoded_bytes c v = String.length (encode c v)

let read_byte s pos =
  if !pos >= String.length s then dec_fail "Codec: truncated input";
  let b = Char.code s.[!pos] in
  incr pos;
  b

(* LEB128 varint over the unsigned 63-bit interpretation of the int: [lsr]
   is a logical shift, so negative bit patterns (from zigzag of huge ints)
   encode and terminate correctly. *)
let enc_varbits b n =
  let rec go n =
    if n >= 0 && n < 0x80 then Buffer.add_char b (Char.chr n)
    else (
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7))
  in
  go n

let enc_uvarint b n =
  if n < 0 then invalid_arg "Codec.uint: negative";
  enc_varbits b n

let dec_uvarint s pos =
  let rec go shift acc =
    let byte = read_byte s pos in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc
    else if shift >= 63 then dec_fail "Codec: varint too long"
    else go (shift + 7) acc
  in
  go 0 0

(* A 9-byte varint can set bit 63 and come out negative; every unsigned
   context (values, lengths, deltas) must reject that rather than feed a
   negative into [Array.make] or index arithmetic. *)
let dec_unonneg s pos =
  let n = dec_uvarint s pos in
  if n < 0 then dec_fail "Codec: negative unsigned varint";
  n

(* Length prefix for a sequence whose elements each occupy at least one
   byte: a well-formed count can never exceed the bytes left, so cap the
   [Array.init]/[List.init] allocation by the remaining input. *)
let dec_count s pos what =
  let n = dec_unonneg s pos in
  if n > String.length s - !pos then
    dec_fail (what ^ ": length prefix exceeds remaining input");
  n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let unit = { enc = (fun _ () -> ()); dec = (fun _ _ -> ()) }

let bool =
  {
    enc = (fun b v -> Buffer.add_char b (if v then '\001' else '\000'));
    dec =
      (fun s pos ->
        match read_byte s pos with
        | 0 -> false
        | 1 -> true
        | _ -> dec_fail "Codec.bool: bad byte");
  }

let uint = { enc = enc_uvarint; dec = dec_unonneg }

let int =
  {
    enc = (fun b n -> enc_varbits b (zigzag n));
    dec = (fun s pos -> unzigzag (dec_uvarint s pos));
  }

let enc_fixed64 b i64 =
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical i64 (8 * k)) land 0xff))
  done

let dec_fixed64 s pos =
  let acc = ref 0L in
  for k = 0 to 7 do
    let byte = read_byte s pos in
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int byte) (8 * k))
  done;
  !acc

let float64 =
  {
    enc = (fun b f -> enc_fixed64 b (Int64.bits_of_float f));
    dec = (fun s pos -> Int64.float_of_bits (dec_fixed64 s pos));
  }

let float32 =
  {
    enc =
      (fun b f ->
        let i32 = Int32.bits_of_float f in
        for k = 0 to 3 do
          Buffer.add_char b
            (Char.chr (Int32.to_int (Int32.shift_right_logical i32 (8 * k)) land 0xff))
        done);
    dec =
      (fun s pos ->
        let acc = ref 0l in
        for k = 0 to 3 do
          let byte = read_byte s pos in
          acc := Int32.logor !acc (Int32.shift_left (Int32.of_int byte) (8 * k))
        done;
        Int32.float_of_bits !acc);
  }

let pair ca cb =
  {
    enc =
      (fun b (x, y) ->
        ca.enc b x;
        cb.enc b y);
    dec =
      (fun s pos ->
        let x = ca.dec s pos in
        let y = cb.dec s pos in
        (x, y));
  }

let triple ca cb cc =
  {
    enc =
      (fun b (x, y, z) ->
        ca.enc b x;
        cb.enc b y;
        cc.enc b z);
    dec =
      (fun s pos ->
        let x = ca.dec s pos in
        let y = cb.dec s pos in
        let z = cc.dec s pos in
        (x, y, z));
  }

let option c =
  {
    enc =
      (fun b -> function
        | None -> Buffer.add_char b '\000'
        | Some v ->
            Buffer.add_char b '\001';
            c.enc b v);
    dec =
      (fun s pos ->
        match read_byte s pos with
        | 0 -> None
        | 1 -> Some (c.dec s pos)
        | _ -> dec_fail "Codec.option: bad tag");
  }

let array c =
  {
    enc =
      (fun b a ->
        enc_uvarint b (Array.length a);
        Array.iter (c.enc b) a);
    dec =
      (fun s pos ->
        let n = dec_count s pos "Codec.array" in
        Array.init n (fun _ -> c.dec s pos));
  }

let list c =
  {
    enc =
      (fun b l ->
        enc_uvarint b (List.length l);
        List.iter (c.enc b) l);
    dec =
      (fun s pos ->
        let n = dec_count s pos "Codec.list" in
        List.init n (fun _ -> c.dec s pos));
  }

let int_array = array int
let uint_array = array uint

let sorted_int_array =
  {
    enc =
      (fun b a ->
        enc_uvarint b (Array.length a);
        let prev = ref (-1) in
        Array.iter
          (fun x ->
            if x <= !prev then
              invalid_arg "Codec.sorted_int_array: not strictly increasing";
            enc_uvarint b (x - !prev - 1);
            prev := x)
          a);
    dec =
      (fun s pos ->
        let n = dec_count s pos "Codec.sorted_int_array" in
        let prev = ref (-1) in
        Array.init n (fun _ ->
            let d = dec_unonneg s pos in
            prev := !prev + 1 + d;
            if !prev < 0 then dec_fail "Codec.sorted_int_array: index overflow";
            !prev));
  }

let sparse_int_vec =
  {
    enc =
      (fun b a ->
        enc_uvarint b (Array.length a);
        let prev = ref (-1) in
        Array.iter
          (fun (k, v) ->
            if k <= !prev then
              invalid_arg "Codec.sparse_int_vec: indices not increasing";
            enc_uvarint b (k - !prev - 1);
            enc_varbits b (zigzag v);
            prev := k)
          a);
    dec =
      (fun s pos ->
        let n = dec_count s pos "Codec.sparse_int_vec" in
        let prev = ref (-1) in
        Array.init n (fun _ ->
            let d = dec_unonneg s pos in
            let v = unzigzag (dec_uvarint s pos) in
            prev := !prev + 1 + d;
            if !prev < 0 then dec_fail "Codec.sparse_int_vec: index overflow";
            (!prev, v)));
  }

let float_array = array float64
let float32_array = array float32

let bytes =
  {
    enc =
      (fun b s ->
        enc_uvarint b (String.length s);
        Buffer.add_string b s);
    dec =
      (fun s pos ->
        let n = dec_count s pos "Codec.bytes" in
        let r = String.sub s !pos n in
        pos := !pos + n;
        r);
  }

let counter_array =
  let to_sparse a =
    let out = ref [] in
    for i = Array.length a - 1 downto 0 do
      if a.(i) <> 0 then out := (i, a.(i)) :: !out
    done;
    (Array.length a, !out)
  in
  let of_sparse (len, pairs) =
    let a = Array.make len 0 in
    List.iter (fun (i, v) -> a.(i) <- v) pairs;
    a
  in
  {
    enc =
      (fun b a ->
        let len, pairs = to_sparse a in
        enc_uvarint b len;
        enc_uvarint b (List.length pairs);
        let prev = ref (-1) in
        List.iter
          (fun (i, v) ->
            enc_uvarint b (i - !prev - 1);
            enc_uvarint b v;
            prev := i)
          pairs);
    dec =
      (fun s pos ->
        let len = dec_unonneg s pos in
        if len > max_dense_length then
          dec_fail "Codec.counter_array: dense length exceeds cap";
        let n = dec_count s pos "Codec.counter_array" in
        let prev = ref (-1) in
        let pairs =
          List.init n (fun _ ->
              let d = dec_unonneg s pos in
              let v = dec_unonneg s pos in
              prev := !prev + 1 + d;
              if !prev < 0 || !prev >= len then
                dec_fail "Codec.counter_array: index beyond dense length";
              (!prev, v))
        in
        of_sparse (len, pairs));
  }

let map to_wire of_wire c =
  {
    enc = (fun b v -> c.enc b (to_wire v));
    dec = (fun s pos -> of_wire (c.dec s pos));
  }
