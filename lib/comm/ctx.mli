(** Execution context for one protocol run.

    Bundles the channel with three independent randomness streams:

    - [public]: the common random string both parties see (used to agree on
      sketching matrices and hash functions, Lemma 2.1 style). Standard
      public-coin convention — it costs no communication, and by Newman's
      theorem it changes the randomized communication complexity by at most
      an additive O(log n) anyway.
    - [alice], [bob]: each party's private coins (e.g. Alice's sampling of
      rows in Algorithm 1, of 1-entries in Algorithms 2–4).

    All three derive deterministically from one integer seed, so a whole
    protocol run (and hence every experiment) is reproducible. *)

type t = {
  chan : Channel.t;
  public : Matprod_util.Prng.t;
  alice : Matprod_util.Prng.t;
  bob : Matprod_util.Prng.t;
}

val create : seed:int -> t

val install_wire :
  t -> fault:Fault.t -> ?reliable:Reliable.config -> unit -> unit
(** Arm the context's channel with a fault model (see {!Channel.install}).
    Call before the first message; typically the first thing a chaos run
    does inside {!run}'s body. *)

val wire_stats : t -> Channel.stats
(** Reliability/fault accounting for this run ({!Channel.zero_stats} on a
    perfect wire). *)

val send :
  t -> from:Transcript.party -> label:string -> 'a Codec.t -> 'a -> 'a
(** Shorthand for {!Channel.send} on [t.chan]. *)

val a2b : t -> label:string -> 'a Codec.t -> 'a -> 'a
(** Alice speaks. *)

val b2a : t -> label:string -> 'a Codec.t -> 'a -> 'a
(** Bob speaks. *)

val transcript : t -> Transcript.t

(** Outcome of a protocol run with its cost. *)
type 'r run = {
  output : 'r;
  bits : int;
  rounds : int;
  transcript : Transcript.t;
}

val run : seed:int -> (t -> 'r) -> 'r run
