(** Execution context for one protocol run.

    Bundles the channel with three independent randomness streams:

    - [public]: the common random string both parties see (used to agree on
      sketching matrices and hash functions, Lemma 2.1 style). Standard
      public-coin convention — it costs no communication, and by Newman's
      theorem it changes the randomized communication complexity by at most
      an additive O(log n) anyway.
    - [alice], [bob]: each party's private coins (e.g. Alice's sampling of
      rows in Algorithm 1, of 1-entries in Algorithms 2–4).

    All three derive deterministically from one integer seed, so a whole
    protocol run (and hence every experiment) is reproducible. *)

type t = {
  chan : Channel.t;
  seed : int;
  public : Matprod_util.Prng.t;
  alice : Matprod_util.Prng.t;
  bob : Matprod_util.Prng.t;
}

val create : ?transport:Transport.t -> seed:int -> unit -> t
(** [?transport] picks the physical backend under the channel (default
    {!Transport.sim} — the historical in-process wire). The context owns
    the transport; {!close} (and every [run] path) releases it. *)

val create_named :
  ?transport:Transport.t ->
  names:(Transcript.party -> string) ->
  seed:int ->
  unit ->
  t
(** {!create} with the two wire roles renamed for observability (metrics
    scopes, trace attributes) — see {!Channel.create}. A fleet link names
    its parties ["worker<i>"]/["coordinator"]; {!create} keeps
    ["Alice"]/["Bob"]. *)

val install_wire :
  t -> fault:Fault.t -> ?reliable:Reliable.config -> unit -> unit
(** Arm the context's channel with a fault model (see {!Channel.configure}).
    Call before the first message; typically the first thing a chaos run
    does inside {!run}'s body. *)

val wire_stats : t -> Channel.stats
(** Reliability/fault accounting for this run ({!Channel.zero_stats} on a
    perfect wire). *)

val installed_fault : t -> Fault.t option
(** The fault model armed by {!install_wire}, if any (see
    {!Channel.installed_fault}). *)

val send :
  t -> from:Transcript.party -> label:string -> 'a Codec.t -> 'a -> 'a
(** Shorthand for {!Channel.send} on [t.chan]. *)

val a2b : t -> label:string -> 'a Codec.t -> 'a -> 'a
(** Alice speaks. *)

val b2a : t -> label:string -> 'a Codec.t -> 'a -> 'a
(** Bob speaks. *)

val transcript : t -> Transcript.t

(** {1 Crash recovery}

    A context can journal its run (every delivered logical message goes to
    a write-ahead log) and can resume from a journal: the channel replays
    the journaled prefix byte-for-byte — zero fresh bits, each message
    checked against the log — and only then touches the wire. Works
    because {e all} protocol randomness derives from the context seed, so
    a restarted run re-derives the same messages. *)

val record : t -> journal:string -> protocol:string -> unit
(** Start journaling this run to file [journal] (truncated). Must be
    called before the first message (raises [Invalid_argument]
    otherwise). *)

val resume_from : t -> ?path:string -> Journal.t -> unit
(** Arm the channel to replay the journal's entries before any fresh
    communication. Raises [Invalid_argument] if the journal's seed
    differs from the context's, or if messages were already sent. With
    [?path], the journal file is rewritten (dropping any torn tail) and
    fresh messages are appended to it, so a later crash resumes even
    further. *)

val close_journal : t -> unit
(** Flush and close the journal writer, if any. Idempotent; {!run} paths
    that arm a journal close it on exit, exceptions included. *)

val close : t -> unit
(** {!close_journal} plus release of the transport's OS resources
    ({!Channel.close}). Idempotent; every [run] path calls it on exit,
    exceptions included. *)

val transport : t -> Transport.t
(** The physical backend this context's channel delivers over. *)

val replay_stats : t -> Channel.replay_stats

(** Outcome of a protocol run with its cost. [bits]/[rounds] count fresh
    communication only; messages served from a journal during resume are
    reported in [replayed_*]. *)
type 'r run = {
  output : 'r;
  bits : int;
  rounds : int;
  transcript : Transcript.t;
  replayed_messages : int;
  replayed_bits : int;
}

val run : ?transport:Transport.t -> seed:int -> (t -> 'r) -> 'r run

val run_journaled :
  ?transport:Transport.t ->
  seed:int ->
  journal:string ->
  protocol:string ->
  (t -> 'r) ->
  'r run
(** {!run} with {!record} armed first; the writer is closed on exit even
    when the body raises (the journal then holds the completed prefix —
    exactly what {!resume} needs). *)

val resume :
  ?transport:Transport.t ->
  seed:int ->
  ?path:string ->
  journal:Journal.t ->
  (t -> 'r) ->
  'r run
(** {!run} with {!resume_from} armed first: fast-forwards through the
    journal, then continues on the wire. A run resumed from a complete
    journal costs 0 fresh bits. *)
