(** The simulated wire between Alice and Bob.

    [send] serialises the value with the supplied codec, charges the
    transcript for the real encoded length, then {e decodes the bytes back}
    and returns the decoded value. Protocol code must use the returned
    value on the receiving side — information that was not actually encoded
    cannot leak across, and lossy codecs (e.g. {!Codec.float32}) lose
    precision exactly as they would on a network.

    By default the wire is perfect. {!install} arms it with a {!Fault}
    model; while the model is active every message is carried by the
    {!Reliable} stop-and-wait layer (CRC32 framing, acks, retransmission
    with capped exponential backoff), and every frame — retransmissions
    and acks included — is charged to the transcript under the message's
    label (acks under ["<label>/ack"]). A message that exhausts its
    attempts raises {!Reliable.Link_failure}; corrupted frames are
    rejected by checksum, so [send] either returns exactly the value that
    a perfect wire would have delivered or fails loudly — never a mangled
    value. An inert fault model (all rates 0) leaves the channel
    byte-for-byte identical to the default. *)

type t

val create : ?names:(Transcript.party -> string) -> unit -> t
(** [?names] maps the two wire roles to display names used for the
    per-party metrics scope and trace attributes (default
    {!Transcript.party_name}, i.e. ["Alice"]/["Bob"]). A fleet link passes
    e.g. [Alice ↦ "worker3", Bob ↦ "coordinator"] so per-link tables
    aggregate under the right actor. Purely observational: transcripts,
    journals, and codecs never see these names. *)

val transcript : t -> Transcript.t

val install : t -> fault:Fault.t -> ?reliable:Reliable.config -> unit -> unit
(** Arm the wire. May be called before any message is sent; installing a
    new wire resets sequence numbers and reliability stats. *)

val installed_fault : t -> Fault.t option
(** The armed fault model, if any — the topology layer reads it back to
    ask for pending {e byzantine} answer corruptions
    ({!Fault.check_byzantine}), which fire at the answer boundary rather
    than on a frame. *)

(** {1 Crash recovery}

    A channel can write a {!Journal} of every logical message it delivers,
    and can {e replay} a previously journaled prefix: while replay entries
    remain, [send] does not touch the wire (no fault model, no reliability
    frames, no transcript charge) — it checks that the sender, label, and
    freshly encoded bytes match the journaled record (the determinism
    invariant: all randomness derives from the seed) and hands the
    journaled payload to the decoder. See docs/ROBUSTNESS.md. *)

val arm_journal : t -> Journal.writer -> unit
(** Append every subsequently delivered logical message to the writer.
    Replayed messages are not re-appended (they are already in the log). *)

val arm_replay : t -> Journal.entry list -> unit
(** Queue journal entries to satisfy upcoming [send]s. Must be armed
    before the first message; raises [Invalid_argument] otherwise. *)

val close_journal : t -> unit
(** Flush and close the armed writer, if any. Idempotent. *)

(** What replay saved: messages and payload bytes served from the journal
    instead of the wire. *)
type replay_stats = { replayed_messages : int; replayed_bytes : int }

val replay_stats : t -> replay_stats

val replay_pending : t -> int
(** Journal entries queued but not yet consumed (0 once fast-forward is
    complete). *)

(** Cumulative reliability-layer accounting for one channel. *)
type stats = {
  data_frames : int;  (** data transmissions, retransmissions included *)
  acks : int;  (** ack transmissions *)
  retries : int;  (** retransmission attempts (attempts beyond the first) *)
  crc_rejects : int;  (** frames discarded for checksum mismatch *)
  giveups : int;  (** messages that exhausted [max_attempts] *)
  waited : float;  (** simulated seconds spent in retransmission timeouts *)
  faults : Fault.stats;
}

val zero_stats : stats

val stats : t -> stats
(** {!zero_stats} when no wire is installed. *)

val send :
  t -> from:Transcript.party -> label:string -> 'a Codec.t -> 'a -> 'a
(** Raises {!Reliable.Link_failure} when an active fault model defeats
    every transmission attempt, {!Codec.Decode_error} if the payload does
    not decode (on an armed wire that requires a 2⁻³² CRC collision),
    {!Fault.Party_crash} when a crash rule fires, and
    {!Journal.Replay_mismatch} when a replayed run diverges from its
    journal. *)
