(** The logical wire between Alice and Bob.

    [send] serialises the value with the supplied codec, charges the
    transcript for the real encoded length, carries the bytes across the
    configured {!Transport} backend, then {e decodes the bytes back} and
    returns the decoded value. Protocol code must use the returned value
    on the receiving side — information that was not actually encoded
    cannot leak across, and lossy codecs (e.g. {!Codec.float32}) lose
    precision exactly as they would on a network.

    By default the channel is perfect and in-process ({!Transport.sim}).
    Configuring a {!Fault} model arms the {!Reliable} stop-and-wait layer
    (CRC32 framing, acks, retransmission with capped exponential backoff),
    and every frame — retransmissions and acks included — is charged to
    the transcript under the message's label (acks under ["<label>/ack"]).
    A message that exhausts its attempts raises {!Reliable.Link_failure};
    corrupted frames are rejected by checksum, so [send] either returns
    exactly the value that a perfect wire would have delivered or fails
    loudly — never a mangled value. An inert fault model (all rates 0)
    leaves the channel byte-for-byte identical to the default. *)

type t

val create :
  ?names:(Transcript.party -> string) ->
  ?transport:Transport.t ->
  ?fault:Fault.t ->
  ?reliable:Reliable.config ->
  ?journal:Journal.writer ->
  ?replay:Journal.entry list ->
  unit ->
  t
(** One constructor, one configuration:

    - [?names] maps the two wire roles to display names used for the
      per-party metrics scope and trace attributes (default
      {!Transcript.party_name}, i.e. ["Alice"]/["Bob"]). A fleet link
      passes e.g. [Alice ↦ "worker3", Bob ↦ "coordinator"] so per-link
      tables aggregate under the right actor. Purely observational:
      transcripts, journals, and codecs never see these names.
    - [?transport] picks the physical backend (default {!Transport.sim};
      the channel owns it and {!close} releases it).
    - [?fault] arms the wire with a fault model; [?reliable] tunes the
      ARQ layer that activates with it (passing [?reliable] without
      [?fault] raises [Invalid_argument]).
    - [?journal] appends every delivered logical message to the writer.
    - [?replay] queues journaled entries to satisfy upcoming [send]s
      before any fresh communication (see {e Crash recovery} below). *)

val configure :
  t ->
  ?fault:Fault.t ->
  ?reliable:Reliable.config ->
  ?journal:Journal.writer ->
  ?replay:Journal.entry list ->
  unit ->
  unit
(** Late arming with the same keywords as {!create}, for callers that
    learn their fault/journal configuration after the channel exists
    (e.g. {!Ctx.run}'s prepare step). Configuring a new fault model
    resets sequence numbers and reliability stats; [?replay] must be
    armed before the first message (raises [Invalid_argument]
    otherwise). *)

val transcript : t -> Transcript.t

val transport : t -> Transport.t
(** The physical backend this channel delivers over. *)

val close : t -> unit
(** Flush and close the journal writer (if any) and release the
    transport's OS resources. Idempotent. *)

val install : t -> fault:Fault.t -> ?reliable:Reliable.config -> unit -> unit
[@@deprecated "use Channel.create ?fault ?reliable or Channel.configure"]
(** @deprecated Arm the wire. Alias for [configure ~fault ?reliable]. *)

val installed_fault : t -> Fault.t option
(** The armed fault model, if any — the topology layer reads it back to
    ask for pending {e byzantine} answer corruptions
    ({!Fault.check_byzantine}), which fire at the answer boundary rather
    than on a frame. *)

(** {1 Crash recovery}

    A channel can write a {!Journal} of every logical message it delivers,
    and can {e replay} a previously journaled prefix: while replay entries
    remain, [send] does not touch the wire (no fault model, no reliability
    frames, no transport delivery, no transcript charge) — it checks that
    the sender, label, and freshly encoded bytes match the journaled
    record (the determinism invariant: all randomness derives from the
    seed) and hands the journaled payload to the decoder. See
    docs/ROBUSTNESS.md. *)

val arm_journal : t -> Journal.writer -> unit
[@@deprecated "use Channel.create ?journal or Channel.configure"]
(** @deprecated Alias for [configure ~journal]. *)

val arm_replay : t -> Journal.entry list -> unit
[@@deprecated "use Channel.create ?replay or Channel.configure"]
(** @deprecated Alias for [configure ~replay]. *)

val close_journal : t -> unit
(** Flush and close the armed writer, if any (the transport stays open).
    Idempotent. *)

(** What replay saved: messages and payload bytes served from the journal
    instead of the wire. *)
type replay_stats = { replayed_messages : int; replayed_bytes : int }

val replay_stats : t -> replay_stats

val replay_pending : t -> int
(** Journal entries queued but not yet consumed (0 once fast-forward is
    complete). *)

(** Cumulative reliability-layer accounting for one channel. *)
type stats = {
  data_frames : int;  (** data transmissions, retransmissions included *)
  acks : int;  (** ack transmissions *)
  retries : int;  (** retransmission attempts (attempts beyond the first) *)
  crc_rejects : int;  (** frames discarded for checksum mismatch *)
  giveups : int;  (** messages that exhausted [max_attempts] *)
  waited : float;  (** simulated seconds spent in retransmission timeouts *)
  faults : Fault.stats;
}

val zero_stats : stats

val stats : t -> stats
(** {!zero_stats} when no wire is installed. *)

val send :
  t -> from:Transcript.party -> label:string -> 'a Codec.t -> 'a -> 'a
(** Raises {!Reliable.Link_failure} when an active fault model defeats
    every transmission attempt, {!Codec.Decode_error} if the payload does
    not decode (on an armed wire that requires a 2⁻³² CRC collision),
    {!Fault.Party_crash} when a crash rule fires,
    {!Journal.Replay_mismatch} when a replayed run diverges from its
    journal, and {!Transport.Frame_error} when a [Tcp] backend observes a
    torn or corrupt frame. *)
