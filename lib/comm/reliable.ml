(* Framing and retransmission policy for the unreliable wire. The framing
   is deliberately minimal: enough redundancy (CRC32) to reject corrupted
   or truncated frames with overwhelming probability, plus a sequence
   number so duplicates and stale retransmissions are recognised. The
   retry loop itself lives in Channel.send, which owns the transcript. *)

exception Link_failure of { label : string; attempts : int }

type config = {
  max_attempts : int;
  base_timeout : float;
  max_timeout : float;
}

let default_config =
  { max_attempts = 16; base_timeout = 0.05; max_timeout = 1.6 }

let config ?(max_attempts = default_config.max_attempts)
    ?(base_timeout = default_config.base_timeout)
    ?(max_timeout = default_config.max_timeout) () =
  if max_attempts < 1 then invalid_arg "Reliable.config: max_attempts >= 1";
  if not (base_timeout > 0.0 && max_timeout >= base_timeout) then
    invalid_arg "Reliable.config: need 0 < base_timeout <= max_timeout";
  { max_attempts; base_timeout; max_timeout }

let next_timeout cfg t = Float.min cfg.max_timeout (2.0 *. t)

(* --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- frames ----------------------------------------------------------- *)

type kind = Data | Ack

(* frame := kind byte ++ uvarint seq ++ uvarint |payload| ++ payload
            ++ 4-byte little-endian CRC32 of everything before it. *)

let enc_uvarint b n =
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let frame ~kind ~seq payload =
  let b = Buffer.create (String.length payload + 12) in
  Buffer.add_char b (match kind with Data -> '\000' | Ack -> '\001');
  enc_uvarint b seq;
  enc_uvarint b (String.length payload);
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  let crc = crc32 body in
  let b = Buffer.create (String.length body + 4) in
  Buffer.add_string b body;
  for k = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * k)) land 0xff))
  done;
  Buffer.contents b

let data_frame ~seq payload = frame ~kind:Data ~seq payload
let ack_frame ~seq = frame ~kind:Ack ~seq ""

(* Parsing never raises: a mangled frame is just [Error]. *)
let parse s =
  let len = String.length s in
  if len < 5 then Error "frame too short"
  else begin
    let body = String.sub s 0 (len - 4) in
    let stored = ref 0 in
    for k = 3 downto 0 do
      stored := (!stored lsl 8) lor Char.code s.[len - 4 + k]
    done;
    if crc32 body <> !stored then Error "crc mismatch"
    else begin
      let pos = ref 1 in
      let read_uvarint () =
        let rec go shift acc =
          if !pos >= String.length body then None
          else begin
            let byte = Char.code body.[!pos] in
            incr pos;
            let acc = acc lor ((byte land 0x7f) lsl shift) in
            if byte land 0x80 = 0 then if acc < 0 then None else Some acc
            else if shift >= 63 then None
            else go (shift + 7) acc
          end
        in
        go 0 0
      in
      let kind =
        match body.[0] with
        | '\000' -> Some Data
        | '\001' -> Some Ack
        | _ -> None
      in
      match (kind, read_uvarint (), read_uvarint ()) with
      | Some kind, Some seq, Some plen
        when plen = String.length body - !pos ->
          Ok (kind, seq, String.sub body !pos plen)
      | _ -> Error "malformed frame"
    end
  end

let overhead ~seq ~payload_bytes =
  String.length (data_frame ~seq (String.make payload_bytes '\000'))
  - payload_bytes
