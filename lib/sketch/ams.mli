(** AMS ℓ2 sketch (Alon–Matias–Szegedy [4]).

    [rows_per_group × groups] counters; row r of the implicit sketching
    matrix holds 4-wise independent ±1 signs. The ℓ2² estimate is the
    median over groups of the mean over each group's rows of (Sx)_r² —
    a (1±ε) approximation when [rows_per_group = Θ(1/ε²)] with failure
    probability exp(−Θ(groups)).

    The sketch is a linear map: [sketch] of a sum is the coordinate-wise
    sum of sketches, which is what lets Algorithm 1 sketch every row of
    A·B from the sketches of the rows of B. *)

type t

val create : Matprod_util.Prng.t -> eps:float -> groups:int -> t
(** Sizes the sketch for (1+[eps]) estimates; the sketching matrix is drawn
    from the supplied (public) generator. *)

val create_rows : Matprod_util.Prng.t -> rows_per_group:int -> groups:int -> t
(** Explicit dimensions, for baselines and tests. *)

val size : t -> int
(** Total number of float counters = rows_per_group × groups. *)

val sketch : t -> (int * int) array -> float array
(** Sketch of a sparse integer vector given as (index, value) pairs.
    Indices must be non-negative. *)

val empty : t -> float array

(** {1 Plan/apply} — tabulated sign matrix; bit-identical to {!sketch}
    (docs/PERFORMANCE.md). *)

type plan

val plan : t -> dim:int -> plan
(** O(size·dim) sign evaluations, once per hash family. *)

val plan_dim : plan -> int

val sketch_with_plan : t -> plan -> (int * int) array -> float array
(** Same result as {!sketch}; keys must lie in [0, plan_dim). *)

val sketch_into : t -> plan -> dst:float array -> (int * int) array -> unit
(** Zeroes [dst] (length {!size}) then sketches into it — no per-row
    allocation. *)

val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit
(** dst ← dst + coeff·src: the linear composition primitive. *)

val estimate_sq : t -> float array -> float
(** Estimate of ‖x‖₂². Never negative. *)

val entry : t -> row:int -> int -> float
(** The (row, index) entry of the implicit sketching matrix (±1); exposed
    for property tests. *)
