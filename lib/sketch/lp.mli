(** Unified ℓp sketch for p ∈ [0, 2] — the paper's Lemma 2.1 interface.

    Dispatches to {!L0_sketch} (p = 0), {!Stable_sketch} (0 < p < 2) and
    {!Ams} (p = 2) behind one value type, so protocol code is written once
    for the whole range. Values are linear: [add_scaled] with integer
    coefficients implements sk(Σ aₖ·xₖ) = Σ aₖ·sk(xₖ), the composition
    through the matrix product. *)

type t

type value = F of float array | Z of int array
    (** Float counters (p > 0) or field counters (p = 0). *)

val create :
  Matprod_util.Prng.t -> p:float -> eps:float -> groups:int -> dim:int -> t
(** Requires p ∈ [0,2], eps ∈ (0,1], groups ≥ 1. [dim] is the length of the
    vectors to be sketched (only the ℓ0 branch uses it). *)

val p : t -> float
val size : t -> int
(** Number of scalar counters — the per-vector message cost driver. *)

val empty : t -> value
val sketch : t -> (int * int) array -> value
val add_scaled : t -> dst:value -> coeff:int -> value -> unit

val estimate_pow : t -> value -> float
(** Estimate of ‖x‖_p^p (with ‖x‖₀⁰ = ‖x‖₀ as in the paper, 0⁰ = 0). *)

val estimate : t -> value -> float
(** Estimate of ‖x‖_p (for p = 0 this equals [estimate_pow]). *)

(** {1 Plan/apply} — dispatches to the underlying sketch's plan; results
    are bit-identical to {!sketch} (docs/PERFORMANCE.md). *)

type plan

val plan : t -> dim:int -> plan
(** Precomputed hash/entry tables for keys in [0, dim). Build once per
    hash family, reuse across every row sharing it. *)

val sketch_with_plan : t -> plan -> (int * int) array -> value

val sketch_into : t -> plan -> dst:value -> (int * int) array -> unit
(** Zeroes the caller's scratch value (shape {!empty}) then sketches into
    it — zero allocation per row. *)

val wire : t -> value Matprod_comm.Codec.t
(** Codec for shipping sketch values: float32 per float counter, varint per
    field counter. *)
