(** Shared 4-key batched accumulation loop of the planned dense-table
    sketch families (docs/PERFORMANCE.md).

    [apply ~name cols ~size ~dim dst vec] adds v · cols[i·size + r] to
    [dst.(r)] for every entry (i, v) of [vec] and every r < size, in
    entry order — bit-identical to the per-key loop it replaces.
    Entries with value 0 are skipped (their keys are not range-checked);
    a nonzero entry with key outside [0, dim) raises
    [Invalid_argument (name ^ ": key outside plan")]. *)

val apply :
  name:string ->
  float array ->
  size:int ->
  dim:int ->
  float array ->
  (int * int) array ->
  unit
