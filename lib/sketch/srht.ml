module Prng = Matprod_util.Prng
module Fwht = Matprod_util.Fwht
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_plan = Metrics.counter "plan_hash_evals"
let h_build = Metrics.histogram ~label:"srht" "sketch_build_ns"
let h_build_planned = Metrics.histogram ~label:"srht_planned" "sketch_build_ns"

(* S·H·D: sign flips D (tabulated ±1 per key), the unnormalised
   Walsh–Hadamard transform H, and uniform row subsampling S. The key
   identity is Parseval for the unnormalised H over the padded domain:
   Σ_s (HDx)_s² = d_pad·‖x‖², so a uniformly sampled coordinate z_r =
   (HDx)_{s_r} satisfies E[z_r²] = ‖x‖² with no scaling constant, and
   median-of-means over the rows estimates ‖x‖² exactly as {!Ams} does.

   All integer inputs keep every intermediate an exact integer (sums of
   ±v terms, magnitudes far below 2^53 for this library's workloads), so
   the two apply routes — per-nonzero sign columns, O(nnz·m), and
   densify + FWHT + gather, O(d log d + m) — produce bit-identical
   floats no matter the summation order. That exactness is what lets
   [apply_plan] pick a route by row density without perturbing journal
   byte-identity. *)

type t = {
  rows_per_group : int;
  groups : int;
  dim : int; (* key domain: vectors index [0, dim) *)
  dpad : int; (* next_pow2 dim: the Hadamard order *)
  seed : int;
  samples : int array; (* sketch row r -> Hadamard row s_r in [0, dpad) *)
}

let create_rows rng ~rows_per_group ~groups ~dim =
  if rows_per_group <= 0 || groups <= 0 then
    invalid_arg "Srht.create_rows: dimensions must be positive";
  if dim <= 0 then invalid_arg "Srht.create_rows: dim must be positive";
  let dpad = Fwht.next_pow2 dim in
  let seed = Prng.fresh_seed rng in
  let total = rows_per_group * groups in
  let samples =
    Array.init total (fun r -> Prng.int (Prng.derive seed 1 r) dpad)
  in
  { rows_per_group; groups; dim; dpad; seed; samples }

let create rng ~eps ~groups ~dim =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Srht.create: eps range";
  let rows_per_group = max 4 (int_of_float (Float.ceil (6.0 /. (eps *. eps)))) in
  create_rows rng ~rows_per_group ~groups ~dim

let size t = t.rows_per_group * t.groups
let dim t = t.dim
let padded_dim t = t.dpad
let empty t = Array.make (size t) 0.0

(* D's diagonal: ±1 per key, derived purely from (seed, 0, key). *)
let sign t i = if Prng.bool (Prng.derive t.seed 0 i) then 1.0 else -1.0

(* H[s,i] = (-1)^popcount(s AND i). *)
let parity_neg x =
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1 = 1

let hadamard s i = if parity_neg (s land i) then -1.0 else 1.0

(* Entry (r, i) of the implicit S·H·D matrix. *)
let entry t ~row i = hadamard t.samples.(row) i *. sign t i

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let m = size t in
      let y = empty t in
      Array.iter
        (fun (i, v) ->
          if v <> 0 then begin
            if i < 0 || i >= t.dim then invalid_arg "Srht: key outside domain";
            let fv = float_of_int v *. sign t i in
            for r = 0 to m - 1 do
              y.(r) <- y.(r) +. (fv *. hadamard t.samples.(r) i)
            done
          end)
        vec;
      y)

type plan = {
  pdim : int;
  psize : int;
  pdpad : int;
  sgn : float array; (* key·size + r: D_i·H[s_r, i] — the sparse route *)
  dsign : float array; (* key -> D_i — the dense densify step *)
  samples : int array;
  dense_nnz : int; (* rows with >= this many entries take the FWHT route *)
  (* The FWHT scratch is mutable, so it lives in domain-local storage:
     each pool domain lazily allocates its own buffer and the plan stays
     safely shareable across the fan-out, like every other plan. *)
  scratch : Fwht.scratch Domain.DLS.key;
}

let log2i n =
  let k = ref 0 and v = ref 1 in
  while !v < n do
    incr k;
    v := !v * 2
  done;
  !k

let plan ?dense_nnz t ~dim =
  if dim <> t.dim then invalid_arg "Srht.plan: dim differs from the family's";
  let m = size t in
  Metrics.incr_by c_plan ((m + 1) * dim);
  let sgn = Array.make (dim * m) 0.0 in
  let dsign = Array.make dim 0.0 in
  for i = 0 to dim - 1 do
    let d = sign t i in
    dsign.(i) <- d;
    let base = i * m in
    for r = 0 to m - 1 do
      sgn.(base + r) <- d *. hadamard t.samples.(r) i
    done
  done;
  let dense_nnz =
    match dense_nnz with
    | Some n -> max 0 n
    | None ->
        (* Crossover: sparse costs ~nnz·m madds, dense ~d_pad·(log d_pad
           + 2) butterfly-class ops (densify + transform + gather). The
           measured constants on the P1 workload put the two within ~2x
           of each other at equal op counts (docs/PERFORMANCE.md), so
           equal-cost is the default switch point. *)
        max 1 (t.dpad * (log2i t.dpad + 2) / m)
  in
  let dpad = t.dpad in
  {
    pdim = dim;
    psize = m;
    pdpad = dpad;
    sgn;
    dsign;
    samples = t.samples;
    dense_nnz;
    scratch = Domain.DLS.new_key (fun () -> Fwht.scratch dpad);
  }

let plan_dim p = p.pdim
let plan_dense_nnz p = p.dense_nnz

let apply_dense p dst vec =
  let scr = Domain.DLS.get p.scratch in
  Bigarray.Array1.fill scr 0.0;
  Array.iter
    (fun (i, v) ->
      if v <> 0 then begin
        if i < 0 || i >= p.pdim then invalid_arg "Srht: key outside plan";
        Bigarray.Array1.unsafe_set scr i
          (Bigarray.Array1.unsafe_get scr i
          +. (float_of_int v *. Array.unsafe_get p.dsign i))
      end)
    vec;
  Fwht.transform scr ~n:p.pdpad;
  for r = 0 to p.psize - 1 do
    Array.unsafe_set dst r
      (Array.unsafe_get dst r
      +. Bigarray.Array1.unsafe_get scr (Array.unsafe_get p.samples r))
  done

let apply_plan t p dst vec =
  let m = size t in
  if p.psize <> m || p.pdim <> t.dim then
    invalid_arg "Srht: plan belongs to another sketch shape";
  if Array.length vec >= p.dense_nnz then apply_dense p dst vec
  else Kernel.apply ~name:"Srht" p.sgn ~size:m ~dim:p.pdim dst vec

let sketch_into t p ~dst vec =
  if Array.length dst <> size t then invalid_arg "Srht.sketch_into: size";
  Metrics.timed h_build_planned (fun () ->
      Array.fill dst 0 (Array.length dst) 0.0;
      apply_plan t p dst vec)

let sketch_with_plan t p vec =
  Metrics.timed h_build_planned (fun () ->
      let y = empty t in
      apply_plan t p y vec;
      y)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Srht.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for r = 0 to size t - 1 do
      dst.(r) <- dst.(r) +. (c *. src.(r))
    done

let estimate_sq t y =
  if Array.length y <> size t then invalid_arg "Srht.estimate_sq: size";
  let sq = Array.map (fun v -> v *. v) y in
  Float.max 0.0 (Stats.median_of_means sq ~groups:t.groups)

let estimate t y = sqrt (estimate_sq t y)
