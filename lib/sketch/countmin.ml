module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let h_build = Metrics.histogram ~label:"countmin" "sketch_build_ns"

type t = { buckets : int; reps : int; bucket_hash : Hashing.t array }

let create rng ~buckets ~reps =
  if buckets <= 0 || reps <= 0 then invalid_arg "Countmin.create";
  {
    buckets;
    reps;
    bucket_hash = Array.init reps (fun _ -> Hashing.create rng ~k:2);
  }

let size t = t.buckets * t.reps
let empty t = Array.make (size t) 0.0

let update_quiet t arr i v =
  if v <> 0 then
    for r = 0 to t.reps - 1 do
      let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
      let idx = (r * t.buckets) + b in
      arr.(idx) <- arr.(idx) +. float_of_int v
    done

(* Metrics hoisted: one enabled() check and one batched increment per
   update (and per sketch), never one per rep — final totals unchanged. *)
let update t arr i v =
  if v <> 0 then begin
    if Metrics.enabled () then begin
      Metrics.incr_by c_hash t.reps;
      Metrics.incr_by c_cells t.reps
    end;
    update_quiet t arr i v
  end

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let arr = empty t in
      if Metrics.enabled () then begin
        let nnz =
          Array.fold_left (fun acc (_, v) -> if v <> 0 then acc + 1 else acc) 0 vec
        in
        Metrics.incr_by c_hash (t.reps * nnz);
        Metrics.incr_by c_cells (t.reps * nnz)
      end;
      Array.iter (fun (i, v) -> update_quiet t arr i v) vec;
      arr)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Countmin.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for i = 0 to size t - 1 do
      dst.(i) <- dst.(i) +. (c *. src.(i))
    done

let query t arr i =
  let best = ref Float.infinity in
  for r = 0 to t.reps - 1 do
    let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
    let v = arr.((r * t.buckets) + b) in
    if v < !best then best := v
  done;
  !best
