module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Field31 = Matprod_util.Field31
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let h_build = Metrics.histogram ~label:"l0_sketch" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"l0_sketch" "sketch_query_ns"

type rep = {
  level_hash : Hashing.t;
  bucket_hashes : Hashing.t array; (* one per level *)
  coeff_hash : Hashing.t;
}

type t = { dim : int; levels : int; buckets : int; reps : rep array }

let levels_for dim =
  let rec go l acc = if acc >= dim then l else go (l + 1) (acc * 2) in
  max 1 (go 1 2)

let create_explicit rng ~buckets ~groups ~dim =
  if buckets <= 1 || groups <= 0 || dim <= 0 then
    invalid_arg "L0_sketch.create_explicit: parameters";
  let levels = levels_for dim in
  let rep _ =
    {
      level_hash = Hashing.create rng ~k:2;
      bucket_hashes = Array.init levels (fun _ -> Hashing.create rng ~k:2);
      coeff_hash = Hashing.create rng ~k:2;
    }
  in
  { dim; levels; buckets; reps = Array.init groups rep }

let create rng ~eps ~groups ~dim =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "L0_sketch.create: eps";
  let buckets = max 32 (int_of_float (Float.ceil (12.0 /. (eps *. eps)))) in
  create_explicit rng ~buckets ~groups ~dim

let size t = Array.length t.reps * t.levels * t.buckets
let dim t = t.dim
let empty t = Array.make (size t) 0

(* Level of coordinate j: P(level >= l) = 2^-l, capped at levels-1. *)
let coord_level rep ~levels j =
  let u = Hashing.float01 rep.level_hash j in
  let u = if u <= 0.0 then 1e-12 else u in
  min (levels - 1) (int_of_float (Float.floor (-.Stats.log2 u)))

let cell_index t ~rep_idx ~level ~bucket =
  (((rep_idx * t.levels) + level) * t.buckets) + bucket

let add_coord t arr ~rep_idx ~coord ~weight =
  let rep = t.reps.(rep_idx) in
  let lmax = coord_level rep ~levels:t.levels coord in
  let c = Field31.mul (Hashing.field_coeff rep.coeff_hash coord) weight in
  if Metrics.enabled () then begin
    (* level hash + coefficient hash + one bucket hash per touched level *)
    Metrics.incr_by c_hash (lmax + 3);
    Metrics.incr_by c_cells (lmax + 1)
  end;
  for l = 0 to lmax do
    let b = Hashing.bucket rep.bucket_hashes.(l) ~buckets:t.buckets coord in
    let idx = cell_index t ~rep_idx ~level:l ~bucket:b in
    arr.(idx) <- Field31.add arr.(idx) c
  done

let update t arr i v =
  if i < 0 || i >= t.dim then invalid_arg "L0_sketch.update: index range";
  let w = Field31.of_int v in
  if w <> 0 then
    for g = 0 to Array.length t.reps - 1 do
      add_coord t arr ~rep_idx:g ~coord:i ~weight:w
    done

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let arr = empty t in
      Array.iter (fun (i, v) -> update t arr i v) vec;
      arr)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "L0_sketch.add_scaled: size mismatch";
  let c = Field31.of_int coeff in
  if c <> 0 then
    for i = 0 to size t - 1 do
      dst.(i) <- Field31.add dst.(i) (Field31.mul c src.(i))
    done

(* Linear-counting estimate at one level: m ≈ ln(empty/K) / ln(1 - 1/K). *)
let level_estimate ~buckets occupied =
  if occupied = 0 then 0.0
  else if occupied >= buckets then Float.infinity
  else
    let k = float_of_int buckets in
    log (1.0 -. (float_of_int occupied /. k)) /. log (1.0 -. (1.0 /. k))

let rep_estimate t arr ~rep_idx =
  let occ level =
    let base = cell_index t ~rep_idx ~level ~bucket:0 in
    let c = ref 0 in
    for b = 0 to t.buckets - 1 do
      if arr.(base + b) <> 0 then incr c
    done;
    !c
  in
  let occs = Array.init t.levels occ in
  (* Prefer the shallowest level whose load is comfortably sub-saturated:
     deeper levels multiply the subsampling variance by 2^level. *)
  let target = int_of_float (0.7 *. float_of_int t.buckets) in
  let rec pick l =
    if l >= t.levels then t.levels - 1
    else if occs.(l) <= target then l
    else pick (l + 1)
  in
  let l = pick 0 in
  let est = level_estimate ~buckets:t.buckets occs.(l) in
  if Float.is_finite est then est *. Float.of_int (1 lsl l)
  else
    (* Every level saturated: report the coarsest level's capacity bound. *)
    float_of_int t.buckets *. Float.of_int (1 lsl (t.levels - 1))

let estimate t arr =
  if Array.length arr <> size t then invalid_arg "L0_sketch.estimate: size";
  Metrics.timed h_query (fun () ->
      let per_rep =
        Array.init (Array.length t.reps) (fun g -> rep_estimate t arr ~rep_idx:g)
      in
      Stats.median per_rep)
