module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Field31 = Matprod_util.Field31
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let c_plan = Metrics.counter "plan_hash_evals"
let h_build = Metrics.histogram ~label:"l0_sketch" "sketch_build_ns"
let h_build_planned = Metrics.histogram ~label:"l0_sketch_planned" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"l0_sketch" "sketch_query_ns"

type rep = {
  level_hash : Hashing.t;
  bucket_hashes : Hashing.t array; (* one per level *)
  coeff_hash : Hashing.t;
}

type t = { dim : int; levels : int; buckets : int; reps : rep array }

let levels_for dim =
  let rec go l acc = if acc >= dim then l else go (l + 1) (acc * 2) in
  max 1 (go 1 2)

let create_explicit rng ~buckets ~groups ~dim =
  if buckets <= 1 || groups <= 0 || dim <= 0 then
    invalid_arg "L0_sketch.create_explicit: parameters";
  let levels = levels_for dim in
  let rep _ =
    {
      level_hash = Hashing.create rng ~k:2;
      bucket_hashes = Array.init levels (fun _ -> Hashing.create rng ~k:2);
      coeff_hash = Hashing.create rng ~k:2;
    }
  in
  { dim; levels; buckets; reps = Array.init groups rep }

let create rng ~eps ~groups ~dim =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "L0_sketch.create: eps";
  let buckets = max 32 (int_of_float (Float.ceil (12.0 /. (eps *. eps)))) in
  create_explicit rng ~buckets ~groups ~dim

let size t = Array.length t.reps * t.levels * t.buckets
let dim t = t.dim
let empty t = Array.make (size t) 0

(* Level of coordinate j: P(level >= l) = 2^-l, capped at levels-1. *)
let coord_level rep ~levels j =
  let u = Hashing.float01 rep.level_hash j in
  let u = if u <= 0.0 then 1e-12 else u in
  min (levels - 1) (int_of_float (Float.floor (-.Stats.log2 u)))

let cell_index t ~rep_idx ~level ~bucket =
  (((rep_idx * t.levels) + level) * t.buckets) + bucket

let add_coord t arr ~rep_idx ~coord ~weight =
  let rep = t.reps.(rep_idx) in
  let lmax = coord_level rep ~levels:t.levels coord in
  let c = Field31.mul (Hashing.field_coeff rep.coeff_hash coord) weight in
  if Metrics.enabled () then begin
    (* level hash + coefficient hash + one bucket hash per touched level *)
    Metrics.incr_by c_hash (lmax + 3);
    Metrics.incr_by c_cells (lmax + 1)
  end;
  for l = 0 to lmax do
    let b = Hashing.bucket rep.bucket_hashes.(l) ~buckets:t.buckets coord in
    let idx = cell_index t ~rep_idx ~level:l ~bucket:b in
    arr.(idx) <- Field31.add arr.(idx) c
  done

let update t arr i v =
  if i < 0 || i >= t.dim then invalid_arg "L0_sketch.update: index range";
  let w = Field31.of_int v in
  if w <> 0 then
    for g = 0 to Array.length t.reps - 1 do
      add_coord t arr ~rep_idx:g ~coord:i ~weight:w
    done

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let arr = empty t in
      Array.iter (fun (i, v) -> update t arr i v) vec;
      arr)

(* --- plan/apply -------------------------------------------------------

   Per (rep, key): the deepest level, the fingerprint coefficient, and the
   bucket at every level — all integers produced by the functions they
   replace, so the Field31 accumulation below is identical to the
   unplanned path operation for operation.

   Layout: the subsampling geometry means a key touches levels 0..lmax
   with E[lmax] ≈ 1, so a dense (key, group, level) bucket table would be
   ~levels/2 times larger than what apply ever reads — too big for L2,
   and the misses dominate apply time. Instead:

     hdr.((i*groups) + g) = coeff  lor  (lmax lsl 31)  lor  (off lsl 37)
     buckets.(off + l)    = bucket of key i, group g, level l   (l <= lmax)

   One header word per (key, group) — the groups of one key share a cache
   line — and a variable-length bucket run holding only the levels the
   key actually occupies. *)

type plan = {
  pdim : int;
  pgroups : int;
  plevels : int;
  hdr : int array;
  buckets : int array;
}

let plan t ~dim:d =
  if d <= 0 then invalid_arg "L0_sketch.plan: dim";
  if d > t.dim then invalid_arg "L0_sketch.plan: dim exceeds sketch domain";
  let groups = Array.length t.reps in
  if t.levels > 63 then invalid_arg "L0_sketch.plan: too many levels to pack";
  Metrics.incr_by c_plan (groups * d * (t.levels + 2));
  let coeffs =
    Array.map (fun r -> Hashing.tabulate_field_coeffs r.coeff_hash ~dim:d) t.reps
  in
  let bucket_tabs =
    Array.map
      (fun r ->
        Array.map (fun h -> Hashing.tabulate_buckets h ~buckets:t.buckets ~dim:d)
          r.bucket_hashes)
      t.reps
  in
  let lmaxs = Array.make (groups * d) 0 in
  let total = ref 0 in
  for g = 0 to groups - 1 do
    let rep = t.reps.(g) in
    for i = 0 to d - 1 do
      let lm = coord_level rep ~levels:t.levels i in
      lmaxs.((i * groups) + g) <- lm;
      total := !total + lm + 1
    done
  done;
  if !total > 1 lsl 26 then invalid_arg "L0_sketch.plan: dim too large to pack";
  let hdr = Array.make (groups * d) 0 in
  let buckets = Array.make !total 0 in
  (* Offsets assigned in (key-major, group-minor) order — the order apply
     reads them — so the bucket runs of one nonzero are contiguous. *)
  let off = ref 0 in
  for i = 0 to d - 1 do
    for g = 0 to groups - 1 do
      let ig = (i * groups) + g in
      let lm = lmaxs.(ig) in
      hdr.(ig) <- coeffs.(g).(i) lor (lm lsl 31) lor (!off lsl 37);
      for l = 0 to lm do
        buckets.(!off + l) <- bucket_tabs.(g).(l).(i)
      done;
      off := !off + lm + 1
    done
  done;
  { pdim = d; pgroups = groups; plevels = t.levels; hdr; buckets }

let plan_dim p = p.pdim

let apply_plan t p dst vec =
  if p.plevels <> t.levels || p.pgroups <> Array.length t.reps then
    invalid_arg "L0_sketch: plan belongs to another sketch shape";
  let groups = p.pgroups in
  let lb = t.levels * t.buckets in
  (* One enabled() check per row; logical hash/cell counts accumulate in
     locals and post once, so the totals match the per-entry unplanned
     path without a metrics call in the inner loop. *)
  let mets = Metrics.enabled () in
  let th = ref 0 and tc = ref 0 in
  Array.iter
    (fun (i, v) ->
      let w = Field31.of_int v in
      if w <> 0 then begin
        if i < 0 || i >= p.pdim then invalid_arg "L0_sketch: key outside plan";
        let base = i * groups in
        let cbase = ref 0 in
        for g = 0 to groups - 1 do
          let h = Array.unsafe_get p.hdr (base + g) in
          let lmax = (h lsr 31) land 0x3F in
          let off = h lsr 37 in
          if mets then begin
            th := !th + lmax + 3;
            tc := !tc + lmax + 1
          end;
          let c = Field31.mul (h land 0x7FFFFFFF) w in
          let cb = !cbase in
          for l = 0 to lmax do
            let idx =
              cb + (l * t.buckets) + Array.unsafe_get p.buckets (off + l)
            in
            Array.unsafe_set dst idx (Field31.add (Array.unsafe_get dst idx) c)
          done;
          cbase := cb + lb
        done
      end)
    vec;
  if mets then begin
    Metrics.incr_by c_hash !th;
    Metrics.incr_by c_cells !tc
  end

let sketch_into t p ~dst vec =
  if Array.length dst <> size t then invalid_arg "L0_sketch.sketch_into: size";
  Metrics.timed h_build_planned (fun () ->
      Array.fill dst 0 (Array.length dst) 0;
      apply_plan t p dst vec)

let sketch_with_plan t p vec =
  Metrics.timed h_build_planned (fun () ->
      let arr = empty t in
      apply_plan t p arr vec;
      arr)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "L0_sketch.add_scaled: size mismatch";
  let c = Field31.of_int coeff in
  if c <> 0 then
    for i = 0 to size t - 1 do
      dst.(i) <- Field31.add dst.(i) (Field31.mul c src.(i))
    done

(* Linear-counting estimate at one level: m ≈ ln(empty/K) / ln(1 - 1/K). *)
let level_estimate ~buckets occupied =
  if occupied = 0 then 0.0
  else if occupied >= buckets then Float.infinity
  else
    let k = float_of_int buckets in
    log (1.0 -. (float_of_int occupied /. k)) /. log (1.0 -. (1.0 /. k))

let rep_estimate t arr ~rep_idx =
  let occ level =
    let base = cell_index t ~rep_idx ~level ~bucket:0 in
    let c = ref 0 in
    for b = 0 to t.buckets - 1 do
      if arr.(base + b) <> 0 then incr c
    done;
    !c
  in
  let occs = Array.init t.levels occ in
  (* Prefer the shallowest level whose load is comfortably sub-saturated:
     deeper levels multiply the subsampling variance by 2^level. *)
  let target = int_of_float (0.7 *. float_of_int t.buckets) in
  let rec pick l =
    if l >= t.levels then t.levels - 1
    else if occs.(l) <= target then l
    else pick (l + 1)
  in
  let l = pick 0 in
  let est = level_estimate ~buckets:t.buckets occs.(l) in
  if Float.is_finite est then est *. Float.of_int (1 lsl l)
  else
    (* Every level saturated: report the coarsest level's capacity bound. *)
    float_of_int t.buckets *. Float.of_int (1 lsl (t.levels - 1))

let estimate t arr =
  if Array.length arr <> size t then invalid_arg "L0_sketch.estimate: size";
  Metrics.timed h_query (fun () ->
      let per_rep =
        Array.init (Array.length t.reps) (fun g -> rep_estimate t arr ~rep_idx:g)
      in
      Stats.median per_rep)
