(* Shared inner loop of the planned dense-table sketch families
   (Ams, Stable_sketch, Srht's sparse route): accumulate
   dst += Σ_k v_k · cols[i_k·size ..] over the nonzeros of a sparse row.

   The hot loop processes four keys per pass so each scratch cell is
   loaded and stored once per quad instead of once per key — on the
   table-bound families this is worth ~2.5x (docs/PERFORMANCE.md, P1).
   Bit-identity with the one-key-at-a-time loop is structural: for every
   scratch index r the contributions are added in key order,
   (((dst_r + f1·c1r) + f2·c2r) + f3·c3r) + f4·c4r, exactly the sequence
   the per-key loop produces. Quads containing a zero value fall back to
   the per-key path, which skips zeros outright — so a zero never turns
   a -0.0 accumulator into +0.0, and out-of-range keys carrying value 0
   stay ignored, both as the historical per-key semantics had it. *)

let apply ~name cols ~size ~dim dst vec =
  let oob () = invalid_arg (name ^ ": key outside plan") in
  let one i v =
    if v <> 0 then begin
      if i < 0 || i >= dim then oob ();
      let fv = float_of_int v in
      let base = i * size in
      for r = 0 to size - 1 do
        Array.unsafe_set dst r
          (Array.unsafe_get dst r
          +. (fv *. Array.unsafe_get cols (base + r)))
      done
    end
  in
  let n = Array.length vec in
  let k = ref 0 in
  while !k + 4 <= n do
    let i1, v1 = Array.unsafe_get vec !k
    and i2, v2 = Array.unsafe_get vec (!k + 1)
    and i3, v3 = Array.unsafe_get vec (!k + 2)
    and i4, v4 = Array.unsafe_get vec (!k + 3) in
    if v1 <> 0 && v2 <> 0 && v3 <> 0 && v4 <> 0 then begin
      if i1 < 0 || i1 >= dim || i2 < 0 || i2 >= dim
         || i3 < 0 || i3 >= dim || i4 < 0 || i4 >= dim
      then oob ();
      let f1 = float_of_int v1
      and f2 = float_of_int v2
      and f3 = float_of_int v3
      and f4 = float_of_int v4 in
      let b1 = i1 * size
      and b2 = i2 * size
      and b3 = i3 * size
      and b4 = i4 * size in
      for r = 0 to size - 1 do
        let acc = Array.unsafe_get dst r in
        let acc = acc +. (f1 *. Array.unsafe_get cols (b1 + r)) in
        let acc = acc +. (f2 *. Array.unsafe_get cols (b2 + r)) in
        let acc = acc +. (f3 *. Array.unsafe_get cols (b3 + r)) in
        let acc = acc +. (f4 *. Array.unsafe_get cols (b4 + r)) in
        Array.unsafe_set dst r acc
      done
    end
    else begin
      one i1 v1;
      one i2 v2;
      one i3 v3;
      one i4 v4
    end;
    k := !k + 4
  done;
  while !k < n do
    let i, v = Array.unsafe_get vec !k in
    one i v;
    incr k
  done
