(** Linear ℓ0 (distinct elements) sketch — Lemma 2.1 with p = 0.

    Structure per repetition: geometric subsampling levels (coordinate j
    survives to level l with probability 2^{−l}, nested), and K buckets per
    level. A bucket accumulates Σ c_j·x_j over GF(2^31−1), with c_j a
    random field coefficient, so a bucket is nonzero iff it contains a
    nonzero coordinate (up to 1/p cancellation probability). The number of
    nonzero coordinates is read off the bucket-occupancy ("linear
    counting") estimator at a level whose load is moderate, rescaled by
    2^level; the final answer is the median over independent repetitions.

    The sketch is linear over the field, so sketches of rows of B combine
    with Alice's integer coefficients into sketches of rows of A·B, exactly
    as the float sketches do. *)

type t

val create :
  Matprod_util.Prng.t -> eps:float -> groups:int -> dim:int -> t
(** [dim] is the vector length (determines the number of levels);
    buckets per level = Θ(1/ε²), [groups] independent repetitions. *)

val create_explicit :
  Matprod_util.Prng.t -> buckets:int -> groups:int -> dim:int -> t

val size : t -> int
(** Total number of field counters. *)

val dim : t -> int

val sketch : t -> (int * int) array -> int array

val empty : t -> int array

val update : t -> int array -> int -> int -> unit
(** [update t state i v] adds v·e_i in place. *)

val add_scaled : t -> dst:int array -> coeff:int -> int array -> unit

(** {1 Plan/apply} — per-rep level/coefficient/bucket tables for keys in
    [0, dim); field accumulation identical to {!sketch} operation for
    operation (docs/PERFORMANCE.md). *)

type plan

val plan : t -> dim:int -> plan
(** [dim] may be at most the sketch's own domain. O(groups·dim·levels). *)

val plan_dim : plan -> int
val sketch_with_plan : t -> plan -> (int * int) array -> int array

val sketch_into : t -> plan -> dst:int array -> (int * int) array -> unit
(** Zeroes [dst] (length {!size}) then sketches into it. *)

val estimate : t -> int array -> float
(** Estimated number of nonzero coordinates; exact 0 for the zero vector. *)
