(** Cohen's exponential-minimum estimator for column support sizes of a
    matrix product ([12]; discussed in §1.3 of the paper).

    Each row index i of A receives an Exp(1) label E_i^(t) for
    t = 1..reps. For a column j of C = A·B the support is
    ∪_{k ∈ supp(B_{*,j})} supp(A_{*,k}), so
    min_{i ∈ supp(C_{*,j})} E_i^(t) = min_{k ∈ supp(B_{*,j})} m_k^(t)
    with m_k^(t) = min_{i ∈ supp(A_{*,k})} E_i^(t), and the support size
    estimator is the standard (reps − 1)/Σ_t min^(t).

    This is the centralised algorithm whose "direct adaptation" to the
    two-party model costs Ω̃(n/ε²) bits and 1 round (Alice ships all the
    m_k^(t) values) — the baseline that Algorithm 1 beats. *)

type t

val create : Matprod_util.Prng.t -> reps:int -> rows:int -> t
(** [rows] = number of rows of A (the universe being labelled);
    [reps = Θ(1/ε²)] for (1±ε) estimates. *)

val reps : t -> int

val label : t -> rep:int -> int -> float
(** E_i^(rep), the exponential label of row i. *)

val column_mins : t -> supp_of_col:(int -> int array) -> cols:int -> float array array
(** [(column_mins t ~supp_of_col ~cols).(k).(rep) = m_k^(rep)], the
    per-inner-index minima computed from the supports of A's columns
    (infinity for empty columns). This array is exactly the message of
    the naive distributed adaptation. *)

val estimate_union : t -> float array array -> int array -> float
(** [estimate_union t mins bcol] estimates |∪_{k ∈ bcol} supp(A_{*,k})| =
    ‖C_{*,j}‖₀ from the minima; 0 for an empty union. *)

(** {1 Plan/apply} — all [rows × reps] exponential labels tabulated once;
    min-folds over the table are bit-identical to {!column_mins}, and the
    per-column loop fans out across {!Matprod_util.Pool} domains
    (docs/PERFORMANCE.md). *)

type plan

val plan : t -> plan

val column_mins_with_plan :
  t -> plan -> supp_of_col:(int -> int array) -> cols:int -> float array array
(** Same result as {!column_mins}. [supp_of_col] must be pure: it is
    called from worker domains. *)
