(** Subsampled randomized Hadamard transform (SRHT) ℓ2 sketch — the
    S·H·D construction of Ailon–Chazelle / Tropp, in the blocked style
    Balabanov et al. use for distributed architectures
    (docs/SKETCHES.md).

    y = S·H·D·x: D flips each coordinate's sign by a seeded ±1, H is the
    unnormalised Walsh–Hadamard transform over the power-of-two padded
    domain, and S samples sketch rows uniformly from the transformed
    coordinates. Unnormalised Parseval gives E[y_r²] = ‖x‖₂² per row
    with no scaling constant; {!estimate_sq} takes a median of means
    over [groups], exactly like {!Ams}. Linear in x, so shard sketches
    combine by {!add_scaled}.

    Unlike the hashing families the planned apply costs O(d log d) per
    dense row (FWHT) instead of O(nnz·m): {!apply_plan} routes each row
    by its density, and on integer inputs both routes are bit-identical
    (every intermediate is an exact integer), qcheck-enforced. All
    randomness derives from the creation-time seed, so journals resume
    soundly and fleet shards reproduce the unsharded sketches bit for
    bit. *)

type t

val create : Matprod_util.Prng.t -> eps:float -> groups:int -> dim:int -> t
(** rows = Θ(1/ε²)·groups, sized as {!Ams.create}. [dim] fixes the key
    domain (and with it the Hadamard order: next power of two). *)

val create_rows :
  Matprod_util.Prng.t -> rows_per_group:int -> groups:int -> dim:int -> t

val size : t -> int
val dim : t -> int

val padded_dim : t -> int
(** The Hadamard order: [next_pow2 (dim t)]. *)

val empty : t -> float array
val sketch : t -> (int * int) array -> float array
val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit

(** {1 Plan/apply} — D and the sampled Hadamard rows tabulated per key
    (sparse route) plus a per-domain FWHT scratch (dense route);
    bit-identical to {!sketch} on either route. *)

type plan

val plan : ?dense_nnz:int -> t -> dim:int -> plan
(** [dim] must equal the family's. [dense_nnz] overrides the measured
    route-crossover threshold: rows with at least that many entries take
    the densify+FWHT route (0 forces it, [max_int] forces the sparse
    route — the tests and the P1 crossover sweep use both). *)

val plan_dim : plan -> int

val plan_dense_nnz : plan -> int
(** The threshold in effect, for reporting. *)

val sketch_with_plan : t -> plan -> (int * int) array -> float array

val sketch_into : t -> plan -> dst:float array -> (int * int) array -> unit
(** Zeroes [dst] (length {!size}) then sketches into it. *)

val estimate_sq : t -> float array -> float
(** Median-of-means estimate of ‖x‖₂². *)

val estimate : t -> float array -> float

val entry : t -> row:int -> int -> float
(** Entry of the implicit S·H·D matrix; deterministic per (row, key). *)
