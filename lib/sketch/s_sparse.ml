module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Codec = Matprod_comm.Codec
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let h_build = Metrics.histogram ~label:"s_sparse" "sketch_build_ns"

type t = {
  s : int;
  reps : int;
  buckets : int;
  spec : One_sparse.spec;
  hashes : Hashing.t array;
}

type state = One_sparse.cell array

let create rng ~s ~reps =
  if s < 1 || reps < 1 then invalid_arg "S_sparse.create: parameters";
  {
    s;
    reps;
    buckets = 2 * s;
    spec = One_sparse.spec rng;
    hashes = Array.init reps (fun _ -> Hashing.create rng ~k:2);
  }

let sparsity t = t.s
let cells t = t.reps * t.buckets
let fresh t = Array.init (cells t) (fun _ -> One_sparse.fresh ())

let bucket_of t ~rep i = (rep * t.buckets) + Hashing.bucket t.hashes.(rep) ~buckets:t.buckets i

let update_quiet t state i v =
  if v <> 0 then
    for r = 0 to t.reps - 1 do
      One_sparse.update t.spec state.(bucket_of t ~rep:r i) i v
    done

(* Per rep: one bucket hash plus the cell's two fingerprint coefficients.
   Metrics hoisted above the rep loop (and above the entry loop in
   [sketch]); One_sparse itself stays uninstrumented — it is the innermost
   kernel, its accounting lives here. *)
let update t state i v =
  if v <> 0 then begin
    if Metrics.enabled () then begin
      Metrics.incr_by c_hash (3 * t.reps);
      Metrics.incr_by c_cells t.reps
    end;
    update_quiet t state i v
  end

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let st = fresh t in
      if Metrics.enabled () then begin
        let nnz =
          Array.fold_left (fun acc (_, v) -> if v <> 0 then acc + 1 else acc) 0 vec
        in
        Metrics.incr_by c_hash (3 * t.reps * nnz);
        Metrics.incr_by c_cells (t.reps * nnz)
      end;
      Array.iter (fun (i, v) -> update_quiet t st i v) vec;
      st)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> cells t || Array.length src <> cells t then
    invalid_arg "S_sparse.add_scaled: size mismatch";
  for c = 0 to cells t - 1 do
    One_sparse.add_scaled dst.(c) ~coeff src.(c)
  done

type result = Ok of (int * int) list | Fail

let copy_state st =
  Array.map
    (fun (c : One_sparse.cell) ->
      { One_sparse.sum = c.sum; isum = c.isum; fp1 = c.fp1; fp2 = c.fp2 })
    st

let decode t state =
  let work = copy_state state in
  let recovered : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let subtract i v =
    for r = 0 to t.reps - 1 do
      One_sparse.update t.spec work.(bucket_of t ~rep:r i) i (-v)
    done
  in
  let progress = ref true in
  (* Each successful peel removes a coordinate; cap the passes defensively. *)
  let passes = ref 0 in
  while !progress && !passes <= cells t + 1 do
    progress := false;
    incr passes;
    Array.iter
      (fun cell ->
        match One_sparse.decode t.spec cell with
        | One_sparse.One (i, v) ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt recovered i) in
            Hashtbl.replace recovered i (prev + v);
            subtract i v;
            progress := true
        | One_sparse.Zero | One_sparse.Many -> ())
      work
  done;
  if Array.for_all One_sparse.is_zero work then
    let pairs =
      Hashtbl.fold
        (fun i v acc -> if v = 0 then acc else (i, v) :: acc)
        recovered []
      |> List.sort compare
    in
    Ok pairs
  else Fail

let wire _t = One_sparse.cells_wire
