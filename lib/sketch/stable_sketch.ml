module Prng = Matprod_util.Prng
module Stable = Matprod_util.Stable
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_plan = Metrics.counter "plan_hash_evals"
let h_build_planned = Metrics.histogram ~label:"stable_planned" "sketch_build_ns"

type t = {
  p : float;
  rows : int;
  seed : int;
  median_abs : float;
  (* The implicit matrix column for index i, materialised lazily: every
     vector sketched against this instance shares coordinates, so caching
     turns the per-nonzero cost from [rows] stable draws into [rows]
     multiply-adds after first touch. *)
  columns : (int, float array) Hashtbl.t;
}

let create_rows rng ~p ~rows =
  if not (p > 0.0 && p <= 2.0) then invalid_arg "Stable_sketch: p range";
  if rows <= 0 then invalid_arg "Stable_sketch: rows must be positive";
  {
    p;
    rows;
    seed = Prng.fresh_seed rng;
    median_abs = Stable.median_abs ~p;
    columns = Hashtbl.create 256;
  }

let create rng ~p ~eps ~groups =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Stable_sketch: eps range";
  if groups <= 0 then invalid_arg "Stable_sketch: groups";
  let per = max 8 (int_of_float (Float.ceil (12.0 /. (eps *. eps)))) in
  create_rows rng ~p ~rows:(per * groups)

let p t = t.p
let size t = t.rows
let empty t = Array.make t.rows 0.0

let entry t ~row i =
  let cell = Prng.derive t.seed row i in
  Stable.sample cell ~p:t.p

let column t i =
  match Hashtbl.find_opt t.columns i with
  | Some col -> col
  | None ->
      let col = Array.init t.rows (fun r -> entry t ~row:r i) in
      Hashtbl.replace t.columns i col;
      col

let sketch t vec =
  let y = empty t in
  Array.iter
    (fun (i, v) ->
      if v <> 0 then begin
        let fv = float_of_int v in
        let col = column t i in
        for r = 0 to t.rows - 1 do
          y.(r) <- y.(r) +. (fv *. col.(r))
        done
      end)
    vec;
  y

(* --- plan/apply: the implicit stable matrix, materialised eagerly for
   the whole domain. The per-key columns are exactly what [column] caches
   lazily ([entry] is deterministic in (seed, row, key)), so planned
   sketches are bit-identical — and the plan is read-only, which makes it
   safe to share across domains where the Hashtbl cache is not. *)

type plan = { pdim : int; prows : int; cols : float array (* key*rows + r *) }

let plan t ~dim =
  if dim <= 0 then invalid_arg "Stable_sketch.plan: dim";
  Metrics.incr_by c_plan (t.rows * dim);
  let cols = Array.make (dim * t.rows) 0.0 in
  for i = 0 to dim - 1 do
    let base = i * t.rows in
    for r = 0 to t.rows - 1 do
      cols.(base + r) <- entry t ~row:r i
    done
  done;
  { pdim = dim; prows = t.rows; cols }

let plan_dim p = p.pdim

let apply_plan t p dst vec =
  if p.prows <> t.rows then
    invalid_arg "Stable_sketch: plan belongs to another sketch shape";
  Kernel.apply ~name:"Stable_sketch" p.cols ~size:t.rows ~dim:p.pdim dst vec

let sketch_into t p ~dst vec =
  if Array.length dst <> t.rows then invalid_arg "Stable_sketch.sketch_into: size";
  Metrics.timed h_build_planned (fun () ->
      Array.fill dst 0 (Array.length dst) 0.0;
      apply_plan t p dst vec)

let sketch_with_plan t p vec =
  Metrics.timed h_build_planned (fun () ->
      let y = empty t in
      apply_plan t p y vec;
      y)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> t.rows || Array.length src <> t.rows then
    invalid_arg "Stable_sketch.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for r = 0 to t.rows - 1 do
      dst.(r) <- dst.(r) +. (c *. src.(r))
    done

let estimate t y =
  if Array.length y <> t.rows then invalid_arg "Stable_sketch.estimate: size";
  let abs = Array.map Float.abs y in
  Stats.median abs /. t.median_abs

let estimate_pow t y = estimate t y ** t.p
