(** Indyk's p-stable ℓp sketch for p ∈ (0, 2] ([19]; Lemma 2.1 of the
    paper).

    The implicit sketching matrix has i.i.d. symmetric p-stable entries,
    generated on demand from a seed so the matrix is never materialised.
    For y = Sx each |y_r| is distributed as ‖x‖p·|stable|, so the median
    of |y_r| over Θ(1/ε² · log 1/δ) rows, normalised by the distribution's
    absolute median, is a (1±ε) estimate of ‖x‖p. Linear, like {!Ams}. *)

type t

val create : Matprod_util.Prng.t -> p:float -> eps:float -> groups:int -> t
(** [groups] plays the role of the log(1/δ) repetition factor:
    rows = Θ(1/ε²)·groups. Requires 0 < p <= 2. *)

val create_rows : Matprod_util.Prng.t -> p:float -> rows:int -> t

val p : t -> float
val size : t -> int

val sketch : t -> (int * int) array -> float array
val empty : t -> float array
val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit

(** {1 Plan/apply} — the implicit stable matrix materialised for the whole
    key domain; bit-identical to {!sketch}, and (unlike the lazy column
    cache) read-only, hence safe under multi-domain fan-out
    (docs/PERFORMANCE.md). *)

type plan

val plan : t -> dim:int -> plan
val plan_dim : plan -> int
val sketch_with_plan : t -> plan -> (int * int) array -> float array

val sketch_into : t -> plan -> dst:float array -> (int * int) array -> unit
(** Zeroes [dst] (length {!size}) then sketches into it. *)

val estimate : t -> float array -> float
(** Estimate of ‖x‖p. *)

val estimate_pow : t -> float array -> float
(** Estimate of ‖x‖p^p. *)

val entry : t -> row:int -> int -> float
(** Entry of the implicit p-stable matrix; deterministic per (row, index). *)
