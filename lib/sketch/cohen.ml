module Prng = Matprod_util.Prng
module Metrics = Matprod_obs.Metrics

module Pool = Matprod_util.Pool

let c_labels = Metrics.counter "cohen_label_evals"
let c_prng = Metrics.counter "prng_draws"
let c_plan = Metrics.counter "plan_hash_evals"
let h_build = Metrics.histogram ~label:"cohen" "sketch_build_ns"
let h_build_planned = Metrics.histogram ~label:"cohen_planned" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"cohen" "sketch_query_ns"

type t = { reps : int; rows : int; seed : int }

let create rng ~reps ~rows =
  if reps < 2 then invalid_arg "Cohen.create: need reps >= 2";
  if rows <= 0 then invalid_arg "Cohen.create: rows";
  { reps; rows; seed = Prng.fresh_seed rng }

let reps t = t.reps

let label t ~rep i =
  if i < 0 || i >= t.rows then invalid_arg "Cohen.label: row range";
  if Metrics.enabled () then begin
    Metrics.incr c_labels;
    Metrics.incr c_prng
  end;
  Prng.exponential (Prng.derive t.seed rep i)

let column_mins t ~supp_of_col ~cols =
  Metrics.timed h_build (fun () ->
      Array.init cols (fun k ->
          let supp = supp_of_col k in
          Array.init t.reps (fun rep ->
              Array.fold_left
                (fun acc i -> Float.min acc (label t ~rep i))
                Float.infinity supp)))

(* --- plan/apply: every exponential label, tabulated. [label] is
   deterministic in (seed, rep, i), so min-folds over the table are
   bit-identical to the unplanned path. The per-column fan-out runs on the
   domain pool: each column's minima land in that column's slot. *)

type plan = { prows : int; preps : int; labels : float array (* i*reps + rep *) }

let label_quiet t ~rep i = Prng.exponential (Prng.derive t.seed rep i)

let plan t =
  Metrics.incr_by c_plan (t.rows * t.reps);
  let labels = Array.make (t.rows * t.reps) 0.0 in
  for i = 0 to t.rows - 1 do
    for rep = 0 to t.reps - 1 do
      labels.((i * t.reps) + rep) <- label_quiet t ~rep i
    done
  done;
  { prows = t.rows; preps = t.reps; labels }

let column_mins_with_plan t p ~supp_of_col ~cols =
  if p.prows <> t.rows || p.preps <> t.reps then
    invalid_arg "Cohen: plan belongs to another sketch shape";
  Metrics.timed h_build_planned (fun () ->
      let mets = Metrics.enabled () in
      Pool.init cols (fun k ->
          let supp = supp_of_col k in
          (* Counter totals match the unplanned path (logical label
             evaluations, served by the table), batched once per column. *)
          if mets then begin
            Metrics.incr_by c_labels (t.reps * Array.length supp);
            Metrics.incr_by c_prng (t.reps * Array.length supp)
          end;
          Array.init t.reps (fun rep ->
              Array.fold_left
                (fun acc i ->
                  Float.min acc (Array.unsafe_get p.labels ((i * t.reps) + rep)))
                Float.infinity supp)))

let estimate_union_raw t mins bcol =
  if Array.length bcol = 0 then 0.0
  else begin
    let acc = Array.make t.reps Float.infinity in
    Array.iter
      (fun k ->
        let m = mins.(k) in
        for rep = 0 to t.reps - 1 do
          if m.(rep) < acc.(rep) then acc.(rep) <- m.(rep)
        done)
      bcol;
    let sum = Array.fold_left ( +. ) 0.0 acc in
    if Float.is_finite sum then float_of_int (t.reps - 1) /. sum else 0.0
  end

let estimate_union t mins bcol =
  Metrics.timed h_query (fun () -> estimate_union_raw t mins bcol)
