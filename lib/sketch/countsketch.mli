(** CountSketch (Charikar–Chen–Farach-Colton), used here as the baseline
    the paper contrasts with in §1.3: applying CountSketch to the entries
    of C = A·B ([32]) costs Θ̃(n/ε²) communication in the two-party
    setting, with no advantage over the paper's protocols.

    [reps] rows × [buckets] columns of float counters; coordinate i lands
    in one bucket per row with a ±1 sign. Point queries return the median
    of the signed bucket contents. Linear. *)

type t

val create : Matprod_util.Prng.t -> buckets:int -> reps:int -> t

val size : t -> int
val empty : t -> float array
val update : t -> float array -> int -> int -> unit
val sketch : t -> (int * int) array -> float array
val add_scaled : t -> dst:float array -> coeff:int -> float array -> unit

(** {1 Plan/apply}

    [plan ~dim] precomputes the per-rep bucket/sign tables for every key
    in [0, dim) — O(reps·dim) hash evaluations, paid once per hash family.
    Applying the plan is pure table lookups: results are bit-identical to
    {!sketch} (see docs/PERFORMANCE.md for the contract). *)

type plan

val plan : t -> dim:int -> plan
val plan_dim : plan -> int

val sketch_with_plan : t -> plan -> (int * int) array -> float array
(** Same result as {!sketch}, via the plan's tables. Keys must lie in
    [0, plan_dim). *)

val sketch_into : t -> plan -> dst:float array -> (int * int) array -> unit
(** [sketch_into t p ~dst vec] zeroes [dst] (length {!size}) and fills it
    with the sketch of [vec] — zero per-row allocation; [dst] may be dirty
    from a previous row. *)

val query : t -> float array -> int -> float
(** Estimate of x_i; error ≤ ‖x‖₂/√buckets per rep, median-boosted. *)

val heavy_candidates : t -> float array -> dim:int -> threshold:float -> (int * float) list
(** All coordinates whose point-query estimate is ≥ [threshold] (linear
    scan over the [dim] coordinates — fine at this library's scales). *)
