module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_plan = Metrics.counter "plan_hash_evals"
let h_build_planned = Metrics.histogram ~label:"ams_planned" "sketch_build_ns"

type t = {
  rows_per_group : int;
  groups : int;
  signs : Hashing.t array; (* one 4-wise sign hash per sketch row *)
}

let create_rows rng ~rows_per_group ~groups =
  if rows_per_group <= 0 || groups <= 0 then
    invalid_arg "Ams.create_rows: dimensions must be positive";
  let total = rows_per_group * groups in
  { rows_per_group; groups; signs = Array.init total (fun _ -> Hashing.create rng ~k:4) }

let create rng ~eps ~groups =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Ams.create: eps range";
  let rows_per_group = max 4 (int_of_float (Float.ceil (6.0 /. (eps *. eps)))) in
  create_rows rng ~rows_per_group ~groups

let size t = t.rows_per_group * t.groups
let empty t = Array.make (size t) 0.0

let sketch t vec =
  let y = empty t in
  Array.iter
    (fun (i, v) ->
      if v <> 0 then
        let fv = float_of_int v in
        for r = 0 to size t - 1 do
          y.(r) <- y.(r) +. (fv *. float_of_int (Hashing.sign t.signs.(r) i))
        done)
    vec;
  y

(* --- plan/apply: the full ±1 sign matrix, tabulated row-major by key.
   Each seed-path entry costs a degree-3 polynomial plus the splitmix
   finalizer per (entry × sketch row); applied, it is one load and one
   fused multiply–add. float_of_int v *. (±1.0) equals
   fv *. float_of_int (±1) bit for bit, so results are unchanged. *)

type plan = { pdim : int; psize : int; sgn : float array (* key*size + r *) }

let plan t ~dim =
  if dim <= 0 then invalid_arg "Ams.plan: dim";
  let sz = size t in
  Metrics.incr_by c_plan (sz * dim);
  let sgn = Array.make (dim * sz) 0.0 in
  for r = 0 to sz - 1 do
    let signs = Hashing.tabulate_sign_floats t.signs.(r) ~dim in
    for i = 0 to dim - 1 do
      sgn.((i * sz) + r) <- signs.(i)
    done
  done;
  { pdim = dim; psize = sz; sgn }

let plan_dim p = p.pdim

let apply_plan t p dst vec =
  let sz = t.rows_per_group * t.groups in
  if p.psize <> sz then invalid_arg "Ams: plan belongs to another sketch shape";
  Kernel.apply ~name:"Ams" p.sgn ~size:sz ~dim:p.pdim dst vec

let sketch_into t p ~dst vec =
  if Array.length dst <> size t then invalid_arg "Ams.sketch_into: size";
  Metrics.timed h_build_planned (fun () ->
      Array.fill dst 0 (Array.length dst) 0.0;
      apply_plan t p dst vec)

let sketch_with_plan t p vec =
  Metrics.timed h_build_planned (fun () ->
      let y = empty t in
      apply_plan t p y vec;
      y)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Ams.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for r = 0 to size t - 1 do
      dst.(r) <- dst.(r) +. (c *. src.(r))
    done

let estimate_sq t y =
  if Array.length y <> size t then invalid_arg "Ams.estimate_sq: size";
  let sq = Array.map (fun v -> v *. v) y in
  Float.max 0.0 (Stats.median_of_means sq ~groups:t.groups)

let entry t ~row i = float_of_int (Hashing.sign t.signs.(row) i)
