module Codec = Matprod_comm.Codec
module Metrics = Matprod_obs.Metrics

let h_build = Metrics.histogram ~label:"lp" "sketch_build_ns"
let h_build_planned = Metrics.histogram ~label:"lp_planned" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"lp" "sketch_query_ns"

type impl = L0 of L0_sketch.t | Stable of Stable_sketch.t | Ams_l2 of Ams.t
type t = { p : float; impl : impl }
type value = F of float array | Z of int array

let create rng ~p ~eps ~groups ~dim =
  if not (p >= 0.0 && p <= 2.0) then invalid_arg "Lp.create: p range";
  let impl =
    if p = 0.0 then L0 (L0_sketch.create rng ~eps ~groups ~dim)
    else if p = 2.0 then Ams_l2 (Ams.create rng ~eps ~groups)
    else Stable (Stable_sketch.create rng ~p ~eps ~groups)
  in
  { p; impl }

let p t = t.p

let size t =
  match t.impl with
  | L0 s -> L0_sketch.size s
  | Stable s -> Stable_sketch.size s
  | Ams_l2 s -> Ams.size s

let empty t =
  match t.impl with
  | L0 s -> Z (L0_sketch.empty s)
  | Stable s -> F (Stable_sketch.empty s)
  | Ams_l2 s -> F (Ams.empty s)

let sketch t vec =
  Metrics.timed h_build (fun () ->
      match t.impl with
      | L0 s -> Z (L0_sketch.sketch s vec)
      | Stable s -> F (Stable_sketch.sketch s vec)
      | Ams_l2 s -> F (Ams.sketch s vec))

let type_error () = invalid_arg "Lp: mismatched sketch value type"

type plan =
  | P_l0 of L0_sketch.plan
  | P_stable of Stable_sketch.plan
  | P_ams of Ams.plan

let plan t ~dim =
  match t.impl with
  | L0 s -> P_l0 (L0_sketch.plan s ~dim)
  | Stable s -> P_stable (Stable_sketch.plan s ~dim)
  | Ams_l2 s -> P_ams (Ams.plan s ~dim)

let plan_mismatch () = invalid_arg "Lp: plan belongs to another sketch kind"

let sketch_with_plan t pl vec =
  Metrics.timed h_build_planned (fun () ->
      match (t.impl, pl) with
      | L0 s, P_l0 p -> Z (L0_sketch.sketch_with_plan s p vec)
      | Stable s, P_stable p -> F (Stable_sketch.sketch_with_plan s p vec)
      | Ams_l2 s, P_ams p -> F (Ams.sketch_with_plan s p vec)
      | _ -> plan_mismatch ())

let sketch_into t pl ~dst vec =
  Metrics.timed h_build_planned (fun () ->
      match (t.impl, pl, dst) with
      | L0 s, P_l0 p, Z d -> L0_sketch.sketch_into s p ~dst:d vec
      | Stable s, P_stable p, F d -> Stable_sketch.sketch_into s p ~dst:d vec
      | Ams_l2 s, P_ams p, F d -> Ams.sketch_into s p ~dst:d vec
      | (L0 _ | Stable _ | Ams_l2 _), (P_l0 _ | P_stable _ | P_ams _), _ ->
          (match (t.impl, pl) with
          | L0 _, P_l0 _ | Stable _, P_stable _ | Ams_l2 _, P_ams _ ->
              type_error ()
          | _ -> plan_mismatch ()))

let add_scaled t ~dst ~coeff src =
  match (t.impl, dst, src) with
  | L0 s, Z d, Z v -> L0_sketch.add_scaled s ~dst:d ~coeff v
  | Stable s, F d, F v -> Stable_sketch.add_scaled s ~dst:d ~coeff v
  | Ams_l2 s, F d, F v -> Ams.add_scaled s ~dst:d ~coeff v
  | _ -> type_error ()

let estimate_pow t v =
  Metrics.timed h_query (fun () ->
      match (t.impl, v) with
      | L0 s, Z a -> L0_sketch.estimate s a
      | Stable s, F a -> Stable_sketch.estimate_pow s a
      | Ams_l2 s, F a -> Ams.estimate_sq s a
      | _ -> type_error ())

let estimate t v =
  Metrics.timed h_query (fun () ->
      match (t.impl, v) with
      | L0 s, Z a -> L0_sketch.estimate s a
      | Stable s, F a -> Stable_sketch.estimate s a
      | Ams_l2 s, F a -> sqrt (Ams.estimate_sq s a)
      | _ -> type_error ())

let wire t =
  match t.impl with
  (* Norm sketches ship dense: their Θ(1/ε²) word count is exactly the
     quantity the paper's bounds speak about, so compressing zero counters
     away would hide the ε-scaling being measured. Recovery structures
     (samplers), whose content is genuinely sparse, do ship sparsely. *)
  | L0 _ ->
      Codec.map
        (function Z a -> a | F _ -> type_error ())
        (fun a -> Z a)
        Codec.uint_array
  | Stable _ | Ams_l2 _ ->
      Codec.map
        (function F a -> a | Z _ -> type_error ())
        (fun a -> F a)
        Codec.float32_array
