module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let c_prng = Metrics.counter "prng_draws"
let c_plan = Metrics.counter "plan_hash_evals"
let h_build = Metrics.histogram ~label:"countsketch" "sketch_build_ns"
let h_build_planned = Metrics.histogram ~label:"countsketch_planned" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"countsketch" "sketch_query_ns"

type t = {
  buckets : int;
  reps : int;
  bucket_hash : Hashing.t array;
  sign_hash : Hashing.t array;
}

let create rng ~buckets ~reps =
  if buckets <= 0 || reps <= 0 then invalid_arg "Countsketch.create";
  (* 2-wise bucket + 4-wise sign polynomial per repetition. *)
  Metrics.incr_by c_prng (reps * 6);
  {
    buckets;
    reps;
    bucket_hash = Array.init reps (fun _ -> Hashing.create rng ~k:2);
    sign_hash = Array.init reps (fun _ -> Hashing.create rng ~k:4);
  }

let size t = t.buckets * t.reps
let empty t = Array.make (size t) 0.0

let update t arr i v =
  if v <> 0 then begin
    if Metrics.enabled () then begin
      Metrics.incr_by c_hash (2 * t.reps);
      Metrics.incr_by c_cells t.reps
    end;
    for r = 0 to t.reps - 1 do
      let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
      let s = Hashing.sign t.sign_hash.(r) i in
      let idx = (r * t.buckets) + b in
      arr.(idx) <- arr.(idx) +. float_of_int (v * s)
    done
  end

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let arr = empty t in
      Array.iter (fun (i, v) -> update t arr i v) vec;
      arr)

(* --- plan/apply -------------------------------------------------------

   [plan ~dim] evaluates every (bucket, sign) pair once per key of the
   domain; applying it is two table loads and a fused multiply–add per
   (entry × rep) — no polynomial evaluation, no Int64 boxing. The sign is
   stored as ±1.0, and [float_of_int (v * s) = float_of_int v *. s_float]
   exactly for |v| < 2^52, so planned sketches are bit-identical to the
   unplanned path. *)

type plan = {
  pdim : int;
  cell : int array; (* cell.(i*reps + r) = r*buckets + bucket_r(i) *)
  sgn : float array; (* sgn.(i*reps + r) = ±1.0 *)
}

let plan t ~dim =
  if dim <= 0 then invalid_arg "Countsketch.plan: dim";
  Metrics.incr_by c_plan (2 * t.reps * dim);
  let cell = Array.make (dim * t.reps) 0 in
  let sgn = Array.make (dim * t.reps) 0.0 in
  for r = 0 to t.reps - 1 do
    let buckets = Hashing.tabulate_buckets t.bucket_hash.(r) ~buckets:t.buckets ~dim in
    let signs = Hashing.tabulate_sign_floats t.sign_hash.(r) ~dim in
    let base = r * t.buckets in
    for i = 0 to dim - 1 do
      cell.((i * t.reps) + r) <- base + buckets.(i);
      sgn.((i * t.reps) + r) <- signs.(i)
    done
  done;
  { pdim = dim; cell; sgn }

let plan_dim p = p.pdim

let apply_plan t p dst vec =
  (* Metrics hoisted to one enabled() check + one batched increment per
     row; the counters keep the same final values as the per-entry path
     (hash_evals counts logical evaluations, served here by the tables). *)
  if Metrics.enabled () then begin
    let nnz = Array.fold_left (fun acc (_, v) -> if v <> 0 then acc + 1 else acc) 0 vec in
    Metrics.incr_by c_hash (2 * t.reps * nnz);
    Metrics.incr_by c_cells (t.reps * nnz)
  end;
  let reps = t.reps in
  Array.iter
    (fun (i, v) ->
      if v <> 0 then begin
        if i < 0 || i >= p.pdim then invalid_arg "Countsketch: key outside plan";
        let fv = float_of_int v in
        let base = i * reps in
        for r = 0 to reps - 1 do
          let idx = Array.unsafe_get p.cell (base + r) in
          Array.unsafe_set dst idx
            (Array.unsafe_get dst idx +. (fv *. Array.unsafe_get p.sgn (base + r)))
        done
      end)
    vec

let sketch_into t p ~dst vec =
  if Array.length dst <> size t then invalid_arg "Countsketch.sketch_into: size";
  Metrics.timed h_build_planned (fun () ->
      Array.fill dst 0 (Array.length dst) 0.0;
      apply_plan t p dst vec)

let sketch_with_plan t p vec =
  Metrics.timed h_build_planned (fun () ->
      let arr = empty t in
      apply_plan t p arr vec;
      arr)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Countsketch.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for i = 0 to size t - 1 do
      dst.(i) <- dst.(i) +. (c *. src.(i))
    done

let query t arr i =
  Metrics.timed h_query (fun () ->
      if Metrics.enabled () then Metrics.incr_by c_hash (2 * t.reps);
      let ests =
        Array.init t.reps (fun r ->
            let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
            let s = Hashing.sign t.sign_hash.(r) i in
            float_of_int s *. arr.((r * t.buckets) + b))
      in
      Stats.median ests)

let heavy_candidates t arr ~dim ~threshold =
  let out = ref [] in
  for i = dim - 1 downto 0 do
    let est = query t arr i in
    if est >= threshold then out := (i, est) :: !out
  done;
  !out
