module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics

let c_hash = Metrics.counter "hash_evals"
let c_cells = Metrics.counter "sketch_cells_touched"
let c_prng = Metrics.counter "prng_draws"
let h_build = Metrics.histogram ~label:"countsketch" "sketch_build_ns"
let h_query = Metrics.histogram ~label:"countsketch" "sketch_query_ns"

type t = {
  buckets : int;
  reps : int;
  bucket_hash : Hashing.t array;
  sign_hash : Hashing.t array;
}

let create rng ~buckets ~reps =
  if buckets <= 0 || reps <= 0 then invalid_arg "Countsketch.create";
  (* 2-wise bucket + 4-wise sign polynomial per repetition. *)
  Metrics.incr_by c_prng (reps * 6);
  {
    buckets;
    reps;
    bucket_hash = Array.init reps (fun _ -> Hashing.create rng ~k:2);
    sign_hash = Array.init reps (fun _ -> Hashing.create rng ~k:4);
  }

let size t = t.buckets * t.reps
let empty t = Array.make (size t) 0.0

let update t arr i v =
  if v <> 0 then begin
    if Metrics.enabled () then begin
      Metrics.incr_by c_hash (2 * t.reps);
      Metrics.incr_by c_cells t.reps
    end;
    for r = 0 to t.reps - 1 do
      let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
      let s = Hashing.sign t.sign_hash.(r) i in
      let idx = (r * t.buckets) + b in
      arr.(idx) <- arr.(idx) +. float_of_int (v * s)
    done
  end

let sketch t vec =
  Metrics.timed h_build (fun () ->
      let arr = empty t in
      Array.iter (fun (i, v) -> update t arr i v) vec;
      arr)

let add_scaled t ~dst ~coeff src =
  if Array.length dst <> size t || Array.length src <> size t then
    invalid_arg "Countsketch.add_scaled: size mismatch";
  if coeff <> 0 then
    let c = float_of_int coeff in
    for i = 0 to size t - 1 do
      dst.(i) <- dst.(i) +. (c *. src.(i))
    done

let query t arr i =
  Metrics.timed h_query (fun () ->
      if Metrics.enabled () then Metrics.incr_by c_hash (2 * t.reps);
      let ests =
        Array.init t.reps (fun r ->
            let b = Hashing.bucket t.bucket_hash.(r) ~buckets:t.buckets i in
            let s = Hashing.sign t.sign_hash.(r) i in
            float_of_int s *. arr.((r * t.buckets) + b))
      in
      Stats.median ests)

let heavy_candidates t arr ~dim ~threshold =
  let out = ref [] in
  for i = dim - 1 downto 0 do
    let est = query t arr i in
    if est >= threshold then out := (i, est) :: !out
  done;
  !out
