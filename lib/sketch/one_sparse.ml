module Prng = Matprod_util.Prng
module Hashing = Matprod_util.Hashing
module Field31 = Matprod_util.Field31
module Codec = Matprod_comm.Codec

type spec = { c1 : Hashing.t; c2 : Hashing.t }

type cell = {
  mutable sum : int;
  mutable isum : int;
  mutable fp1 : int;
  mutable fp2 : int;
}

let spec rng = { c1 = Hashing.create rng ~k:2; c2 = Hashing.create rng ~k:2 }
let fresh () = { sum = 0; isum = 0; fp1 = 0; fp2 = 0 }
let is_zero c = c.sum = 0 && c.isum = 0 && c.fp1 = 0 && c.fp2 = 0

(* Innermost kernel of every recovery structure: deliberately carries no
   Metrics calls — hash/cell accounting is hoisted into the callers
   (S_sparse, L0_sampler) so the enabled() branch never sits inside a
   per-coordinate loop. *)
let update spec cell i v =
  if i < 0 then invalid_arg "One_sparse.update: negative index";
  if v <> 0 then begin
    let w = Field31.of_int v in
    cell.sum <- cell.sum + v;
    cell.isum <- cell.isum + (i * v);
    cell.fp1 <- Field31.add cell.fp1 (Field31.mul w (Hashing.field_coeff spec.c1 i));
    cell.fp2 <- Field31.add cell.fp2 (Field31.mul w (Hashing.field_coeff spec.c2 i))
  end

let add_scaled dst ~coeff src =
  if coeff <> 0 then begin
    let c = Field31.of_int coeff in
    dst.sum <- dst.sum + (coeff * src.sum);
    dst.isum <- dst.isum + (coeff * src.isum);
    dst.fp1 <- Field31.add dst.fp1 (Field31.mul c src.fp1);
    dst.fp2 <- Field31.add dst.fp2 (Field31.mul c src.fp2)
  end

type verdict = Zero | One of int * int | Many

let decode spec cell =
  if is_zero cell then Zero
  else if cell.sum = 0 then Many
  else
    let i = cell.isum / cell.sum in
    if i < 0 || i * cell.sum <> cell.isum then Many
    else
      let w = Field31.of_int cell.sum in
      let want1 = Field31.mul w (Hashing.field_coeff spec.c1 i) in
      let want2 = Field31.mul w (Hashing.field_coeff spec.c2 i) in
      if cell.fp1 = want1 && cell.fp2 = want2 then One (i, cell.sum) else Many

let cell_codec =
  Codec.map
    (fun c -> ((c.sum, c.isum), (c.fp1, c.fp2)))
    (fun ((sum, isum), (fp1, fp2)) -> { sum; isum; fp1; fp2 })
    (Codec.pair (Codec.pair Codec.int Codec.int) (Codec.pair Codec.uint Codec.uint))

(* Recovery structures over subsampling levels are mostly zero cells, so
   the wire format carries (length, nonzero cells with their positions)
   rather than every cell. *)
let cells_wire =
  Codec.map
    (fun cells ->
      let nonzero = ref [] in
      Array.iteri
        (fun idx c -> if not (is_zero c) then nonzero := (idx, c) :: !nonzero)
        cells;
      (Array.length cells, List.rev !nonzero))
    (fun (len, nonzero) ->
      let cells = Array.init len (fun _ -> fresh ()) in
      List.iter (fun (idx, c) -> cells.(idx) <- c) nonzero;
      cells)
    (Codec.pair Codec.uint (Codec.list (Codec.pair Codec.uint cell_codec)))
