let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* --- cells ------------------------------------------------------------ *)

type ccell = { mutable count : int }
type gcell = { mutable gval : float; mutable gset : bool }

let hist_buckets = 63

type hcell = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  buckets : int array; (* buckets.(b) counts samples in [2^b, 2^(b+1)) *)
}

type metric = C of ccell | G of gcell | H of hcell

(* --- the scope tree ---------------------------------------------------- *)

(* Metrics record into the *current* scope: a node in a tree rooted at the
   process-wide root scope. Scopes are opened by in_scope (per party, per
   supervisor attempt, per engine group) so one run's counters are no
   longer conflated into a single blob. Children keep insertion order so
   snapshots list attempt1 before attempt2. *)
type scope = {
  cells : (string, metric) Hashtbl.t;
  mutable children : (string * scope) list;
}

let new_scope () = { cells = Hashtbl.create 16; children = [] }
let root = new_scope ()
let cur = ref root

(* Bumped on reset so memoized handle resolutions die with the old tree. *)
let generation = ref 0

(* Cell creation may race when worker domains first touch a handle inside
   a Pool fan-out; the lock keeps the Hashtbl itself safe (increments stay
   best-effort, as documented). The memoized fast path takes no lock. *)
let resolve_lock = Mutex.create ()

let key ?label name =
  match label with None -> name | Some l -> Printf.sprintf "%s{%s}" name l

let zero_cell = function
  | C c -> c.count <- 0
  | G g ->
      g.gval <- 0.0;
      g.gset <- false
  | H h ->
      h.hcount <- 0;
      h.hsum <- 0.0;
      h.hmin <- Float.infinity;
      h.hmax <- Float.neg_infinity;
      Array.fill h.buckets 0 hist_buckets 0

let fresh_hcell () =
  {
    hcount = 0;
    hsum = 0.0;
    hmin = Float.infinity;
    hmax = Float.neg_infinity;
    buckets = Array.make hist_buckets 0;
  }

let cell_in scope k make describe =
  Mutex.lock resolve_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock resolve_lock)
    (fun () ->
      match Hashtbl.find_opt scope.cells k with
      | Some m -> (
          match describe m with
          | Some cell -> cell
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics.%s: %s registered as another type"
                   (fst make) k))
      | None ->
          let m = (snd make) () in
          Hashtbl.replace scope.cells k m;
          match describe m with Some cell -> cell | None -> assert false)

(* --- handles ----------------------------------------------------------- *)

(* A handle is the metric's key plus a memoized (generation, scope, cell)
   resolution: the hot path is one generation test and one physical
   equality, and re-entering a scope re-resolves to that scope's cell. *)

type counter = {
  ckey : string;
  mutable cgen : int;
  mutable chome : scope;
  mutable ccell : ccell;
}

type gauge = {
  gkey : string;
  mutable ggen : int;
  mutable ghome : scope;
  mutable gcell : gcell;
}

type histogram = {
  hkey : string;
  mutable hgen : int;
  mutable hhome : scope;
  mutable hcell : hcell;
}

let counter ?label name =
  { ckey = key ?label name; cgen = -1; chome = root; ccell = { count = 0 } }

let c_resolve h =
  if h.cgen = !generation && h.chome == !cur then h.ccell
  else begin
    let scope = !cur in
    let cell =
      cell_in scope h.ckey
        ("counter", fun () -> C { count = 0 })
        (function C c -> Some c | _ -> None)
    in
    h.cgen <- !generation;
    h.chome <- scope;
    h.ccell <- cell;
    cell
  end

let incr h =
  if !on then begin
    let c = c_resolve h in
    c.count <- c.count + 1
  end

let incr_by h n =
  if !on then begin
    let c = c_resolve h in
    c.count <- c.count + n
  end

let value h = (c_resolve h).count

let total ?label name =
  let k = key ?label name in
  let rec go acc s =
    let acc =
      match Hashtbl.find_opt s.cells k with
      | Some (C c) -> acc + c.count
      | _ -> acc
    in
    List.fold_left (fun a (_, child) -> go a child) acc s.children
  in
  go 0 root

let gauge ?label name =
  {
    gkey = key ?label name;
    ggen = -1;
    ghome = root;
    gcell = { gval = 0.0; gset = false };
  }

let g_resolve h =
  if h.ggen = !generation && h.ghome == !cur then h.gcell
  else begin
    let scope = !cur in
    let cell =
      cell_in scope h.gkey
        ("gauge", fun () -> G { gval = 0.0; gset = false })
        (function G g -> Some g | _ -> None)
    in
    h.ggen <- !generation;
    h.ghome <- scope;
    h.gcell <- cell;
    cell
  end

let set_gauge h v =
  if !on then begin
    let g = g_resolve h in
    g.gval <- v;
    g.gset <- true
  end

let gauge_value h =
  let g = g_resolve h in
  if g.gset then Some g.gval else None

let histogram ?label name =
  { hkey = key ?label name; hgen = -1; hhome = root; hcell = fresh_hcell () }

let h_resolve h =
  if h.hgen = !generation && h.hhome == !cur then h.hcell
  else begin
    let scope = !cur in
    let cell =
      cell_in scope h.hkey
        ("histogram", fun () -> H (fresh_hcell ()))
        (function H c -> Some c | _ -> None)
    in
    h.hgen <- !generation;
    h.hhome <- scope;
    h.hcell <- cell;
    cell
  end

let bucket_of v =
  if v < 1.0 then 0
  else min (hist_buckets - 1) (int_of_float (Float.log2 v))

let observe h v =
  if !on then begin
    let c = h_resolve h in
    c.hcount <- c.hcount + 1;
    c.hsum <- c.hsum +. v;
    if v < c.hmin then c.hmin <- v;
    if v > c.hmax then c.hmax <- v;
    let b = bucket_of v in
    c.buckets.(b) <- c.buckets.(b) + 1
  end

let observe_ns h ns = observe h (float_of_int ns)

let timed h f =
  if !on then begin
    let t0 = Clock.now_ns () in
    let r = f () in
    observe_ns h (Clock.elapsed_ns t0);
    r
  end
  else f ()

let hist_count h = (h_resolve h).hcount
let hist_sum h = (h_resolve h).hsum

(* --- scope entry -------------------------------------------------------- *)

let in_scope name f =
  if not !on then f ()
  else begin
    let parent = !cur in
    let scope =
      match List.assoc_opt name parent.children with
      | Some s -> s
      | None ->
          let s = new_scope () in
          parent.children <- parent.children @ [ (name, s) ];
          s
    in
    cur := scope;
    Fun.protect ~finally:(fun () -> cur := parent) f
  end

let reset () =
  generation := !generation + 1;
  root.children <- [];
  cur := root;
  Hashtbl.iter (fun _ m -> zero_cell m) root.cells

(* --- percentile estimation on log2 histograms -------------------------- *)

let bucket_lo b = if b = 0 then 0.0 else Float.ldexp 1.0 b
let bucket_hi b = Float.ldexp 1.0 (b + 1)

(* Estimate the q-quantile from log2 bucket counts by linear interpolation
   inside the bucket holding the ceil(q*count)-th sample, clamping the
   bucket's range to the observed [min, max]. The estimate is monotone in
   q, always within [min, max], and exact when all samples are equal. *)
let percentile_of ~count ~min:hmin ~max:hmax ~buckets q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q outside [0,1]";
  if count <= 0 then 0.0
  else begin
    let target = Float.max 1.0 (q *. float_of_int count) in
    let rec find below = function
      | [] -> (0, 0, below) (* unreachable when buckets sum to count *)
      | (b, n) :: rest ->
          let upto = below +. float_of_int n in
          if target <= upto || rest = [] then (b, n, below)
          else find upto rest
    in
    let b, n, below = find 0.0 buckets in
    if n = 0 then hmin
    else begin
      let lo = Float.max (bucket_lo b) hmin in
      let hi = Float.min (bucket_hi b) hmax in
      let lo = Float.min lo hi in
      let frac =
        Float.max 0.0 (Float.min 1.0 ((target -. below) /. float_of_int n))
      in
      lo +. (frac *. (hi -. lo))
    end
  end

let live_buckets c =
  let acc = ref [] in
  for b = hist_buckets - 1 downto 0 do
    if c.buckets.(b) > 0 then acc := (b, c.buckets.(b)) :: !acc
  done;
  !acc

let percentile h q =
  let c = h_resolve h in
  percentile_of ~count:c.hcount ~min:c.hmin ~max:c.hmax
    ~buckets:(live_buckets c) q

(* --- snapshot ----------------------------------------------------------- *)

let hist_json c =
  let pct q =
    percentile_of ~count:c.hcount ~min:c.hmin ~max:c.hmax
      ~buckets:(live_buckets c) q
  in
  let buckets =
    List.map (fun (b, n) -> Json.List [ Json.Int b; Json.Int n ]) (live_buckets c)
  in
  Json.Obj
    [
      ("count", Json.Int c.hcount);
      ("sum", Json.Float c.hsum);
      ("min", Json.Float c.hmin);
      ("max", Json.Float c.hmax);
      ("p50", Json.Float (pct 0.50));
      ("p90", Json.Float (pct 0.90));
      ("p99", Json.Float (pct 0.99));
      ("log2_buckets", Json.List buckets);
    ]

let rec scope_snapshot s =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  Hashtbl.iter
    (fun k m ->
      match m with
      | C c -> if c.count <> 0 then counters := (k, Json.Int c.count) :: !counters
      | G g -> if g.gset then gauges := (k, Json.Float g.gval) :: !gauges
      | H h -> if h.hcount > 0 then hists := (k, hist_json h) :: !hists)
    s.cells;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Json.Obj
    ([
       ("counters", Json.Obj (sorted !counters));
       ("gauges", Json.Obj (sorted !gauges));
       ("histograms", Json.Obj (sorted !hists));
     ]
    @
    match s.children with
    | [] -> []
    | children ->
        [
          ( "scopes",
            Json.Obj
              (List.map (fun (name, child) -> (name, scope_snapshot child))
                 children) );
        ])

let snapshot () = scope_snapshot root
