let on = ref false
let enabled () = !on
let set_enabled b = on := b

type counter = { mutable count : int }
type gauge = { mutable gval : float; mutable gset : bool }

let hist_buckets = 63

type histogram = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  buckets : int array; (* buckets.(b) counts samples in [2^b, 2^(b+1)) *)
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let key ?label name =
  match label with None -> name | Some l -> Printf.sprintf "%s{%s}" name l

let counter ?label name =
  let k = key ?label name in
  match Hashtbl.find_opt registry k with
  | Some (C c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ k ^ " registered as another type")
  | None ->
      let c = { count = 0 } in
      Hashtbl.replace registry k (C c);
      c

let incr c = if !on then c.count <- c.count + 1
let incr_by c n = if !on then c.count <- c.count + n
let value c = c.count

let gauge ?label name =
  let k = key ?label name in
  match Hashtbl.find_opt registry k with
  | Some (G g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ k ^ " registered as another type")
  | None ->
      let g = { gval = 0.0; gset = false } in
      Hashtbl.replace registry k (G g);
      g

let set_gauge g v =
  if !on then begin
    g.gval <- v;
    g.gset <- true
  end

let gauge_value g = if g.gset then Some g.gval else None

let histogram ?label name =
  let k = key ?label name in
  match Hashtbl.find_opt registry k with
  | Some (H h) -> h
  | Some _ ->
      invalid_arg ("Metrics.histogram: " ^ k ^ " registered as another type")
  | None ->
      let h =
        {
          hcount = 0;
          hsum = 0.0;
          hmin = Float.infinity;
          hmax = Float.neg_infinity;
          buckets = Array.make hist_buckets 0;
        }
      in
      Hashtbl.replace registry k (H h);
      h

let bucket_of v =
  if v < 1.0 then 0
  else min (hist_buckets - 1) (int_of_float (Float.log2 v))

let observe h v =
  if !on then begin
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1
  end

let observe_ns h ns = observe h (float_of_int ns)

let timed h f =
  if !on then begin
    let t0 = Clock.now_ns () in
    let r = f () in
    observe_ns h (Clock.elapsed_ns t0);
    r
  end
  else f ()

let hist_count h = h.hcount
let hist_sum h = h.hsum

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.count <- 0
      | G g ->
          g.gval <- 0.0;
          g.gset <- false
      | H h ->
          h.hcount <- 0;
          h.hsum <- 0.0;
          h.hmin <- Float.infinity;
          h.hmax <- Float.neg_infinity;
          Array.fill h.buckets 0 hist_buckets 0)
    registry

let snapshot () =
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  Hashtbl.iter
    (fun k m ->
      match m with
      | C c -> if c.count <> 0 then counters := (k, Json.Int c.count) :: !counters
      | G g -> if g.gset then gauges := (k, Json.Float g.gval) :: !gauges
      | H h ->
          if h.hcount > 0 then begin
            let buckets = ref [] in
            for b = hist_buckets - 1 downto 0 do
              if h.buckets.(b) > 0 then
                buckets := Json.List [ Json.Int b; Json.Int h.buckets.(b) ] :: !buckets
            done;
            hists :=
              ( k,
                Json.Obj
                  [
                    ("count", Json.Int h.hcount);
                    ("sum", Json.Float h.hsum);
                    ("min", Json.Float h.hmin);
                    ("max", Json.Float h.hmax);
                    ("log2_buckets", Json.List !buckets);
                  ] )
              :: !hists
          end)
    registry;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Json.Obj
    [
      ("counters", Json.Obj (sorted !counters));
      ("gauges", Json.Obj (sorted !gauges));
      ("histograms", Json.Obj (sorted !hists));
    ]
