let run_summary ?(extra = []) () =
  Json.Obj
    (("schema", Json.String "matprod.run.v1")
     :: extra
    @ [
        ("metrics", Metrics.snapshot ());
        ("spans", Json.Int (Trace.span_count ()));
      ])

let print_run_summary ?extra () =
  print_endline (Json.to_string (run_summary ?extra ()))

let write_trace = Trace.write_jsonl
let write_chrome = Trace.write_chrome

let pp_metrics ppf () =
  match Metrics.snapshot () with
  | Json.Obj sections ->
      Format.fprintf ppf "@[<v>";
      List.iter
        (fun (section, fields) ->
          match fields with
          | Json.Obj [] -> ()
          | Json.Obj kvs ->
              Format.fprintf ppf "%s:@," section;
              List.iter
                (fun (k, v) ->
                  match v with
                  | Json.Obj h ->
                      let get f =
                        match List.assoc_opt f h with
                        | Some (Json.Int n) -> float_of_int n
                        | Some (Json.Float x) -> x
                        | _ -> 0.0
                      in
                      Format.fprintf ppf
                        "  %-40s count %.0f  sum %.3g  min %.3g  max %.3g@," k
                        (get "count") (get "sum") (get "min") (get "max")
                  | Json.Int n -> Format.fprintf ppf "  %-40s %d@," k n
                  | Json.Float x -> Format.fprintf ppf "  %-40s %g@," k x
                  | _ -> ())
                kvs
          | _ -> ())
        sections;
      Format.fprintf ppf "@]"
  | _ -> ()

let pp_spans ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (sp : Trace.span) ->
      let indent = String.make (2 * sp.Trace.depth) ' ' in
      let attrs =
        match sp.Trace.attrs with
        | [] -> ""
        | a -> " " ^ Json.to_string (Json.Obj a)
      in
      if sp.Trace.dur_ns = 0 then
        Format.fprintf ppf "%s* %s%s@," indent sp.Trace.name attrs
      else
        Format.fprintf ppf "%s%-32s %9.3f ms%s@," indent sp.Trace.name
          (float_of_int sp.Trace.dur_ns /. 1e6)
          attrs)
    (Trace.spans ());
  Format.fprintf ppf "@]"
