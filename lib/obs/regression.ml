type tolerance = Exact | Rel of float | Ignore

type mismatch = {
  row : int;
  mkey : string;
  baseline : float;
  current : float;
  delta_rel : float;
  tol : tolerance;
}

type result = {
  experiment : string;
  compared : int;
  ignored : int;
  failures : mismatch list;
  errors : string list;
}

let ok r = r.failures = [] && r.errors = []

(* Timing-derived fields vary run to run and machine to machine; everything
   else in a bench row is a deterministic function of the seed and must
   match the baseline exactly. *)
let default_ignored_fragments =
  [ "_ns"; "_ms"; "per_sec"; "speedup"; "elapsed"; "rate"; "gated"; "wall" ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let classify key =
  if List.exists (fun frag -> contains ~sub:frag key) default_ignored_fragments
  then Ignore
  else Exact

let tolerance_for ~overrides key =
  match List.assoc_opt key overrides with
  | Some t -> t
  | None -> classify key

let number_of = function
  | Json.Int n -> Some (float_of_int n)
  | Json.Float f -> Some f
  | Json.Bool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let rel_delta ~baseline ~current =
  if baseline = current then 0.0
  else if baseline = 0.0 then Float.infinity
  else Float.abs ((current -. baseline) /. baseline)

let exact_slack = 1e-9

let compare_field ~overrides ~row k bv cv acc =
  let compared, ignored, failures, errors = acc in
  match (bv, cv) with
  | Json.String a, Json.String b ->
      if a = b then (compared + 1, ignored, failures, errors)
      else
        ( compared,
          ignored,
          failures,
          Printf.sprintf "row %d: %s is %S in baseline but %S now" row k a b
          :: errors )
  | Json.Null, Json.Null -> (compared, ignored + 1, failures, errors)
  | _ -> (
      match (number_of bv, number_of cv) with
      | Some baseline, Some current -> (
          match tolerance_for ~overrides k with
          | Ignore -> (compared, ignored + 1, failures, errors)
          | tol ->
              let allowed =
                match tol with
                | Exact -> exact_slack
                | Rel r -> r
                | Ignore -> assert false
              in
              let delta_rel = rel_delta ~baseline ~current in
              if delta_rel <= allowed then
                (compared + 1, ignored, failures, errors)
              else
                ( compared + 1,
                  ignored,
                  { row; mkey = k; baseline; current; delta_rel; tol }
                  :: failures,
                  errors ))
      | _ ->
          ( compared,
            ignored,
            failures,
            Printf.sprintf "row %d: %s changed JSON type" row k :: errors ))

let row_fields row = function
  | Json.Obj kvs -> Ok kvs
  | _ -> Error (Printf.sprintf "row %d: not an object" row)

let compare_row ~overrides ~row base cur acc =
  match (row_fields row base, row_fields row cur) with
  | Error e, _ | _, Error e ->
      let compared, ignored, failures, errors = acc in
      (compared, ignored, failures, e :: errors)
  | Ok bkvs, Ok ckvs ->
      let acc =
        List.fold_left
          (fun acc (k, bv) ->
            match List.assoc_opt k ckvs with
            | Some cv -> compare_field ~overrides ~row k bv cv acc
            | None ->
                let compared, ignored, failures, errors = acc in
                ( compared,
                  ignored,
                  failures,
                  Printf.sprintf
                    "row %d: %s missing from current run (refresh baselines?)"
                    row k
                  :: errors ))
          acc bkvs
      in
      List.fold_left
        (fun acc (k, _) ->
          if List.mem_assoc k bkvs then acc
          else
            let compared, ignored, failures, errors = acc in
            ( compared,
              ignored,
              failures,
              Printf.sprintf
                "row %d: new field %s not in baseline (refresh baselines?)" row
                k
              :: errors ))
        acc ckvs

let schema = "matprod.bench.v1"

let str_member k doc =
  match Json.member k doc with Some (Json.String s) -> Some s | _ -> None

let rows_member doc =
  match Json.member "rows" doc with Some (Json.List l) -> Some l | _ -> None

let compare_docs ?(overrides = []) ~baseline ~current () =
  let experiment =
    match str_member "experiment" baseline with Some e -> e | None -> "?"
  in
  let errors = ref [] in
  if str_member "schema" baseline <> Some schema then
    errors := "baseline is not a matprod.bench.v1 document" :: !errors;
  if str_member "schema" current <> Some schema then
    errors := "current run is not a matprod.bench.v1 document" :: !errors;
  if
    !errors = []
    && str_member "experiment" current <> str_member "experiment" baseline
  then errors := "experiment tag differs from baseline" :: !errors;
  match (rows_member baseline, rows_member current) with
  | _ when !errors <> [] ->
      { experiment; compared = 0; ignored = 0; failures = []; errors = !errors }
  | None, _ | _, None ->
      {
        experiment;
        compared = 0;
        ignored = 0;
        failures = [];
        errors = [ "missing rows array" ];
      }
  | Some brows, Some crows when List.length brows <> List.length crows ->
      {
        experiment;
        compared = 0;
        ignored = 0;
        failures = [];
        errors =
          [
            Printf.sprintf "row count changed: baseline %d, current %d"
              (List.length brows) (List.length crows);
          ];
      }
  | Some brows, Some crows ->
      let compared, ignored, failures, errs =
        List.fold_left2
          (fun (acc, row) base cur ->
            (compare_row ~overrides ~row base cur acc, row + 1))
          ((0, 0, [], []), 0)
          brows crows
        |> fst
      in
      {
        experiment;
        compared;
        ignored;
        failures = List.rev failures;
        errors = List.rev errs;
      }

let pp_tolerance ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Rel r -> Format.fprintf ppf "rel %.3g" r
  | Ignore -> Format.fprintf ppf "ignored"

let pp_result ppf r =
  if ok r then
    Format.fprintf ppf "%-4s OK: %d metrics match baseline, %d timing ignored"
      r.experiment r.compared r.ignored
  else begin
    Format.fprintf ppf "%-4s FAIL:" r.experiment;
    List.iter
      (fun m ->
        Format.fprintf ppf
          "@,  row %d %s: baseline %g, current %g (drift %.2f%%, tolerance %a)"
          m.row m.mkey m.baseline m.current (100.0 *. m.delta_rel) pp_tolerance
          m.tol)
      r.failures;
    List.iter (fun e -> Format.fprintf ppf "@,  %s" e) r.errors
  end
