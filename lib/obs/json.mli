(** Minimal JSON tree, serializer and parser.

    The opam switch deliberately carries no JSON library; everything the
    observability layer exports (run summaries, trace lines, bench files)
    goes through this module, so there is exactly one place that defines
    what "valid JSON" means for the repo. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering. Non-finite floats serialize as [null] so the
    output is always standard JSON. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}, on a formatter. *)

val of_string : string -> t
(** Strict parser for the subset {!to_string} emits (standard JSON without
    unicode escapes beyond [\uXXXX] pass-through). Raises [Failure] on
    malformed input or trailing bytes. Numbers with a ['.'], exponent, or
    out-of-int range parse as [Float]. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on missing key or
    non-object. *)
