type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serializer *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest representation that round-trips; always a valid JSON
       number (never "1." or "nan"). *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.12g" f in
    let s = if float_of_string shorter = f then shorter else s in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parser *)

type state = { src : string; mutable pos : int }

let fail st msg =
  failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg st.pos)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (
    st.pos <- st.pos + n;
    v)
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.src then fail st "short \\u";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u"
            in
            (* ASCII-range escapes decode; others keep their escaped form
               (the serializer never emits them for non-ASCII anyway). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf ("\\u" ^ hex);
            st.pos <- st.pos + 5;
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  if s = "" then fail st "expected number";
  let is_float =
    String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  in
  if is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> Float (float_of_string s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing bytes";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
