(** Monotonic nanosecond clock for spans and timing histograms.

    Backed by [Unix.gettimeofday] clamped to be non-decreasing (the switch
    carries no mtime-style library), which is monotonic enough for
    single-process duration measurement.

    Setting the environment variable [MATPROD_OBS_FAKE_CLOCK] (to any
    value) before the first call freezes the clock at 0, making every
    exported duration deterministic — golden tests of the JSON schemas
    rely on this. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary epoch; never decreases. *)

val elapsed_ns : int64 -> int
(** [elapsed_ns t0] is [now_ns () - t0] as a non-negative [int]. *)

val faked : unit -> bool
(** Whether the deterministic fake clock is active. *)
