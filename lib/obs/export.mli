(** Exporters over the tracer and the metrics registry.

    Three output shapes (docs/OBSERVABILITY.md):
    - a human pretty-printer for metrics and the span tree;
    - JSON-lines trace files ({!Trace.write_jsonl}, re-exported here);
    - a single-object JSON run summary combining caller-supplied fields
      with the metrics snapshot and span statistics. *)

val run_summary : ?extra:(string * Json.t) list -> unit -> Json.t
(** [{"schema": "matprod.run.v1", ...extra, "metrics": ..., "spans": n}].
    The [extra] association list is spliced in after the schema tag. *)

val print_run_summary : ?extra:(string * Json.t) list -> unit -> unit
(** {!run_summary} on one line to stdout. *)

val write_trace : string -> unit
(** Alias for {!Trace.write_jsonl}. *)

val write_chrome : string -> unit
(** Alias for {!Trace.write_chrome} (Perfetto-loadable trace-event JSON). *)

val pp_metrics : Format.formatter -> unit -> unit
(** Pretty table of all non-zero metrics, sorted by name. *)

val pp_spans : Format.formatter -> unit -> unit
(** Indented span tree (depth = indentation) with durations. *)
