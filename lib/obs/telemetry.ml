type span_stat = {
  sname : string;
  count : int;
  total_ns : float;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
}

type source = Doc of Json.t | Spans of span_stat list

(* Exact percentile over a sorted sample array: the ceil(q*n)-th order
   statistic, the discrete analogue of Metrics.percentile_of. *)
let percentile_exact sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let aggregate durations =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, dur) ->
      let prev = try Hashtbl.find tbl name with Not_found -> [] in
      Hashtbl.replace tbl name (dur :: prev))
    durations;
  let stats =
    Hashtbl.fold
      (fun sname durs acc ->
        let arr = Array.of_list durs in
        Array.sort compare arr;
        {
          sname;
          count = Array.length arr;
          total_ns = Array.fold_left ( +. ) 0.0 arr;
          p50_ns = percentile_exact arr 0.50;
          p90_ns = percentile_exact arr 0.90;
          p99_ns = percentile_exact arr 0.99;
        }
        :: acc)
      tbl []
  in
  List.sort (fun a b -> compare (b.total_ns, b.sname) (a.total_ns, a.sname)) stats

(* --- loading ----------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let span_of_line line =
  let j = Json.of_string line in
  match (Json.member "name" j, Json.member "dur_ns" j) with
  | Some (Json.String name), Some (Json.Int dur) -> (name, float_of_int dur)
  | Some (Json.String name), _ -> (name, 0.0)
  | _ -> failwith "trace line has no name"

let spans_of_jsonl contents =
  String.split_on_char '\n' contents
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map span_of_line

let spans_of_chrome doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List events) ->
      List.filter_map
        (fun ev ->
          match Json.member "name" ev with
          | Some (Json.String name) ->
              let dur_ns =
                match Json.member "dur" ev with
                | Some (Json.Float us) -> us *. 1e3
                | Some (Json.Int us) -> float_of_int us *. 1e3
                | _ -> 0.0
              in
              Some (name, dur_ns)
          | _ -> None)
        events
  | _ -> failwith "no traceEvents"

let load_file path =
  match read_file path with
  | exception Sys_error e -> Error e
  | contents -> (
      match Json.of_string contents with
      | doc when Json.member "traceEvents" doc <> None ->
          Ok (Spans (aggregate (spans_of_chrome doc)))
      | doc -> Ok (Doc doc)
      | exception Failure _ -> (
          (* Not one JSON document: try JSONL trace lines. *)
          match spans_of_jsonl contents with
          | durations -> Ok (Spans (aggregate durations))
          | exception Failure e ->
              Error
                (Printf.sprintf
                   "%s: neither a JSON document nor a JSONL trace (%s)" path e)))

(* --- rendering --------------------------------------------------------- *)

let ms ns = ns /. 1e6

let pp_span_stats ppf stats =
  Format.fprintf ppf "  %-34s %7s %12s %10s %10s %10s@," "span" "count"
    "total ms" "p50 ms" "p90 ms" "p99 ms";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-34s %7d %12.3f %10.4f %10.4f %10.4f@," s.sname
        s.count (ms s.total_ns) (ms s.p50_ns) (ms s.p90_ns) (ms s.p99_ns))
    stats

let num = function
  | Some (Json.Int n) -> float_of_int n
  | Some (Json.Float f) -> f
  | _ -> 0.0

let hist_percentiles entry =
  match Json.member "p50" entry with
  | Some _ ->
      ( num (Json.member "p50" entry),
        num (Json.member "p90" entry),
        num (Json.member "p99" entry) )
  | None ->
      (* Older snapshots carry only buckets: estimate here instead. *)
      let buckets =
        match Json.member "log2_buckets" entry with
        | Some (Json.List l) ->
            List.filter_map
              (function
                | Json.List [ Json.Int b; Json.Int n ] -> Some (b, n)
                | _ -> None)
              l
        | _ -> []
      in
      let count = int_of_float (num (Json.member "count" entry)) in
      let mn = num (Json.member "min" entry)
      and mx = num (Json.member "max" entry) in
      let pct q = Metrics.percentile_of ~count ~min:mn ~max:mx ~buckets q in
      (pct 0.50, pct 0.90, pct 0.99)

let rec pp_metrics_section ppf ~prefix metrics =
  (match Json.member "histograms" metrics with
  | Some (Json.Obj hists) when hists <> [] ->
      List.iter
        (fun (k, entry) ->
          let p50, p90, p99 = hist_percentiles entry in
          Format.fprintf ppf "  %-34s %7.0f %12.3f %10.4f %10.4f %10.4f@,"
            (prefix ^ k)
            (num (Json.member "count" entry))
            (ms (num (Json.member "sum" entry)))
            (ms p50) (ms p90) (ms p99))
        hists
  | _ -> ());
  match Json.member "scopes" metrics with
  | Some (Json.Obj scopes) ->
      List.iter
        (fun (name, child) ->
          pp_metrics_section ppf ~prefix:(prefix ^ name ^ "/") child)
        scopes
  | _ -> ()

let pp_counters ppf ~keys metrics =
  match Json.member "counters" metrics with
  | Some (Json.Obj kvs) ->
      List.iter
        (fun k ->
          match List.assoc_opt k kvs with
          | Some (Json.Int n) -> Format.fprintf ppf "  %-34s %d@," k n
          | _ -> ())
        keys
  | _ -> ()

let pp_doc ppf doc =
  (match Json.member "schema" doc with
  | Some (Json.String s) -> Format.fprintf ppf "  schema: %s@," s
  | _ -> ());
  (match Json.member "experiment" doc with
  | Some (Json.String e) -> Format.fprintf ppf "  experiment: %s@," e
  | _ -> ());
  (match Json.member "claim" doc with
  | Some (Json.String c) -> Format.fprintf ppf "  claim: %s@," c
  | _ -> ());
  (match Json.member "rows" doc with
  | Some (Json.List rows) ->
      Format.fprintf ppf "  rows: %d@," (List.length rows)
  | _ -> ());
  match Json.member "metrics" doc with
  | Some metrics ->
      pp_counters ppf
        ~keys:
          [
            "bits_sent_total";
            "rounds_total";
            "messages_sent";
            "telemetry_bytes";
          ]
        metrics;
      Format.fprintf ppf "  %-34s %7s %12s %10s %10s %10s@," "histogram"
        "count" "sum ms" "p50 ms" "p90 ms" "p99 ms";
      pp_metrics_section ppf ~prefix:"" metrics
  | None -> ()

let pp_report ppf (path, source) =
  Format.fprintf ppf "@[<v>== %s ==@," path;
  (match source with
  | Spans stats -> pp_span_stats ppf stats
  | Doc doc -> pp_doc ppf doc);
  Format.fprintf ppf "@]"
