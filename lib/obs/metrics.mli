(** Process-wide metrics registry: counters, gauges, and log-scale
    histograms.

    The registry is disabled by default so uninstrumented callers (and hot
    sketch loops) pay only a boolean test. Handles are interned by
    [name{label}] — asking twice for the same metric returns the same
    handle, and {!reset} zeroes values without invalidating handles, so
    modules may hold handles at top level.

    Naming scheme (see docs/OBSERVABILITY.md): snake_case metric names,
    optional [~label] for a per-site breakdown, [_ns] suffix for
    nanosecond timing histograms. Core metrics emitted by the stack:
    [bytes_sent{label}], [messages_sent], [hash_evals], [prng_draws],
    [sketch_cells_touched], [sketch_build_ns{kind}],
    [sketch_query_ns{kind}], [codec_encode_ns], [codec_decode_ns]. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val counter : ?label:string -> string -> counter
(** Find-or-create. The registry key is [name] or ["name{label}"]. *)

val incr : counter -> unit
val incr_by : counter -> int -> unit
val value : counter -> int

val gauge : ?label:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float option
(** [None] until the first (enabled) [set_gauge]. *)

val histogram : ?label:string -> string -> histogram

val observe : histogram -> float -> unit
(** Record one sample. Buckets are log-scale: bucket [b] counts samples in
    [[2^b, 2^(b+1))], with everything below 1 in bucket 0. *)

val observe_ns : histogram -> int -> unit

val timed : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall time in nanoseconds; when the
    registry is disabled this is just the call, no clock reads. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val reset : unit -> unit
(** Zero every registered metric; existing handles stay valid. *)

val snapshot : unit -> Json.t
(** Deterministically ordered (sorted by key) JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}].
    Zero-valued counters and never-set gauges are omitted. *)
