(** Scoped metrics: counters, gauges, and log-scale histograms recorded
    into a tree of scopes.

    Disabled by default so uninstrumented callers (and hot sketch loops)
    pay only a boolean test. A handle names a metric ([name{label}]); the
    cell it updates lives in the {e current} scope — the root, unless the
    caller is running under {!in_scope} (per party, per supervisor
    attempt, per engine group). Handles memoize their last resolution, so
    repeated increments in one scope cost one generation check; {!reset}
    zeroes the root and drops child scopes without invalidating handles,
    so modules may hold handles at top level.

    Naming scheme (see docs/OBSERVABILITY.md): snake_case metric names,
    optional [~label] for a per-site breakdown, [_ns] suffix for
    nanosecond timing histograms. Core metrics emitted by the stack:
    [bytes_sent{label}], [messages_sent], [telemetry_bytes],
    [hash_evals], [prng_draws], [sketch_cells_touched],
    [sketch_build_ns{kind}], [sketch_query_ns{kind}], [codec_encode_ns],
    [codec_decode_ns]. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val in_scope : string -> (unit -> 'a) -> 'a
(** Run the thunk with metrics recording into the named child of the
    current scope (created on first use; re-entering a name reuses its
    scope). Nestable and exception-safe. A no-op when disabled. *)

val counter : ?label:string -> string -> counter
(** A handle on metric [name] or ["name{label}"]; the underlying cell is
    per-scope, found-or-created on first use in each scope. *)

val incr : counter -> unit
val incr_by : counter -> int -> unit

val value : counter -> int
(** The counter's value in the {e current} scope. *)

val total : ?label:string -> string -> int
(** Sum of the named counter over every scope in the tree. *)

val gauge : ?label:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float option
(** [None] until the first (enabled) [set_gauge] in the current scope. *)

val histogram : ?label:string -> string -> histogram

val observe : histogram -> float -> unit
(** Record one sample. Buckets are log-scale: bucket [b] counts samples in
    [[2^b, 2^(b+1))], with everything below 1 in bucket 0. *)

val observe_ns : histogram -> int -> unit

val timed : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall time in nanoseconds; when the
    registry is disabled this is just the call, no clock reads. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] estimates the q-quantile (q in [[0,1]]) of the
    current scope's samples from the log2 buckets: linear interpolation
    inside the bucket holding the ceil(q*count)-th sample, clamped to the
    observed [[min, max]]. Monotone in q; exact when all samples are
    equal; 0 when empty. Raises [Invalid_argument] for q outside [0,1]. *)

val percentile_of :
  count:int ->
  min:float ->
  max:float ->
  buckets:(int * int) list ->
  float ->
  float
(** The same estimator on raw histogram data: [buckets] is the ascending
    [(bucket, count)] list as exported under ["log2_buckets"]. Used by
    [matprod report] to summarize persisted snapshots. *)

val reset : unit -> unit
(** Zero every root metric and drop all child scopes; existing handles
    stay valid. *)

val snapshot : unit -> Json.t
(** Deterministically ordered (sorted by key) JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}], plus a
    ["scopes"] object (children in creation order, same shape,
    recursive) when child scopes exist. Zero-valued counters and
    never-set gauges are omitted; histograms carry [p50]/[p90]/[p99]
    estimates. *)
