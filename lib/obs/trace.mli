(** Span-based tracer with cross-link trace context.

    Disabled by default: {!with_span} then costs one boolean test and a
    direct call of the thunk, so instrumented hot paths pay ~nothing.
    When enabled, spans nest via a stack (each records its parent id and
    depth) and are buffered in memory until an exporter or {!reset}.

    Every span also carries {b stable} ids: a [trace_id] derived from the
    ctx seed via splitmix64, and a [sid] mixing the trace id with the
    span's start ordinal. Two runs at the same seed produce identical ids
    span for span, so traces from different processes (or a crashed run
    and its resumption) can be joined offline.

    Span names are dot-separated [component.phase] (see
    docs/OBSERVABILITY.md); per-message channel events reuse the
    transcript label as the ["label"] attribute. *)

type context = { trace_id : int64; span_id : int64 }
(** The active trace and innermost open span, as carried across links. *)

type span = {
  id : int;  (** 1-based, in start order. *)
  sid : int64;  (** Stable span id: [splitmix64 (trace_id lxor id)]. *)
  trace_id : int64;  (** Stable trace id; [0L] outside {!with_trace}. *)
  parent : int option;
  depth : int;
  name : string;
  instant : bool;  (** [true] for {!event} records. *)
  attrs : (string * Json.t) list;
  start_ns : int64;
  dur_ns : int;  (** 0 for instant events. *)
  alloc_minor_w : int;
      (** Minor-heap words allocated while the span was open
          ([Gc.counters] delta — the precise O(1) counters); 0 under the
          fake clock. *)
  alloc_major_w : int;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val splitmix64 : int64 -> int64
(** The splitmix64 finalizer used for all stable-id derivation. *)

val trace_id_of_seed : int -> int64
val trace_id : unit -> int64
(** The active trace id ([0L] when no {!with_trace} is in scope). *)

val hex_id : int64 -> string
(** 16-digit zero-padded lowercase hex, the wire/JSON form of ids. *)

val with_trace : seed:int -> (unit -> 'a) -> 'a
(** Run the thunk with the trace id derived from [seed] active. Nestable;
    restores the previous trace id on exit (exception-safe). A no-op when
    tracing is disabled. *)

val current_context : unit -> context
(** Trace id plus the stable id of the innermost open span ([0L] at top
    level). *)

val context_frame_length : int
(** Byte length of a serialized context frame (18). *)

val context_frame : unit -> string
(** The current context as an out-of-band wire frame: ["TC"] magic then
    trace id and span id, little-endian. [""] when tracing is disabled —
    callers account its length in the [telemetry_bytes] counter, never in
    the protocol transcript. *)

val parse_context_frame : string -> context option

val with_span : ?attrs:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a fresh span. Exception-safe: the span closes
    (and records its duration and allocation deltas) even if the thunk
    raises. *)

val event : ?attrs:(string * Json.t) list -> name:string -> unit -> unit
(** An instant (zero-duration) span at the current nesting level. *)

val spans : unit -> span list
(** Completed spans in start order. An open enclosing span is not included
    until it finishes. *)

val span_count : unit -> int

val reset : unit -> unit
(** Drop buffered spans (open spans on the stack survive and still record
    when they close). When no span is open the id counter also rewinds,
    so a fresh gallery at the same seed reproduces the same stable
    sids. *)

val to_json : span -> Json.t

val write_jsonl : string -> unit
(** Write buffered spans, one JSON object per line, to a file. *)

val chrome_json : unit -> Json.t

val write_chrome : string -> unit
(** Write buffered spans as a Chrome trace-event JSON document (loadable
    in Perfetto / chrome://tracing): complete events (ph ["X"]) for spans,
    instants (ph ["i"]) for events, timestamps in microseconds, stable ids
    and allocation deltas under ["args"]. *)
