(** Span-based tracer.

    Disabled by default: {!with_span} then costs one boolean test and a
    direct call of the thunk, so instrumented hot paths pay ~nothing.
    When enabled, spans nest via a stack (each records its parent id and
    depth) and are buffered in memory until {!write_jsonl} or {!reset}.

    Span names are dot-separated [component.phase] (see
    docs/OBSERVABILITY.md); per-message channel events reuse the
    transcript label as the ["label"] attribute. *)

type span = {
  id : int;  (** 1-based, in start order. *)
  parent : int option;
  depth : int;
  name : string;
  attrs : (string * Json.t) list;
  start_ns : int64;
  dur_ns : int;  (** 0 for instant events. *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val with_span : ?attrs:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a fresh span. Exception-safe: the span closes
    (and records its duration) even if the thunk raises. *)

val event : ?attrs:(string * Json.t) list -> name:string -> unit -> unit
(** An instant (zero-duration) span at the current nesting level. *)

val spans : unit -> span list
(** Completed spans in start order. An open enclosing span is not included
    until it finishes. *)

val span_count : unit -> int

val reset : unit -> unit
(** Drop buffered spans (open spans on the stack survive and still record
    when they close). *)

val to_json : span -> Json.t

val write_jsonl : string -> unit
(** Write buffered spans, one JSON object per line, to a file. *)
