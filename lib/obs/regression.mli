(** Bench-regression comparator: diff a [matprod.bench.v1] document
    against a committed baseline with per-metric tolerances.

    Rows are matched positionally (bench tables are deterministic in
    shape); string fields are identity and must match, numeric fields are
    checked against a tolerance chosen by key: timing-derived keys
    (substrings [_ns], [_ms], [per_sec], [speedup], [elapsed], [rate],
    [gated], [wall]) are ignored by default, everything else — bits,
    rounds, counts, errors — is a deterministic function of the seed and
    must match exactly. Callers can override per key, e.g. to gate a
    speedup with a loose relative tolerance. *)

type tolerance = Exact | Rel of float | Ignore

type mismatch = {
  row : int;
  mkey : string;
  baseline : float;
  current : float;
  delta_rel : float;  (** |current - baseline| / |baseline|. *)
  tol : tolerance;
}

type result = {
  experiment : string;
  compared : int;  (** Fields checked against a tolerance (or identity). *)
  ignored : int;  (** Fields skipped as timing noise. *)
  failures : mismatch list;
  errors : string list;  (** Structural drift: schema, row count, fields. *)
}

val ok : result -> bool

val classify : string -> tolerance
(** The default tolerance for a metric key. *)

val compare_docs :
  ?overrides:(string * tolerance) list ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
(** One line when ok; a multi-line failure report otherwise. *)
