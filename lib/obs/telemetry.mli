(** Offline aggregation for [matprod report]: turn trace files (JSONL or
    Chrome trace-event) and bench/run JSON documents into per-phase
    percentile summaries. *)

type span_stat = {
  sname : string;
  count : int;
  total_ns : float;
  p50_ns : float;  (** Exact percentiles over the file's samples. *)
  p90_ns : float;
  p99_ns : float;
}

type source =
  | Doc of Json.t
      (** A single JSON document: [matprod.bench.v1] sidecar or
          [matprod.run.v1] summary. *)
  | Spans of span_stat list  (** An aggregated trace file. *)

val percentile_exact : float array -> float -> float
(** [percentile_exact sorted q] is the ceil(q*n)-th order statistic of an
    ascending-sorted array (0 when empty). *)

val aggregate : (string * float) list -> span_stat list
(** Group [(name, dur_ns)] samples by name; stats sorted by total time
    descending. *)

val load_file : string -> (source, string) result
(** Sniff a file: a JSON document with [traceEvents] loads as a Chrome
    trace, any other JSON document as {!Doc}, anything else is tried as a
    JSONL trace. *)

val pp_report : Format.formatter -> string * source -> unit
(** Render one file's summary (header line plus aligned table). *)
