type context = { trace_id : int64; span_id : int64 }

type span = {
  id : int;
  sid : int64;
  trace_id : int64;
  parent : int option;
  depth : int;
  name : string;
  instant : bool;
  attrs : (string * Json.t) list;
  start_ns : int64;
  dur_ns : int;
  alloc_minor_w : int;
  alloc_major_w : int;
}

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* --- stable ids ------------------------------------------------------ *)

(* splitmix64: the standard finalizer, so trace/span ids derived from a
   ctx seed are stable across runs, platforms, and processes. *)
let splitmix64 z =
  let open Int64 in
  let z = add z 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let cur_trace = ref 0L
let trace_id_of_seed seed = splitmix64 (Int64.of_int seed)
let trace_id () = !cur_trace
let hex_id id = Printf.sprintf "%016Lx" id

(* Span ids mix the active trace id with the span's start ordinal, so two
   runs at the same seed produce identical ids span for span. *)
let stable_id tid n = splitmix64 (Int64.logxor tid (Int64.of_int n))

let with_trace ~seed f =
  if not !on then f ()
  else begin
    let old = !cur_trace in
    cur_trace := trace_id_of_seed seed;
    Fun.protect ~finally:(fun () -> cur_trace := old) f
  end

let next_id = ref 0
let stack : (int * int64 * int) list ref = ref []
(* (id, sid, depth) of open spans *)

let completed : span list ref = ref []

let fresh_id () =
  incr next_id;
  !next_id

let current_parent () =
  match !stack with [] -> (None, 0) | (id, _, d) :: _ -> (Some id, d + 1)

let current_context () =
  match !stack with
  | [] -> { trace_id = !cur_trace; span_id = 0L }
  | (_, sid, _) :: _ -> { trace_id = !cur_trace; span_id = sid }

(* --- out-of-band context frames -------------------------------------- *)

let context_frame_length = 18

let context_frame () =
  if not !on then ""
  else begin
    let c = current_context () in
    let buf = Buffer.create context_frame_length in
    Buffer.add_string buf "TC";
    Buffer.add_int64_le buf c.trace_id;
    Buffer.add_int64_le buf c.span_id;
    Buffer.contents buf
  end

let parse_context_frame s =
  if String.length s <> context_frame_length || String.sub s 0 2 <> "TC" then
    None
  else
    Some
      {
        trace_id = String.get_int64_le s 2;
        span_id = String.get_int64_le s 10;
      }

(* --- recording ------------------------------------------------------- *)

let record sp = completed := sp :: !completed

(* Profiling hooks are allocation-counter deltas: cheap (no heap walk)
   but real allocation words. Gc.counters is used rather than
   Gc.quick_stat because in native code the latter's word counts update
   only at GC slices, reading as 0 across short spans. Under the fake
   clock deltas are forced to zero so golden traces stay
   byte-deterministic. *)
let profile () = not (Clock.faked ())

let with_span ?(attrs = []) ~name f =
  if not !on then f ()
  else begin
    let id = fresh_id () in
    let tid = !cur_trace in
    let sid = stable_id tid id in
    let parent, depth = current_parent () in
    let start_ns = Clock.now_ns () in
    let prof = profile () in
    let minor0, major0 =
      if prof then
        let minor, _, major = Gc.counters () in
        (minor, major)
      else (0.0, 0.0)
    in
    stack := (id, sid, depth) :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | (id', _, _) :: rest when id' = id -> stack := rest
        | _ -> ());
        let alloc_minor_w, alloc_major_w =
          if prof then
            let minor, _, major = Gc.counters () in
            (int_of_float (minor -. minor0), int_of_float (major -. major0))
          else (0, 0)
        in
        record
          {
            id;
            sid;
            trace_id = tid;
            parent;
            depth;
            name;
            instant = false;
            attrs;
            start_ns;
            dur_ns = Clock.elapsed_ns start_ns;
            alloc_minor_w;
            alloc_major_w;
          })
      f
  end

let event ?(attrs = []) ~name () =
  if !on then begin
    let id = fresh_id () in
    let tid = !cur_trace in
    let parent, depth = current_parent () in
    record
      {
        id;
        sid = stable_id tid id;
        trace_id = tid;
        parent;
        depth;
        name;
        instant = true;
        attrs;
        start_ns = Clock.now_ns ();
        dur_ns = 0;
        alloc_minor_w = 0;
        alloc_major_w = 0;
      }
  end

let spans () =
  (* ids are assigned at span start, so sorting by id restores start
     order even though spans complete innermost-first. *)
  List.sort (fun a b -> compare a.id b.id) !completed

let span_count () = List.length !completed

let reset () =
  completed := [];
  (* Rewind ids so a fresh gallery at the same seed reproduces the same
     stable sids; keep counting while spans are open to keep ids unique. *)
  if !stack = [] then next_id := 0

let alloc_fields sp =
  if sp.alloc_minor_w = 0 && sp.alloc_major_w = 0 then []
  else
    [
      ("alloc_minor_w", Json.Int sp.alloc_minor_w);
      ("alloc_major_w", Json.Int sp.alloc_major_w);
    ]

let to_json sp =
  Json.Obj
    ([
       ("id", Json.Int sp.id);
       ("sid", Json.String (hex_id sp.sid));
       ("trace", Json.String (hex_id sp.trace_id));
       ( "parent",
         match sp.parent with None -> Json.Null | Some p -> Json.Int p );
       ("depth", Json.Int sp.depth);
       ("name", Json.String sp.name);
       ("start_ns", Json.Int (Int64.to_int sp.start_ns));
       ("dur_ns", Json.Int sp.dur_ns);
     ]
    @ alloc_fields sp
    @ [ ("attrs", Json.Obj sp.attrs) ])

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun sp ->
          output_string oc (Json.to_string (to_json sp));
          output_char oc '\n')
        (spans ()))

(* --- Chrome trace-event export (Perfetto / chrome://tracing) --------- *)

let us_of_ns ns = Int64.to_float ns /. 1e3

let chrome_event sp =
  let args =
    [ ("sid", Json.String (hex_id sp.sid)) ]
    @ alloc_fields sp @ sp.attrs
  in
  let base =
    [
      ("name", Json.String sp.name);
      ("cat", Json.String "matprod");
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("ts", Json.Float (us_of_ns sp.start_ns));
      ("id", Json.String (hex_id sp.trace_id));
    ]
  in
  Json.Obj
    (base
    @ (if sp.instant then [ ("ph", Json.String "i"); ("s", Json.String "t") ]
       else
         [
           ("ph", Json.String "X");
           ("dur", Json.Float (float_of_int sp.dur_ns /. 1e3));
         ])
    @ [ ("args", Json.Obj args) ])

let chrome_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event (spans ())));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj [ ("schema", Json.String "matprod.trace.chrome.v1") ] );
    ]

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (chrome_json ()));
      output_char oc '\n')
