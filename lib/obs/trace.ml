type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  attrs : (string * Json.t) list;
  start_ns : int64;
  dur_ns : int;
}

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let next_id = ref 0
let stack : (int * int) list ref = ref [] (* (id, depth) of open spans *)
let completed : span list ref = ref []

let fresh_id () =
  incr next_id;
  !next_id

let current_parent () =
  match !stack with [] -> (None, 0) | (id, d) :: _ -> (Some id, d + 1)

let record sp = completed := sp :: !completed

let with_span ?(attrs = []) ~name f =
  if not !on then f ()
  else begin
    let id = fresh_id () in
    let parent, depth = current_parent () in
    let start_ns = Clock.now_ns () in
    stack := (id, depth) :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | (id', _) :: rest when id' = id -> stack := rest
        | _ -> ());
        record
          {
            id;
            parent;
            depth;
            name;
            attrs;
            start_ns;
            dur_ns = Clock.elapsed_ns start_ns;
          })
      f
  end

let event ?(attrs = []) ~name () =
  if !on then begin
    let id = fresh_id () in
    let parent, depth = current_parent () in
    record
      {
        id;
        parent;
        depth;
        name;
        attrs;
        start_ns = Clock.now_ns ();
        dur_ns = 0;
      }
  end

let spans () =
  (* ids are assigned at span start, so sorting by id restores start
     order even though spans complete innermost-first. *)
  List.sort (fun a b -> compare a.id b.id) !completed

let span_count () = List.length !completed
let reset () = completed := []

let to_json sp =
  Json.Obj
    [
      ("id", Json.Int sp.id);
      ( "parent",
        match sp.parent with None -> Json.Null | Some p -> Json.Int p );
      ("depth", Json.Int sp.depth);
      ("name", Json.String sp.name);
      ("start_ns", Json.Int (Int64.to_int sp.start_ns));
      ("dur_ns", Json.Int sp.dur_ns);
      ("attrs", Json.Obj sp.attrs);
    ]

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun sp ->
          output_string oc (Json.to_string (to_json sp));
          output_char oc '\n')
        (spans ()))
