let fake = Sys.getenv_opt "MATPROD_OBS_FAKE_CLOCK" <> None

let faked () = fake

let last = ref 0L

(* Subtracting a process-start epoch keeps the float conversion well
   within double precision (raw epoch seconds * 1e9 would quantize to
   ~256 ns). *)
let epoch = Unix.gettimeofday ()

let now_ns () =
  if fake then 0L
  else begin
    let t = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
    if Int64.compare t !last > 0 then last := t;
    !last
  end

let elapsed_ns t0 =
  let d = Int64.sub (now_ns ()) t0 in
  if Int64.compare d 0L < 0 then 0 else Int64.to_int d
