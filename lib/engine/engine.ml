module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Transcript = Matprod_comm.Transcript
module Lp = Matprod_sketch.Lp
module Srht = Matprod_sketch.Srht
module Obs = Matprod_obs
module Common = Matprod_core.Common
module Lp_protocol = Matprod_core.Lp_protocol
module Frobenius = Matprod_core.Frobenius
module L0_sampling = Matprod_core.L0_sampling
module L1_sampling = Matprod_core.L1_sampling
module Hh_general = Matprod_core.Hh_general
module Linf_general = Matprod_core.Linf_general
module Matprod_protocol = Matprod_core.Matprod_protocol
module Entry_map = Matprod_core.Common.Entry_map
module Outcome = Matprod_core.Outcome

type query =
  | Norm_pow of { p : float; eps : float }
  | Frob_norm of { eps : float }
  | Row_norms of { p : float; beta : float }
  | Top_rows of { p : float; beta : float; k : int }
  | L0_sample of { eps : float; count : int }
  | L1_sample of { count : int }
  | Heavy_hitters of { phi : float; eps : float }
  | Linf of { kappa : float }
  | Exact_product

type answer =
  | Scalar of float
  | Vector of float array
  | Ranked of (int * float) list
  | Entry_set of (int * int) list
  | L0_samples of L0_sampling.sample option array
  | L1_samples of L1_sampling.sample option array
  | Shares of (int * int * int) list * (int * int * int) list

type plan_status = Plan_hit | Plan_miss | Not_planned

type group_report = {
  family : string;
  members : int list;
  bits : int;
  rounds : int;
  elapsed_ns : int;
  plan : plan_status;
}

type report = {
  answers : answer array;
  groups : group_report list;
  total_bits : int;
  total_rounds : int;
  plan_hits : int;
  plan_misses : int;
}

(* ------------------------------------------------------------------ *)
(* Plan cache: an LRU over (family tag, dim, seed) → prebuilt Lp sketch
   family + its tabulated plan. Sound because the family is created from
   a Prng derived purely from (seed, tag): equal keys always denote the
   same hash family, so a cached plan is bit-identical to a rebuilt one. *)

type plan_key = { tag : string; dim : int; seed : int }

type plan_entry =
  | Lp_entry of { lp : Lp.t; plan : Lp.plan }
  | Srht_entry of { sk : Srht.t; plan : Srht.plan }

type cache = {
  capacity : int;
  mutable slots : (plan_key * plan_entry) list; (* most recent first *)
  mutable hits : int;
  mutable misses : int;
}

type t = { cache : cache }

let create ?(plan_cache_capacity = 16) () =
  if plan_cache_capacity < 0 then
    invalid_arg "Engine.create: plan_cache_capacity < 0";
  { cache = { capacity = plan_cache_capacity; slots = []; hits = 0; misses = 0 } }

let plan_cache_stats t = (t.cache.hits, t.cache.misses)

let hit_counter = lazy (Obs.Metrics.counter "engine_plan_hits")
let miss_counter = lazy (Obs.Metrics.counter "engine_plan_misses")

let cache_find_or_build cache key build =
  match List.assoc_opt key cache.slots with
  | Some entry ->
      cache.hits <- cache.hits + 1;
      Obs.Metrics.incr (Lazy.force hit_counter);
      cache.slots <-
        (key, entry) :: List.filter (fun (k, _) -> k <> key) cache.slots;
      (entry, Plan_hit)
  | None ->
      cache.misses <- cache.misses + 1;
      Obs.Metrics.incr (Lazy.force miss_counter);
      let entry = build () in
      if cache.capacity > 0 then begin
        let keep =
          if List.length cache.slots >= cache.capacity then
            List.filteri (fun i _ -> i < cache.capacity - 1) cache.slots
          else cache.slots
        in
        cache.slots <- (key, entry) :: keep
      end;
      (entry, Plan_miss)

(* ------------------------------------------------------------------ *)
(* Compilation: queries sharing a sketch family and shape collapse into
   one exchange group. *)

type gkey =
  | KLp of float (* p; the group runs at the finest beta any member needs *)
  | KFrob of float (* eps; SRHT family, one-round *)
  | KL0 of float (* eps *)
  | KL1
  | KHh of float * float (* phi, eps *)
  | KLinf of float (* kappa *)
  | KExact

let key_of = function
  | Norm_pow { p; _ } | Row_norms { p; _ } | Top_rows { p; _ } -> KLp p
  | Frob_norm { eps } -> KFrob eps
  | L0_sample { eps; _ } -> KL0 eps
  | L1_sample _ -> KL1
  | Heavy_hitters { phi; eps } -> KHh (phi, eps)
  | Linf { kappa } -> KLinf kappa
  | Exact_product -> KExact

let beta_of = function
  | Norm_pow { eps; _ } -> Float.min 1.0 (sqrt eps)
  | Row_norms { beta; _ } | Top_rows { beta; _ } -> beta
  | _ -> invalid_arg "Engine: beta_of"

(* Groups in first-occurrence order, members ascending. *)
let compile queries =
  let groups = ref [] in
  Array.iteri
    (fun i q ->
      let key = key_of q in
      match List.assoc_opt key !groups with
      | Some members -> members := i :: !members
      | None -> groups := !groups @ [ (key, ref [ i ]) ])
    queries;
  List.map (fun (key, members) -> (key, List.rev !members)) !groups

(* Every exchange group draws from streams derived purely from the context
   seed and the group's identity — never from the shared ctx streams — so
   messages are independent of batch composition and execution order. *)
let group_ctx ctx ~tag =
  let h = Hashtbl.hash tag in
  {
    ctx with
    Ctx.public = Prng.derive ctx.Ctx.seed h 1;
    alice = Prng.derive ctx.Ctx.seed h 2;
    bob = Prng.derive ctx.Ctx.seed h 3;
  }

let family_label = function
  | KLp _ -> "lp"
  | KFrob _ -> "frobenius"
  | KL0 _ -> "l0-sample"
  | KL1 -> "l1-sample"
  | KHh _ -> "heavy-hitters"
  | KLinf _ -> "linf"
  | KExact -> "exact-product"

let lp_groups = 5 (* median-boosting groups, as Session/Lp_protocol *)
let rho_const = 200.0 (* round-2 sampling budget, as Lp_protocol defaults *)

let top_rows est k =
  let idx = Array.init (Array.length est) (fun i -> (i, est.(i))) in
  Array.sort (fun (_, x) (_, y) -> Float.compare y x) idx;
  Array.to_list (Array.sub idx 0 (min k (Array.length idx)))

(* Slice one merged multi-sample run back into per-member arrays. *)
let slice_counts samples counts =
  let off = ref 0 in
  List.map
    (fun count ->
      let part = Array.sub samples !off count in
      off := !off + count;
      part)
    counts

let exec_lp t ctx ~a ~b ~p ~members ~queries set =
  let beta =
    List.fold_left (fun acc i -> Float.min acc (beta_of queries.(i))) 1.0 members
  in
  if not (beta > 0.0) then invalid_arg "Engine: beta/eps must be positive";
  let tag = Printf.sprintf "lp(p=%g,beta=%g)" p beta in
  let gctx = group_ctx ctx ~tag in
  let dim = max 1 (Imat.cols b) in
  let key = { tag; dim; seed = ctx.Ctx.seed } in
  let entry, status =
    cache_find_or_build t.cache key (fun () ->
        let rng = Prng.derive ctx.Ctx.seed (Hashtbl.hash tag) 4 in
        let lp = Lp.create rng ~p ~eps:beta ~groups:lp_groups ~dim in
        Lp_entry { lp; plan = Lp.plan lp ~dim })
  in
  let lp, plan =
    match entry with
    | Lp_entry e -> (e.lp, e.plan)
    | Srht_entry _ -> assert false (* tags distinguish the families *)
  in
  let bob_sketches =
    Pool.init (Imat.rows b) (fun k -> Lp.sketch_with_plan lp plan (Imat.row b k))
  in
  let sketches =
    Ctx.b2a gctx
      ~label:(Printf.sprintf "engine: lp sketches of B rows %s" tag)
      (Codec.array (Lp.wire lp))
      bob_sketches
  in
  let est =
    Pool.init (Imat.rows a) (fun i ->
        Float.max 0.0
          (Lp.estimate_pow lp (Common.combine_sketches lp sketches (Imat.row a i))))
  in
  (* One sampling round upgrades every norm query in the group to (1+beta²)
     ≤ (1+eps_i); row/top queries answer from the cached estimates free. *)
  let refined =
    if List.exists (fun i -> match queries.(i) with Norm_pow _ -> true | _ -> false) members
    then Some (Lp_protocol.round2 gctx ~p ~beta ~rho_const ~est ~a ~b)
    else None
  in
  List.iter
    (fun i ->
      set i
        (match queries.(i) with
        | Norm_pow _ -> Scalar (Option.get refined)
        | Row_norms _ -> Vector (Array.copy est)
        | Top_rows { k; _ } -> Ranked (top_rows est k)
        | _ -> assert false))
    members;
  (tag, status)

let exec_frob t ctx ~a ~b ~eps ~members set =
  if not (eps > 0.0) then invalid_arg "Engine: eps must be positive";
  let tag = Printf.sprintf "frob(eps=%g)" eps in
  let gctx = group_ctx ctx ~tag in
  let dim = max 1 (Imat.cols b) in
  let key = { tag; dim; seed = ctx.Ctx.seed } in
  let entry, status =
    cache_find_or_build t.cache key (fun () ->
        let rng = Prng.derive ctx.Ctx.seed (Hashtbl.hash tag) 4 in
        let sk = Srht.create rng ~eps ~groups:lp_groups ~dim in
        Srht_entry { sk; plan = Srht.plan sk ~dim })
  in
  let sk, plan =
    match entry with
    | Srht_entry e -> (e.sk, e.plan)
    | Lp_entry _ -> assert false (* tags distinguish the families *)
  in
  let est = Frobenius.run_planned gctx ~sk ~plan ~a ~b in
  List.iter (fun i -> set i (Scalar est)) members;
  (tag, status)

let exec_group t ctx ~a ~b ~key ~members ~queries set =
  match key with
  | KLp p -> exec_lp t ctx ~a ~b ~p ~members ~queries set
  | KFrob eps -> exec_frob t ctx ~a ~b ~eps ~members set
  | KL0 eps ->
      let tag = Printf.sprintf "l0-sample(eps=%g)" eps in
      let counts =
        List.map
          (fun i ->
            match queries.(i) with
            | L0_sample { count; _ } -> max 0 count
            | _ -> assert false)
          members
      in
      let total = List.fold_left ( + ) 0 counts in
      let samples =
        if total = 0 then [||]
        else
          L0_sampling.run_many (group_ctx ctx ~tag)
            (L0_sampling.default_params ~eps)
            ~count:total ~a ~b
      in
      List.iter2
        (fun i part -> set i (L0_samples part))
        members (slice_counts samples counts);
      (tag, Not_planned)
  | KL1 ->
      let tag = "l1-sample" in
      let counts =
        List.map
          (fun i ->
            match queries.(i) with
            | L1_sample { count } -> max 0 count
            | _ -> assert false)
          members
      in
      let total = List.fold_left ( + ) 0 counts in
      let samples =
        if total = 0 then [||]
        else L1_sampling.run_many (group_ctx ctx ~tag) ~count:total ~a ~b
      in
      List.iter2
        (fun i part -> set i (L1_samples part))
        members (slice_counts samples counts);
      (tag, Not_planned)
  | KHh (phi, eps) ->
      let tag = Printf.sprintf "heavy-hitters(phi=%g,eps=%g)" phi eps in
      let coords =
        Hh_general.run (group_ctx ctx ~tag)
          (Hh_general.default_params ~phi ~eps ())
          ~a ~b
      in
      List.iter (fun i -> set i (Entry_set coords)) members;
      (tag, Not_planned)
  | KLinf kappa ->
      let tag = Printf.sprintf "linf(kappa=%g)" kappa in
      let estimate =
        Linf_general.run (group_ctx ctx ~tag) { Linf_general.kappa } ~a ~b
      in
      List.iter (fun i -> set i (Scalar estimate)) members;
      (tag, Not_planned)
  | KExact ->
      let tag = "exact-product" in
      let shares = Matprod_protocol.run (group_ctx ctx ~tag) ~a ~b in
      let answer =
        Shares
          ( Entry_map.entries shares.Matprod_protocol.alice,
            Entry_map.entries shares.Matprod_protocol.bob )
      in
      List.iter (fun i -> set i answer) members;
      (tag, Not_planned)

let run t ctx ~a ~b queries =
  if queries = [] then invalid_arg "Engine.run: empty batch";
  if Imat.cols a <> Imat.rows b then invalid_arg "Engine.run: dims";
  let queries = Array.of_list queries in
  let answers = Array.make (Array.length queries) None in
  let set i ans = answers.(i) <- Some ans in
  let hits0 = t.cache.hits and misses0 = t.cache.misses in
  let tr = Ctx.transcript ctx in
  let bits0 = Transcript.total_bits tr and rounds0 = Transcript.rounds tr in
  Obs.Metrics.incr (Obs.Metrics.counter "engine_batches");
  let groups =
    Obs.Trace.with_span ~name:"engine.batch"
      ~attrs:[ ("queries", Obs.Json.Int (Array.length queries)) ]
      (fun () ->
        List.map
          (fun (key, members) ->
            let fam = family_label key in
            (* Each query group records into its own metrics scope, so a
               batch's sketch/channel counters attribute per family. *)
            Obs.Metrics.in_scope ("group-" ^ fam) @@ fun () ->
            let gb0 = Transcript.total_bits tr
            and gr0 = Transcript.rounds tr in
            let t0 = Obs.Clock.now_ns () in
            let tag, plan =
              Obs.Trace.with_span ~name:"engine.group"
                ~attrs:[ ("family", Obs.Json.String fam) ]
                (fun () -> exec_group t ctx ~a ~b ~key ~members ~queries set)
            in
            let elapsed_ns = Obs.Clock.elapsed_ns t0 in
            let bits = Transcript.total_bits tr - gb0 in
            Obs.Metrics.incr_by (Obs.Metrics.counter ~label:fam "engine_bits") bits;
            Obs.Metrics.incr_by
              (Obs.Metrics.counter ~label:fam "engine_queries")
              (List.length members);
            Obs.Metrics.observe_ns
              (Obs.Metrics.histogram ~label:fam "engine_group_ns")
              elapsed_ns;
            {
              family = tag;
              members;
              bits;
              rounds = Transcript.rounds tr - gr0;
              elapsed_ns;
              plan;
            })
          (compile queries))
  in
  {
    answers =
      Array.map
        (function Some a -> a | None -> assert false (* every member set *))
        answers;
    groups;
    total_bits = Transcript.total_bits tr - bits0;
    total_rounds = Transcript.rounds tr - rounds0;
    plan_hits = t.cache.hits - hits0;
    plan_misses = t.cache.misses - misses0;
  }

let run_safe t ctx ~a ~b queries =
  Outcome.capture ctx (fun () -> run t ctx ~a ~b queries)

(* ------------------------------------------------------------------ *)
(* Query specs: "name:key=val,key=val". *)

let query_to_string = function
  | Norm_pow { p; eps } -> Printf.sprintf "norm:p=%g,eps=%g" p eps
  | Frob_norm { eps } -> Printf.sprintf "frob:eps=%g" eps
  | Row_norms { p; beta } -> Printf.sprintf "rows:p=%g,beta=%g" p beta
  | Top_rows { p; beta; k } -> Printf.sprintf "top:p=%g,beta=%g,k=%d" p beta k
  | L0_sample { eps; count } -> Printf.sprintf "l0:eps=%g,count=%d" eps count
  | L1_sample { count } -> Printf.sprintf "l1:count=%d" count
  | Heavy_hitters { phi; eps } -> Printf.sprintf "hh:phi=%g,eps=%g" phi eps
  | Linf { kappa } -> Printf.sprintf "linf:kappa=%g" kappa
  | Exact_product -> "exact"

let query_of_string spec =
  let ( let* ) = Result.bind in
  let name, kvs =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  let parse_kvs () =
    if kvs = "" then Ok []
    else
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "bad key=value %S in %S" part spec)
          | Some i ->
              let k = String.sub part 0 i in
              let v = String.sub part (i + 1) (String.length part - i - 1) in
              Ok ((String.trim k, String.trim v) :: acc))
        (Ok [])
        (String.split_on_char ',' kvs)
  in
  let* kvs = parse_kvs () in
  let known allowed =
    match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
    | Some (k, _) -> Error (Printf.sprintf "unknown key %S in %S" k spec)
    | None -> Ok ()
  in
  let fget key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad float %S for %s in %S" v key spec))
  in
  let iget key default =
    match List.assoc_opt key kvs with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad int %S for %s in %S" v key spec))
  in
  match String.trim (String.lowercase_ascii name) with
  | "norm" ->
      let* () = known [ "p"; "eps" ] in
      let* p = fget "p" 0.0 in
      let* eps = fget "eps" 0.25 in
      Ok (Norm_pow { p; eps })
  | "frob" ->
      let* () = known [ "eps" ] in
      let* eps = fget "eps" 0.5 in
      Ok (Frob_norm { eps })
  | "rows" ->
      let* () = known [ "p"; "beta" ] in
      let* p = fget "p" 0.0 in
      let* beta = fget "beta" 0.5 in
      Ok (Row_norms { p; beta })
  | "top" ->
      let* () = known [ "p"; "beta"; "k" ] in
      let* p = fget "p" 0.0 in
      let* beta = fget "beta" 0.5 in
      let* k = iget "k" 5 in
      Ok (Top_rows { p; beta; k })
  | "l0" ->
      let* () = known [ "eps"; "count" ] in
      let* eps = fget "eps" 0.25 in
      let* count = iget "count" 1 in
      Ok (L0_sample { eps; count })
  | "l1" ->
      let* () = known [ "count" ] in
      let* count = iget "count" 1 in
      Ok (L1_sample { count })
  | "hh" ->
      let* () = known [ "phi"; "eps" ] in
      let* phi = fget "phi" 0.05 in
      let* eps = fget "eps" 0.02 in
      Ok (Heavy_hitters { phi; eps })
  | "linf" ->
      let* () = known [ "kappa" ] in
      let* kappa = fget "kappa" 4.0 in
      Ok (Linf { kappa })
  | "exact" ->
      let* () = known [] in
      Ok Exact_product
  | other ->
      Error
        (Printf.sprintf
           "unknown query %S (norm|frob|rows|top|l0|l1|hh|linf|exact)" other)

(* Fleet merge: combine per-shard answers to one query into the answer over
   the full row space. Shard products occupy disjoint row blocks of C, so
   every merge is exact on the covered rows; sample slots are re-drawn by a
   seeded weighted pick so the merged answer is a deterministic function of
   (seed, surviving shards). *)
let merge_answers ~seed ~rows query parts =
  if parts = [] then invalid_arg "Engine.merge_answers: no parts";
  let parts =
    List.sort (fun (o, _, _) (o', _, _) -> compare o o') parts
  in
  let shape_error () = invalid_arg "Engine.merge_answers: mixed shapes" in
  let scalars f init =
    Scalar
      (List.fold_left
         (fun acc (_, _, ans) ->
           match ans with Scalar x -> f acc x | _ -> shape_error ())
         init parts)
  in
  (* One PRNG draw per present sample, weighted by shard row count: the
     quorum merge consumes the same stream as the full merge restricted to
     the same survivors (see Matprod_topology.Merge). *)
  let pick_slots rng slots extract translate =
    Array.init slots (fun j ->
        let chosen = ref None and total = ref 0 in
        List.iter
          (fun (offset, length, ans) ->
            match extract ans j with
            | None -> ()
            | Some s ->
                total := !total + length;
                let u = Prng.float rng in
                if u *. float_of_int !total < float_of_int length then
                  chosen := Some (translate offset s))
          parts;
        !chosen)
  in
  match query with
  (* ‖AB‖_F² over disjoint row blocks is the sum of the blocks' norms,
     like every other norm power. *)
  | Norm_pow _ | Frob_norm _ -> scalars ( +. ) 0.0
  | Linf _ -> scalars Float.max 0.0
  | Row_norms _ ->
      let out = Array.make rows Float.nan in
      List.iter
        (fun (offset, length, ans) ->
          match ans with
          | Vector v ->
              if Array.length v <> length then shape_error ();
              Array.blit v 0 out offset length
          | _ -> shape_error ())
        parts;
      Vector out
  | Top_rows { k; _ } ->
      let all =
        List.concat_map
          (fun (offset, _, ans) ->
            match ans with
            | Ranked rs -> List.map (fun (i, est) -> (i + offset, est)) rs
            | _ -> shape_error ())
          parts
      in
      let sorted =
        List.sort
          (fun (i, x) (j, y) ->
            match compare y x with 0 -> compare i j | c -> c)
          all
      in
      Ranked (List.filteri (fun i _ -> i < k) sorted)
  | L0_sample _ ->
      let rng = Prng.create (seed lxor 0x6d657267) in
      let slots =
        List.fold_left
          (fun acc (_, _, ans) ->
            match ans with
            | L0_samples ss -> max acc (Array.length ss)
            | _ -> shape_error ())
          0 parts
      in
      L0_samples
        (pick_slots rng slots
           (fun ans j ->
             match ans with
             | L0_samples ss when j < Array.length ss -> ss.(j)
             | _ -> None)
           (fun offset (s : L0_sampling.sample) ->
             { s with L0_sampling.row = s.L0_sampling.row + offset }))
  | L1_sample _ ->
      let rng = Prng.create (seed lxor 0x6d657267) in
      let slots =
        List.fold_left
          (fun acc (_, _, ans) ->
            match ans with
            | L1_samples ss -> max acc (Array.length ss)
            | _ -> shape_error ())
          0 parts
      in
      (* [witness] indexes the inner dimension, shared by all shards — only
         the row translates. *)
      L1_samples
        (pick_slots rng slots
           (fun ans j ->
             match ans with
             | L1_samples ss when j < Array.length ss -> ss.(j)
             | _ -> None)
           (fun offset (s : L1_sampling.sample) ->
             { s with L1_sampling.row = s.L1_sampling.row + offset }))
  | Heavy_hitters _ ->
      let all =
        List.concat_map
          (fun (offset, _, ans) ->
            match ans with
            | Entry_set es -> List.map (fun (r, c) -> (r + offset, c)) es
            | _ -> shape_error ())
          parts
      in
      Entry_set (List.sort_uniq compare all)
  | Exact_product ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (offset, _, ans) ->
          match ans with
          | Shares (alice, bob) ->
              List.iter
                (fun (r, c, v) ->
                  let key = (r + offset, c) in
                  let cur = try Hashtbl.find tbl key with Not_found -> 0 in
                  Hashtbl.replace tbl key (cur + v))
                (alice @ bob)
          | _ -> shape_error ())
        parts;
      let entries =
        Hashtbl.fold
          (fun (r, c) v acc -> if v = 0 then acc else (r, c, v) :: acc)
          tbl []
      in
      Shares (List.sort compare entries, [])
