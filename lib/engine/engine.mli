(** Batched, plan-cached query engine over one [(A, B)] pair.

    A query optimizer rarely asks one question: it wants the join size,
    the per-row cardinalities, the skew, a few sample tuples. Run as
    standalone drivers those are independent sketch exchanges, each paying
    its own round-1 message. The engine accepts a {e batch} of statistic
    queries and compiles it into a minimal communication schedule:

    - queries sharing a sketch family are answered from {e one} exchange
      at the finest accuracy any of them needs (the round-1 reuse of
      {!Matprod_core.Session}, generalised);
    - ℓ0/ℓ1 sample queries merge their counts into one amortised
      multi-sample run;
    - duplicate queries are answered once;
    - sketch plans ({!Matprod_sketch.Lp.plan} tables) are cached in an LRU
      keyed by [(family, dim, seed, params)], so repeated batches over
      same-shaped matrices skip hash-family tabulation entirely.

    Determinism contract: each exchange group draws its randomness from
    streams {e derived} from [(ctx seed, group key)] — never from the
    shared context streams — so a group's messages do not depend on which
    other queries ride in the batch, answers are reproducible from the
    seed, journaling/resume work unchanged, and a batch answer is
    bit-identical to the same query run through a singleton batch. (The
    one refinement: sample queries merged into a shared exchange draw
    consecutive slices of the group's stream, so the group's slices
    concatenate to exactly what one query with the merged total count
    draws — the first member still matches its singleton run.) The
    message schedule itself is sequential in first-occurrence group order
    (byte-identical at any [--domains] value); the per-row sketch and
    combine work inside a group fans out across the
    {!Matprod_util.Pool} domains.

    Per-group cost attribution flows through {!Matprod_obs}: spans
    [engine.batch] / [engine.group], counters [engine_bits{family}],
    [engine_queries{family}], [engine_plan_hits], [engine_plan_misses],
    and histogram [engine_group_ns{family}] (docs/OBSERVABILITY.md). *)

(** One statistic request over C = A·B. Accuracies: [Norm_pow] follows
    Algorithm 1 ([eps] is the target relative error, paid with a sampling
    round); [Row_norms]/[Top_rows] are answered from cached round-1
    sketches at accuracy [beta] with no extra communication. *)
type query =
  | Norm_pow of { p : float; eps : float }
      (** (1+eps)-estimate of ‖C‖_p^p, p ∈ [0, 2]. *)
  | Frob_norm of { eps : float }
      (** (1+eps)-estimate of ‖C‖_F² on the SRHT family, one round;
          shard answers merge by sum. *)
  | Row_norms of { p : float; beta : float }
      (** (1+beta)-estimates of every ‖C_{i,*}‖_p^p. *)
  | Top_rows of { p : float; beta : float; k : int }
      (** The [k] rows with the largest estimated norms, descending. *)
  | L0_sample of { eps : float; count : int }
      (** [count] near-uniform nonzero entries of C (Theorem 3.2). *)
  | L1_sample of { count : int }
      (** [count] entries drawn ∝ value (Remark 3); non-negative inputs. *)
  | Heavy_hitters of { phi : float; eps : float }
      (** ℓ1-(phi, eps)-heavy entries of C (Algorithm 4). *)
  | Linf of { kappa : float }
      (** kappa-approximation of ‖C‖∞ (Theorem 4.8). *)
  | Exact_product  (** additive shares C_A + C_B = C (Lemma 2.5 role). *)

type answer =
  | Scalar of float
  | Vector of float array
  | Ranked of (int * float) list
  | Entry_set of (int * int) list
  | L0_samples of Matprod_core.L0_sampling.sample option array
  | L1_samples of Matprod_core.L1_sampling.sample option array
  | Shares of (int * int * int) list * (int * int * int) list
      (** Alice's and Bob's sorted share entries. *)

type plan_status =
  | Plan_hit  (** sketch family + tables served from the LRU *)
  | Plan_miss  (** tabulated this batch (now cached) *)
  | Not_planned  (** the group's family has no plan/apply path *)

(** Cost attribution for one compiled exchange group. *)
type group_report = {
  family : string;  (** e.g. ["lp(p=0,beta=0.5)"], ["l0-sample(eps=0.25)"] *)
  members : int list;  (** indices into the batch, ascending *)
  bits : int;  (** fresh transcript bits this group cost *)
  rounds : int;  (** speaking phases this group added *)
  elapsed_ns : int;
  plan : plan_status;
}

type report = {
  answers : answer array;  (** one per query, in batch order *)
  groups : group_report list;  (** in execution (first-occurrence) order *)
  total_bits : int;
  total_rounds : int;
  plan_hits : int;  (** LRU hits during this batch *)
  plan_misses : int;
}

type t
(** An engine instance: owns the plan cache. Reusable across batches and
    contexts; entries are keyed by seed so distinct-seed contexts never
    share a hash family. *)

val create : ?plan_cache_capacity:int -> unit -> t
(** Capacity is the number of [(family, dim, seed, params)] plan slots
    (default 16, LRU eviction; 0 disables caching). *)

val run :
  t ->
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  query list ->
  report
(** Execute a batch. Requires [cols a = rows b], a non-empty batch, and —
    for [L1_sample] and [Heavy_hitters] — non-negative matrices (raises
    [Invalid_argument] otherwise). The transcript simply continues on
    [ctx]; run several batches in one context to amortise nothing twice. *)

val run_safe :
  t ->
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  query list ->
  (report * Matprod_core.Outcome.diagnostics, Matprod_core.Outcome.error)
  result
(** {!run} under the {!Matprod_core.Outcome} trichotomy: over a faulty or
    crashy wire the batch either completes (fault-free-equivalent) or
    comes back as a typed error; a journaled prefix remains valid for
    {!Matprod_comm.Ctx.resume}. *)

val plan_cache_stats : t -> int * int
(** Lifetime [(hits, misses)] of the engine's plan cache. *)

(** {1 Query specs}

    A tiny textual form, ["name:key=val,key=val"], shared by the CLI's
    [batch] subcommand, the bench harness, and the docs. Names: [norm],
    [rows], [top], [l0], [l1], [hh], [linf], [exact]. Keys: [p], [eps],
    [beta], [k], [count], [phi], [kappa]. Unset keys take the defaults
    documented in docs/API.md. *)

val query_of_string : string -> (query, string) result
val query_to_string : query -> string
(** Canonical spec; [query_of_string (query_to_string q) = Ok q]. *)

(** {1 Fleet answer merge}

    Used by [Matprod_topology.Fleet.run_batch]: worker [i] answers the
    batch on its compact row shard A⟨i⟩ (offset [o_i], [n_i] rows), and
    the per-query shard answers combine into the full-row answer. *)

val merge_answers :
  seed:int -> rows:int -> query -> (int * int * answer) list -> answer
(** [merge_answers ~seed ~rows q parts] with [parts] a list of
    [(offset, length, answer)] shard answers to [q] (any order; merged in
    offset order). Exact merges: [Norm_pow] sums, [Linf] maxes, [Top_rows]
    re-ranks the translated union, [Heavy_hitters] unions, [Exact_product]
    reconstructs and re-shares the product entries as
    [Shares (entries, [])]. [Row_norms] returns a full [rows]-length
    vector with [nan] at rows no surviving shard covers. Sample queries
    re-draw each slot by a seeded weighted pick (weight = shard row
    count), deterministic in [(seed, parts)] — so a quorum merge equals
    the full merge restricted to the same survivors. Raises
    [Invalid_argument] on an empty part list or mixed shapes. *)
