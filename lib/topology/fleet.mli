(** Coordinator + k workers over the two-party machinery.

    Rows of A — the output rows of C = A·B — are sharded contiguously
    across [k] workers ({!Shard}); B is replicated at the coordinator.
    Each coordinator↔worker link is an independent {!Matprod_comm.Channel}
    running the {e unmodified} two-party protocol of any registered
    estimator on (A⟨i⟩, B), with the worker in the A-role and the
    coordinator in the B-role, at the fleet seed (a common random string
    across the fleet, Newman-style — all links share one hash family).
    Per-link chaos comes for free: each link carries its own
    {!Matprod_comm.Fault} rules, {!Matprod_comm.Reliable} retransmission,
    and write-ahead {!Matprod_comm.Journal}.

    The fleet supervisor generalises the Resume→Reseed→Degrade→Give-up
    ladder to {e partial} failure. Per link, a {!Matprod_core.Supervisor}
    climbs Resume (journal fast-forward at the same seed) then Reseed; a
    link whose answer arrives but whose simulated waiting exceeds the
    per-worker deadline is flagged a {e straggler} and sent up the same
    ladder — a journal resume replays the already-delivered prefix without
    re-paying the delay spike, which is why resume beats rerun for late
    workers just as it does for crashed ones. Fleet-level:

    - every link answered → [Full] merged answer ({!Merge} — exact,
      because shard products occupy disjoint row blocks of C);
    - at least [quorum] links answered → [Degraded] merged answer over
      the survivors, tagged with coverage (surviving row fraction) and
      the widened extrapolation bound ({!Matprod_core.Outcome.degradation});
    - fewer → the last link's typed error. Never an unflagged wrong
      answer.

    {b Byzantine defense.} The reliability layer only protects transport;
    a worker that {e computes} a wrong answer delivers it with valid CRCs
    ({!Matprod_comm.Fault.check_byzantine} simulates exactly this at the
    answer boundary). Two coordinator-side defenses compose:

    - [verify]: every decoded shard answer runs the
      {!Matprod_verify.Verify} validators (exact shard-mass identity,
      Cauchy–Schwarz ranges, per-coordinate adjudication, Freivalds);
    - [replicas] = r: each shard is run by r independent links at seeds
      derived from (fleet seed, rank, replica); deterministic families
      vote by exact agreement, numeric families within their
      approximation ratio, sampling families are adjudicated per-answer
      ({!Matprod_verify.Verify.vote}).

    A replica that fails a validator or loses the vote is {e quarantined}:
    its link report carries {!Matprod_core.Outcome.Byzantine_detected}
    naming the violated check, it appears in [suspects], and the shard's
    answer is re-merged from the surviving replicas. Only when a whole
    replica group is lost (every replica failed, or no strict majority
    exists) does the shard count as lost and the quorum/[Degraded] ladder
    above take over. Replica 0 runs at the fleet seed, so a
    [replicas = 1] fleet is bit-identical to the pre-replica fleet.

    Observability: metrics scope [link<i>] (replica 0) / [link<i>.r<j>]
    per link, counters [fleet_links], [fleet_link_failures],
    [fleet_stragglers], [fleet_degraded], [fleet_giveups],
    [fleet_quarantined], verification cost under [verify_checks] /
    [verify_failures] / [verify_ns], a [fleet.link] span per link and a
    [fleet.quarantine] event per suspect. *)

type link_policy = {
  max_resumes : int;  (** per-link journal resumes (needs [journal]) *)
  max_reseeds : int;  (** per-link fresh-seed reruns *)
  deadline_s : float option;
      (** straggler deadline on a link's simulated waiting
          (retransmission timeouts + injected delay), seconds *)
}

val default_link_policy : link_policy
(** 2 resumes, 1 reseed, no deadline. *)

type config = {
  workers : int;
  quorum : int;  (** minimum surviving links for an answer, in [1, workers] *)
  seed : int;
  replicas : int;  (** independent links per shard, in [1, 16] *)
  verify : bool;  (** run the {!Matprod_verify.Verify} validators *)
  link_policy : link_policy;
  journal : string option;
      (** base path; link [i] replica [j] journals to
          ["<base>.worker<i>"] (replica 0) / ["<base>.worker<i>.r<j>"]
          and the Resume rung becomes available per link *)
  transport : Matprod_comm.Transport.factory option;
      (** physical backend factory; every link attempt opens (and closes)
          its own connection through it. [None] = {!Matprod_comm.Transport.sim} *)
}

val config :
  ?quorum:int ->
  ?replicas:int ->
  ?verify:bool ->
  ?link_policy:link_policy ->
  ?journal:string ->
  ?transport:Matprod_comm.Transport.factory ->
  workers:int ->
  seed:int ->
  unit ->
  config
(** [quorum] defaults to [workers] (no degraded answers), [replicas] to 1,
    [verify] to [false]. Raises [Invalid_argument] on [workers < 1],
    [quorum] outside [1, workers], or [replicas] outside [1, 16]. *)

val replica_seed : config -> rank:int -> replica:int -> int
(** The seed link [(rank, replica)] runs at: the fleet seed for replica 0,
    an independent derivation of (seed, rank, replica) above — the wire
    hook and tests use it to predict per-replica behaviour. *)

type link_report = {
  rank : int;
  replica : int;
  range : Shard.range;
  attempts : Matprod_core.Supervisor.attempt list;
      (** the link's ladder, in execution order ([] if the supervisor gave
          up before producing a report) *)
  answer : (Matprod_core.Estimator.comparable, Matprod_core.Outcome.error) result;
      (** a quarantined replica reports
          {!Matprod_core.Outcome.Byzantine_detected} here even though its
          link-level run succeeded *)
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
  straggled : bool;  (** some attempt tripped the straggler deadline *)
}

(** One quarantined replica and why. *)
type suspect = {
  s_rank : int;
  s_replica : int;
  s_check : string;  (** violated invariant ({!Matprod_verify.Verify}) *)
  s_detail : string;
}

type report = {
  answer : Matprod_core.Estimator.comparable Matprod_core.Outcome.graded;
  links : link_report list;
      (** rank-major, replica-minor order, failures included *)
  suspects : suspect list;  (** quarantined replicas, rank-major order *)
  survivors : int;  (** shards (not links) that delivered an answer *)
  coverage : float;  (** surviving row fraction, 1.0 when [Full] *)
  fresh_bits : int;  (** summed over all replica links *)
  fresh_rounds : int;  (** max over links — links run in parallel *)
  resume_bits_saved : int;
}

val run :
  ?wire:(rank:int -> replica:int -> attempt:int -> Matprod_comm.Ctx.t -> unit) ->
  config ->
  Matprod_core.Estimator.packed ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (report, Matprod_core.Outcome.error) result
(** Answer the estimator's default query over the fleet. [?wire] arms
    link [(rank, replica)]'s channel for each supervisor attempt
    (1-based), so chaos profiles can crash exactly one worker, straggle
    exactly one link, arm a byzantine rule on one replica, or vary by
    attempt the way transient real-world failures do. Requires
    [workers <= rows a]. Never raises on wire/crash/precondition
    failures ({!Matprod_core.Outcome.guard}). *)

(** {1 Batched queries against a fleet}

    The same topology under the {!Matprod_engine.Engine}: each link runs
    the full batch against its shard (sharing the engine's plan cache
    across links — same seed, same family, one tabulation), and per-query
    answers merge by {!Matprod_engine.Engine.merge_answers}. Batch
    replicas all run at the {e fleet} seed — the engine's determinism
    contract makes honest replicas byte-identical, so the replica vote is
    exact agreement on the whole answer array (classic TMR) and [verify]
    adjudicates each query's answer shape per
    {!Matprod_verify.Verify.check_answer}. *)

type batch_link = {
  b_rank : int;
  b_replica : int;
  b_range : Shard.range;
  b_attempts : Matprod_core.Supervisor.attempt list;
  b_answers : (Matprod_engine.Engine.answer array, Matprod_core.Outcome.error) result;
}

type batch_report = {
  batch_answers : Matprod_engine.Engine.answer array Matprod_core.Outcome.graded;
      (** one merged answer per query, in batch order *)
  batch_links : batch_link list;
  batch_suspects : suspect list;
  batch_survivors : int;
  batch_coverage : float;
  batch_fresh_bits : int;
}

val run_batch :
  ?wire:(rank:int -> replica:int -> attempt:int -> Matprod_comm.Ctx.t -> unit) ->
  config ->
  Matprod_engine.Engine.t ->
  Matprod_engine.Engine.query list ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (batch_report, Matprod_core.Outcome.error) result
