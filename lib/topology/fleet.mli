(** Coordinator + k workers over the two-party machinery.

    Rows of A — the output rows of C = A·B — are sharded contiguously
    across [k] workers ({!Shard}); B is replicated at the coordinator.
    Each coordinator↔worker link is an independent {!Matprod_comm.Channel}
    running the {e unmodified} two-party protocol of any registered
    estimator on (A⟨i⟩, B), with the worker in the A-role and the
    coordinator in the B-role, at the fleet seed (a common random string
    across the fleet, Newman-style — all links share one hash family).
    Per-link chaos comes for free: each link carries its own
    {!Matprod_comm.Fault} rules, {!Matprod_comm.Reliable} retransmission,
    and write-ahead {!Matprod_comm.Journal}.

    The fleet supervisor generalises the Resume→Reseed→Degrade→Give-up
    ladder to {e partial} failure. Per link, a {!Matprod_core.Supervisor}
    climbs Resume (journal fast-forward at the same seed) then Reseed; a
    link whose answer arrives but whose simulated waiting exceeds the
    per-worker deadline is flagged a {e straggler} and sent up the same
    ladder — a journal resume replays the already-delivered prefix without
    re-paying the delay spike, which is why resume beats rerun for late
    workers just as it does for crashed ones. Fleet-level:

    - every link answered → [Full] merged answer ({!Merge} — exact,
      because shard products occupy disjoint row blocks of C);
    - at least [quorum] links answered → [Degraded] merged answer over
      the survivors, tagged with coverage (surviving row fraction) and
      the widened extrapolation bound ({!Matprod_core.Outcome.degradation});
    - fewer → the last link's typed error. Never an unflagged wrong
      answer.

    Observability: metrics scope [link<i>] per link (containing the
    supervisor's per-attempt scopes, which contain the channel's
    per-party [worker<i>]/[coordinator] scopes), counters [fleet_links],
    [fleet_link_failures], [fleet_stragglers], [fleet_degraded],
    [fleet_giveups], and a [fleet.link] span per link. *)

type link_policy = {
  max_resumes : int;  (** per-link journal resumes (needs [journal]) *)
  max_reseeds : int;  (** per-link fresh-seed reruns *)
  deadline_s : float option;
      (** straggler deadline on a link's simulated waiting
          (retransmission timeouts + injected delay), seconds *)
}

val default_link_policy : link_policy
(** 2 resumes, 1 reseed, no deadline. *)

type config = {
  workers : int;
  quorum : int;  (** minimum surviving links for an answer, in [1, workers] *)
  seed : int;
  link_policy : link_policy;
  journal : string option;
      (** base path; link [i] journals to ["<base>.worker<i>"] and the
          Resume rung becomes available per link *)
}

val config :
  ?quorum:int ->
  ?link_policy:link_policy ->
  ?journal:string ->
  workers:int ->
  seed:int ->
  unit ->
  config
(** [quorum] defaults to [workers] (no degraded answers). Raises
    [Invalid_argument] on [workers < 1] or [quorum] outside
    [1, workers]. *)

type link_report = {
  rank : int;
  range : Shard.range;
  attempts : Matprod_core.Supervisor.attempt list;
      (** the link's ladder, in execution order ([] if the supervisor gave
          up before producing a report) *)
  answer : (Matprod_core.Estimator.comparable, Matprod_core.Outcome.error) result;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
  straggled : bool;  (** some attempt tripped the straggler deadline *)
}

type report = {
  answer : Matprod_core.Estimator.comparable Matprod_core.Outcome.graded;
  links : link_report list;  (** rank order, failures included *)
  survivors : int;
  coverage : float;  (** surviving row fraction, 1.0 when [Full] *)
  fresh_bits : int;  (** summed over answered links *)
  fresh_rounds : int;  (** max over answered links — links run in parallel *)
  resume_bits_saved : int;
}

val run :
  ?wire:(rank:int -> attempt:int -> Matprod_comm.Ctx.t -> unit) ->
  config ->
  Matprod_core.Estimator.packed ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (report, Matprod_core.Outcome.error) result
(** Answer the estimator's default query over the fleet. [?wire] arms
    link [rank]'s channel for each supervisor attempt (1-based), so chaos
    profiles can crash exactly one worker, straggle exactly one link, or
    vary by attempt the way transient real-world failures do. Requires
    [workers <= rows a]. Never raises on wire/crash/precondition
    failures ({!Matprod_core.Outcome.guard}). *)

(** {1 Batched queries against a fleet}

    The same topology under the {!Matprod_engine.Engine}: each link runs
    the full batch against its shard (sharing the engine's plan cache
    across links — same seed, same family, one tabulation), and per-query
    answers merge by {!Matprod_engine.Engine.merge_answers}. *)

type batch_link = {
  b_rank : int;
  b_range : Shard.range;
  b_attempts : Matprod_core.Supervisor.attempt list;
  b_answers : (Matprod_engine.Engine.answer array, Matprod_core.Outcome.error) result;
}

type batch_report = {
  batch_answers : Matprod_engine.Engine.answer array Matprod_core.Outcome.graded;
      (** one merged answer per query, in batch order *)
  batch_links : batch_link list;
  batch_survivors : int;
  batch_coverage : float;
  batch_fresh_bits : int;
}

val run_batch :
  ?wire:(rank:int -> attempt:int -> Matprod_comm.Ctx.t -> unit) ->
  config ->
  Matprod_engine.Engine.t ->
  Matprod_engine.Engine.query list ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (batch_report, Matprod_core.Outcome.error) result
