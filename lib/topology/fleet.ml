module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript
module Estimator = Matprod_core.Estimator
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor
module Engine = Matprod_engine.Engine
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Json = Matprod_obs.Json

type link_policy = {
  max_resumes : int;
  max_reseeds : int;
  deadline_s : float option;
}

let default_link_policy = { max_resumes = 2; max_reseeds = 1; deadline_s = None }

type config = {
  workers : int;
  quorum : int;
  seed : int;
  link_policy : link_policy;
  journal : string option;
}

let config ?quorum ?(link_policy = default_link_policy) ?journal ~workers ~seed
    () =
  if workers < 1 then invalid_arg "Fleet.config: workers must be >= 1";
  let quorum = Option.value quorum ~default:workers in
  if quorum < 1 || quorum > workers then
    invalid_arg "Fleet.config: quorum must be in [1, workers]";
  { workers; quorum; seed; link_policy; journal }

type link_report = {
  rank : int;
  range : Shard.range;
  attempts : Supervisor.attempt list;
  answer : (Estimator.comparable, Outcome.error) result;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
  straggled : bool;
}

type report = {
  answer : Estimator.comparable Outcome.graded;
  links : link_report list;
  survivors : int;
  coverage : float;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
}

let c_links = Metrics.counter "fleet_links"
let c_link_failures = Metrics.counter "fleet_link_failures"
let c_stragglers = Metrics.counter "fleet_stragglers"
let c_degraded = Metrics.counter "fleet_degraded"
let c_giveups = Metrics.counter "fleet_giveups"

let link_names rank = function
  | Transcript.Alice -> Printf.sprintf "worker%d" rank
  | Transcript.Bob -> "coordinator"

(* Journal filenames derive from the estimator's registry name; keep them
   shell-friendly. *)
let sanitize name =
  String.map (fun c -> if c = ' ' || c = '=' || c = '/' then '-' else c) name

(* One link: the per-link supervisor ladder around [body], with straggler
   detection folded into the guarded body — a late answer is discarded
   and the ladder escalates exactly as for a crash, so the next rung is a
   journal resume that replays the delivered prefix without re-paying the
   delay spike. *)
let run_link ~cfg ~wire ~protocol ~rank ~(range : Shard.range) ~body =
  let straggled = ref false in
  let deadline_body ctx =
    let v = body ctx in
    (match cfg.link_policy.deadline_s with
    | None -> ()
    | Some d ->
        let diag = Outcome.diagnostics_of_ctx ctx in
        if diag.Outcome.waited > d then begin
          straggled := true;
          if Metrics.enabled () then Metrics.incr c_stragglers;
          if Trace.enabled () then
            Trace.event ~name:"fleet.straggler"
              ~attrs:
                [
                  ("rank", Json.Int rank);
                  ("waited", Json.Float diag.Outcome.waited);
                  ("deadline", Json.Float d);
                ]
              ();
          failwith
            (Printf.sprintf
               "straggler: worker %d waited %.3fs > deadline %.3fs" rank
               diag.Outcome.waited d)
        end);
    v
  in
  let policy =
    Supervisor.policy ~max_resumes:cfg.link_policy.max_resumes
      ~max_reseeds:cfg.link_policy.max_reseeds ()
  in
  let journal =
    Option.map (fun base -> Printf.sprintf "%s.worker%d" base rank) cfg.journal
  in
  let wire = Option.map (fun f ~attempt ctx -> f ~rank ~attempt ctx) wire in
  if Metrics.enabled () then Metrics.incr c_links;
  let result =
    Metrics.in_scope (Printf.sprintf "link%d" rank) @@ fun () ->
    Trace.with_span ~name:"fleet.link"
      ~attrs:
        [
          ("rank", Json.Int rank);
          ("rows", Json.Int range.Shard.length);
          ("protocol", Json.String protocol);
        ]
    @@ fun () ->
    Supervisor.run ~policy ?journal ?wire ~names:(link_names rank)
      ~seed:cfg.seed
      ~protocol:(Printf.sprintf "%s@worker%d" protocol rank)
      deadline_body
  in
  if Metrics.enabled () then (
    match result with
    | Error _ -> Metrics.incr c_link_failures
    | Ok _ -> ());
  (result, !straggled)

(* Quorum decision shared by the estimator and engine fleets: [merge]
   sees only the surviving (rank, range, output) parts, so a degraded
   answer is by construction the full-fleet merge restricted to the
   surviving links. *)
let decide ~cfg ~rows ~merge links_out =
  let answered =
    List.filter_map
      (fun (rank, range, res) ->
        match res with
        | Ok (rep : _ Supervisor.report) ->
            Some (rank, range, rep.Supervisor.output)
        | Error _ -> None)
      links_out
  in
  let survivors = List.length answered in
  if survivors >= cfg.quorum then begin
    let merged = merge answered in
    if survivors = cfg.workers then Ok (Outcome.Full merged, survivors, 1.0)
    else begin
      let coverage =
        Shard.coverage ~rows (List.map (fun (_, range, _) -> range) answered)
      in
      if Metrics.enabled () then Metrics.incr c_degraded;
      if Trace.enabled () then
        Trace.event ~name:"fleet.degraded"
          ~attrs:
            [
              ("survivors", Json.Int survivors);
              ("workers", Json.Int cfg.workers);
              ("coverage", Json.Float coverage);
            ]
          ();
      let d = Outcome.degradation ~survivors ~parties:cfg.workers ~coverage in
      Ok (Outcome.Degraded (merged, d), survivors, coverage)
    end
  end
  else begin
    if Metrics.enabled () then Metrics.incr c_giveups;
    if Trace.enabled () then
      Trace.event ~name:"fleet.give_up"
        ~attrs:
          [
            ("survivors", Json.Int survivors);
            ("quorum", Json.Int cfg.quorum);
          ]
        ();
    let last_err =
      List.fold_left
        (fun acc (_, _, res) ->
          match res with Error e -> Some e | Ok _ -> acc)
        None links_out
    in
    match last_err with
    | Some e -> Error e
    | None -> Error (Outcome.Protocol_failure "fleet: quorum unsatisfiable")
  end

let fleet_span ~cfg ~protocol f =
  Trace.with_span ~name:"fleet.run"
    ~attrs:
      [
        ("workers", Json.Int cfg.workers);
        ("quorum", Json.Int cfg.quorum);
        ("protocol", Json.String protocol);
      ]
    f

let run ?wire cfg packed ~a ~b =
  match
    Outcome.guard (fun () ->
        (Bmat.rows a, Shard.ranges ~rows:(Bmat.rows a) ~workers:cfg.workers))
  with
  | Error e -> Error e
  | Ok (rows, ranges) -> (
      let protocol = sanitize (Estimator.name packed) in
      fleet_span ~cfg ~protocol @@ fun () ->
      let links_raw =
        Array.to_list
          (Array.mapi
             (fun rank range ->
               let shard_a = Shard.slice a range in
               let body ctx =
                 Estimator.run_default packed ctx ~a:shard_a ~b
               in
               let result, straggled =
                 run_link ~cfg ~wire ~protocol ~rank ~range ~body
               in
               (rank, range, result, straggled))
             ranges)
      in
      let links =
        List.map
          (fun (rank, range, result, straggled) ->
            match result with
            | Ok (rep : _ Supervisor.report) ->
                {
                  rank;
                  range;
                  attempts = rep.Supervisor.attempts;
                  answer = Ok rep.Supervisor.output;
                  fresh_bits = rep.Supervisor.fresh_bits;
                  fresh_rounds = rep.Supervisor.fresh_rounds;
                  resume_bits_saved = rep.Supervisor.resume_bits_saved;
                  straggled;
                }
            | Error e ->
                {
                  rank;
                  range;
                  attempts = [];
                  answer = Error e;
                  fresh_bits = 0;
                  fresh_rounds = 0;
                  resume_bits_saved = 0;
                  straggled;
                })
          links_raw
      in
      let merge parts =
        Merge.merge ~name:(Estimator.name packed) ~seed:cfg.seed
          (List.map
             (fun (rank, range, value) -> { Merge.rank; range; value })
             parts)
      in
      match
        Outcome.guard (fun () ->
            decide ~cfg ~rows ~merge
              (List.map
                 (fun (rank, range, res, _) -> (rank, range, res))
                 links_raw))
      with
      | Error e | Ok (Error e) -> Error e
      | Ok (Ok (answer, survivors, coverage)) ->
          Ok
            {
              answer;
              links;
              survivors;
              coverage;
              fresh_bits =
                List.fold_left
                  (fun acc (l : link_report) -> acc + l.fresh_bits)
                  0 links;
              fresh_rounds =
                List.fold_left
                  (fun acc (l : link_report) -> max acc l.fresh_rounds)
                  0 links;
              resume_bits_saved =
                List.fold_left
                  (fun acc (l : link_report) -> acc + l.resume_bits_saved)
                  0 links;
            })

type batch_link = {
  b_rank : int;
  b_range : Shard.range;
  b_attempts : Supervisor.attempt list;
  b_answers : (Engine.answer array, Outcome.error) result;
}

type batch_report = {
  batch_answers : Engine.answer array Outcome.graded;
  batch_links : batch_link list;
  batch_survivors : int;
  batch_coverage : float;
  batch_fresh_bits : int;
}

let run_batch ?wire cfg engine queries ~a ~b =
  match
    Outcome.guard (fun () ->
        if queries = [] then invalid_arg "Fleet.run_batch: empty batch";
        (Bmat.rows a, Shard.ranges ~rows:(Bmat.rows a) ~workers:cfg.workers))
  with
  | Error e -> Error e
  | Ok (rows, ranges) -> (
      let protocol = "engine-batch" in
      fleet_span ~cfg ~protocol @@ fun () ->
      let bi = Imat.of_bmat b in
      let links_raw =
        Array.to_list
          (Array.mapi
             (fun rank range ->
               let ai = Imat.of_bmat (Shard.slice a range) in
               let body ctx =
                 (Engine.run engine ctx ~a:ai ~b:bi queries).Engine.answers
               in
               let result, _ =
                 run_link ~cfg ~wire ~protocol ~rank ~range ~body
               in
               (rank, range, result))
             ranges)
      in
      let nq = List.length queries in
      let merge parts =
        Array.of_list
          (List.mapi
             (fun qi q ->
               Engine.merge_answers ~seed:cfg.seed ~rows q
                 (List.map
                    (fun (_, (range : Shard.range), answers) ->
                      if Array.length answers <> nq then
                        invalid_arg "Fleet.run_batch: ragged link answers";
                      (range.Shard.offset, range.Shard.length, answers.(qi)))
                    parts))
             queries)
      in
      match Outcome.guard (fun () -> decide ~cfg ~rows ~merge links_raw) with
      | Error e | Ok (Error e) -> Error e
      | Ok (Ok (batch_answers, batch_survivors, batch_coverage)) ->
          let batch_links =
            List.map
              (fun (rank, range, result) ->
                match result with
                | Ok (rep : _ Supervisor.report) ->
                    {
                      b_rank = rank;
                      b_range = range;
                      b_attempts = rep.Supervisor.attempts;
                      b_answers = Ok rep.Supervisor.output;
                    }
                | Error e ->
                    {
                      b_rank = rank;
                      b_range = range;
                      b_attempts = [];
                      b_answers = Error e;
                    })
              links_raw
          in
          Ok
            {
              batch_answers;
              batch_links;
              batch_survivors;
              batch_coverage;
              batch_fresh_bits =
                List.fold_left
                  (fun acc (_, _, result) ->
                    match result with
                    | Ok (rep : _ Supervisor.report) ->
                        acc + rep.Supervisor.fresh_bits
                    | Error _ -> acc)
                  0 links_raw;
            })
