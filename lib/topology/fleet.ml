module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Transcript = Matprod_comm.Transcript
module Estimator = Matprod_core.Estimator
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor
module Engine = Matprod_engine.Engine
module Verify = Matprod_verify.Verify
module Prng = Matprod_util.Prng
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Json = Matprod_obs.Json

type link_policy = {
  max_resumes : int;
  max_reseeds : int;
  deadline_s : float option;
}

let default_link_policy = { max_resumes = 2; max_reseeds = 1; deadline_s = None }

type config = {
  workers : int;
  quorum : int;
  seed : int;
  replicas : int;
  verify : bool;
  link_policy : link_policy;
  journal : string option;
  transport : Matprod_comm.Transport.factory option;
}

let config ?quorum ?(replicas = 1) ?(verify = false)
    ?(link_policy = default_link_policy) ?journal ?transport ~workers ~seed
    () =
  if workers < 1 then invalid_arg "Fleet.config: workers must be >= 1";
  if replicas < 1 || replicas > 16 then
    invalid_arg "Fleet.config: replicas must be in [1, 16]";
  let quorum = Option.value quorum ~default:workers in
  if quorum < 1 || quorum > workers then
    invalid_arg "Fleet.config: quorum must be in [1, workers]";
  { workers; quorum; seed; replicas; verify; link_policy; journal; transport }

(* Replica 0 runs at the fleet seed — a replicas = 1 fleet is bit-identical
   to the pre-replica fleet. Higher replicas derive independent seeds from
   (fleet seed, rank, replica). *)
let replica_seed cfg ~rank ~replica =
  if replica = 0 then cfg.seed
  else Prng.fresh_seed (Prng.derive cfg.seed rank replica)

type link_report = {
  rank : int;
  replica : int;
  range : Shard.range;
  attempts : Supervisor.attempt list;
  answer : (Estimator.comparable, Outcome.error) result;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
  straggled : bool;
}

type suspect = {
  s_rank : int;
  s_replica : int;
  s_check : string;
  s_detail : string;
}

type report = {
  answer : Estimator.comparable Outcome.graded;
  links : link_report list;
  suspects : suspect list;
  survivors : int;
  coverage : float;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
}

let c_links = Metrics.counter "fleet_links"
let c_link_failures = Metrics.counter "fleet_link_failures"
let c_stragglers = Metrics.counter "fleet_stragglers"
let c_degraded = Metrics.counter "fleet_degraded"
let c_giveups = Metrics.counter "fleet_giveups"
let c_quarantined = Metrics.counter "fleet_quarantined"

let link_names rank = function
  | Transcript.Alice -> Printf.sprintf "worker%d" rank
  | Transcript.Bob -> "coordinator"

(* Journal filenames derive from the estimator's registry name; keep them
   shell-friendly. *)
let sanitize name =
  String.map (fun c -> if c = ' ' || c = '=' || c = '/' then '-' else c) name

let quarantine_event ~rank ~replica ~check ~detail =
  if Metrics.enabled () then Metrics.incr c_quarantined;
  if Trace.enabled () then
    Trace.event ~name:"fleet.quarantine"
      ~attrs:
        [
          ("rank", Json.Int rank);
          ("replica", Json.Int replica);
          ("check", Json.String check);
          ("detail", Json.String detail);
        ]
      ()

(* One link: the per-link supervisor ladder around [body], with straggler
   detection folded into the guarded body — a late answer is discarded
   and the ladder escalates exactly as for a crash, so the next rung is a
   journal resume that replays the delivered prefix without re-paying the
   delay spike. *)
let run_link ~cfg ~wire ~protocol ~rank ~replica ~seed ~(range : Shard.range)
    ~body =
  let straggled = ref false in
  let deadline_body ctx =
    let v = body ctx in
    (match cfg.link_policy.deadline_s with
    | None -> ()
    | Some d ->
        let diag = Outcome.diagnostics_of_ctx ctx in
        if diag.Outcome.waited > d then begin
          straggled := true;
          if Metrics.enabled () then Metrics.incr c_stragglers;
          if Trace.enabled () then
            Trace.event ~name:"fleet.straggler"
              ~attrs:
                [
                  ("rank", Json.Int rank);
                  ("replica", Json.Int replica);
                  ("waited", Json.Float diag.Outcome.waited);
                  ("deadline", Json.Float d);
                ]
              ();
          failwith
            (Printf.sprintf
               "straggler: worker %d waited %.3fs > deadline %.3fs" rank
               diag.Outcome.waited d)
        end);
    v
  in
  let policy =
    Supervisor.policy ~max_resumes:cfg.link_policy.max_resumes
      ~max_reseeds:cfg.link_policy.max_reseeds ()
  in
  let suffix = if replica = 0 then "" else Printf.sprintf ".r%d" replica in
  let journal =
    Option.map
      (fun base -> Printf.sprintf "%s.worker%d%s" base rank suffix)
      cfg.journal
  in
  let wire =
    Option.map (fun f ~attempt ctx -> f ~rank ~replica ~attempt ctx) wire
  in
  if Metrics.enabled () then Metrics.incr c_links;
  let result =
    Metrics.in_scope (Printf.sprintf "link%d%s" rank suffix) @@ fun () ->
    Trace.with_span ~name:"fleet.link"
      ~attrs:
        [
          ("rank", Json.Int rank);
          ("replica", Json.Int replica);
          ("rows", Json.Int range.Shard.length);
          ("protocol", Json.String protocol);
        ]
    @@ fun () ->
    Supervisor.run ~policy ?journal ?wire ?transport:cfg.transport
      ~names:(link_names rank) ~seed
      ~protocol:(Printf.sprintf "%s@worker%d%s" protocol rank suffix)
      deadline_body
  in
  if Metrics.enabled () then (
    match result with
    | Error _ -> Metrics.incr c_link_failures
    | Ok _ -> ());
  (result, !straggled)

(* Quorum decision shared by the estimator and engine fleets: [merge]
   sees only the surviving (rank, range, output) parts, so a degraded
   answer is by construction the full-fleet merge restricted to the
   surviving links. *)
let decide ~cfg ~rows ~merge links_out =
  let answered =
    List.filter_map
      (fun (rank, range, res) ->
        match res with
        | Ok (rep : _ Supervisor.report) ->
            Some (rank, range, rep.Supervisor.output)
        | Error _ -> None)
      links_out
  in
  let survivors = List.length answered in
  if survivors >= cfg.quorum then begin
    let merged = merge answered in
    if survivors = cfg.workers then Ok (Outcome.Full merged, survivors, 1.0)
    else begin
      let coverage =
        Shard.coverage ~rows (List.map (fun (_, range, _) -> range) answered)
      in
      if Metrics.enabled () then Metrics.incr c_degraded;
      if Trace.enabled () then
        Trace.event ~name:"fleet.degraded"
          ~attrs:
            [
              ("survivors", Json.Int survivors);
              ("workers", Json.Int cfg.workers);
              ("coverage", Json.Float coverage);
            ]
          ();
      let d = Outcome.degradation ~survivors ~parties:cfg.workers ~coverage in
      Ok (Outcome.Degraded (merged, d), survivors, coverage)
    end
  end
  else begin
    if Metrics.enabled () then Metrics.incr c_giveups;
    if Trace.enabled () then
      Trace.event ~name:"fleet.give_up"
        ~attrs:
          [
            ("survivors", Json.Int survivors);
            ("quorum", Json.Int cfg.quorum);
          ]
        ();
    let last_err =
      List.fold_left
        (fun acc (_, _, res) ->
          match res with Error e -> Some e | Ok _ -> acc)
        None links_out
    in
    match last_err with
    | Some e -> Error e
    | None -> Error (Outcome.Protocol_failure "fleet: quorum unsatisfiable")
  end

let fleet_span ~cfg ~protocol f =
  Trace.with_span ~name:"fleet.run"
    ~attrs:
      [
        ("workers", Json.Int cfg.workers);
        ("quorum", Json.Int cfg.quorum);
        ("replicas", Json.Int cfg.replicas);
        ("protocol", Json.String protocol);
      ]
    f

(* One replica run of one shard, after link-level success/failure has been
   settled but before verification and voting. *)
type replica_out = {
  ro_replica : int;
  ro_seed : int;
  ro_result : (Estimator.comparable Supervisor.report, Outcome.error) result;
  ro_straggled : bool;
  (* (check, detail) when the coordinator quarantined this replica *)
  mutable ro_quarantine : (string * string) option;
}

(* Verification + voting for one shard's replica group. Returns the
   shard's surviving representative (feeding the quorum ladder) and the
   per-replica quarantine annotations made along the way. A quarantined
   replica keeps its supervisor attempts in the link report but its
   answer is replaced by the typed {!Outcome.Byzantine_detected}. *)
let reconcile ~cfg ~summary ~rank (replicas : replica_out list) =
  (* 1. per-answer validation (the semantic firewall) *)
  if cfg.verify then
    List.iter
      (fun ro ->
        match ro.ro_result with
        | Error _ -> ()
        | Ok rep -> (
            match
              Verify.check summary ~seed:ro.ro_seed rep.Supervisor.output
            with
            | Verify.Pass -> ()
            | Verify.Fail { invariant; detail } ->
                ro.ro_quarantine <- Some (invariant, detail);
                quarantine_event ~rank ~replica:ro.ro_replica ~check:invariant
                  ~detail))
      replicas;
  (* 2. replica vote among the validator-passing survivors *)
  let passers =
    List.filter
      (fun ro -> ro.ro_quarantine = None && Result.is_ok ro.ro_result)
      replicas
  in
  let voted =
    Verify.vote summary
      (List.map
         (fun ro ->
           match ro.ro_result with
           | Ok rep -> (ro.ro_replica, rep.Supervisor.output)
           | Error _ -> assert false)
         passers)
  in
  match voted with
  | Some vr ->
      List.iter
        (fun (replica, detail) ->
          match
            List.find_opt (fun ro -> ro.ro_replica = replica) replicas
          with
          | Some ro ->
              ro.ro_quarantine <- Some ("replica_vote", detail);
              quarantine_event ~rank ~replica ~check:"replica_vote" ~detail
          | None -> ())
        vr.Verify.outvoted;
      let chosen =
        List.find (fun ro -> ro.ro_replica = vr.Verify.chosen) passers
      in
      (match chosen.ro_result with Ok rep -> Ok rep | Error e -> Error e)
  | None -> (
      (* No strict majority (or no passer at all): the whole replica
         group is lost and the quorum/Degraded ladder takes over. *)
      (match passers with
      | [] -> ()
      | _ ->
          List.iter
            (fun ro ->
              let detail = "no strict-majority agreement among replicas" in
              ro.ro_quarantine <- Some ("ambiguous_vote", detail);
              quarantine_event ~rank ~replica:ro.ro_replica
                ~check:"ambiguous_vote" ~detail)
            passers);
      let first_quarantined =
        List.find_opt (fun ro -> ro.ro_quarantine <> None) replicas
      in
      match first_quarantined with
      | Some ro ->
          let check, _ = Option.get ro.ro_quarantine in
          Error
            (Outcome.Byzantine_detected
               { rank; replica = ro.ro_replica; check })
      | None -> (
          match
            List.fold_left
              (fun acc ro ->
                match ro.ro_result with Error e -> Some e | Ok _ -> acc)
              None replicas
          with
          | Some e -> Error e
          | None -> Error (Outcome.Protocol_failure "fleet: empty replica group")
          ))

let link_report_of ~rank ~range ro =
  match (ro.ro_quarantine, ro.ro_result) with
  | Some (check, _), Ok rep ->
      {
        rank;
        replica = ro.ro_replica;
        range;
        attempts = rep.Supervisor.attempts;
        answer =
          Error
            (Outcome.Byzantine_detected { rank; replica = ro.ro_replica; check });
        fresh_bits = rep.Supervisor.fresh_bits;
        fresh_rounds = rep.Supervisor.fresh_rounds;
        resume_bits_saved = rep.Supervisor.resume_bits_saved;
        straggled = ro.ro_straggled;
      }
  | _, Ok rep ->
      {
        rank;
        replica = ro.ro_replica;
        range;
        attempts = rep.Supervisor.attempts;
        answer = Ok rep.Supervisor.output;
        fresh_bits = rep.Supervisor.fresh_bits;
        fresh_rounds = rep.Supervisor.fresh_rounds;
        resume_bits_saved = rep.Supervisor.resume_bits_saved;
        straggled = ro.ro_straggled;
      }
  | _, Error e ->
      {
        rank;
        replica = ro.ro_replica;
        range;
        attempts = [];
        answer = Error e;
        fresh_bits = 0;
        fresh_rounds = 0;
        resume_bits_saved = 0;
        straggled = ro.ro_straggled;
      }

let run ?wire cfg packed ~a ~b =
  match
    Outcome.guard (fun () ->
        (Bmat.rows a, Shard.ranges ~rows:(Bmat.rows a) ~workers:cfg.workers))
  with
  | Error e -> Error e
  | Ok (rows, ranges) -> (
      let protocol = sanitize (Estimator.name packed) in
      fleet_span ~cfg ~protocol @@ fun () ->
      let shards =
        Array.to_list
          (Array.mapi
             (fun rank range ->
               let shard_a = Shard.slice a range in
               (* The byzantine boundary: a fault rule armed on this
                  link's wire may perturb the decoded answer after
                  correct framing — CRC and ARQ pass by construction,
                  only the coordinator's semantic checks can catch it. *)
               let body ctx =
                 let ans = Estimator.run_default packed ctx ~a:shard_a ~b in
                 match
                   Option.bind (Ctx.installed_fault ctx) Fault.check_byzantine
                 with
                 | None -> ans
                 | Some (mode, g) -> Verify.corrupt mode g ans
               in
               let replicas =
                 List.init cfg.replicas (fun replica ->
                     let seed = replica_seed cfg ~rank ~replica in
                     let result, straggled =
                       run_link ~cfg ~wire ~protocol ~rank ~replica ~seed
                         ~range ~body
                     in
                     {
                       ro_replica = replica;
                       ro_seed = seed;
                       ro_result = result;
                       ro_straggled = straggled;
                       ro_quarantine = None;
                     })
               in
               let summary =
                 Verify.summarize ~name:(Estimator.name packed) ~a:shard_a ~b
               in
               let shard_res = reconcile ~cfg ~summary ~rank replicas in
               (rank, range, replicas, shard_res))
             ranges)
      in
      let links =
        List.concat_map
          (fun (rank, range, replicas, _) ->
            List.map (link_report_of ~rank ~range) replicas)
          shards
      in
      let suspects =
        List.concat_map
          (fun (rank, _, replicas, _) ->
            List.filter_map
              (fun ro ->
                Option.map
                  (fun (check, detail) ->
                    {
                      s_rank = rank;
                      s_replica = ro.ro_replica;
                      s_check = check;
                      s_detail = detail;
                    })
                  ro.ro_quarantine)
              replicas)
          shards
      in
      let merge parts =
        Merge.merge ~name:(Estimator.name packed) ~seed:cfg.seed
          (List.map
             (fun (rank, range, value) -> { Merge.rank; range; value })
             parts)
      in
      match
        Outcome.guard (fun () ->
            decide ~cfg ~rows ~merge
              (List.map (fun (rank, range, _, res) -> (rank, range, res)) shards))
      with
      | Error e | Ok (Error e) -> Error e
      | Ok (Ok (answer, survivors, coverage)) ->
          Ok
            {
              answer;
              links;
              suspects;
              survivors;
              coverage;
              fresh_bits =
                List.fold_left
                  (fun acc (l : link_report) -> acc + l.fresh_bits)
                  0 links;
              fresh_rounds =
                List.fold_left
                  (fun acc (l : link_report) -> max acc l.fresh_rounds)
                  0 links;
              resume_bits_saved =
                List.fold_left
                  (fun acc (l : link_report) -> acc + l.resume_bits_saved)
                  0 links;
            })

type batch_link = {
  b_rank : int;
  b_replica : int;
  b_range : Shard.range;
  b_attempts : Supervisor.attempt list;
  b_answers : (Engine.answer array, Outcome.error) result;
}

type batch_report = {
  batch_answers : Engine.answer array Outcome.graded;
  batch_links : batch_link list;
  batch_suspects : suspect list;
  batch_survivors : int;
  batch_coverage : float;
  batch_fresh_bits : int;
}

(* Batch replicas all run at the fleet seed (the engine's determinism
   contract makes honest replicas byte-identical), so the vote is exact
   agreement on the whole answer array — classic TMR. [compare] rather
   than [=]: it treats equal nans as equal. *)
let batch_answers_equal (xs : Engine.answer array) ys = compare xs ys = 0

let reconcile_batch ~cfg ~rank ~queries ~summaries
    (replicas :
      ((Engine.answer array Supervisor.report, Outcome.error) result * int) list)
    =
  let annotated =
    List.map
      (fun (res, replica) ->
        let quarantine = ref None in
        (match res with
        | Ok rep when cfg.verify ->
            List.iteri
              (fun qi q ->
                if !quarantine = None then
                  let s = List.nth summaries qi in
                  match
                    Verify.check_answer s ~seed:cfg.seed q
                      rep.Supervisor.output.(qi)
                  with
                  | Verify.Pass -> ()
                  | Verify.Fail { invariant; detail } ->
                      quarantine := Some (invariant, detail);
                      quarantine_event ~rank ~replica ~check:invariant ~detail)
              queries
        | _ -> ());
        (res, replica, quarantine))
      replicas
  in
  let passers =
    List.filter_map
      (fun (res, replica, q) ->
        match (res, !q) with
        | Ok rep, None -> Some (rep, replica, q)
        | _ -> None)
      annotated
  in
  (* majority by exact agreement *)
  let shard_res =
    match passers with
    | [] -> (
        match
          List.find_opt (fun (_, _, q) -> !q <> None) annotated
        with
        | Some (_, replica, q) ->
            let check, _ = Option.get !q in
            Error (Outcome.Byzantine_detected { rank; replica; check })
        | None -> (
            match
              List.fold_left
                (fun acc (res, _, _) ->
                  match res with Error e -> Some e | Ok _ -> acc)
                None annotated
            with
            | Some e -> Error e
            | None ->
                Error (Outcome.Protocol_failure "fleet: empty replica group")))
    | (first, _, _) :: _ ->
        let n = List.length passers in
        let count rep =
          List.length
            (List.filter
               (fun (r, _, _) ->
                 batch_answers_equal r.Supervisor.output rep.Supervisor.output)
               passers)
        in
        let winner =
          List.find_opt (fun (rep, _, _) -> 2 * count rep > n) passers
        in
        (match winner with
        | Some (rep, _, _) ->
            List.iter
              (fun (r, replica, q) ->
                if
                  not
                    (batch_answers_equal r.Supervisor.output
                       rep.Supervisor.output)
                then begin
                  let detail =
                    Printf.sprintf
                      "replica output disagrees with the %d-replica majority"
                      (count rep)
                  in
                  q := Some ("replica_vote", detail);
                  quarantine_event ~rank ~replica ~check:"replica_vote" ~detail
                end)
              passers;
            Ok rep
        | None ->
            List.iter
              (fun (_, replica, q) ->
                let detail = "no strict-majority agreement among replicas" in
                q := Some ("ambiguous_vote", detail);
                quarantine_event ~rank ~replica ~check:"ambiguous_vote" ~detail)
              passers;
            ignore first;
            let _, replica, q = List.hd (List.rev annotated) in
            let check =
              match !q with Some (c, _) -> c | None -> "ambiguous_vote"
            in
            Error (Outcome.Byzantine_detected { rank; replica; check }))
  in
  (annotated, shard_res)

let run_batch ?wire cfg engine queries ~a ~b =
  match
    Outcome.guard (fun () ->
        if queries = [] then invalid_arg "Fleet.run_batch: empty batch";
        (Bmat.rows a, Shard.ranges ~rows:(Bmat.rows a) ~workers:cfg.workers))
  with
  | Error e -> Error e
  | Ok (rows, ranges) -> (
      let protocol = "engine-batch" in
      fleet_span ~cfg ~protocol @@ fun () ->
      let bi = Imat.of_bmat b in
      let shards =
        Array.to_list
          (Array.mapi
             (fun rank range ->
               let shard_a_b = Shard.slice a range in
               let ai = Imat.of_bmat shard_a_b in
               let body ctx =
                 let answers =
                   (Engine.run engine ctx ~a:ai ~b:bi queries).Engine.answers
                 in
                 match
                   Option.bind (Ctx.installed_fault ctx) Fault.check_byzantine
                 with
                 | None -> answers
                 | Some (mode, g) ->
                     Array.map (Verify.corrupt_answer mode g) answers
               in
               let replicas =
                 (* All batch replicas run at the fleet seed: the engine's
                    determinism contract makes honest replicas byte-identical,
                    which is what the exact-agreement (TMR) vote needs. *)
                 List.init cfg.replicas (fun replica ->
                     let result, _ =
                       run_link ~cfg ~wire ~protocol ~rank ~replica
                         ~seed:cfg.seed ~range ~body
                     in
                     (result, replica))
               in
               let summaries =
                 if cfg.verify then begin
                   let s = Verify.summarize ~name:"engine" ~a:shard_a_b ~b in
                   List.map (fun _ -> s) queries
                 end
                 else []
               in
               let annotated, shard_res =
                 if cfg.verify || cfg.replicas > 1 then
                   reconcile_batch ~cfg ~rank ~queries ~summaries replicas
                 else
                   ( List.map (fun (res, replica) -> (res, replica, ref None)) replicas,
                     match replicas with
                     | [ (Ok rep, _) ] -> Ok rep
                     | [ (Error e, _) ] -> Error e
                     | _ -> assert false )
               in
               (rank, range, annotated, shard_res))
             ranges)
      in
      let nq = List.length queries in
      let merge parts =
        Array.of_list
          (List.mapi
             (fun qi q ->
               Engine.merge_answers ~seed:cfg.seed ~rows q
                 (List.map
                    (fun (_, (range : Shard.range), answers) ->
                      if Array.length answers <> nq then
                        invalid_arg "Fleet.run_batch: ragged link answers";
                      (range.Shard.offset, range.Shard.length, answers.(qi)))
                    parts))
             queries)
      in
      match
        Outcome.guard (fun () ->
            decide ~cfg ~rows ~merge
              (List.map (fun (rank, range, _, res) -> (rank, range, res)) shards))
      with
      | Error e | Ok (Error e) -> Error e
      | Ok (Ok (batch_answers, batch_survivors, batch_coverage)) ->
          let batch_links =
            List.concat_map
              (fun (rank, range, annotated, _) ->
                List.map
                  (fun (res, replica, q) ->
                    match (res, !q) with
                    | Ok (rep : _ Supervisor.report), Some (check, _) ->
                        {
                          b_rank = rank;
                          b_replica = replica;
                          b_range = range;
                          b_attempts = rep.Supervisor.attempts;
                          b_answers =
                            Error
                              (Outcome.Byzantine_detected
                                 { rank; replica; check });
                        }
                    | Ok rep, None ->
                        {
                          b_rank = rank;
                          b_replica = replica;
                          b_range = range;
                          b_attempts = rep.Supervisor.attempts;
                          b_answers = Ok rep.Supervisor.output;
                        }
                    | Error e, _ ->
                        {
                          b_rank = rank;
                          b_replica = replica;
                          b_range = range;
                          b_attempts = [];
                          b_answers = Error e;
                        })
                  annotated)
              shards
          in
          let batch_suspects =
            List.concat_map
              (fun (rank, _, annotated, _) ->
                List.filter_map
                  (fun (_, replica, q) ->
                    Option.map
                      (fun (check, detail) ->
                        {
                          s_rank = rank;
                          s_replica = replica;
                          s_check = check;
                          s_detail = detail;
                        })
                      !q)
                  annotated)
              shards
          in
          Ok
            {
              batch_answers;
              batch_links;
              batch_suspects;
              batch_survivors;
              batch_coverage;
              batch_fresh_bits =
                List.fold_left
                  (fun acc (_, _, annotated, _) ->
                    List.fold_left
                      (fun acc (res, _, _) ->
                        match res with
                        | Ok (rep : _ Supervisor.report) ->
                            acc + rep.Supervisor.fresh_bits
                        | Error _ -> acc)
                      acc annotated)
                  0 shards;
            })
