module Bmat = Matprod_matrix.Bmat

type range = { offset : int; length : int }

let ranges ~rows ~workers =
  if workers < 1 then invalid_arg "Shard.ranges: workers must be >= 1";
  if workers > rows then
    invalid_arg
      (Printf.sprintf "Shard.ranges: %d workers for %d rows" workers rows);
  let base = rows / workers and extra = rows mod workers in
  let out = Array.make workers { offset = 0; length = 0 } in
  let offset = ref 0 in
  for i = 0 to workers - 1 do
    let length = base + if i < extra then 1 else 0 in
    out.(i) <- { offset = !offset; length };
    offset := !offset + length
  done;
  out

let slice m r =
  if r.offset < 0 || r.length < 0 || r.offset + r.length > Bmat.rows m then
    invalid_arg "Shard.slice: range out of bounds";
  Bmat.create ~rows:r.length ~cols:(Bmat.cols m)
    (Array.init r.length (fun j -> Array.copy (Bmat.row m (r.offset + j))))

let coverage ~rows rs =
  if rows <= 0 then invalid_arg "Shard.coverage: rows must be > 0";
  let covered = List.fold_left (fun acc r -> acc + r.length) 0 rs in
  float_of_int covered /. float_of_int rows

let pp_range ppf r =
  Format.fprintf ppf "[%d, %d)" r.offset (r.offset + r.length)
