(** Typed merge of per-shard estimator answers into a fleet answer.

    Worker [i] answers the estimator on (A⟨i⟩, B), where A⟨i⟩ is its
    compact row shard; since the shard products C⟨i⟩ = A⟨i⟩·B stack on
    disjoint row blocks of C, the merge is exact per answer shape:

    - {b Number}: sum — ‖C‖_p^p, join sizes and entry counts are sums over
      row blocks. Exception: max-type statistics (‖C‖_∞, registry name
      ["linf_general"]) take the max instead.
    - {b Leveled} (ℓ∞ family): the part with the largest estimate wins,
      keeping its subsampling level.
    - {b Coords} (heavy hitters): union, with shard-local row indices
      translated by the shard offset. Per-shard φ-thresholds are relative
      to the shard's mass ≤ the global mass, so recall is preserved;
      precision degrades gracefully (docs/ROBUSTNESS.md).
    - {b Sample}/{b Samples}: one surviving sample chosen per slot by a
      seeded weighted draw (weight = shard row count) over the shards that
      produced one — deterministic in (seed, surviving parts).
    - {b Shares}: the coordinator is the answering client, so it
      reconstructs each shard's exact product C⟨i⟩ = C_A + C_B, translates
      rows, and returns the merged product entries as
      [Shares (entries, [])].

    Merging is a pure function of the surviving parts (plus [seed] for
    sample draws): a (k−1)-quorum answer equals the full-fleet merge
    restricted to the surviving links — the property the topology tests
    assert for every registered estimator. *)

type part = {
  rank : int;
  range : Shard.range;
  value : Matprod_core.Estimator.comparable;
}

val merge :
  name:string ->
  seed:int ->
  part list ->
  Matprod_core.Estimator.comparable
(** [name] is the registry name of the estimator (selects sum-vs-max for
    [Number] answers). Parts may arrive in any order; they are merged in
    rank order. Raises [Invalid_argument] on an empty part list or on
    parts with mismatched answer shapes. *)
