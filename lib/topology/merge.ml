module Prng = Matprod_util.Prng
module Estimator = Matprod_core.Estimator

type part = {
  rank : int;
  range : Shard.range;
  value : Estimator.comparable;
}

(* Number answers merge by sum (norm powers, counts, join sizes) except
   for max-type statistics. Keyed by registry name so a new estimator
   gets the safe constructor default unless it opts in here. *)
let max_type_numbers = [ "linf_general" ]

let translate_row offset (r, c, v) = (r + offset, c, v)

let sum_numbers parts =
  List.fold_left
    (fun acc p ->
      match p.value with
      | Estimator.Number x -> acc +. x
      | _ -> invalid_arg "Merge: mixed answer shapes")
    0.0 parts

let max_numbers parts =
  List.fold_left
    (fun acc p ->
      match p.value with
      | Estimator.Number x -> Float.max acc x
      | _ -> invalid_arg "Merge: mixed answer shapes")
    neg_infinity parts

let max_leveled parts =
  let best =
    List.fold_left
      (fun acc p ->
        match (p.value, acc) with
        | Estimator.Leveled (e, l), None -> Some (e, l)
        | Estimator.Leveled (e, l), Some (e', _) when e > e' -> Some (e, l)
        | Estimator.Leveled _, some -> some
        | _ -> invalid_arg "Merge: mixed answer shapes")
      None parts
  in
  match best with
  | Some (e, l) -> Estimator.Leveled (e, l)
  | None -> invalid_arg "Merge: no parts"

let union_coords parts =
  let all =
    List.concat_map
      (fun p ->
        match p.value with
        | Estimator.Coords cs ->
            List.map (fun (r, c) -> (r + p.range.Shard.offset, c)) cs
        | _ -> invalid_arg "Merge: mixed answer shapes")
      parts
  in
  Estimator.Coords (List.sort_uniq compare all)

(* Weighted reservoir over the shards that drew a sample: shard i keeps
   the slot with probability row_i / (rows seen so far). One PRNG draw
   per present sample, so the choice is a deterministic function of
   (seed, surviving parts) — a quorum merge consumes exactly the same
   stream as the full merge restricted to the same survivors. *)
let pick_sample rng parts extract =
  let chosen = ref None and total = ref 0 in
  List.iter
    (fun p ->
      match extract p with
      | None -> ()
      | Some s ->
          let w = p.range.Shard.length in
          total := !total + w;
          let u = Prng.float rng in
          if u *. float_of_int !total < float_of_int w then
            chosen := Some (translate_row p.range.Shard.offset s))
    parts;
  !chosen

let pick_one rng parts =
  pick_sample rng parts (fun p ->
      match p.value with
      | Estimator.Sample s -> s
      | _ -> invalid_arg "Merge: mixed answer shapes")

let pick_slots rng parts =
  let slots =
    List.fold_left
      (fun acc p ->
        match p.value with
        | Estimator.Samples ss -> max acc (List.length ss)
        | _ -> invalid_arg "Merge: mixed answer shapes")
      0 parts
  in
  Estimator.Samples
    (List.init slots (fun j ->
         pick_sample rng parts (fun p ->
             match p.value with
             | Estimator.Samples ss -> Option.join (List.nth_opt ss j)
             | _ -> None)))

(* The coordinator holds B and is the client the fleet answers to, so for
   share answers it reconstructs each shard's exact product C⟨i⟩ =
   C_A + C_B and returns the merged entries of C. Zero shards cancel to
   nothing, so the merge is a pure function of the product. *)
let product_entries parts =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      match p.value with
      | Estimator.Shares (alice, bob) ->
          List.iter
            (fun (r, c, v) ->
              let key = (r + p.range.Shard.offset, c) in
              let cur = try Hashtbl.find tbl key with Not_found -> 0 in
              Hashtbl.replace tbl key (cur + v))
            (alice @ bob)
      | _ -> invalid_arg "Merge: mixed answer shapes")
    parts;
  let entries =
    Hashtbl.fold
      (fun (r, c) v acc -> if v = 0 then acc else (r, c, v) :: acc)
      tbl []
  in
  Estimator.Shares (List.sort compare entries, [])

let merge ~name ~seed parts =
  if parts = [] then invalid_arg "Merge: no parts";
  let parts = List.sort (fun a b -> compare a.rank b.rank) parts in
  let rng = Prng.create (seed lxor 0x6d657267 (* "merg" *)) in
  match (List.hd parts).value with
  | Estimator.Number _ ->
      if List.mem name max_type_numbers then
        Estimator.Number (max_numbers parts)
      else Estimator.Number (sum_numbers parts)
  | Estimator.Leveled _ -> max_leveled parts
  | Estimator.Coords _ -> union_coords parts
  | Estimator.Sample _ -> Estimator.Sample (pick_one rng parts)
  | Estimator.Samples _ -> pick_slots rng parts
  | Estimator.Shares _ -> product_entries parts
