(** Row sharding for the coordinator + k workers topology.

    The fleet shards the {e output rows} of C = A·B: worker [i] owns a
    contiguous block of A's rows (compactly, as its own smaller matrix),
    while B is replicated at the coordinator. Because
    C = [A⟨0⟩; …; A⟨k−1⟩]·B stacks the per-shard products on disjoint row
    blocks, every row-decomposable statistic of C is an exact merge of the
    per-shard statistics, and coordinates answered by a worker translate
    back to global rows by adding the shard's offset ({!Merge}). *)

type range = { offset : int; length : int }
(** Global rows [offset, offset + length). *)

val ranges : rows:int -> workers:int -> range array
(** Balanced contiguous partition of [0, rows) into [workers] blocks:
    sizes differ by at most one (the first [rows mod workers] blocks get
    the extra row), concatenating in order covers every row exactly once.
    Raises [Invalid_argument] unless [1 <= workers <= rows]. *)

val slice : Matprod_matrix.Bmat.t -> range -> Matprod_matrix.Bmat.t
(** The shard's rows as a compact [length × cols] matrix; row [j] of the
    slice is global row [offset + j]. *)

val coverage : rows:int -> range list -> float
(** Fraction of the [rows] global rows covered by the given (disjoint)
    ranges — the degraded-answer coverage of a surviving quorum. *)

val pp_range : Format.formatter -> range -> unit
